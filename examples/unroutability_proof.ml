(* Proving unroutability — the capability that sets SAT-based detailed
   routing apart from one-net-at-a-time routers (paper, Sect. 1).

   This example takes the alu2 benchmark, determines its minimal width W,
   and then demonstrates the three artefacts of the paper's tool flow for
   the unroutable configuration at W - 1:

     1. the colouring conflict graph in DIMACS .col,
     2. the CNF under the winning encoding (ITE-linear-2+muldirect + s1),
     3. a DRAT refutation trace from the CDCL solver,

   and contrasts the SAT answer with the greedy DSATUR router, which can
   only report the width it happens to need, never that fewer tracks are
   impossible.

   Run with: dune exec examples/unroutability_proof.exe *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core

let () =
  let spec = Option.get (F.Benchmarks.find "alu2") in
  let inst = F.Benchmarks.build spec in
  Format.printf "%a@." F.Benchmarks.pp_instance inst;

  let budget = Sat.Solver.time_budget 120. in
  let w =
    match C.Binary_search.minimal_width ~budget inst.F.Benchmarks.route with
    | Ok r -> r.C.Binary_search.w_min
    | Error m -> failwith m
  in
  Printf.printf "minimal routable width: W = %d\n\n" w;

  (* greedy baseline: DSATUR needs this many tracks and proves nothing *)
  let dsatur_width = G.Greedy.upper_bound inst.F.Benchmarks.graph in
  Printf.printf
    "DSATUR (one-net-at-a-time baseline) routes with %d tracks but cannot\n\
     decide whether %d tracks suffice.\n\n"
    dsatur_width (w - 1);

  (* artefact 1: the DIMACS .col conflict graph *)
  let col_file = Filename.temp_file "alu2" ".col" in
  G.Dimacs_col.write_file col_file
    ~comments:[ "alu2 conflict graph (2-pin subnets / shared segments)" ]
    inst.F.Benchmarks.graph;
  Printf.printf "conflict graph written to        %s\n" col_file;

  (* artefact 2: the CNF at the unroutable width *)
  let csp = F.Conflict_graph.csp inst.F.Benchmarks.route ~w:(w - 1) in
  let encoded =
    E.Csp_encode.encode ~symmetry:E.Symmetry.S1
      (match E.Encoding.of_name "ITE-linear-2+muldirect" with
      | Ok e -> e
      | Error m -> failwith m)
      csp
  in
  let cnf_file = Filename.temp_file "alu2" ".cnf" in
  Sat.Dimacs_cnf.write_file cnf_file encoded.E.Csp_encode.cnf;
  Format.printf "CNF (%a) written to %s@." Sat.Cnf.pp_stats encoded.E.Csp_encode.cnf
    cnf_file;

  (* artefact 3: the DRAT refutation *)
  let run =
    C.Flow.(
      submit
        (default_request
        |> with_strategy C.Strategy.best_single
        |> with_budget budget |> with_proof true))
      inst.F.Benchmarks.route ~width:(w - 1)
  in
  (match (run.C.Flow.outcome, run.C.Flow.proof) with
  | C.Flow.Unroutable, Some proof ->
      let drat_file = Filename.temp_file "alu2" ".drat" in
      let oc = open_out drat_file in
      Sat.Proof.output oc proof;
      close_out oc;
      Printf.printf "DRAT refutation (%d steps) in    %s\n"
        (Sat.Proof.num_steps proof) drat_file;
      Printf.printf
        "\nVERDICT: W = %d is UNROUTABLE (solve time %.3fs, %d conflicts),\n\
         so the routing found at W = %d is provably optimal.\n"
        (w - 1) run.C.Flow.timings.C.Flow.solving
        run.C.Flow.solver_stats.Sat.Stats.conflicts w
  | C.Flow.Routable _, _ -> print_endline "unexpected: routable below w_min!"
  | C.Flow.Timeout, _ -> print_endline "budget exhausted"
  | C.Flow.Memout, _ -> print_endline "memory budget exhausted"
  | C.Flow.Unroutable, None -> assert false);

  (* the clique bound alone does not explain the refutation in general *)
  let clique = G.Clique.lower_bound inst.F.Benchmarks.graph in
  Printf.printf
    "\n(greedy clique bound: %d — %s)\n" clique
    (if clique >= w then "covers this width structurally"
     else "the SAT proof goes beyond the clique bound")
