(* Encoding explorer: how the 15 encodings trade Boolean variables against
   clauses, and what that does to solver behaviour.

   For a channel width sweep this prints, per encoding: variables per CSP
   variable, CNF size on the apex7 conflict graph, and the solve time of the
   unroutable configuration — a compact view of why the paper's hierarchical
   encodings win on hard UNSAT instances.

   Run with: dune exec examples/encoding_explorer.exe *)

module Sat = Fpgasat_sat
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core

let () =
  print_endline "Variables per CSP variable, by domain size k:";
  Printf.printf "  %-26s" "encoding";
  List.iter (fun k -> Printf.printf "  k=%-3d" k) [ 3; 5; 8; 13; 21 ];
  print_newline ();
  List.iter
    (fun e ->
      Printf.printf "  %-26s" (E.Encoding.name e);
      List.iter
        (fun k ->
          Printf.printf "  %-5d" (E.Encoding.layout e k).E.Layout.num_slots)
        [ 3; 5; 8; 13; 21 ];
      print_newline ())
    E.Registry.all;

  let spec = Option.get (F.Benchmarks.find "apex7") in
  let inst = F.Benchmarks.build spec in
  let w =
    match
      C.Binary_search.minimal_width ~budget:(Sat.Solver.time_budget 120.)
        inst.F.Benchmarks.route
    with
    | Ok r -> r.C.Binary_search.w_min
    | Error m -> failwith m
  in
  Printf.printf
    "\nCNF sizes and UNSAT solve times on apex7 at W = %d (unroutable), s1:\n"
    (w - 1);
  Printf.printf "  %-26s %10s %10s %10s %12s\n" "encoding" "vars" "clauses"
    "literals" "solve [s]";
  List.iter
    (fun e ->
      let strat = C.Strategy.make ~symmetry:E.Symmetry.S1 e in
      let run =
        C.Flow.(
          submit
            (default_request |> with_strategy strat
            |> with_budget (Sat.Solver.time_budget 60.)))
          inst.F.Benchmarks.route ~width:(w - 1)
      in
      let outcome =
        match run.C.Flow.outcome with
        | C.Flow.Unroutable -> Printf.sprintf "%12.3f" run.C.Flow.timings.C.Flow.solving
        | C.Flow.Routable _ -> "    ROUTABLE?"
        | C.Flow.Timeout -> "         T/O"
        | C.Flow.Memout -> "         M/O"
      in
      Printf.printf "  %-26s %10d %10d %10s %s\n" (E.Encoding.name e)
        run.C.Flow.cnf_vars run.C.Flow.cnf_clauses "-" outcome)
    E.Registry.all;
  print_endline
    "\nNote how the ITE-tree and hierarchical encodings need neither\n\
     at-most-one nor at-least-one clauses (their structure guarantees\n\
     exactly one selected value), giving small formulas over few variables —\n\
     the effect the paper measures in Table 2."
