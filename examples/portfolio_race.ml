(* Portfolio race: really parallel strategy portfolios on OCaml 5 domains.

   The paper (Sect. 6) proposes running several (encoding, symmetry)
   strategies on different cores and cancelling the losers as soon as one
   answers. This example races the paper's 3-strategy portfolio against its
   best single strategy on an unroutable configuration of C1355 and reports
   both wall-clock times.

   Run with: dune exec examples/portfolio_race.exe *)

module Sat = Fpgasat_sat
module F = Fpgasat_fpga
module C = Fpgasat_core
module P = Fpgasat_engine.Portfolio

let () =
  let spec = Option.get (F.Benchmarks.find "C1355") in
  let inst = F.Benchmarks.build spec in
  Format.printf "%a@." F.Benchmarks.pp_instance inst;

  let budget = Sat.Solver.time_budget 120. in
  let w =
    match C.Binary_search.minimal_width ~budget inst.F.Benchmarks.route with
    | Ok r -> r.C.Binary_search.w_min
    | Error m -> failwith m
  in
  Printf.printf "racing at the unroutable width W = %d\n\n" (w - 1);

  (* lone run of the best single strategy *)
  let t0 = Unix.gettimeofday () in
  let single =
    C.Flow.(
      submit
        (default_request
        |> with_strategy C.Strategy.best_single
        |> with_budget budget))
      inst.F.Benchmarks.route ~width:(w - 1)
  in
  let single_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "best single strategy (%s):\n  %s in %.3fs wall\n\n"
    (C.Strategy.name C.Strategy.best_single)
    (match single.C.Flow.outcome with
    | C.Flow.Unroutable -> "UNROUTABLE"
    | C.Flow.Routable _ -> "ROUTABLE"
    | C.Flow.Timeout -> "timeout"
    | C.Flow.Memout -> "memout")
    single_wall;

  (* the 3-member portfolio, one domain per member, first answer wins *)
  print_endline "3-strategy portfolio on parallel domains:";
  let t0 = Unix.gettimeofday () in
  let result =
    P.run ~mode:`Parallel ~budget C.Strategy.paper_portfolio_3
      inst.F.Benchmarks.route ~width:(w - 1)
  in
  let portfolio_wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun (m : P.member_result) ->
      Printf.printf "  %-45s %-18s wall %.3fs\n"
        (C.Strategy.name m.P.strategy)
        (match m.P.run.C.Flow.outcome with
        | C.Flow.Unroutable -> "UNROUTABLE"
        | C.Flow.Routable _ -> "ROUTABLE"
        | C.Flow.Timeout -> "cancelled"
        | C.Flow.Memout -> "memout")
        m.P.wall_seconds)
    result.P.members;
  (match result.P.winner with
  | Some winner ->
      Printf.printf "\nwinner: %s\nportfolio wall time: %.3fs (vs %.3fs single)\n"
        (C.Strategy.name winner.P.strategy)
        portfolio_wall single_wall
  | None -> print_endline "no member answered in time");
  print_endline
    "\n(The portfolio's wall time tracks its fastest member; with more\n\
     members than cores the speedup saturates — the paper reports 2.30x\n\
     for this 3-strategy portfolio across the full benchmark set.)"
