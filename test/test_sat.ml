(* Tests for the SAT substrate: literals, CNF building, DIMACS round trips,
   the Luby sequence, the heap, and — most importantly — the CDCL solver
   cross-checked against brute force and the independent DPLL solver. *)

module Lit = Fpgasat_sat.Lit
module Cnf = Fpgasat_sat.Cnf
module Dimacs = Fpgasat_sat.Dimacs_cnf
module Solver = Fpgasat_sat.Solver
module Dpll = Fpgasat_sat.Dpll
module Luby = Fpgasat_sat.Luby
module Heap = Fpgasat_sat.Heap
module Vec = Fpgasat_sat.Vec
module Proof = Fpgasat_sat.Proof

let cnf_of_dimacs_lists nvars clauses =
  let cnf = Cnf.create () in
  Cnf.ensure_vars cnf nvars;
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) clauses;
  cnf

(* Clauses as DIMACS integer lists, via the zero-copy fold. *)
let dimacs_lists cnf =
  List.rev
    (Cnf.fold_clauses cnf ~init:[] ~f:(fun acc arena off len ->
         List.init len (fun k -> Lit.to_dimacs arena.(off + k)) :: acc))

(* Exhaustive satisfiability check for formulas with few variables. *)
let brute_force cnf =
  let n = Cnf.num_vars cnf in
  assert (n <= 20);
  let sat_under m =
    Cnf.fold_clauses cnf ~init:true ~f:(fun acc arena off len ->
        acc
        &&
        let rec any k =
          k < off + len
          && ((m lsr Lit.var arena.(k)) land 1
              = (if Lit.sign arena.(k) then 1 else 0)
             || any (k + 1))
        in
        any off)
  in
  let rec go m = if m >= 1 lsl n then None else if sat_under m then Some m else go (m + 1) in
  go 0

let solver_result_is_sat = function
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Unknown | Solver.Memout ->
      Alcotest.fail "solver returned Unknown without budget"

(* --- literal representation --- *)

let test_lit_roundtrip () =
  List.iter
    (fun d ->
      Alcotest.(check int) "dimacs roundtrip" d (Lit.to_dimacs (Lit.of_dimacs d)))
    [ 1; -1; 5; -5; 1000; -1000 ]

let test_lit_ops () =
  let l = Lit.make 3 true in
  Alcotest.(check int) "var" 3 (Lit.var l);
  Alcotest.(check bool) "sign" true (Lit.sign l);
  Alcotest.(check bool) "negate sign" false (Lit.sign (Lit.negate l));
  Alcotest.(check int) "negate var" 3 (Lit.var (Lit.negate l));
  Alcotest.(check int) "double negate" l (Lit.negate (Lit.negate l));
  Alcotest.(check int) "pos" (Lit.make 7 true) (Lit.pos 7);
  Alcotest.(check int) "neg_of" (Lit.make 7 false) (Lit.neg_of 7)

let test_lit_of_dimacs_zero () =
  Alcotest.check_raises "of_dimacs 0" (Invalid_argument "Lit.of_dimacs: 0")
    (fun () -> ignore (Lit.of_dimacs 0))

(* --- Cnf builder --- *)

let test_cnf_tautology_dropped () =
  let cnf = cnf_of_dimacs_lists 2 [ [ 1; -1 ]; [ 1; 2 ] ] in
  Alcotest.(check int) "tautology dropped" 1 (Cnf.num_clauses cnf)

let test_cnf_duplicates_removed () =
  let cnf = cnf_of_dimacs_lists 1 [ [ 1; 1; 1 ] ] in
  Alcotest.(check int) "one clause" 1 (Cnf.num_clauses cnf);
  Alcotest.(check int) "deduped" 1 (Cnf.clause_len cnf 0)

let test_cnf_unallocated_var_rejected () =
  let cnf = Cnf.create () in
  Alcotest.check_raises "unallocated"
    (Invalid_argument "Cnf.add_clause: unallocated variable") (fun () ->
      Cnf.add_clause cnf [ Lit.pos 0 ])

let test_cnf_fresh_vars () =
  let cnf = Cnf.create () in
  let vars = Cnf.fresh_vars cnf 5 in
  Alcotest.(check int) "count" 5 (Cnf.num_vars cnf);
  Alcotest.(check (array int)) "consecutive" [| 0; 1; 2; 3; 4 |] vars

let test_cnf_copy_independent () =
  let cnf = cnf_of_dimacs_lists 2 [ [ 1; 2 ] ] in
  let copy = Cnf.copy cnf in
  Cnf.add_clause cnf [ Lit.pos 0 ];
  Alcotest.(check int) "copy unchanged" 1 (Cnf.num_clauses copy);
  Alcotest.(check int) "original grew" 2 (Cnf.num_clauses cnf)

let test_cnf_views_agree () =
  let cnf = cnf_of_dimacs_lists 4 [ [ 1; -2 ]; [ 3; 4; -1 ]; [ 2 ] ] in
  (* the three access paths — views, indexed accessors, and the fold — must
     describe the same clauses *)
  let via_views =
    List.init (Cnf.num_clauses cnf) (fun i ->
        Cnf.view_to_list (Cnf.get_clause cnf i) |> List.map Lit.to_dimacs)
  in
  let via_accessors =
    List.init (Cnf.num_clauses cnf) (fun i ->
        List.init (Cnf.clause_len cnf i) (fun k ->
            Lit.to_dimacs (Cnf.clause_lit cnf i k)))
  in
  Alcotest.(check (list (list int))) "views = fold" (dimacs_lists cnf) via_views;
  Alcotest.(check (list (list int)))
    "accessors = fold" (dimacs_lists cnf) via_accessors;
  let v = Cnf.get_clause cnf 1 in
  Alcotest.(check int) "view_len" 3 (Cnf.view_len v);
  Alcotest.(check (array int))
    "view_to_array" (Array.of_list (Cnf.view_to_list v)) (Cnf.view_to_array v);
  Alcotest.(check int) "num_lits totals lens" 6 (Cnf.num_lits cnf)

let test_cnf_builder_matches_add_clause () =
  let a = cnf_of_dimacs_lists 3 [ [ 1; -2; 3 ]; [ 2; 2; -3 ] ] in
  let b = Cnf.create () in
  Cnf.ensure_vars b 3;
  List.iter
    (fun c ->
      Cnf.start_clause b;
      List.iter (fun d -> Cnf.push_lit b (Lit.of_dimacs d)) c;
      Cnf.commit_clause b)
    [ [ 1; -2; 3 ]; [ 2; 2; -3 ] ];
  Alcotest.(check (list (list int)))
    "builder = add_clause" (dimacs_lists a) (dimacs_lists b)

let test_cnf_append () =
  let a = cnf_of_dimacs_lists 2 [ [ 1; 2 ]; [ -1 ] ] in
  let b = cnf_of_dimacs_lists 3 [ [ 3; -2 ] ] in
  Cnf.append a b;
  Alcotest.(check int) "vars raised" 3 (Cnf.num_vars a);
  Alcotest.(check int) "clauses concatenated" 3 (Cnf.num_clauses a);
  Alcotest.(check (list (list int)))
    "contents" [ [ 1; 2 ]; [ -1 ]; [ -2; 3 ] ] (dimacs_lists a);
  Alcotest.(check int) "src untouched" 1 (Cnf.num_clauses b)

(* --- DIMACS --- *)

let test_dimacs_roundtrip () =
  let cnf = cnf_of_dimacs_lists 3 [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3 ] ] in
  let s = Dimacs.to_string ~comments:[ "a comment" ] cnf in
  let cnf' = Dimacs.parse_string s in
  Alcotest.(check int) "vars" (Cnf.num_vars cnf) (Cnf.num_vars cnf');
  Alcotest.(check int) "clauses" (Cnf.num_clauses cnf) (Cnf.num_clauses cnf');
  Alcotest.(check (list (list int)))
    "clauses equal" (dimacs_lists cnf) (dimacs_lists cnf')

let test_dimacs_multiline_clause () =
  let cnf = Dimacs.parse_string "p cnf 3 1\n1 2\n3 0\n" in
  Alcotest.(check int) "one clause" 1 (Cnf.num_clauses cnf);
  Alcotest.(check int) "three lits" 3 (Cnf.clause_len cnf 0)

let expect_parse_error s =
  match Dimacs.parse_string s with
  | exception Dimacs.Parse_error _ -> ()
  | _ -> Alcotest.fail ("parse should have failed: " ^ s)

let test_dimacs_errors () =
  expect_parse_error "1 2 0\n";
  (* no header *)
  expect_parse_error "p cnf 2 1\n3 0\n";
  (* literal out of range *)
  expect_parse_error "p cnf 2 1\n1 2\n";
  (* unterminated clause *)
  expect_parse_error "p cnf x y\n";
  (* malformed header *)
  expect_parse_error "p cnf 2 1\np cnf 2 1\n1 0\n" (* duplicate header *)

let test_dimacs_clause_count_validated () =
  (* regression: a trailing clause missing its terminating 0 at EOF must not
     be silently dropped *)
  expect_parse_error "p cnf 2 2\n1 0\n1 2\n";
  (* declared clause count must match the clauses actually read *)
  expect_parse_error "p cnf 2 2\n1 0\n";
  expect_parse_error "p cnf 2 1\n1 0\n-2 0\n";
  (* exact count still parses *)
  let cnf = Dimacs.parse_string "p cnf 2 2\n1 0\n-2 0\n" in
  Alcotest.(check int) "clauses" 2 (Cnf.num_clauses cnf)

let test_dimacs_comments_and_blanks () =
  let cnf = Dimacs.parse_string "c hello\n\np cnf 2 2\nc mid\n1 0\n-2 0\n" in
  Alcotest.(check int) "clauses" 2 (Cnf.num_clauses cnf)

(* --- Luby --- *)

let test_luby_prefix () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  let got = List.init (List.length expected) Luby.get in
  Alcotest.(check (list int)) "luby prefix" expected got

(* --- Heap --- *)

let test_heap_order () =
  let scores = [| 1.0; 5.0; 3.0; 4.0; 2.0 |] in
  let h = Heap.create ~scores in
  for v = 0 to 4 do
    Heap.insert h v
  done;
  let order = List.init 5 (fun _ -> Heap.remove_max h) in
  Alcotest.(check (list int)) "descending score order" [ 1; 3; 2; 4; 0 ] order;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_rescore () =
  let scores = [| 1.0; 2.0; 3.0 |] in
  let h = Heap.create ~scores in
  for v = 0 to 2 do
    Heap.insert h v
  done;
  scores.(0) <- 10.0;
  Heap.rescore h 0;
  Alcotest.(check int) "rescored max" 0 (Heap.remove_max h)

(* --- Vec --- *)

let test_vec_basics () =
  let v = Vec.create ~dummy:0 () in
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "last" 100 (Vec.last v);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check int) "filtered" 49 (Vec.size v);
  Alcotest.(check int) "first even" 2 (Vec.get v 0);
  Vec.swap_remove v 0;
  Alcotest.(check int) "swap_remove moved last" 98 (Vec.get v 0)

(* Every Vec operation that vacates slots must overwrite them with the
   dummy: a stale pointer beyond [size] would pin the removed element for
   the lifetime of the vector (watch lists live as long as the solver). The
   weak array observes collection directly. *)
let test_vec_gc_release () =
  let v = Vec.create ~dummy:(Bytes.create 0) () in
  let w = Weak.create 6 in
  for i = 0 to 5 do
    let b = Bytes.make 32 (Char.chr (Char.code 'a' + i)) in
    Weak.set w i (Some b);
    Vec.push v b
  done;
  Vec.shrink v 4;
  (* [b0..b3] remain *)
  Vec.swap_remove v 0;
  (* drops b0, moves b3 into its slot: [b3; b1; b2] *)
  Vec.filter_in_place (fun b -> Bytes.get b 0 <> 'b') v;
  (* drops b1: [b3; b2] *)
  Gc.full_major ();
  Gc.full_major ();
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d collected" i)
        false (Weak.check w i))
    [ 0; 1; 4; 5 ];
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d still live" i)
        true (Weak.check w i))
    [ 2; 3 ];
  Vec.clear v;
  Gc.full_major ();
  Gc.full_major ();
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d collected after clear" i)
        false (Weak.check w i))
    [ 2; 3 ]

(* --- solver on hand-written formulas --- *)

let test_solver_empty_formula () =
  let cnf = Cnf.create () in
  match Solver.solve cnf with
  | Solver.Sat m, _ -> Alcotest.(check int) "empty model" 0 (Array.length m)
  | _ -> Alcotest.fail "empty formula is SAT"

let test_solver_empty_clause () =
  let cnf = Cnf.create () in
  Cnf.add_clause cnf [];
  match Solver.solve cnf with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "empty clause is UNSAT"

let test_solver_unit_conflict () =
  let cnf = cnf_of_dimacs_lists 1 [ [ 1 ]; [ -1 ] ] in
  match Solver.solve cnf with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "x and not x is UNSAT"

let test_solver_simple_sat () =
  let cnf = cnf_of_dimacs_lists 3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ 1; -3 ] ] in
  match Solver.solve cnf with
  | Solver.Sat m, _ ->
      Alcotest.(check bool) "model checks" true (Solver.check_model cnf m)
  | _ -> Alcotest.fail "formula is SAT"

(* Pigeonhole principle: n+1 pigeons, n holes — classic small hard UNSAT. *)
let php pigeons holes =
  let cnf = Cnf.create () in
  let v = Array.init pigeons (fun _ -> Cnf.fresh_vars cnf holes) in
  for p = 0 to pigeons - 1 do
    Cnf.add_clause cnf (Array.to_list (Array.map Lit.pos v.(p)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Cnf.add_clause cnf [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  cnf

let test_solver_php_unsat () =
  List.iter
    (fun n ->
      match Solver.solve (php (n + 1) n) with
      | Solver.Unsat, _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "PHP %d/%d must be UNSAT" (n + 1) n))
    [ 2; 3; 4; 5; 6 ]

let test_solver_php_sat () =
  match Solver.solve (php 5 5) with
  | Solver.Sat m, _ ->
      Alcotest.(check bool) "model checks" true (Solver.check_model (php 5 5) m)
  | _ -> Alcotest.fail "PHP 5/5 is SAT"

let test_solver_budget_unknown () =
  let cnf = php 9 8 in
  match Solver.solve ~budget:(Solver.conflict_budget 5) cnf with
  | (Solver.Unknown | Solver.Memout), stats ->
      Alcotest.(check bool) "few conflicts" true (stats.Fpgasat_sat.Stats.conflicts <= 6)
  | Solver.Unsat, _ -> Alcotest.fail "budget of 5 conflicts cannot refute PHP 9/8"
  | Solver.Sat _, _ -> Alcotest.fail "PHP 9/8 is not SAT"

(* Regression: budgets used to be polled only in the conflict branch of the
   search loop, so a conflict-free run ignored its wall-clock budget
   entirely. The instance below is a huge satisfiable formula of independent
   (a_i or b_i) pairs: every step is one free decision plus one propagation,
   never a conflict. The propagation-counter poll must abort it with
   [Unknown]; the pre-fix solver ran all the way to [Sat]. *)
let test_solver_time_budget_without_conflicts () =
  let n = 120_000 in
  let cnf = Cnf.create () in
  Cnf.ensure_vars cnf (2 * n);
  for i = 0 to n - 1 do
    Cnf.add_clause cnf [ Lit.pos (2 * i); Lit.pos ((2 * i) + 1) ]
  done;
  let budget =
    { Solver.no_budget with max_seconds = Some 1e-4; poll_every = 16 }
  in
  match Solver.solve ~budget cnf with
  | Solver.Unknown, stats ->
      (* the poll fired long before the instance was exhausted *)
      Alcotest.(check bool)
        "aborted early" true
        (stats.Fpgasat_sat.Stats.decisions < n)
  | Solver.Sat _, _ ->
      Alcotest.fail "wall-clock budget ignored on a conflict-free run"
  | Solver.Unsat, _ -> Alcotest.fail "instance is satisfiable"
  | Solver.Memout, _ -> Alcotest.fail "no memory budget was set"

(* Same shape for the interrupt hook: it must fire without conflicts. *)
let test_solver_interrupt_without_conflicts () =
  let n = 120_000 in
  let cnf = Cnf.create () in
  Cnf.ensure_vars cnf (2 * n);
  for i = 0 to n - 1 do
    Cnf.add_clause cnf [ Lit.pos (2 * i); Lit.pos ((2 * i) + 1) ]
  done;
  let budget =
    Solver.interruptible
      (fun () -> true)
      { Solver.no_budget with poll_every = 16 }
  in
  match Solver.solve ~budget cnf with
  | Solver.Unknown, stats ->
      Alcotest.(check bool)
        "aborted early" true
        (stats.Fpgasat_sat.Stats.decisions < n)
  | _ -> Alcotest.fail "interrupt ignored on a conflict-free run"

let test_solver_proof_ends_empty () =
  let proof = Proof.create () in
  (match Solver.solve ~proof (php 5 4) with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "PHP 5/4 is UNSAT");
  Alcotest.(check bool) "proof ends with empty clause" true (Proof.ends_with_empty proof);
  Alcotest.(check bool) "proof nonempty" true (Proof.num_steps proof > 0)

let test_solver_proof_drat_text () =
  let proof = Proof.create () in
  (match Solver.solve ~proof (php 4 3) with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "PHP 4/3 is UNSAT");
  let file = Filename.temp_file "fpgasat" ".drat" in
  let oc = open_out file in
  Proof.output oc proof;
  close_out oc;
  let ic = open_in file in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove file;
  Alcotest.(check bool) "file nonempty" true (len > 0)

let test_solver_both_presets_agree () =
  let cnf = php 6 5 in
  let r1, _ = Solver.solve ~config:Solver.minisat_like cnf in
  let r2, _ = Solver.solve ~config:Solver.siege_like cnf in
  Alcotest.(check bool) "both UNSAT" true (r1 = Solver.Unsat && r2 = Solver.Unsat)

let test_solver_wide_clauses () =
  (* a single wide clause plus forcing units: exercises watch relocation *)
  let cnf = Cnf.create () in
  let vars = Cnf.fresh_vars cnf 30 in
  Cnf.add_clause cnf (Array.to_list (Array.map Lit.pos vars));
  Array.iteri (fun i v -> if i < 29 then Cnf.add_clause cnf [ Lit.neg_of v ]) vars;
  match Solver.solve cnf with
  | Solver.Sat m, _ ->
      Alcotest.(check bool) "last literal carries the clause" true m.(29);
      Alcotest.(check bool) "model checks" true (Solver.check_model cnf m)
  | _ -> Alcotest.fail "satisfiable"

let test_solver_deterministic () =
  (* fixed seeds make runs bit-identical: same stats on repeat *)
  let cnf = php 7 6 in
  let _, s1 = Solver.solve cnf in
  let _, s2 = Solver.solve cnf in
  Alcotest.(check int) "same conflicts" s1.Fpgasat_sat.Stats.conflicts
    s2.Fpgasat_sat.Stats.conflicts;
  Alcotest.(check int) "same decisions" s1.Fpgasat_sat.Stats.decisions
    s2.Fpgasat_sat.Stats.decisions

let prop_luby_structure =
  QCheck2.Test.make ~count:200 ~name:"Luby values are powers of two"
    QCheck2.Gen.(int_range 0 500)
    (fun i ->
      let v = Luby.get i in
      v > 0 && v land (v - 1) = 0)

let test_luby_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Luby.get") (fun () ->
      ignore (Luby.get (-1)))

(* --- random CNF cross-checks --- *)

let gen_random_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 1 8 in
    let* nclauses = int_range 1 30 in
    let* clauses =
      list_repeat nclauses
        (let* width = int_range 1 4 in
         list_repeat width
           (let* v = int_range 0 (nvars - 1) in
            let* sign = bool in
            return (Lit.make v sign)))
    in
    return (nvars, clauses))

let build (nvars, clauses) =
  let cnf = Cnf.create () in
  Cnf.ensure_vars cnf nvars;
  List.iter (Cnf.add_clause cnf) clauses;
  cnf

let prop_cdcl_matches_brute_force =
  QCheck2.Test.make ~count:500 ~name:"CDCL agrees with brute force"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let expected = brute_force cnf <> None in
      let got, _ = Solver.solve cnf in
      expected = solver_result_is_sat got)

let prop_cdcl_models_check =
  QCheck2.Test.make ~count:500 ~name:"CDCL models satisfy the formula"
    gen_random_cnf (fun input ->
      let cnf = build input in
      match Solver.solve cnf with
      | Solver.Sat m, _ -> Solver.check_model cnf m
      | Solver.Unsat, _ -> true
      | (Solver.Unknown | Solver.Memout), _ -> false)

let prop_cdcl_matches_dpll =
  QCheck2.Test.make ~count:500 ~name:"CDCL agrees with DPLL" gen_random_cnf
    (fun input ->
      let cnf = build input in
      let cdcl = solver_result_is_sat (fst (Solver.solve cnf)) in
      match Dpll.solve cnf with
      | Dpll.Sat m -> cdcl && Solver.check_model cnf m
      | Dpll.Unsat -> not cdcl
      | Dpll.Unknown -> false)

let prop_presets_agree =
  QCheck2.Test.make ~count:200 ~name:"solver presets agree" gen_random_cnf
    (fun input ->
      let cnf = build input in
      let a = solver_result_is_sat (fst (Solver.solve ~config:Solver.minisat_like cnf)) in
      let b = solver_result_is_sat (fst (Solver.solve ~config:Solver.siege_like cnf)) in
      a = b)

let prop_unsat_proofs_end_empty =
  QCheck2.Test.make ~count:200 ~name:"UNSAT answers carry a refutation trace"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let proof = Proof.create () in
      match Solver.solve ~proof cnf with
      | Solver.Unsat, _ -> Proof.ends_with_empty proof
      | Solver.Sat _, _ | (Solver.Unknown | Solver.Memout), _ -> true)

(* Dirty CNFs: duplicate literals and tautological clauses injected on top
   of the random base, plus wider clauses than [gen_random_cnf] produces.
   These exercise clause normalisation feeding the flat arena, watcher
   setup on wide clauses, and inprocessing on messy inputs. *)
let gen_dirty_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 1 10 in
    let* nclauses = int_range 1 40 in
    let gen_lit =
      let* v = int_range 0 (nvars - 1) in
      let* sign = bool in
      return (Lit.make v sign)
    in
    let* clauses =
      list_repeat nclauses
        (let* width = int_range 1 6 in
         let* base = list_repeat width gen_lit in
         let* dup = bool in
         let* tauto = bool in
         let dirty = if dup then List.hd base :: base else base in
         let dirty =
           if tauto then Lit.negate (List.hd base) :: dirty else dirty
         in
         return dirty)
    in
    return (nvars, clauses))

(* A configuration that inprocesses after every restart and restarts after
   every conflict: maximal coverage of self-subsumption and vivification on
   small instances, where the default cadence would never fire. *)
let inprocess_heavy =
  {
    Solver.siege_like with
    Solver.restart = Solver.Geometric (1, 1.0);
    inprocess_every = 1;
    inprocess_budget = 10_000;
  }

let prop_dirty_cnf_differential =
  QCheck2.Test.make ~count:300
    ~name:"CDCL (default and inprocess-heavy) vs DPLL on dirty CNFs"
    gen_dirty_cnf (fun input ->
      let cnf = build input in
      let expected = brute_force cnf <> None in
      let agrees config =
        match Solver.solve ~config cnf with
        | Solver.Sat m, _ -> expected && Solver.check_model cnf m
        | Solver.Unsat, _ -> not expected
        | (Solver.Unknown | Solver.Memout), _ -> false
      in
      agrees Solver.minisat_like
      && agrees inprocess_heavy
      &&
      match Dpll.solve cnf with
      | Dpll.Sat m -> expected && Solver.check_model cnf m
      | Dpll.Unsat -> not expected
      | Dpll.Unknown -> false)

(* Inprocessing rewrites the clause database mid-search; every rewrite must
   be logged so refutations stay checkable. The forward checker validates
   each step, so an unjustified strengthening fails here, not just an
   incomplete trace. *)
let prop_inprocess_drat_checkable =
  QCheck2.Test.make ~count:300
    ~name:"inprocess-heavy UNSAT traces pass the DRAT checker" gen_dirty_cnf
    (fun input ->
      let cnf = build input in
      let proof = Proof.create () in
      match Solver.solve ~config:inprocess_heavy ~proof cnf with
      | Solver.Unsat, _ ->
          Result.is_ok (Fpgasat_sat.Drat_check.check cnf proof)
      | Solver.Sat _, _ | (Solver.Unknown | Solver.Memout), _ -> true)

let lit_lists cnf =
  List.init (Cnf.num_clauses cnf) (fun i -> Cnf.view_to_list (Cnf.get_clause cnf i))

(* the legacy add_clause semantics, kept as an executable reference *)
let reference_normalise lits =
  let sorted = List.sort_uniq Lit.compare lits in
  let rec tauto = function
    | a :: (b :: _ as rest) -> a lxor b = 1 || tauto rest
    | [ _ ] | [] -> false
  in
  if tauto sorted then None else Some sorted

let prop_add_clause_normalises =
  QCheck2.Test.make ~count:500
    ~name:"add_clause sorts, dedupes, and drops tautologies" gen_random_cnf
    (fun (nvars, clauses) ->
      let cnf = Cnf.create () in
      Cnf.ensure_vars cnf nvars;
      List.iter (Cnf.add_clause cnf) clauses;
      lit_lists cnf = List.filter_map reference_normalise clauses)

let prop_views_consistent =
  QCheck2.Test.make ~count:200
    ~name:"fold_clauses, get_clause and indexed accessors agree" gen_random_cnf
    (fun input ->
      let cnf = build input in
      let via_fold =
        List.rev
          (Cnf.fold_clauses cnf ~init:[] ~f:(fun acc arena off len ->
               List.init len (fun k -> arena.(off + k)) :: acc))
      in
      let via_views = lit_lists cnf in
      let via_accessors =
        List.init (Cnf.num_clauses cnf) (fun i ->
            List.init (Cnf.clause_len cnf i) (Cnf.clause_lit cnf i))
      in
      via_fold = via_views
      && via_fold = via_accessors
      && Cnf.num_lits cnf
         = List.fold_left (fun n c -> n + List.length c) 0 via_fold)

let prop_copy_equals_source =
  QCheck2.Test.make ~count:200 ~name:"copy preserves clauses and vars"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let c = Cnf.copy cnf in
      Cnf.num_vars c = Cnf.num_vars cnf && lit_lists c = lit_lists cnf)

let prop_dimacs_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"DIMACS write/parse is identity"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let cnf' = Dimacs.parse_string (Dimacs.to_string cnf) in
      Cnf.num_vars cnf = Cnf.num_vars cnf'
      && dimacs_lists cnf = dimacs_lists cnf')

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sat"
    [
      ( "lit",
        [
          Alcotest.test_case "dimacs roundtrip" `Quick test_lit_roundtrip;
          Alcotest.test_case "operations" `Quick test_lit_ops;
          Alcotest.test_case "of_dimacs 0 rejected" `Quick test_lit_of_dimacs_zero;
        ] );
      ( "cnf",
        [
          Alcotest.test_case "tautology dropped" `Quick test_cnf_tautology_dropped;
          Alcotest.test_case "duplicates removed" `Quick test_cnf_duplicates_removed;
          Alcotest.test_case "unallocated var rejected" `Quick
            test_cnf_unallocated_var_rejected;
          Alcotest.test_case "fresh vars" `Quick test_cnf_fresh_vars;
          Alcotest.test_case "copy independent" `Quick test_cnf_copy_independent;
          Alcotest.test_case "views agree" `Quick test_cnf_views_agree;
          Alcotest.test_case "builder matches add_clause" `Quick
            test_cnf_builder_matches_add_clause;
          Alcotest.test_case "append" `Quick test_cnf_append;
        ] );
      qsuite "cnf-properties"
        [
          prop_add_clause_normalises;
          prop_views_consistent;
          prop_copy_equals_source;
        ];
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "multiline clause" `Quick test_dimacs_multiline_clause;
          Alcotest.test_case "malformed inputs rejected" `Quick test_dimacs_errors;
          Alcotest.test_case "clause count validated" `Quick
            test_dimacs_clause_count_validated;
          Alcotest.test_case "comments and blanks" `Quick
            test_dimacs_comments_and_blanks;
        ] );
      ( "luby",
        Alcotest.test_case "prefix" `Quick test_luby_prefix
        :: Alcotest.test_case "negative rejected" `Quick test_luby_negative_rejected
        :: List.map QCheck_alcotest.to_alcotest [ prop_luby_structure ] );
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "rescore" `Quick test_heap_rescore;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "vacated slots are collectable" `Quick
            test_vec_gc_release;
        ] );
      ( "solver",
        [
          Alcotest.test_case "empty formula" `Quick test_solver_empty_formula;
          Alcotest.test_case "empty clause" `Quick test_solver_empty_clause;
          Alcotest.test_case "unit conflict" `Quick test_solver_unit_conflict;
          Alcotest.test_case "simple sat" `Quick test_solver_simple_sat;
          Alcotest.test_case "pigeonhole unsat" `Quick test_solver_php_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_solver_php_sat;
          Alcotest.test_case "budget gives Unknown" `Quick test_solver_budget_unknown;
          Alcotest.test_case "time budget without conflicts" `Quick
            test_solver_time_budget_without_conflicts;
          Alcotest.test_case "interrupt without conflicts" `Quick
            test_solver_interrupt_without_conflicts;
          Alcotest.test_case "proof ends empty" `Quick test_solver_proof_ends_empty;
          Alcotest.test_case "drat text output" `Quick test_solver_proof_drat_text;
          Alcotest.test_case "presets agree" `Quick test_solver_both_presets_agree;
          Alcotest.test_case "wide clauses" `Quick test_solver_wide_clauses;
          Alcotest.test_case "deterministic" `Quick test_solver_deterministic;
        ] );
      qsuite "solver-properties"
        [
          prop_cdcl_matches_brute_force;
          prop_cdcl_models_check;
          prop_cdcl_matches_dpll;
          prop_presets_agree;
          prop_unsat_proofs_end_empty;
          prop_dirty_cnf_differential;
          prop_inprocess_drat_checkable;
          prop_dimacs_roundtrip;
        ];
    ]
