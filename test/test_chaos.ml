(* Tests for the fault-tolerant supervisor: memory budgets, the failure
   taxonomy, retry escalation with the preset fallback ladder, quarantine
   and resume semantics, the advisory results lock, and the deterministic
   chaos harness that injects faults behind the job interface. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module Run_record = Eng.Run_record
module Sweep = Eng.Sweep
module Chaos = Eng.Chaos
module Failure = Eng.Failure
module Strategy = C.Strategy
module Flow = C.Flow

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* the same small instance the engine tests use *)
let small_route =
  let arch = F.Arch.create 5 in
  let rng = F.Rng.create 11 in
  let nl = F.Netlist.random ~rng ~arch ~num_nets:20 ~max_fanout:3 ~locality:2 in
  F.Global_router.route arch nl

let small_graph = F.Conflict_graph.build small_route
let small_ub = G.Greedy.upper_bound small_graph
let unsat_width = max 1 (small_ub - 1)

(* UNSAT cells force the solver through conflicts, which is where budget
   polls (and therefore every hook-based fault) happen. Distinct benchmark
   labels keep the cell keys unique. *)
let unsat_cell name =
  Sweep.cell ~benchmark:name Strategy.best_single small_route ~width:unsat_width

let unsat_cells n = List.init n (fun i -> unsat_cell (Printf.sprintf "c%d" i))

let no_io = { Sweep.default_config with Sweep.out = None; on_progress = None }

let heap_mb () =
  (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / (1024 * 1024)

let unsat_cnf () =
  let csp = E.Csp.make small_graph ~k:unsat_width in
  let enc =
    match E.Encoding.of_name "muldirect" with Ok e -> e | Error m -> failwith m
  in
  (E.Csp_encode.encode enc csp).E.Csp_encode.cnf

let with_temp_file f =
  let path = Filename.temp_file "fpgasat_chaos" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".lock" ])
    (fun () -> f path)

(* ---------- solver memory budget ---------- *)

let test_solver_memout () =
  (* 8 MB of live ballast (large arrays are allocated straight on the major
     heap) guarantees the 1 MB ceiling trips at the first poll *)
  let ballast = Array.make (1024 * 1024) 0 in
  let budget =
    Sat.Solver.with_poll_interval 1 (Sat.Solver.memory_budget 1)
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.opaque_identity ballast.(0)))
    (fun () ->
      (match Sat.Solver.solve ~budget (unsat_cnf ()) with
      | Sat.Solver.Memout, _ -> ()
      | Sat.Solver.Sat _, _ -> Alcotest.fail "formula is UNSAT"
      | Sat.Solver.Unsat, _ ->
          Alcotest.fail "1 MB ceiling must end the search as Memout"
      | Sat.Solver.Unknown, _ ->
          Alcotest.fail "memout must not report Unknown");
      (* same ceiling through the incremental interface *)
      let s = Sat.Solver.create (unsat_cnf ()) in
      match Sat.Solver.solve_with ~budget s with
      | Sat.Solver.Q_memout -> ()
      | _ -> Alcotest.fail "incremental query must report Q_memout")

let test_solver_memout_unbounded_is_unchanged () =
  (* a generous ceiling never fires: the answer matches the unbudgeted run *)
  let budget =
    Sat.Solver.with_poll_interval 1
      (Sat.Solver.memory_budget (heap_mb () + 4096))
  in
  match Sat.Solver.solve ~budget (unsat_cnf ()) with
  | Sat.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "ceiling far above the heap must not change the answer"

let test_hook_exception_is_interrupt () =
  (* satellite contract: a raising interrupt hook ends the search as
     Unknown (interrupt fired); the exception never escapes as a crash *)
  let budget =
    Sat.Solver.with_poll_interval 1
      (Sat.Solver.interruptible
         (fun () -> failwith "hook blew up")
         Sat.Solver.no_budget)
  in
  match Sat.Solver.solve ~budget (unsat_cnf ()) with
  | Sat.Solver.Unknown, _ -> ()
  | exception _ -> Alcotest.fail "hook exception escaped the solver"
  | _ -> Alcotest.fail "raising hook must end the search as Unknown"

(* ---------- failure taxonomy ---------- *)

let test_failure_taxonomy () =
  Alcotest.(check (option string)) "decisive outcomes are not failures" None
    (Option.map Failure.name (Failure.of_outcome Flow.Unroutable));
  Alcotest.(check (option string)) "timeout tag" (Some "timeout")
    (Option.map Failure.name (Failure.of_outcome Flow.Timeout));
  Alcotest.(check (option string)) "memout tag" (Some "memout")
    (Option.map Failure.name (Failure.of_outcome Flow.Memout));
  let crash = Failure.of_exn (Stdlib.Failure "boom") in
  Alcotest.(check string) "crash tag carries the class" "crash:Failure"
    (Failure.name crash);
  Alcotest.(check bool) "crash message kept" true
    (contains ~needle:"boom" (Failure.message crash));
  Alcotest.(check bool) "timeout is transient" true
    (Failure.transient Failure.Timeout);
  Alcotest.(check bool) "memout is transient" true
    (Failure.transient Failure.Memout);
  Alcotest.(check bool) "crash is not transient" false
    (Failure.transient crash)

(* ---------- sweep: memout, retry, quarantine, resume, lock ---------- *)

let test_sweep_memout_recorded () =
  let records =
    Sweep.run
      { no_io with Sweep.jobs = 1; max_memory_mb = Some 1; poll_every = 1 }
      [ unsat_cell "memcell" ]
  in
  let r = List.hd records in
  (match r.Run_record.outcome with
  | Run_record.Memout -> ()
  | o ->
      Alcotest.fail
        ("1 MB sweep ceiling must memout, got " ^ Run_record.outcome_name o));
  Alcotest.(check (option string)) "classified" (Some "memout")
    r.Run_record.failure;
  Alcotest.(check bool) "single-attempt sweeps never quarantine" false
    r.Run_record.quarantined;
  Alcotest.(check (option int)) "no attempts key without retries" None
    r.Run_record.attempts;
  (* the record round-trips with its new optional keys *)
  match Run_record.of_line (Run_record.to_line r) with
  | Ok r' ->
      Alcotest.(check bool) "memout record roundtrips" true
        (Run_record.equal r r')
  | Error m -> Alcotest.fail m

let flow_timeout_run width =
  {
    Flow.outcome = Flow.Timeout;
    timings = { Flow.to_graph = 0.; to_cnf = 0.; solving = 0. };
    width;
    strategy = Strategy.best_single;
    cnf_vars = 0;
    cnf_clauses = 0;
    solver_stats = Sat.Stats.create ();
    proof = None;
    certified = None;
    telemetry = None;
  }

let test_retry_walks_fallback_ladder () =
  (* primary attempts time out; the minisat rung answers. The record must be
     decisive, show two attempts, and keep the cell's own strategy name so
     resume keys stay stable. *)
  let rungs = ref [] in
  let job =
    {
      Sweep.benchmark = "ladder";
      strategy = "ladder-strategy";
      width = unsat_width;
      run =
        (fun ~budget ~certify ~telemetry ~fallback ->
          rungs := Sweep.fallback_name fallback :: !rungs;
          match fallback with
          | Sweep.Primary -> flow_timeout_run unsat_width
          | Sweep.Fallback_minisat | Sweep.Fallback_dpll ->
              Flow.(
                submit
                  (default_request
                  |> with_strategy Strategy.best_single
                  |> with_budget budget |> with_certify certify
                  |> with_telemetry telemetry))
                small_route ~width:unsat_width);
    }
  in
  let config =
    {
      no_io with
      Sweep.jobs = 1;
      retry =
        { Sweep.max_attempts = 3; escalation = 1.5; fallback_presets = true };
    }
  in
  let r = List.hd (Sweep.run config [ job ]) in
  Alcotest.(check (list string)) "ladder order" [ "primary"; "minisat" ]
    (List.rev !rungs);
  Alcotest.(check bool) "fallback answered decisively" true
    (Run_record.decisive r);
  Alcotest.(check (option int)) "attempts counted" (Some 2)
    r.Run_record.attempts;
  Alcotest.(check string) "record keeps the cell's strategy" "ladder-strategy"
    r.Run_record.strategy;
  Alcotest.(check (option string)) "decisive cells carry no failure" None
    r.Run_record.failure

let crash_job counter =
  {
    Sweep.benchmark = "always-crashes";
    strategy = "crash";
    width = 1;
    run =
      (fun ~budget:_ ~certify:_ ~telemetry:_ ~fallback:_ ->
        Atomic.incr counter;
        failwith "deterministic bug");
  }

let test_quarantine_skipped_on_resume () =
  with_temp_file (fun path ->
      let counter = Atomic.make 0 in
      let config =
        {
          no_io with
          Sweep.jobs = 1;
          out = Some path;
          resume = true;
          retry =
            {
              Sweep.max_attempts = 2;
              escalation = 2.0;
              fallback_presets = false;
            };
        }
      in
      let first = Sweep.run config [ crash_job counter ] in
      Alcotest.(check int) "both attempts ran" 2 (Atomic.get counter);
      let r = List.hd first in
      (match r.Run_record.outcome with
      | Run_record.Crashed _ -> ()
      | _ -> Alcotest.fail "deterministic crash must record Crashed");
      Alcotest.(check bool) "exhausted cell quarantined" true
        r.Run_record.quarantined;
      Alcotest.(check (option string)) "crash classified"
        (Some "crash:Failure") r.Run_record.failure;
      Alcotest.(check (option int)) "attempts recorded" (Some 2)
        r.Run_record.attempts;
      (* resume must trust the quarantine record instead of crash-looping *)
      let second = Sweep.run config [ crash_job counter ] in
      Alcotest.(check int) "quarantined cell not re-run" 2 (Atomic.get counter);
      Alcotest.(check bool) "record served from the file" true
        (Run_record.equal r (List.hd second)))

let test_retrying_resume_reruns_plain_failures () =
  with_temp_file (fun path ->
      (* a single-attempt sweep records a plain (unquarantined) timeout *)
      let timeout_job =
        {
          Sweep.benchmark = "flaky";
          strategy = "flaky";
          width = 1;
          run = (fun ~budget:_ ~certify:_ ~telemetry:_ ~fallback:_ -> flow_timeout_run 1);
        }
      in
      let base =
        { no_io with Sweep.jobs = 1; out = Some path; resume = true }
      in
      let first = Sweep.run base [ timeout_job ] in
      Alcotest.(check bool) "plain failure is not quarantined" false
        (List.hd first).Run_record.quarantined;
      (* a retry-enabled resume re-runs it — bigger budgets might answer now *)
      let counter = Atomic.make 0 in
      let healed =
        {
          timeout_job with
          Sweep.run =
            (fun ~budget ~certify ~telemetry ~fallback:_ ->
              Atomic.incr counter;
              (unsat_cell "flaky").Sweep.run ~budget ~certify ~telemetry
                ~fallback:Sweep.Primary);
        }
      in
      let retrying =
        {
          base with
          Sweep.retry =
            {
              Sweep.max_attempts = 2;
              escalation = 2.0;
              fallback_presets = false;
            };
        }
      in
      let second = Sweep.run retrying [ healed ] in
      Alcotest.(check int) "recorded timeout re-ran under retries" 1
        (Atomic.get counter);
      Alcotest.(check bool) "and answered decisively this time" true
        (Run_record.decisive (List.hd second));
      (* a single-attempt resume would have skipped it (historical shape) *)
      let third = Sweep.run base [ crash_job (Atomic.make 0) ] in
      ignore third;
      Alcotest.(check int) "single-attempt resume skips it again" 1
        (Atomic.get counter))

let test_out_lock_excludes_and_reclaims () =
  with_temp_file (fun path ->
      let lock = path ^ ".lock" in
      (* a live holder (this very process) must exclude the sweep *)
      Out_channel.with_open_text lock (fun oc ->
          Out_channel.output_string oc (string_of_int (Unix.getpid ())));
      (match Sweep.run { no_io with Sweep.out = Some path } [ unsat_cell "l" ] with
      | _ -> Alcotest.fail "second writer must be refused"
      | exception Sys_error m ->
          Alcotest.(check bool) "error names the holder" true
            (contains ~needle:"locked" m));
      (* a dead holder is stale: reclaimed silently, sweep proceeds *)
      Out_channel.with_open_text lock (fun oc ->
          Out_channel.output_string oc "999999999");
      let records =
        Sweep.run { no_io with Sweep.out = Some path } [ unsat_cell "l" ]
      in
      Alcotest.(check int) "sweep ran after reclaiming" 1 (List.length records);
      Alcotest.(check bool) "lock released afterwards" false
        (Sys.file_exists lock))

let test_crash_backtrace_captured () =
  let config =
    { no_io with Sweep.jobs = 1; capture_backtrace = true }
  in
  let r = List.hd (Sweep.run config [ crash_job (Atomic.make 0) ]) in
  (match r.Run_record.backtrace with
  | Some bt -> Alcotest.(check bool) "backtrace non-empty" true (String.length bt > 0)
  | None -> Alcotest.fail "capture_backtrace must record the backtrace");
  (* off by default: same crash, no backtrace key *)
  let plain = List.hd (Sweep.run no_io [ crash_job (Atomic.make 0) ]) in
  Alcotest.(check (option string)) "opt-in only" None plain.Run_record.backtrace

(* ---------- chaos: per-fault classification ---------- *)

let run_one_faulted ?(config = { no_io with Sweep.jobs = 1 }) fault =
  let plan = { Chaos.seed = 0; faults = [| Some fault |] } in
  List.hd (Sweep.run config (Chaos.inject plan [ unsat_cell "chaos" ]))

let test_chaos_raise_at_conflict_is_crash () =
  let r = run_one_faulted (Chaos.Raise_at_conflict 1) in
  (match r.Run_record.outcome with
  | Run_record.Crashed m ->
      Alcotest.(check bool) "injected message" true
        (contains ~needle:"chaos" m)
  | o -> Alcotest.fail ("expected Crashed, got " ^ Run_record.outcome_name o));
  match r.Run_record.failure with
  | Some f ->
      Alcotest.(check bool) "classified as injected crash" true
        (contains ~needle:"crash:" f && contains ~needle:"Injected" f)
  | None -> Alcotest.fail "crash must carry a failure classification"

let test_chaos_spurious_interrupt_is_timeout () =
  let r = run_one_faulted Chaos.Spurious_interrupt in
  match r.Run_record.outcome with
  | Run_record.Timeout -> ()
  | o -> Alcotest.fail ("expected Timeout, got " ^ Run_record.outcome_name o)

let test_chaos_hook_raise_is_timeout () =
  (* end-to-end version of the satellite contract: the raising hook reads
     as an interrupt, never as a crash *)
  let r = run_one_faulted Chaos.Hook_raise in
  match r.Run_record.outcome with
  | Run_record.Timeout -> ()
  | o -> Alcotest.fail ("expected Timeout, got " ^ Run_record.outcome_name o)

let test_chaos_alloc_burst_is_memout () =
  let ceiling = heap_mb () + 100 in
  let r =
    run_one_faulted
      ~config:
        {
          no_io with
          Sweep.jobs = 1;
          max_memory_mb = Some ceiling;
          poll_every = 1;
        }
      (Chaos.Alloc_burst 300)
  in
  match r.Run_record.outcome with
  | Run_record.Memout -> ()
  | o -> Alcotest.fail ("expected Memout, got " ^ Run_record.outcome_name o)

let test_chaos_corrupt_drat_rejected () =
  (* certification must catch the torn proof: decisive but certified=false *)
  let r =
    run_one_faulted
      ~config:{ no_io with Sweep.jobs = 1; certify = true }
      Chaos.Corrupt_drat
  in
  (match r.Run_record.outcome with
  | Run_record.Unroutable -> ()
  | o ->
      Alcotest.fail ("expected Unroutable, got " ^ Run_record.outcome_name o));
  Alcotest.(check (option bool)) "torn proof refused" (Some false)
    r.Run_record.certified

let test_chaos_torn_tail_heals_on_resume () =
  with_temp_file (fun path ->
      let config =
        { no_io with Sweep.jobs = 1; out = Some path; resume = true }
      in
      let a = unsat_cell "ta" and b = unsat_cell "tb" in
      ignore (Sweep.run config [ a; b ]);
      (* the faulted third cell truncates the file mid-line before running *)
      let c = unsat_cell "tc" in
      let plan = { Chaos.seed = 0; faults = [| Some Chaos.Torn_tail |] } in
      ignore (Sweep.run config (Chaos.inject ~out:path plan [ c ]));
      let _, bad = Sweep.load path in
      Alcotest.(check int) "exactly one torn line" 1 bad;
      (* the tear ate the previous cell's line, and the faulted cell's own
         record — appended right after the tear, with no newline between —
         glued onto it: both are lost, both (and only both) must re-run *)
      let counter = Atomic.make 0 in
      let counted =
        List.map
          (fun (j : Sweep.job) ->
            {
              j with
              Sweep.run =
                (fun ~budget ~certify ~telemetry ~fallback ->
                  Atomic.incr counter;
                  j.Sweep.run ~budget ~certify ~telemetry ~fallback);
            })
          [ a; b; c ]
      in
      let records = Sweep.run config counted in
      Alcotest.(check int) "exactly the torn and glued cells re-ran" 2
        (Atomic.get counter);
      Alcotest.(check int) "full result set" 3 (List.length records))

(* ---------- chaos: plan structure and sweep invariants ---------- *)

let test_plan_deterministic_and_covering () =
  let p1 = Chaos.make ~seed:42 ~cells:50 in
  let p2 = Chaos.make ~seed:42 ~cells:50 in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  let p3 = Chaos.make ~seed:43 ~cells:50 in
  Alcotest.(check bool) "different seed, different plan" true
    (p1.Chaos.faults <> p3.Chaos.faults);
  let kinds =
    List.filter_map snd (Chaos.described p1) |> List.sort_uniq compare
  in
  Alcotest.(check int) "all six fault kinds present" 6 (List.length kinds);
  Alcotest.(check (option string)) "out of range is healthy" None
    (Option.map Chaos.fault_name (Chaos.fault p1 50))

let chaos_sweep_invariants ~seed =
  with_temp_file (fun path ->
      let cells = unsat_cells 8 in
      let plan = Chaos.make ~seed ~cells:(List.length cells) in
      let config =
        {
          no_io with
          Sweep.jobs = 1;
          out = Some path;
          resume = true;
          certify = true;
          poll_every = 1;
          max_memory_mb = Some (heap_mb () + 100);
          budget_seconds = Some 5.0;
        }
      in
      let records =
        match Sweep.run config (Chaos.inject ~out:path plan cells) with
        | r -> r
        | exception e ->
            Alcotest.fail
              ("sweep aborted under chaos: " ^ Printexc.to_string e)
      in
      (* one record per cell, in job order *)
      Alcotest.(check int) "one record per cell" (List.length cells)
        (List.length records);
      List.iter2
        (fun (j : Sweep.job) (r : Run_record.t) ->
          Alcotest.(check string) "job order kept" j.Sweep.benchmark
            r.Run_record.benchmark;
          (* every non-decisive ending is classified; decisive ones are not *)
          match r.Run_record.outcome with
          | Run_record.Routable | Run_record.Unroutable ->
              Alcotest.(check (option string)) "decisive: no failure tag" None
                r.Run_record.failure
          | Run_record.Timeout | Run_record.Memout | Run_record.Crashed _ -> (
              match r.Run_record.failure with
              | Some _ -> ()
              | None -> Alcotest.fail "fault left an unclassified record"))
        cells records;
      (* a resume over the same queue is idempotent: the file answers it *)
      let counter = Atomic.make 0 in
      let counted =
        List.map
          (fun (j : Sweep.job) ->
            {
              j with
              Sweep.run =
                (fun ~budget ~certify ~telemetry ~fallback ->
                  Atomic.incr counter;
                  j.Sweep.run ~budget ~certify ~telemetry ~fallback);
            })
          cells
      in
      let again = Sweep.run config counted in
      Alcotest.(check int) "resume answers from the file"
        (List.length records) (List.length again);
      (* every Torn_tail fault can cost up to two records: the line it
         tears plus the faulted cell's own record glued onto the torn line;
         everything still recorded must be skipped *)
      let torn_budget =
        2
        * List.length
            (List.filter
               (fun (_, f) -> f = Some "torn_tail")
               (Chaos.described plan))
      in
      Alcotest.(check bool)
        (Printf.sprintf "at most %d torn cells re-ran (%d did)" torn_budget
           (Atomic.get counter))
        true
        (Atomic.get counter <= torn_budget))

let test_chaos_sweep_invariants () = chaos_sweep_invariants ~seed:7

let chaos_plan_prop =
  QCheck2.Test.make ~count:200 ~name:"chaos plans are deterministic and total"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 64))
    (fun (seed, cells) ->
      let p = Chaos.make ~seed ~cells in
      let p' = Chaos.make ~seed ~cells in
      p = p'
      && Array.length p.Chaos.faults = cells
      && List.length (Chaos.described p) = cells
      && Chaos.fault p cells = None
      && Chaos.fault p (-1) = None
      &&
      (* full taxonomy coverage once the plan is big enough *)
      if cells < Array.length Chaos.all_kinds then true
      else
        List.length
          (List.sort_uniq compare (List.filter_map snd (Chaos.described p)))
        = Array.length Chaos.all_kinds)

let chaos_supervisor_prop =
  QCheck2.Test.make ~count:5
    ~name:"supervisor invariants hold under random chaos plans"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      chaos_sweep_invariants ~seed;
      true)

(* ---------- suite ---------- *)

let qtests =
  List.map QCheck_alcotest.to_alcotest [ chaos_plan_prop; chaos_supervisor_prop ]

let () =
  Alcotest.run "chaos"
    [
      ( "solver-memory",
        [
          Alcotest.test_case "memout classified" `Quick test_solver_memout;
          Alcotest.test_case "generous ceiling unchanged" `Quick
            test_solver_memout_unbounded_is_unchanged;
          Alcotest.test_case "hook exception is interrupt" `Quick
            test_hook_exception_is_interrupt;
        ] );
      ( "failure",
        [ Alcotest.test_case "taxonomy" `Quick test_failure_taxonomy ] );
      ( "supervisor",
        [
          Alcotest.test_case "memout recorded" `Quick test_sweep_memout_recorded;
          Alcotest.test_case "fallback ladder" `Quick
            test_retry_walks_fallback_ladder;
          Alcotest.test_case "quarantine skipped on resume" `Quick
            test_quarantine_skipped_on_resume;
          Alcotest.test_case "retrying resume re-runs plain failures" `Quick
            test_retrying_resume_reruns_plain_failures;
          Alcotest.test_case "out lock excludes and reclaims" `Quick
            test_out_lock_excludes_and_reclaims;
          Alcotest.test_case "crash backtrace captured" `Quick
            test_crash_backtrace_captured;
        ] );
      ( "faults",
        [
          Alcotest.test_case "raise_at_conflict crashes" `Quick
            test_chaos_raise_at_conflict_is_crash;
          Alcotest.test_case "spurious_interrupt times out" `Quick
            test_chaos_spurious_interrupt_is_timeout;
          Alcotest.test_case "hook_raise times out" `Quick
            test_chaos_hook_raise_is_timeout;
          Alcotest.test_case "alloc_burst memouts" `Quick
            test_chaos_alloc_burst_is_memout;
          Alcotest.test_case "corrupt_drat rejected" `Quick
            test_chaos_corrupt_drat_rejected;
          Alcotest.test_case "torn_tail heals on resume" `Quick
            test_chaos_torn_tail_heals_on_resume;
        ] );
      ( "plans",
        [
          Alcotest.test_case "deterministic and covering" `Quick
            test_plan_deterministic_and_covering;
          Alcotest.test_case "sweep invariants under seed 7" `Quick
            test_chaos_sweep_invariants;
        ] );
      ("properties", qtests);
    ]
