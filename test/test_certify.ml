(* Differential certification tests: every registry encoding on random
   small routes, cross-checked three ways — the CDCL solver (whose UNSAT
   proofs must pass Drat_check and whose models must pass
   Solver.check_model + Detailed_route.verify), the independent Dpll
   solver, and Exact_coloring's exhaustive search. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Flow = C.Flow
module Strategy = C.Strategy
module Drat = Sat.Drat_check

let random_route seed =
  let arch = F.Arch.create 4 in
  let rng = F.Rng.create seed in
  let nl =
    F.Netlist.random ~rng ~arch ~num_nets:(6 + (seed mod 7)) ~max_fanout:2
      ~locality:2
  in
  F.Global_router.route arch nl

(* ground truth by exhaustion, plus a second solver's opinion *)
let exact_answer graph ~width = G.Exact_coloring.k_colorable graph ~k:width

let dpll_answer cnf = Sat.Dpll.solve ~max_decisions:2_000_000 cnf

let encode strategy graph ~width =
  let csp = E.Csp.make graph ~k:width in
  E.Csp_encode.encode ?symmetry:strategy.Strategy.symmetry
    strategy.Strategy.encoding csp

(* One cell of the differential harness: solve [route] at [width] under
   [strategy] with certification on, then cross-check the verdict against
   Dpll and Exact_coloring and re-derive the certificate by hand. *)
let check_cell ~route ~graph ~strategy ~width =
  let ctx = Printf.sprintf "%s w=%d" (Strategy.name strategy) width in
  let run =
    Flow.(
      submit (default_request |> with_strategy strategy |> with_certify true))
      route ~width
  in
  let enc = encode strategy graph ~width in
  (match run.Flow.outcome with
  | Flow.Timeout | Flow.Memout -> ()
  | Flow.Routable d ->
      Alcotest.(check (option bool)) (ctx ^ ": routable certified") (Some true)
        run.Flow.certified;
      (match F.Detailed_route.verify route ~width d.F.Detailed_route.tracks with
      | Ok () -> ()
      | Error v ->
          Alcotest.fail
            (Format.asprintf "%s: bad routing: %a" ctx
               F.Detailed_route.pp_violation v));
      (* the independent solvers must agree the instance is satisfiable *)
      (match dpll_answer enc.E.Csp_encode.cnf with
      | Sat.Dpll.Unsat -> Alcotest.fail (ctx ^ ": dpll disagrees (unsat)")
      | Sat.Dpll.Sat m ->
          Alcotest.(check bool) (ctx ^ ": dpll model satisfies cnf") true
            (Sat.Solver.check_model enc.E.Csp_encode.cnf m)
      | Sat.Dpll.Unknown -> ());
      (match exact_answer graph ~width with
      | G.Exact_coloring.Uncolorable ->
          Alcotest.fail (ctx ^ ": exact colouring disagrees (uncolorable)")
      | G.Exact_coloring.Colorable _ | G.Exact_coloring.Exhausted -> ())
  | Flow.Unroutable -> (
      Alcotest.(check (option bool)) (ctx ^ ": unroutable certified")
        (Some true) run.Flow.certified;
      (* re-derive an UNSAT proof and feed it to the new checker *)
      let proof = Sat.Proof.create () in
      (match
         Sat.Solver.solve ~config:strategy.Strategy.solver ~proof
           enc.E.Csp_encode.cnf
      with
      | Sat.Solver.Unsat, _ -> (
          match Drat.check enc.E.Csp_encode.cnf proof with
          | Ok _ -> ()
          | Error e ->
              Alcotest.fail
                (Format.asprintf "%s: proof rejected: %a" ctx Drat.pp_error e))
      | (Sat.Solver.Sat _ | Sat.Solver.Unknown | Sat.Solver.Memout), _ ->
          Alcotest.fail (ctx ^ ": re-solve disagrees with unroutable"));
      (match dpll_answer enc.E.Csp_encode.cnf with
      | Sat.Dpll.Sat _ -> Alcotest.fail (ctx ^ ": dpll disagrees (sat)")
      | Sat.Dpll.Unsat | Sat.Dpll.Unknown -> ());
      match exact_answer graph ~width with
      | G.Exact_coloring.Colorable _ ->
          Alcotest.fail (ctx ^ ": exact colouring disagrees (colorable)")
      | G.Exact_coloring.Uncolorable | G.Exact_coloring.Exhausted -> ()));
  run.Flow.outcome

(* All fifteen registry encodings on one fixed route, at the greedy upper
   bound (satisfiable) and one below (usually unsatisfiable). *)
let test_registry_differential () =
  let route = random_route 3 in
  let graph = F.Conflict_graph.build route in
  let ub = G.Greedy.upper_bound graph in
  let widths = List.sort_uniq compare [ max 1 (ub - 1); ub ] in
  let decisive = ref 0 in
  List.iter
    (fun encoding ->
      let strategy = Strategy.make encoding in
      List.iter
        (fun width ->
          match check_cell ~route ~graph ~strategy ~width with
          | Flow.Routable _ | Flow.Unroutable -> incr decisive
          | Flow.Timeout | Flow.Memout -> ())
        widths)
    E.Registry.all;
  Alcotest.(check bool) "most cells decisive" true (!decisive > 20)

(* QCheck: random ≤12-net routes under a rotating registry strategy — every
   decisive answer certifies and the three deciders never contradict. *)
let prop_random_routes_certify =
  QCheck2.Test.make ~count:15 ~name:"random routes certify under registry"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (seed, pick) ->
      let route = random_route seed in
      let graph = F.Conflict_graph.build route in
      let ub = G.Greedy.upper_bound graph in
      let encoding =
        List.nth E.Registry.all (pick mod List.length E.Registry.all)
      in
      let strategy = Strategy.make encoding in
      List.iter
        (fun width -> ignore (check_cell ~route ~graph ~strategy ~width))
        (List.sort_uniq compare [ max 1 (ub - 1); ub ]);
      true)

(* Differential emission fuzz: flat and +defs emission of every registry
   encoding must agree on SAT/UNSAT and on w_min, and --certify must hold
   for both — DRAT proofs range over the aux variables, the model check
   decodes from the slot variables and ignores them. *)
let test_defs_vs_flat_differential () =
  let route = random_route 11 in
  let graph = F.Conflict_graph.build route in
  let ub = G.Greedy.upper_bound graph in
  let widths = List.sort_uniq compare [ max 1 (ub - 1); ub ] in
  List.iter
    (fun encoding ->
      let flat = Strategy.make encoding in
      let defs = Strategy.with_defs flat in
      List.iter
        (fun width ->
          let of_outcome = function
            | Flow.Routable _ -> Some true
            | Flow.Unroutable -> Some false
            | Flow.Timeout | Flow.Memout -> None
          in
          let a = check_cell ~route ~graph ~strategy:flat ~width in
          let b = check_cell ~route ~graph ~strategy:defs ~width in
          match (of_outcome a, of_outcome b) with
          | Some x, Some y ->
              Alcotest.(check bool)
                (Printf.sprintf "%s w=%d: emissions agree"
                   (E.Encoding.name encoding) width)
                true (x = y)
          | _ -> ())
        widths)
    E.Registry.all

(* w_min through the incremental-width ladder, whose selector clauses ride
   on the +defs definitions when present. *)
let test_defs_vs_flat_w_min () =
  let route = random_route 5 in
  let graph = F.Conflict_graph.build route in
  List.iter
    (fun encoding ->
      let w_min strategy =
        match C.Incremental_width.minimal_colors ~strategy graph with
        | Ok r -> r.C.Incremental_width.w_min
        | Error m ->
            Alcotest.fail
              (Printf.sprintf "%s: incremental search failed: %s"
                 (Strategy.name strategy) m)
      in
      let flat = Strategy.make encoding in
      Alcotest.(check int)
        (Printf.sprintf "%s: w_min matches across emissions"
           (E.Encoding.name encoding))
        (w_min flat)
        (w_min (Strategy.with_defs flat)))
    E.Registry.all

let prop_defs_random_routes_certify =
  QCheck2.Test.make ~count:10
    ~name:"random routes certify under +defs registry strategies"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 1000))
    (fun (seed, pick) ->
      let route = random_route seed in
      let graph = F.Conflict_graph.build route in
      let ub = G.Greedy.upper_bound graph in
      let encoding =
        List.nth E.Registry.all (pick mod List.length E.Registry.all)
      in
      let strategy = Strategy.with_defs (Strategy.make encoding) in
      List.iter
        (fun width -> ignore (check_cell ~route ~graph ~strategy ~width))
        (List.sort_uniq compare [ max 1 (ub - 1); ub ]);
      true)

(* Symmetry breaking must not break certification: s1 prunes models, so the
   certificate path has to hold with it enabled too. *)
let test_certify_with_symmetry () =
  let route = random_route 7 in
  let graph = F.Conflict_graph.build route in
  let ub = G.Greedy.upper_bound graph in
  List.iter
    (fun symmetry ->
      let strategy =
        Strategy.make ~symmetry (List.hd E.Registry.previously_used)
      in
      ignore (check_cell ~route ~graph ~strategy ~width:(max 1 (ub - 1))))
    [ E.Symmetry.B1; E.Symmetry.S1 ]

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_routes_certify; prop_defs_random_routes_certify ]

let () =
  Alcotest.run "certify"
    [
      ( "differential",
        [
          Alcotest.test_case "registry encodings agree and certify" `Slow
            test_registry_differential;
          Alcotest.test_case "symmetry-broken runs certify" `Quick
            test_certify_with_symmetry;
        ] );
      ( "emission",
        [
          Alcotest.test_case "flat and +defs emissions agree and certify" `Slow
            test_defs_vs_flat_differential;
          Alcotest.test_case "w_min matches across emissions" `Slow
            test_defs_vs_flat_w_min;
        ] );
      ("properties", qtests);
    ]
