(* Tests for the experiment engine: the JSON codec, the bounded domain
   pool, the Run_record schema, sweeps (determinism, crash isolation,
   resume), the solver's interrupt poll interval, and portfolios. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module Json = Eng.Json
module Pool = Eng.Pool
module Run_record = Eng.Run_record
module Sweep = Eng.Sweep
module P = Eng.Portfolio
module Strategy = C.Strategy
module Flow = C.Flow

(* a small instance shared by several tests *)
let small_route =
  let arch = F.Arch.create 5 in
  let rng = F.Rng.create 11 in
  let nl = F.Netlist.random ~rng ~arch ~num_nets:20 ~max_fanout:3 ~locality:2 in
  F.Global_router.route arch nl

let small_graph = F.Conflict_graph.build small_route
let small_ub = G.Greedy.upper_bound small_graph

(* ---------- Json ---------- *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error m -> Alcotest.fail ("reparse failed: " ^ m)

let check_roundtrip name v =
  Alcotest.(check bool) name true (Json.equal v (roundtrip v))

let test_json_roundtrip_basics () =
  check_roundtrip "null" Json.Null;
  check_roundtrip "bools" (Json.List [ Json.Bool true; Json.Bool false ]);
  check_roundtrip "ints"
    (Json.List [ Json.Int 0; Json.Int (-42); Json.Int max_int; Json.Int min_int ]);
  check_roundtrip "floats"
    (Json.List
       [ Json.Float 0.1; Json.Float 1e-300; Json.Float (-3.5); Json.Float 1e17 ]);
  check_roundtrip "strings"
    (Json.String "line\nbreak \"quoted\" back\\slash \t tab \001 ctrl");
  check_roundtrip "utf8 passthrough" (Json.String "électrique — ≥2×");
  check_roundtrip "nested"
    (Json.Obj
       [
         ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Null) ] ]);
         ("empty-list", Json.List []);
         ("empty-obj", Json.Obj []);
       ])

let test_json_parse_details () =
  (match Json.of_string "{\"a\": 1e3}" with
  | Ok (Json.Obj [ ("a", Json.Float 1000.) ]) -> ()
  | Ok v -> Alcotest.fail ("unexpected parse: " ^ Json.to_string v)
  | Error m -> Alcotest.fail m);
  (* \u escapes, including a surrogate pair *)
  (match Json.of_string "\"\\u00e9\\ud83d\\ude00\"" with
  | Ok (Json.String s) ->
      Alcotest.(check string) "unicode escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse failed");
  (* non-finite floats print as null *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  (* errors *)
  let is_error s =
    match Json.of_string s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (is_error "1 2");
  Alcotest.(check bool) "torn object" true
    (is_error "{\"schema\":\"fpgasat.run/1\",\"bench");
  Alcotest.(check bool) "bad escape" true (is_error "\"\\q\"");
  Alcotest.(check bool) "lone surrogate" true (is_error "\"\\ud800\"")

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun xs -> Json.List xs) (list_size (int_range 0 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4) (pair key (self (depth - 1)))) );
          ])
    3

let json_roundtrip_prop =
  QCheck2.Test.make ~count:500 ~name:"random JSON values roundtrip" json_gen
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error _ -> false)

(* ---------- Pool ---------- *)

let test_pool_order_and_isolation () =
  let thunks = Array.init 23 (fun i () -> if i = 7 then failwith "boom" else i * i) in
  let results = Pool.map ~jobs:4 thunks in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "slot keeps input order" (i * i) v
      | Error e ->
          Alcotest.(check int) "only the raising slot errors" 7 i;
          Alcotest.(check bool) "error text kept" true
            (String.length e.Pool.message > 0);
          Alcotest.(check string) "exception class captured" "Failure"
            e.Pool.exn_class)
    results;
  (match results.(7) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "raising thunk must yield Error");
  (* jobs = 1 runs in the calling domain, sequentially *)
  let trace = ref [] in
  let thunks = Array.init 5 (fun i () -> trace := i :: !trace; i) in
  ignore (Pool.map ~jobs:1 thunks);
  Alcotest.(check (list int)) "sequential order" [ 0; 1; 2; 3; 4 ] (List.rev !trace)

let test_pool_progress_monotonic () =
  let seen = ref [] in
  let thunks = Array.init 12 (fun i () -> i) in
  ignore (Pool.map ~jobs:4 ~on_done:(fun n -> seen := n :: !seen) thunks);
  Alcotest.(check (list int)) "on_done counts 1..n" (List.init 12 (fun i -> i + 1))
    (List.rev !seen)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

(* ---------- Run_record ---------- *)

let sample_run width =
  Flow.(submit (default_request |> with_strategy Strategy.best_single))
    small_route ~width

let test_run_record_roundtrip () =
  List.iter
    (fun width ->
      let run = sample_run width in
      let r = Run_record.of_run ~benchmark:"small" ~wall_seconds:0.125 run in
      Alcotest.(check string) "key" ("small|" ^ Strategy.name Strategy.best_single
                                    ^ "|" ^ string_of_int width)
        (Run_record.key r);
      match Run_record.of_line (Run_record.to_line r) with
      | Ok r' ->
          Alcotest.(check bool) "roundtrip equal" true (Run_record.equal r r')
      | Error m -> Alcotest.fail m)
    [ small_ub; 1 ]

let test_run_record_crashed_roundtrip () =
  let r =
    Run_record.crashed ~benchmark:"b" ~strategy:"muldirect/none@siege" ~width:3
      ~wall_seconds:0.5 "Failure(\"boom\")"
  in
  Alcotest.(check string) "outcome name" "crashed"
    (Run_record.outcome_name r.Run_record.outcome);
  Alcotest.(check bool) "not decisive" false (Run_record.decisive r);
  match Run_record.of_line (Run_record.to_line r) with
  | Ok r' -> Alcotest.(check bool) "roundtrip equal" true (Run_record.equal r r')
  | Error m -> Alcotest.fail m

let test_run_record_ignores_unknown_keys () =
  let r = Run_record.of_run ~benchmark:"x" ~wall_seconds:1. (sample_run small_ub) in
  let line = Run_record.to_line r in
  (* splice an extra key after the opening brace: forward compatibility *)
  let extended =
    "{\"future_key\":[1,2,3]," ^ String.sub line 1 (String.length line - 1)
  in
  match Run_record.of_line extended with
  | Ok r' -> Alcotest.(check bool) "unknown keys ignored" true (Run_record.equal r r')
  | Error m -> Alcotest.fail m

let test_run_record_rejects_garbage () =
  let is_error s =
    match Run_record.of_line s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "not json" true (is_error "nonsense");
  Alcotest.(check bool) "missing fields" true (is_error "{\"benchmark\":\"x\"}");
  Alcotest.(check bool) "torn line" true
    (let line = Run_record.to_line
         (Run_record.of_run ~benchmark:"x" ~wall_seconds:1. (sample_run small_ub))
     in
     is_error (String.sub line 0 (String.length line / 2)))

(* ---------- Sweep ---------- *)

let sweep_strategies =
  [ Strategy.best_single;
    (match Strategy.of_name "muldirect/b1@minisat" with
    | Ok s -> s
    | Error m -> failwith m) ]

let sweep_jobs () =
  List.concat_map
    (fun width ->
      List.map
        (fun s -> Sweep.cell ~benchmark:"small" s small_route ~width)
        sweep_strategies)
    [ small_ub; max 1 (small_ub - 1) ]

let no_io = { Sweep.default_config with Sweep.out = None; on_progress = None }

let test_sweep_deterministic_across_jobs () =
  let r1 = Sweep.run { no_io with Sweep.jobs = 1 } (sweep_jobs ()) in
  let r8 = Sweep.run { no_io with Sweep.jobs = 8 } (sweep_jobs ()) in
  Alcotest.(check int) "same cell count" (List.length r1) (List.length r8);
  List.iter2
    (fun (a : Run_record.t) (b : Run_record.t) ->
      (* identical modulo wall-clock noise: timings and wall_seconds vary,
         everything the solver computes must not *)
      Alcotest.(check string) "key" (Run_record.key a) (Run_record.key b);
      Alcotest.(check string) "outcome"
        (Run_record.outcome_name a.Run_record.outcome)
        (Run_record.outcome_name b.Run_record.outcome);
      Alcotest.(check int) "cnf vars" a.Run_record.cnf_vars b.Run_record.cnf_vars;
      Alcotest.(check int) "cnf clauses" a.Run_record.cnf_clauses
        b.Run_record.cnf_clauses;
      (* peak_heap_words is a GC observation, not a solver result: it
         legitimately varies with how many domains share the heap *)
      Alcotest.(check bool) "solver stats" true
        ({ a.Run_record.stats with Sat.Stats.peak_heap_words = 0 }
        = { b.Run_record.stats with Sat.Stats.peak_heap_words = 0 }))
    r1 r8

let test_sweep_crash_isolated () =
  let crash =
    {
      Sweep.benchmark = "small";
      strategy = "crash-strategy";
      width = 2;
      run = (fun ~budget:_ ~certify:_ ~telemetry:_ ~fallback:_ -> failwith "deliberate crash");
    }
  in
  let jobs = [ List.hd (sweep_jobs ()); crash; List.nth (sweep_jobs ()) 1 ] in
  let records = Sweep.run { no_io with Sweep.jobs = 2 } jobs in
  Alcotest.(check int) "all three cells reported" 3 (List.length records);
  (match (List.nth records 1).Run_record.outcome with
  | Run_record.Crashed m ->
      Alcotest.(check bool) "crash message kept" true
        (String.length m > 0)
  | _ -> Alcotest.fail "crashing job must produce a Crashed record");
  List.iter
    (fun i ->
      Alcotest.(check bool) "neighbours unaffected" true
        (match (List.nth records i).Run_record.outcome with
        | Run_record.Routable | Run_record.Unroutable -> true
        | Run_record.Timeout | Run_record.Memout | Run_record.Crashed _ ->
            false))
    [ 0; 2 ]

let with_temp_file f =
  let path = Filename.temp_file "fpgasat_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let counting_jobs counter =
  List.map
    (fun (j : Sweep.job) ->
      {
        j with
        Sweep.run =
          (fun ~budget ~certify ~telemetry ~fallback ->
            Atomic.incr counter;
            j.Sweep.run ~budget ~certify ~telemetry ~fallback);
      })
    (sweep_jobs ())

let test_sweep_resume_skips_completed () =
  with_temp_file (fun path ->
      let counter = Atomic.make 0 in
      let config =
        { no_io with Sweep.jobs = 2; out = Some path; resume = true }
      in
      let first = Sweep.run config (counting_jobs counter) in
      let ran_first = Atomic.get counter in
      Alcotest.(check int) "every cell executed once" (List.length first) ran_first;
      (* the file now holds every record: a rerun must solve nothing *)
      let progress = ref [] in
      let second =
        Sweep.run
          { config with Sweep.on_progress = Some (fun p -> progress := p :: !progress) }
          (counting_jobs counter)
      in
      Alcotest.(check int) "no cell re-solved" ran_first (Atomic.get counter);
      Alcotest.(check int) "all cells returned" (List.length first)
        (List.length second);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "records come from the file" true
            (Run_record.equal a b))
        first second;
      match !progress with
      | [] -> Alcotest.fail "progress callback never fired"
      | p :: _ ->
          Alcotest.(check int) "all skipped" (List.length first) p.Sweep.skipped)

let test_sweep_resume_tolerates_torn_line () =
  with_temp_file (fun path ->
      let counter = Atomic.make 0 in
      let config =
        { no_io with Sweep.jobs = 1; out = Some path; resume = true }
      in
      let first = Sweep.run config (counting_jobs counter) in
      let ran_first = Atomic.get counter in
      (* simulate a kill mid-write: drop the final record's tail *)
      let lines = String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all) in
      let lines = List.filter (fun l -> String.trim l <> "") lines in
      let torn =
        match List.rev lines with
        | last :: rest ->
            List.rev (String.sub last 0 (String.length last / 2) :: rest)
        | [] -> Alcotest.fail "sweep wrote nothing"
      in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) torn);
      let _, bad = Sweep.load path in
      Alcotest.(check int) "torn line detected" 1 bad;
      let second = Sweep.run config (counting_jobs counter) in
      Alcotest.(check int) "exactly the torn cell re-ran" (ran_first + 1)
        (Atomic.get counter);
      Alcotest.(check int) "full result set" (List.length first)
        (List.length second))

let test_sweep_budget_times_out () =
  (* a job that never finishes unless the deadline interrupt fires *)
  let spin =
    {
      Sweep.benchmark = "spin";
      strategy = "spin";
      width = 1;
      run =
        (fun ~budget ~certify:_ ~telemetry:_ ~fallback:_ ->
          (match budget.Sat.Solver.interrupt with
          | Some f ->
              (* deadline is wall-clock: poll until it passes *)
              while not (f ()) do
                Unix.sleepf 0.005
              done
          | None -> Alcotest.fail "no deadline interrupt installed");
          {
            Flow.outcome = Flow.Timeout;
            timings = { Flow.to_graph = 0.; to_cnf = 0.; solving = 0. };
            width = 1;
            strategy = Strategy.best_single;
            cnf_vars = 0;
            cnf_clauses = 0;
            solver_stats = Sat.Stats.create ();
            proof = None;
            certified = None;
            telemetry = None;
          })
    }
  in
  let records =
    Sweep.run { no_io with Sweep.jobs = 1; budget_seconds = Some 0.05 } [ spin ]
  in
  match (List.hd records).Run_record.outcome with
  | Run_record.Timeout -> ()
  | _ -> Alcotest.fail "budgeted spin job must time out"

let test_sweep_certify_records_certified () =
  (* acceptance criterion: sweep --certify --jobs 4 records certified: true
     for every decisive cell *)
  let records =
    Sweep.run { no_io with Sweep.jobs = 4; certify = true } (sweep_jobs ())
  in
  List.iter
    (fun (r : Run_record.t) ->
      match r.Run_record.outcome with
      | Run_record.Routable | Run_record.Unroutable ->
          Alcotest.(check (option bool))
            ("certified " ^ Run_record.key r)
            (Some true) r.Run_record.certified
      | Run_record.Timeout | Run_record.Memout | Run_record.Crashed _ ->
          Alcotest.(check (option bool)) "indecisive cells carry no flag" None
            r.Run_record.certified)
    records;
  Alcotest.(check bool) "summary reports certification" true
    (contains ~needle:"certified" (Sweep.summary records))

let test_certified_record_json () =
  let run =
    Flow.(
      submit
        (default_request
        |> with_strategy Strategy.best_single
        |> with_certify true))
      small_route ~width:small_ub
  in
  let r = Run_record.of_run ~benchmark:"small" ~wall_seconds:0.25 run in
  Alcotest.(check (option bool)) "certified in the record" (Some true)
    r.Run_record.certified;
  let line = Run_record.to_line r in
  Alcotest.(check bool) "serialised" true
    (contains ~needle:"\"certified\":true" line);
  (match Run_record.of_line line with
  | Ok r' -> Alcotest.(check bool) "roundtrip equal" true (Run_record.equal r r')
  | Error m -> Alcotest.fail m);
  (* no certification requested -> key absent, parses back as None *)
  let plain =
    Run_record.of_run ~benchmark:"small" ~wall_seconds:0.25
      (sample_run small_ub)
  in
  Alcotest.(check bool) "absent when not requested" false
    (contains ~needle:"certified" (Run_record.to_line plain))

(* ---------- wall-clock timing ---------- *)

(* The timing buckets must be wall clock, not process CPU time: a busy
   domain running concurrently must not inflate them. Pre-fix (Sys.time),
   the buckets of a run racing a spinner measured the spinner's CPU too and
   summed to ~2x the enclosing wall interval on a multi-core machine; with
   wall clock they are sub-intervals of it. *)
let test_timings_are_wall_clock () =
  let stop = Atomic.make false in
  let spinner =
    Domain.spawn (fun () ->
        let junk = ref 0 in
        while not (Atomic.get stop) do
          for i = 0 to 9_999 do
            junk := !junk + i
          done
        done;
        !junk)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join spinner))
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let run = sample_run (max 1 (small_ub - 1)) in
      let outer_wall = Unix.gettimeofday () -. t0 in
      let buckets = Flow.total run.Flow.timings in
      Alcotest.(check bool)
        (Printf.sprintf "buckets (%.4fs) within the wall interval (%.4fs)"
           buckets outer_wall)
        true
        (buckets <= (outer_wall *. 1.5) +. 0.05))

let test_sweep_solving_time_independent_of_jobs () =
  (* satellite regression test: per-cell solving times from a --jobs 4
     sweep must be within noise of --jobs 1 on the same fixed cells *)
  let solving records =
    List.map
      (fun (r : Run_record.t) -> r.Run_record.timings.Flow.solving)
      records
  in
  let r1 = Sweep.run { no_io with Sweep.jobs = 1 } (sweep_jobs ()) in
  let r4 = Sweep.run { no_io with Sweep.jobs = 4 } (sweep_jobs ()) in
  List.iter2
    (fun s1 s4 ->
      Alcotest.(check bool)
        (Printf.sprintf "solving %.4fs vs %.4fs within noise" s1 s4)
        true
        (s4 <= (3. *. s1) +. 0.05 && s1 <= (3. *. s4) +. 0.05))
    (solving r1) (solving r4)

let test_sweep_render_table_is_a_view () =
  let records = Sweep.run { no_io with Sweep.jobs = 1 } (sweep_jobs ()) in
  let table = Sweep.render_table records in
  List.iter
    (fun s ->
      let name = Strategy.name s in
      Alcotest.(check bool) ("column " ^ name) true (contains ~needle:name table))
    sweep_strategies;
  let summary = Sweep.summary records in
  Alcotest.(check bool) "summary counts cells" true
    (String.length summary > 0
    && String.sub summary 0 1 = string_of_int (List.length records))

(* ---------- solver poll interval ---------- *)

let unsat_cnf () =
  (* an unroutable-width CSP gives a small UNSAT formula with conflicts *)
  let k = max 1 (small_ub - 1) in
  let csp = E.Csp.make small_graph ~k in
  let enc =
    match E.Encoding.of_name "muldirect" with Ok e -> e | Error m -> failwith m
  in
  (E.Csp_encode.encode enc csp).E.Csp_encode.cnf

let interrupt_calls ~poll_every cnf =
  let calls = ref 0 in
  let budget =
    Sat.Solver.with_poll_interval poll_every
      (Sat.Solver.interruptible
         (fun () -> incr calls; false)
         Sat.Solver.no_budget)
  in
  (match Sat.Solver.solve ~budget cnf with
  | Sat.Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "formula should be UNSAT");
  !calls

let test_poll_interval_bounds_hook_calls () =
  let cnf = unsat_cnf () in
  let every_conflict = interrupt_calls ~poll_every:1 cnf in
  let coarse = interrupt_calls ~poll_every:1_000_000 cnf in
  Alcotest.(check bool) "hook fires when polled every conflict" true
    (every_conflict > 0);
  Alcotest.(check bool) "coarse polling calls the hook less" true
    (coarse < every_conflict);
  (* clamping: 0 behaves like 1 *)
  Alcotest.(check int) "poll interval clamps to 1" every_conflict
    (interrupt_calls ~poll_every:0 cnf)

(* ---------- Strategy registry roundtrip ---------- *)

let strategy_gen =
  let open QCheck2.Gen in
  let* encoding = oneofl E.Registry.all in
  let* symmetry = oneofl [ None; Some E.Symmetry.B1; Some E.Symmetry.S1 ] in
  let* solver = oneofl [ `Siege_like; `Minisat_like ] in
  return (Strategy.make ?symmetry ~solver encoding)

let strategy_roundtrip_prop =
  QCheck2.Test.make ~count:200
    ~name:"Strategy.of_name inverts Strategy.name over the registry"
    strategy_gen
    (fun s ->
      match Strategy.of_name (Strategy.name s) with
      | Ok s' -> String.equal (Strategy.name s) (Strategy.name s')
      | Error _ -> false)

(* ---------- Portfolio ---------- *)

let test_portfolio_simulated () =
  let width = max 1 (small_ub - 1) in
  let p = P.run ~mode:`Simulated Strategy.paper_portfolio_3 small_route ~width in
  Alcotest.(check int) "all members ran" 3 (List.length p.P.members);
  match p.P.winner with
  | None -> Alcotest.fail "no winner without budgets"
  | Some w ->
      let w_time = Flow.total w.P.run.Flow.timings in
      List.iter
        (fun m ->
          Alcotest.(check bool) "winner is fastest" true
            (w_time <= Flow.total m.P.run.Flow.timings +. 1e-9))
        p.P.members

let test_portfolio_members_agree () =
  let width = max 1 (small_ub - 1) in
  let p = P.run ~mode:`Simulated Strategy.paper_portfolio_3 small_route ~width in
  let verdicts =
    List.filter_map
      (fun m ->
        match m.P.run.Flow.outcome with
        | Flow.Routable _ -> Some true
        | Flow.Unroutable -> Some false
        | Flow.Timeout | Flow.Memout -> None)
      p.P.members
  in
  match verdicts with
  | [] -> Alcotest.fail "no decisive members"
  | v :: rest -> List.iter (fun v' -> Alcotest.(check bool) "agree" v v') rest

let test_portfolio_parallel () =
  let width = max 1 (small_ub - 1) in
  let p = P.run ~mode:`Parallel Strategy.paper_portfolio_2 small_route ~width in
  Alcotest.(check int) "two members" 2 (List.length p.P.members);
  match p.P.winner with
  | None -> Alcotest.fail "parallel portfolio found no answer"
  | Some w -> (
      match w.P.run.Flow.outcome with
      | Flow.Routable d ->
          Alcotest.(check bool) "verified routing" true
            (Array.length d.F.Detailed_route.tracks > 0)
      | Flow.Unroutable -> ()
      | Flow.Timeout | Flow.Memout ->
          Alcotest.fail "winner cannot be a timeout")

let test_portfolio_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Portfolio.run: empty")
    (fun () -> ignore (P.run [] small_route ~width:2))

(* ---------- suite ---------- *)

let qtests =
  List.map QCheck_alcotest.to_alcotest [ json_roundtrip_prop; strategy_roundtrip_prop ]

let () =
  Alcotest.run "engine"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_json_roundtrip_basics;
          Alcotest.test_case "parse details" `Quick test_json_parse_details;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order + crash isolation" `Quick
            test_pool_order_and_isolation;
          Alcotest.test_case "progress monotonic" `Quick test_pool_progress_monotonic;
        ] );
      ( "run-record",
        [
          Alcotest.test_case "roundtrip" `Quick test_run_record_roundtrip;
          Alcotest.test_case "crashed roundtrip" `Quick
            test_run_record_crashed_roundtrip;
          Alcotest.test_case "unknown keys ignored" `Quick
            test_run_record_ignores_unknown_keys;
          Alcotest.test_case "garbage rejected" `Quick test_run_record_rejects_garbage;
          Alcotest.test_case "certified json" `Quick test_certified_record_json;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_sweep_deterministic_across_jobs;
          Alcotest.test_case "crash isolated" `Quick test_sweep_crash_isolated;
          Alcotest.test_case "resume skips completed" `Quick
            test_sweep_resume_skips_completed;
          Alcotest.test_case "resume tolerates torn line" `Quick
            test_sweep_resume_tolerates_torn_line;
          Alcotest.test_case "budget times out" `Quick test_sweep_budget_times_out;
          Alcotest.test_case "certify records certified" `Quick
            test_sweep_certify_records_certified;
          Alcotest.test_case "table is a view" `Quick test_sweep_render_table_is_a_view;
        ] );
      ( "wall-clock",
        [
          Alcotest.test_case "timings are wall clock" `Quick
            test_timings_are_wall_clock;
          Alcotest.test_case "solving time independent of jobs" `Quick
            test_sweep_solving_time_independent_of_jobs;
        ] );
      ( "solver-budget",
        [
          Alcotest.test_case "poll interval bounds hook calls" `Quick
            test_poll_interval_bounds_hook_calls;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "simulated" `Quick test_portfolio_simulated;
          Alcotest.test_case "members agree" `Quick test_portfolio_members_agree;
          Alcotest.test_case "parallel" `Quick test_portfolio_parallel;
          Alcotest.test_case "empty rejected" `Quick test_portfolio_empty_rejected;
        ] );
      ("properties", qtests);
    ]
