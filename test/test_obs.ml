(* Tests for the observability layer: the trace ring buffer (wraparound,
   zero-allocation when disabled, sink mapping, Chrome export), telemetry
   derivation and its backward-compatible ride on the run-record schema,
   and the baseline perf gate's robustness rules. *)

module Sat = Fpgasat_sat
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module Obs = Fpgasat_obs
module Json = Obs.Json
module Trace = Obs.Trace
module Telemetry = Obs.Telemetry
module Baseline = Obs.Baseline
module Flow = C.Flow

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* a small instance for end-to-end runs *)
let small_route =
  let arch = F.Arch.create 5 in
  let rng = F.Rng.create 11 in
  let nl = F.Netlist.random ~rng ~arch ~num_nets:20 ~max_fanout:3 ~locality:2 in
  F.Global_router.route arch nl

(* ---------- Trace ring ---------- *)

let test_trace_capacity_rounds_up () =
  Alcotest.(check int) "default" Trace.default_capacity
    (Trace.capacity (Trace.create ()));
  Alcotest.(check int) "3 -> 4" 4 (Trace.capacity (Trace.create ~capacity:3 ()));
  Alcotest.(check int) "8 stays 8" 8
    (Trace.capacity (Trace.create ~capacity:8 ()));
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Trace.create: capacity < 1") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_trace_records_in_order () =
  let t = Trace.create ~capacity:16 () in
  Trace.record t Trace.Restart 1 0;
  Trace.record t Trace.Restart 2 0;
  Trace.record t Trace.Reduce_db 100 40;
  let evs = Trace.events t in
  Alcotest.(check int) "length" 3 (List.length evs);
  Alcotest.(check int) "total" 3 (Trace.total t);
  (match evs with
  | [ e1; e2; e3 ] ->
      Alcotest.(check bool) "kind 1" true (e1.Trace.kind = Trace.Restart);
      Alcotest.(check int) "a 1" 1 e1.Trace.a;
      Alcotest.(check int) "a 2" 2 e2.Trace.a;
      Alcotest.(check bool) "kind 3" true (e3.Trace.kind = Trace.Reduce_db);
      Alcotest.(check int) "b 3" 40 e3.Trace.b;
      Alcotest.(check bool) "ts monotone" true
        (e1.Trace.ts <= e2.Trace.ts && e2.Trace.ts <= e3.Trace.ts)
  | _ -> Alcotest.fail "expected 3 events")

let test_trace_ring_wraps () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.record t Trace.Restart i 0
  done;
  Alcotest.(check int) "total counts everything" 20 (Trace.total t);
  Alcotest.(check int) "length clamps to capacity" 8 (Trace.length t);
  let evs = Trace.events t in
  (* the retained window is the most recent [capacity] events, oldest
     first: 13..20 *)
  Alcotest.(check (list int)) "retained window"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.Trace.a) evs)

let test_trace_concurrent_recording () =
  let t = Trace.create ~capacity:1024 () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to 100 do
              Trace.record t Trace.Simplify_round ((d * 1000) + i) 0
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no event lost" 400 (Trace.total t);
  Alcotest.(check int) "all retained" 400 (Trace.length t)

let measure_alloc f =
  (* warm up so any one-time allocation (closure specialisation etc.)
     happens outside the measured window *)
  f ();
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_record_does_not_allocate () =
  let none : Trace.t option = None in
  let words =
    measure_alloc (fun () ->
        for i = 1 to 10_000 do
          Trace.record_opt none Trace.Restart i 0
        done)
  in
  Alcotest.(check (float 0.)) "disabled record_opt allocates nothing" 0. words

let test_enabled_record_does_not_allocate () =
  let t = Trace.create ~capacity:64 () in
  let words =
    measure_alloc (fun () ->
        for i = 1 to 10_000 do
          Trace.record t Trace.Restart i 0
        done)
  in
  Alcotest.(check (float 0.)) "enabled record allocates nothing" 0. words

(* The solver must not pay for events nobody listens to: solving with
   [on_event = None] (the default budget) allocates exactly as much as it
   did before the hook existed — the emission sites are a single match. *)
let test_solver_without_hook_no_event_allocation () =
  let cnf = Sat.Dimacs_cnf.parse_string "p cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n1 -3 0\n" in
  let solve () = ignore (Sat.Solver.solve cnf) in
  solve ();
  let baseline = measure_alloc solve in
  let hooked =
    let t = Trace.create () in
    let budget = Sat.Solver.with_event_hook (Trace.sink t) Sat.Solver.no_budget in
    let solve () = ignore (Sat.Solver.solve ~budget cnf) in
    solve ();
    measure_alloc solve
  in
  (* both are small and within noise of each other; the point is the
     unhooked path does not balloon *)
  Alcotest.(check bool)
    (Printf.sprintf "unhooked alloc (%.0f) <= hooked alloc (%.0f) + slack"
       baseline hooked)
    true
    (baseline <= hooked +. 256.)

let test_sink_maps_solver_events () =
  let t = Trace.create () in
  let sink = Trace.sink t in
  sink (Sat.Event.Restart 3);
  sink (Sat.Event.Reduce_db (200, 80));
  sink (Sat.Event.Memout_poll 12345);
  sink (Sat.Event.Simplify_round 2);
  let kinds = List.map (fun e -> (e.Trace.kind, e.Trace.a, e.Trace.b)) (Trace.events t) in
  Alcotest.(check bool) "mapping" true
    (kinds
    = [
        (Trace.Restart, 3, 0);
        (Trace.Reduce_db, 200, 80);
        (Trace.Memout_poll, 12345, 0);
        (Trace.Simplify_round, 2, 0);
      ])

let json_mem key = function
  | Json.Obj fields -> List.assoc_opt key fields
  | _ -> None

let test_trace_to_json_schema () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record t Trace.Restart i 0
  done;
  let j = Trace.to_json t in
  (match json_mem "schema" j with
  | Some (Json.String s) ->
      Alcotest.(check string) "schema" Trace.schema_version s
  | _ -> Alcotest.fail "schema key missing");
  (match json_mem "dropped" j with
  | Some (Json.Int d) -> Alcotest.(check int) "dropped" 2 d
  | _ -> Alcotest.fail "dropped key missing");
  match json_mem "events" j with
  | Some (Json.List evs) -> Alcotest.(check int) "events" 4 (List.length evs)
  | _ -> Alcotest.fail "events key missing"

let test_trace_to_chrome_spans () =
  let t = Trace.create () in
  Trace.record t Trace.Solve_begin 4 0;
  Trace.record t Trace.Restart 1 0;
  Trace.record t Trace.Solve_end 4 1;
  match Trace.to_chrome t with
  | Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Json.List evs ->
          let phases =
            List.filter_map
              (fun e ->
                match json_mem "ph" e with
                | Some (Json.String p) -> Some p
                | _ -> None)
              evs
          in
          (* the begin/end pair folds into one complete span + the restart
             instant *)
          Alcotest.(check bool) "one span" true (List.mem "X" phases);
          Alcotest.(check bool) "one instant" true (List.mem "i" phases);
          Alcotest.(check int) "two events" 2 (List.length evs)
      | _ -> Alcotest.fail "traceEvents not a list")
  | _ -> Alcotest.fail "to_chrome not an object"

(* ---------- Telemetry ---------- *)

let sample_telemetry () =
  let stats = Sat.Stats.create () in
  stats.Sat.Stats.propagations <- 1000;
  stats.Sat.Stats.conflicts <- 50;
  Sat.Stats.bump_lbd stats 2;
  Sat.Stats.bump_lbd stats 2;
  Sat.Stats.bump_lbd stats 7;
  Sat.Stats.bump_lbd stats 99 (* clamps into the last bucket *);
  Sat.Stats.note_heap_words stats 123456;
  Telemetry.of_stats ~solving:0.5 ~words_allocated:4242 stats

let test_telemetry_of_stats () =
  let t = sample_telemetry () in
  Alcotest.(check (float 1e-9)) "props/s" 2000. t.Telemetry.propagations_per_sec;
  Alcotest.(check (float 1e-9)) "conflicts/s" 100. t.Telemetry.conflicts_per_sec;
  Alcotest.(check int) "hist[2]" 2 t.Telemetry.lbd_hist.(2);
  Alcotest.(check int) "hist[7]" 1 t.Telemetry.lbd_hist.(7);
  Alcotest.(check int) "hist[last] clamps" 1
    t.Telemetry.lbd_hist.(Telemetry.lbd_buckets - 1);
  Alcotest.(check int) "peak heap" 123456 t.Telemetry.peak_heap_words;
  Alcotest.(check int) "words allocated" 4242 t.Telemetry.words_allocated

let test_telemetry_zero_time_rates () =
  let stats = Sat.Stats.create () in
  stats.Sat.Stats.propagations <- 1000;
  let t = Telemetry.of_stats ~solving:0. ~words_allocated:0 stats in
  Alcotest.(check (float 0.)) "zero-time rate is 0" 0.
    t.Telemetry.propagations_per_sec

let test_telemetry_json_roundtrip () =
  let t = sample_telemetry () in
  match Telemetry.of_json (Telemetry.to_json t) with
  | Error m -> Alcotest.fail m
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (Telemetry.equal t t')

let qcheck_telemetry_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"telemetry JSON round-trips bit-exactly"
    QCheck2.Gen.(
      tup4 (float_bound_exclusive 1e6) (float_bound_exclusive 1e6)
        (array_size (int_bound Telemetry.lbd_buckets) (int_bound 1000))
        (tup2 nat nat))
    (fun (props, confls, hist_prefix, (words, peak)) ->
      let lbd_hist = Array.make Telemetry.lbd_buckets 0 in
      Array.iteri (fun i v -> lbd_hist.(i) <- v) hist_prefix;
      let t =
        {
          Telemetry.propagations_per_sec = props;
          conflicts_per_sec = confls;
          lbd_hist;
          words_allocated = words;
          peak_heap_words = peak;
          solve_seconds = props /. 1000.;
        }
      in
      match Telemetry.of_json (Telemetry.to_json t) with
      | Ok t' -> Telemetry.equal t t'
      | Error _ -> false)

(* ---------- run-record compatibility ---------- *)

let run_once ~telemetry =
  Flow.(submit (default_request |> with_telemetry telemetry)) small_route
    ~width:6

let test_record_with_telemetry_roundtrips () =
  let run = run_once ~telemetry:true in
  Alcotest.(check bool) "run carries telemetry" true (run.Flow.telemetry <> None);
  let r = Eng.Run_record.of_run ~benchmark:"small" ~wall_seconds:0.1 run in
  Alcotest.(check bool) "record carries telemetry" true
    (r.Eng.Run_record.telemetry <> None);
  match Eng.Run_record.of_line (Eng.Run_record.to_line r) with
  | Error m -> Alcotest.fail m
  | Ok r' -> Alcotest.(check bool) "roundtrip" true (Eng.Run_record.equal r r')

let test_record_without_telemetry_unchanged () =
  let run = run_once ~telemetry:false in
  Alcotest.(check bool) "no telemetry by default" true (run.Flow.telemetry = None);
  let r = Eng.Run_record.of_run ~benchmark:"small" ~wall_seconds:0.1 run in
  let line = Eng.Run_record.to_line r in
  Alcotest.(check bool) "line has no telemetry key" false
    (contains line "telemetry")

(* a pre-telemetry record line, verbatim from a seed-era sweep file *)
let old_line =
  {|{"schema":"fpgasat.run/1","benchmark":"alu2","strategy":"muldirect/s1@siege","width":4,"outcome":"unroutable","timings":{"to_graph":0.001,"to_cnf":0.002,"solving":0.003},"wall_seconds":0.01,"cnf":{"vars":552,"clauses":2628},"solver":{"decisions":494,"propagations":1087,"conflicts":58,"restarts":0,"learnt_clauses":57,"learnt_literals":100,"deleted_clauses":0,"max_decision_level":101}}|}

let test_old_records_still_parse () =
  match Eng.Run_record.of_line old_line with
  | Error m -> Alcotest.fail ("old line rejected: " ^ m)
  | Ok r ->
      Alcotest.(check bool) "telemetry absent" true
        (r.Eng.Run_record.telemetry = None);
      (* and re-serialising an old record stays telemetry-free *)
      let line' = Eng.Run_record.to_line r in
      Alcotest.(check string) "byte-identical" old_line line'

(* ---------- Baseline gate ---------- *)

let base = Baseline.make [ ("solve", [ ("a", 1.0); ("b", 2.0) ]) ]

let test_baseline_json_roundtrip () =
  let b =
    Baseline.make
      [ ("encode", [ ("x", 0.125) ]); ("solve", [ ("a", 1.0); ("b", 0.0) ]) ]
  in
  match Baseline.of_string (Json.to_string (Baseline.to_json b)) with
  | Error m -> Alcotest.fail m
  | Ok b' ->
      Alcotest.(check bool) "sections survive" true
        (Baseline.sections b = Baseline.sections b')

let test_baseline_equal_passes () =
  let r = Baseline.compare ~baseline:base ~current:base () in
  Alcotest.(check bool) "ok" true r.Baseline.ok;
  match r.Baseline.sections with
  | [ s ] ->
      Alcotest.(check (option (float 1e-9))) "geomean 1" (Some 1.) s.Baseline.geomean
  | _ -> Alcotest.fail "one section expected"

let test_baseline_regression_fails () =
  let current = Baseline.make [ ("solve", [ ("a", 1.5); ("b", 3.0) ]) ] in
  let r = Baseline.compare ~tolerance:1.25 ~baseline:base ~current () in
  Alcotest.(check bool) "regressed" false r.Baseline.ok;
  let r' = Baseline.compare ~tolerance:2.0 ~baseline:base ~current () in
  Alcotest.(check bool) "looser gate passes" true r'.Baseline.ok

let test_baseline_speedup_passes () =
  let current = Baseline.make [ ("solve", [ ("a", 0.5); ("b", 1.0) ]) ] in
  let r = Baseline.compare ~baseline:base ~current () in
  Alcotest.(check bool) "faster is fine" true r.Baseline.ok

let test_baseline_missing_section_fails () =
  let current = Baseline.make [ ("other", [ ("a", 1.0) ]) ] in
  let r = Baseline.compare ~baseline:base ~current () in
  Alcotest.(check bool) "missing section fails" false r.Baseline.ok;
  match r.Baseline.sections with
  | [ s ] ->
      Alcotest.(check (list string)) "all cells missing" [ "a"; "b" ]
        (List.sort String.compare s.Baseline.missing)
  | _ -> Alcotest.fail "one section expected"

let test_baseline_missing_cell_fails () =
  let current = Baseline.make [ ("solve", [ ("a", 1.0) ]) ] in
  let r = Baseline.compare ~baseline:base ~current () in
  Alcotest.(check bool) "missing cell fails" false r.Baseline.ok;
  match r.Baseline.sections with
  | [ s ] ->
      Alcotest.(check (list string)) "b missing" [ "b" ] s.Baseline.missing;
      Alcotest.(check int) "a still compared" 1 s.Baseline.cells
  | _ -> Alcotest.fail "one section expected"

let test_baseline_extra_current_ignored () =
  let current =
    Baseline.make
      [ ("solve", [ ("a", 1.0); ("b", 2.0); ("c", 999.0) ]); ("new", [ ("z", 1.0) ]) ]
  in
  let r = Baseline.compare ~baseline:base ~current () in
  Alcotest.(check bool) "extra cells/sections ignored" true r.Baseline.ok;
  Alcotest.(check int) "one baseline section judged" 1
    (List.length r.Baseline.sections)

let test_baseline_zero_time_cells () =
  (* both sides clamp to 1 µs: 0/0 compares equal instead of NaN, and a
     0 -> 1s blowup still registers as a (huge) regression *)
  let base0 = Baseline.make [ ("solve", [ ("a", 0.0) ]) ] in
  let same = Baseline.compare ~baseline:base0 ~current:base0 () in
  Alcotest.(check bool) "0/0 passes" true same.Baseline.ok;
  let blown = Baseline.make [ ("solve", [ ("a", 1.0) ]) ] in
  let r = Baseline.compare ~baseline:base0 ~current:blown () in
  Alcotest.(check bool) "0 -> 1s fails" false r.Baseline.ok

let test_baseline_tolerance_validated () =
  Alcotest.check_raises "non-positive tolerance"
    (Invalid_argument "Baseline.compare: tolerance <= 0") (fun () ->
      ignore (Baseline.compare ~tolerance:0. ~baseline:base ~current:base ()))

let test_baseline_render_verdict () =
  let ok = Baseline.render (Baseline.compare ~baseline:base ~current:base ()) in
  Alcotest.(check bool) "PASS" true
    (String.length ok >= 4 && String.sub ok (String.length ok - 4) 4 = "PASS");
  let current = Baseline.make [ ("solve", [ ("a", 100.0); ("b", 200.0) ]) ] in
  let fail =
    Baseline.render (Baseline.compare ~baseline:base ~current ())
  in
  Alcotest.(check bool) "FAIL" true (contains fail "FAIL")

(* ---------- end-to-end: flow + trace ---------- *)

let test_flow_trace_records_solve_span () =
  let trace = Trace.create () in
  let run =
    Flow.(submit (default_request |> with_trace trace)) small_route ~width:6
  in
  Alcotest.(check bool) "run decisive" true
    (match run.Flow.outcome with
    | Flow.Routable _ | Flow.Unroutable -> true
    | _ -> false);
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.events trace) in
  Alcotest.(check bool) "has begin" true (List.mem Trace.Solve_begin kinds);
  Alcotest.(check bool) "has end" true (List.mem Trace.Solve_end kinds);
  (* decisive outcome is flagged on the end event *)
  let ends = List.filter (fun e -> e.Trace.kind = Trace.Solve_end) (Trace.events trace) in
  Alcotest.(check bool) "decisive flag" true
    (List.for_all (fun e -> e.Trace.b = 1) ends)

let qtests = List.map QCheck_alcotest.to_alcotest [ qcheck_telemetry_roundtrip ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "capacity rounds up" `Quick
            test_trace_capacity_rounds_up;
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "ring wraps" `Quick test_trace_ring_wraps;
          Alcotest.test_case "concurrent recording" `Quick
            test_trace_concurrent_recording;
          Alcotest.test_case "disabled record allocation-free" `Quick
            test_disabled_record_does_not_allocate;
          Alcotest.test_case "enabled record allocation-free" `Quick
            test_enabled_record_does_not_allocate;
          Alcotest.test_case "solver without hook stays lean" `Quick
            test_solver_without_hook_no_event_allocation;
          Alcotest.test_case "sink maps solver events" `Quick
            test_sink_maps_solver_events;
          Alcotest.test_case "to_json schema" `Quick test_trace_to_json_schema;
          Alcotest.test_case "to_chrome folds spans" `Quick
            test_trace_to_chrome_spans;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "of_stats" `Quick test_telemetry_of_stats;
          Alcotest.test_case "zero-time rates" `Quick test_telemetry_zero_time_rates;
          Alcotest.test_case "json roundtrip" `Quick test_telemetry_json_roundtrip;
        ] );
      ( "run-record",
        [
          Alcotest.test_case "with telemetry roundtrips" `Quick
            test_record_with_telemetry_roundtrips;
          Alcotest.test_case "without telemetry unchanged" `Quick
            test_record_without_telemetry_unchanged;
          Alcotest.test_case "old records still parse" `Quick
            test_old_records_still_parse;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "json roundtrip" `Quick test_baseline_json_roundtrip;
          Alcotest.test_case "equal passes" `Quick test_baseline_equal_passes;
          Alcotest.test_case "regression fails" `Quick test_baseline_regression_fails;
          Alcotest.test_case "speedup passes" `Quick test_baseline_speedup_passes;
          Alcotest.test_case "missing section fails" `Quick
            test_baseline_missing_section_fails;
          Alcotest.test_case "missing cell fails" `Quick
            test_baseline_missing_cell_fails;
          Alcotest.test_case "extra current ignored" `Quick
            test_baseline_extra_current_ignored;
          Alcotest.test_case "zero-time cells" `Quick test_baseline_zero_time_cells;
          Alcotest.test_case "tolerance validated" `Quick
            test_baseline_tolerance_validated;
          Alcotest.test_case "render verdict" `Quick test_baseline_render_verdict;
        ] );
      ( "flow",
        [
          Alcotest.test_case "trace records solve span" `Quick
            test_flow_trace_records_solve_span;
        ] );
      ("properties", qtests);
    ]
