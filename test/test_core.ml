(* Tests for the core flow: strategies, the end-to-end Flow.submit pipeline,
   minimal-width binary search, and report formatting. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Strategy = C.Strategy
module Flow = C.Flow

let strategy name =
  match Strategy.of_name name with Ok s -> s | Error m -> Alcotest.fail m

(* a small instance shared by several tests *)
let small_route =
  let arch = F.Arch.create 5 in
  let rng = F.Rng.create 11 in
  let nl = F.Netlist.random ~rng ~arch ~num_nets:20 ~max_fanout:3 ~locality:2 in
  F.Global_router.route arch nl

let small_graph = F.Conflict_graph.build small_route
let small_ub = G.Greedy.upper_bound small_graph

(* --- strategy names --- *)

let test_strategy_name_roundtrip () =
  List.iter
    (fun s ->
      let s' =
        match Strategy.of_name (Strategy.name s) with
        | Ok s' -> s'
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check string) "name roundtrip" (Strategy.name s) (Strategy.name s'))
    (Strategy.best_single :: Strategy.paper_portfolio_3)

let test_strategy_parsing () =
  let s = strategy "muldirect/b1@minisat" in
  Alcotest.(check string) "full name" "muldirect/b1@minisat" (Strategy.name s);
  let s2 = strategy "log" in
  Alcotest.(check string) "defaults" "log/none@siege" (Strategy.name s2);
  (match Strategy.of_name "nope/s1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad encoding accepted");
  (match Strategy.of_name "log/zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad symmetry accepted");
  match Strategy.of_name "log@zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad solver accepted"

let test_paper_strategies () =
  Alcotest.(check string) "best single" "ITE-linear-2+muldirect/s1@siege"
    (Strategy.name Strategy.best_single);
  Alcotest.(check int) "portfolio sizes" 2 (List.length Strategy.paper_portfolio_2);
  Alcotest.(check int) "portfolio sizes" 3 (List.length Strategy.paper_portfolio_3)

(* --- flow --- *)

let test_flow_routable_at_upper_bound () =
  let run = Flow.submit Flow.default_request small_route ~width:small_ub in
  match run.Flow.outcome with
  | Flow.Routable detailed ->
      Alcotest.(check int) "width recorded" small_ub run.Flow.width;
      Alcotest.(check bool) "positive cnf" true (run.Flow.cnf_vars > 0);
      Alcotest.(check bool) "timings nonnegative" true
        (Flow.total run.Flow.timings >= 0.);
      Alcotest.(check int) "every subnet tracked"
        (F.Netlist.num_subnets small_route.F.Global_route.netlist)
        (Array.length detailed.F.Detailed_route.tracks)
  | Flow.Unroutable -> Alcotest.fail "DSATUR width must be routable"
  | Flow.Timeout | Flow.Memout -> Alcotest.fail "no budget was set"

let test_flow_unroutable_at_one () =
  if G.Graph.num_edges small_graph > 0 then begin
    let run =
      Flow.(submit (default_request |> with_proof true)) small_route ~width:1
    in
    match run.Flow.outcome with
    | Flow.Unroutable -> (
        match run.Flow.proof with
        | Some proof ->
            Alcotest.(check bool) "refutation trace" true
              (Sat.Proof.ends_with_empty proof)
        | None -> Alcotest.fail "proof requested but missing")
    | Flow.Routable _ | Flow.Timeout | Flow.Memout ->
        Alcotest.fail "width 1 must be unroutable"
  end

let test_flow_all_encodings_agree () =
  (* run every encoding at the same width; all must give the same verdict *)
  let width = max 1 (small_ub - 1) in
  let verdicts =
    List.map
      (fun e ->
        let run =
          Flow.(submit (default_request |> with_strategy (Strategy.make e)))
            small_route ~width
        in
        match run.Flow.outcome with
        | Flow.Routable _ -> true
        | Flow.Unroutable -> false
        | Flow.Timeout | Flow.Memout -> Alcotest.fail "unexpected timeout")
      E.Registry.all
  in
  match verdicts with
  | [] -> Alcotest.fail "no encodings"
  | v :: rest ->
      List.iteri
        (fun i v' ->
          Alcotest.(check bool) (Printf.sprintf "encoding %d agrees" (i + 1)) v v')
        rest

let test_flow_budget_timeout () =
  let spec = Option.get (F.Benchmarks.find "C1355") in
  let inst = F.Benchmarks.build spec in
  let request =
    Flow.(
      default_request
      |> with_strategy (strategy "muldirect")
      |> with_budget (Sat.Solver.conflict_budget 10))
  in
  let run =
    Flow.submit request inst.F.Benchmarks.route
      ~width:(inst.F.Benchmarks.max_congestion - 1)
  in
  match run.Flow.outcome with
  | Flow.Timeout | Flow.Memout -> ()
  | Flow.Routable _ | Flow.Unroutable ->
      Alcotest.fail "10 conflicts cannot decide C1355"

let test_flow_rejects_bad_width () =
  Alcotest.check_raises "width 0" (Invalid_argument "Flow.submit: width < 1")
    (fun () -> ignore (Flow.submit Flow.default_request small_route ~width:0))

let test_color_graph_at_upper_bound () =
  let answer, _ = Flow.color_graph small_graph ~k:small_ub in
  (match answer with
  | `Colorable coloring ->
      Alcotest.(check bool) "proper" true
        (G.Coloring.is_proper small_graph ~k:small_ub coloring)
  | `Uncolorable -> Alcotest.fail "upper bound must be colourable"
  | `Timeout | `Memout -> Alcotest.fail "no budget");
  ()

(* --- binary search --- *)

let test_binary_search_minimal () =
  match C.Binary_search.minimal_width small_route with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let w = r.C.Binary_search.w_min in
      (* w_min is routable (we hold a verified routing object) *)
      Alcotest.(check int) "routing width" w
        r.C.Binary_search.routing.F.Detailed_route.width;
      (* w_min - 1 is unroutable: either a SAT refutation was recorded or
         the clique bound covers it *)
      (match r.C.Binary_search.unsat_below with
      | Some run -> (
          Alcotest.(check int) "refuted width" (w - 1) run.Flow.width;
          match run.Flow.outcome with
          | Flow.Unroutable -> ()
          | Flow.Routable _ | Flow.Timeout | Flow.Memout ->
              Alcotest.fail "not a refutation")
      | None ->
          Alcotest.(check bool) "structural bound" true
            (G.Clique.lower_bound small_graph >= w));
      (* cross-check against an independent direct query *)
      let direct = Flow.submit Flow.default_request small_route ~width:(w - 1) in
      if w > 1 then
        match direct.Flow.outcome with
        | Flow.Unroutable -> ()
        | Flow.Routable _ -> Alcotest.fail "w_min - 1 was routable"
        | Flow.Timeout | Flow.Memout -> Alcotest.fail "unexpected timeout"

let test_binary_search_budget_error () =
  let spec = Option.get (F.Benchmarks.find "C1355") in
  let inst = F.Benchmarks.build spec in
  match
    C.Binary_search.minimal_width
      ~strategy:(strategy "muldirect")
      ~budget:(Sat.Solver.conflict_budget 5) inst.F.Benchmarks.route
  with
  | Error _ -> ()
  | Ok r ->
      (* a 5-conflict budget can only succeed if every query was trivial;
         accept but sanity-check the result *)
      Alcotest.(check bool) "w_min positive" true (r.C.Binary_search.w_min >= 1)

(* --- incremental width --- *)

let test_incremental_matches_binary_search () =
  match
    ( C.Binary_search.minimal_width small_route,
      C.Incremental_width.minimal_colors small_graph )
  with
  | Ok bs, Ok inc ->
      Alcotest.(check int) "same minimal width" bs.C.Binary_search.w_min
        inc.C.Incremental_width.w_min;
      Alcotest.(check bool) "colouring proper" true
        (G.Coloring.is_proper small_graph ~k:inc.C.Incremental_width.w_min
           inc.C.Incremental_width.coloring);
      Alcotest.(check bool) "made some queries" true
        (inc.C.Incremental_width.queries >= 1)
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_incremental_other_encodings () =
  List.iter
    (fun sname ->
      match
        C.Incremental_width.minimal_colors ~strategy:(strategy sname) small_graph
      with
      | Ok inc ->
          Alcotest.(check bool) "proper" true
            (G.Coloring.is_proper small_graph ~k:inc.C.Incremental_width.w_min
               inc.C.Incremental_width.coloring)
      | Error m -> Alcotest.fail (sname ^ ": " ^ m))
    [ "muldirect"; "log/s1"; "ITE-log/b1"; "direct-3+muldirect/s1@minisat" ]

let test_solver_assumptions_basic () =
  (* (x0 | x1) with assumption -x0 forces x1; assuming both negative is
     UNSAT under assumptions while the formula stays satisfiable *)
  let cnf = Sat.Cnf.create () in
  Sat.Cnf.ensure_vars cnf 2;
  Sat.Cnf.add_clause cnf [ Sat.Lit.pos 0; Sat.Lit.pos 1 ];
  let solver = Sat.Solver.create cnf in
  (match Sat.Solver.solve_with ~assumptions:[ Sat.Lit.neg_of 0 ] solver with
  | Sat.Solver.Q_sat model ->
      Alcotest.(check bool) "x1 true" true model.(1);
      Alcotest.(check bool) "x0 false" false model.(0)
  | Sat.Solver.Q_unsat | Sat.Solver.Q_unknown | Sat.Solver.Q_memout ->
      Alcotest.fail "satisfiable");
  (match
     Sat.Solver.solve_with
       ~assumptions:[ Sat.Lit.neg_of 0; Sat.Lit.neg_of 1 ]
       solver
   with
  | Sat.Solver.Q_unsat -> ()
  | Sat.Solver.Q_sat _ | Sat.Solver.Q_unknown | Sat.Solver.Q_memout ->
      Alcotest.fail "unsat under assumptions");
  (* the solver is reusable after an assumption failure *)
  match Sat.Solver.solve_with solver with
  | Sat.Solver.Q_sat _ -> ()
  | Sat.Solver.Q_unsat | Sat.Solver.Q_unknown | Sat.Solver.Q_memout ->
      Alcotest.fail "still satisfiable"

(* --- report --- *)
(* portfolio tests live in test_engine.ml, next to the engine the
   portfolios now run on *)

let test_format_seconds () =
  Alcotest.(check string) "small" "0.10" (C.Report.format_seconds 0.1);
  Alcotest.(check string) "thousands" "1,018.10" (C.Report.format_seconds 1018.1);
  Alcotest.(check string) "millions" "1,054,417.00"
    (C.Report.format_seconds 1054417.)

let test_format_speedup () =
  Alcotest.(check string) "unit" "1.00x" (C.Report.format_speedup 1.);
  Alcotest.(check string) "small" "2.30x" (C.Report.format_speedup 2.3);
  Alcotest.(check string) "large" "1,139x" (C.Report.format_speedup 1139.2)

let test_render_table () =
  let t =
    C.Report.render_table ~header:[ "name"; "t" ]
      [ [ "a"; "1.0" ]; [ "long-name" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length t > 0 && String.sub t 0 4 = "name");
  (* short row was padded, so every line has the same width *)
  let lines = String.split_on_char '\n' t |> List.filter (fun l -> l <> "") in
  match lines with
  | first :: rest ->
      List.iter
        (fun l ->
          Alcotest.(check int) "aligned" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "empty table"

let () =
  Alcotest.run "core"
    [
      ( "strategy",
        [
          Alcotest.test_case "name roundtrip" `Quick test_strategy_name_roundtrip;
          Alcotest.test_case "parsing" `Quick test_strategy_parsing;
          Alcotest.test_case "paper strategies" `Quick test_paper_strategies;
        ] );
      ( "flow",
        [
          Alcotest.test_case "routable at upper bound" `Quick
            test_flow_routable_at_upper_bound;
          Alcotest.test_case "unroutable at width 1" `Quick test_flow_unroutable_at_one;
          Alcotest.test_case "all encodings agree" `Slow test_flow_all_encodings_agree;
          Alcotest.test_case "budget timeout" `Quick test_flow_budget_timeout;
          Alcotest.test_case "bad width rejected" `Quick test_flow_rejects_bad_width;
          Alcotest.test_case "color_graph" `Quick test_color_graph_at_upper_bound;
        ] );
      ( "binary-search",
        [
          Alcotest.test_case "finds minimal width" `Quick test_binary_search_minimal;
          Alcotest.test_case "budget error" `Quick test_binary_search_budget_error;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "assumptions basic" `Quick test_solver_assumptions_basic;
          Alcotest.test_case "matches binary search" `Quick
            test_incremental_matches_binary_search;
          Alcotest.test_case "other encodings" `Quick test_incremental_other_encodings;
        ] );
      ( "report",
        [
          Alcotest.test_case "seconds" `Quick test_format_seconds;
          Alcotest.test_case "speedup" `Quick test_format_speedup;
          Alcotest.test_case "table" `Quick test_render_table;
        ] );
    ]
