(* Integration tests: the complete pipeline on real benchmark instances —
   generate, globally route, reduce, export interchange formats, solve with
   several strategies, decode, verify against the architecture, and check
   cross-strategy consistency. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Flow = C.Flow

let strategy name =
  match C.Strategy.of_name name with Ok s -> s | Error m -> Alcotest.fail m

(* use the two smallest benchmarks to keep the suite quick *)
let alu2 = F.Benchmarks.build (Option.get (F.Benchmarks.find "alu2"))
let too_large = F.Benchmarks.build (Option.get (F.Benchmarks.find "too_large"))

let budget = Sat.Solver.time_budget 60.

let test_benchmark_instances_consistent () =
  List.iter
    (fun inst ->
      let n = F.Netlist.num_subnets inst.F.Benchmarks.netlist in
      Alcotest.(check int) "graph vertices = subnets" n
        (G.Graph.num_vertices inst.F.Benchmarks.graph);
      Alcotest.(check bool) "congested" true (inst.F.Benchmarks.max_congestion >= 2))
    [ alu2; too_large ]

let test_full_flow_on_alu2 () =
  match C.Binary_search.minimal_width ~budget alu2.F.Benchmarks.route with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let w = r.C.Binary_search.w_min in
      Alcotest.(check bool) "w_min >= congestion" true
        (w >= alu2.F.Benchmarks.max_congestion);
      (* the detailed routing is verified against the FPGA model *)
      let d = r.C.Binary_search.routing in
      (match
         F.Detailed_route.verify alu2.F.Benchmarks.route ~width:w
           d.F.Detailed_route.tracks
       with
      | Ok () -> ()
      | Error v ->
          Alcotest.fail
            (Format.asprintf "invalid routing: %a" F.Detailed_route.pp_violation v));
      (* and the width below is refuted by an independent strategy *)
      let run =
        Flow.(
          submit
            (default_request
            |> with_strategy (strategy "log@minisat")
            |> with_budget budget))
          alu2.F.Benchmarks.route ~width:(w - 1)
      in
      (match run.Flow.outcome with
      | Flow.Unroutable -> ()
      | Flow.Routable _ -> Alcotest.fail "log found a routing below w_min"
      | Flow.Timeout | Flow.Memout -> Alcotest.fail "log timed out on alu2")

let test_unsat_instance_has_drat_trace () =
  match C.Binary_search.minimal_width ~budget too_large.F.Benchmarks.route with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let w = r.C.Binary_search.w_min in
      if w > G.Clique.lower_bound too_large.F.Benchmarks.graph then begin
        let run =
          Flow.(
            submit (default_request |> with_proof true |> with_budget budget))
            too_large.F.Benchmarks.route ~width:(w - 1)
        in
        match (run.Flow.outcome, run.Flow.proof) with
        | Flow.Unroutable, Some proof ->
            Alcotest.(check bool) "refutation trace complete" true
              (Sat.Proof.ends_with_empty proof)
        | _ -> Alcotest.fail "expected a proved refutation"
      end

let test_interchange_formats () =
  (* the paper's tool flow materialises the colouring problem as DIMACS .col
     and the SAT problem as DIMACS cnf; both must round-trip on a real
     instance *)
  let graph = alu2.F.Benchmarks.graph in
  let col = G.Dimacs_col.to_string ~comments:[ "alu2 conflict graph" ] graph in
  let graph' = G.Dimacs_col.parse_string col in
  Alcotest.(check int) "col vertices" (G.Graph.num_vertices graph)
    (G.Graph.num_vertices graph');
  Alcotest.(check int) "col edges" (G.Graph.num_edges graph)
    (G.Graph.num_edges graph');
  let csp = E.Csp.make graph' ~k:alu2.F.Benchmarks.max_congestion in
  let encoded = E.Csp_encode.encode (List.hd E.Registry.new_encodings) csp in
  let cnf_text = Sat.Dimacs_cnf.to_string encoded.E.Csp_encode.cnf in
  let cnf' = Sat.Dimacs_cnf.parse_string cnf_text in
  Alcotest.(check int) "cnf clauses"
    (Sat.Cnf.num_clauses encoded.E.Csp_encode.cnf)
    (Sat.Cnf.num_clauses cnf');
  (* solving the re-parsed CNF gives the same verdict *)
  let v1 = fst (Sat.Solver.solve ~budget encoded.E.Csp_encode.cnf) in
  let v2 = fst (Sat.Solver.solve ~budget cnf') in
  let tag = function
    | Sat.Solver.Sat _ -> "sat"
    | Sat.Solver.Unsat -> "unsat"
    | Sat.Solver.Unknown | Sat.Solver.Memout -> "unknown"
  in
  Alcotest.(check string) "same verdict" (tag v1) (tag v2)

let test_strategies_consistent_on_alu2 () =
  (* several distinct strategies must agree at w_min and w_min - 1 *)
  match C.Binary_search.minimal_width ~budget alu2.F.Benchmarks.route with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let w = r.C.Binary_search.w_min in
      let strategies =
        [
          "muldirect/b1"; "ITE-log/s1"; "direct-3+muldirect/s1@minisat";
          "ITE-linear-2+direct/b1";
        ]
      in
      List.iter
        (fun sname ->
          let sat_run =
            Flow.(
              submit
                (default_request
                |> with_strategy (strategy sname)
                |> with_budget budget))
              alu2.F.Benchmarks.route ~width:w
          in
          (match sat_run.Flow.outcome with
          | Flow.Routable _ -> ()
          | Flow.Unroutable -> Alcotest.fail (sname ^ ": w_min unroutable?")
          | Flow.Timeout | Flow.Memout ->
              Alcotest.fail (sname ^ ": timeout at w_min"));
          let unsat_run =
            Flow.(
              submit
                (default_request
                |> with_strategy (strategy sname)
                |> with_budget budget))
              alu2.F.Benchmarks.route ~width:(w - 1)
          in
          match unsat_run.Flow.outcome with
          | Flow.Unroutable -> ()
          | Flow.Routable _ -> Alcotest.fail (sname ^ ": found impossible routing")
          | Flow.Timeout | Flow.Memout ->
              Alcotest.fail (sname ^ ": timeout below w_min"))
        strategies

let test_portfolio_on_benchmark () =
  let module P = Fpgasat_engine.Portfolio in
  let width = alu2.F.Benchmarks.max_congestion in
  let p =
    P.run ~mode:`Simulated ~budget C.Strategy.paper_portfolio_3
      alu2.F.Benchmarks.route ~width
  in
  match p.P.winner with
  | Some w ->
      Alcotest.(check bool) "portfolio time <= member times" true
        (List.for_all
           (fun m ->
             Flow.total w.P.run.Flow.timings
             <= Flow.total m.P.run.Flow.timings +. 1e-9)
           p.P.members)
  | None -> Alcotest.fail "portfolio found no answer"

let test_drat_check_validates_flow_proof () =
  (* independently re-derive the solver's unroutability proof for alu2 via
     reverse unit propagation — the strongest end-to-end correctness check
     in the repository *)
  match C.Binary_search.minimal_width ~budget alu2.F.Benchmarks.route with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let w = r.C.Binary_search.w_min in
      let graph = alu2.F.Benchmarks.graph in
      let csp = E.Csp.make graph ~k:(w - 1) in
      let encoded =
        E.Csp_encode.encode ~symmetry:E.Symmetry.S1
          (match E.Encoding.of_name "ITE-linear-2+muldirect" with
          | Ok e -> e
          | Error m -> Alcotest.fail m)
          csp
      in
      let proof = Sat.Proof.create () in
      (match Sat.Solver.solve ~proof encoded.E.Csp_encode.cnf with
      | Sat.Solver.Unsat, _ -> ()
      | _ -> Alcotest.fail "expected UNSAT");
      (match Sat.Drat_check.check encoded.E.Csp_encode.cnf proof with
      | Ok _ -> ()
      | Error e ->
          Alcotest.fail (Format.asprintf "%a" Sat.Drat_check.pp_error e))

let test_incremental_on_benchmark () =
  match
    ( C.Binary_search.minimal_width ~budget alu2.F.Benchmarks.route,
      C.Incremental_width.minimal_colors ~budget alu2.F.Benchmarks.graph )
  with
  | Ok bs, Ok inc ->
      Alcotest.(check int) "agree on w_min" bs.C.Binary_search.w_min
        inc.C.Incremental_width.w_min
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_exact_coloring_agrees_on_benchmark () =
  (* the CSP-search baseline agrees with the SAT flow on alu2's w_min *)
  match C.Binary_search.minimal_width ~budget alu2.F.Benchmarks.route with
  | Error m -> Alcotest.fail m
  | Ok r -> (
      let w = r.C.Binary_search.w_min in
      match G.Exact_coloring.k_colorable alu2.F.Benchmarks.graph ~k:w with
      | G.Exact_coloring.Colorable c ->
          Alcotest.(check bool) "proper" true
            (G.Coloring.is_proper alu2.F.Benchmarks.graph ~k:w c)
      | G.Exact_coloring.Uncolorable -> Alcotest.fail "B&B contradicts SAT"
      | G.Exact_coloring.Exhausted -> ()) (* acceptable: budgeted *)

let test_serial_roundtrip_preserves_verdict () =
  (* write the alu2 netlist + routes to disk, read them back, and check the
     flow gives the same verdict at the same width *)
  let nets_file = Filename.temp_file "alu2" ".nets" in
  let routes_file = Filename.temp_file "alu2" ".routes" in
  F.Serial.write_netlist nets_file alu2.F.Benchmarks.arch alu2.F.Benchmarks.netlist;
  F.Serial.write_routes routes_file alu2.F.Benchmarks.route;
  let _, netlist = F.Serial.read_netlist nets_file in
  let route = F.Serial.read_routes ~netlist routes_file in
  Sys.remove nets_file;
  Sys.remove routes_file;
  let w = alu2.F.Benchmarks.max_congestion in
  let request = Flow.(default_request |> with_budget budget) in
  let direct = Flow.submit request alu2.F.Benchmarks.route ~width:w in
  let via_files = Flow.submit request route ~width:w in
  let tag r =
    match r.Flow.outcome with
    | Flow.Routable _ -> "routable"
    | Flow.Unroutable -> "unroutable"
    | Flow.Timeout | Flow.Memout -> "timeout"
  in
  Alcotest.(check string) "same verdict" (tag direct) (tag via_files)

let test_greedy_vs_sat_optimality () =
  (* DSATUR (the one-net-at-a-time style baseline) may need more tracks than
     the SAT flow's proven optimum — never fewer *)
  match C.Binary_search.minimal_width ~budget alu2.F.Benchmarks.route with
  | Error m -> Alcotest.fail m
  | Ok r ->
      let dsatur_width = G.Greedy.upper_bound alu2.F.Benchmarks.graph in
      Alcotest.(check bool) "sat optimum <= dsatur" true
        (r.C.Binary_search.w_min <= dsatur_width)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "instances consistent" `Quick
            test_benchmark_instances_consistent;
          Alcotest.test_case "full flow on alu2" `Quick test_full_flow_on_alu2;
          Alcotest.test_case "drat trace on refutation" `Quick
            test_unsat_instance_has_drat_trace;
          Alcotest.test_case "interchange formats" `Quick test_interchange_formats;
          Alcotest.test_case "strategies consistent" `Slow
            test_strategies_consistent_on_alu2;
          Alcotest.test_case "portfolio" `Quick test_portfolio_on_benchmark;
          Alcotest.test_case "greedy vs sat optimality" `Quick
            test_greedy_vs_sat_optimality;
          Alcotest.test_case "drat-check of a flow proof" `Quick
            test_drat_check_validates_flow_proof;
          Alcotest.test_case "incremental on benchmark" `Quick
            test_incremental_on_benchmark;
          Alcotest.test_case "exact coloring agrees" `Quick
            test_exact_coloring_agrees_on_benchmark;
          Alcotest.test_case "serial roundtrip verdict" `Quick
            test_serial_roundtrip_preserves_verdict;
        ] );
    ]
