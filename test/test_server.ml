(* Solve-server tests: the persistent worker pool's admission control and
   drain, the answer cache's LRU policy, the wire protocol's JSON
   round-trips, CNF structural hashing, warm-ladder vs cold-flow agreement,
   and an in-process server exercised over a real Unix socket by concurrent
   clients (cache hits, overload, graceful drain). *)

module Sat = Fpgasat_sat
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module J = Fpgasat_obs.Json
module Srv = Fpgasat_server
module P = Srv.Protocol

let strategy name =
  match C.Strategy.of_name name with Ok s -> s | Error m -> Alcotest.fail m

let alu2 = F.Benchmarks.build (Option.get (F.Benchmarks.find "alu2"))

(* ---------- Pool.Persistent: admission control and drain ---------- *)

let test_pool_runs_submissions () =
  let pool = Eng.Pool.Persistent.create ~workers:2 () in
  let tickets =
    List.init 8 (fun i ->
        match Eng.Pool.Persistent.submit pool (fun () -> i * i) with
        | Eng.Pool.Persistent.Accepted t -> t
        | Rejected | Stopped -> Alcotest.fail "idle pool refused work")
  in
  List.iteri
    (fun i t ->
      match Eng.Pool.Persistent.wait t with
      | Ok v -> Alcotest.(check int) "result" (i * i) v
      | Error e -> Alcotest.fail e.Eng.Pool.message)
    tickets;
  Eng.Pool.Persistent.shutdown pool;
  Alcotest.(check int) "no domains after shutdown" 0
    (Eng.Pool.Persistent.workers pool)

let test_pool_isolates_raising_thunk () =
  let pool = Eng.Pool.Persistent.create ~workers:1 () in
  (match Eng.Pool.Persistent.run pool (fun () -> failwith "boom") with
  | Some (Error e) ->
      Alcotest.(check string) "exn class" "Failure" e.Eng.Pool.exn_class
  | Some (Ok ()) -> Alcotest.fail "raising thunk returned Ok"
  | None -> Alcotest.fail "pool refused work");
  (* the worker survived the exception *)
  (match Eng.Pool.Persistent.run pool (fun () -> 41 + 1) with
  | Some (Ok v) -> Alcotest.(check int) "worker survived" 42 v
  | _ -> Alcotest.fail "worker died after a raising thunk");
  Eng.Pool.Persistent.shutdown pool

(* One worker blocked on a mutex lets us fill the queue deterministically. *)
let test_pool_admission_control () =
  let gate = Mutex.create () and cond = Condition.create () in
  let release = ref false in
  let blocker () =
    Mutex.lock gate;
    while not !release do
      Condition.wait cond gate
    done;
    Mutex.unlock gate
  in
  let pool = Eng.Pool.Persistent.create ~workers:1 ~queue_capacity:1 () in
  let running =
    match Eng.Pool.Persistent.submit pool blocker with
    | Eng.Pool.Persistent.Accepted t -> t
    | Rejected | Stopped -> Alcotest.fail "blocker refused"
  in
  (* wait until the blocker is actually running, not queued *)
  let rec wait_running n =
    if n = 0 then Alcotest.fail "blocker never started";
    let queued, _ = Eng.Pool.Persistent.backlog pool in
    if queued > 0 then (Thread.delay 0.01; wait_running (n - 1))
  in
  wait_running 500;
  let queued =
    match Eng.Pool.Persistent.submit pool (fun () -> ()) with
    | Eng.Pool.Persistent.Accepted t -> t
    | Rejected | Stopped -> Alcotest.fail "first queued job refused"
  in
  (* the queue (capacity 1) is now full: admission control must answer
     Rejected instantly, without blocking *)
  (match Eng.Pool.Persistent.submit pool (fun () -> ()) with
  | Eng.Pool.Persistent.Rejected -> ()
  | Accepted _ -> Alcotest.fail "over-capacity submission accepted"
  | Stopped -> Alcotest.fail "pool reported Stopped while live");
  Alcotest.(check bool) "queued ticket still pending" true
    (Eng.Pool.Persistent.peek queued = None);
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  (match (Eng.Pool.Persistent.wait running, Eng.Pool.Persistent.wait queued) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "accepted submissions did not complete");
  Eng.Pool.Persistent.shutdown pool;
  (match Eng.Pool.Persistent.submit pool (fun () -> ()) with
  | Eng.Pool.Persistent.Stopped -> ()
  | Accepted _ | Rejected -> Alcotest.fail "shut-down pool admitted work");
  Alcotest.(check int) "workers joined" 0 (Eng.Pool.Persistent.workers pool)

let test_pool_shutdown_drains_backlog () =
  (* every accepted ticket must be filled even when shutdown begins while
     submissions are still queued behind a slow job *)
  let pool = Eng.Pool.Persistent.create ~workers:1 ~queue_capacity:16 () in
  let slow () = Thread.delay 0.05 in
  let first =
    match Eng.Pool.Persistent.submit pool slow with
    | Eng.Pool.Persistent.Accepted t -> t
    | _ -> Alcotest.fail "refused"
  in
  let rest =
    List.init 5 (fun i ->
        match Eng.Pool.Persistent.submit pool (fun () -> i) with
        | Eng.Pool.Persistent.Accepted t -> t
        | _ -> Alcotest.fail "refused")
  in
  Eng.Pool.Persistent.shutdown pool;
  (match Eng.Pool.Persistent.wait first with
  | Ok () -> ()
  | Error e -> Alcotest.fail e.Eng.Pool.message);
  List.iteri
    (fun i t ->
      match Eng.Pool.Persistent.wait t with
      | Ok v -> Alcotest.(check int) "drained result" i v
      | Error e -> Alcotest.fail e.Eng.Pool.message)
    rest

(* ---------- Answer_cache: LRU policy and counters ---------- *)

let test_cache_lru_eviction () =
  let c = Srv.Answer_cache.create ~capacity:2 () in
  Srv.Answer_cache.add c "a" 1;
  Srv.Answer_cache.add c "b" 2;
  (* touch "a" so "b" becomes the least recently used *)
  (match Srv.Answer_cache.find c "a" with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected hit on a");
  Srv.Answer_cache.add c "c" 3;
  Alcotest.(check int) "capacity respected" 2 (Srv.Answer_cache.length c);
  Alcotest.(check bool) "b evicted" true (Srv.Answer_cache.find c "b" = None);
  Alcotest.(check bool) "a survived" true (Srv.Answer_cache.find c "a" = Some 1);
  Alcotest.(check bool) "c present" true (Srv.Answer_cache.find c "c" = Some 3);
  let hits, misses, evictions = Srv.Answer_cache.stats c in
  Alcotest.(check int) "hits" 3 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "evictions" 1 evictions

let test_cache_refresh_on_add () =
  let c = Srv.Answer_cache.create ~capacity:2 () in
  Srv.Answer_cache.add c "a" 1;
  Srv.Answer_cache.add c "b" 2;
  (* re-adding "a" refreshes both value and recency *)
  Srv.Answer_cache.add c "a" 10;
  Alcotest.(check int) "no growth on re-add" 2 (Srv.Answer_cache.length c);
  Srv.Answer_cache.add c "c" 3;
  Alcotest.(check bool) "a refreshed, b evicted" true
    (Srv.Answer_cache.find c "a" = Some 10
    && Srv.Answer_cache.find c "b" = None)

(* ---------- Protocol: JSON round-trips and strict parsing ---------- *)

let test_protocol_request_roundtrip () =
  let reqs =
    [
      P.request ~id:"r1" ~strategy:"log@minisat" ~max_conflicts:500
        ~max_seconds:2.5 ~max_memory_mb:64 ~certify:true ~telemetry:true
        ~benchmark:"alu2" ~width:4 P.Route;
      P.request ~benchmark:"alu2" P.Min_width;
      P.request P.Ping;
      P.request P.Stats;
      P.request P.Shutdown;
      P.request ~id:"z" (P.Sleep 0.25);
    ]
  in
  List.iter
    (fun r ->
      match P.request_of_json (P.request_to_json r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %s round-trips" (P.op_name r.P.op))
            true (r = r')
      | Error m -> Alcotest.fail m)
    reqs

let test_protocol_response_roundtrip () =
  let resps =
    [
      P.response ~id:"r1" ~served_by:P.Cache
        ~run:(J.Obj [ ("outcome", J.String "routable") ])
        P.Done;
      P.response ~served_by:P.Warm ~min_width:6 P.Done;
      P.response ~message:"bad strategy" P.Failed;
      P.response P.Overloaded;
      P.response P.Shutting_down;
    ]
  in
  List.iter
    (fun r ->
      match P.response_of_json (P.response_to_json r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "response %s round-trips" (P.status_name r.P.status))
            true (r = r')
      | Error m -> Alcotest.fail m)
    resps

let test_protocol_rejects_malformed () =
  let expect_error what line =
    match P.parse_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": malformed request accepted")
  in
  expect_error "not json" "{{{";
  expect_error "wrong schema" {|{"schema":"nope/9","op":"ping"}|};
  expect_error "unknown op" {|{"schema":"fpgasat.req/1","op":"explode"}|};
  expect_error "route without benchmark"
    {|{"schema":"fpgasat.req/1","op":"route","width":3}|};
  expect_error "route with width 0"
    {|{"schema":"fpgasat.req/1","op":"route","benchmark":"alu2","width":0}|};
  expect_error "min_width without benchmark"
    {|{"schema":"fpgasat.req/1","op":"min_width"}|}

let test_budget_signature_distinguishes () =
  let base = P.request ~benchmark:"alu2" ~width:3 P.Route in
  let sigs =
    List.map P.budget_signature
      [
        base;
        { base with P.max_conflicts = Some 100 };
        { base with P.max_seconds = Some 1.0 };
        { base with P.max_memory_mb = Some 64 };
      ]
  in
  let distinct = List.sort_uniq compare sigs in
  Alcotest.(check int) "four distinct budget signatures" 4
    (List.length distinct)

(* ---------- Cnf.structural_hash ---------- *)

let test_structural_hash_ignores_provenance () =
  let build () =
    let cnf = Sat.Cnf.create ~capacity:4 () in
    let v = Sat.Cnf.fresh_vars cnf 5 in
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos v.(0); Sat.Lit.neg_of v.(1) ];
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos v.(2) ];
    Sat.Cnf.add_clause cnf
      [ Sat.Lit.neg_of v.(3); Sat.Lit.pos v.(4); Sat.Lit.pos v.(0) ];
    cnf
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "same content, same hash" true
    (Sat.Cnf.structural_hash a = Sat.Cnf.structural_hash b);
  let copied = Sat.Cnf.copy a in
  Alcotest.(check bool) "copy preserves hash" true
    (Sat.Cnf.structural_hash a = Sat.Cnf.structural_hash copied);
  (* one extra clause must change the hash *)
  Sat.Cnf.add_clause copied [ Sat.Lit.neg_of 0 ];
  Alcotest.(check bool) "added clause changes hash" true
    (Sat.Cnf.structural_hash a <> Sat.Cnf.structural_hash copied);
  (* a spare variable is content too (it widens the model space) *)
  let c = build () in
  ignore (Sat.Cnf.fresh_var c);
  Alcotest.(check bool) "extra variable changes hash" true
    (Sat.Cnf.structural_hash a <> Sat.Cnf.structural_hash c)

(* Random formulas: identical builds collide, any single-literal flip
   separates (an FNV-64 collision on such a pair would be astronomically
   unlikely and is a test failure in practice). *)
let qcheck_structural_hash =
  let gen =
    QCheck2.Gen.(
      let clause nvars =
        list_size (int_range 1 4)
          (tup2 (int_bound (nvars - 1)) bool)
      in
      int_range 2 8 >>= fun nvars ->
      list_size (int_range 1 10) (clause nvars) >>= fun clauses ->
      int_bound (List.length clauses - 1) >>= fun flip_clause ->
      return (nvars, clauses, flip_clause))
  in
  QCheck2.Test.make ~count:200
    ~name:"structural_hash: stable on rebuild, sensitive to a literal flip"
    gen
    (fun (nvars, clauses, flip_clause) ->
      let build mutate =
        let cnf = Sat.Cnf.create () in
        Sat.Cnf.ensure_vars cnf nvars;
        List.iteri
          (fun i lits ->
            let lits =
              List.map (fun (v, sign) -> Sat.Lit.make v sign) lits
            in
            let lits =
              if mutate && i = flip_clause then
                (* flipping the first literal's sign changes the clause —
                   unless its negation is already present, in which case the
                   normalised clause may dedupe/tautologise; keep the test
                   meaningful by adding a fresh literal instead *)
                Sat.Lit.make (nvars - 1) true :: Sat.Lit.negate (List.hd lits)
                :: lits
              else lits
            in
            Sat.Cnf.add_clause cnf lits)
          clauses;
        cnf
      in
      let a = build false and b = build false and m = build true in
      let content cnf =
        ( Sat.Cnf.num_vars cnf,
          List.init (Sat.Cnf.num_clauses cnf) (fun i ->
              Sat.Cnf.view_to_list (Sat.Cnf.get_clause cnf i)) )
      in
      let ha = Sat.Cnf.structural_hash a
      and hb = Sat.Cnf.structural_hash b
      and hm = Sat.Cnf.structural_hash m in
      (* identical builds always collide; the hash tracks normalised
         content exactly, so it separates the mutated build iff the
         mutation survived clause normalisation (a tautological original
         clause is dropped in both builds, leaving the content equal) *)
      ha = hb && content a = content b
      && if content a = content m then ha = hm else ha <> hm)

(* ---------- warm ladder vs cold flow agreement ---------- *)

let test_warm_agrees_with_cold () =
  let strat = strategy "direct@siege" in
  let session = Srv.Session.create ~benchmark:"alu2" strat alu2 in
  let lower, upper = Srv.Session.bounds session in
  Alcotest.(check bool) "bounds sane" true (1 <= lower && lower <= upper);
  (* probe a band of widths around the transition *)
  let widths =
    List.filter (fun w -> w >= 1) [ upper + 1; upper; upper - 1; upper - 2 ]
  in
  List.iter
    (fun w ->
      let warm = Srv.Session.route_warm session ~width:w in
      let cold =
        C.Flow.(submit (default_request |> with_strategy strat))
          alu2.F.Benchmarks.route ~width:w
      in
      let name o = C.Flow.outcome_name o in
      Alcotest.(check string)
        (Printf.sprintf "width %d verdict" w)
        (name cold.C.Flow.outcome)
        (name warm.C.Flow.outcome);
      (* warm runs report only solving time; encode/graph are amortised *)
      Alcotest.(check bool) "warm timings amortised" true
        (warm.C.Flow.timings.C.Flow.to_graph = 0.
        && warm.C.Flow.timings.C.Flow.to_cnf = 0.);
      (* below the greedy bound the ladder drives the solver through
         assumption selector levels; the max_decision_level watermark must
         count them even when no free decision happens (it used to track
         only free decisions, reading 0 on assumption-driven queries) *)
      (match warm.C.Flow.outcome with
      | (C.Flow.Routable _ | C.Flow.Unroutable) when w < upper ->
          Alcotest.(check bool)
            (Printf.sprintf "width %d decision levels counted" w)
            true
            (warm.C.Flow.solver_stats.Sat.Stats.max_decision_level >= 1)
      | _ -> ());
      match warm.C.Flow.outcome with
      | C.Flow.Routable d ->
          (match
             F.Detailed_route.verify alu2.F.Benchmarks.route ~width:w
               d.F.Detailed_route.tracks
           with
          | Ok () -> ()
          | Error v ->
              Alcotest.fail
                (Format.asprintf "warm routing invalid: %a"
                   F.Detailed_route.pp_violation v))
      | C.Flow.Unroutable | C.Flow.Timeout | C.Flow.Memout -> ())
    widths

let test_warm_min_width_agrees_with_search () =
  let strat = strategy "direct@siege" in
  let session = Srv.Session.create ~benchmark:"alu2" strat alu2 in
  let warm =
    match Srv.Session.min_width session with
    | Ok w -> w
    | Error m -> Alcotest.fail m
  in
  match
    C.Binary_search.minimal_width
      ~budget:(Sat.Solver.time_budget 60.)
      alu2.F.Benchmarks.route
  with
  | Ok r ->
      Alcotest.(check int) "warm min_width = binary search w_min"
        r.C.Binary_search.w_min warm
  | Error m -> Alcotest.fail m

(* ---------- the server over a real socket ---------- *)

let fresh_socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpgasat-test-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server ?(workers = 2) ?(queue_capacity = 16) ?(test_ops = true) f =
  let socket_path = fresh_socket_path () in
  let config =
    {
      (Srv.Server.default_config ~socket_path) with
      Srv.Server.workers;
      queue_capacity;
      test_ops;
    }
  in
  let server = Srv.Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Srv.Server.stop server;
      if Sys.file_exists socket_path then
        Alcotest.fail "socket file survived the drain")
    (fun () -> f server socket_path)

let call_ok socket req =
  match Srv.Client.one_shot ~socket req with
  | Ok resp -> resp
  | Error m -> Alcotest.fail m

let test_server_ping_and_stats () =
  with_server (fun _server socket ->
      let pong = call_ok socket (P.request ~id:"p1" P.Ping) in
      Alcotest.(check string) "ping ok" "ok" (P.status_name pong.P.status);
      Alcotest.(check bool) "id echoed" true (pong.P.resp_id = Some "p1");
      let stats = call_ok socket (P.request P.Stats) in
      match stats.P.payload with
      | Some payload ->
          Alcotest.(check bool) "stats counts the ping" true
            (match J.find payload "requests" with
            | Some (J.Int n) -> n >= 1
            | _ -> false)
      | None -> Alcotest.fail "stats response without payload")

let test_server_cache_hit_on_repeat () =
  with_server (fun server socket ->
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      let first = call_ok socket req in
      Alcotest.(check string) "first ok" "ok" (P.status_name first.P.status);
      Alcotest.(check bool) "first not from cache" true
        (first.P.served_by = Some P.Warm || first.P.served_by = Some P.Cold);
      let second = call_ok socket req in
      Alcotest.(check bool) "repeat served from cache" true
        (second.P.served_by = Some P.Cache);
      (* a cache replay is the stored answer verbatim: identical run
         payload, solver statistics included (no solver ran again) *)
      (match (first.P.run, second.P.run) with
      | Some a, Some b ->
          Alcotest.(check bool) "identical run payload" true (J.equal a b)
      | _ -> Alcotest.fail "route response without run payload");
      match Srv.Server.stats_json server with
      | J.Obj _ as payload ->
          Alcotest.(check bool) "server counted the cache hit" true
            (match J.find payload "cache_hits" with
            | Some (J.Int n) -> n >= 1
            | _ -> false)
      | _ -> Alcotest.fail "stats_json not an object")

let test_server_concurrent_clients () =
  with_server (fun _server socket ->
      let widths = [| 5; 6; 7; 5; 6; 7 |] in
      let results = Array.make (Array.length widths) None in
      let threads =
        Array.mapi
          (fun i w ->
            Thread.create
              (fun () ->
                let req =
                  P.request ~strategy:"direct@siege" ~benchmark:"alu2"
                    ~width:w P.Route
                in
                results.(i) <- Some (Srv.Client.one_shot ~socket req))
              ())
          widths
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok resp) ->
              Alcotest.(check string)
                (Printf.sprintf "client %d ok" i)
                "ok"
                (P.status_name resp.P.status);
              Alcotest.(check bool) "has run payload" true (resp.P.run <> None)
          | Some (Error m) -> Alcotest.fail m
          | None -> Alcotest.fail "client thread produced no result")
        results;
      (* the repeated (benchmark, width, strategy) triples agree on the
         verdict regardless of which worker or cache tier served them *)
      let outcome i =
        match results.(i) with
        | Some (Ok { P.run = Some run; _ }) -> J.find run "outcome"
        | _ -> None
      in
      Alcotest.(check bool) "same width, same verdict" true
        (outcome 0 = outcome 3 && outcome 1 = outcome 4 && outcome 2 = outcome 5))

let test_server_rejects_bad_requests () =
  with_server (fun _server socket ->
      (* malformed strategy: a protocol error, not a crash *)
      let bad_strategy =
        call_ok socket
          (P.request ~strategy:"direct-2+log" ~benchmark:"alu2" ~width:4
             P.Route)
      in
      Alcotest.(check string) "out-of-registry strategy fails" "error"
        (P.status_name bad_strategy.P.status);
      Alcotest.(check bool) "error carries a message" true
        (bad_strategy.P.message <> None);
      (* unknown benchmark *)
      let bad_bench =
        call_ok socket (P.request ~benchmark:"no_such_circuit" ~width:4 P.Route)
      in
      Alcotest.(check string) "unknown benchmark fails" "error"
        (P.status_name bad_bench.P.status);
      (* raw garbage on the wire still gets a parseable error line *)
      match Srv.Client.connect socket with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Srv.Client.close conn)
            (fun () ->
              match Srv.Client.call_line conn "this is not json" with
              | Error m -> Alcotest.fail m
              | Ok line -> (
                  match P.parse_response line with
                  | Ok resp ->
                      Alcotest.(check string) "garbage line -> error" "error"
                        (P.status_name resp.P.status)
                  | Error m -> Alcotest.fail m)))

let test_server_overload () =
  (* one worker, queue of one: a long sleep occupies the worker, a second
     sleep fills the queue, the third request must bounce as overloaded.
     The submissions are staggered on the server's own pool gauges —
     submitting both sleeps at once would race the worker's dequeue. *)
  with_server ~workers:1 ~queue_capacity:1 (fun server socket ->
      let pool_gauge key =
        match J.find (Srv.Server.stats_json server) "pool" with
        | Some pool -> (
            match J.find pool key with Some (J.Int n) -> n | _ -> -1)
        | None -> -1
      in
      let rec wait_for what f n =
        if n = 0 then Alcotest.fail ("timed out waiting for " ^ what);
        if not (f ()) then (
          Thread.delay 0.01;
          wait_for what f (n - 1))
      in
      let sleeper id secs =
        Thread.create
          (fun () ->
            ignore (Srv.Client.one_shot ~socket (P.request ~id (P.Sleep secs))))
          ()
      in
      let a = sleeper "a" 1.0 in
      wait_for "first sleep running" (fun () -> pool_gauge "running" = 1) 300;
      let b = sleeper "b" 1.0 in
      wait_for "second sleep queued" (fun () -> pool_gauge "queued" = 1) 300;
      let resp = call_ok socket (P.request (P.Sleep 0.1)) in
      Alcotest.(check string) "third sleep bounced" "overloaded"
        (P.status_name resp.P.status);
      (* overload is transient: once the backlog drains, work is admitted *)
      Thread.join a;
      Thread.join b;
      let after = call_ok socket (P.request (P.Sleep 0.01)) in
      Alcotest.(check string) "admitted after drain" "ok"
        (P.status_name after.P.status))

let test_server_graceful_drain () =
  let socket_path = fresh_socket_path () in
  let config =
    {
      (Srv.Server.default_config ~socket_path) with
      Srv.Server.workers = 1;
      test_ops = true;
    }
  in
  let server = Srv.Server.start config in
  (* park a request in flight, then begin the drain while it runs *)
  let in_flight = ref (Error "never ran") in
  let runner =
    Thread.create
      (fun () ->
        in_flight :=
          Srv.Client.one_shot ~socket:socket_path (P.request (P.Sleep 0.5)))
      ()
  in
  Thread.delay 0.15;
  Srv.Server.stop server;
  Thread.join runner;
  (* the in-flight request finished despite the drain *)
  (match !in_flight with
  | Ok resp ->
      Alcotest.(check string) "in-flight request completed" "ok"
        (P.status_name resp.P.status)
  | Error m -> Alcotest.fail ("in-flight request lost in drain: " ^ m));
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path);
  (* a new connection is refused after the drain *)
  (match Srv.Client.connect socket_path with
  | Error _ -> ()
  | Ok conn ->
      Srv.Client.close conn;
      Alcotest.fail "connected to a stopped server");
  (* stop is idempotent *)
  Srv.Server.stop server

let test_server_shutdown_op () =
  let socket_path = fresh_socket_path () in
  let config = Srv.Server.default_config ~socket_path in
  let server = Srv.Server.start config in
  let resp =
    match Srv.Client.one_shot ~socket:socket_path (P.request P.Shutdown) with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "shutdown acknowledged" "ok"
    (P.status_name resp.P.status);
  (* the op flags the stop; the host (here: the test) performs the drain *)
  let rec wait n =
    if n = 0 then Alcotest.fail "shutdown op never flagged the stop";
    if not (Srv.Server.stop_requested server) then (
      Thread.delay 0.01;
      wait (n - 1))
  in
  wait 500;
  Srv.Server.stop server;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path)

let test_sleep_gated_behind_test_ops () =
  with_server ~test_ops:false (fun _server socket ->
      let resp = call_ok socket (P.request (P.Sleep 0.01)) in
      Alcotest.(check string) "sleep refused without test_ops" "error"
        (P.status_name resp.P.status))

let qtests = List.map QCheck_alcotest.to_alcotest [ qcheck_structural_hash ]

let () =
  Alcotest.run "server"
    [
      ( "pool",
        [
          Alcotest.test_case "persistent pool runs submissions" `Quick
            test_pool_runs_submissions;
          Alcotest.test_case "raising thunk is isolated" `Quick
            test_pool_isolates_raising_thunk;
          Alcotest.test_case "admission control" `Quick
            test_pool_admission_control;
          Alcotest.test_case "shutdown drains the backlog" `Quick
            test_pool_shutdown_drains_backlog;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "re-add refreshes" `Quick
            test_cache_refresh_on_add;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request JSON round-trip" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "response JSON round-trip" `Quick
            test_protocol_response_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_protocol_rejects_malformed;
          Alcotest.test_case "budget signatures distinct" `Quick
            test_budget_signature_distinguishes;
        ] );
      ("hash", Alcotest.test_case "structural hash vs provenance" `Quick
          test_structural_hash_ignores_provenance
        :: qtests );
      ( "warm",
        [
          Alcotest.test_case "ladder agrees with cold flow" `Slow
            test_warm_agrees_with_cold;
          Alcotest.test_case "warm min_width agrees with search" `Slow
            test_warm_min_width_agrees_with_search;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_server_ping_and_stats;
          Alcotest.test_case "cache hit on repeat" `Slow
            test_server_cache_hit_on_repeat;
          Alcotest.test_case "concurrent clients" `Slow
            test_server_concurrent_clients;
          Alcotest.test_case "bad requests are protocol errors" `Quick
            test_server_rejects_bad_requests;
          Alcotest.test_case "overload" `Quick test_server_overload;
          Alcotest.test_case "graceful drain" `Quick test_server_graceful_drain;
          Alcotest.test_case "shutdown op" `Quick test_server_shutdown_op;
          Alcotest.test_case "sleep gated behind test_ops" `Quick
            test_sleep_gated_behind_test_ops;
        ] );
    ]
