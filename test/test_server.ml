(* Solve-server tests: the persistent worker pool's admission control and
   drain, the answer cache's LRU policy, the wire protocol's JSON
   round-trips, CNF structural hashing, warm-ladder vs cold-flow agreement,
   and an in-process server exercised over a real Unix socket by concurrent
   clients (cache hits, overload, graceful drain). *)

module Sat = Fpgasat_sat
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module J = Fpgasat_obs.Json
module Srv = Fpgasat_server
module P = Srv.Protocol

let strategy name =
  match C.Strategy.of_name name with Ok s -> s | Error m -> Alcotest.fail m

let alu2 = F.Benchmarks.build (Option.get (F.Benchmarks.find "alu2"))

(* ---------- Pool.Persistent: admission control and drain ---------- *)

let test_pool_runs_submissions () =
  let pool = Eng.Pool.Persistent.create ~workers:2 () in
  let tickets =
    List.init 8 (fun i ->
        match Eng.Pool.Persistent.submit pool (fun () -> i * i) with
        | Eng.Pool.Persistent.Accepted t -> t
        | Rejected | Stopped -> Alcotest.fail "idle pool refused work")
  in
  List.iteri
    (fun i t ->
      match Eng.Pool.Persistent.wait t with
      | Ok v -> Alcotest.(check int) "result" (i * i) v
      | Error e -> Alcotest.fail e.Eng.Pool.message)
    tickets;
  Eng.Pool.Persistent.shutdown pool;
  Alcotest.(check int) "no domains after shutdown" 0
    (Eng.Pool.Persistent.workers pool)

let test_pool_isolates_raising_thunk () =
  let pool = Eng.Pool.Persistent.create ~workers:1 () in
  (match Eng.Pool.Persistent.run pool (fun () -> failwith "boom") with
  | Some (Error e) ->
      Alcotest.(check string) "exn class" "Failure" e.Eng.Pool.exn_class
  | Some (Ok ()) -> Alcotest.fail "raising thunk returned Ok"
  | None -> Alcotest.fail "pool refused work");
  (* the worker survived the exception *)
  (match Eng.Pool.Persistent.run pool (fun () -> 41 + 1) with
  | Some (Ok v) -> Alcotest.(check int) "worker survived" 42 v
  | _ -> Alcotest.fail "worker died after a raising thunk");
  Eng.Pool.Persistent.shutdown pool

(* One worker blocked on a mutex lets us fill the queue deterministically. *)
let test_pool_admission_control () =
  let gate = Mutex.create () and cond = Condition.create () in
  let release = ref false in
  let blocker () =
    Mutex.lock gate;
    while not !release do
      Condition.wait cond gate
    done;
    Mutex.unlock gate
  in
  let pool = Eng.Pool.Persistent.create ~workers:1 ~queue_capacity:1 () in
  let running =
    match Eng.Pool.Persistent.submit pool blocker with
    | Eng.Pool.Persistent.Accepted t -> t
    | Rejected | Stopped -> Alcotest.fail "blocker refused"
  in
  (* wait until the blocker is actually running, not queued *)
  let rec wait_running n =
    if n = 0 then Alcotest.fail "blocker never started";
    let queued, _ = Eng.Pool.Persistent.backlog pool in
    if queued > 0 then (Thread.delay 0.01; wait_running (n - 1))
  in
  wait_running 500;
  let queued =
    match Eng.Pool.Persistent.submit pool (fun () -> ()) with
    | Eng.Pool.Persistent.Accepted t -> t
    | Rejected | Stopped -> Alcotest.fail "first queued job refused"
  in
  (* the queue (capacity 1) is now full: admission control must answer
     Rejected instantly, without blocking *)
  (match Eng.Pool.Persistent.submit pool (fun () -> ()) with
  | Eng.Pool.Persistent.Rejected -> ()
  | Accepted _ -> Alcotest.fail "over-capacity submission accepted"
  | Stopped -> Alcotest.fail "pool reported Stopped while live");
  Alcotest.(check bool) "queued ticket still pending" true
    (Eng.Pool.Persistent.peek queued = None);
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  (match (Eng.Pool.Persistent.wait running, Eng.Pool.Persistent.wait queued) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "accepted submissions did not complete");
  Eng.Pool.Persistent.shutdown pool;
  (match Eng.Pool.Persistent.submit pool (fun () -> ()) with
  | Eng.Pool.Persistent.Stopped -> ()
  | Accepted _ | Rejected -> Alcotest.fail "shut-down pool admitted work");
  Alcotest.(check int) "workers joined" 0 (Eng.Pool.Persistent.workers pool)

let test_pool_shutdown_drains_backlog () =
  (* every accepted ticket must be filled even when shutdown begins while
     submissions are still queued behind a slow job *)
  let pool = Eng.Pool.Persistent.create ~workers:1 ~queue_capacity:16 () in
  let slow () = Thread.delay 0.05 in
  let first =
    match Eng.Pool.Persistent.submit pool slow with
    | Eng.Pool.Persistent.Accepted t -> t
    | _ -> Alcotest.fail "refused"
  in
  let rest =
    List.init 5 (fun i ->
        match Eng.Pool.Persistent.submit pool (fun () -> i) with
        | Eng.Pool.Persistent.Accepted t -> t
        | _ -> Alcotest.fail "refused")
  in
  Eng.Pool.Persistent.shutdown pool;
  (match Eng.Pool.Persistent.wait first with
  | Ok () -> ()
  | Error e -> Alcotest.fail e.Eng.Pool.message);
  List.iteri
    (fun i t ->
      match Eng.Pool.Persistent.wait t with
      | Ok v -> Alcotest.(check int) "drained result" i v
      | Error e -> Alcotest.fail e.Eng.Pool.message)
    rest

(* ---------- Answer_cache: LRU policy and counters ---------- *)

let test_cache_lru_eviction () =
  let c = Srv.Answer_cache.create ~capacity:2 () in
  Srv.Answer_cache.add c "a" 1;
  Srv.Answer_cache.add c "b" 2;
  (* touch "a" so "b" becomes the least recently used *)
  (match Srv.Answer_cache.find c "a" with
  | Some 1 -> ()
  | _ -> Alcotest.fail "expected hit on a");
  Srv.Answer_cache.add c "c" 3;
  Alcotest.(check int) "capacity respected" 2 (Srv.Answer_cache.length c);
  Alcotest.(check bool) "b evicted" true (Srv.Answer_cache.find c "b" = None);
  Alcotest.(check bool) "a survived" true (Srv.Answer_cache.find c "a" = Some 1);
  Alcotest.(check bool) "c present" true (Srv.Answer_cache.find c "c" = Some 3);
  let hits, misses, evictions = Srv.Answer_cache.stats c in
  Alcotest.(check int) "hits" 3 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "evictions" 1 evictions

let test_cache_refresh_on_add () =
  let c = Srv.Answer_cache.create ~capacity:2 () in
  Srv.Answer_cache.add c "a" 1;
  Srv.Answer_cache.add c "b" 2;
  (* re-adding "a" refreshes both value and recency *)
  Srv.Answer_cache.add c "a" 10;
  Alcotest.(check int) "no growth on re-add" 2 (Srv.Answer_cache.length c);
  Srv.Answer_cache.add c "c" 3;
  Alcotest.(check bool) "a refreshed, b evicted" true
    (Srv.Answer_cache.find c "a" = Some 10
    && Srv.Answer_cache.find c "b" = None)

(* ---------- Answer_cache: write-ahead journal ---------- *)

let tmp_journal () = Filename.temp_file "fpgasat-journal" ".jsonl"

let journal_cleanup path =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path; path ^ ".lock"; path ^ ".compact" ]

let attach_ok cache path =
  match
    Srv.Answer_cache.attach_journal cache ~path ~to_json:Fun.id
      ~of_json:Option.some
  with
  | Ok n -> n
  | Error m -> Alcotest.fail ("attach_journal: " ^ m)

let count_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      !n)

let test_journal_replay_and_compaction () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      let a1 = J.Obj [ ("outcome", J.String "routable"); ("width", J.Int 4) ]
      and b = J.Obj [ ("outcome", J.String "unroutable"); ("width", J.Int 3) ]
      and a2 = J.Obj [ ("outcome", J.String "routable"); ("width", J.Int 5) ] in
      let c1 = Srv.Answer_cache.create ~capacity:8 () in
      Alcotest.(check int) "fresh journal replays nothing" 0
        (attach_ok c1 path);
      Srv.Answer_cache.add c1 "a" a1;
      Srv.Answer_cache.add c1 "b" b;
      Srv.Answer_cache.add c1 "a" a2;
      Srv.Answer_cache.detach_journal c1;
      Alcotest.(check int) "three appended lines" 3 (count_lines path);
      let c2 = Srv.Answer_cache.create ~capacity:8 () in
      Alcotest.(check int) "all lines replayed" 3 (attach_ok c2 path);
      Alcotest.(check int) "torn count zero" 0 (Srv.Answer_cache.torn c2);
      (* later lines supersede earlier ones; replayed values are
         byte-identical to what was stored *)
      (match Srv.Answer_cache.find c2 "a" with
      | Some v ->
          Alcotest.(check string) "a superseded, byte-identical"
            (J.to_string a2) (J.to_string v)
      | None -> Alcotest.fail "key a lost in replay");
      (match Srv.Answer_cache.find c2 "b" with
      | Some v ->
          Alcotest.(check string) "b byte-identical" (J.to_string b)
            (J.to_string v)
      | None -> Alcotest.fail "key b lost in replay");
      (* attach compacted the file: dead supersessions are gone *)
      Alcotest.(check int) "compacted to live entries" 2 (count_lines path);
      Srv.Answer_cache.detach_journal c2)

let test_journal_tolerates_torn_tail () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      let c1 = Srv.Answer_cache.create () in
      ignore (attach_ok c1 path);
      Srv.Answer_cache.add c1 "a" (J.Obj [ ("n", J.Int 1) ]);
      Srv.Answer_cache.add c1 "b" (J.Obj [ ("n", J.Int 2) ]);
      Srv.Answer_cache.add c1 "c" (J.Obj [ ("n", J.Int 3) ]);
      Srv.Answer_cache.detach_journal c1;
      (* the torn final line a kill mid-append leaves behind *)
      Eng.Chaos.Server.tear_journal ~bytes:3 path;
      let c2 = Srv.Answer_cache.create () in
      Alcotest.(check int) "intact lines replayed" 2 (attach_ok c2 path);
      Alcotest.(check int) "torn fragment counted" 1
        (Srv.Answer_cache.torn c2);
      Alcotest.(check bool) "torn entry dropped" true
        (Srv.Answer_cache.find c2 "c" = None);
      Alcotest.(check bool) "intact entries survive" true
        (Srv.Answer_cache.find c2 "a" <> None
        && Srv.Answer_cache.find c2 "b" <> None);
      (* compaction removed the fragment: a further replay is clean *)
      Srv.Answer_cache.detach_journal c2;
      let c3 = Srv.Answer_cache.create () in
      ignore (attach_ok c3 path);
      Alcotest.(check int) "fragment compacted away" 0
        (Srv.Answer_cache.torn c3);
      Srv.Answer_cache.detach_journal c3)

let test_journal_capacity_truncates_replay () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      let c1 = Srv.Answer_cache.create ~capacity:16 () in
      ignore (attach_ok c1 path);
      for i = 1 to 10 do
        Srv.Answer_cache.add c1
          (Printf.sprintf "k%d" i)
          (J.Obj [ ("n", J.Int i) ])
      done;
      Srv.Answer_cache.detach_journal c1;
      (* replaying into a smaller cache keeps only the newest entries *)
      let c2 = Srv.Answer_cache.create ~capacity:4 () in
      ignore (attach_ok c2 path);
      Alcotest.(check int) "LRU capacity bounds the replay" 4
        (Srv.Answer_cache.length c2);
      Alcotest.(check bool) "newest entries retained" true
        (Srv.Answer_cache.find c2 "k10" <> None
        && Srv.Answer_cache.find c2 "k1" = None);
      (* and compaction bounded the file to what survived *)
      Alcotest.(check int) "file bounded by capacity" 4 (count_lines path);
      Srv.Answer_cache.detach_journal c2)

let test_journal_lock_excludes_second_writer () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      let c1 = Srv.Answer_cache.create () in
      ignore (attach_ok c1 path);
      let c2 = Srv.Answer_cache.create () in
      (match
         Srv.Answer_cache.attach_journal c2 ~path ~to_json:Fun.id
           ~of_json:Option.some
       with
      | Error m ->
          Alcotest.(check bool) "error names the lock" true
            (let lower = String.lowercase_ascii m in
             let has_sub needle =
               let nl = String.length needle and ll = String.length lower in
               let rec at i =
                 i + nl <= ll
                 && (String.sub lower i nl = needle || at (i + 1))
               in
               at 0
             in
             has_sub "lock")
      | Ok _ -> Alcotest.fail "two live journals on one file");
      Srv.Answer_cache.detach_journal c1;
      (* the release frees the file for the next owner *)
      let c3 = Srv.Answer_cache.create () in
      ignore (attach_ok c3 path);
      Srv.Answer_cache.detach_journal c3)

(* Linearizability-style smoke under real parallelism: values are a pure
   function of their key, so whatever interleaving of add/find/evict the
   domains produce, a hit may only ever return its key's value, and the
   LRU bound must hold afterwards. *)
let qcheck_cache_concurrent =
  QCheck2.Test.make ~count:10
    ~name:"answer cache: concurrent domains only ever see coherent entries"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let capacity = 8 in
      let cache = Srv.Answer_cache.create ~capacity () in
      let keys = Array.init 16 (Printf.sprintf "key-%d") in
      let value k = "value-of:" ^ k in
      let coherent = Atomic.make true in
      let worker d =
        let st = Random.State.make [| seed; d |] in
        for _ = 1 to 300 do
          let k = keys.(Random.State.int st (Array.length keys)) in
          if Random.State.bool st then Srv.Answer_cache.add cache k (value k)
          else
            match Srv.Answer_cache.find cache k with
            | None -> ()
            | Some v ->
                if not (String.equal v (value k)) then
                  Atomic.set coherent false
        done
      in
      let domains =
        List.init 4 (fun d -> Domain.spawn (fun () -> worker d))
      in
      List.iter Domain.join domains;
      Atomic.get coherent && Srv.Answer_cache.length cache <= capacity)

(* ---------- Pool.Persistent: worker supervision ---------- *)

let rec wait_until what f n =
  if n = 0 then Alcotest.fail ("timed out waiting for " ^ what);
  if not (f ()) then begin
    Thread.delay 0.01;
    wait_until what f (n - 1)
  end

let test_pool_respawns_killed_worker () =
  let pool =
    Eng.Pool.Persistent.create ~workers:2 ~restart_backoff:0.01 ()
  in
  (match
     Eng.Pool.Persistent.run pool (fun () ->
         raise Eng.Pool.Persistent.Worker_killed)
   with
  | Some (Error e) ->
      Alcotest.(check bool) "classified as a worker death" true
        (Eng.Failure.error_is_worker_death e)
  | Some (Ok ()) -> Alcotest.fail "killing thunk returned Ok"
  | None -> Alcotest.fail "pool refused work");
  (* the ticket is filled before the dying domain reaches its death
     handler, so the counters lag the Error result — poll for them *)
  wait_until "death recorded"
    (fun () -> Eng.Pool.Persistent.deaths pool = 1)
    500;
  wait_until "replacement worker spawned"
    (fun () -> Eng.Pool.Persistent.workers pool = 2)
    500;
  Alcotest.(check int) "one death" 1 (Eng.Pool.Persistent.deaths pool);
  Alcotest.(check int) "one respawn" 1 (Eng.Pool.Persistent.respawns pool);
  (* the pool still works after supervision *)
  (match Eng.Pool.Persistent.run pool (fun () -> 6 * 7) with
  | Some (Ok v) -> Alcotest.(check int) "post-respawn result" 42 v
  | _ -> Alcotest.fail "pool dead after respawn");
  Eng.Pool.Persistent.shutdown pool;
  Alcotest.(check int) "workers joined" 0 (Eng.Pool.Persistent.workers pool)

let test_pool_restart_budget_exhausts () =
  let pool =
    Eng.Pool.Persistent.create ~workers:1 ~restart_budget:1
      ~restart_backoff:0.005 ()
  in
  let kill () =
    match
      Eng.Pool.Persistent.run pool (fun () ->
          raise Eng.Pool.Persistent.Worker_killed)
    with
    | Some (Error _) -> ()
    | _ -> Alcotest.fail "kill did not error"
  in
  kill ();
  wait_until "budgeted respawn"
    (fun () -> Eng.Pool.Persistent.respawns pool = 1)
    500;
  kill ();
  (* the budget (1) is spent: the second death is not replaced *)
  wait_until "budget exhausted, pool empty"
    (fun () -> Eng.Pool.Persistent.workers pool = 0)
    500;
  Alcotest.(check int) "two deaths" 2 (Eng.Pool.Persistent.deaths pool);
  Alcotest.(check int) "one respawn" 1 (Eng.Pool.Persistent.respawns pool);
  Eng.Pool.Persistent.shutdown pool

(* ---------- Chaos.Server: plans and the invariant checker ---------- *)

let test_chaos_server_plan_deterministic () =
  Array.iter
    (fun f ->
      Alcotest.(check bool)
        (Eng.Chaos.Server.fault_name f ^ " name round-trips")
        true
        (Eng.Chaos.Server.of_name (Eng.Chaos.Server.fault_name f) = Some f))
    Eng.Chaos.Server.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Eng.Chaos.Server.of_name "meteor_strike" = None);
  let a = Eng.Chaos.Server.plan ~seed:7 ~n:12
  and b = Eng.Chaos.Server.plan ~seed:7 ~n:12
  and c = Eng.Chaos.Server.plan ~seed:8 ~n:12 in
  Alcotest.(check bool) "same seed, same plan" true (a = b);
  Alcotest.(check bool) "different seed, different plan" true (a <> c);
  (* full taxonomy coverage even in a short plan *)
  Array.iter
    (fun kind ->
      Alcotest.(check bool)
        (Eng.Chaos.Server.fault_name kind ^ " appears")
        true
        (Array.exists (fun f -> f = kind) a))
    Eng.Chaos.Server.all

let test_chaos_server_invariant_checker () =
  let stats workers =
    J.Obj [ ("pool", J.Obj [ ("workers", J.Int workers) ]) ]
  in
  (match
     Eng.Chaos.Server.check_invariants ~expected_workers:2 ~stats:(stats 2)
       ~pairs:[ ("{\"a\":1}", "{\"a\":1}") ]
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match
     Eng.Chaos.Server.check_invariants ~expected_workers:2 ~stats:(stats 1)
       ~pairs:[]
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing worker not flagged");
  match
    Eng.Chaos.Server.check_invariants ~expected_workers:2 ~stats:(stats 2)
      ~pairs:[ ("{\"a\":1}", "{\"a\":2}") ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-identical replay not flagged"

(* ---------- Protocol: JSON round-trips and strict parsing ---------- *)

let test_protocol_request_roundtrip () =
  let reqs =
    [
      P.request ~id:"r1" ~strategy:"log@minisat" ~max_conflicts:500
        ~max_seconds:2.5 ~max_memory_mb:64 ~certify:true ~telemetry:true
        ~benchmark:"alu2" ~width:4 P.Route;
      P.request ~id:"r2" ~deadline_ms:750 ~fault:"worker_kill"
        ~benchmark:"alu2" ~width:4 P.Route;
      P.request ~benchmark:"alu2" P.Min_width;
      P.request P.Ping;
      P.request P.Stats;
      P.request P.Shutdown;
      P.request ~id:"z" (P.Sleep 0.25);
    ]
  in
  List.iter
    (fun r ->
      match P.request_of_json (P.request_to_json r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %s round-trips" (P.op_name r.P.op))
            true (r = r')
      | Error m -> Alcotest.fail m)
    reqs

let test_protocol_response_roundtrip () =
  let resps =
    [
      P.response ~id:"r1" ~served_by:P.Cache
        ~run:(J.Obj [ ("outcome", J.String "routable") ])
        P.Done;
      P.response ~served_by:P.Warm ~min_width:6 P.Done;
      P.response ~message:"bad strategy" P.Failed;
      P.response P.Overloaded;
      P.response P.Shutting_down;
      P.response ~id:"d1" ~message:"deadline passed" P.Deadline_exceeded;
    ]
  in
  List.iter
    (fun r ->
      match P.response_of_json (P.response_to_json r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "response %s round-trips" (P.status_name r.P.status))
            true (r = r')
      | Error m -> Alcotest.fail m)
    resps

let test_protocol_rejects_malformed () =
  let expect_error what line =
    match P.parse_request line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": malformed request accepted")
  in
  expect_error "not json" "{{{";
  expect_error "wrong schema" {|{"schema":"nope/9","op":"ping"}|};
  expect_error "unknown op" {|{"schema":"fpgasat.req/1","op":"explode"}|};
  expect_error "route without benchmark"
    {|{"schema":"fpgasat.req/1","op":"route","width":3}|};
  expect_error "route with width 0"
    {|{"schema":"fpgasat.req/1","op":"route","benchmark":"alu2","width":0}|};
  expect_error "min_width without benchmark"
    {|{"schema":"fpgasat.req/1","op":"min_width"}|}

let test_budget_signature_distinguishes () =
  let base = P.request ~benchmark:"alu2" ~width:3 P.Route in
  let sigs =
    List.map P.budget_signature
      [
        base;
        { base with P.max_conflicts = Some 100 };
        { base with P.max_seconds = Some 1.0 };
        { base with P.max_memory_mb = Some 64 };
      ]
  in
  let distinct = List.sort_uniq compare sigs in
  Alcotest.(check int) "four distinct budget signatures" 4
    (List.length distinct)

(* ---------- Cnf.structural_hash ---------- *)

let test_structural_hash_ignores_provenance () =
  let build () =
    let cnf = Sat.Cnf.create ~capacity:4 () in
    let v = Sat.Cnf.fresh_vars cnf 5 in
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos v.(0); Sat.Lit.neg_of v.(1) ];
    Sat.Cnf.add_clause cnf [ Sat.Lit.pos v.(2) ];
    Sat.Cnf.add_clause cnf
      [ Sat.Lit.neg_of v.(3); Sat.Lit.pos v.(4); Sat.Lit.pos v.(0) ];
    cnf
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "same content, same hash" true
    (Sat.Cnf.structural_hash a = Sat.Cnf.structural_hash b);
  let copied = Sat.Cnf.copy a in
  Alcotest.(check bool) "copy preserves hash" true
    (Sat.Cnf.structural_hash a = Sat.Cnf.structural_hash copied);
  (* one extra clause must change the hash *)
  Sat.Cnf.add_clause copied [ Sat.Lit.neg_of 0 ];
  Alcotest.(check bool) "added clause changes hash" true
    (Sat.Cnf.structural_hash a <> Sat.Cnf.structural_hash copied);
  (* a spare variable is content too (it widens the model space) *)
  let c = build () in
  ignore (Sat.Cnf.fresh_var c);
  Alcotest.(check bool) "extra variable changes hash" true
    (Sat.Cnf.structural_hash a <> Sat.Cnf.structural_hash c)

(* Random formulas: identical builds collide, any single-literal flip
   separates (an FNV-64 collision on such a pair would be astronomically
   unlikely and is a test failure in practice). *)
let qcheck_structural_hash =
  let gen =
    QCheck2.Gen.(
      let clause nvars =
        list_size (int_range 1 4)
          (tup2 (int_bound (nvars - 1)) bool)
      in
      int_range 2 8 >>= fun nvars ->
      list_size (int_range 1 10) (clause nvars) >>= fun clauses ->
      int_bound (List.length clauses - 1) >>= fun flip_clause ->
      return (nvars, clauses, flip_clause))
  in
  QCheck2.Test.make ~count:200
    ~name:"structural_hash: stable on rebuild, sensitive to a literal flip"
    gen
    (fun (nvars, clauses, flip_clause) ->
      let build mutate =
        let cnf = Sat.Cnf.create () in
        Sat.Cnf.ensure_vars cnf nvars;
        List.iteri
          (fun i lits ->
            let lits =
              List.map (fun (v, sign) -> Sat.Lit.make v sign) lits
            in
            let lits =
              if mutate && i = flip_clause then
                (* flipping the first literal's sign changes the clause —
                   unless its negation is already present, in which case the
                   normalised clause may dedupe/tautologise; keep the test
                   meaningful by adding a fresh literal instead *)
                Sat.Lit.make (nvars - 1) true :: Sat.Lit.negate (List.hd lits)
                :: lits
              else lits
            in
            Sat.Cnf.add_clause cnf lits)
          clauses;
        cnf
      in
      let a = build false and b = build false and m = build true in
      let content cnf =
        ( Sat.Cnf.num_vars cnf,
          List.init (Sat.Cnf.num_clauses cnf) (fun i ->
              Sat.Cnf.view_to_list (Sat.Cnf.get_clause cnf i)) )
      in
      let ha = Sat.Cnf.structural_hash a
      and hb = Sat.Cnf.structural_hash b
      and hm = Sat.Cnf.structural_hash m in
      (* identical builds always collide; the hash tracks normalised
         content exactly, so it separates the mutated build iff the
         mutation survived clause normalisation (a tautological original
         clause is dropped in both builds, leaving the content equal) *)
      ha = hb && content a = content b
      && if content a = content m then ha = hm else ha <> hm)

(* ---------- warm ladder vs cold flow agreement ---------- *)

let test_warm_agrees_with_cold () =
  let strat = strategy "direct@siege" in
  let session = Srv.Session.create ~benchmark:"alu2" strat alu2 in
  let lower, upper = Srv.Session.bounds session in
  Alcotest.(check bool) "bounds sane" true (1 <= lower && lower <= upper);
  (* probe a band of widths around the transition *)
  let widths =
    List.filter (fun w -> w >= 1) [ upper + 1; upper; upper - 1; upper - 2 ]
  in
  List.iter
    (fun w ->
      let warm = Srv.Session.route_warm session ~width:w in
      let cold =
        C.Flow.(submit (default_request |> with_strategy strat))
          alu2.F.Benchmarks.route ~width:w
      in
      let name o = C.Flow.outcome_name o in
      Alcotest.(check string)
        (Printf.sprintf "width %d verdict" w)
        (name cold.C.Flow.outcome)
        (name warm.C.Flow.outcome);
      (* warm runs report only solving time; encode/graph are amortised *)
      Alcotest.(check bool) "warm timings amortised" true
        (warm.C.Flow.timings.C.Flow.to_graph = 0.
        && warm.C.Flow.timings.C.Flow.to_cnf = 0.);
      (* below the greedy bound the ladder drives the solver through
         assumption selector levels; the max_decision_level watermark must
         count them even when no free decision happens (it used to track
         only free decisions, reading 0 on assumption-driven queries) *)
      (match warm.C.Flow.outcome with
      | (C.Flow.Routable _ | C.Flow.Unroutable) when w < upper ->
          Alcotest.(check bool)
            (Printf.sprintf "width %d decision levels counted" w)
            true
            (warm.C.Flow.solver_stats.Sat.Stats.max_decision_level >= 1)
      | _ -> ());
      match warm.C.Flow.outcome with
      | C.Flow.Routable d ->
          (match
             F.Detailed_route.verify alu2.F.Benchmarks.route ~width:w
               d.F.Detailed_route.tracks
           with
          | Ok () -> ()
          | Error v ->
              Alcotest.fail
                (Format.asprintf "warm routing invalid: %a"
                   F.Detailed_route.pp_violation v))
      | C.Flow.Unroutable | C.Flow.Timeout | C.Flow.Memout -> ())
    widths

let test_warm_min_width_agrees_with_search () =
  let strat = strategy "direct@siege" in
  let session = Srv.Session.create ~benchmark:"alu2" strat alu2 in
  let warm =
    match Srv.Session.min_width session with
    | Ok w -> w
    | Error m -> Alcotest.fail m
  in
  match
    C.Binary_search.minimal_width
      ~budget:(Sat.Solver.time_budget 60.)
      alu2.F.Benchmarks.route
  with
  | Ok r ->
      Alcotest.(check int) "warm min_width = binary search w_min"
        r.C.Binary_search.w_min warm
  | Error m -> Alcotest.fail m

(* ---------- the server over a real socket ---------- *)

let fresh_socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpgasat-test-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server ?(workers = 2) ?(queue_capacity = 16) ?(test_ops = true)
    ?cache_file f =
  let socket_path = fresh_socket_path () in
  let config =
    {
      (Srv.Server.default_config ~socket_path) with
      Srv.Server.workers;
      queue_capacity;
      cache_file;
      test_ops;
    }
  in
  let server = Srv.Server.start config in
  Fun.protect
    ~finally:(fun () ->
      Srv.Server.stop server;
      if Sys.file_exists socket_path then
        Alcotest.fail "socket file survived the drain")
    (fun () -> f server socket_path)

let call_ok socket req =
  match Srv.Client.one_shot ~socket req with
  | Ok resp -> resp
  | Error m -> Alcotest.fail m

let test_server_ping_and_stats () =
  with_server (fun _server socket ->
      let pong = call_ok socket (P.request ~id:"p1" P.Ping) in
      Alcotest.(check string) "ping ok" "ok" (P.status_name pong.P.status);
      Alcotest.(check bool) "id echoed" true (pong.P.resp_id = Some "p1");
      let stats = call_ok socket (P.request P.Stats) in
      match stats.P.payload with
      | Some payload ->
          Alcotest.(check bool) "stats counts the ping" true
            (match J.find payload "requests" with
            | Some (J.Int n) -> n >= 1
            | _ -> false)
      | None -> Alcotest.fail "stats response without payload")

let test_server_cache_hit_on_repeat () =
  with_server (fun server socket ->
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      let first = call_ok socket req in
      Alcotest.(check string) "first ok" "ok" (P.status_name first.P.status);
      Alcotest.(check bool) "first not from cache" true
        (first.P.served_by = Some P.Warm || first.P.served_by = Some P.Cold);
      let second = call_ok socket req in
      Alcotest.(check bool) "repeat served from cache" true
        (second.P.served_by = Some P.Cache);
      (* a cache replay is the stored answer verbatim: identical run
         payload, solver statistics included (no solver ran again) *)
      (match (first.P.run, second.P.run) with
      | Some a, Some b ->
          Alcotest.(check bool) "identical run payload" true (J.equal a b)
      | _ -> Alcotest.fail "route response without run payload");
      match Srv.Server.stats_json server with
      | J.Obj _ as payload ->
          Alcotest.(check bool) "server counted the cache hit" true
            (match J.find payload "cache_hits" with
            | Some (J.Int n) -> n >= 1
            | _ -> false)
      | _ -> Alcotest.fail "stats_json not an object")

let test_server_concurrent_clients () =
  with_server (fun _server socket ->
      let widths = [| 5; 6; 7; 5; 6; 7 |] in
      let results = Array.make (Array.length widths) None in
      let threads =
        Array.mapi
          (fun i w ->
            Thread.create
              (fun () ->
                let req =
                  P.request ~strategy:"direct@siege" ~benchmark:"alu2"
                    ~width:w P.Route
                in
                results.(i) <- Some (Srv.Client.one_shot ~socket req))
              ())
          widths
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | Some (Ok resp) ->
              Alcotest.(check string)
                (Printf.sprintf "client %d ok" i)
                "ok"
                (P.status_name resp.P.status);
              Alcotest.(check bool) "has run payload" true (resp.P.run <> None)
          | Some (Error m) -> Alcotest.fail m
          | None -> Alcotest.fail "client thread produced no result")
        results;
      (* the repeated (benchmark, width, strategy) triples agree on the
         verdict regardless of which worker or cache tier served them *)
      let outcome i =
        match results.(i) with
        | Some (Ok { P.run = Some run; _ }) -> J.find run "outcome"
        | _ -> None
      in
      Alcotest.(check bool) "same width, same verdict" true
        (outcome 0 = outcome 3 && outcome 1 = outcome 4 && outcome 2 = outcome 5))

let test_server_rejects_bad_requests () =
  with_server (fun _server socket ->
      (* malformed strategy: a protocol error, not a crash *)
      let bad_strategy =
        call_ok socket
          (P.request ~strategy:"direct-2+log" ~benchmark:"alu2" ~width:4
             P.Route)
      in
      Alcotest.(check string) "out-of-registry strategy fails" "error"
        (P.status_name bad_strategy.P.status);
      Alcotest.(check bool) "error carries a message" true
        (bad_strategy.P.message <> None);
      (* unknown benchmark *)
      let bad_bench =
        call_ok socket (P.request ~benchmark:"no_such_circuit" ~width:4 P.Route)
      in
      Alcotest.(check string) "unknown benchmark fails" "error"
        (P.status_name bad_bench.P.status);
      (* raw garbage on the wire still gets a parseable error line *)
      match Srv.Client.connect socket with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Srv.Client.close conn)
            (fun () ->
              match Srv.Client.call_line conn "this is not json" with
              | Error m -> Alcotest.fail m
              | Ok line -> (
                  match P.parse_response line with
                  | Ok resp ->
                      Alcotest.(check string) "garbage line -> error" "error"
                        (P.status_name resp.P.status)
                  | Error m -> Alcotest.fail m)))

let test_server_overload () =
  (* one worker, queue of one: a long sleep occupies the worker, a second
     sleep fills the queue, the third request must bounce as overloaded.
     The submissions are staggered on the server's own pool gauges —
     submitting both sleeps at once would race the worker's dequeue. *)
  with_server ~workers:1 ~queue_capacity:1 (fun server socket ->
      let pool_gauge key =
        match J.find (Srv.Server.stats_json server) "pool" with
        | Some pool -> (
            match J.find pool key with Some (J.Int n) -> n | _ -> -1)
        | None -> -1
      in
      let rec wait_for what f n =
        if n = 0 then Alcotest.fail ("timed out waiting for " ^ what);
        if not (f ()) then (
          Thread.delay 0.01;
          wait_for what f (n - 1))
      in
      let sleeper id secs =
        Thread.create
          (fun () ->
            ignore (Srv.Client.one_shot ~socket (P.request ~id (P.Sleep secs))))
          ()
      in
      let a = sleeper "a" 1.0 in
      wait_for "first sleep running" (fun () -> pool_gauge "running" = 1) 300;
      let b = sleeper "b" 1.0 in
      wait_for "second sleep queued" (fun () -> pool_gauge "queued" = 1) 300;
      let resp = call_ok socket (P.request (P.Sleep 0.1)) in
      Alcotest.(check string) "third sleep bounced" "overloaded"
        (P.status_name resp.P.status);
      (* overload is transient: once the backlog drains, work is admitted *)
      Thread.join a;
      Thread.join b;
      let after = call_ok socket (P.request (P.Sleep 0.01)) in
      Alcotest.(check string) "admitted after drain" "ok"
        (P.status_name after.P.status))

let test_server_graceful_drain () =
  let socket_path = fresh_socket_path () in
  let config =
    {
      (Srv.Server.default_config ~socket_path) with
      Srv.Server.workers = 1;
      test_ops = true;
    }
  in
  let server = Srv.Server.start config in
  (* park a request in flight, then begin the drain while it runs *)
  let in_flight = ref (Error "never ran") in
  let runner =
    Thread.create
      (fun () ->
        in_flight :=
          Srv.Client.one_shot ~socket:socket_path (P.request (P.Sleep 0.5)))
      ()
  in
  Thread.delay 0.15;
  Srv.Server.stop server;
  Thread.join runner;
  (* the in-flight request finished despite the drain *)
  (match !in_flight with
  | Ok resp ->
      Alcotest.(check string) "in-flight request completed" "ok"
        (P.status_name resp.P.status)
  | Error m -> Alcotest.fail ("in-flight request lost in drain: " ^ m));
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path);
  (* a new connection is refused after the drain *)
  (match Srv.Client.connect socket_path with
  | Error _ -> ()
  | Ok conn ->
      Srv.Client.close conn;
      Alcotest.fail "connected to a stopped server");
  (* stop is idempotent *)
  Srv.Server.stop server

let test_server_shutdown_op () =
  let socket_path = fresh_socket_path () in
  let config = Srv.Server.default_config ~socket_path in
  let server = Srv.Server.start config in
  let resp =
    match Srv.Client.one_shot ~socket:socket_path (P.request P.Shutdown) with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "shutdown acknowledged" "ok"
    (P.status_name resp.P.status);
  (* the op flags the stop; the host (here: the test) performs the drain *)
  let rec wait n =
    if n = 0 then Alcotest.fail "shutdown op never flagged the stop";
    if not (Srv.Server.stop_requested server) then (
      Thread.delay 0.01;
      wait (n - 1))
  in
  wait 500;
  Srv.Server.stop server;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket_path)

let test_sleep_gated_behind_test_ops () =
  with_server ~test_ops:false (fun _server socket ->
      let resp = call_ok socket (P.request (P.Sleep 0.01)) in
      Alcotest.(check string) "sleep refused without test_ops" "error"
        (P.status_name resp.P.status);
      let faulty =
        call_ok socket (P.request ~fault:"worker_kill" P.Ping)
      in
      Alcotest.(check string) "fault refused without test_ops" "error"
        (P.status_name faulty.P.status))

(* ---------- crash-safety: respawn, quarantine, deadlines ---------- *)

let server_pool_gauge server key =
  match J.find (Srv.Server.stats_json server) "pool" with
  | Some pool -> (
      match J.find pool key with Some (J.Int n) -> n | _ -> -1)
  | None -> -1

let test_server_worker_kill_respawn_and_quarantine () =
  with_server ~workers:2 (fun server socket ->
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      let kill () =
        let resp = call_ok socket { req with P.fault = Some "worker_kill" } in
        Alcotest.(check string) "killed request errors, never hangs" "error"
          (P.status_name resp.P.status);
        Alcotest.(check bool) "error names the worker death" true
          (match resp.P.message with
          | Some m ->
              String.length m >= 6 && String.sub m 0 6 = "worker"
          | None -> false)
      in
      kill ();
      (* the error response is written before the dying domain runs its
         death handler — poll the death counter, not just the gauge *)
      wait_until "first death and respawn"
        (fun () ->
          server_pool_gauge server "deaths" = 1
          && server_pool_gauge server "workers" = 2)
        500;
      kill ();
      wait_until "second death and respawn"
        (fun () ->
          server_pool_gauge server "deaths" = 2
          && server_pool_gauge server "workers" = 2)
        500;
      Alcotest.(check int) "two deaths recorded" 2
        (server_pool_gauge server "deaths");
      Alcotest.(check int) "two respawns recorded" 2
        (server_pool_gauge server "respawns");
      (* two deaths on the same CNF: the problem is now quarantined — the
         same request without a fault is refused without touching the
         pool, and the pool keeps its workers *)
      let resp = call_ok socket req in
      Alcotest.(check string) "quarantined request errors" "error"
        (P.status_name resp.P.status);
      Alcotest.(check bool) "error says quarantined" true
        (match resp.P.message with
        | Some m -> String.length m >= 11 && String.sub m 0 11 = "quarantined"
        | None -> false);
      Alcotest.(check int) "no further death" 2
        (server_pool_gauge server "deaths");
      (* the supervisor invariant: pool restored to configured size *)
      (match
         Eng.Chaos.Server.check_invariants ~expected_workers:2
           ~stats:(Srv.Server.stats_json server)
           ~pairs:[]
       with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (* other problems are unaffected by the quarantine *)
      let pong = call_ok socket (P.request P.Ping) in
      Alcotest.(check string) "server still serves" "ok"
        (P.status_name pong.P.status))

let test_server_deadline_exceeded () =
  with_server ~workers:1 (fun server socket ->
      (* warm the session so the deadline request's queue wait is the only
         variable under test *)
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      let first = call_ok socket req in
      Alcotest.(check string) "warm-up ok" "ok" (P.status_name first.P.status);
      (* the warm-up stays in the running gauge until its worker loops
         back to the queue (the response is written first) — drain it so
         the next running=1 really is the sleeper *)
      wait_until "warm-up drained"
        (fun () -> server_pool_gauge server "running" = 0)
        300;
      (* occupy the only worker, then queue a request whose deadline will
         pass while it waits *)
      let sleeper =
        Thread.create
          (fun () ->
            ignore (Srv.Client.one_shot ~socket (P.request (P.Sleep 0.5))))
          ()
      in
      wait_until "sleeper running"
        (fun () -> server_pool_gauge server "running" = 1)
        300;
      let shed = call_ok socket { req with P.deadline_ms = Some 50 } in
      Alcotest.(check string) "expired in queue -> shed" "deadline_exceeded"
        (P.status_name shed.P.status);
      Thread.join sleeper;
      (* a generous deadline passes through untouched (cache hit) *)
      let ok = call_ok socket { req with P.deadline_ms = Some 60_000 } in
      Alcotest.(check string) "generous deadline ok" "ok"
        (P.status_name ok.P.status);
      Alcotest.(check bool) "deadline shed counted" true
        (match J.find (Srv.Server.stats_json server) "deadline_exceeded" with
        | Some (J.Int n) -> n >= 1
        | _ -> false))

(* ---------- crash-safety: journal restart and stale sockets ---------- *)

let test_server_journal_survives_restart () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      let first_run =
        with_server ~workers:1 ~cache_file:path (fun _server socket ->
            let resp = call_ok socket req in
            Alcotest.(check string) "decisive answer" "ok"
              (P.status_name resp.P.status);
            match resp.P.run with
            | Some run -> J.to_string run
            | None -> Alcotest.fail "route response without run payload")
      in
      Alcotest.(check bool) "journal captured the answer" true
        (count_lines path >= 1);
      (* a "restarted" server on the same journal serves the answer from
         cache, byte-identically, without running a solver *)
      with_server ~workers:1 ~cache_file:path (fun server socket ->
          Alcotest.(check bool) "entries replayed at startup" true
            (Srv.Server.replayed server >= 1);
          let resp = call_ok socket req in
          Alcotest.(check bool) "served from cache" true
            (resp.P.served_by = Some P.Cache);
          let second_run =
            match resp.P.run with
            | Some run -> J.to_string run
            | None -> Alcotest.fail "cached response without run payload"
          in
          match
            Eng.Chaos.Server.check_invariants ~expected_workers:1
              ~stats:(Srv.Server.stats_json server)
              ~pairs:[ (first_run, second_run) ]
          with
          | Ok () -> ()
          | Error m -> Alcotest.fail m))

let test_server_journal_lock_excludes_second_server () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      with_server ~cache_file:path (fun _server _socket ->
          let config =
            {
              (Srv.Server.default_config ~socket_path:(fresh_socket_path ()))
              with
              Srv.Server.cache_file = Some path;
            }
          in
          match Srv.Server.start config with
          | exception Failure _ -> ()
          | second ->
              Srv.Server.stop second;
              Alcotest.fail "two live servers shared one cache journal"))

let test_server_torn_journal_fault () =
  let path = tmp_journal () in
  Fun.protect
    ~finally:(fun () -> journal_cleanup path)
    (fun () ->
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      with_server ~workers:1 ~cache_file:path (fun _server socket ->
          let resp = call_ok socket req in
          Alcotest.(check string) "decisive answer" "ok"
            (P.status_name resp.P.status);
          (* tear the journal mid-flight, as a kill mid-append would *)
          let torn = call_ok socket (P.request ~fault:"torn_journal" P.Ping) in
          Alcotest.(check string) "fault carrier still answered" "ok"
            (P.status_name torn.P.status));
      (* the restarted server replays nothing (the only line is torn) but
         starts, counts the damage, and serves fresh answers *)
      with_server ~workers:1 ~cache_file:path (fun server socket ->
          Alcotest.(check int) "torn line skipped, not fatal" 0
            (Srv.Server.replayed server);
          let resp = call_ok socket req in
          Alcotest.(check string) "re-solved after data loss" "ok"
            (P.status_name resp.P.status);
          Alcotest.(check bool) "not from cache" true
            (resp.P.served_by <> Some P.Cache)))

let test_server_reclaims_stale_socket () =
  let socket_path = fresh_socket_path () in
  (* the residue of a SIGKILL'd server: a bound-then-abandoned socket
     file nobody is listening on *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 1;
  Unix.close fd;
  Alcotest.(check bool) "stale socket file present" true
    (Sys.file_exists socket_path);
  let server = Srv.Server.start (Srv.Server.default_config ~socket_path) in
  Fun.protect
    ~finally:(fun () -> Srv.Server.stop server)
    (fun () ->
      match Srv.Client.one_shot ~socket:socket_path (P.request P.Ping) with
      | Ok resp ->
          Alcotest.(check string) "reclaimed and serving" "ok"
            (P.status_name resp.P.status)
      | Error m -> Alcotest.fail m)

let test_server_never_steals_live_socket () =
  with_server (fun _server socket ->
      match Srv.Server.start (Srv.Server.default_config ~socket_path:socket) with
      | exception Failure _ -> ()
      | second ->
          Srv.Server.stop second;
          Alcotest.fail "second server bound over a live one");
  (* and a foreign non-socket file is never unlinked *)
  let decoy = Filename.temp_file "fpgasat-not-a-socket" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove decoy with Sys_error _ -> ())
    (fun () ->
      match Srv.Server.start (Srv.Server.default_config ~socket_path:decoy) with
      | exception Failure _ ->
          Alcotest.(check bool) "decoy file untouched" true
            (Sys.file_exists decoy)
      | second ->
          Srv.Server.stop second;
          Alcotest.fail "server bound over a regular file")

(* ---------- crash-safety: client timeouts and retry ---------- *)

let test_client_timeout_bounds_hung_server () =
  (* a listener that accepts and then never answers *)
  let socket_path = fresh_socket_path () in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 1;
  let accepted = ref None in
  let acceptor =
    Thread.create
      (fun () ->
        match Unix.accept listener with
        | fd, _ -> accepted := Some fd
        | exception Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (match !accepted with Some fd -> (try Unix.close fd with _ -> ()) | None -> ());
      (try Unix.close listener with _ -> ());
      (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
      Thread.join acceptor)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      match
        Srv.Client.one_shot ~timeout:0.2 ~socket:socket_path
          (P.request P.Ping)
      with
      | Ok _ -> Alcotest.fail "mute server produced a response"
      | Error _ ->
          let elapsed = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool) "timed out promptly, did not hang" true
            (elapsed < 5.))

let test_client_retry_rides_out_overload () =
  with_server ~workers:1 ~queue_capacity:1 (fun server socket ->
      (* warm the session so the retried request is served instantly once
         admitted *)
      let req =
        P.request ~strategy:"direct@siege" ~benchmark:"alu2" ~width:5 P.Route
      in
      let first = call_ok socket req in
      Alcotest.(check string) "warm-up ok" "ok" (P.status_name first.P.status);
      wait_until "warm-up drained"
        (fun () -> server_pool_gauge server "running" = 0)
        300;
      (* saturate: one sleep running, one queued *)
      let sleeper secs =
        Thread.create
          (fun () ->
            ignore (Srv.Client.one_shot ~socket (P.request (P.Sleep secs))))
          ()
      in
      let a = sleeper 0.4 in
      wait_until "sleeper running"
        (fun () -> server_pool_gauge server "running" = 1)
        300;
      let b = sleeper 0.4 in
      wait_until "sleeper queued"
        (fun () -> server_pool_gauge server "queued" = 1)
        300;
      (* a plain call bounces; the retrying call rides the backlog out *)
      let bounced = call_ok socket req in
      Alcotest.(check string) "plain call overloaded" "overloaded"
        (P.status_name bounced.P.status);
      (match
         Srv.Client.call_with_retry ~retries:8 ~backoff:0.05 ~seed:42 ~socket
           req
       with
      | Ok resp ->
          Alcotest.(check string) "retry eventually admitted" "ok"
            (P.status_name resp.P.status)
      | Error m -> Alcotest.fail ("retry gave up: " ^ m));
      Thread.join a;
      Thread.join b)

let test_client_never_retries_non_idempotent () =
  Alcotest.(check bool) "route is idempotent" true (P.idempotent P.Route);
  Alcotest.(check bool) "stats is idempotent" true (P.idempotent P.Stats);
  Alcotest.(check bool) "shutdown is not" false (P.idempotent P.Shutdown);
  Alcotest.(check bool) "sleep is not" false (P.idempotent (P.Sleep 1.));
  (* a non-idempotent request against a dead socket fails once, no retry
     loop: the call returns well before the backoff schedule would *)
  let t0 = Unix.gettimeofday () in
  (match
     Srv.Client.call_with_retry ~retries:8 ~backoff:0.2
       ~socket:(fresh_socket_path ()) (P.request P.Shutdown)
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "response from a dead socket");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "no backoff schedule was slept" true (elapsed < 0.2)

let qtests = List.map QCheck_alcotest.to_alcotest [ qcheck_structural_hash ]

let cache_qtests =
  List.map QCheck_alcotest.to_alcotest [ qcheck_cache_concurrent ]

let () =
  Alcotest.run "server"
    [
      ( "pool",
        [
          Alcotest.test_case "persistent pool runs submissions" `Quick
            test_pool_runs_submissions;
          Alcotest.test_case "raising thunk is isolated" `Quick
            test_pool_isolates_raising_thunk;
          Alcotest.test_case "admission control" `Quick
            test_pool_admission_control;
          Alcotest.test_case "shutdown drains the backlog" `Quick
            test_pool_shutdown_drains_backlog;
          Alcotest.test_case "killed worker is respawned" `Quick
            test_pool_respawns_killed_worker;
          Alcotest.test_case "restart budget exhausts" `Quick
            test_pool_restart_budget_exhausts;
        ] );
      ( "cache",
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction
        :: Alcotest.test_case "re-add refreshes" `Quick
             test_cache_refresh_on_add
        :: cache_qtests );
      ( "journal",
        [
          Alcotest.test_case "replay and compaction" `Quick
            test_journal_replay_and_compaction;
          Alcotest.test_case "torn tail tolerated" `Quick
            test_journal_tolerates_torn_tail;
          Alcotest.test_case "capacity truncates replay" `Quick
            test_journal_capacity_truncates_replay;
          Alcotest.test_case "pid lock excludes second writer" `Quick
            test_journal_lock_excludes_second_writer;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "server fault plans deterministic" `Quick
            test_chaos_server_plan_deterministic;
          Alcotest.test_case "invariant checker" `Quick
            test_chaos_server_invariant_checker;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request JSON round-trip" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "response JSON round-trip" `Quick
            test_protocol_response_roundtrip;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_protocol_rejects_malformed;
          Alcotest.test_case "budget signatures distinct" `Quick
            test_budget_signature_distinguishes;
        ] );
      ("hash", Alcotest.test_case "structural hash vs provenance" `Quick
          test_structural_hash_ignores_provenance
        :: qtests );
      ( "warm",
        [
          Alcotest.test_case "ladder agrees with cold flow" `Slow
            test_warm_agrees_with_cold;
          Alcotest.test_case "warm min_width agrees with search" `Slow
            test_warm_min_width_agrees_with_search;
        ] );
      ( "server",
        [
          Alcotest.test_case "ping and stats" `Quick test_server_ping_and_stats;
          Alcotest.test_case "cache hit on repeat" `Slow
            test_server_cache_hit_on_repeat;
          Alcotest.test_case "concurrent clients" `Slow
            test_server_concurrent_clients;
          Alcotest.test_case "bad requests are protocol errors" `Quick
            test_server_rejects_bad_requests;
          Alcotest.test_case "overload" `Quick test_server_overload;
          Alcotest.test_case "graceful drain" `Quick test_server_graceful_drain;
          Alcotest.test_case "shutdown op" `Quick test_server_shutdown_op;
          Alcotest.test_case "sleep gated behind test_ops" `Quick
            test_sleep_gated_behind_test_ops;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "worker kill: respawn and quarantine" `Slow
            test_server_worker_kill_respawn_and_quarantine;
          Alcotest.test_case "deadline exceeded in queue" `Slow
            test_server_deadline_exceeded;
          Alcotest.test_case "journal survives restart" `Slow
            test_server_journal_survives_restart;
          Alcotest.test_case "journal lock excludes second server" `Quick
            test_server_journal_lock_excludes_second_server;
          Alcotest.test_case "torn journal fault" `Slow
            test_server_torn_journal_fault;
          Alcotest.test_case "stale socket reclaimed" `Quick
            test_server_reclaims_stale_socket;
          Alcotest.test_case "live socket never stolen" `Quick
            test_server_never_steals_live_socket;
          Alcotest.test_case "client timeout bounds a hung server" `Quick
            test_client_timeout_bounds_hung_server;
          Alcotest.test_case "client retry rides out overload" `Slow
            test_client_retry_rides_out_overload;
          Alcotest.test_case "non-idempotent never retried" `Quick
            test_client_never_retries_non_idempotent;
        ] );
    ]
