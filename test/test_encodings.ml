(* Tests for the encodings library: Table 1's verbatim clause sets, ITE tree
   structure (Fig. 1), layout invariants of all 15 encodings, hierarchical
   partitioning, symmetry-breaking sequences, and brute-force agreement of
   the full encode-solve-decode loop. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module Layout = E.Layout
module Ite = E.Ite_tree
module Enc = E.Encoding
module Sym = E.Symmetry

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let enc name =
  match Enc.of_name name with Ok e -> e | Error m -> Alcotest.fail m

let extended_encodings = E.Registry.all @ E.Registry.multi_level_extensions

let clause_set cnf =
  Sat.Cnf.fold_clauses cnf ~init:[] ~f:(fun acc arena off len ->
      (List.init len (fun k -> Sat.Lit.to_dimacs arena.(off + k))
      |> List.sort compare)
      :: acc)
  |> List.sort compare

let two_vertex_cnf encoding =
  let g = G.Graph.of_edges 2 [ (0, 1) ] in
  let csp = E.Csp.make g ~k:3 in
  let encoded = E.Csp_encode.encode encoding csp in
  encoded.E.Csp_encode.cnf

(* --- Table 1: the exact clause sets for the worked 2-vertex example --- *)

let test_table1_log () =
  (* slots per vertex: 2 (slot 0 = LSB). v gets DIMACS vars 1,2; w gets 3,4 *)
  let expected =
    List.sort compare
      (List.map (List.sort compare)
         [
           [ -1; -2 ] (* v: exclude code 3 *);
           [ -3; -4 ] (* w: exclude code 3 *);
           [ 1; 2; 3; 4 ] (* conflict on value 0 *);
           [ -1; 2; -3; 4 ] (* conflict on value 1 *);
           [ 1; -2; 3; -4 ] (* conflict on value 2 *);
         ])
  in
  Alcotest.(check (list (list int)))
    "log clauses" expected
    (clause_set (two_vertex_cnf (enc "log")))

let test_table1_direct () =
  let expected =
    List.sort compare
      (List.map (List.sort compare)
         [
           [ 1; 2; 3 ];
           [ 4; 5; 6 ];
           [ -1; -2 ];
           [ -1; -3 ];
           [ -2; -3 ];
           [ -4; -5 ];
           [ -4; -6 ];
           [ -5; -6 ];
           [ -1; -4 ];
           [ -2; -5 ];
           [ -3; -6 ];
         ])
  in
  Alcotest.(check (list (list int)))
    "direct clauses" expected
    (clause_set (two_vertex_cnf (enc "direct")))

let test_table1_muldirect () =
  let expected =
    List.sort compare
      (List.map (List.sort compare)
         [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ -1; -4 ]; [ -2; -5 ]; [ -3; -6 ] ])
  in
  Alcotest.(check (list (list int)))
    "muldirect clauses" expected
    (clause_set (two_vertex_cnf (enc "muldirect")))

(* --- ITE trees (Fig. 1) --- *)

let test_ite_linear_structure () =
  List.iter
    (fun k ->
      let t = Ite.linear k in
      Alcotest.(check int) "leaves" k (Ite.num_leaves t);
      Alcotest.(check int) "slots" (max 0 (k - 1)) (Ite.num_slots t);
      Alcotest.(check bool) "well formed" true (Ite.well_formed t);
      Alcotest.(check (list int))
        "leaf order" (List.init k Fun.id) (Ite.leaves_in_order t))
    [ 1; 2; 3; 7; 13 ]

let test_ite_linear_patterns () =
  let pats = Ite.paths (Ite.linear 4) in
  let find v = List.assoc v pats in
  Alcotest.(check (list (pair int bool))) "v0" [ (0, true) ] (find 0);
  Alcotest.(check (list (pair int bool)))
    "v1" [ (0, false); (1, true) ] (find 1);
  Alcotest.(check (list (pair int bool)))
    "v3" [ (0, false); (1, false); (2, false) ] (find 3)

let ceil_log2 k =
  let rec go acc = if 1 lsl acc >= k then acc else go (acc + 1) in
  go 0

let test_ite_balanced_depths () =
  List.iter
    (fun k ->
      let t = Ite.balanced k in
      Alcotest.(check int) "leaves" k (Ite.num_leaves t);
      Alcotest.(check bool) "well formed" true (Ite.well_formed t);
      let bound = ceil_log2 k in
      List.iter
        (fun (_, path) ->
          let d = List.length path in
          if k > 1 && d <> bound && d <> bound - 1 then
            Alcotest.fail (Printf.sprintf "depth %d out of bounds for k=%d" d k);
          (* per-level slots: slot index equals depth along the path *)
          List.iteri
            (fun depth (slot, _) -> Alcotest.(check int) "slot = depth" depth slot)
            path)
        (Ite.paths t))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 13; 16; 21 ]

let test_ite_render_nonempty () =
  let s = Ite.render (Ite.balanced 5) in
  Alcotest.(check bool) "render mentions last leaf" true (contains s "v4")

(* --- Fig. 1(d): worked indexing patterns of ITE-log-2+ITE-linear, k=13 --- *)

let test_fig1d_patterns () =
  let layout = Enc.layout (enc "ITE-log-2+ITE-linear") 13 in
  Alcotest.(check int) "13 values" 13 layout.Layout.num_values;
  let p v = List.sort compare layout.Layout.patterns.(v) in
  Alcotest.(check (list (pair int bool)))
    "v4" [ (0, true); (1, false); (2, true) ] (p 4);
  Alcotest.(check (list (pair int bool)))
    "v5" [ (0, true); (1, false); (2, false); (3, true) ] (p 5);
  Alcotest.(check (list (pair int bool)))
    "v6" [ (0, true); (1, false); (2, false); (3, false) ] (p 6)

let test_fig1d_conflict_clause () =
  (* Sect. 4's worked conflict clause for v4: (-i0 | i1 | -i2 | -j0 | j1 | -j2) *)
  let g = G.Graph.of_edges 2 [ (0, 1) ] in
  let csp = E.Csp.make g ~k:13 in
  let encoded = E.Csp_encode.encode (enc "ITE-log-2+ITE-linear") csp in
  let nslots = encoded.E.Csp_encode.layout.Layout.num_slots in
  let expected =
    List.sort compare [ -1; 2; -3; -(nslots + 1); nslots + 2; -(nslots + 3) ]
  in
  let found = List.exists (fun c -> c = expected) (clause_set encoded.E.Csp_encode.cnf) in
  Alcotest.(check bool) "worked conflict clause present" true found

(* --- layout invariants for every encoding --- *)

let slot_assignments n = List.init (1 lsl n) (fun m s -> (m lsr s) land 1 = 1)

let side_ok layout assignment =
  List.for_all
    (fun clause -> List.exists (fun (s, pol) -> assignment s = pol) clause)
    layout.Layout.side

let test_layouts_validate () =
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          match Layout.validate (Enc.layout e k) with
          | Ok () -> ()
          | Error msg ->
              Alcotest.fail (Printf.sprintf "%s k=%d: %s" (Enc.name e) k msg))
        [ 1; 2; 3; 4; 5; 6; 7; 8; 13 ])
    extended_encodings

let test_layouts_complete_and_exclusive () =
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          let layout = Enc.layout e k in
          if layout.Layout.num_slots <= 12 then
            List.iter
              (fun assignment ->
                if side_ok layout assignment then begin
                  let selected = Layout.selected_values layout assignment in
                  if selected = [] then
                    Alcotest.fail
                      (Printf.sprintf "%s k=%d: no value selected" (Enc.name e) k);
                  if layout.Layout.exclusive && List.length selected > 1 then
                    Alcotest.fail
                      (Printf.sprintf "%s k=%d: several values selected"
                         (Enc.name e) k)
                end)
              (slot_assignments layout.Layout.num_slots))
        [ 1; 2; 3; 5; 8; 13 ])
    extended_encodings

let test_unshared_ablation_layouts () =
  List.iter
    (fun name ->
      let e = enc (name ^ "!unshared") in
      List.iter
        (fun k ->
          let layout = Enc.layout e k in
          (match Layout.validate layout with
          | Ok () -> ()
          | Error msg -> Alcotest.fail (Printf.sprintf "%s k=%d: %s" name k msg));
          if layout.Layout.num_slots <= 12 then
            List.iter
              (fun assignment ->
                if side_ok layout assignment then
                  if Layout.selected_values layout assignment = [] then
                    Alcotest.fail
                      (Printf.sprintf "unshared %s k=%d: nothing selected" name k))
              (slot_assignments layout.Layout.num_slots))
        [ 2; 3; 5; 7 ])
    [ "direct-3+direct"; "muldirect-3+muldirect"; "ITE-linear-2+direct" ]

let test_vars_per_csp_variable () =
  let slots e k = (Enc.layout (enc e) k).Layout.num_slots in
  Alcotest.(check int) "log k=13" 4 (slots "log" 13);
  Alcotest.(check int) "direct k=13" 13 (slots "direct" 13);
  Alcotest.(check int) "ITE-linear k=13" 12 (slots "ite-linear" 13);
  Alcotest.(check int) "ITE-log k=13" 4 (slots "ite-log" 13);
  Alcotest.(check int) "muldirect-3+muldirect k=13" (3 + 5)
    (slots "muldirect-3+muldirect" 13);
  Alcotest.(check int) "ITE-linear-2+muldirect k=13" (2 + 5)
    (slots "ITE-linear-2+muldirect" 13);
  Alcotest.(check int) "ITE-log-2+ITE-linear k=13" (2 + 3)
    (slots "ITE-log-2+ITE-linear" 13)

(* --- hierarchy partition --- *)

let test_partition () =
  Alcotest.(check (list int)) "13/4" [ 4; 3; 3; 3 ] (E.Hierarchy.partition 13 4);
  Alcotest.(check (list int)) "13/2" [ 7; 6 ] (E.Hierarchy.partition 13 2);
  Alcotest.(check (list int)) "6/3" [ 2; 2; 2 ] (E.Hierarchy.partition 6 3);
  Alcotest.(check (list int)) "2/3" [ 1; 1 ] (E.Hierarchy.partition 2 3);
  Alcotest.(check (list int)) "1/5" [ 1 ] (E.Hierarchy.partition 1 5)

let prop_partition =
  QCheck2.Test.make ~count:500 ~name:"partition is balanced and sums to k"
    QCheck2.Gen.(pair (int_range 1 60) (int_range 1 12))
    (fun (k, m) ->
      let sizes = E.Hierarchy.partition k m in
      let sum = List.fold_left ( + ) 0 sizes in
      let mx = List.fold_left max 0 sizes and mn = List.fold_left min k sizes in
      sum = k
      && mx - mn <= 1
      && List.length sizes = min m k
      && List.sort (fun a b -> compare b a) sizes = sizes)

(* --- size predictions --- *)

(* Every registry shape in both emission modes: the prediction must match
   the encoder to the variable, clause AND literal — aux variables and
   definition clauses included. *)
let stats_universe =
  let shapes = E.Registry.all @ E.Registry.multi_level_extensions in
  shapes @ E.Registry.defs_variants shapes

let prop_stats_predict_exactly =
  QCheck2.Test.make ~count:300
    ~name:"Encoding_stats predicts the encoder's output exactly (both modes)"
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* k = int_range 1 6 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* which = int_range 0 (List.length stats_universe - 1) in
      return (n, k, List.filter (fun (u, v) -> u <> v) edges, which))
    (fun (n, k, edges, which) ->
      let e = List.nth stats_universe which in
      let g = G.Graph.of_edges n edges in
      let csp = E.Csp.make g ~k in
      let encoded = E.Csp_encode.encode e csp in
      let stats = E.Encoding_stats.predict e ~k in
      let nv = G.Graph.num_vertices g and ne = G.Graph.num_edges g in
      Sat.Cnf.num_vars encoded.E.Csp_encode.cnf
      = E.Encoding_stats.total_vars stats ~num_vertices:nv
      && Sat.Cnf.num_clauses encoded.E.Csp_encode.cnf
         = E.Encoding_stats.total_clauses stats ~num_vertices:nv ~num_edges:ne
      && Sat.Cnf.num_lits encoded.E.Csp_encode.cnf
         = E.Encoding_stats.total_literals stats ~num_vertices:nv ~num_edges:ne)

let test_stats_defs_binary_conflicts () =
  (* the acceptance criterion: under +defs, shared-pattern encodings pay 2
     conflict literals per edge per value *)
  List.iter
    (fun (name, k) ->
      let s = E.Encoding_stats.predict (enc (name ^ "+defs")) ~k in
      Alcotest.(check int)
        (Printf.sprintf "%s+defs k=%d: binary conflicts" name k)
        (2 * k)
        s.E.Encoding_stats.conflict_literals_per_edge)
    [ ("log", 13); ("ITE-linear", 13); ("ITE-linear-2+muldirect", 13);
      ("muldirect-3+muldirect", 8); ("ITE-log-2+ITE-linear", 13) ];
  (* singleton patterns are inlined: direct/muldirect gain no aux vars and
     keep their already-binary conflicts *)
  let s = E.Encoding_stats.predict (enc "muldirect+defs") ~k:13 in
  Alcotest.(check int) "muldirect+defs: no aux vars" 0
    s.E.Encoding_stats.aux_vars_per_csp_var;
  Alcotest.(check int) "muldirect+defs: no def clauses" 0
    s.E.Encoding_stats.def_clauses_per_csp_var;
  let flat = E.Encoding_stats.predict (enc "muldirect") ~k:13 in
  Alcotest.(check int) "muldirect: defs = flat conflict lits"
    flat.E.Encoding_stats.conflict_literals_per_edge
    s.E.Encoding_stats.conflict_literals_per_edge

let test_stats_examples () =
  let stats = E.Encoding_stats.predict (enc "direct") ~k:3 in
  Alcotest.(check int) "direct vars" 3 stats.E.Encoding_stats.vars_per_csp_var;
  Alcotest.(check int) "direct side (1 ALO + 3 AMO)" 4
    stats.E.Encoding_stats.side_clauses_per_csp_var;
  Alcotest.(check int) "conflicts per edge = k" 3
    stats.E.Encoding_stats.conflict_clauses_per_edge;
  let mul = E.Encoding_stats.predict (enc "muldirect") ~k:3 in
  Alcotest.(check int) "muldirect side (ALO only)" 1
    mul.E.Encoding_stats.side_clauses_per_csp_var;
  let ite = E.Encoding_stats.predict (enc "ite-linear") ~k:3 in
  Alcotest.(check int) "ITE has no side clauses" 0
    ite.E.Encoding_stats.side_clauses_per_csp_var

(* --- the Emit definitional context --- *)

let lit v s = Sat.Lit.make v s

let test_emit_polarity_directions () =
  let cnf = Sat.Cnf.create () in
  ignore (Sat.Cnf.fresh_vars cnf 3);
  let ctx = E.Emit.create cnf in
  let lits = [ lit 0 true; lit 1 false; lit 2 true ] in
  (* Neg polarity: exactly one defining clause (~l1|~l2|~l3|d) *)
  let d = E.Emit.conj ctx E.Emit.Neg lits in
  Alcotest.(check bool) "def is a fresh positive literal" true
    (Sat.Lit.sign d && Sat.Lit.var d = 3);
  Alcotest.(check int) "one clause for Neg" 1 (Sat.Cnf.num_clauses cnf);
  Alcotest.(check int) "len+1 literals" 4 (Sat.Cnf.num_lits cnf);
  (* asking again, same polarity: fully cached, nothing emitted *)
  let d' = E.Emit.conj ctx E.Emit.Neg lits in
  Alcotest.(check int) "cached def var" (Sat.Lit.var d) (Sat.Lit.var d');
  Alcotest.(check int) "no new clauses" 1 (Sat.Cnf.num_clauses cnf);
  (* upgrading to Both emits only the missing Pos direction: 3 binary
     clauses (~d|li) *)
  let d'' = E.Emit.conj ctx E.Emit.Both lits in
  Alcotest.(check int) "still the same var" (Sat.Lit.var d) (Sat.Lit.var d'');
  Alcotest.(check int) "3 more clauses" 4 (Sat.Cnf.num_clauses cnf);
  Alcotest.(check int) "2 literals each" 10 (Sat.Cnf.num_lits cnf);
  let stats = E.Emit.stats ctx in
  Alcotest.(check int) "one definition" 1 stats.E.Emit.defs;
  Alcotest.(check int) "4 def clauses" 4 stats.E.Emit.clauses;
  Alcotest.(check int) "10 def literals" 10 stats.E.Emit.literals

let test_emit_inlining () =
  let cnf = Sat.Cnf.create () in
  ignore (Sat.Cnf.fresh_vars cnf 2);
  let ctx = E.Emit.create cnf in
  (* singletons come back unchanged, no clauses *)
  let l = E.Emit.conj ctx E.Emit.Both [ lit 1 false ] in
  Alcotest.(check int) "singleton inlined" (lit 1 false) l;
  Alcotest.(check int) "no clauses for singleton" 0 (Sat.Cnf.num_clauses cnf);
  (* the empty conjunction is a cached constant true *)
  let t1 = E.Emit.conj ctx E.Emit.Neg [] in
  let t2 = E.Emit.conj ctx E.Emit.Pos [] in
  Alcotest.(check int) "constant true cached" t1 t2;
  Alcotest.(check int) "one unit clause" 1 (Sat.Cnf.num_clauses cnf);
  (* duplicate literals collapse to the singleton case *)
  let l' = E.Emit.conj ctx E.Emit.Neg [ lit 0 true; lit 0 true ] in
  Alcotest.(check int) "duplicates collapse" (lit 0 true) l';
  (* complementary literals are a caller bug *)
  Alcotest.check_raises "contradiction rejected"
    (Invalid_argument "Emit.conj: complementary literals") (fun () ->
      ignore (E.Emit.conj ctx E.Emit.Neg [ lit 0 true; lit 0 false ]))

let test_emit_structural_sharing () =
  let cnf = Sat.Cnf.create () in
  ignore (Sat.Cnf.fresh_vars cnf 4);
  let ctx = E.Emit.create cnf in
  let a = [ lit 0 true; lit 1 true ] in
  let da = E.Emit.conj ctx E.Emit.Neg a in
  (* same conjunction in any order shares the definition *)
  let da' = E.Emit.conj ctx E.Emit.Neg (List.rev a) in
  Alcotest.(check int) "order-insensitive sharing" da da';
  (* a different conjunction gets its own variable *)
  let db = E.Emit.conj ctx E.Emit.Neg [ lit 2 true; lit 3 false ] in
  Alcotest.(check bool) "distinct conj, distinct var" true (da <> db);
  let stats = E.Emit.stats ctx in
  Alcotest.(check int) "two definitions" 2 stats.E.Emit.defs;
  (* find is a pure lookup honouring polarity coverage *)
  Alcotest.(check (option int)) "find Neg hits" (Some da)
    (E.Emit.find ctx E.Emit.Neg a);
  Alcotest.(check (option int)) "find Pos misses (not emitted)" None
    (E.Emit.find ctx E.Emit.Pos a);
  Alcotest.(check (option int)) "find unknown conj" None
    (E.Emit.find ctx E.Emit.Neg [ lit 0 false; lit 3 true ]);
  Alcotest.(check int) "find emitted nothing" 2 (Sat.Cnf.num_clauses cnf)

(* Semantics: a definition really is equisatisfiable with its conjunction
   in the polarity it was emitted for. *)
let test_emit_neg_semantics () =
  let cnf = Sat.Cnf.create () in
  ignore (Sat.Cnf.fresh_vars cnf 2);
  let ctx = E.Emit.create cnf in
  let d = E.Emit.conj ctx E.Emit.Neg [ lit 0 true; lit 1 true ] in
  (* assert ~d: with conj -> d this forbids (l0 & l1) *)
  Sat.Cnf.add_clause cnf [ Sat.Lit.negate d ];
  Sat.Cnf.add_clause cnf [ lit 0 true ];
  Sat.Cnf.add_clause cnf [ lit 1 true ];
  (match fst (Sat.Solver.solve cnf) with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "~d with both conjuncts true should be unsat");
  let cnf2 = Sat.Cnf.create () in
  ignore (Sat.Cnf.fresh_vars cnf2 2);
  let ctx2 = E.Emit.create cnf2 in
  let d2 = E.Emit.conj ctx2 E.Emit.Pos [ lit 0 true; lit 1 true ] in
  (* assert d: with d -> conj this forces both conjuncts *)
  Sat.Cnf.add_clause cnf2 [ d2 ];
  match fst (Sat.Solver.solve cnf2) with
  | Sat.Solver.Sat m ->
      Alcotest.(check bool) "conjuncts forced" true (m.(0) && m.(1))
  | _ -> Alcotest.fail "d asserted positively should be sat"

(* --- encoding names --- *)

let test_names_roundtrip () =
  List.iter
    (fun e ->
      match Enc.of_name (Enc.name e) with
      | Ok e' ->
          Alcotest.(check int)
            (Printf.sprintf "roundtrip %s" (Enc.name e))
            0 (Enc.compare e e')
      | Error m -> Alcotest.fail m)
    (extended_encodings
    @ E.Registry.defs_variants extended_encodings
    @ [ enc "direct-3+muldirect!unshared";
        enc "direct-3+muldirect!unshared+defs" ])

let test_defs_names () =
  Alcotest.(check string) "suffix printed" "muldirect+defs"
    (Enc.name (E.Encoding.defs (enc "muldirect")));
  (match Enc.of_name "ITE-linear-2+muldirect+defs" with
  | Ok e ->
      Alcotest.(check bool) "parsed as definitional" true
        (E.Encoding.is_definitional e);
      Alcotest.(check int) "flat strips the mode" 0
        (Enc.compare (E.Encoding.flat e) (enc "ITE-linear-2+muldirect"))
  | Error m -> Alcotest.fail m);
  (* the mode is part of encoding identity *)
  Alcotest.(check bool) "flat <> defs" true
    (Enc.compare (enc "log") (enc "log+defs") <> 0)

let test_bad_names_rejected () =
  List.iter
    (fun s ->
      match Enc.of_name s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should not parse: " ^ s))
    [ "nope"; "direct-0+direct"; "direct-3+"; "a+b+c"; "" ]

let test_multi_level_shape () =
  (* a 3-level direct-2+direct-2+direct on 8 values: level 1 splits into 2
     subdomains of 4, level 2 into 2 of 2, bottom direct over 2 *)
  let layout = Enc.layout (enc "direct-2+direct-2+direct") 8 in
  Alcotest.(check int) "slots" (2 + 2 + 2) layout.Layout.num_slots;
  Alcotest.(check int) "values" 8 layout.Layout.num_values;
  (* value 5 sits in subdomain 1 (values 4-7), sub-subdomain 0 (4-5),
     offset 1 *)
  Alcotest.(check (list (pair int bool)))
    "value 5 pattern"
    [ (1, true); (2, true); (5, true) ]
    (List.sort compare layout.Layout.patterns.(5))

let test_registry_counts () =
  Alcotest.(check int) "2 previous" 2 (List.length E.Registry.previously_used);
  Alcotest.(check int) "12 new" 12 (List.length E.Registry.new_encodings);
  Alcotest.(check int) "15 total" 15 (List.length E.Registry.all);
  Alcotest.(check int) "7 in table 2" 7 (List.length E.Registry.table2);
  Alcotest.(check int) "30 across emissions" 30
    (List.length E.Registry.all_emissions)

let test_in_registry () =
  List.iter
    (fun e ->
      Alcotest.(check bool) (Enc.name e ^ " is in registry") true
        (E.Registry.in_registry e))
    (E.Registry.all_emissions @ E.Registry.multi_level_extensions);
  Alcotest.(check bool) "mixed hierarchy is not" false
    (E.Registry.in_registry (enc "direct-2+log"));
  (* of_name is strict: parseable but out-of-registry shapes are rejected
     (Encoding.of_name stays the permissive exploration path) *)
  (match E.Registry.of_name "direct-2+log" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_name accepted an out-of-registry shape");
  (match E.Encoding.of_name "direct-2+log" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (* ... but admits registry encodings in any emission and the !unshared
     ablation (the bench sweeps those as strategies) *)
  (match E.Registry.of_name "direct-3+muldirect!unshared" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match E.Registry.of_name "ITE-linear-2+muldirect+defs" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  match E.Registry.of_name "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_name accepted an unparseable name"

(* --- symmetry-breaking heuristics --- *)

let path_graph n = G.Graph.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))
let star_graph n = G.Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let test_b1_starts_at_max_degree () =
  let g = star_graph 6 in
  match Sym.sequence Sym.B1 g ~k:4 with
  | hub :: rest ->
      Alcotest.(check int) "hub first" 0 hub;
      Alcotest.(check int) "k-2 neighbours follow" 2 (List.length rest);
      List.iter
        (fun v ->
          Alcotest.(check bool) "neighbour of hub" true (G.Graph.mem_edge g 0 v))
        rest
  | [] -> Alcotest.fail "empty sequence"

let test_s1_takes_top_degrees () =
  let g = star_graph 6 in
  match Sym.sequence Sym.S1 g ~k:3 with
  | [ a; _ ] -> Alcotest.(check int) "hub has top degree" 0 a
  | other ->
      Alcotest.fail (Printf.sprintf "expected 2 vertices, got %d" (List.length other))

let test_sequences_distinct_and_short () =
  let g = path_graph 10 in
  List.iter
    (fun h ->
      List.iter
        (fun k ->
          let seq = Sym.sequence h g ~k in
          Alcotest.(check bool) "length <= k-1" true (List.length seq <= k - 1);
          Alcotest.(check int) "distinct" (List.length seq)
            (List.length (List.sort_uniq compare seq)))
        [ 2; 3; 5; 9 ])
    Sym.all

let test_forbidden_shape () =
  let g = star_graph 5 in
  let forb = Sym.forbidden Sym.S1 g ~k:3 in
  Alcotest.(check int) "three forbidden pairs" 3 (List.length forb);
  match Sym.sequence Sym.S1 g ~k:3 with
  | [ v0; v1 ] ->
      Alcotest.(check bool) "v0 loses colour 1" true (List.mem (v0, 1) forb);
      Alcotest.(check bool) "v0 loses colour 2" true (List.mem (v0, 2) forb);
      Alcotest.(check bool) "v1 loses colour 2" true (List.mem (v1, 2) forb)
  | _ -> Alcotest.fail "expected 2 vertices"

(* --- end-to-end: encode, solve, decode, verify --- *)

let brute_force_colorable g k =
  let n = G.Graph.num_vertices g in
  let coloring = Array.make (max n 1) 0 in
  let rec go v =
    if v = n then true
    else
      let ok c =
        List.for_all (fun w -> w > v || coloring.(w) <> c) (G.Graph.neighbors g v)
      in
      let rec try_color c =
        if c >= k then false
        else if ok c then begin
          coloring.(v) <- c;
          go (v + 1) || try_color (c + 1)
        end
        else try_color (c + 1)
      in
      try_color 0
  in
  n = 0 || go 0

let gen_small_graph =
  QCheck2.Gen.(
    let* n = int_range 1 7 in
    let* k = int_range 1 4 in
    let* edges =
      list_repeat
        (min 12 (n * (n - 1) / 2))
        (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, k, List.filter (fun (u, v) -> u <> v) edges))

let check_encoding_on e ?symmetry (n, k, edges) =
  let g = G.Graph.of_edges n edges in
  let csp = E.Csp.make g ~k in
  let encoded = E.Csp_encode.encode ?symmetry e csp in
  let expected = brute_force_colorable g k in
  match fst (Fpgasat_sat.Solver.solve encoded.E.Csp_encode.cnf) with
  | Sat.Solver.Sat model ->
      expected
      &&
      let coloring = E.Csp_encode.decode encoded model in
      G.Coloring.is_proper g ~k coloring
  | Sat.Solver.Unsat -> not expected
  | Sat.Solver.Unknown | Sat.Solver.Memout -> false

(* --- mixed bottoms (Sect. 4 generality) --- *)

let mixed_layout k =
  E.Hierarchy.compose_mixed ~top:E.Simple_encoding.Direct ~top_vars:3
    ~bottoms:
      [ E.Simple_encoding.Ite_linear; E.Simple_encoding.Muldirect;
        E.Simple_encoding.Log ]
    k

let test_mixed_layout_validates () =
  List.iter
    (fun k ->
      match Layout.validate (mixed_layout k) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "mixed k=%d: %s" k msg))
    [ 1; 2; 3; 5; 8; 13 ]

let test_mixed_layout_complete () =
  List.iter
    (fun k ->
      let layout = mixed_layout k in
      if layout.Layout.num_slots <= 12 then
        List.iter
          (fun assignment ->
            if side_ok layout assignment then
              if Layout.selected_values layout assignment = [] then
                Alcotest.fail (Printf.sprintf "mixed k=%d: nothing selected" k))
          (slot_assignments layout.Layout.num_slots))
    [ 2; 3; 5; 8 ]

let prop_mixed_agrees_with_brute_force =
  QCheck2.Test.make ~count:120 ~name:"mixed-bottom hierarchy solves colouring"
    gen_small_graph
    (fun (n, k, edges) ->
      let g = G.Graph.of_edges n edges in
      let layout = mixed_layout k in
      (* hand-rolled encode using the mixed layout *)
      let cnf = Fpgasat_sat.Cnf.create () in
      let nslots = layout.Layout.num_slots in
      Fpgasat_sat.Cnf.ensure_vars cnf (n * nslots);
      let lits v pattern =
        List.map (fun (s, pol) -> Sat.Lit.make ((v * nslots) + s) pol) pattern
      in
      let neg v pattern = List.map Sat.Lit.negate (lits v pattern) in
      for v = 0 to n - 1 do
        List.iter (fun c -> Fpgasat_sat.Cnf.add_clause cnf (lits v c)) layout.Layout.side
      done;
      G.Graph.iter_edges
        (fun u v ->
          Array.iter
            (fun p -> Fpgasat_sat.Cnf.add_clause cnf (neg u p @ neg v p))
            layout.Layout.patterns)
        g;
      let expected = brute_force_colorable g k in
      match fst (Sat.Solver.solve cnf) with
      | Sat.Solver.Sat model ->
          expected
          && List.for_all
               (fun v ->
                 let slot_value s =
                   let var = (v * nslots) + s in
                   var < Array.length model && model.(var)
                 in
                 Layout.selected_values layout slot_value <> [])
               (List.init n Fun.id)
          &&
          let coloring =
            Array.init n (fun v ->
                let slot_value s =
                  let var = (v * nslots) + s in
                  var < Array.length model && model.(var)
                in
                List.hd (Layout.selected_values layout slot_value))
          in
          G.Coloring.is_proper g ~k coloring
      | Sat.Solver.Unsat -> not expected
      | Sat.Solver.Unknown | Sat.Solver.Memout -> false)
  [@@ocamlformat "disable"]


let props_encodings_agree_with_brute_force =
  List.map
    (fun e ->
      QCheck2.Test.make ~count:120
        ~name:(Printf.sprintf "encode/solve/decode: %s" (Enc.name e))
        gen_small_graph
        (fun input -> check_encoding_on e input))
    extended_encodings

(* --- flat vs definitional emission agree --- *)

let props_defs_agree_with_brute_force =
  List.map
    (fun e ->
      let e = E.Encoding.defs e in
      QCheck2.Test.make ~count:60
        ~name:(Printf.sprintf "encode/solve/decode: %s" (Enc.name e))
        gen_small_graph
        (fun input -> check_encoding_on e input))
    E.Registry.all

let prop_defs_matches_flat_sat =
  QCheck2.Test.make ~count:150
    ~name:"flat and +defs emissions are equisatisfiable"
    QCheck2.Gen.(
      let* input = gen_small_graph in
      let* which = int_range 0 (List.length E.Registry.all - 1) in
      return (input, which))
    (fun ((n, k, edges), which) ->
      let e = List.nth E.Registry.all which in
      let g = G.Graph.of_edges n edges in
      let csp = E.Csp.make g ~k in
      let solve enc =
        let encoded = E.Csp_encode.encode enc csp in
        match fst (Sat.Solver.solve encoded.E.Csp_encode.cnf) with
        | Sat.Solver.Sat _ -> Some true
        | Sat.Solver.Unsat -> Some false
        | Sat.Solver.Unknown | Sat.Solver.Memout -> None
      in
      solve e = solve (E.Encoding.defs e))

let props_symmetry_preserves_answer =
  List.concat_map
    (fun h ->
      List.map
        (fun e ->
          QCheck2.Test.make ~count:80
            ~name:
              (Printf.sprintf "symmetry %s preserves answer: %s" (Sym.name h)
                 (Enc.name e))
            gen_small_graph
            (fun input -> check_encoding_on e ~symmetry:h input))
        [
          enc "muldirect";
          enc "log";
          enc "ITE-linear-2+muldirect";
          enc "direct-3+direct";
          enc "ITE-log";
        ])
    Sym.all

let prop_unshared_agrees =
  QCheck2.Test.make ~count:120 ~name:"unshared ablation agrees with brute force"
    gen_small_graph
    (fun input -> check_encoding_on (enc "direct-3+muldirect!unshared") input)

let test_decode_rejects_corrupt_model () =
  let g = G.Graph.of_edges 2 [ (0, 1) ] in
  let csp = E.Csp.make g ~k:3 in
  let encoded = E.Csp_encode.encode (enc "direct") csp in
  let all_false = Array.make (Sat.Cnf.num_vars encoded.E.Csp_encode.cnf) false in
  match E.Csp_encode.decode encoded all_false with
  | exception E.Csp_encode.No_selected_value _ -> ()
  | _ -> Alcotest.fail "decode accepted a corrupt model"

let test_csp_basics () =
  let g = G.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let csp = E.Csp.make g ~k:2 in
  Alcotest.(check bool) "triangle needs 3 colours" true (E.Csp.trivially_unsat csp);
  let csp3 = E.Csp.make g ~k:3 in
  Alcotest.(check bool) "k=3 not trivially unsat" false (E.Csp.trivially_unsat csp3);
  Alcotest.(check bool) "solution check" true (E.Csp.solution_ok csp3 [| 0; 1; 2 |]);
  Alcotest.(check bool) "bad solution rejected" false
    (E.Csp.solution_ok csp3 [| 0; 0; 2 |]);
  Alcotest.check_raises "k=0 rejected" (Invalid_argument "Csp.make: k < 1")
    (fun () -> ignore (E.Csp.make g ~k:0))

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "encodings"
    [
      ( "table1",
        [
          Alcotest.test_case "log" `Quick test_table1_log;
          Alcotest.test_case "direct" `Quick test_table1_direct;
          Alcotest.test_case "muldirect" `Quick test_table1_muldirect;
        ] );
      ( "ite-tree",
        [
          Alcotest.test_case "linear structure" `Quick test_ite_linear_structure;
          Alcotest.test_case "linear patterns" `Quick test_ite_linear_patterns;
          Alcotest.test_case "balanced depths" `Quick test_ite_balanced_depths;
          Alcotest.test_case "render" `Quick test_ite_render_nonempty;
        ] );
      ( "fig1d",
        [
          Alcotest.test_case "worked patterns" `Quick test_fig1d_patterns;
          Alcotest.test_case "worked conflict clause" `Quick
            test_fig1d_conflict_clause;
        ] );
      ( "layouts",
        [
          Alcotest.test_case "validate" `Quick test_layouts_validate;
          Alcotest.test_case "complete and exclusive" `Quick
            test_layouts_complete_and_exclusive;
          Alcotest.test_case "unshared ablation" `Quick
            test_unshared_ablation_layouts;
          Alcotest.test_case "variable budgets" `Quick test_vars_per_csp_variable;
        ] );
      ( "hierarchy",
        Alcotest.test_case "partition examples" `Quick test_partition
        :: qtests [ prop_partition ] );
      ( "mixed",
        Alcotest.test_case "validates" `Quick test_mixed_layout_validates
        :: Alcotest.test_case "complete" `Quick test_mixed_layout_complete
        :: qtests [ prop_mixed_agrees_with_brute_force ] );
      ( "stats",
        Alcotest.test_case "examples" `Quick test_stats_examples
        :: Alcotest.test_case "defs conflicts are binary" `Quick
             test_stats_defs_binary_conflicts
        :: qtests [ prop_stats_predict_exactly ] );
      ( "emit",
        [
          Alcotest.test_case "polarity directions" `Quick
            test_emit_polarity_directions;
          Alcotest.test_case "inlining" `Quick test_emit_inlining;
          Alcotest.test_case "structural sharing" `Quick
            test_emit_structural_sharing;
          Alcotest.test_case "semantics" `Quick test_emit_neg_semantics;
        ] );
      ( "names",
        [
          Alcotest.test_case "roundtrip" `Quick test_names_roundtrip;
          Alcotest.test_case "defs names" `Quick test_defs_names;
          Alcotest.test_case "multi-level shape" `Quick test_multi_level_shape;
          Alcotest.test_case "bad names rejected" `Quick test_bad_names_rejected;
          Alcotest.test_case "registry counts" `Quick test_registry_counts;
          Alcotest.test_case "in_registry" `Quick test_in_registry;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "b1 starts at max degree" `Quick
            test_b1_starts_at_max_degree;
          Alcotest.test_case "s1 takes top degrees" `Quick test_s1_takes_top_degrees;
          Alcotest.test_case "sequences distinct" `Quick
            test_sequences_distinct_and_short;
          Alcotest.test_case "forbidden pairs" `Quick test_forbidden_shape;
        ] );
      ("agreement", qtests props_encodings_agree_with_brute_force);
      ( "defs-agreement",
        qtests (prop_defs_matches_flat_sat :: props_defs_agree_with_brute_force)
      );
      ("symmetry-preservation", qtests props_symmetry_preserves_answer);
      ("unshared", qtests [ prop_unshared_agrees ]);
      ( "decode",
        [
          Alcotest.test_case "corrupt model rejected" `Quick
            test_decode_rejects_corrupt_model;
          Alcotest.test_case "csp basics" `Quick test_csp_basics;
        ] );
    ]
