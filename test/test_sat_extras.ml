(* Tests for the SAT extras: the DRAT forward checker, the CNF
   preprocessor, and WalkSAT — each cross-checked against the CDCL solver
   and brute force on random formulas. *)

module Lit = Fpgasat_sat.Lit
module Cnf = Fpgasat_sat.Cnf
module Solver = Fpgasat_sat.Solver
module Proof = Fpgasat_sat.Proof
module Drat = Fpgasat_sat.Drat_check
module Simplify = Fpgasat_sat.Simplify
module Walksat = Fpgasat_sat.Walksat

let cnf_of nvars clauses =
  let cnf = Cnf.create () in
  Cnf.ensure_vars cnf nvars;
  List.iter (fun c -> Cnf.add_clause cnf (List.map Lit.of_dimacs c)) clauses;
  cnf

let brute_force cnf =
  let n = Cnf.num_vars cnf in
  assert (n <= 16);
  let sat_under m =
    Cnf.fold_clauses cnf ~init:true ~f:(fun acc arena off len ->
        acc
        &&
        let rec any k =
          k < off + len
          && ((m lsr Lit.var arena.(k)) land 1
              = (if Lit.sign arena.(k) then 1 else 0)
             || any (k + 1))
        in
        any off)
  in
  let rec go m = if m >= 1 lsl n then false else sat_under m || go (m + 1) in
  go 0

let gen_random_cnf =
  QCheck2.Gen.(
    let* nvars = int_range 1 8 in
    let* nclauses = int_range 1 30 in
    let* clauses =
      list_repeat nclauses
        (let* width = int_range 1 4 in
         list_repeat width
           (let* v = int_range 0 (nvars - 1) in
            let* sign = bool in
            return (Lit.make v sign)))
    in
    return (nvars, clauses))

let build (nvars, clauses) =
  let cnf = Cnf.create () in
  Cnf.ensure_vars cnf nvars;
  List.iter (Cnf.add_clause cnf) clauses;
  cnf

let php pigeons holes =
  let cnf = Cnf.create () in
  let v = Array.init pigeons (fun _ -> Cnf.fresh_vars cnf holes) in
  for p = 0 to pigeons - 1 do
    Cnf.add_clause cnf (Array.to_list (Array.map Lit.pos v.(p)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Cnf.add_clause cnf [ Lit.neg_of v.(p1).(h); Lit.neg_of v.(p2).(h) ]
      done
    done
  done;
  cnf

(* --- Drat_check --- *)

let test_drat_accepts_php_proof () =
  let cnf = php 5 4 in
  let proof = Proof.create () in
  (match Solver.solve ~proof cnf with
  | Solver.Unsat, _ -> ()
  | _ -> Alcotest.fail "PHP 5/4 is UNSAT");
  match Drat.check cnf proof with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Drat.pp_error e)

let test_drat_rejects_bogus_addition () =
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let proof = Proof.create () in
  Proof.add proof [ Lit.pos 0 ];
  (* neither implied by unit propagation nor RAT on its pivot *)
  Proof.add proof [];
  match Drat.check cnf proof with
  | Error (Drat.Bad_step { step_index; reason }) ->
      Alcotest.(check int) "fails at the bogus step" 0 step_index;
      Alcotest.(check string) "complains about the inference"
        "added clause is neither RUP nor RAT" reason
  | Error (Drat.No_empty_clause _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "bogus proof accepted"

(* XOR-shaped: UNSAT, but not by unit propagation alone, so the checker
   cannot conclude at load time *)
let xor_unsat () = cnf_of 2 [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ] ]

let test_drat_rejects_missing_empty () =
  let cnf = xor_unsat () in
  let proof = Proof.create () in
  (* one (tolerated) deletion step, but no addition ever derives empty *)
  Proof.delete proof [ Lit.pos 0; Lit.pos 1 ];
  match Drat.check cnf proof with
  | Error (Drat.No_empty_clause { num_steps }) ->
      (* the trace length, not a phantom step index one past the end *)
      Alcotest.(check int) "reports the trace length" 1 num_steps;
      let msg = Format.asprintf "%a" Drat.pp_error (Drat.No_empty_clause { num_steps }) in
      Alcotest.(check bool) "pp mentions the length" true
        (msg = "proof trace (1 steps) does not derive the empty clause")
  | Error (Drat.Bad_step _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "incomplete trace accepted"

let test_drat_tolerates_absent_deletion () =
  let cnf = xor_unsat () in
  let proof = Proof.create () in
  (* deleting a clause that was never present is a counted no-op
     (drat-trim convention; the solver's load-time simplification makes
     external traces hit this legitimately) *)
  Proof.delete proof [ Lit.pos 0; Lit.neg_of 1; Lit.pos 1 ];
  Proof.add proof [ Lit.pos 1 ];
  (* (x1) is RUP; installing it propagates to a top-level conflict *)
  match Drat.check cnf proof with
  | Ok stats ->
      Alcotest.(check int) "ignored deletion counted" 1
        stats.Drat.ignored_deletions;
      Alcotest.(check int) "no real deletion" 0 stats.Drat.deletions;
      Alcotest.(check int) "one rup addition" 1 stats.Drat.rup_steps
  | Error e -> Alcotest.fail (Format.asprintf "%a" Drat.pp_error e)

let test_drat_real_deletion_counted () =
  (* the xor core plus a redundant clause (1|3) that the trace deletes
     before finishing the refutation *)
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ -1; 2 ]; [ 1; -2 ]; [ -1; -2 ]; [ 1; 3 ] ] in
  let proof = Proof.create () in
  Proof.delete proof [ Lit.pos 0; Lit.pos 2 ];
  Proof.add proof [ Lit.pos 1 ];
  match Drat.check cnf proof with
  | Ok stats ->
      Alcotest.(check int) "deletion counted" 1 stats.Drat.deletions;
      Alcotest.(check int) "no ignored deletion" 0 stats.Drat.ignored_deletions
  | Error e -> Alcotest.fail (Format.asprintf "%a" Drat.pp_error e)

let test_is_rat () =
  (* F = {(a|b), (-a|c), (-b|c)}: (a) is not RUP — assuming -a propagates
     nothing to conflict — but is RAT on a: the sole resolvent (c) is RUP *)
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 3 ] ] in
  Alcotest.(check bool) "not RUP" false (Drat.is_rup cnf [ Lit.pos 0 ]);
  Alcotest.(check bool) "but RAT" true (Drat.is_rat cnf [ Lit.pos 0 ]);
  Alcotest.(check bool) "RUP clauses are RAT too" true
    (Drat.is_rat cnf [ Lit.pos 0; Lit.pos 2 ])

let test_is_rup () =
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ -2; 3 ] ] in
  (* asserting -1 forces 2, which forces 3, so (1 | 3) is RUP *)
  Alcotest.(check bool) "implied clause" true
    (Drat.is_rup cnf [ Lit.pos 0; Lit.pos 2 ]);
  Alcotest.(check bool) "unrelated clause" false
    (Drat.is_rup cnf [ Lit.pos 0 ])

let prop_drat_checks_solver_proofs =
  QCheck2.Test.make ~count:300 ~name:"solver refutations pass the DRAT checker"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let proof = Proof.create () in
      match Solver.solve ~proof cnf with
      | Solver.Unsat, _ -> Result.is_ok (Drat.check cnf proof)
      | (Solver.Sat _ | Solver.Unknown | Solver.Memout), _ -> true)

let prop_drat_agrees_with_reference =
  QCheck2.Test.make ~count:300
    ~name:"watched-literal checker agrees with the reference checker"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let proof = Proof.create () in
      match Solver.solve ~proof cnf with
      | Solver.Unsat, _ ->
          Result.is_ok (Drat.check cnf proof)
          = Result.is_ok (Drat.check_reference cnf proof)
      | (Solver.Sat _ | Solver.Unknown | Solver.Memout), _ -> true)

let test_proof_parse_roundtrip () =
  let proof = Proof.create () in
  Proof.add proof [ Lit.pos 0; Lit.neg_of 1 ];
  Proof.delete proof [ Lit.pos 2 ];
  Proof.add proof [];
  let path = Filename.temp_file "fpgasat" ".drat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Proof.output oc proof;
      close_out oc;
      let parsed = Proof.parse_file path in
      Alcotest.(check bool) "steps survive the round trip" true
        (Proof.steps parsed = Proof.steps proof))

(* --- Solver.restart_limit_of_config --- *)

let test_restart_limit_clamps () =
  let cfg = { Solver.default with Solver.restart = Solver.Geometric (100, 1.5) } in
  (* 100 * 1.5^k overflows float->int conversion far before k = 1000;
     int_of_float of an out-of-range float is unspecified, so the limit
     must clamp instead of going negative or garbage *)
  Alcotest.(check int) "clamped at huge k" max_int
    (Solver.restart_limit_of_config cfg 1000);
  Alcotest.(check int) "small k exact" 150
    (Solver.restart_limit_of_config cfg 1);
  let prev = ref 0 in
  for k = 0 to 200 do
    let l = Solver.restart_limit_of_config cfg k in
    Alcotest.(check bool) "monotone and positive" true (l >= !prev && l > 0);
    prev := l
  done

(* --- Simplify --- *)

let test_simplify_units () =
  let cnf = cnf_of 3 [ [ 1 ]; [ -1; 2 ]; [ -2; 3 ] ] in
  let r = Simplify.simplify cnf in
  Alcotest.(check bool) "not unsat" false r.Simplify.unsat;
  Alcotest.(check int) "all clauses gone" 0 (Cnf.num_clauses r.Simplify.cnf);
  Alcotest.(check (list (pair int bool)))
    "forced chain"
    [ (0, true); (1, true); (2, true) ]
    r.Simplify.forced

let test_simplify_detects_unsat () =
  let cnf = cnf_of 2 [ [ 1 ]; [ -1; 2 ]; [ -2 ] ] in
  let r = Simplify.simplify cnf in
  Alcotest.(check bool) "unsat found" true r.Simplify.unsat

let test_simplify_pure_literals () =
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ 1; 3 ] ] in
  let r = Simplify.simplify cnf in
  Alcotest.(check bool) "pure 1 satisfies all" true
    (Cnf.num_clauses r.Simplify.cnf = 0);
  Alcotest.(check bool) "recorded as forced" true
    (List.mem (0, true) r.Simplify.forced)

let test_simplify_subsumption () =
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  let r = Simplify.simplify cnf in
  Alcotest.(check bool) "subsumed or fewer clauses" true
    (Cnf.num_clauses r.Simplify.cnf <= 1)

let test_simplify_self_subsumption () =
  (* (1 | 2) and (-1 | 2 | 3): self-subsumption strengthens the second to
     (2 | 3) *)
  let cnf = cnf_of 3 [ [ 1; 2 ]; [ -1; 2; 3 ] ] in
  let r = Simplify.simplify cnf in
  Alcotest.(check bool) "strengthened" true (r.Simplify.stats.Simplify.strengthened >= 1)

let prop_simplify_preserves_answer =
  QCheck2.Test.make ~count:500 ~name:"preprocessing preserves satisfiability"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let expected = brute_force cnf in
      let result, _, _ = Simplify.solve cnf in
      match result with
      | Solver.Sat model -> expected && Solver.check_model cnf model
      | Solver.Unsat -> not expected
      | Solver.Unknown | Solver.Memout -> false)

let prop_simplify_models_extend =
  QCheck2.Test.make ~count:500 ~name:"extended models satisfy the original"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let r = Simplify.simplify cnf in
      if r.Simplify.unsat then not (brute_force cnf)
      else
        match Solver.solve r.Simplify.cnf with
        | Solver.Sat m, _ -> Solver.check_model cnf (Simplify.extend_model r m)
        | Solver.Unsat, _ -> not (brute_force cnf)
        | (Solver.Unknown | Solver.Memout), _ -> false)

let prop_simplify_never_grows =
  QCheck2.Test.make ~count:300 ~name:"preprocessing never adds clauses"
    gen_random_cnf (fun input ->
      let cnf = build input in
      let r = Simplify.simplify cnf in
      r.Simplify.unsat || Cnf.num_clauses r.Simplify.cnf <= Cnf.num_clauses cnf)

(* --- incremental solving with assumptions --- *)

let gen_assumptions nvars =
  QCheck2.Gen.(
    let* n = int_range 0 (min 4 nvars) in
    list_repeat n
      (let* v = int_range 0 (nvars - 1) in
       let* sign = bool in
       return (Lit.make v sign)))

let prop_assumptions_match_unit_clauses =
  QCheck2.Test.make ~count:400
    ~name:"solve_with assumptions = solve with unit clauses"
    QCheck2.Gen.(
      gen_random_cnf >>= fun ((nvars, _) as input) ->
      pair (return input) (gen_assumptions nvars))
    (fun (input, assumptions) ->
      let cnf = build input in
      let solver = Solver.create cnf in
      let incremental = Solver.solve_with ~assumptions solver in
      let augmented = build input in
      List.iter (fun l -> Fpgasat_sat.Cnf.add_clause augmented [ l ]) assumptions;
      let reference = fst (Solver.solve augmented) in
      match (incremental, reference) with
      | Solver.Q_sat m, Solver.Sat _ ->
          Solver.check_model augmented m
          && List.for_all
               (fun l -> m.(Lit.var l) = Lit.sign l)
               assumptions
      | Solver.Q_unsat, Solver.Unsat -> true
      | _ -> false)

let prop_solver_reusable_across_queries =
  QCheck2.Test.make ~count:200
    ~name:"one solver answers a query sequence consistently"
    QCheck2.Gen.(
      gen_random_cnf >>= fun ((nvars, _) as input) ->
      pair (return input)
        (list_repeat 4 (gen_assumptions nvars)))
    (fun (input, queries) ->
      let cnf = build input in
      let solver = Solver.create cnf in
      List.for_all
        (fun assumptions ->
          let incremental = Solver.solve_with ~assumptions solver in
          let augmented = build input in
          List.iter
            (fun l -> Fpgasat_sat.Cnf.add_clause augmented [ l ])
            assumptions;
          match (incremental, fst (Solver.solve augmented)) with
          | Solver.Q_sat m, Solver.Sat _ -> Solver.check_model augmented m
          | Solver.Q_unsat, Solver.Unsat -> true
          | _ -> false)
        queries)

(* Regression: [Stats.max_decision_level] was only advanced when a free
   decision opened a level, never when an assumption did. The chain below is
   fully determined by one assumption plus unit propagation — no free
   decision ever happens — so the pre-fix watermark stayed at 0. *)
let test_assumption_levels_raise_max_level () =
  let cnf = cnf_of 4 [ [ -1; 2 ]; [ -2; 3 ]; [ -3; 4 ] ] in
  let solver = Solver.create cnf in
  (match Solver.solve_with ~assumptions:[ Lit.of_dimacs 1 ] solver with
  | Solver.Q_sat m ->
      Alcotest.(check bool) "chain propagated" true (m.(0) && m.(1) && m.(2) && m.(3))
  | _ -> Alcotest.fail "chain under assumption is SAT");
  let stats = Solver.solver_stats solver in
  Alcotest.(check bool)
    "assumption level counted in max_decision_level" true
    (stats.Fpgasat_sat.Stats.max_decision_level >= 1);
  Alcotest.(check int) "only the assumption opened a level" 1
    stats.Fpgasat_sat.Stats.decisions

let test_assumptions_out_of_range_rejected () =
  let cnf = cnf_of 1 [ [ 1 ] ] in
  let solver = Solver.create cnf in
  Alcotest.check_raises "oob assumption"
    (Invalid_argument "Solver.solve_with: assumption variable out of range")
    (fun () -> ignore (Solver.solve_with ~assumptions:[ Lit.pos 9 ] solver))

let test_solver_stats_accumulate () =
  let cnf = php 6 5 in
  let solver = Solver.create cnf in
  (match Solver.solve_with solver with
  | Solver.Q_unsat -> ()
  | _ -> Alcotest.fail "PHP 6/5 is UNSAT");
  let after_first = (Solver.solver_stats solver).Fpgasat_sat.Stats.conflicts in
  (* the second call hits st.ok = false immediately *)
  (match Solver.solve_with solver with
  | Solver.Q_unsat -> ()
  | _ -> Alcotest.fail "still UNSAT");
  let after_second = (Solver.solver_stats solver).Fpgasat_sat.Stats.conflicts in
  Alcotest.(check bool) "first call worked" true (after_first > 0);
  Alcotest.(check int) "second call free" after_first after_second

(* --- WalkSAT --- *)

let test_walksat_finds_model () =
  let cnf = cnf_of 4 [ [ 1; 2 ]; [ -1; 3 ]; [ -3; 4 ]; [ -2; -4; 1 ] ] in
  match Walksat.solve cnf with
  | Walksat.Sat m, flips ->
      Alcotest.(check bool) "model checks" true (Solver.check_model cnf m);
      Alcotest.(check bool) "flips counted" true (flips >= 0)
  | Walksat.Unknown, _ -> Alcotest.fail "trivially satisfiable formula missed"

let test_walksat_php_sat () =
  let cnf = php 6 6 in
  match Walksat.solve cnf with
  | Walksat.Sat m, _ ->
      Alcotest.(check bool) "model checks" true (Solver.check_model cnf m)
  | Walksat.Unknown, _ -> Alcotest.fail "PHP 6/6 is satisfiable"

let test_walksat_gives_up_on_unsat () =
  let cnf = cnf_of 1 [ [ 1 ]; [ -1 ] ] in
  let params = { Walksat.default_params with max_tries = 2; max_flips = 100 } in
  match Walksat.solve ~params cnf with
  | Walksat.Unknown, _ -> ()
  | Walksat.Sat _, _ -> Alcotest.fail "found a model of an UNSAT formula"

let test_walksat_empty_clause () =
  let cnf = Cnf.create () in
  Cnf.add_clause cnf [];
  match Walksat.solve cnf with
  | Walksat.Unknown, 0 -> ()
  | _ -> Alcotest.fail "empty clause must give Unknown immediately"

let test_walksat_deterministic () =
  let cnf = php 5 5 in
  let r1 = Walksat.solve cnf and r2 = Walksat.solve cnf in
  Alcotest.(check bool) "same flip count" true (snd r1 = snd r2)

let quick_params =
  { Walksat.default_params with Walksat.max_tries = 3; max_flips = 5_000 }

let prop_walksat_models_valid =
  QCheck2.Test.make ~count:300 ~name:"WalkSAT models satisfy the formula"
    gen_random_cnf (fun input ->
      let cnf = build input in
      match Walksat.solve ~params:quick_params cnf with
      | Walksat.Sat m, _ -> Solver.check_model cnf m
      | Walksat.Unknown, _ -> true)

let prop_walksat_agrees_when_sat =
  QCheck2.Test.make ~count:200 ~name:"WalkSAT finds models of easy SAT formulas"
    gen_random_cnf (fun input ->
      let cnf = build input in
      (* on <=8 vars, the default budget makes WalkSAT essentially complete
         for satisfiable formulas *)
      if brute_force cnf then
        match Walksat.solve ~params:quick_params cnf with
        | Walksat.Sat _, _ -> true
        | Walksat.Unknown, _ -> false
      else true)

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sat-extras"
    [
      ( "drat-check",
        Alcotest.test_case "accepts PHP proof" `Quick test_drat_accepts_php_proof
        :: Alcotest.test_case "rejects bogus addition" `Quick
             test_drat_rejects_bogus_addition
        :: Alcotest.test_case "rejects missing empty clause" `Quick
             test_drat_rejects_missing_empty
        :: Alcotest.test_case "tolerates absent deletion" `Quick
             test_drat_tolerates_absent_deletion
        :: Alcotest.test_case "counts real deletions" `Quick
             test_drat_real_deletion_counted
        :: Alcotest.test_case "is_rup" `Quick test_is_rup
        :: Alcotest.test_case "is_rat" `Quick test_is_rat
        :: Alcotest.test_case "proof parse round trip" `Quick
             test_proof_parse_roundtrip
        :: qtests
             [ prop_drat_checks_solver_proofs; prop_drat_agrees_with_reference ]
      );
      ( "restart-limit",
        [ Alcotest.test_case "geometric clamps to max_int" `Quick
            test_restart_limit_clamps ] );
      ( "simplify",
        Alcotest.test_case "unit chain" `Quick test_simplify_units
        :: Alcotest.test_case "detects unsat" `Quick test_simplify_detects_unsat
        :: Alcotest.test_case "pure literals" `Quick test_simplify_pure_literals
        :: Alcotest.test_case "subsumption" `Quick test_simplify_subsumption
        :: Alcotest.test_case "self-subsumption" `Quick test_simplify_self_subsumption
        :: qtests
             [
               prop_simplify_preserves_answer;
               prop_simplify_models_extend;
               prop_simplify_never_grows;
             ] );
      ( "assumptions",
        Alcotest.test_case "assumption levels raise max_level" `Quick
          test_assumption_levels_raise_max_level
        :: Alcotest.test_case "out of range rejected" `Quick
          test_assumptions_out_of_range_rejected
        :: Alcotest.test_case "stats accumulate" `Quick test_solver_stats_accumulate
        :: qtests
             [ prop_assumptions_match_unit_clauses; prop_solver_reusable_across_queries ]
      );
      ( "walksat",
        Alcotest.test_case "finds a model" `Quick test_walksat_finds_model
        :: Alcotest.test_case "php sat" `Quick test_walksat_php_sat
        :: Alcotest.test_case "gives up on unsat" `Quick test_walksat_gives_up_on_unsat
        :: Alcotest.test_case "empty clause" `Quick test_walksat_empty_clause
        :: Alcotest.test_case "deterministic" `Quick test_walksat_deterministic
        :: qtests [ prop_walksat_models_valid; prop_walksat_agrees_when_sat ] );
    ]
