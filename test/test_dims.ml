(* Tests for the dimensional benchmarking stack: the power-law fitter and
   its exponent gate (Fpgasat_obs.Fit), the parameterized instance
   generator (Fpgasat_fpga.Generator), and the grid/analysis glue
   (Fpgasat_engine.Dims) — including the determinism and censoring rules
   the scaling CI gate depends on. *)

module G = Fpgasat_graph
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module Obs = Fpgasat_obs
module Fit = Obs.Fit
module Gen = F.Generator
module Dims = Eng.Dims
module Run_record = Eng.Run_record
module Flow = C.Flow

let feq = Alcotest.float 1e-9

(* ---------- Fit: exponent recovery ---------- *)

let points_of xs f group = List.map (fun x -> { Fit.x; y = f x; group }) xs

let fit_exn = function Ok f -> f | Error m -> Alcotest.fail m

let test_fit_exact_exponent () =
  let pts = points_of [ 2.; 4.; 8.; 16. ] (fun x -> 2. *. (x ** 1.5)) "g" in
  let f = fit_exn (Fit.power_law ~strategy:"s" ~dimension:"nets" pts) in
  Alcotest.check feq "exponent" 1.5 f.Fit.exponent;
  Alcotest.check feq "r2" 1. f.Fit.r2;
  Alcotest.(check int) "points" 4 f.Fit.points;
  (match f.Fit.intercepts with
  | [ ("g", i) ] -> Alcotest.check feq "ln C" (log 2.) i
  | _ -> Alcotest.fail "expected one intercept for group g");
  List.iter
    (fun r -> Alcotest.check feq "residual" 0. r)
    (Fit.residuals f pts);
  Alcotest.check feq "eval at 32" (2. *. (32. ** 1.5))
    (Fit.eval f ~group:"g" 32.)

let test_fit_noisy_exponent () =
  (* fixed multiplicative noise, as a seeded run would produce *)
  let noise = [ 1.12; 0.93; 1.06; 0.91; 1.04 ] in
  let pts =
    List.map2
      (fun x n -> { Fit.x; y = 0.01 *. (x ** 2.) *. n; group = "g" })
      [ 2.; 4.; 8.; 16.; 32. ] noise
  in
  let f = fit_exn (Fit.power_law ~strategy:"s" ~dimension:"nets" pts) in
  Alcotest.(check bool)
    "exponent near 2"
    (Float.abs (f.Fit.exponent -. 2.) < 0.2)
    true;
  Alcotest.(check bool) "r2 high" (f.Fit.r2 > 0.9) true

let test_fit_pooled_groups () =
  (* two groups with different constants but a common slope: the pooled
     fit must recover the slope exactly and one intercept per group *)
  let pts =
    points_of [ 2.; 4.; 8. ] (fun x -> 3. *. (x ** 2.)) "a"
    @ points_of [ 2.; 4.; 8. ] (fun x -> 100. *. (x ** 2.)) "b"
  in
  let f = fit_exn (Fit.power_law ~strategy:"s" ~dimension:"nets" pts) in
  Alcotest.check feq "exponent" 2. f.Fit.exponent;
  Alcotest.check feq "r2" 1. f.Fit.r2;
  Alcotest.(check int) "two intercepts" 2 (List.length f.Fit.intercepts);
  Alcotest.check feq "intercept a" (log 3.)
    (List.assoc "a" f.Fit.intercepts);
  Alcotest.check feq "intercept b" (log 100.)
    (List.assoc "b" f.Fit.intercepts)

let test_fit_degenerate () =
  let err = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected Error"
  in
  (* fewer than two points *)
  err (Fit.power_law ~strategy:"s" ~dimension:"d" []);
  err
    (Fit.power_law ~strategy:"s" ~dimension:"d"
       [ { Fit.x = 2.; y = 1.; group = "g" } ]);
  (* no group varies along the dimension: same x twice, and two
     single-point groups *)
  err
    (Fit.power_law ~strategy:"s" ~dimension:"d"
       [
         { Fit.x = 4.; y = 1.; group = "g" };
         { Fit.x = 4.; y = 2.; group = "g" };
       ]);
  err
    (Fit.power_law ~strategy:"s" ~dimension:"d"
       [
         { Fit.x = 2.; y = 1.; group = "g1" };
         { Fit.x = 4.; y = 2.; group = "g2" };
       ])

let test_fit_zero_times_clamped () =
  (* zero-second cells clamp to the microsecond floor instead of -inf:
     constant (clamped) times fit as slope 0 with r2 = 1 *)
  let pts = points_of [ 2.; 4.; 8. ] (fun _ -> 0.) "g" in
  let f = fit_exn (Fit.power_law ~strategy:"s" ~dimension:"d" pts) in
  Alcotest.check feq "flat" 0. f.Fit.exponent;
  Alcotest.check feq "r2 on zero variance" 1. f.Fit.r2;
  Alcotest.(check bool)
    "intercept at the clamp" true
    (Float.abs (List.assoc "g" f.Fit.intercepts -. log Fit.min_seconds)
    < 1e-9)

let test_fit_crossover () =
  let f1 =
    fit_exn
      (Fit.power_law ~strategy:"quad" ~dimension:"nets"
         (points_of [ 2.; 4.; 8. ] (fun x -> x ** 2.) "g"))
  in
  let f2 =
    fit_exn
      (Fit.power_law ~strategy:"lin" ~dimension:"nets"
         (points_of [ 2.; 4.; 8. ] (fun x -> 16. *. x) "g"))
  in
  (match Fit.crossover_of_fits f1 f2 with
  | Some at -> Alcotest.check (Alcotest.float 1e-6) "x^2 = 16x" 16. at
  | None -> Alcotest.fail "expected a crossover");
  (* parallel curves never cross *)
  let f3 =
    fit_exn
      (Fit.power_law ~strategy:"quad2" ~dimension:"nets"
         (points_of [ 2.; 4.; 8. ] (fun x -> 5. *. (x ** 2.)) "g"))
  in
  Alcotest.(check bool)
    "parallel -> None" true
    (Fit.crossover_of_fits f1 f3 = None)

(* ---------- Fit: the scaling document and its gate ---------- *)

let sample_fit ~strategy ~dimension ~exponent =
  {
    Fit.strategy;
    dimension;
    exponent;
    intercepts = [ ("g", -2.5) ];
    r2 = 0.95;
    points = 8;
    censored = 1;
  }

let sample_scaling () =
  {
    Fit.seed = 2008;
    family = "unsat";
    fits =
      [
        sample_fit ~strategy:"a" ~dimension:"nets" ~exponent:2.0;
        sample_fit ~strategy:"a" ~dimension:"grid" ~exponent:(-1.5);
      ];
    crossovers =
      [ { Fit.dimension = "nets"; slow = "a"; fast = "b"; at = 37.2 } ];
  }

let test_scaling_json_roundtrip () =
  let s = sample_scaling () in
  match Fit.of_string (Obs.Json.to_string (Fit.to_json s)) with
  | Error m -> Alcotest.fail m
  | Ok s' -> Alcotest.(check bool) "roundtrip" true (Fit.equal s s')

let test_scaling_file_roundtrip () =
  let s = sample_scaling () in
  let path = Filename.temp_file "fpgasat_scaling" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fit.to_file path s;
      match Fit.of_file path with
      | Error m -> Alcotest.fail m
      | Ok s' -> Alcotest.(check bool) "roundtrip" true (Fit.equal s s'))

let test_scaling_schema_checked () =
  match Fit.of_string {|{"schema":"fpgasat.bench/1","seed":1}|} with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error m ->
      Alcotest.(check bool)
        "names the schema" true
        (String.length m > 0)

let test_gate_pass_and_fail () =
  let baseline = sample_scaling () in
  (* identical exponents pass *)
  let r = Fit.gate ~baseline ~current:baseline () in
  Alcotest.(check bool) "equal passes" true r.Fit.gate_ok;
  (* an improvement and extra current fits pass *)
  let better =
    {
      baseline with
      Fit.fits =
        sample_fit ~strategy:"extra" ~dimension:"nets" ~exponent:9.
        :: List.map
             (fun f -> { f with Fit.exponent = f.Fit.exponent -. 0.4 })
             baseline.Fit.fits;
    }
  in
  let r = Fit.gate ~baseline ~current:better () in
  Alcotest.(check bool) "improvement passes" true r.Fit.gate_ok;
  (* a regression beyond tolerance fails exactly that cell *)
  let worse =
    {
      baseline with
      Fit.fits =
        List.map
          (fun (f : Fit.fit) ->
            if f.Fit.dimension = "nets" then
              { f with Fit.exponent = f.Fit.exponent +. 1.1 }
            else f)
          baseline.Fit.fits;
    }
  in
  let r = Fit.gate ~baseline ~current:worse () in
  Alcotest.(check bool) "regression fails" false r.Fit.gate_ok;
  let failed =
    List.filter (fun c -> not c.Fit.cell_ok) r.Fit.cells
  in
  (match failed with
  | [ c ] ->
      Alcotest.(check string) "the nets cell" "nets" c.Fit.g_dimension
  | _ -> Alcotest.fail "expected exactly one failing cell");
  (* a regression inside tolerance passes *)
  let r = Fit.gate ~tolerance:1.5 ~baseline ~current:worse () in
  Alcotest.(check bool) "within tolerance passes" true r.Fit.gate_ok

let test_gate_missing_fit_fails () =
  let baseline = sample_scaling () in
  let current = { baseline with Fit.fits = [ List.hd baseline.Fit.fits ] } in
  let r = Fit.gate ~baseline ~current () in
  Alcotest.(check bool) "missing fit fails" false r.Fit.gate_ok;
  let missing = List.filter (fun c -> c.Fit.current_exponent = None) r.Fit.cells in
  Alcotest.(check int) "one missing cell" 1 (List.length missing)

let test_gate_tolerance_validated () =
  Alcotest.check_raises "non-positive tolerance"
    (Invalid_argument "Fit.gate: tolerance <= 0") (fun () ->
      let b = sample_scaling () in
      ignore (Fit.gate ~tolerance:0. ~baseline:b ~current:b ()))

let test_gate_render_verdict () =
  let ends_with s suffix =
    let n = String.length s and m = String.length suffix in
    n >= m && String.sub s (n - m) m = suffix
  in
  let b = sample_scaling () in
  let pass = Fit.render_gate (Fit.gate ~baseline:b ~current:b ()) in
  Alcotest.(check bool) "PASS" true (ends_with pass "PASS");
  let worse =
    { b with Fit.fits = [ sample_fit ~strategy:"a" ~dimension:"nets" ~exponent:9. ] }
  in
  let fail =
    Fit.render_gate (Fit.gate ~baseline:b ~current:worse ())
  in
  Alcotest.(check bool)
    "FAIL" true
    (ends_with fail "FAIL: scaling exponent regression")

let qcheck_scaling_roundtrip =
  let open QCheck2 in
  let gen_name = Gen.(string_size ~gen:printable (int_range 1 8)) in
  let gen_float =
    Gen.(
      map2 (fun neg f -> if neg then -.f else f) bool
        (float_bound_exclusive 1e6))
  in
  let gen_fit =
    Gen.(
      map
        (fun (s, d, e, ints, r2, pts, cens) ->
          {
            Fit.strategy = s;
            dimension = d;
            exponent = e;
            intercepts = ints;
            r2;
            points = pts;
            censored = cens;
          })
        (tup7 gen_name gen_name gen_float
           (list_size (int_range 1 3) (tup2 gen_name gen_float))
           gen_float nat nat))
  in
  let gen_crossover =
    Gen.(
      map
        (fun (d, slow, fast, at) -> { Fit.dimension = d; slow; fast; at })
        (tup4 gen_name gen_name gen_name (float_bound_exclusive 1e6)))
  in
  let gen_scaling =
    Gen.(
      map
        (fun (seed, family, fits, crossovers) ->
          { Fit.seed; family; fits; crossovers })
        (tup4 nat gen_name
           (list_size (int_range 0 3) gen_fit)
           (list_size (int_range 0 2) gen_crossover)))
  in
  QCheck2.Test.make ~count:200
    ~name:"fpgasat.scaling/1 JSON round-trips bit-exactly" gen_scaling
    (fun s ->
      match Fit.of_string (Obs.Json.to_string (Fit.to_json s)) with
      | Ok s' -> Fit.equal s s'
      | Error _ -> false)

(* ---------- Generator ---------- *)

let small_params =
  { Gen.default_params with Gen.grid = 5; nets = 32; width = 4 }

let test_generator_deterministic () =
  let a = Gen.build small_params Gen.Unroutable in
  let b = Gen.build small_params Gen.Unroutable in
  Alcotest.(check int)
    "vertices"
    (G.Graph.num_vertices a.Gen.graph)
    (G.Graph.num_vertices b.Gen.graph);
  Alcotest.(check (list (pair int int)))
    "edges" (G.Graph.edges a.Gen.graph) (G.Graph.edges b.Gen.graph);
  Alcotest.(check int) "clique" a.Gen.clique_bound b.Gen.clique_bound;
  Alcotest.(check int) "dsatur" a.Gen.dsatur_bound b.Gen.dsatur_bound;
  Alcotest.(check int) "solve width" a.Gen.solve_width b.Gen.solve_width

let test_generator_seed_changes_instance () =
  let a = Gen.build small_params Gen.Unroutable in
  let b =
    Gen.build { small_params with Gen.seed = small_params.Gen.seed + 1 }
      Gen.Unroutable
  in
  Alcotest.(check bool)
    "different seed, different conflicts" false
    (G.Graph.edges a.Gen.graph = G.Graph.edges b.Gen.graph)

let test_generator_name_roundtrip () =
  List.iter
    (fun (p, fam) ->
      match Gen.of_name (Gen.name p fam) with
      | Some (p', fam') ->
          Alcotest.(check bool) "params" true (p = p');
          Alcotest.(check bool) "family" true (fam = fam')
      | None -> Alcotest.fail ("unparsed: " ^ Gen.name p fam))
    [
      (Gen.default_params, Gen.Unroutable);
      (small_params, Gen.Routable);
      ({ Gen.grid = 1; nets = 1; width = 1; max_fanout = 1; locality = 0; seed = 0 },
       Gen.Unroutable);
    ];
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true (Gen.of_name s = None))
    [
      "alu2"; "gen"; "gen:g7:n48:w5:f3:l2:s2008"; "gen:g7:n48:w5:f3:l2:s2008:maybe";
      "gen:x7:n48:w5:f3:l2:s2008:unsat"; "gen:g-7:n48:w5:f3:l2:s2008:unsat";
      "gen:g7:n48:w5:f3:l2:s2008:unsat:extra"; "";
    ]

let test_generator_invalid_params_rejected () =
  List.iter
    (fun p ->
      match Gen.build p Gen.Unroutable with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      { small_params with Gen.grid = 0 };
      { small_params with Gen.nets = 0 };
      { small_params with Gen.width = 0 };
      { small_params with Gen.max_fanout = 0 };
    ]

let certified_submit inst =
  Flow.(
    submit
      (default_request
      |> with_strategy C.Strategy.best_single
      |> with_budget (Fpgasat_sat.Solver.time_budget 60.)
      |> with_certify true))
    inst.Gen.route ~width:inst.Gen.solve_width

let test_generator_unroutable_certified () =
  let inst = Gen.build small_params Gen.Unroutable in
  Alcotest.(check bool)
    "provably unroutable" true
    (Gen.provably_unroutable inst);
  let run = certified_submit inst in
  (match run.Flow.outcome with
  | Flow.Unroutable -> ()
  | o -> Alcotest.fail ("expected unroutable, got " ^ Flow.outcome_name o));
  Alcotest.(check bool)
    "UNSAT certified through the DRAT checker" true
    (run.Flow.certified = Some true)

let test_generator_routable_certified () =
  let inst = Gen.build small_params Gen.Routable in
  let run = certified_submit inst in
  (match run.Flow.outcome with
  | Flow.Routable _ -> ()
  | o -> Alcotest.fail ("expected routable, got " ^ Flow.outcome_name o));
  Alcotest.(check bool)
    "SAT certified through the model + route checker" true
    (run.Flow.certified = Some true)

(* ---------- Dims ---------- *)

let test_dims_cells_cartesian () =
  let grid =
    {
      Dims.base = Gen.default_params;
      axes =
        [
          { Dims.dim = "grid"; values = [ 5; 7 ] };
          { Dims.dim = "nets"; values = [ 8; 16; 24 ] };
        ];
      family = Gen.Unroutable;
    }
  in
  let cells = Dims.cells grid in
  Alcotest.(check int) "2 x 3 cells" 6 (List.length cells);
  (* last axis fastest, base coordinates untouched *)
  (match cells with
  | first :: second :: _ ->
      Alcotest.(check int) "first grid" 5 first.Gen.grid;
      Alcotest.(check int) "first nets" 8 first.Gen.nets;
      Alcotest.(check int) "second nets" 16 second.Gen.nets;
      Alcotest.(check int)
        "width stays at base" Gen.default_params.Gen.width first.Gen.width
  | _ -> Alcotest.fail "expected cells");
  let invalid axes =
    match Dims.cells { grid with Dims.axes } with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid [ { Dims.dim = "chips"; values = [ 1 ] } ];
  invalid
    [
      { Dims.dim = "nets"; values = [ 1 ] };
      { Dims.dim = "nets"; values = [ 2 ] };
    ];
  invalid [ { Dims.dim = "nets"; values = [] } ]

let test_dims_presets_identifiable () =
  (* every preset axis needs >= 2 values or its exponent could never be
     fitted; smoke must stay small enough for CI *)
  List.iter
    (fun (g : Dims.grid) ->
      List.iter
        (fun (a : Dims.axis) ->
          Alcotest.(check bool)
            ("axis " ^ a.Dims.dim ^ " identifiable")
            true
            (List.length a.Dims.values >= 2))
        g.Dims.axes)
    [ Dims.smoke; Dims.full ];
  Alcotest.(check int) "smoke is 2x2x2" 8 (List.length (Dims.cells Dims.smoke))

(* records for the pure analysis tests, built through the public schema *)
let mk_record ~benchmark ~strategy ~outcome ~solving =
  let line =
    Printf.sprintf
      {|{"schema":"fpgasat.run/1","benchmark":"%s","strategy":"%s","width":3,"outcome":"%s","timings":{"to_graph":0.0,"to_cnf":0.0,"solving":%.9f},"wall_seconds":%.9f,"cnf":{"vars":10,"clauses":20},"solver":{"decisions":1,"propagations":2,"conflicts":3,"restarts":0,"learnt_clauses":0,"learnt_literals":0,"deleted_clauses":0,"max_decision_level":1}}|}
      benchmark strategy outcome solving solving
  in
  match Run_record.of_line line with
  | Ok r -> r
  | Error m -> Alcotest.failf "record: %s" m

let gen_bench nets =
  Gen.name { Gen.default_params with Gen.nets } Gen.Unroutable

let quadratic_records strategy c =
  List.map
    (fun nets ->
      mk_record ~benchmark:(gen_bench nets) ~strategy ~outcome:"unroutable"
        ~solving:(c *. (float_of_int nets ** 2.)))
    [ 8; 16; 32 ]

let test_dims_analyze_recovers_exponent () =
  let records = quadratic_records "s" 0.001 in
  let doc = Dims.analyze records in
  Alcotest.(check int) "seed from records" 2008 doc.Fit.seed;
  Alcotest.(check string) "family" "unsat" doc.Fit.family;
  (* only nets varies: exactly one fit, exponent 2 *)
  (match doc.Fit.fits with
  | [ f ] ->
      Alcotest.(check string) "dimension" "nets" f.Fit.dimension;
      Alcotest.(check string) "strategy" "s" f.Fit.strategy;
      Alcotest.check feq "exponent" 2. f.Fit.exponent;
      Alcotest.(check int) "points" 3 f.Fit.points;
      Alcotest.(check int) "censored" 0 f.Fit.censored
  | fits -> Alcotest.failf "expected one fit, got %d" (List.length fits))

let test_dims_analyze_censors_timeouts () =
  let records =
    quadratic_records "s" 0.001
    @ [
        mk_record ~benchmark:(gen_bench 64) ~strategy:"s" ~outcome:"timeout"
          ~solving:120.;
      ]
  in
  let doc = Dims.analyze records in
  match doc.Fit.fits with
  | [ f ] ->
      (* the timeout cell is excluded from the fit, not entered at its
         budget value: the exponent stays exact *)
      Alcotest.check feq "exponent unchanged" 2. f.Fit.exponent;
      Alcotest.(check int) "points" 3 f.Fit.points;
      Alcotest.(check int) "censored counted" 1 f.Fit.censored
  | fits -> Alcotest.failf "expected one fit, got %d" (List.length fits)

let test_dims_analyze_ignores_foreign_records () =
  let records =
    mk_record ~benchmark:"alu2" ~strategy:"s" ~outcome:"unroutable"
      ~solving:999.
    :: quadratic_records "s" 0.001
  in
  let doc = Dims.analyze records in
  match doc.Fit.fits with
  | [ f ] -> Alcotest.check feq "alu2 ignored" 2. f.Fit.exponent
  | fits -> Alcotest.failf "expected one fit, got %d" (List.length fits)

let test_dims_analyze_crossover () =
  let records =
    quadratic_records "quad" 0.0001
    @ List.map
        (fun nets ->
          mk_record ~benchmark:(gen_bench nets) ~strategy:"lin"
            ~outcome:"unroutable"
            ~solving:(0.001 *. float_of_int nets))
        [ 8; 16; 32 ]
  in
  let doc = Dims.analyze records in
  Alcotest.(check int) "two fits" 2 (List.length doc.Fit.fits);
  match doc.Fit.crossovers with
  | [ c ] ->
      Alcotest.(check string) "slower strategy" "quad" c.Fit.slow;
      Alcotest.(check string) "faster strategy" "lin" c.Fit.fast;
      (* 0.0001 x^2 = 0.001 x at x = 10 *)
      Alcotest.check (Alcotest.float 1e-6) "crossing point" 10. c.Fit.at
  | cs -> Alcotest.failf "expected one crossover, got %d" (List.length cs)

let test_dims_analyze_deterministic () =
  let records =
    quadratic_records "a" 0.001 @ quadratic_records "b" 0.0001
  in
  Alcotest.(check bool)
    "same records, bit-identical document" true
    (Fit.equal (Dims.analyze records) (Dims.analyze records))

let test_dims_jobs_shape () =
  let grid =
    {
      Dims.base = small_params;
      axes = [ { Dims.dim = "nets"; values = [ 16; 24 ] } ];
      family = Gen.Unroutable;
    }
  in
  let strategies = [ C.Strategy.best_single; List.hd C.Strategy.paper_portfolio_2 ] in
  let jobs = Dims.jobs grid ~strategies in
  Alcotest.(check int) "cells x strategies" 4 (List.length jobs);
  List.iter
    (fun (j : Eng.Sweep.job) ->
      match Gen.of_name j.Eng.Sweep.benchmark with
      | None -> Alcotest.fail "job benchmark must parse back"
      | Some (p, fam) ->
          Alcotest.(check bool) "family" true (fam = Gen.Unroutable);
          let inst = Gen.build p fam in
          Alcotest.(check int)
            "width is the instance's solve width" inst.Gen.solve_width
            j.Eng.Sweep.width)
    jobs

let () =
  Alcotest.run "dims"
    [
      ( "fit",
        [
          Alcotest.test_case "exact exponent" `Quick test_fit_exact_exponent;
          Alcotest.test_case "noisy exponent" `Quick test_fit_noisy_exponent;
          Alcotest.test_case "pooled groups" `Quick test_fit_pooled_groups;
          Alcotest.test_case "degenerate inputs" `Quick test_fit_degenerate;
          Alcotest.test_case "zero times clamped" `Quick
            test_fit_zero_times_clamped;
          Alcotest.test_case "crossover" `Quick test_fit_crossover;
        ] );
      ( "scaling-doc",
        [
          Alcotest.test_case "json roundtrip" `Quick test_scaling_json_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_scaling_file_roundtrip;
          Alcotest.test_case "schema checked" `Quick test_scaling_schema_checked;
          Alcotest.test_case "gate pass and fail" `Quick test_gate_pass_and_fail;
          Alcotest.test_case "gate missing fit fails" `Quick
            test_gate_missing_fit_fails;
          Alcotest.test_case "gate tolerance validated" `Quick
            test_gate_tolerance_validated;
          Alcotest.test_case "gate render verdict" `Quick
            test_gate_render_verdict;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed changes instance" `Quick
            test_generator_seed_changes_instance;
          Alcotest.test_case "name roundtrip" `Quick
            test_generator_name_roundtrip;
          Alcotest.test_case "invalid params rejected" `Quick
            test_generator_invalid_params_rejected;
          Alcotest.test_case "unroutable certified UNSAT" `Slow
            test_generator_unroutable_certified;
          Alcotest.test_case "routable certified SAT" `Slow
            test_generator_routable_certified;
        ] );
      ( "dims",
        [
          Alcotest.test_case "cells cartesian" `Quick test_dims_cells_cartesian;
          Alcotest.test_case "presets identifiable" `Quick
            test_dims_presets_identifiable;
          Alcotest.test_case "analyze recovers exponent" `Quick
            test_dims_analyze_recovers_exponent;
          Alcotest.test_case "analyze censors timeouts" `Quick
            test_dims_analyze_censors_timeouts;
          Alcotest.test_case "analyze ignores foreign records" `Quick
            test_dims_analyze_ignores_foreign_records;
          Alcotest.test_case "analyze finds crossovers" `Quick
            test_dims_analyze_crossover;
          Alcotest.test_case "analyze deterministic" `Quick
            test_dims_analyze_deterministic;
          Alcotest.test_case "jobs shape" `Quick test_dims_jobs_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_scaling_roundtrip ] );
    ]
