(* fpgasat — command-line front end for the SAT-based FPGA detailed router.

   Subcommands mirror the paper's tool flow: generate a benchmark instance,
   export its conflict graph (DIMACS .col), encode a width query to DIMACS
   CNF under any of the 15 encodings, decide routability (with optional DRAT
   proof), search the minimal width, run strategy portfolios, sweep whole
   benchmark × strategy matrices in parallel with streamed JSONL results
   (`sweep`, resumable, optionally certified with --certify; rendered back
   with `report`), check DRAT refutations against DIMACS CNFs (`certify`),
   and solve arbitrary DIMACS CNF / colouring files with the built-in CDCL
   solver. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Bdd = Fpgasat_bdd
module Eng = Fpgasat_engine
module Obs = Fpgasat_obs
module Srv = Fpgasat_server
open Cmdliner

(* ---------- converters and shared arguments ---------- *)

let benchmark_conv =
  let parse s =
    match F.Benchmarks.find s with
    | Some spec -> Ok spec
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown benchmark %S (expected one of: %s)" s
               (String.concat ", " F.Benchmarks.names)))
  in
  let print fmt (spec : F.Benchmarks.spec) =
    Format.pp_print_string fmt spec.F.Benchmarks.name
  in
  Arg.conv (parse, print)

let strategy_conv =
  let parse s =
    match C.Strategy.of_name s with Ok s -> Ok s | Error m -> Error (`Msg m)
  in
  let print fmt s = Format.pp_print_string fmt (C.Strategy.name s) in
  Arg.conv (parse, print)

let encoding_conv =
  let parse s =
    match E.Encoding.of_name s with Ok e -> Ok e | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, E.Encoding.pp)

let benchmark_pos =
  Arg.(required & pos 0 (some benchmark_conv) None
       & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (see $(b,list)).")

let width_arg =
  Arg.(required & opt (some int) None
       & info [ "w"; "width" ] ~docv:"W" ~doc:"Tracks per channel.")

let strategy_arg =
  Arg.(value & opt strategy_conv C.Strategy.best_single
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Strategy: <encoding>[/<b1|s1|none>][@<siege|minisat>].")

let budget_arg =
  Arg.(value & opt (some float) None
       & info [ "budget" ] ~docv:"SEC" ~doc:"CPU-time budget for the SAT solver.")

let budget_of = function
  | None -> Sat.Solver.no_budget
  | Some s -> Sat.Solver.time_budget s

let build_instance spec = F.Benchmarks.build spec

(* ---------- list ---------- *)

let list_cmd =
  let run () =
    print_endline "Benchmarks (synthetic MCNC stand-ins):";
    List.iter
      (fun (spec : F.Benchmarks.spec) ->
        Printf.printf "  %-10s grid=%dx%d nets=%d seed=%d\n" spec.F.Benchmarks.name
          spec.F.Benchmarks.grid spec.F.Benchmarks.grid spec.F.Benchmarks.nets
          spec.F.Benchmarks.seed)
      F.Benchmarks.specs;
    print_endline "\nEncodings (append +defs for definitional emission):";
    List.iter
      (fun e ->
        Printf.printf "  %-30s %s\n" (E.Encoding.name e)
          (E.Encoding.name (E.Encoding.defs e)))
      E.Registry.all;
    print_endline "\nSymmetry-breaking heuristics: b1, s1";
    print_endline "Solver presets: siege, minisat"
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, encodings and heuristics.")
    Term.(const run $ const ())

(* ---------- info ---------- *)

let info_cmd =
  let run spec =
    let inst = build_instance spec in
    Format.printf "%a@." F.Benchmarks.pp_instance inst;
    let congestion = F.Congestion.of_route inst.F.Benchmarks.route in
    Format.printf "congestion histogram (usage:segments): %a@."
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
         (fun fmt (u, c) -> Format.fprintf fmt "%d:%d" u c))
      (F.Congestion.histogram congestion);
    Printf.printf "clique lower bound: %d\nDSATUR upper bound: %d\n"
      (G.Clique.lower_bound inst.F.Benchmarks.graph)
      (G.Greedy.upper_bound inst.F.Benchmarks.graph);
    Printf.printf "total wirelength: %d\n"
      (F.Global_route.total_wirelength inst.F.Benchmarks.route)
  in
  Cmd.v (Cmd.info "info" ~doc:"Describe a benchmark instance.")
    Term.(const run $ benchmark_pos)

(* ---------- export ---------- *)

let export_cmd =
  let col =
    Arg.(value & opt (some string) None
         & info [ "col" ] ~docv:"FILE" ~doc:"Write the conflict graph as DIMACS .col.")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write the conflict graph as Graphviz DOT.")
  in
  let run spec col dot =
    let inst = build_instance spec in
    let graph = inst.F.Benchmarks.graph in
    let comments =
      [
        Printf.sprintf "conflict graph of benchmark %s" spec.F.Benchmarks.name;
        Printf.sprintf "vertices = 2-pin subnets (%d), edges = shared channel segments (%d)"
          (G.Graph.num_vertices graph) (G.Graph.num_edges graph);
      ]
    in
    (match col with
    | Some path ->
        G.Dimacs_col.write_file path ~comments graph;
        Printf.printf "wrote %s\n" path
    | None -> ());
    (match dot with
    | Some path ->
        G.Dot.write_file path ~name:spec.F.Benchmarks.name graph;
        Printf.printf "wrote %s\n" path
    | None -> ());
    if col = None && dot = None then
      print_string (G.Dimacs_col.to_string ~comments graph)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a benchmark's conflict graph (.col to stdout by default).")
    Term.(const run $ benchmark_pos $ col $ dot)

(* ---------- encode ---------- *)

let encode_cmd =
  let enc =
    Arg.(value & opt encoding_conv (List.hd E.Registry.new_encodings)
         & info [ "e"; "encoding" ] ~docv:"ENC" ~doc:"Encoding to use.")
  in
  let sym =
    Arg.(value & opt (some string) None
         & info [ "symmetry" ] ~docv:"H" ~doc:"Symmetry heuristic: b1 or s1.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run spec width enc sym out =
    let symmetry =
      Option.map
        (fun s ->
          match E.Symmetry.of_name s with
          | Some h -> h
          | None -> failwith (Printf.sprintf "unknown symmetry heuristic %S" s))
        sym
    in
    let inst = build_instance spec in
    let csp = F.Conflict_graph.csp inst.F.Benchmarks.route ~w:width in
    let encoded = E.Csp_encode.encode ?symmetry enc csp in
    let comments =
      [
        Printf.sprintf "%s at W=%d, encoding %s, symmetry %s"
          spec.F.Benchmarks.name width (E.Encoding.name enc)
          (match symmetry with None -> "-" | Some h -> E.Symmetry.name h);
      ]
    in
    match out with
    | Some path ->
        Sat.Dimacs_cnf.write_file path ~comments encoded.E.Csp_encode.cnf;
        Format.printf "wrote %s (%a)@." path Sat.Cnf.pp_stats encoded.E.Csp_encode.cnf
    | None -> print_string (Sat.Dimacs_cnf.to_string ~comments encoded.E.Csp_encode.cnf)
  in
  Cmd.v
    (Cmd.info "encode" ~doc:"Encode a width query as DIMACS CNF.")
    Term.(const run $ benchmark_pos $ width_arg $ enc $ sym $ out)

(* ---------- route ---------- *)

let route_cmd =
  let proof_arg =
    Arg.(value & opt (some string) None
         & info [ "proof" ] ~docv:"FILE" ~doc:"Write a DRAT refutation on UNSAT.")
  in
  let tracks_arg =
    Arg.(value & flag & info [ "tracks" ] ~doc:"Print the per-subnet track assignment.")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the run as one machine-readable JSON line (the \
                   sweep record schema) instead of the human report.")
  in
  let profile_arg =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Trace the run (solve span + solver events) and write it \
                   as Chrome trace_event JSON, loadable in \
                   chrome://tracing or Perfetto.")
  in
  let inprocess_arg =
    Arg.(value & opt (some (pair ~sep:':' int int)) None
         & info [ "inprocess" ] ~docv:"EVERY:BUDGET"
             ~doc:"Override the solver preset's inprocessing cadence: run a \
                   self-subsumption and vivification pass every EVERY \
                   restarts under a work budget of BUDGET propagations \
                   (EVERY = 0 disables inprocessing). Useful to force \
                   inprocessing on small instances whose runs restart too \
                   few times to reach the default cadence, e.g. when \
                   checking that its DRAT emissions certify.")
  in
  let run spec width strat budget proof_file tracks json profile inprocess =
    let strat =
      match inprocess with
      | None -> strat
      | Some (every, ibudget) ->
          {
            strat with
            C.Strategy.solver =
              {
                strat.C.Strategy.solver with
                Sat.Solver.inprocess_every = every;
                inprocess_budget = ibudget;
              };
          }
    in
    let inst = build_instance spec in
    let trace = Option.map (fun _ -> Obs.Trace.create ()) profile in
    let t0 = Unix.gettimeofday () in
    let request =
      C.Flow.(
        default_request |> with_strategy strat
        |> with_budget (budget_of budget)
        |> with_proof (proof_file <> None)
        |> with_telemetry (profile <> None))
    in
    let request =
      match trace with
      | None -> request
      | Some tr -> C.Flow.with_trace tr request
    in
    let run = C.Flow.submit request inst.F.Benchmarks.route ~width in
    (match (profile, trace) with
    | Some path, Some tr ->
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome tr));
        output_char oc '\n';
        close_out oc;
        Printf.eprintf "trace written to %s\n" path
    | _ -> ());
    (* independent of output mode: --proof must write the file on UNSAT *)
    let write_proof () =
      match (run.C.Flow.outcome, proof_file, run.C.Flow.proof) with
      | C.Flow.Unroutable, Some path, Some proof ->
          let oc = open_out path in
          Sat.Proof.output oc proof;
          close_out oc;
          Some (path, Sat.Proof.num_steps proof)
      | _ -> None
    in
    if json then begin
      (match write_proof () with
      | Some (path, steps) ->
          Printf.eprintf "DRAT refutation written to %s (%d steps)\n" path steps
      | None -> ());
      print_endline
        (Eng.Run_record.to_line
           (Eng.Run_record.of_run ~benchmark:spec.F.Benchmarks.name
              ~wall_seconds:(Unix.gettimeofday () -. t0)
              run));
      `Ok ()
    end
    else begin
    Printf.printf "benchmark %s, W=%d, strategy %s\n" spec.F.Benchmarks.name width
      (C.Strategy.name strat);
    Printf.printf
      "cnf: %d vars, %d clauses; times: graph %.3fs, cnf %.3fs, solve %.3fs\n"
      run.C.Flow.cnf_vars run.C.Flow.cnf_clauses run.C.Flow.timings.C.Flow.to_graph
      run.C.Flow.timings.C.Flow.to_cnf run.C.Flow.timings.C.Flow.solving;
    Format.printf "solver: %a@." Sat.Stats.pp run.C.Flow.solver_stats;
    match run.C.Flow.outcome with
    | C.Flow.Routable detailed ->
        Printf.printf "ROUTABLE: detailed routing with %d tracks found and verified\n"
          width;
        if tracks then
          Array.iteri
            (fun id t -> Printf.printf "  subnet %d -> track %d\n" id t)
            detailed.F.Detailed_route.tracks;
        `Ok ()
    | C.Flow.Unroutable ->
        Printf.printf "UNROUTABLE: no detailed routing with %d tracks exists\n" width;
        (match write_proof () with
        | Some (path, steps) ->
            Printf.printf "DRAT refutation written to %s (%d steps)\n" path steps
        | None -> ());
        `Ok ()
    | C.Flow.Timeout ->
        Printf.printf "TIMEOUT: budget exhausted without an answer\n";
        `Ok ()
    | C.Flow.Memout ->
        Printf.printf "MEMOUT: memory budget exhausted without an answer\n";
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Decide detailed routability at a given width.")
    Term.(ret (const run $ benchmark_pos $ width_arg $ strategy_arg $ budget_arg
               $ proof_arg $ tracks_arg $ json_arg $ profile_arg $ inprocess_arg))

(* ---------- min-width ---------- *)

let min_width_cmd =
  let run spec strat budget =
    let inst = build_instance spec in
    match
      C.Binary_search.minimal_width ~strategy:strat ~budget:(budget_of budget)
        inst.F.Benchmarks.route
    with
    | Error m -> `Error (false, m)
    | Ok r ->
        Printf.printf "minimal channel width of %s: W = %d\n" spec.F.Benchmarks.name
          r.C.Binary_search.w_min;
        (match r.C.Binary_search.unsat_below with
        | Some run ->
            Printf.printf
              "optimality: W = %d proven unroutable by SAT (%.3fs solve)\n"
              (r.C.Binary_search.w_min - 1)
              run.C.Flow.timings.C.Flow.solving
        | None ->
            Printf.printf
              "optimality: W = %d impossible structurally (clique bound)\n"
              (r.C.Binary_search.w_min - 1));
        Printf.printf "SAT queries made: %d\n" (List.length r.C.Binary_search.runs);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "min-width"
       ~doc:"Find the minimal channel width, with an optimality proof.")
    Term.(ret (const run $ benchmark_pos $ strategy_arg $ budget_arg))

(* ---------- portfolio ---------- *)

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains (default: the machine's recommended count).")

let portfolio_cmd =
  let members_arg =
    Arg.(value & opt (list strategy_conv) C.Strategy.paper_portfolio_3
         & info [ "members" ] ~docv:"S1,S2,..."
             ~doc:"Portfolio members (default: the paper's 3-strategy portfolio).")
  in
  let simulate_arg =
    Arg.(value & flag
         & info [ "simulate" ]
             ~doc:"Sequential deterministic simulation (default: really \
                   parallel on the bounded domain pool).")
  in
  let run spec width members simulate jobs budget =
    let inst = build_instance spec in
    let mode = if simulate then `Simulated else `Parallel in
    let result =
      Eng.Portfolio.run ~mode ?jobs ~budget:(budget_of budget) members
        inst.F.Benchmarks.route ~width
    in
    List.iter
      (fun (m : Eng.Portfolio.member_result) ->
        Printf.printf "  %-45s %s  cpu %.3fs  wall %.3fs\n"
          (C.Strategy.name m.Eng.Portfolio.strategy)
          (match m.Eng.Portfolio.run.C.Flow.outcome with
          | C.Flow.Routable _ -> "ROUTABLE "
          | C.Flow.Unroutable -> "UNROUTABLE"
          | C.Flow.Timeout -> "cancelled/timeout"
          | C.Flow.Memout -> "memout")
          (C.Flow.total m.Eng.Portfolio.run.C.Flow.timings)
          m.Eng.Portfolio.wall_seconds)
      result.Eng.Portfolio.members;
    match result.Eng.Portfolio.winner with
    | Some w ->
        Printf.printf "winner: %s\n" (C.Strategy.name w.Eng.Portfolio.strategy);
        `Ok ()
    | None -> `Error (false, "no member answered within the budget")
  in
  Cmd.v
    (Cmd.info "portfolio" ~doc:"Run a portfolio of strategies on one width query.")
    Term.(ret (const run $ benchmark_pos $ width_arg $ members_arg $ simulate_arg
               $ jobs_arg $ budget_arg))

(* ---------- sweep ---------- *)

(* a width specifier: absolute, or relative to the benchmark's minimal width *)
let width_spec_conv =
  let parse s =
    match int_of_string_opt s with
    | Some w -> Ok (`Abs w)
    | None -> (
        match String.lowercase_ascii s with
        | "wmin" -> Ok (`Wmin 0)
        | "wmin-1" -> Ok (`Wmin (-1))
        | "wmin+1" -> Ok (`Wmin 1)
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "bad width %S (expected an integer, wmin, wmin-1 or wmin+1)"
                   s)))
  in
  let print fmt = function
    | `Abs w -> Format.fprintf fmt "%d" w
    | `Wmin 0 -> Format.pp_print_string fmt "wmin"
    | `Wmin d -> Format.fprintf fmt "wmin%+d" d
  in
  Arg.conv (parse, print)

let sweep_cmd =
  let benchmarks_arg =
    Arg.(value & opt (list benchmark_conv) F.Benchmarks.specs
         & info [ "benchmarks" ] ~docv:"B1,B2,..."
             ~doc:"Benchmarks to sweep (default: all eight).")
  in
  let strategies_arg =
    Arg.(value & opt (list strategy_conv) C.Strategy.paper_portfolio_3
         & info [ "strategies" ] ~docv:"S1,S2,..."
             ~doc:"Strategies to sweep (default: the paper's 3-strategy \
                   portfolio members).")
  in
  let widths_arg =
    Arg.(value & opt (list width_spec_conv) [ `Wmin (-1) ]
         & info [ "widths" ] ~docv:"W1,W2,..."
             ~doc:"Widths per benchmark: integers and/or wmin, wmin-1, \
                   wmin+1 (default: wmin-1, the unroutable configurations).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Stream each completed cell as one JSON line to FILE \
                   (appended; the durable form of the sweep).")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Skip cells already recorded in the $(b,--out) file; a \
                   torn final line from a killed run is ignored and re-run.")
  in
  let certify_arg =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"Independently check every decisive cell: verify UNSAT \
                   proofs with the DRAT checker and SAT models against the \
                   CNF and the architecture; records gain a $(b,certified) \
                   field.")
  in
  let max_memory_arg =
    Arg.(value & opt (some int) None
         & info [ "max-memory-mb" ] ~docv:"MB"
             ~doc:"Per-attempt process-heap ceiling; a cell crossing it ends \
                   as $(b,memout) cooperatively instead of taking the sweep \
                   down.")
  in
  let max_attempts_arg =
    Arg.(value & opt int 1
         & info [ "max-attempts" ] ~docv:"N"
             ~doc:"Attempts per cell (default 1). With N > 1, non-decisive \
                   cells are retried with escalated budgets and cells that \
                   fail every attempt are quarantined: recorded, skipped by \
                   future $(b,--resume)s, counted in the summary.")
  in
  let escalation_arg =
    Arg.(value & opt float 2.0
         & info [ "escalation" ] ~docv:"F"
             ~doc:"Budget escalation per retry: attempt n runs with the time \
                   and memory budgets scaled by F^(n-1) (default 2.0).")
  in
  let fallback_arg =
    Arg.(value & flag
         & info [ "fallback" ]
             ~doc:"Walk the solver ladder on retries: attempt 2 swaps the \
                   preset for minisat, attempt 3+ runs the plain DPLL \
                   backend. Records keep the cell's own strategy key.")
  in
  let backtrace_arg =
    Arg.(value & flag
         & info [ "backtrace" ]
             ~doc:"Record crash backtraces into the $(b,backtrace) record \
                   field.")
  in
  let telemetry_arg =
    Arg.(value & flag
         & info [ "telemetry" ]
             ~doc:"Derive per-solve telemetry (propagations/s, conflicts/s, \
                   LBD histogram, allocation) on every cell; records gain \
                   the optional $(b,telemetry) key. Summarise with \
                   $(b,report --telemetry).")
  in
  let run benchmarks strategies widths jobs budget out resume certify
      max_memory_mb max_attempts escalation fallback backtrace telemetry =
    if resume && out = None then
      `Error (true, "--resume requires --out FILE")
    else begin
      let needs_wmin = List.exists (function `Wmin _ -> true | _ -> false) widths in
      let instances =
        List.map
          (fun (spec : F.Benchmarks.spec) ->
            let inst = build_instance spec in
            let w_min =
              if not needs_wmin then None
              else begin
                let search_budget =
                  match budget with
                  | None -> Sat.Solver.no_budget
                  | Some s -> Sat.Solver.time_budget (4. *. s)
                in
                match
                  C.Binary_search.minimal_width ~budget:search_budget
                    inst.F.Benchmarks.route
                with
                | Ok r ->
                    Printf.eprintf "%-10s w_min = %d\n%!" spec.F.Benchmarks.name
                      r.C.Binary_search.w_min;
                    Some r.C.Binary_search.w_min
                | Error m ->
                    failwith
                      (Printf.sprintf "width search failed on %s: %s"
                         spec.F.Benchmarks.name m)
              end
            in
            (inst, w_min))
          benchmarks
      in
      let jobs_list =
        List.concat_map
          (fun ((inst : F.Benchmarks.instance), w_min) ->
            let widths =
              List.filter_map
                (fun spec ->
                  let w =
                    match spec with
                    | `Abs w -> w
                    | `Wmin d -> Option.get w_min + d
                  in
                  if w >= 1 then Some w
                  else begin
                    Printf.eprintf "skipping %s width %d (< 1)\n%!"
                      inst.F.Benchmarks.spec.F.Benchmarks.name w;
                    None
                  end)
                widths
            in
            List.concat_map
              (fun w ->
                List.map
                  (fun strategy ->
                    Eng.Sweep.cell
                      ~benchmark:inst.F.Benchmarks.spec.F.Benchmarks.name
                      strategy inst.F.Benchmarks.route ~width:w)
                  strategies)
              (List.sort_uniq compare widths))
          instances
      in
      let t0 = Unix.gettimeofday () in
      let config =
        {
          Eng.Sweep.default_config with
          Eng.Sweep.jobs = Option.value jobs ~default:(Eng.Pool.default_jobs ());
          budget_seconds = budget;
          max_memory_mb;
          out;
          resume;
          certify;
          telemetry;
          retry =
            {
              Eng.Sweep.max_attempts = max 1 max_attempts;
              escalation;
              fallback_presets = fallback;
            };
          capture_backtrace = backtrace;
          on_progress =
            Some
              (fun p ->
                Printf.eprintf "\r[%d/%d done%s]%!" p.Eng.Sweep.completed
                  p.Eng.Sweep.total
                  (if p.Eng.Sweep.skipped > 0 then
                     Printf.sprintf ", %d resumed" p.Eng.Sweep.skipped
                   else ""));
        }
      in
      let records = Eng.Sweep.run config jobs_list in
      Printf.eprintf "\n%!";
      print_string (Eng.Sweep.render_table records);
      Printf.printf "%s\n" (Eng.Sweep.summary records);
      Printf.printf "sweep wall time: %.2fs (%d worker domains)\n"
        (Unix.gettimeofday () -. t0)
        config.Eng.Sweep.jobs;
      (match out with
      | Some path -> Printf.printf "records: %s\n" path
      | None -> ());
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run a benchmarks × strategies × widths matrix on the domain \
             pool, streaming JSONL results."
       ~man:
         [
           `S Manpage.s_examples;
           `P "fpgasat sweep --benchmarks alu2,too_large --strategies \
               muldirect/s1,ITE-linear/s1 --widths wmin --jobs 2 --budget 5 \
               --out runs.jsonl";
           `P "Interrupted sweeps continue where they left off: re-run the \
               same command with --resume.";
         ])
    Term.(ret (const run $ benchmarks_arg $ strategies_arg $ widths_arg
               $ jobs_arg $ budget_arg $ out_arg $ resume_arg $ certify_arg
               $ max_memory_arg $ max_attempts_arg $ escalation_arg
               $ fallback_arg $ backtrace_arg $ telemetry_arg))

(* ---------- report ---------- *)

let report_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"RUNS.jsonl")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit non-zero if any line fails to parse or any cell \
                   crashed (used by CI smoke checks).")
  in
  let require_certified_arg =
    Arg.(value & flag
         & info [ "require-certified" ]
             ~doc:"Exit non-zero unless every decisive (routable or \
                   unroutable) record carries $(b,certified: true) — the CI \
                   gate for sweeps run with $(b,--certify).")
  in
  let telemetry_arg =
    Arg.(value & flag
         & info [ "telemetry" ]
             ~doc:"Also print a per-strategy telemetry summary (median \
                   propagations/s and conflicts/s over the cells that carry \
                   the $(b,telemetry) key — sweeps run with \
                   $(b,--telemetry)).")
  in
  let scaling_arg =
    Arg.(value & flag
         & info [ "scaling" ]
             ~doc:"Also fit per-strategy power-law scaling exponents over \
                   the generated-instance records in the file (benchmarks \
                   named $(b,gen:)...; see $(b,bench --scaling)) and print \
                   the exponent and crossover tables. The fit is a pure \
                   function of the records, so re-running it on the same \
                   file always prints the same exponents.")
  in
  let median xs =
    match List.sort Float.compare xs with
    | [] -> nan
    | sorted ->
        let n = List.length sorted in
        let nth i = List.nth sorted i in
        if n mod 2 = 1 then nth (n / 2)
        else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.
  in
  let telemetry_summary records =
    let by_strategy = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (r : Eng.Run_record.t) ->
        match r.Eng.Run_record.telemetry with
        | None -> ()
        | Some t ->
            let s = r.Eng.Run_record.strategy in
            if not (Hashtbl.mem by_strategy s) then order := s :: !order;
            Hashtbl.replace by_strategy s
              (t :: Option.value (Hashtbl.find_opt by_strategy s) ~default:[]))
      records;
    if !order = [] then
      print_endline
        "telemetry: no records carry it (sweep was run without --telemetry)"
    else begin
      Printf.printf "%-40s %6s %14s %12s\n" "telemetry (median per strategy)"
        "cells" "props/s" "conflicts/s";
      List.iter
        (fun s ->
          let ts = Hashtbl.find by_strategy s in
          Printf.printf "%-40s %6d %14.0f %12.0f\n" s (List.length ts)
            (median
               (List.map (fun t -> t.Obs.Telemetry.propagations_per_sec) ts))
            (median (List.map (fun t -> t.Obs.Telemetry.conflicts_per_sec) ts)))
        (List.rev !order)
    end
  in
  let scaling_summary records =
    let doc = Eng.Dims.analyze records in
    if doc.Obs.Fit.fits = [] then
      print_endline
        "scaling: no fittable generated-instance records (need decisive \
         gen:* cells varying along a dimension)"
    else print_string (Obs.Fit.render doc)
  in
  let run file strict require_certified telemetry scaling =
    let records, bad = Eng.Sweep.load file in
    print_string (Eng.Sweep.render_table records);
    Printf.printf "%s\n" (Eng.Sweep.summary records);
    if telemetry then telemetry_summary records;
    if scaling then scaling_summary records;
    if bad > 0 then Printf.printf "unparsable lines: %d\n" bad;
    let crashed =
      List.exists
        (fun (r : Eng.Run_record.t) ->
          match r.Eng.Run_record.outcome with
          | Eng.Run_record.Crashed _ -> true
          | _ -> false)
        records
    in
    let uncertified =
      List.filter
        (fun (r : Eng.Run_record.t) ->
          Eng.Run_record.decisive r
          && r.Eng.Run_record.certified <> Some true)
        records
    in
    if strict && (bad > 0 || crashed || records = []) then
      `Error (false, "strict check failed: crashed cells or unparsable lines")
    else if require_certified && (records = [] || uncertified <> []) then begin
      List.iter
        (fun (r : Eng.Run_record.t) ->
          Printf.eprintf "not certified: %s\n" (Eng.Run_record.key r))
        uncertified;
      `Error (false, "certification check failed: decisive cells without \
                      certified: true (re-run the sweep with --certify)")
    end
    else `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a sweep's JSONL records as the benchmarks × strategies \
             table (a pure view over the file).")
    Term.(ret (const run $ file_arg $ strict_arg $ require_certified_arg
               $ telemetry_arg $ scaling_arg))

(* ---------- trace ---------- *)

let trace_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"RUNS.jsonl")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the trace there instead of stdout.")
  in
  (* Sweep records carry durations, not wall-clock instants (cells run
     concurrently on the pool, so their real start times overlap and mean
     little). The trace therefore lays each strategy out on its own thread
     lane and packs its cells end to end — the rendered timeline reads as
     per-strategy cumulative CPU time, which is the quantity the paper
     compares. *)
  let run file out =
    let records, bad = Eng.Sweep.load file in
    if records = [] then
      `Error
        ( false,
          Printf.sprintf "%s: no parsable records (%d bad lines)" file bad )
    else begin
      let tids = Hashtbl.create 8 in
      let cursors = Hashtbl.create 8 in
      let tid_of strategy =
        match Hashtbl.find_opt tids strategy with
        | Some tid -> tid
        | None ->
            let tid = Hashtbl.length tids + 1 in
            Hashtbl.add tids strategy tid;
            tid
      in
      let events = ref [] in
      let span ~name ~tid ~ts_us ~dur_us ~args =
        events :=
          Obs.Json.Obj
            [
              ("name", Obs.Json.String name);
              ("ph", Obs.Json.String "X");
              ("pid", Obs.Json.Int 1);
              ("tid", Obs.Json.Int tid);
              ("ts", Obs.Json.Float ts_us);
              ("dur", Obs.Json.Float dur_us);
              ("args", Obs.Json.Obj args);
            ]
          :: !events
      in
      List.iter
        (fun (r : Eng.Run_record.t) ->
          let tid = tid_of r.Eng.Run_record.strategy in
          let cursor =
            Option.value (Hashtbl.find_opt cursors tid) ~default:0.
          in
          let cell_args =
            [
              ("benchmark", Obs.Json.String r.Eng.Run_record.benchmark);
              ("width", Obs.Json.Int r.Eng.Run_record.width);
              ( "outcome",
                Obs.Json.String
                  (Eng.Run_record.outcome_name r.Eng.Run_record.outcome) );
            ]
          in
          let t = r.Eng.Run_record.timings in
          let phases =
            [
              ("to_graph", t.C.Flow.to_graph);
              ("to_cnf", t.C.Flow.to_cnf);
              ("solving", t.C.Flow.solving);
            ]
          in
          let cell_name =
            Printf.sprintf "%s W=%d" r.Eng.Run_record.benchmark
              r.Eng.Run_record.width
          in
          let total_us =
            1e6 *. List.fold_left (fun a (_, s) -> a +. s) 0. phases
          in
          span ~name:cell_name ~tid ~ts_us:cursor ~dur_us:total_us
            ~args:cell_args;
          let ts = ref cursor in
          List.iter
            (fun (name, seconds) ->
              let dur_us = 1e6 *. seconds in
              span ~name ~tid ~ts_us:!ts ~dur_us ~args:cell_args;
              ts := !ts +. dur_us)
            phases;
          Hashtbl.replace cursors tid (cursor +. total_us))
        records;
      let meta =
        Hashtbl.fold
          (fun strategy tid acc ->
            Obs.Json.Obj
              [
                ("name", Obs.Json.String "thread_name");
                ("ph", Obs.Json.String "M");
                ("pid", Obs.Json.Int 1);
                ("tid", Obs.Json.Int tid);
                ( "args",
                  Obs.Json.Obj [ ("name", Obs.Json.String strategy) ] );
              ]
            :: acc)
          tids []
      in
      let doc =
        Obs.Json.Obj
          [
            ("displayTimeUnit", Obs.Json.String "ms");
            ("traceEvents", Obs.Json.List (meta @ List.rev !events));
          ]
      in
      let text = Obs.Json.to_string doc in
      (match out with
      | None -> print_endline text
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "trace written to %s\n" path);
      if bad > 0 then Printf.eprintf "unparsable lines skipped: %d\n" bad;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Convert a sweep's JSONL records into Chrome trace_event JSON \
             (chrome://tracing / Perfetto): one thread lane per strategy, \
             cells packed as cumulative CPU time, phase sub-spans.")
    Term.(ret (const run $ file_arg $ out_arg))

(* ---------- certify ---------- *)

let certify_cmd =
  let cnf_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"CNF" ~doc:"DIMACS CNF file (see $(b,encode)).")
  in
  let proof_pos =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"PROOF"
             ~doc:"Textual DRAT proof file (see $(b,route --proof)).")
  in
  let reference_arg =
    Arg.(value & flag
         & info [ "reference" ]
             ~doc:"Use the quadratic list-scanning reference checker instead \
                   of the watched-literal one (differential debugging).")
  in
  let run cnf_file proof_file reference =
    match Sat.Dimacs_cnf.parse_file cnf_file with
    | exception Sat.Dimacs_cnf.Parse_error m ->
        `Error (false, Printf.sprintf "%s: %s" cnf_file m)
    | cnf -> (
        match Sat.Proof.parse_file proof_file with
        | exception Sat.Proof.Parse_error m ->
            `Error (false, Printf.sprintf "%s: %s" proof_file m)
        | proof -> (
            let t0 = Unix.gettimeofday () in
            let outcome =
              if reference then
                Result.map
                  (fun () -> None)
                  (Sat.Drat_check.check_reference cnf proof)
              else Result.map Option.some (Sat.Drat_check.check cnf proof)
            in
            let seconds = Unix.gettimeofday () -. t0 in
            match outcome with
            | Ok stats ->
                Printf.printf
                  "VERIFIED: %s is a DRAT refutation of %s (%d steps, %.3fs)\n"
                  proof_file cnf_file
                  (Sat.Proof.num_steps proof)
                  seconds;
                (match stats with
                | Some s -> Format.printf "checker: %a@." Sat.Drat_check.pp_stats s
                | None -> ());
                `Ok ()
            | Error e ->
                `Error
                  (false, Format.asprintf "proof REJECTED: %a" Sat.Drat_check.pp_error e)))
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Check a DRAT refutation against a DIMACS CNF."
       ~man:
         [
           `S Manpage.s_examples;
           `P "fpgasat encode alu2 -w 2 -e muldirect --symmetry s1 -o alu2.cnf";
           `P "fpgasat route alu2 -w 2 -s muldirect/s1 --proof alu2.drat";
           `P "fpgasat certify alu2.cnf alu2.drat";
         ])
    Term.(ret (const run $ cnf_arg $ proof_pos $ reference_arg))

(* ---------- render ---------- *)

let render_cmd =
  let subnet_arg =
    Arg.(value & opt (some int) None
         & info [ "subnet" ] ~docv:"ID" ~doc:"Show this subnet's path instead.")
  in
  let run spec subnet =
    let inst = build_instance spec in
    match subnet with
    | None -> print_string (F.Render.congestion_map inst.F.Benchmarks.route)
    | Some id ->
        if id < 0 || id >= F.Netlist.num_subnets inst.F.Benchmarks.netlist then
          prerr_endline "subnet id out of range"
        else print_string (F.Render.subnet_path inst.F.Benchmarks.route id)
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"ASCII view of a benchmark's congestion map (or one subnet's path).")
    Term.(const run $ benchmark_pos $ subnet_arg)

(* ---------- route-file: user-provided netlists ---------- *)

let route_file_cmd =
  let nets_arg =
    Arg.(required & opt (some file) None
         & info [ "nets" ] ~docv:"FILE" ~doc:"Netlist file (see Serial format).")
  in
  let routes_arg =
    Arg.(value & opt (some file) None
         & info [ "routes" ] ~docv:"FILE"
             ~doc:"Global routing file; omitted = run the built-in global router.")
  in
  let save_routes_arg =
    Arg.(value & opt (some string) None
         & info [ "save-routes" ] ~docv:"FILE" ~doc:"Write the global routing used.")
  in
  let run nets_file routes_file save_routes width strat budget =
    match F.Serial.read_netlist nets_file with
    | exception F.Serial.Parse_error m -> `Error (false, m)
    | arch, netlist -> (
        let route =
          match routes_file with
          | Some path -> F.Serial.read_routes ~netlist path
          | None -> F.Global_router.route arch netlist
        in
        (match save_routes with
        | Some path ->
            F.Serial.write_routes path route;
            Printf.printf "wrote %s
" path
        | None -> ());
        let run =
          C.Flow.(
            submit
              (default_request |> with_strategy strat
              |> with_budget (budget_of budget)))
            route ~width
        in
        match run.C.Flow.outcome with
        | C.Flow.Routable d ->
            Printf.printf "ROUTABLE with %d tracks; track assignment:
" width;
            Array.iteri
              (fun id t -> Printf.printf "  subnet %d -> track %d
" id t)
              d.F.Detailed_route.tracks;
            `Ok ()
        | C.Flow.Unroutable ->
            Printf.printf "UNROUTABLE with %d tracks
" width;
            `Ok ()
        | C.Flow.Timeout ->
            Printf.printf "TIMEOUT
";
            `Ok ()
        | C.Flow.Memout ->
            Printf.printf "MEMOUT
";
            `Ok ())
  in
  Cmd.v
    (Cmd.info "route-file"
       ~doc:"Decide routability of a user-provided netlist (and optional routes).")
    Term.(ret (const run $ nets_arg $ routes_arg $ save_routes_arg $ width_arg
               $ strategy_arg $ budget_arg))

(* ---------- solve (standalone DIMACS CNF) ---------- *)

let solve_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf")
  in
  let solver_arg =
    Arg.(value & opt (enum [ ("siege", `Siege_like); ("minisat", `Minisat_like) ])
           `Siege_like
         & info [ "solver" ] ~docv:"NAME" ~doc:"Solver preset: siege or minisat.")
  in
  let run file solver budget =
    match Sat.Dimacs_cnf.parse_file file with
    | exception Sat.Dimacs_cnf.Parse_error m -> `Error (false, m)
    | cnf ->
        let config =
          match solver with
          | `Siege_like -> Sat.Solver.siege_like
          | `Minisat_like -> Sat.Solver.minisat_like
        in
        let t0 = Sys.time () in
        let result, stats = Sat.Solver.solve ~config ~budget:(budget_of budget) cnf in
        Format.printf "c %a@.c %.3fs CPU@." Sat.Stats.pp stats (Sys.time () -. t0);
        (match result with
        | Sat.Solver.Sat model ->
            print_endline "s SATISFIABLE";
            print_string "v ";
            Array.iteri
              (fun v b -> Printf.printf "%d " (if b then v + 1 else -(v + 1)))
              model;
            print_endline "0"
        | Sat.Solver.Unsat -> print_endline "s UNSATISFIABLE"
        | Sat.Solver.Unknown -> print_endline "s UNKNOWN"
        | Sat.Solver.Memout -> print_endline "s UNKNOWN (memout)");
        `Ok ()
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a DIMACS CNF file with the built-in CDCL solver.")
    Term.(ret (const run $ file_arg $ solver_arg $ budget_arg))

(* ---------- color (standalone .col colouring) ---------- *)

let color_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.col")
  in
  let k_arg =
    Arg.(required & opt (some int) None
         & info [ "k" ] ~docv:"K" ~doc:"Number of colours.")
  in
  let enc =
    Arg.(value & opt encoding_conv (List.hd E.Registry.new_encodings)
         & info [ "e"; "encoding" ] ~docv:"ENC" ~doc:"Encoding to use.")
  in
  let sym =
    Arg.(value & opt (some string) None
         & info [ "symmetry" ] ~docv:"H" ~doc:"Symmetry heuristic: b1 or s1.")
  in
  let method_arg =
    Arg.(value
         & opt (enum [ ("sat", `Sat); ("exact", `Exact); ("bdd", `Bdd);
                       ("walksat", `Walksat) ]) `Sat
         & info [ "method" ] ~docv:"M"
             ~doc:"sat (encode + CDCL), exact (branch and bound), bdd, or walksat.")
  in
  let run file k enc sym budget method_ =
    match G.Dimacs_col.parse_file file with
    | exception G.Dimacs_col.Parse_error m -> `Error (false, m)
    | graph ->
        let print_coloring coloring =
          assert (G.Coloring.is_proper graph ~k coloring);
          Printf.printf "COLORABLE with %d colours\n" k;
          Array.iteri (fun v c -> Printf.printf "  %d -> %d\n" v c) coloring
        in
        let sat_based use_walksat =
          let symmetry =
            Option.map
              (fun s ->
                match E.Symmetry.of_name s with
                | Some h -> h
                | None -> failwith (Printf.sprintf "unknown heuristic %S" s))
              sym
          in
          let csp = E.Csp.make graph ~k in
          let encoded = E.Csp_encode.encode ?symmetry enc csp in
          if use_walksat then
            match Sat.Walksat.solve encoded.E.Csp_encode.cnf with
            | Sat.Walksat.Sat model, flips ->
                print_coloring (E.Csp_encode.decode encoded model);
                Printf.printf "(%d flips)\n" flips
            | Sat.Walksat.Unknown, _ ->
                print_endline "UNKNOWN (local search found no model)"
          else
            let result, _ =
              Sat.Solver.solve ~budget:(budget_of budget) encoded.E.Csp_encode.cnf
            in
            match result with
            | Sat.Solver.Sat model -> print_coloring (E.Csp_encode.decode encoded model)
            | Sat.Solver.Unsat -> Printf.printf "NOT %d-colourable\n" k
            | Sat.Solver.Unknown -> print_endline "UNKNOWN (budget exhausted)"
            | Sat.Solver.Memout -> print_endline "UNKNOWN (memory budget exhausted)"
        in
        (match method_ with
        | `Exact -> (
            match G.Exact_coloring.k_colorable graph ~k with
            | G.Exact_coloring.Colorable c -> print_coloring c
            | G.Exact_coloring.Uncolorable -> Printf.printf "NOT %d-colourable\n" k
            | G.Exact_coloring.Exhausted -> print_endline "UNKNOWN (node budget)")
        | `Bdd -> (
            match Bdd.Coloring_bdd.k_colorable graph ~k with
            | Bdd.Coloring_bdd.Colorable c ->
                print_coloring c;
                (match Bdd.Coloring_bdd.count_colorings graph ~k with
                | Some count -> Printf.printf "proper colourings: %.0f\n" count
                | None -> ())
            | Bdd.Coloring_bdd.Uncolorable -> Printf.printf "NOT %d-colourable\n" k
            | Bdd.Coloring_bdd.Node_limit -> print_endline "UNKNOWN (BDD node limit)")
        | `Sat -> sat_based false
        | `Walksat -> sat_based true);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "color" ~doc:"K-colour a DIMACS .col graph via a SAT encoding.")
    Term.(ret (const run $ file_arg $ k_arg $ enc $ sym $ budget_arg $ method_arg))

(* ---------- serve / client ---------- *)

let socket_arg =
  Arg.(value & opt string "/tmp/fpgasat.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Solver worker domains.")
  in
  let queue_arg =
    Arg.(value & opt int 16
         & info [ "queue" ] ~docv:"N"
             ~doc:"Max queued requests before answering $(i,overloaded).")
  in
  let cache_arg =
    Arg.(value & opt int 256
         & info [ "cache" ] ~docv:"N" ~doc:"Answer-cache capacity (entries).")
  in
  let sessions_arg =
    Arg.(value & opt int 16
         & info [ "sessions" ] ~docv:"N"
             ~doc:"Warm sessions kept (LRU beyond this).")
  in
  let max_seconds_arg =
    Arg.(value & opt (some float) None
         & info [ "max-seconds" ] ~docv:"SEC"
             ~doc:"Server-side ceiling on any request's time budget.")
  in
  let max_memory_arg =
    Arg.(value & opt (some int) None
         & info [ "max-memory-mb" ] ~docv:"MB"
             ~doc:"Server-side ceiling on any request's memory budget.")
  in
  let cache_file_arg =
    Arg.(value & opt (some string) None
         & info [ "cache-file" ] ~docv:"PATH"
             ~doc:"Journal the answer cache to this JSONL file: replayed \
                   on startup (surviving a $(i,kill -9)), appended while \
                   serving, guarded by a pid lock.")
  in
  let test_ops_arg =
    Arg.(value & flag
         & info [ "test-ops" ]
             ~doc:"Enable the $(i,sleep) op and the request $(i,fault) \
                   field (deterministic load and chaos injection for \
                   tests).")
  in
  let run socket workers queue cache sessions max_seconds max_memory_mb
      cache_file test_ops =
    let config =
      {
        (Srv.Server.default_config ~socket_path:socket) with
        Srv.Server.workers;
        queue_capacity = queue;
        cache_capacity = cache;
        max_sessions = sessions;
        max_seconds;
        max_memory_mb;
        cache_file;
        test_ops;
      }
    in
    match
      Printf.eprintf "fpgasat: serving on %s (%d workers, queue %d)\n%!"
        socket workers queue;
      Srv.Server.run config
    with
    | () ->
        Printf.eprintf "fpgasat: drained cleanly\n%!";
        `Ok ()
    | exception Failure m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the solve server: warm per-strategy solver sessions, an \
          answer cache (optionally journaled to disk), admission control, \
          worker respawn, graceful drain on SIGTERM or the $(i,shutdown) \
          op.")
    Term.(
      ret
        (const run $ socket_arg $ workers_arg $ queue_arg $ cache_arg
       $ sessions_arg $ max_seconds_arg $ max_memory_arg $ cache_file_arg
       $ test_ops_arg))

let client_cmd =
  let op_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OP"
             ~doc:"One of: route, min_width, ping, stats, shutdown.")
  in
  let bench_arg =
    Arg.(value & pos 1 (some benchmark_conv) None
         & info [] ~docv:"BENCHMARK" ~doc:"Benchmark (route, min_width).")
  in
  let width_opt_arg =
    Arg.(value & opt (some int) None
         & info [ "w"; "width" ] ~docv:"W" ~doc:"Tracks per channel (route).")
  in
  let strategy_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "s"; "strategy" ] ~docv:"STRATEGY"
             ~doc:"Strategy name; server default when absent.")
  in
  let certify_arg =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"Ask for an independently checked answer (cold path).")
  in
  let telemetry_arg =
    Arg.(value & flag
         & info [ "telemetry" ] ~doc:"Include telemetry in the run record.")
  in
  let id_arg =
    Arg.(value & opt (some string) None
         & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed in the response.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Total time you are willing to wait; the server shrinks \
                   the solve budget by queue wait and sheds with \
                   $(i,deadline_exceeded) when it has already passed.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SEC"
             ~doc:"Socket receive/send timeout: a hung server becomes a \
                   bounded error instead of a blocked client.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry idempotent requests up to N times on transport \
                   errors or $(i,overloaded), with jittered exponential \
                   backoff.")
  in
  let fault_arg =
    Arg.(value & opt (some string) None
         & info [ "fault" ] ~docv:"KIND"
             ~doc:"Chaos injection (server must run with --test-ops): \
                   worker_kill, torn_journal, kill_server.")
  in
  let run socket op bench width strategy budget certify telemetry id
      deadline_ms timeout retries fault =
    let ( let* ) r f =
      match r with Error m -> `Error (false, m) | Ok v -> f v
    in
    let* op =
      match op with
      | "route" -> Ok Srv.Protocol.Route
      | "min_width" | "min-width" -> Ok Srv.Protocol.Min_width
      | "ping" -> Ok Srv.Protocol.Ping
      | "stats" -> Ok Srv.Protocol.Stats
      | "shutdown" -> Ok Srv.Protocol.Shutdown
      | other -> Error (Printf.sprintf "unknown op %S" other)
    in
    let benchmark =
      match bench with
      | Some (spec : F.Benchmarks.spec) -> spec.F.Benchmarks.name
      | None -> ""
    in
    let* () =
      match (op, benchmark, width) with
      | Srv.Protocol.Route, "", _ -> Error "route needs a BENCHMARK"
      | Srv.Protocol.Route, _, None -> Error "route needs --width"
      | Srv.Protocol.Min_width, "", _ -> Error "min_width needs a BENCHMARK"
      | _ -> Ok ()
    in
    let request =
      Srv.Protocol.request ?id ?strategy ?max_seconds:budget ?deadline_ms
        ?fault ~certify ~telemetry ~benchmark
        ~width:(Option.value width ~default:0)
        op
    in
    let* response =
      Srv.Client.call_with_retry ~retries ?timeout ~socket request
    in
    print_endline
      (Obs.Json.to_string (Srv.Protocol.response_to_json response));
    if response.Srv.Protocol.status = Srv.Protocol.Done then `Ok ()
    else `Error (false, "request did not complete")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running solve server and print the JSON \
          response line.")
    Term.(
      ret
        (const run $ socket_arg $ op_arg $ bench_arg $ width_opt_arg
       $ strategy_opt_arg $ budget_arg $ certify_arg $ telemetry_arg $ id_arg
       $ deadline_arg $ timeout_arg $ retries_arg $ fault_arg))

(* ---------- main ---------- *)

let () =
  let doc = "SAT-based FPGA detailed routing (reproduction of Velev & Gao, DATE 2008)" in
  let info = Cmd.info "fpgasat" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            list_cmd; info_cmd; export_cmd; encode_cmd; route_cmd; min_width_cmd;
            portfolio_cmd; sweep_cmd; report_cmd; trace_cmd; certify_cmd;
            solve_cmd; color_cmd; render_cmd; route_file_cmd; serve_cmd;
            client_cmd;
          ]))
