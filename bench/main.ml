(* Benchmark harness: regenerates every table and figure of the paper.

   Sections (all run by default; select with --sections):
     table1     clause sets of the log / direct / muldirect encodings on the
                paper's 2-vertex, 3-colour worked example (Table 1)
     figure1    the four ITE trees for a 13-value domain (Fig. 1a-d)
     table2     total CPU time on the unroutable configurations of the eight
                benchmarks, across the seven Table 2 encodings and the
                symmetry-breaking variants, plus the speedup row (Table 2)
     routable   the satisfiable configurations (Sect. 6: "most encodings had
                comparable and very efficient performance")
     solvers    siege-like vs minisat-like presets on UNSAT instances
                (Sect. 6: "siege_v4 was faster by at least a factor of 2")
     portfolio  the 2- and 3-strategy parallel portfolios (Sect. 6)
     ablations  at-most-one (direct vs muldirect) and shared-vs-private
                bottom variables (DESIGN.md decisions 1-2)
     certify    watched-literal DRAT checker vs the quadratic reference
                checker on a bench-sized proof, plus a differential fuzz
                sweep (CDCL vs DPLL vs exact colouring, certified) across
                every registry encoding

   --bechamel adds micro-benchmarks (one Bechamel Test.make per
   table/figure): clause emission, tree construction, translation-to-CNF
   throughput, and a full solve of a satisfiable instance.

   Timed cells are bounded by --budget seconds (default 30): a cell that
   exceeds it is reported as "T/O" and enters the totals at the budget
   value, making total speedups lower bounds, as in common practice.

   The matrix sections (table2, routable, solvers) submit their cells to
   the Fpgasat_engine.Sweep domain pool: --jobs N runs N cells at a time
   (default 1, the faithful sequential accounting — parallel cells contend
   for memory bandwidth and their CPU times grow), --out streams every
   completed cell as one JSON line, and --resume skips cells already in
   the --out file, making the expensive tables restartable. The budget is
   enforced as a wall-clock deadline through the solver's cooperative
   interrupt hook. Tables are rendered from the collected records.

   --scaling replaces the paper sections with a dimensional sweep over
   generated instances (Fpgasat_engine.Dims): the grid's cells run through
   the same Sweep pool (--jobs, --out, --resume, --budget and --certify
   all apply), per-strategy power-law exponents are fitted from the
   records (Fpgasat_obs.Fit), --scaling-out writes them as
   fpgasat.scaling/1 JSON, and --scaling-baseline gates on the fitted
   exponents — catching regressions in the growth rate, where the
   fixed-cell perf gate above catches them in the constants. *)

module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module Obs = Fpgasat_obs
module Flow = C.Flow
module Strategy = C.Strategy
module Report = C.Report
module Sweep = Eng.Sweep
module Run_record = Eng.Run_record

let budget_seconds = ref 30.
let sections = ref
    "table1,figure1,table2,routable,solvers,portfolio,ablations,baselines,extensions,incremental,channel,certify"
let with_bechamel = ref false
let encode_bench_only = ref false
let jobs = ref 1
let emission = ref "flat"
let out_file = ref ""
let resume = ref false
let certify = ref false
let chaos = ref false
let chaos_seed = ref 2008
let bench_out = ref ""
let baseline_file = ref ""
let gate = ref 0.
let perf_handicap = ref 0
let scaling = ref false
let scaling_grid = ref "smoke"
let scaling_out = ref ""
let scaling_baseline = ref ""
let scaling_gate = ref 0.
let scaling_handicap = ref 0
let scaling_repeats = ref 2
let scaling_strategies = ref "ITE-linear-2+muldirect/s1,muldirect/s1"

let usage =
  "main.exe [--budget SEC] [--sections a,b,c] [--jobs N] [--out FILE.jsonl] \
   [--resume] [--certify] [--chaos] [--chaos-seed N] [--bechamel] \
   [--encode-bench] [--bench-out FILE.json] [--baseline FILE.json] \
   [--gate RATIO] [--perf-handicap N] [--scaling] [--scaling-grid smoke|full] \
   [--scaling-out FILE.json] [--scaling-baseline FILE.json] \
   [--scaling-gate TOL] [--scaling-handicap N] [--scaling-strategies LIST]"

let arg_spec =
  [
    ("--budget", Arg.Set_float budget_seconds, "SEC per-cell time budget (default 30)");
    ( "--sections",
      Arg.Set_string sections,
      "LIST comma-separated sections (default: all paper sections)" );
    ("--jobs", Arg.Set_int jobs, "N worker domains for the matrix sections (default 1)");
    ( "--emission",
      Arg.Set_string emission,
      "MODE flat, defs or both — clause emission mode(s) for the Table 2 \
       columns (default flat; 'both' doubles the matrix to compare \
       definitional against flat emission)" );
    ( "--out",
      Arg.Set_string out_file,
      "FILE stream completed cells of the matrix sections as JSON lines" );
    ("--resume", Arg.Set resume, " skip cells already recorded in the --out file");
    ( "--certify",
      Arg.Set certify,
      " independently certify every decisive cell of the matrix sections \
       (DRAT check on UNSAT, model + architecture check on SAT)" );
    ( "--chaos",
      Arg.Set chaos,
      " run the chaos-harness robustness section: inject every fault kind \
       into a seeded sweep and check the supervisor's invariants" );
    ( "--chaos-seed",
      Arg.Set_int chaos_seed,
      "N seed of the deterministic chaos plan (default 2008)" );
    ("--bechamel", Arg.Set with_bechamel, " also run the Bechamel micro-benchmarks");
    ( "--encode-bench",
      Arg.Set encode_bench_only,
      " print encode+load throughput JSON for the largest configuration and exit" );
    ( "--bench-out",
      Arg.Set_string bench_out,
      "FILE run the perf-gate matrix (encode throughput + fixed solver \
       cells) and write it as fpgasat.bench/1 JSON" );
    ( "--baseline",
      Arg.Set_string baseline_file,
      "FILE compare the perf-gate matrix against this baseline and exit \
       non-zero on regression" );
    ( "--gate",
      Arg.Set_float gate,
      "RATIO regression tolerance for --baseline: fail when a section's \
       geometric-mean slowdown exceeds it (default 1.25)" );
    ( "--perf-handicap",
      Arg.Set_int perf_handicap,
      "N deliberately slow every solve by N spin iterations per conflict \
       (poll_every 1) — for verifying that the perf gate actually fails" );
    ( "--scaling",
      Arg.Set scaling,
      " run the dimensional scaling section (generated instance grid, \
       fitted per-strategy power-law exponents) and exit" );
    ( "--scaling-grid",
      Arg.Set_string scaling_grid,
      "NAME smoke (2x2x2, CI-sized) or full (the nightly grid; default \
       smoke)" );
    ( "--scaling-out",
      Arg.Set_string scaling_out,
      "FILE write the fitted exponents as fpgasat.scaling/1 JSON" );
    ( "--scaling-baseline",
      Arg.Set_string scaling_baseline,
      "FILE compare fitted exponents against this baseline and exit \
       non-zero when one regresses beyond tolerance" );
    ( "--scaling-gate",
      Arg.Set_float scaling_gate,
      "TOL exponent tolerance for --scaling-baseline (absolute; default \
       0.5)" );
    ( "--scaling-handicap",
      Arg.Set_int scaling_handicap,
      "N deliberately slow every scaling solve by a spin per conflict that \
       grows as the fourth power of the cell's net count — a size-dependent \
       slowdown that inflates the fitted nets exponent, for verifying that \
       the exponent gate actually fails" );
    ( "--scaling-repeats",
      Arg.Set_int scaling_repeats,
      "N best-of-N timing for sub-second scaling cells (default 2) — the \
       tiny cells anchor the low end of every curve, so shaving their \
       timer noise stabilises the fitted exponents" );
    ( "--scaling-strategies",
      Arg.Set_string scaling_strategies,
      "LIST comma-separated strategies for the scaling section (default \
       ITE-linear-2+muldirect/s1,muldirect/s1)" );
  ]

let sweep_config () =
  {
    Sweep.default_config with
    Sweep.jobs = !jobs;
    budget_seconds = Some !budget_seconds;
    out = (if !out_file = "" then None else Some !out_file);
    resume = !resume;
    certify = !certify;
    on_progress =
      Some
        (fun p ->
          Printf.eprintf "\r[%d/%d cells]%!" p.Sweep.completed p.Sweep.total;
          if p.Sweep.completed = p.Sweep.total then Printf.eprintf "\n%!");
  }

let run_sweep cells = Sweep.run (sweep_config ()) cells

(* record lookup for table rendering *)
let record_index records =
  let tbl = Hashtbl.create (List.length records) in
  List.iter (fun r -> Hashtbl.replace tbl (Run_record.key r) r) records;
  fun ~benchmark ~strategy ~width ->
    match
      Hashtbl.find_opt tbl
        (Run_record.make_key ~benchmark ~strategy:(Strategy.name strategy) ~width)
    with
    | Some r -> r
    | None ->
        failwith
          (Printf.sprintf "missing sweep record for %s"
             (Run_record.make_key ~benchmark ~strategy:(Strategy.name strategy)
                ~width))

(* a timed record cell: total CPU time, or the budget on T/O *)
let record_seconds (r : Run_record.t) =
  match r.Run_record.outcome with
  | Run_record.Timeout | Run_record.Memout -> !budget_seconds
  | Run_record.Routable | Run_record.Unroutable | Run_record.Crashed _ ->
      Run_record.total_seconds r

let record_timed_out (r : Run_record.t) =
  r.Run_record.outcome = Run_record.Timeout

let record_text (r : Run_record.t) =
  match r.Run_record.outcome with
  | Run_record.Timeout -> "T/O"
  | Run_record.Memout -> "M/O"
  | Run_record.Crashed _ -> "crash"
  | Run_record.Routable | Run_record.Unroutable ->
      Report.format_seconds (record_seconds r)

let section_enabled name = List.mem name (String.split_on_char ',' !sections)

let strategy name =
  match Strategy.of_name name with Ok s -> s | Error m -> failwith m

let encoding name =
  match E.Encoding.of_name name with Ok e -> e | Error m -> failwith m

(* ------------------------------------------------------------------ *)
(* benchmark instances and their minimal widths, computed once         *)

type prepared = { inst : F.Benchmarks.instance; w_min : int }

let prepare_all () =
  List.map
    (fun spec ->
      let inst = F.Benchmarks.build spec in
      let search_budget = Sat.Solver.time_budget (4. *. !budget_seconds) in
      match
        C.Binary_search.minimal_width ~strategy:Strategy.best_single
          ~budget:search_budget inst.F.Benchmarks.route
      with
      | Ok r -> { inst; w_min = r.C.Binary_search.w_min }
      | Error m ->
          failwith
            (Printf.sprintf "width search failed on %s: %s"
               spec.F.Benchmarks.name m))
    F.Benchmarks.specs

let prepared = lazy (prepare_all ())
let bench_name pb = pb.inst.F.Benchmarks.spec.F.Benchmarks.name

(* a timed cell: total CPU time of graph+cnf+solve, or the budget on T/O *)
type cell = { seconds : float; timed_out : bool; outcome : Flow.outcome }

let run_cell ?(width_delta = -1) pb strat =
  let width = pb.w_min + width_delta in
  let run =
    Flow.(
      submit
        (default_request |> with_strategy strat
        |> with_budget (Sat.Solver.time_budget !budget_seconds)))
      pb.inst.F.Benchmarks.route ~width
  in
  match run.Flow.outcome with
  | Flow.Timeout | Flow.Memout ->
      { seconds = !budget_seconds; timed_out = true; outcome = run.Flow.outcome }
  | Flow.Routable _ | Flow.Unroutable ->
      {
        seconds = Flow.total run.Flow.timings;
        timed_out = false;
        outcome = run.Flow.outcome;
      }

let cell_text c =
  if c.timed_out then "T/O" else Report.format_seconds c.seconds

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

let clause_strings cnf =
  List.rev
    (Sat.Cnf.fold_clauses cnf ~init:[] ~f:(fun acc arena off len ->
         let lits =
           List.init len (fun k -> string_of_int (Sat.Lit.to_dimacs arena.(off + k)))
         in
         ("(" ^ String.concat " | " lits ^ ")") :: acc))

let section_table1 () =
  print_string
    (Report.section "Table 1: previously used encodings on the worked example");
  print_endline
    "Two adjacent CSP variables v (Boolean vars 1..) and w, domain {0,1,2}\n\
     (two electrically distinct 2-pin nets through one 3-track connection\n\
     block). Clauses as emitted by this implementation:\n";
  List.iter
    (fun name ->
      let g = G.Graph.of_edges 2 [ (0, 1) ] in
      let csp = E.Csp.make g ~k:3 in
      let encoded = E.Csp_encode.encode (encoding name) csp in
      Printf.printf "%-10s  vars/CSP-var=%d  clauses: %s\n" name
        encoded.E.Csp_encode.layout.E.Layout.num_slots
        (String.concat " " (clause_strings encoded.E.Csp_encode.cnf)))
    [ "log"; "direct"; "muldirect" ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

let print_patterns layout =
  List.iteri
    (fun v pattern ->
      Printf.printf "    v%-2d <- %s\n" v
        (Format.asprintf "%a" E.Layout.pp_pattern pattern))
    (Array.to_list layout.E.Layout.patterns)

let section_figure1 () =
  print_string
    (Report.section "Figure 1: ITE trees for a CSP variable with 13 domain values");
  print_endline "(a) ITE-linear:";
  print_string (E.Ite_tree.render (E.Ite_tree.linear 13));
  print_endline "\n(b) ITE-log:";
  print_string (E.Ite_tree.render (E.Ite_tree.balanced 13));
  List.iter
    (fun (tag, name) ->
      Printf.printf "\n(%s) %s — indexing Boolean patterns:\n" tag name;
      print_patterns (E.Encoding.layout (encoding name) 13))
    [ ("c", "ITE-log-1+ITE-linear"); ("d", "ITE-log-2+ITE-linear") ];
  print_endline
    "\nPaper check (Fig. 1d / Sect. 4): v4 <- i0 & -i1 & i2,\n\
     v5 <- i0 & -i1 & -i2 & i3, v6 <- i0 & -i1 & -i2 & -i3.";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

let table2_columns =
  let muldirect_cols =
    [
      ("muldirect", None);
      ("muldirect", Some E.Symmetry.B1);
      ("muldirect", Some E.Symmetry.S1);
    ]
  in
  let both e = [ (e, Some E.Symmetry.B1); (e, Some E.Symmetry.S1) ] in
  List.map (fun (e, s) -> (encoding e, s)) muldirect_cols
  @ List.concat_map
      (fun e -> both (encoding e))
      [
        "ITE-linear"; "ITE-log"; "ITE-linear-2+direct"; "ITE-linear-2+muldirect";
        "muldirect-3+muldirect"; "direct-3+muldirect";
      ]

(* --emission expands the Table 2 matrix: 'defs' swaps every column to its
   definitional (+defs) variant, 'both' appends the +defs variants after the
   flat ones so the two emission modes face the same instances. *)
let table2_emission_columns () =
  let defs_col (e, s) = (E.Encoding.defs e, s) in
  match String.lowercase_ascii !emission with
  | "flat" -> table2_columns
  | "defs" -> List.map defs_col table2_columns
  | "both" -> table2_columns @ List.map defs_col table2_columns
  | other ->
      failwith (Printf.sprintf "--emission: expected flat, defs or both, got %S" other)

let column_header (enc, sym) =
  Printf.sprintf "%s/%s" (E.Encoding.name enc)
    (Format.asprintf "%a" E.Symmetry.pp_option sym)

let strategy_of_column (enc, sym) =
  Strategy.make ?symmetry:sym ~solver:`Siege_like enc

let section_table2 () =
  print_string
    (Report.section
       "Table 2: total CPU time [sec] on the challenging UNROUTABLE \
        configurations");
  Printf.printf
    "Width = w_min - 1 per benchmark; per-cell budget %.0fs (T/O enters the\n\
     totals at the budget, so speedups under T/O are lower bounds).\n\n"
    !budget_seconds;
  let benches = Lazy.force prepared in
  let columns = table2_emission_columns () in
  let cols = List.map strategy_of_column columns in
  let records =
    run_sweep
      (List.concat_map
         (fun pb ->
           List.map
             (fun strat ->
               Sweep.cell ~benchmark:(bench_name pb) strat
                 pb.inst.F.Benchmarks.route ~width:(pb.w_min - 1))
             cols)
         benches)
  in
  let find = record_index records in
  let ncols = List.length cols in
  let totals = Array.make ncols 0. in
  let any_timeout = Array.make ncols false in
  let rows =
    List.map
      (fun pb ->
        let cells =
          List.map
            (fun strat ->
              find ~benchmark:(bench_name pb) ~strategy:strat
                ~width:(pb.w_min - 1))
            cols
        in
        List.iteri
          (fun i r ->
            totals.(i) <- totals.(i) +. record_seconds r;
            if record_timed_out r then any_timeout.(i) <- true;
            match r.Run_record.outcome with
            | Run_record.Routable ->
                Printf.eprintf "WARNING: %s at w_min-1 came out routable!\n"
                  (bench_name pb)
            | Run_record.Crashed m ->
                Printf.eprintf "WARNING: %s cell crashed: %s\n" (bench_name pb) m
            | Run_record.Unroutable | Run_record.Timeout | Run_record.Memout ->
                ())
          cells;
        Printf.sprintf "%s (W=%d)" (bench_name pb) (pb.w_min - 1)
        :: List.map record_text cells)
      benches
  in
  let total_row =
    "Total"
    :: List.mapi
         (fun i _ ->
           (if any_timeout.(i) then ">=" else "") ^ Report.format_seconds totals.(i))
         columns
  in
  let base = totals.(0) in
  let speedup_row =
    "Speedup wrt muldirect/-"
    :: List.mapi
         (fun i _ ->
           let s = base /. totals.(i) in
           (if any_timeout.(0) && not any_timeout.(i) then ">=" else "")
           ^ Report.format_speedup s)
         columns
  in
  print_string
    (Report.render_table
       ~header:("Benchmark" :: List.map column_header columns)
       (rows @ [ total_row; speedup_row ]));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Routable configurations                                             *)

let section_routable () =
  print_string
    (Report.section "Routable configurations (width = w_min): satisfiable formulas");
  print_endline
    "Sect. 6: most encodings are comparable and very efficient when a\n\
     detailed routing exists. Times below use s1 and the minisat preset.\n";
  let benches = Lazy.force prepared in
  let cols =
    List.map
      (fun e -> Strategy.make ~symmetry:E.Symmetry.S1 ~solver:`Minisat_like e)
      E.Registry.table2
  in
  let records =
    run_sweep
      (List.concat_map
         (fun pb ->
           List.map
             (fun strat ->
               Sweep.cell ~benchmark:(bench_name pb) strat
                 pb.inst.F.Benchmarks.route ~width:pb.w_min)
             cols)
         benches)
  in
  let find = record_index records in
  let rows =
    List.map
      (fun pb ->
        let cells =
          List.map
            (fun strat ->
              let r =
                find ~benchmark:(bench_name pb) ~strategy:strat ~width:pb.w_min
              in
              (match r.Run_record.outcome with
              | Run_record.Unroutable ->
                  Printf.eprintf "WARNING: %s at w_min unroutable!\n" (bench_name pb)
              | Run_record.Routable | Run_record.Timeout | Run_record.Memout
              | Run_record.Crashed _ ->
                  ());
              record_text r)
            cols
        in
        Printf.sprintf "%s (W=%d)" (bench_name pb) pb.w_min :: cells)
      benches
  in
  print_string
    (Report.render_table
       ~header:("Benchmark" :: List.map E.Encoding.name E.Registry.table2)
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Solver comparison                                                   *)

let section_solvers () =
  print_string (Report.section "Solver presets on UNSAT instances (Sect. 6)");
  print_endline "Encoding ITE-linear-2+muldirect with s1; UNSAT at w_min - 1.\n";
  let benches = Lazy.force prepared in
  let strat solver =
    Strategy.make ~symmetry:E.Symmetry.S1 ~solver (encoding "ITE-linear-2+muldirect")
  in
  let records =
    run_sweep
      (List.concat_map
         (fun pb ->
           List.map
             (fun solver ->
               Sweep.cell ~benchmark:(bench_name pb) (strat solver)
                 pb.inst.F.Benchmarks.route ~width:(pb.w_min - 1))
             [ `Siege_like; `Minisat_like ])
         benches)
  in
  let find = record_index records in
  let total_siege = ref 0. and total_minisat = ref 0. in
  let rows =
    List.map
      (fun pb ->
        let cell solver =
          find ~benchmark:(bench_name pb) ~strategy:(strat solver)
            ~width:(pb.w_min - 1)
        in
        let siege = cell `Siege_like and minisat = cell `Minisat_like in
        total_siege := !total_siege +. record_seconds siege;
        total_minisat := !total_minisat +. record_seconds minisat;
        [ bench_name pb; record_text siege; record_text minisat ])
      benches
  in
  let totals =
    [ "Total"; Report.format_seconds !total_siege; Report.format_seconds !total_minisat ]
  in
  print_string
    (Report.render_table ~header:[ "Benchmark"; "siege-like"; "minisat-like" ]
       (rows @ [ totals ]));
  Printf.printf "minisat-like / siege-like total ratio: %s\n\n"
    (Report.format_speedup (!total_minisat /. !total_siege))

(* ------------------------------------------------------------------ *)
(* Portfolios                                                          *)

let section_portfolio () =
  print_string (Report.section "Parallel strategy portfolios (Sect. 6)");
  print_endline
    "Per-benchmark portfolio time = min over member times (first answer\n\
     wins, losers cancelled). Members:\n\
     \  P2 = {ITE-linear-2+muldirect/s1, muldirect-3+muldirect/s1}\n\
     \  P3 = P2 + {ITE-linear-2+direct/s1}\n";
  let benches = Lazy.force prepared in
  let best = ref 0. and p2 = ref 0. and p3 = ref 0. in
  let rows =
    List.map
      (fun pb ->
        let times =
          List.map (fun strat -> (run_cell pb strat).seconds) Strategy.paper_portfolio_3
        in
        match times with
        | [ t_best; t_m3m; t_i2d ] ->
            let t2 = min t_best t_m3m in
            let t3 = min t2 t_i2d in
            best := !best +. t_best;
            p2 := !p2 +. t2;
            p3 := !p3 +. t3;
            [
              bench_name pb;
              Report.format_seconds t_best;
              Report.format_seconds t2;
              Report.format_seconds t3;
            ]
        | _ -> assert false)
      benches
  in
  let totals =
    [
      "Total";
      Report.format_seconds !best;
      Report.format_seconds !p2;
      Report.format_seconds !p3;
    ]
  in
  print_string
    (Report.render_table
       ~header:[ "Benchmark"; "best single"; "portfolio-2"; "portfolio-3" ]
       (rows @ [ totals ]));
  Printf.printf "portfolio-2 speedup vs best single: %s (paper: 1.84x)\n"
    (Report.format_speedup (!best /. !p2));
  Printf.printf "portfolio-3 speedup vs best single: %s (paper: 2.30x)\n\n"
    (Report.format_speedup (!best /. !p3))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let section_ablations () =
  print_string
    (Report.section "Ablation 1: at-most-one clauses (direct vs muldirect)");
  print_endline "UNSAT at w_min - 1, no symmetry breaking, middle benchmarks.\n";
  let benches =
    Lazy.force prepared
    |> List.filter (fun pb ->
           List.mem (bench_name pb)
             [ "alu2"; "too_large"; "alu4"; "C880"; "apex7"; "C1355" ])
  in
  let rows =
    List.map
      (fun pb ->
        let t e = cell_text (run_cell pb (strategy e)) in
        [ bench_name pb; t "direct"; t "muldirect" ])
      benches
  in
  print_string
    (Report.render_table ~header:[ "Benchmark"; "direct"; "muldirect" ] rows);
  print_string (Report.section "Ablation 2: shared vs private bottom-level variables");
  print_endline
    "direct-3+muldirect with s1: the paper shares one bottom variable set\n\
     across subdomains; '!unshared' gives every subdomain its own block.\n";
  let rows =
    List.map
      (fun pb ->
        let t e = cell_text (run_cell pb (strategy e)) in
        [
          bench_name pb;
          t "direct-3+muldirect/s1";
          t "direct-3+muldirect!unshared/s1";
        ])
      benches
  in
  print_string (Report.render_table ~header:[ "Benchmark"; "shared"; "unshared" ] rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Baselines: SAT vs exact CSP search vs BDD vs DSATUR vs WalkSAT      *)

let section_baselines () =
  print_string
    (Report.section
       "Baselines: SAT flow vs exact CSP search vs BDD vs greedy (Sect. 1 context)");
  print_endline
    "UNSAT columns (width = w_min - 1): the SAT flow vs DSATUR-ordered\n\
     branch-and-bound (node budget 100k) vs the BDD-era approach (node limit\n\
     1M). SAT column = ITE-linear-2+muldirect/s1. DSATUR and WalkSAT appear\n\
     in the routable columns (width = w_min); neither can prove\n\
     unroutability — the contrast the paper draws.\n";
  let benches = Lazy.force prepared in
  let rows =
    List.map
      (fun pb ->
        let graph = pb.inst.F.Benchmarks.graph in
        let w = pb.w_min in
        (* UNSAT side *)
        let sat_cell = cell_text (run_cell pb Strategy.best_single) in
        let time f =
          let t0 = Sys.time () in
          let tag = f () in
          (tag, Sys.time () -. t0)
        in
        let bnb_tag, bnb_t =
          time (fun () ->
              match G.Exact_coloring.k_colorable ~max_nodes:100_000 graph ~k:(w - 1) with
              | G.Exact_coloring.Uncolorable -> ""
              | G.Exact_coloring.Colorable _ -> "?!"
              | G.Exact_coloring.Exhausted -> "give-up ")
        in
        let bdd_tag, bdd_t =
          time (fun () ->
              match Fpgasat_bdd.Coloring_bdd.k_colorable ~max_nodes:1_000_000 graph ~k:(w - 1) with
              | Fpgasat_bdd.Coloring_bdd.Uncolorable -> ""
              | Fpgasat_bdd.Coloring_bdd.Colorable _ -> "?!"
              | Fpgasat_bdd.Coloring_bdd.Node_limit -> "blow-up ")
        in
        (* routable side *)
        let sat_routable = cell_text (run_cell ~width_delta:0 pb Strategy.best_single) in
        let dsatur_tag, dsatur_t =
          time (fun () ->
              let c = G.Greedy.dsatur graph in
              if G.Coloring.num_colors c <= w then "" else Printf.sprintf "W=%d " (G.Coloring.num_colors c))
        in
        let walksat_tag, walksat_t =
          time (fun () ->
              let csp = E.Csp.make graph ~k:w in
              let encoded = E.Csp_encode.encode (encoding "muldirect") csp in
              let params =
                { Sat.Walksat.default_params with Sat.Walksat.max_tries = 5;
                  max_flips = 100_000 }
              in
              match Sat.Walksat.solve ~params encoded.E.Csp_encode.cnf with
              | Sat.Walksat.Sat _, _ -> ""
              | Sat.Walksat.Unknown, _ -> "give-up ")
        in
        [
          bench_name pb;
          sat_cell;
          bnb_tag ^ Report.format_seconds bnb_t;
          bdd_tag ^ Report.format_seconds bdd_t;
          sat_routable;
          dsatur_tag ^ Report.format_seconds dsatur_t;
          walksat_tag ^ Report.format_seconds walksat_t;
        ])
      benches
  in
  print_string
    (Report.render_table
       ~header:
         [
           "Benchmark"; "SAT unsat"; "B&B unsat"; "BDD unsat"; "SAT route";
           "DSATUR route"; "WalkSAT route";
         ]
       rows);
  print_endline
    "('give-up' = budget exhausted without an answer; 'blow-up' = BDD node\n\
     limit; DSATUR cells marked W=x needed more than w_min tracks)\n"

(* ------------------------------------------------------------------ *)
(* Extensions: multi-level hierarchies and preprocessing               *)

let section_extensions () =
  print_string
    (Report.section "Extension: three-level hierarchical encodings (Sect. 4)");
  print_endline
    "The composition framework is fully general; these three-level\n\
     encodings go beyond the paper's evaluated set (cf. Kwon & Klieber).\n\
     UNSAT at w_min - 1 with s1.\n";
  let benches =
    Lazy.force prepared
    |> List.filter (fun pb ->
           List.mem (bench_name pb) [ "alu4"; "C880"; "apex7"; "C1355" ])
  in
  let encodings =
    encoding "ITE-linear-2+muldirect" :: E.Registry.multi_level_extensions
  in
  let rows =
    List.map
      (fun pb ->
        bench_name pb
        :: List.map
             (fun e ->
               cell_text (run_cell pb (Strategy.make ~symmetry:E.Symmetry.S1 e)))
             encodings)
      benches
  in
  print_string
    (Report.render_table
       ~header:("Benchmark" :: List.map E.Encoding.name encodings)
       rows);
  print_string (Report.section "Extension: CNF preprocessing (Simplify)");
  print_endline
    "Does preprocessing close the gap between encodings? muldirect without\n\
     symmetry breaking, UNSAT at w_min - 1, with and without Simplify.\n";
  let rows =
    List.map
      (fun pb ->
        let csp =
          E.Csp.make pb.inst.F.Benchmarks.graph ~k:(pb.w_min - 1)
        in
        let encoded = E.Csp_encode.encode (encoding "muldirect") csp in
        let cnf = encoded.E.Csp_encode.cnf in
        let budget = Sat.Solver.time_budget !budget_seconds in
        let t0 = Sys.time () in
        let plain = fst (Sat.Solver.solve ~budget cnf) in
        let t_plain = Sys.time () -. t0 in
        let t0 = Sys.time () in
        let pre, pre_stats, _ = Sat.Simplify.solve ~budget cnf in
        let t_pre = Sys.time () -. t0 in
        let tag = function
          | Sat.Solver.Unsat -> ""
          | Sat.Solver.Sat _ -> "?!"
          | Sat.Solver.Unknown -> "T/O "
          | Sat.Solver.Memout -> "M/O "
        in
        [
          bench_name pb;
          tag plain ^ Report.format_seconds t_plain;
          tag pre ^ Report.format_seconds t_pre;
          Format.asprintf "%a" Sat.Simplify.pp_stats pre_stats;
        ])
      benches
  in
  print_string
    (Report.render_table
       ~header:[ "Benchmark"; "plain"; "simplify+solve"; "preprocessing effect" ]
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Incremental width search vs per-width re-translation                *)

let section_incremental () =
  print_string
    (Report.section
       "Extension: incremental width search (one solver, colour selectors)");
  print_endline
    "Minimal-width search: re-translate per width (the paper's flow) vs a\n\
     single incremental solver with colour-off selector assumptions.\n";
  let budget = Sat.Solver.time_budget !budget_seconds in
  let rows =
    List.map
      (fun pb ->
        let route = pb.inst.F.Benchmarks.route in
        let graph = pb.inst.F.Benchmarks.graph in
        let t0 = Sys.time () in
        let bs = C.Binary_search.minimal_width ~budget route in
        let t_bs = Sys.time () -. t0 in
        let t0 = Sys.time () in
        let inc = C.Incremental_width.minimal_colors ~budget graph in
        let t_inc = Sys.time () -. t0 in
        match (bs, inc) with
        | Ok bs, Ok inc ->
            if bs.C.Binary_search.w_min <> inc.C.Incremental_width.w_min then
              Printf.eprintf "WARNING: width search mismatch on %s!\n"
                (bench_name pb);
            [
              bench_name pb;
              string_of_int bs.C.Binary_search.w_min;
              Printf.sprintf "%s (%d queries)" (Report.format_seconds t_bs)
                (List.length bs.C.Binary_search.runs);
              Printf.sprintf "%s (%d queries)" (Report.format_seconds t_inc)
                inc.C.Incremental_width.queries;
            ]
        | Error m, _ | _, Error m -> [ bench_name pb; "?"; m; "" ])
      (Lazy.force prepared)
  in
  print_string
    (Report.render_table
       ~header:[ "Benchmark"; "w_min"; "re-translate"; "incremental" ]
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Segmented channels (ref. [17] domain)                               *)

let section_channel () =
  print_string
    (Report.section "Second domain: segmented channel routing (ref. [17])");
  print_endline
    "Random Actel-style segmented channels; the same encodings route them\n\
     even though conflicts are value-dependent (not graph colouring).\n";
  let module Ch = Fpgasat_channel.Segmented_channel in
  let module Cs = Fpgasat_channel.Channel_sat in
  let rng = F.Rng.create 2008 in
  let make_instance ~length ~tracks ~conns =
    let ch = Ch.random ~rng ~length ~tracks ~max_cuts:(length / 6) in
    let connections =
      List.init conns (fun i ->
          let a = F.Rng.int rng (length - 1) in
          let span = 1 + F.Rng.int rng (max 1 (length / 4)) in
          Ch.connection i a (min (length - 1) (a + span)))
    in
    (ch, connections)
  in
  let encodings = [ "muldirect"; "ITE-linear"; "ITE-linear-2+muldirect" ] in
  let rows =
    List.map
      (fun (length, tracks, conns) ->
        let ch, connections = make_instance ~length ~tracks ~conns in
        let cells =
          List.map
            (fun ename ->
              let t0 = Sys.time () in
              let tag =
                match
                  Cs.route ~encoding:(encoding ename)
                    ~budget:(Sat.Solver.time_budget !budget_seconds) ch connections
                with
                | Cs.Routed _ -> ""
                | Cs.Unroutable -> "unsat "
                | Cs.Timeout -> "T/O "
              in
              tag ^ Report.format_seconds (Sys.time () -. t0))
            encodings
        in
        Printf.sprintf "len=%d tracks=%d conns=%d" length tracks conns :: cells)
      [
        (12, 4, 5); (16, 6, 8); (24, 8, 14); (32, 10, 22); (32, 8, 60);
      ]
  in
  print_string (Report.render_table ~header:("Channel" :: encodings) rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let bechamel_tests () =
  let open Bechamel in
  let alu2 = F.Benchmarks.build (Option.get (F.Benchmarks.find "alu2")) in
  let graph = alu2.F.Benchmarks.graph in
  let k = alu2.F.Benchmarks.max_congestion in
  let encode_test name enc_name =
    Test.make ~name
      (Staged.stage (fun () ->
           let csp = E.Csp.make graph ~k in
           ignore (E.Csp_encode.encode (encoding enc_name) csp)))
  in
  [
    Test.make ~name:"table1/clause-emission"
      (Staged.stage (fun () ->
           let g = G.Graph.of_edges 2 [ (0, 1) ] in
           let csp = E.Csp.make g ~k:3 in
           List.iter
             (fun e -> ignore (E.Csp_encode.encode (encoding e) csp))
             [ "log"; "direct"; "muldirect" ]));
    Test.make ~name:"figure1/tree-construction"
      (Staged.stage (fun () ->
           ignore (E.Ite_tree.linear 13);
           ignore (E.Ite_tree.balanced 13);
           ignore (E.Encoding.layout (encoding "ITE-log-2+ITE-linear") 13)));
    encode_test "table2/to-cnf/muldirect" "muldirect";
    encode_test "table2/to-cnf/ITE-linear-2+muldirect" "ITE-linear-2+muldirect";
    Test.make ~name:"routable/full-solve"
      (Staged.stage (fun () ->
           let csp = E.Csp.make graph ~k:(k + 1) in
           let encoded =
             E.Csp_encode.encode (encoding "ITE-linear-2+muldirect") csp
           in
           ignore (Sat.Solver.solve encoded.E.Csp_encode.cnf)));
  ]

let section_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_string (Report.section "Bechamel micro-benchmarks");
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"fpgasat" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.sprintf "%.0f" est
          | Some _ | None -> "n/a"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort compare
  in
  print_string (Report.render_table ~header:[ "micro-benchmark"; "ns/run" ] rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Certification                                                        *)

(* Two parts. (a) Checker speedup: solve the unroutable alu2 configuration
   once with proof recording, then time the watched-literal checker against
   the quadratic reference checker on the same trace — the before/after
   number quoted in EXPERIMENTS.md. (b) Differential fuzz: on random small
   routes, every registry encoding must agree with plain DPLL on the CNF
   and with exact branch-and-bound colouring on the conflict graph, and
   every decisive answer must certify. *)
let section_certify () =
  print_string (Report.section "Certification: watched-literal DRAT checker");
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* (a) speedup on a bench-sized proof *)
  let spec = Option.get (F.Benchmarks.find "alu2") in
  let inst = F.Benchmarks.build spec in
  let search_budget = Sat.Solver.time_budget (4. *. !budget_seconds) in
  let w_min =
    match
      C.Binary_search.minimal_width ~strategy:Strategy.best_single
        ~budget:search_budget inst.F.Benchmarks.route
    with
    | Ok r -> r.C.Binary_search.w_min
    | Error m -> failwith ("width search failed on alu2: " ^ m)
  in
  let width = max 1 (w_min - 1) in
  let strat = Strategy.best_single in
  let csp =
    E.Csp.make (F.Conflict_graph.build inst.F.Benchmarks.route) ~k:width
  in
  let encoded =
    E.Csp_encode.encode ?symmetry:strat.Strategy.symmetry
      strat.Strategy.encoding csp
  in
  let cnf = encoded.E.Csp_encode.cnf in
  let proof = Sat.Proof.create () in
  (match Sat.Solver.solve ~config:strat.Strategy.solver ~proof cnf with
  | Sat.Solver.Unsat, _ -> ()
  | _ -> failwith "expected alu2 below w_min to be UNSAT");
  let checked, fast_s = time (fun () -> Sat.Drat_check.check cnf proof) in
  let stats =
    match checked with
    | Ok s -> s
    | Error e ->
        failwith (Format.asprintf "checker rejected: %a" Sat.Drat_check.pp_error e)
  in
  let ref_result, ref_s =
    time (fun () -> Sat.Drat_check.check_reference cnf proof)
  in
  (match ref_result with
  | Ok () -> ()
  | Error e ->
      failwith
        (Format.asprintf "reference checker rejected: %a" Sat.Drat_check.pp_error
           e));
  Printf.printf
    "alu2 W=%d (%d vars, %d clauses, %d proof steps):\n\
    \  watched-literal checker: %.3fs\n\
    \  reference checker:       %.3fs  (%.1fx speedup)\n"
    width (Sat.Cnf.num_vars cnf) (Sat.Cnf.num_clauses cnf)
    (Sat.Proof.num_steps proof) fast_s ref_s (ref_s /. fast_s);
  Format.printf "  %a@." Sat.Drat_check.pp_stats stats;
  (* (b) differential fuzz across the registry *)
  let cells = ref 0 and certified = ref 0 and mismatches = ref 0 in
  for seed = 1 to 5 do
    let arch = F.Arch.create 4 in
    let rng = F.Rng.create (100 + seed) in
    let nl =
      F.Netlist.random ~rng ~arch ~num_nets:(6 + (seed mod 5)) ~max_fanout:2
        ~locality:2
    in
    let route = F.Global_router.route arch nl in
    let graph = F.Conflict_graph.build route in
    let ub = G.Greedy.upper_bound graph in
    let widths = List.sort_uniq compare [ max 1 (ub - 1); ub ] in
    List.iter
      (fun enc ->
        let strat = Strategy.make enc in
        List.iter
          (fun width ->
            incr cells;
            let run =
              Flow.(
                submit
                  (default_request |> with_strategy strat |> with_certify true))
                route ~width
            in
            if run.Flow.certified = Some true then incr certified;
            let csp = E.Csp.make graph ~k:width in
            let encoded =
              E.Csp_encode.encode ?symmetry:strat.Strategy.symmetry
                strat.Strategy.encoding csp
            in
            let dpll =
              Sat.Dpll.solve ~max_decisions:2_000_000 encoded.E.Csp_encode.cnf
            in
            let exact = G.Exact_coloring.k_colorable graph ~k:width in
            let sat_answer =
              match run.Flow.outcome with
              | Flow.Routable _ -> Some true
              | Flow.Unroutable -> Some false
              | Flow.Timeout | Flow.Memout -> None
            in
            let dpll_answer =
              match dpll with
              | Sat.Dpll.Sat _ -> Some true
              | Sat.Dpll.Unsat -> Some false
              | Sat.Dpll.Unknown -> None
            in
            let exact_answer =
              match exact with
              | G.Exact_coloring.Colorable _ -> Some true
              | G.Exact_coloring.Uncolorable -> Some false
              | G.Exact_coloring.Exhausted -> None
            in
            let agree a b =
              match (a, b) with Some x, Some y -> x = y | _ -> true
            in
            if
              not
                (agree sat_answer dpll_answer
                && agree sat_answer exact_answer
                && agree dpll_answer exact_answer)
            then begin
              incr mismatches;
              Printf.printf
                "MISMATCH seed=%d %s W=%d: cdcl=%s dpll=%s exact=%s\n" seed
                (Strategy.name strat) width
                (Flow.outcome_name run.Flow.outcome)
                (match dpll_answer with
                | Some true -> "sat"
                | Some false -> "unsat"
                | None -> "unknown")
                (match exact_answer with
                | Some true -> "colorable"
                | Some false -> "uncolorable"
                | None -> "exhausted")
            end)
          widths)
      E.Registry.all
  done;
  Printf.printf
    "differential fuzz: %d cells across %d encodings, %d certified, %d \
     mismatches\n"
    !cells
    (List.length E.Registry.all)
    !certified !mismatches;
  if !mismatches > 0 then failwith "solver/DPLL/exact-colouring disagreement"

(* ------------------------------------------------------------------ *)
(* Chaos harness (robustness check, not a paper section)                *)

(* Injects every fault kind into a table2-style queue through a seeded
   deterministic plan (Fpgasat_engine.Chaos) and checks the supervisor's
   promises: the sweep never aborts, every cell yields exactly one
   classified record, memory-faulted cells end cooperatively as M/O while
   the process survives, and a resume over the same queue re-runs at most
   the records the torn-tail faults destroyed. Any violation raises, so CI
   can run this section as a smoke test. *)
let section_chaos () =
  print_string
    (Report.section "Chaos harness: sweep supervisor under injected faults");
  let benches = Lazy.force prepared in
  let cols =
    List.filteri (fun i _ -> i < 7) (List.map strategy_of_column table2_columns)
  in
  let cells =
    List.concat_map
      (fun pb ->
        List.map
          (fun strat ->
            Sweep.cell ~benchmark:(bench_name pb) strat
              pb.inst.F.Benchmarks.route ~width:(pb.w_min - 1))
          cols)
      benches
  in
  let heap_mb =
    (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / (1024 * 1024)
  in
  let ceiling = heap_mb + 256 in
  let plan = Eng.Chaos.make ~seed:!chaos_seed ~cells:(List.length cells) in
  let described = Eng.Chaos.described plan in
  let faulted = List.length (List.filter (fun (_, f) -> f <> None) described) in
  let torn =
    List.length (List.filter (fun (_, f) -> f = Some "torn_tail") described)
  in
  Printf.printf
    "seed %d: %d cells (%d benchmarks x %d strategies at w_min-1), %d \
     faulted;\nheap %d MB, memory ceiling %d MB, retry x2 with fallback \
     presets.\n\n"
    !chaos_seed (List.length cells) (List.length benches) (List.length cols)
    faulted heap_mb ceiling;
  let out = Filename.temp_file "fpgasat_chaos" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ out; out ^ ".lock" ])
    (fun () ->
      let config =
        {
          (sweep_config ()) with
          Sweep.jobs = 1;
          poll_every = 1;
          out = Some out;
          resume = true;
          certify = true;
          capture_backtrace = true;
          max_memory_mb = Some ceiling;
          retry =
            {
              Sweep.max_attempts = 2;
              escalation = 2.0;
              fallback_presets = true;
            };
        }
      in
      let records =
        match Sweep.run config (Eng.Chaos.inject ~out plan cells) with
        | r -> r
        | exception e ->
            failwith
              ("CHAOS VIOLATION: sweep aborted: " ^ Printexc.to_string e)
      in
      if List.length records <> List.length cells then
        failwith "CHAOS VIOLATION: record count differs from cell count";
      let unclassified =
        List.filter
          (fun (r : Run_record.t) ->
            (not (Run_record.decisive r)) && r.Run_record.failure = None)
          records
      in
      if unclassified <> [] then
        failwith
          (Printf.sprintf
             "CHAOS VIOLATION: %d non-decisive records carry no failure \
              classification"
             (List.length unclassified));
      (* fault kind x outcome matrix *)
      let kinds =
        "healthy"
        :: Array.to_list (Array.map Eng.Chaos.fault_name Eng.Chaos.all_kinds)
      in
      let outcomes = [ "routable"; "unroutable"; "timeout"; "memout"; "crashed" ] in
      let count = Hashtbl.create 32 in
      List.iteri
        (fun i (r : Run_record.t) ->
          let kind =
            match Eng.Chaos.fault plan i with
            | None -> "healthy"
            | Some f -> Eng.Chaos.fault_name f
          in
          let o =
            match r.Run_record.outcome with
            | Run_record.Crashed _ -> "crashed"
            | o -> Run_record.outcome_name o
          in
          let key = (kind, o) in
          Hashtbl.replace count key
            (1 + Option.value ~default:0 (Hashtbl.find_opt count key)))
        records;
      print_string
        (Report.matrix ~corner:"fault \\ outcome" ~rows:kinds ~cols:outcomes
           ~cell:(fun ~row ~col ->
             match Hashtbl.find_opt count (row, col) with
             | Some n -> string_of_int n
             | None -> ".")
           ());
      let on_disk, bad = Sweep.load out in
      Printf.printf
        "\n%s\nresults file: %d records parsed, %d torn lines (%d torn-tail \
         faults injected)\n"
        (Sweep.summary records) (List.length on_disk) bad torn;
      if bad > torn then
        failwith "CHAOS VIOLATION: more torn lines than torn-tail faults";
      (* resume over the same queue with the faults removed: every surviving
         record must be trusted, so at most the records destroyed by torn
         tails (the torn line plus the record glued onto it) may re-run *)
      let reran = Hashtbl.create 16 in
      let counted =
        List.map
          (fun (j : Sweep.job) ->
            {
              j with
              Sweep.run =
                (fun ~budget ~certify ~telemetry ~fallback ->
                  (* one mark per cell, not per attempt *)
                  Hashtbl.replace reran
                    (j.Sweep.benchmark, j.Sweep.strategy, j.Sweep.width) ();
                  j.Sweep.run ~budget ~certify ~telemetry ~fallback);
            })
          cells
      in
      let again = Sweep.run config counted in
      let reran = Hashtbl.length reran in
      Printf.printf "resume: %d/%d cells re-ran (torn budget %d)\n" reran
        (List.length again) (2 * torn);
      if reran > 2 * torn then
        failwith "CHAOS VIOLATION: resume re-ran cells whose records survived";
      print_endline "chaos harness: all supervisor invariants held\n")

(* ------------------------------------------------------------------ *)
(* Encode+load throughput on the largest bundled configuration          *)

(* Single-line JSON for BENCH_encode.json trajectory tracking: wall time to
   emit the CNF into the arena, wall time to load it into the CDCL solver,
   and words allocated across one encode+load pass. *)
type encode_measurements = {
  em_vars : int;
  em_clauses : int;
  em_lits : int;
  em_encode_s : float;
  em_load_s : float;
  em_words_alloc : int;
}

let measure_encode () =
  let spec = Option.get (F.Benchmarks.find "vda") in
  let inst = F.Benchmarks.build spec in
  let graph = inst.F.Benchmarks.graph in
  let k = inst.F.Benchmarks.max_congestion in
  let enc = encoding "direct" in
  let csp = E.Csp.make graph ~k in
  let encode_once () = E.Csp_encode.encode enc csp in
  let time_best f =
    let best = ref infinity and out = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      out := Some r
    done;
    (Option.get !out, !best)
  in
  let encoded, encode_s = time_best encode_once in
  let cnf = encoded.E.Csp_encode.cnf in
  let _, load_s = time_best (fun () -> Sat.Solver.create cnf) in
  let bytes0 = Gc.allocated_bytes () in
  let encoded' = encode_once () in
  let solver = Sat.Solver.create encoded'.E.Csp_encode.cnf in
  let bytes1 = Gc.allocated_bytes () in
  ignore (Sat.Solver.solver_stats solver);
  {
    em_vars = Sat.Cnf.num_vars cnf;
    em_clauses = Sat.Cnf.num_clauses cnf;
    em_lits = Sat.Cnf.num_lits cnf;
    em_encode_s = encode_s;
    em_load_s = load_s;
    em_words_alloc = int_of_float ((bytes1 -. bytes0) /. 8.);
  }

(* Flat-vs-definitional comparison on the same vda instance: one real encode
   per (encoding, emission) pair plus the closed-form conflict literals per
   edge — the number the +defs layer drives down to 2 per shared pattern. *)
let emission_comparison () =
  let spec = Option.get (F.Benchmarks.find "vda") in
  let inst = F.Benchmarks.build spec in
  let graph = inst.F.Benchmarks.graph in
  let k = inst.F.Benchmarks.max_congestion in
  let csp = E.Csp.make graph ~k in
  let side enc =
    let encoded = E.Csp_encode.encode enc csp in
    let cnf = encoded.E.Csp_encode.cnf in
    let stats = E.Encoding_stats.predict enc ~k in
    Eng.Json.Obj
      [
        ("vars", Eng.Json.Int (Sat.Cnf.num_vars cnf));
        ("clauses", Eng.Json.Int (Sat.Cnf.num_clauses cnf));
        ("lits", Eng.Json.Int (Sat.Cnf.num_lits cnf));
        ( "conflict_lits_per_edge",
          Eng.Json.Int stats.E.Encoding_stats.conflict_literals_per_edge );
        ( "aux_vars_per_csp_var",
          Eng.Json.Int stats.E.Encoding_stats.aux_vars_per_csp_var );
      ]
  in
  List.map
    (fun name ->
      let enc = encoding name in
      Eng.Json.Obj
        [
          ("encoding", Eng.Json.String name);
          ("flat", side (E.Encoding.flat enc));
          ("defs", side (E.Encoding.defs enc));
        ])
    [ "log"; "direct"; "muldirect"; "ITE-linear-2+muldirect"; "direct-3+muldirect" ]

let section_encode_bench () =
  let m = measure_encode () in
  print_endline
    (Eng.Json.to_string
       (Eng.Json.Obj
          [
            ("vars", Eng.Json.Int m.em_vars);
            ("clauses", Eng.Json.Int m.em_clauses);
            ("lits", Eng.Json.Int m.em_lits);
            ("encode_s", Eng.Json.Float m.em_encode_s);
            ("load_s", Eng.Json.Float m.em_load_s);
            ("words_alloc", Eng.Json.Int m.em_words_alloc);
            ("emissions", Eng.Json.List (emission_comparison ()));
          ]))

(* ------------------------------------------------------------------ *)
(* Perf gate: a small fixed matrix against a committed baseline         *)

(* [--perf-handicap N] exists to prove the gate has teeth: it makes every
   conflict pay N spin iterations through an interrupt hook polled at every
   conflict, a deliberate slowdown a healthy run never shows. *)
let handicap_budget budget =
  if !perf_handicap <= 0 then budget
  else begin
    let n = !perf_handicap in
    let hook () =
      let acc = ref 0 in
      for i = 1 to n do
        acc := !acc + i
      done;
      ignore (Sys.opaque_identity !acc);
      false
    in
    Sat.Solver.with_poll_interval 1 (Sat.Solver.interruptible hook budget)
  end

(* w_min per benchmark, memoised: both the solve and the props sections
   key their widths off it. *)
let w_min_cache : (string, int) Hashtbl.t = Hashtbl.create 4

let w_min_of bench route =
  match Hashtbl.find_opt w_min_cache bench with
  | Some w -> w
  | None ->
      let w =
        match
          C.Binary_search.minimal_width ~strategy:Strategy.best_single
            ~budget:(Sat.Solver.time_budget (4. *. !budget_seconds))
            route
        with
        | Ok r -> r.C.Binary_search.w_min
        | Error m -> failwith (Printf.sprintf "perf-gate: %s: %s" bench m)
      in
      Hashtbl.add w_min_cache bench w;
      w

(* The solve half of the matrix: two benchmarks small enough to finish in
   seconds yet conflict-heavy enough to exercise the search, each at
   w_min-1 (UNSAT) and w_min+1 (easy SAT). Keys are relative to w_min, so
   the baseline stays valid even if a solver change moves w_min itself.
   Best of two runs, to shave scheduler noise. *)
let perf_solve_cells () =
  List.concat_map
    (fun bench ->
      let spec = Option.get (F.Benchmarks.find bench) in
      let inst = F.Benchmarks.build spec in
      let route = inst.F.Benchmarks.route in
      let w_min = w_min_of bench route in
      List.map
        (fun (tag, delta) ->
          let width = max 1 (w_min + delta) in
          let once () =
            let budget =
              handicap_budget (Sat.Solver.time_budget !budget_seconds)
            in
            let run =
              Flow.(
                submit
                  (default_request
                  |> with_strategy Strategy.best_single
                  |> with_budget budget))
                route ~width
            in
            match run.Flow.outcome with
            | Flow.Timeout | Flow.Memout -> !budget_seconds
            | Flow.Routable _ | Flow.Unroutable -> Flow.total run.Flow.timings
          in
          let seconds = Float.min (once ()) (once ()) in
          (Printf.sprintf "%s|%s" bench tag, seconds))
        [ ("wmin-1", -1); ("wmin+1", 1) ])
    [ "alu2"; "too_large" ]

(* BCP throughput cells: the watcher/arena hot path, as microseconds per
   propagation so lower-is-better Baseline ratios gate it directly. The
   rate comes from the same Telemetry records that sweep --telemetry
   reports. Each cell is an unroutable Table-2-style configuration under
   the log encoding, capped by a conflict budget so repeated runs of the
   deterministic solver perform identical work; the median over the
   repeats shaves scheduler noise. *)
let props_tolerance = 1. /. 0.9
(* >10 % fewer propagations per second fails the gate *)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let props_cells () =
  let log_strategy = Strategy.make ~solver:`Siege_like (encoding "log") in
  List.map
    (fun (bench, repeats, conflicts) ->
      let spec = Option.get (F.Benchmarks.find bench) in
      let inst = F.Benchmarks.build spec in
      let route = inst.F.Benchmarks.route in
      let width = max 1 (w_min_of bench route - 1) in
      let rate () =
        let budget = handicap_budget (Sat.Solver.conflict_budget conflicts) in
        let run =
          Flow.(
            submit
              (default_request
              |> with_strategy log_strategy
              |> with_budget budget |> with_telemetry true))
            route ~width
        in
        match run.Flow.telemetry with
        | Some t -> t.Obs.Telemetry.propagations_per_sec
        | None -> failwith "perf-gate: telemetry record missing"
      in
      let per_sec = median (List.init repeats (fun _ -> rate ())) in
      Printf.eprintf "perf-gate: %s W=%d log: %.0f propagations/s\n%!" bench
        width per_sec;
      (Printf.sprintf "%s|wmin-1|log" bench, 1e6 /. per_sec))
    [ ("alu2", 5, 100_000); ("vda", 3, 6_000) ]

let section_perf_gate () =
  let m = measure_encode () in
  let encode_cells =
    [
      ("vda/encode_s", m.em_encode_s);
      ("vda/load_s", m.em_load_s);
      ("vda/words_alloc", float_of_int m.em_words_alloc);
    ]
  in
  Printf.eprintf "perf-gate: encode section done\n%!";
  let solve_cells = perf_solve_cells () in
  Printf.eprintf "perf-gate: solve section done\n%!";
  let prop_cells = props_cells () in
  Printf.eprintf "perf-gate: props section done\n%!";
  let current =
    Obs.Baseline.make
      [
        ("encode", encode_cells);
        ("solve", solve_cells);
        ("props", prop_cells);
      ]
  in
  if !bench_out <> "" then begin
    Obs.Baseline.to_file !bench_out current;
    Printf.printf "perf-gate: wrote %s\n" !bench_out
  end;
  match !baseline_file with
  | "" -> ()
  | path -> (
      match Obs.Baseline.of_file path with
      | Error m ->
          prerr_endline (Printf.sprintf "perf-gate: %s: %s" path m);
          exit 2
      | Ok baseline ->
          let tolerance =
            if !gate > 0. then !gate else Obs.Baseline.default_tolerance
          in
          (* wall-time sections gate under --gate; the props section gates
             separately under the fixed throughput contract (>10 % fewer
             propagations/s fails), so loosening the time tolerance never
             loosens the BCP-throughput one *)
          let is_props (name, _) = String.equal name "props" in
          let all = Obs.Baseline.sections baseline in
          let time_baseline =
            Obs.Baseline.make (List.filter (fun s -> not (is_props s)) all)
          in
          let time_report =
            Obs.Baseline.compare ~tolerance ~baseline:time_baseline ~current ()
          in
          print_endline (Obs.Baseline.render time_report);
          let props_ok =
            match List.filter is_props all with
            | [] -> true (* baseline predates the props section *)
            | sec ->
                let report =
                  Obs.Baseline.compare ~tolerance:props_tolerance
                    ~baseline:(Obs.Baseline.make sec) ~current ()
                in
                print_endline (Obs.Baseline.render report);
                report.Obs.Baseline.ok
          in
          if not (time_report.Obs.Baseline.ok && props_ok) then exit 1)

(* ------------------------------------------------------------------ *)
(* Scaling: dimensional sweeps over generated instances, fitted to      *)
(* per-strategy power laws and gated on the exponents                   *)

(* [--scaling-handicap N] is the exponent gate's teeth-check. A uniform
   per-conflict spin (like --perf-handicap) only scales the constant C of
   t = C * x^e and leaves the exponent alone, so it could never fail an
   exponent gate; this one spins N * (nets/8)^4 iterations per conflict —
   the added cost grows two powers faster than any healthy curve here, so
   the fitted nets exponent inflates past any sane tolerance. *)
let scaling_handicap_job (j : Sweep.job) =
  match F.Generator.of_name j.Sweep.benchmark with
  | None -> j
  | Some (p, _) ->
      let r = float_of_int p.F.Generator.nets /. 8. in
      let spin =
        int_of_float (float_of_int !scaling_handicap *. (r ** 4.))
      in
      let hook () =
        let acc = ref 0 in
        for i = 1 to spin do
          acc := !acc + i
        done;
        ignore (Sys.opaque_identity !acc);
        false
      in
      {
        j with
        Sweep.run =
          (fun ~budget ~certify ~telemetry ~fallback ->
            let budget =
              Sat.Solver.with_poll_interval 1
                (Sat.Solver.interruptible hook budget)
            in
            j.Sweep.run ~budget ~certify ~telemetry ~fallback);
      }

(* Best-of-N on the cheap cells only: a sub-second cell re-runs (the
   deterministic solver repeats identical work, so the minimum is the
   cleanest estimate of it), while an expensive cell keeps its first
   measurement — re-running those would burn budget to shave noise that
   is already relatively small. *)
let scaling_rerun_threshold = 1.0

let scaling_repeat_job (j : Sweep.job) =
  {
    j with
    Sweep.run =
      (fun ~budget ~certify ~telemetry ~fallback ->
        let decisive (run : Flow.run) =
          match run.Flow.outcome with
          | Flow.Routable _ | Flow.Unroutable -> true
          | Flow.Timeout | Flow.Memout -> false
        in
        let total (run : Flow.run) = Flow.total run.Flow.timings in
        let rec go best n =
          if
            n <= 1 || (not (decisive best))
            || total best > scaling_rerun_threshold
          then best
          else
            let next = j.Sweep.run ~budget ~certify ~telemetry ~fallback in
            let best =
              if decisive next && total next < total best then next else best
            in
            go best (n - 1)
        in
        go (j.Sweep.run ~budget ~certify ~telemetry ~fallback) !scaling_repeats);
  }

let section_scaling () =
  let grid =
    match String.lowercase_ascii !scaling_grid with
    | "smoke" -> Eng.Dims.smoke
    | "full" -> Eng.Dims.full
    | other ->
        prerr_endline
          (Printf.sprintf "--scaling-grid: expected smoke or full, got %S"
             other);
        exit 2
  in
  let strategies =
    List.map strategy (String.split_on_char ',' !scaling_strategies)
  in
  let cells = Eng.Dims.jobs grid ~strategies in
  let cells =
    if !scaling_handicap > 0 then List.map scaling_handicap_job cells
    else cells
  in
  let cells =
    if !scaling_repeats > 1 then List.map scaling_repeat_job cells else cells
  in
  Printf.printf "scaling: %s grid, %d cells, %d strategies\n%!" !scaling_grid
    (List.length cells) (List.length strategies);
  let records = run_sweep cells in
  print_string (Sweep.render_table records);
  print_endline (Sweep.summary records);
  let current = Eng.Dims.analyze records in
  print_string (Obs.Fit.render current);
  if !scaling_out <> "" then begin
    Obs.Fit.to_file !scaling_out current;
    Printf.printf "scaling: wrote %s\n" !scaling_out
  end;
  match !scaling_baseline with
  | "" -> ()
  | path -> (
      match Obs.Fit.of_file path with
      | Error m ->
          prerr_endline (Printf.sprintf "scaling: %s: %s" path m);
          exit 2
      | Ok baseline ->
          let tolerance =
            if !scaling_gate > 0. then Some !scaling_gate else None
          in
          let report = Obs.Fit.gate ?tolerance ~baseline ~current () in
          print_endline (Obs.Fit.render_gate report);
          if not report.Obs.Fit.gate_ok then exit 1)

let () =
  Arg.parse arg_spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  (match String.lowercase_ascii !emission with
  | "flat" | "defs" | "both" -> ()
  | other ->
      prerr_endline
        (Printf.sprintf "--emission: expected flat, defs or both, got %S" other);
      exit 2);
  if !encode_bench_only then begin
    section_encode_bench ();
    exit 0
  end;
  if !scaling then begin
    section_scaling ();
    exit 0
  end;
  if !bench_out <> "" || !baseline_file <> "" then begin
    section_perf_gate ();
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "fpgasat benchmark harness — reproduction of Velev & Gao, DATE 2008\n\
     budget per timed cell: %.0fs\n"
    !budget_seconds;
  if section_enabled "table1" then section_table1 ();
  if section_enabled "figure1" then section_figure1 ();
  if section_enabled "table2" then begin
    print_string (Report.section "Benchmark instances (synthetic MCNC stand-ins)");
    List.iter
      (fun pb ->
        Printf.printf "%s  w_min=%d\n"
          (Format.asprintf "%a" F.Benchmarks.pp_instance pb.inst)
          pb.w_min)
      (Lazy.force prepared);
    section_table2 ()
  end;
  if section_enabled "routable" then section_routable ();
  if section_enabled "solvers" then section_solvers ();
  if section_enabled "portfolio" then section_portfolio ();
  if section_enabled "ablations" then section_ablations ();
  if section_enabled "baselines" then section_baselines ();
  if section_enabled "extensions" then section_extensions ();
  if section_enabled "incremental" then section_incremental ();
  if section_enabled "channel" then section_channel ();
  if section_enabled "certify" then section_certify ();
  if !chaos then section_chaos ();
  if !with_bechamel then section_bechamel ();
  Printf.printf "total harness wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
