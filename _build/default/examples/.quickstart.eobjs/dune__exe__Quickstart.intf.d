examples/quickstart.mli:
