examples/encoding_explorer.ml: Fpgasat_core Fpgasat_encodings Fpgasat_fpga Fpgasat_sat List Option Printf
