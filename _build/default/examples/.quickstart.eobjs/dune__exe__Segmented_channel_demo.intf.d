examples/segmented_channel_demo.mli:
