examples/quickstart.ml: Array Format Fpgasat_core Fpgasat_fpga Fpgasat_graph List Printf String
