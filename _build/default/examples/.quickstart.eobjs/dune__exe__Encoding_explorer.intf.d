examples/encoding_explorer.mli:
