examples/segmented_channel_demo.ml: Array Fpgasat_channel Fpgasat_encodings List Printf String
