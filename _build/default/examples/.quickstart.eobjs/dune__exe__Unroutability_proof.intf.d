examples/unroutability_proof.mli:
