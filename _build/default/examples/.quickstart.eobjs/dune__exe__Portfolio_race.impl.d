examples/portfolio_race.ml: Format Fpgasat_core Fpgasat_fpga Fpgasat_sat List Option Printf Unix
