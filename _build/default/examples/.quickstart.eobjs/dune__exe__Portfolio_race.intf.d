examples/portfolio_race.mli:
