(* Segmented channel routing — the second problem domain.

   The paper's ref. [17] (Hung et al.) applied SAT to segmented channel
   routing in antifuse FPGAs: every connection must fit inside a single
   track segment, and a segment is one conductor. Conflicts here depend on
   the track ("these two connections collide on track 2 but not on track
   0"), so the problem is not graph colouring — yet the same indexing
   Boolean patterns encode it, which is the generality claim of the
   encoding framework.

   Run with: dune exec examples/segmented_channel_demo.exe *)

module Ch = Fpgasat_channel.Segmented_channel
module Cs = Fpgasat_channel.Channel_sat
module E = Fpgasat_encodings

let show_channel ch =
  for t = 0 to Ch.num_tracks ch - 1 do
    Printf.printf "  track %d: %s\n" t
      (String.concat "  "
         (List.map (fun (a, b) -> Printf.sprintf "[%d..%d]" a b) (Ch.segments ch t)))
  done

let show_connections conns =
  List.iter
    (fun (c : Ch.connection) ->
      Printf.printf "  connection %d spans columns %d..%d\n" c.Ch.conn_id c.Ch.left
        c.Ch.right)
    conns

let route_and_print ch conns =
  match Cs.route ch conns with
  | Cs.Routed assignment ->
      print_endline "ROUTED:";
      List.iteri
        (fun i (c : Ch.connection) ->
          Printf.printf "  connection %d (%d..%d) -> track %d\n" c.Ch.conn_id
            c.Ch.left c.Ch.right assignment.(i))
        conns
  | Cs.Unroutable -> print_endline "UNROUTABLE (proved by the SAT solver)"
  | Cs.Timeout -> print_endline "timeout"

let () =
  (* a 12-column channel: track 0 cut at 6, track 1 cut at 3 and 9,
     track 2 a full-length conductor *)
  let ch = Ch.make ~length:12 ~cuts:[| [ 6 ]; [ 3; 9 ]; [] |] in
  print_endline "channel segmentation:";
  show_channel ch;

  let conns =
    [
      Ch.connection 0 0 2 (* fits the left segments of tracks 0 and 1 *);
      Ch.connection 1 7 11 (* right end: track 0 right segment or track 2 *);
      Ch.connection 2 2 7 (* crosses cuts on tracks 0 and 1: track 2 only... *);
      Ch.connection 3 5 10 (* ...and so does this one *);
    ]
  in
  print_endline "\nconnections:";
  show_connections conns;

  (* connections 2 and 3 both need the only full-length conductor *)
  print_endline "\nfirst attempt:";
  route_and_print ch conns;

  (* adding one uncut track makes it routable *)
  let ch2 = Ch.make ~length:12 ~cuts:[| [ 6 ]; [ 3; 9 ]; []; [] |] in
  print_endline "\nwith one more uncut track:";
  route_and_print ch2 conns;

  (* the encodings agree here too *)
  print_endline "\nverdicts per encoding (first attempt):";
  List.iter
    (fun e ->
      let tag =
        match Cs.route ~encoding:e ch conns with
        | Cs.Routed _ -> "routable"
        | Cs.Unroutable -> "unroutable"
        | Cs.Timeout -> "timeout"
      in
      Printf.printf "  %-26s %s\n" (E.Encoding.name e) tag)
    E.Registry.table2
