(* Quickstart: the whole pipeline on a small, hand-sized FPGA.

   Build a 5x5 island-style array, place a few nets, globally route them,
   then use the SAT flow to find the minimal channel width W — including the
   unroutability proof at W - 1 — and print the resulting detailed routing.

   Run with: dune exec examples/quickstart.exe *)

module F = Fpgasat_fpga
module G = Fpgasat_graph
module C = Fpgasat_core

let () =
  (* 1. architecture and netlist *)
  let arch = F.Arch.create 5 in
  let netlist =
    F.Netlist.make
      [
        { F.Netlist.net_id = 0; source = (0, 0); sinks = [ (4, 4); (4, 0) ] };
        { F.Netlist.net_id = 1; source = (0, 4); sinks = [ (4, 0) ] };
        { F.Netlist.net_id = 2; source = (2, 2); sinks = [ (0, 0); (4, 4) ] };
        { F.Netlist.net_id = 3; source = (1, 3); sinks = [ (3, 1) ] };
        { F.Netlist.net_id = 4; source = (3, 3); sinks = [ (1, 1) ] };
      ]
  in
  Format.printf "netlist: %a@." F.Netlist.pp netlist;

  (* 2. global routing (stands in for SEGA's global routes) *)
  let route = F.Global_router.route arch netlist in
  Format.printf "global routing: %a@." F.Global_route.pp route;

  (* 3. the conflict graph: 2-pin subnets that share a channel segment *)
  let graph = F.Conflict_graph.build route in
  Format.printf "conflict graph: %a@." G.Graph.pp graph;

  (* 4. minimal channel width via SAT, with an optimality proof *)
  match C.Binary_search.minimal_width route with
  | Error msg -> prerr_endline ("search failed: " ^ msg)
  | Ok r ->
      let w = r.C.Binary_search.w_min in
      Printf.printf "\nminimal channel width: W = %d\n" w;
      (match r.C.Binary_search.unsat_below with
      | Some _ -> Printf.printf "W = %d proven unroutable by the SAT solver\n" (w - 1)
      | None -> Printf.printf "W = %d impossible already by the clique bound\n" (w - 1));

      (* 5. the detailed routing, verified against the architecture *)
      let detailed = r.C.Binary_search.routing in
      print_endline "\ntrack assignment per 2-pin subnet:";
      Array.iteri
        (fun id track ->
          let subnet = netlist.F.Netlist.subnets.(id) in
          let sx, sy = subnet.F.Netlist.from_cell
          and tx, ty = subnet.F.Netlist.to_cell in
          Printf.printf "  net %d: (%d,%d) -> (%d,%d)  track %d, %d segments\n"
            subnet.F.Netlist.parent sx sy tx ty track
            (List.length (F.Global_route.path route id)))
        detailed.F.Detailed_route.tracks;

      print_endline "\nbusiest channel segments (segment: track->subnet):";
      let occupancy = F.Detailed_route.channel_occupancy detailed in
      let busiest =
        List.sort
          (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
          occupancy
      in
      List.iteri
        (fun i (seg, entries) ->
          if i < 5 then
            Format.printf "  %a: %s@." F.Arch.pp_segment seg
              (String.concat ", "
                 (List.map (fun (t, s) -> Printf.sprintf "%d->%d" t s) entries)))
        busiest
