(* Tests for the graph-colouring substrate: graph structure, DIMACS .col
   round trips, colouring verification, greedy/DSATUR bounds, the clique
   lower bound, and DOT export. *)

module G = Fpgasat_graph
module Graph = G.Graph
module Coloring = G.Coloring

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- graph structure --- *)

let test_graph_basics () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 0;
  (* duplicate, other direction *)
  Alcotest.(check int) "vertices" 4 (Graph.num_vertices g);
  Alcotest.(check int) "edges deduped" 2 (Graph.num_edges g);
  Alcotest.(check bool) "mem 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "mem 1-0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "no 0-2" false (Graph.mem_edge g 0 2);
  Alcotest.(check int) "degree 1" 2 (Graph.degree g 1);
  Alcotest.(check int) "degree isolated" 0 (Graph.degree g 3);
  Alcotest.(check (list int)) "neighbors of 1" [ 0; 2 ] (Graph.neighbors g 1)

let test_graph_self_loop_rejected () =
  let g = Graph.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1)

let test_graph_out_of_range () =
  let g = Graph.create 2 in
  Alcotest.check_raises "oob" (Invalid_argument "Graph: vertex out of range")
    (fun () -> Graph.add_edge g 0 5)

let test_graph_iter_edges_once () =
  let g = Graph.of_edges 5 [ (0, 1); (2, 1); (3, 4); (0, 4) ] in
  let seen = ref [] in
  Graph.iter_edges (fun u v -> seen := (u, v) :: !seen) g;
  Alcotest.(check int) "each edge once" 4 (List.length !seen);
  List.iter
    (fun (u, v) -> Alcotest.(check bool) "smaller first" true (u < v))
    !seen

let test_graph_degree_helpers () =
  let g = Graph.of_edges 5 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  Alcotest.(check int) "max degree vertex" 0 (Graph.max_degree_vertex g);
  Alcotest.(check int) "neighbor degree sum of 3" 3 (Graph.neighbor_degree_sum g 3);
  Alcotest.(check int) "neighbor degree sum of 0" 5 (Graph.neighbor_degree_sum g 0)

let test_graph_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let g2 = Graph.copy g in
  Graph.add_edge g 1 2;
  Alcotest.(check int) "copy unchanged" 1 (Graph.num_edges g2);
  Alcotest.(check int) "original grew" 2 (Graph.num_edges g)

(* --- colouring --- *)

let triangle = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let test_coloring_check () =
  Alcotest.(check bool) "proper" true (Coloring.is_proper triangle ~k:3 [| 0; 1; 2 |]);
  Alcotest.(check bool) "monochromatic" false
    (Coloring.is_proper triangle ~k:3 [| 0; 0; 2 |]);
  Alcotest.(check bool) "out of range" false
    (Coloring.is_proper triangle ~k:2 [| 0; 1; 2 |]);
  match Coloring.check triangle ~k:3 [| 0; 0; 1 |] with
  | Error (Coloring.Monochromatic_edge (0, 1)) -> ()
  | Error v ->
      Alcotest.fail (Format.asprintf "wrong violation: %a" Coloring.pp_violation v)
  | Ok () -> Alcotest.fail "expected violation"

let test_coloring_length_mismatch () =
  Alcotest.check_raises "length" (Invalid_argument "Coloring.check: length mismatch")
    (fun () -> ignore (Coloring.check triangle ~k:3 [| 0; 1 |]))

let test_num_colors () =
  Alcotest.(check int) "num colors" 3 (Coloring.num_colors [| 0; 2; 1; 0 |]);
  Alcotest.(check int) "empty" 0 (Coloring.num_colors [||])

(* --- greedy bounds --- *)

let petersen =
  (* 3-chromatic, clique number 2: outer 5-cycle, inner pentagram, spokes *)
  Graph.of_edges 10
    [
      (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
    ]

let test_greedy_proper () =
  let c = G.Greedy.sequential petersen in
  Alcotest.(check bool) "sequential proper" true
    (Coloring.is_proper petersen ~k:(Coloring.num_colors c) c);
  let d = G.Greedy.dsatur petersen in
  Alcotest.(check bool) "dsatur proper" true
    (Coloring.is_proper petersen ~k:(Coloring.num_colors d) d)

let test_dsatur_triangle_exact () =
  Alcotest.(check int) "triangle" 3 (G.Greedy.upper_bound triangle);
  Alcotest.(check int) "petersen dsatur = 3" 3 (G.Greedy.upper_bound petersen)

let test_greedy_custom_order () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let c = G.Greedy.sequential ~order:[ 3; 2; 1; 0 ] g in
  Alcotest.(check bool) "proper" true (Coloring.is_proper g ~k:2 c)

let test_clique_bounds () =
  Alcotest.(check int) "triangle clique" 3 (G.Clique.lower_bound triangle);
  Alcotest.(check int) "petersen clique" 2 (G.Clique.lower_bound petersen);
  let clique = G.Clique.greedy triangle in
  Alcotest.(check int) "clique size" 3 (List.length clique);
  Alcotest.(check int) "empty graph" 0 (G.Clique.lower_bound (Graph.create 0))

let prop_clique_le_dsatur =
  QCheck2.Test.make ~count:300 ~name:"clique lower bound <= DSATUR upper bound"
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      G.Clique.lower_bound g <= G.Greedy.upper_bound g)

let prop_clique_is_clique =
  QCheck2.Test.make ~count:300 ~name:"greedy clique is a clique"
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let clique = G.Clique.greedy g in
      List.for_all
        (fun u -> List.for_all (fun v -> u = v || Graph.mem_edge g u v) clique)
        clique)

let prop_dsatur_proper =
  QCheck2.Test.make ~count:300 ~name:"DSATUR colourings are proper"
    QCheck2.Gen.(
      let* n = int_range 1 15 in
      let* edges =
        list_repeat (3 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let c = G.Greedy.dsatur g in
      Coloring.is_proper g ~k:(max 1 (Coloring.num_colors c)) c)

(* --- DIMACS .col --- *)

let test_col_roundtrip () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  let s = G.Dimacs_col.to_string ~comments:[ "test graph" ] g in
  let g' = G.Dimacs_col.parse_string s in
  Alcotest.(check int) "vertices" 5 (Graph.num_vertices g');
  Alcotest.(check int) "edges" 3 (Graph.num_edges g');
  Alcotest.(check bool) "edge 0-1" true (Graph.mem_edge g' 0 1);
  Alcotest.(check bool) "edge 3-4" true (Graph.mem_edge g' 3 4)

let expect_col_error s =
  match G.Dimacs_col.parse_string s with
  | exception G.Dimacs_col.Parse_error _ -> ()
  | _ -> Alcotest.fail ("should have failed: " ^ s)

let test_col_errors () =
  expect_col_error "e 1 2\n";
  expect_col_error "p edge 2 1\ne 1 3\n";
  expect_col_error "p edge 2 1\ne 1 1\n";
  expect_col_error "p edge 2 1\np edge 2 1\n";
  expect_col_error "p edge 2 1\nx 1 2\n";
  expect_col_error ""

let test_col_comments () =
  let g = G.Dimacs_col.parse_string "c hi\np edge 3 1\nc mid\ne 1 2\n" in
  Alcotest.(check int) "one edge" 1 (Graph.num_edges g)

let test_col_file_io () =
  let g = Graph.of_edges 4 [ (0, 3); (1, 2) ] in
  let path = Filename.temp_file "fpgasat" ".col" in
  G.Dimacs_col.write_file path g;
  let g' = G.Dimacs_col.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "edges" 2 (Graph.num_edges g')

let prop_col_roundtrip =
  QCheck2.Test.make ~count:200 ~name:".col write/parse is identity"
    QCheck2.Gen.(
      let* n = int_range 1 10 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let g' = G.Dimacs_col.parse_string (G.Dimacs_col.to_string g) in
      Graph.num_vertices g = Graph.num_vertices g'
      && List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g'))

let prop_of_edges_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"of_edges/edges roundtrip"
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let g' = Graph.of_edges n (Graph.edges g) in
      List.sort compare (Graph.edges g) = List.sort compare (Graph.edges g')
      && Graph.num_edges g = Graph.num_edges g')

let prop_degree_sum =
  QCheck2.Test.make ~count:300 ~name:"handshake: degree sum = 2m"
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      let sum = List.fold_left (fun acc v -> acc + Graph.degree g v) 0 (List.init n Fun.id) in
      sum = 2 * Graph.num_edges g)

let test_density () =
  Alcotest.(check (float 1e-9)) "triangle" 1.0 (Graph.density triangle);
  Alcotest.(check (float 1e-9)) "single vertex" 0.0 (Graph.density (Graph.create 1))

(* --- exact coloring --- *)

let test_exact_triangle () =
  (match G.Exact_coloring.k_colorable triangle ~k:2 with
  | G.Exact_coloring.Uncolorable -> ()
  | G.Exact_coloring.Colorable _ -> Alcotest.fail "triangle 2-colourable?"
  | G.Exact_coloring.Exhausted -> Alcotest.fail "tiny search exhausted");
  match G.Exact_coloring.k_colorable triangle ~k:3 with
  | G.Exact_coloring.Colorable c ->
      Alcotest.(check bool) "proper" true (Coloring.is_proper triangle ~k:3 c)
  | G.Exact_coloring.Uncolorable | G.Exact_coloring.Exhausted ->
      Alcotest.fail "triangle is 3-colourable"

let test_exact_petersen_chromatic () =
  match G.Exact_coloring.chromatic_number petersen with
  | G.Exact_coloring.Exact 3 -> ()
  | G.Exact_coloring.Exact x -> Alcotest.fail (Printf.sprintf "chi(Petersen)=%d?" x)
  | G.Exact_coloring.Bounds _ -> Alcotest.fail "exhausted on Petersen"

let test_exact_budget () =
  (* a hostile budget must yield Exhausted, not a wrong answer *)
  let g = Graph.of_edges 8 (List.concat_map (fun i ->
      List.filter_map (fun j -> if j > i then Some (i, j) else None)
        (List.init 8 Fun.id)) (List.init 8 Fun.id)) in
  match G.Exact_coloring.k_colorable ~max_nodes:3 g ~k:7 with
  | G.Exact_coloring.Exhausted -> ()
  | G.Exact_coloring.Colorable _ | G.Exact_coloring.Uncolorable ->
      Alcotest.fail "3 nodes cannot decide K8 with 7 colours"

let brute_colorable g k =
  let n = Graph.num_vertices g in
  let coloring = Array.make (max n 1) 0 in
  let rec go v =
    if v = n then true
    else
      let ok c =
        List.for_all (fun w -> w > v || coloring.(w) <> c) (Graph.neighbors g v)
      in
      let rec try_c c =
        c < k && ((ok c && (coloring.(v) <- c; go (v + 1))) || try_c (c + 1))
      in
      try_c 0
  in
  n = 0 || go 0

let prop_exact_matches_brute_force =
  QCheck2.Test.make ~count:300 ~name:"branch and bound agrees with brute force"
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* k = int_range 1 4 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, k, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, k, edges) ->
      let g = Graph.of_edges n edges in
      match G.Exact_coloring.k_colorable g ~k with
      | G.Exact_coloring.Colorable c ->
          brute_colorable g k && Coloring.is_proper g ~k c
      | G.Exact_coloring.Uncolorable -> not (brute_colorable g k)
      | G.Exact_coloring.Exhausted -> false)

let prop_chromatic_between_bounds =
  QCheck2.Test.make ~count:200 ~name:"chromatic number within clique/DSATUR bounds"
    QCheck2.Gen.(
      let* n = int_range 1 10 in
      let* edges =
        list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, List.filter (fun (u, v) -> u <> v) edges))
    (fun (n, edges) ->
      let g = Graph.of_edges n edges in
      match G.Exact_coloring.chromatic_number g with
      | G.Exact_coloring.Exact chi ->
          G.Clique.lower_bound g <= chi && chi <= G.Greedy.upper_bound g
      | G.Exact_coloring.Bounds _ -> false)

(* --- DOT export --- *)

let test_dot_output () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let dot = G.Dot.to_dot ~name:"test" ~coloring:[| 0; 1; 0 |] g in
  Alcotest.(check bool) "has graph header" true (contains dot "graph test {");
  Alcotest.(check bool) "has an edge" true (contains dot "0 -- 1;");
  Alcotest.(check bool) "has colour label" true (contains dot "label=\"1/1\"")

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "self loop rejected" `Quick test_graph_self_loop_rejected;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "iter edges once" `Quick test_graph_iter_edges_once;
          Alcotest.test_case "degree helpers" `Quick test_graph_degree_helpers;
          Alcotest.test_case "copy independent" `Quick test_graph_copy_independent;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "check" `Quick test_coloring_check;
          Alcotest.test_case "length mismatch" `Quick test_coloring_length_mismatch;
          Alcotest.test_case "num colors" `Quick test_num_colors;
        ] );
      ( "greedy",
        Alcotest.test_case "proper colourings" `Quick test_greedy_proper
        :: Alcotest.test_case "dsatur exact on small" `Quick test_dsatur_triangle_exact
        :: Alcotest.test_case "custom order" `Quick test_greedy_custom_order
        :: Alcotest.test_case "clique bounds" `Quick test_clique_bounds
        :: qtests [ prop_clique_le_dsatur; prop_clique_is_clique; prop_dsatur_proper ]
      );
      ( "dimacs-col",
        Alcotest.test_case "roundtrip" `Quick test_col_roundtrip
        :: Alcotest.test_case "errors" `Quick test_col_errors
        :: Alcotest.test_case "comments" `Quick test_col_comments
        :: Alcotest.test_case "file io" `Quick test_col_file_io
        :: qtests [ prop_col_roundtrip ] );
      ( "structure",
        Alcotest.test_case "density" `Quick test_density
        :: qtests [ prop_of_edges_roundtrip; prop_degree_sum ] );
      ( "exact-coloring",
        Alcotest.test_case "triangle" `Quick test_exact_triangle
        :: Alcotest.test_case "petersen chromatic" `Quick test_exact_petersen_chromatic
        :: Alcotest.test_case "budget" `Quick test_exact_budget
        :: qtests [ prop_exact_matches_brute_force; prop_chromatic_between_bounds ] );
      ("dot", [ Alcotest.test_case "output" `Quick test_dot_output ]);
    ]
