(* Tests for the BDD substrate: core ROBDD algebra (cross-checked by
   exhaustive evaluation), and the BDD colouring baseline against brute
   force — including the node-limit behaviour that motivates SAT. *)

module G = Fpgasat_graph
module Bdd = Fpgasat_bdd.Bdd
module CB = Fpgasat_bdd.Coloring_bdd

(* --- core BDD algebra --- *)

let test_terminals () =
  let m = Bdd.manager () in
  Alcotest.(check bool) "zero" true (Bdd.is_zero (Bdd.zero m));
  Alcotest.(check bool) "one" true (Bdd.is_one (Bdd.one m));
  Alcotest.(check bool) "not zero = one" true
    (Bdd.is_one (Bdd.bdd_not m (Bdd.zero m)))

let test_var_semantics () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and nx = Bdd.nvar m 0 in
  Alcotest.(check bool) "x true" true (Bdd.eval m x (fun _ -> true));
  Alcotest.(check bool) "x false" false (Bdd.eval m x (fun _ -> false));
  Alcotest.(check bool) "nx = not x" true
    (Bdd.equal nx (Bdd.bdd_not m x))

let test_hash_consing () =
  let m = Bdd.manager () in
  let a = Bdd.bdd_and m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.bdd_and m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "canonical" true (Bdd.equal a b)

let test_node_limit () =
  let m = Bdd.manager ~max_nodes:8 () in
  match
    List.fold_left
      (fun acc i -> Bdd.bdd_xor m acc (Bdd.var m i))
      (Bdd.zero m)
      (List.init 20 Fun.id)
  with
  | exception Bdd.Node_limit_exceeded -> ()
  | _ -> Alcotest.fail "8 nodes cannot hold xor of 20 variables"

let test_sat_count_examples () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 1e-9)) "x over 2 vars" 2. (Bdd.sat_count m ~nvars:2 x);
  Alcotest.(check (float 1e-9)) "x&y" 1. (Bdd.sat_count m ~nvars:2 (Bdd.bdd_and m x y));
  Alcotest.(check (float 1e-9)) "x|y" 3. (Bdd.sat_count m ~nvars:2 (Bdd.bdd_or m x y));
  Alcotest.(check (float 1e-9)) "xor" 2. (Bdd.sat_count m ~nvars:2 (Bdd.bdd_xor m x y));
  Alcotest.(check (float 1e-9)) "one over 3 vars" 8.
    (Bdd.sat_count m ~nvars:3 (Bdd.one m))

let test_any_sat () =
  let m = Bdd.manager () in
  let f = Bdd.bdd_and m (Bdd.var m 0) (Bdd.nvar m 2) in
  let assignment = Bdd.any_sat m f in
  let lookup v = try List.assoc v assignment with Not_found -> false in
  Alcotest.(check bool) "assignment satisfies" true (Bdd.eval m f lookup);
  match Bdd.any_sat m (Bdd.zero m) with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "zero has no model"

(* random 3-variable boolean expressions, checked against direct evaluation *)
type expr =
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

let gen_expr =
  QCheck2.Gen.(
    sized_size (int_range 1 6)
      (fix (fun self n ->
           if n <= 1 then map (fun v -> Var v) (int_range 0 3)
           else
             oneof
               [
                 map (fun e -> Not e) (self (n - 1));
                 map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2));
               ])))

let rec eval_expr env = function
  | Var v -> env v
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let rec to_bdd m = function
  | Var v -> Bdd.var m v
  | Not e -> Bdd.bdd_not m (to_bdd m e)
  | And (a, b) -> Bdd.bdd_and m (to_bdd m a) (to_bdd m b)
  | Or (a, b) -> Bdd.bdd_or m (to_bdd m a) (to_bdd m b)
  | Xor (a, b) -> Bdd.bdd_xor m (to_bdd m a) (to_bdd m b)

let prop_bdd_matches_semantics =
  QCheck2.Test.make ~count:500 ~name:"BDD agrees with direct evaluation"
    gen_expr (fun e ->
      let m = Bdd.manager () in
      let bdd = to_bdd m e in
      List.for_all
        (fun bits ->
          let env v = (bits lsr v) land 1 = 1 in
          Bdd.eval m bdd env = eval_expr env e)
        (List.init 16 Fun.id))

let prop_ite_consistent =
  QCheck2.Test.make ~count:200 ~name:"ite(i,t,e) = (i&t)|(~i&e)"
    QCheck2.Gen.(triple gen_expr gen_expr gen_expr)
    (fun (i, t, e) ->
      let m = Bdd.manager () in
      let bi = to_bdd m i and bt = to_bdd m t and be = to_bdd m e in
      let via_ite = Bdd.ite m bi bt be in
      List.for_all
        (fun bits ->
          let env v = (bits lsr v) land 1 = 1 in
          Bdd.eval m via_ite env
          = if eval_expr env i then eval_expr env t else eval_expr env e)
        (List.init 16 Fun.id))

(* --- colouring with BDDs --- *)

let triangle = G.Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]

let test_bdd_coloring_triangle () =
  (match CB.k_colorable triangle ~k:2 with
  | CB.Uncolorable -> ()
  | CB.Colorable _ -> Alcotest.fail "triangle 2-colourable?"
  | CB.Node_limit -> Alcotest.fail "node limit on a triangle");
  match CB.k_colorable triangle ~k:3 with
  | CB.Colorable c ->
      Alcotest.(check bool) "proper" true (G.Coloring.is_proper triangle ~k:3 c)
  | CB.Uncolorable | CB.Node_limit -> Alcotest.fail "triangle is 3-colourable"

let test_bdd_counts_triangle () =
  (* proper 3-colourings of a triangle: 3! = 6 *)
  match CB.count_colorings triangle ~k:3 with
  | Some count -> Alcotest.(check (float 1e-9)) "3! colourings" 6. count
  | None -> Alcotest.fail "node limit"

let test_bdd_node_limit_is_reachable () =
  (* a modest conflict graph already blows a small node budget — the
     scalability cliff the paper's Sect. 1 describes *)
  let spec = List.hd Fpgasat_fpga.Benchmarks.specs in
  let inst = Fpgasat_fpga.Benchmarks.build spec in
  match CB.k_colorable ~max_nodes:20_000 inst.Fpgasat_fpga.Benchmarks.graph ~k:5 with
  | CB.Node_limit -> ()
  | CB.Colorable _ | CB.Uncolorable ->
      Alcotest.fail "expected the BDD to exceed 20k nodes on alu2"

let brute_colorable g k =
  let n = G.Graph.num_vertices g in
  let coloring = Array.make (max n 1) 0 in
  let rec go v =
    if v = n then true
    else
      let ok c =
        List.for_all (fun w -> w > v || coloring.(w) <> c) (G.Graph.neighbors g v)
      in
      let rec try_c c =
        c < k
        && ((ok c
            &&
            (coloring.(v) <- c;
             go (v + 1)))
           || try_c (c + 1))
      in
      try_c 0
  in
  n = 0 || go 0

let brute_count g k =
  let n = G.Graph.num_vertices g in
  let coloring = Array.make (max n 1) (-1) in
  let count = ref 0 in
  let rec go v =
    if v = n then incr count
    else
      for c = 0 to k - 1 do
        let ok =
          List.for_all (fun w -> coloring.(w) <> c) (G.Graph.neighbors g v)
        in
        if ok then begin
          coloring.(v) <- c;
          go (v + 1);
          coloring.(v) <- -1
        end
      done
  in
  go 0;
  !count

let gen_small_graph =
  QCheck2.Gen.(
    let* n = int_range 1 6 in
    let* k = int_range 1 3 in
    let* edges =
      list_repeat (2 * n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, k, List.filter (fun (u, v) -> u <> v) edges))

let prop_bdd_coloring_agrees =
  QCheck2.Test.make ~count:200 ~name:"BDD colouring agrees with brute force"
    gen_small_graph (fun (n, k, edges) ->
      let g = G.Graph.of_edges n edges in
      match CB.k_colorable g ~k with
      | CB.Colorable c -> brute_colorable g k && G.Coloring.is_proper g ~k c
      | CB.Uncolorable -> not (brute_colorable g k)
      | CB.Node_limit -> false)

let prop_bdd_count_agrees =
  QCheck2.Test.make ~count:200 ~name:"BDD model count = number of colourings"
    gen_small_graph (fun (n, k, edges) ->
      let g = G.Graph.of_edges n edges in
      match CB.count_colorings g ~k with
      | Some count -> int_of_float count = brute_count g k
      | None -> false)

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "bdd"
    [
      ( "core",
        Alcotest.test_case "terminals" `Quick test_terminals
        :: Alcotest.test_case "var semantics" `Quick test_var_semantics
        :: Alcotest.test_case "hash consing" `Quick test_hash_consing
        :: Alcotest.test_case "node limit" `Quick test_node_limit
        :: Alcotest.test_case "sat count" `Quick test_sat_count_examples
        :: Alcotest.test_case "any sat" `Quick test_any_sat
        :: qtests [ prop_bdd_matches_semantics; prop_ite_consistent ] );
      ( "coloring",
        Alcotest.test_case "triangle" `Quick test_bdd_coloring_triangle
        :: Alcotest.test_case "counting" `Quick test_bdd_counts_triangle
        :: Alcotest.test_case "node limit reachable" `Quick
             test_bdd_node_limit_is_reachable
        :: qtests [ prop_bdd_coloring_agrees; prop_bdd_count_agrees ] );
    ]
