(* Tests for the FPGA substrate: architecture geometry, netlists, global
   routing validity, congestion, the conflict-graph reduction, and
   detailed-routing verification. *)

module F = Fpgasat_fpga
module G = Fpgasat_graph
module Arch = F.Arch
module Netlist = F.Netlist

let arch4 = Arch.create 4

(* --- architecture --- *)

let test_arch_segment_count () =
  (* n=4: vertical (n+1)*n = 20, horizontal 20 *)
  Alcotest.(check int) "segments" 40 (Arch.num_segments arch4);
  Alcotest.(check int) "n=1" 4 (Arch.num_segments (Arch.create 1))

let test_arch_id_roundtrip () =
  List.iter
    (fun id ->
      let s = Arch.segment_of_id arch4 id in
      Alcotest.(check int) "id roundtrip" id (Arch.segment_id arch4 s))
    (List.init (Arch.num_segments arch4) Fun.id)

let test_arch_ids_distinct () =
  let ids =
    List.map (Arch.segment_id arch4) (Arch.all_segments arch4) |> List.sort_uniq compare
  in
  Alcotest.(check int) "all distinct" (Arch.num_segments arch4) (List.length ids)

let test_arch_bounds () =
  Alcotest.(check bool) "v in" true
    (Arch.in_bounds arch4 { Arch.dir = Arch.Vertical; sx = 4; sy = 3 });
  Alcotest.(check bool) "v out (sy)" false
    (Arch.in_bounds arch4 { Arch.dir = Arch.Vertical; sx = 0; sy = 4 });
  Alcotest.(check bool) "h in" true
    (Arch.in_bounds arch4 { Arch.dir = Arch.Horizontal; sx = 3; sy = 4 });
  Alcotest.(check bool) "h out (sx)" false
    (Arch.in_bounds arch4 { Arch.dir = Arch.Horizontal; sx = 4; sy = 0 });
  Alcotest.check_raises "segment_id oob"
    (Invalid_argument "Arch.segment_id: out of bounds") (fun () ->
      ignore (Arch.segment_id arch4 { Arch.dir = Arch.Vertical; sx = 9; sy = 0 }))

let test_arch_cell_segments () =
  let segs = Arch.cell_segments arch4 (1, 2) in
  Alcotest.(check int) "four connection blocks" 4 (List.length segs);
  Alcotest.(check bool) "left" true
    (List.mem { Arch.dir = Arch.Vertical; sx = 1; sy = 2 } segs);
  Alcotest.(check bool) "right" true
    (List.mem { Arch.dir = Arch.Vertical; sx = 2; sy = 2 } segs);
  Alcotest.(check bool) "bottom" true
    (List.mem { Arch.dir = Arch.Horizontal; sx = 1; sy = 2 } segs);
  Alcotest.(check bool) "top" true
    (List.mem { Arch.dir = Arch.Horizontal; sx = 1; sy = 3 } segs)

let test_arch_adjacency_symmetric () =
  List.iter
    (fun s ->
      List.iter
        (fun s' ->
          Alcotest.(check bool) "symmetric" true (Arch.segments_touch arch4 s' s))
        (Arch.adjacent_segments arch4 s))
    (Arch.all_segments arch4)

let test_arch_adjacency_interior_count () =
  (* an interior vertical segment touches 6 others: at each of its two
     switch blocks, the collinear continuation plus two crossing horizontal
     segments *)
  let s = { Arch.dir = Arch.Vertical; sx = 2; sy = 1 } in
  Alcotest.(check int) "interior degree" 6
    (List.length (Arch.adjacent_segments arch4 s))

(* --- netlist --- *)

let test_netlist_decomposition () =
  let nets =
    [
      { Netlist.net_id = 0; source = (0, 0); sinks = [ (1, 1); (2, 2) ] };
      { Netlist.net_id = 1; source = (3, 3); sinks = [ (0, 3) ] };
    ]
  in
  let nl = Netlist.make nets in
  Alcotest.(check int) "nets" 2 (Netlist.num_nets nl);
  Alcotest.(check int) "subnets (star)" 3 (Netlist.num_subnets nl);
  Alcotest.(check int) "subnets of net 0" 2
    (List.length (Netlist.subnets_of_net nl 0));
  List.iter
    (fun (s : Netlist.subnet) ->
      Alcotest.(check (pair int int)) "source kept" (0, 0) s.Netlist.from_cell)
    (Netlist.subnets_of_net nl 0)

let test_netlist_rejects_bad () =
  let bad_empty = [ { Netlist.net_id = 0; source = (0, 0); sinks = [] } ] in
  Alcotest.check_raises "no sinks"
    (Invalid_argument "Netlist.make: net without sinks") (fun () ->
      ignore (Netlist.make bad_empty));
  let bad_self =
    [ { Netlist.net_id = 0; source = (0, 0); sinks = [ (0, 0) ] } ]
  in
  Alcotest.check_raises "source as sink"
    (Invalid_argument "Netlist.make: source listed as sink") (fun () ->
      ignore (Netlist.make bad_self));
  let dup =
    [
      { Netlist.net_id = 0; source = (0, 0); sinks = [ (1, 1) ] };
      { Netlist.net_id = 0; source = (2, 2); sinks = [ (1, 1) ] };
    ]
  in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Netlist.make: duplicate net ids") (fun () ->
      ignore (Netlist.make dup))

let test_netlist_random_well_formed () =
  let rng = F.Rng.create 7 in
  let nl =
    Netlist.random ~rng ~arch:(Arch.create 6) ~num_nets:30 ~max_fanout:4
      ~locality:2
  in
  Alcotest.(check int) "requested nets" 30 (Netlist.num_nets nl);
  Array.iter
    (fun (s : Netlist.subnet) ->
      Alcotest.(check bool) "distinct endpoints" true
        (s.Netlist.from_cell <> s.Netlist.to_cell))
    nl.Netlist.subnets

let test_rng_deterministic () =
  let a = F.Rng.create 42 and b = F.Rng.create 42 in
  let xs = List.init 20 (fun _ -> F.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> F.Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys;
  List.iter
    (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 1000))
    xs

let test_rng_shuffle_permutation () =
  let rng = F.Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  F.Rng.shuffle rng arr;
  Alcotest.(check (list int)) "permutation" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list arr))

(* --- global routing --- *)

let small_netlist =
  Netlist.make
    [
      { Netlist.net_id = 0; source = (0, 0); sinks = [ (3, 3) ] };
      { Netlist.net_id = 1; source = (0, 3); sinks = [ (3, 0) ] };
      { Netlist.net_id = 2; source = (1, 1); sinks = [ (2, 1); (1, 2) ] };
    ]

let test_router_produces_valid_routes () =
  (* Global_route.make validates connectivity and endpoints; make_exn inside
     the router raising would fail this test *)
  let gr = F.Global_router.route arch4 small_netlist in
  Alcotest.(check int) "all subnets routed" 4
    (Array.length gr.F.Global_route.paths);
  Array.iter
    (fun path -> Alcotest.(check bool) "non-empty" true (path <> []))
    gr.F.Global_route.paths

let test_router_deterministic () =
  let g1 = F.Global_router.route arch4 small_netlist in
  let g2 = F.Global_router.route arch4 small_netlist in
  Alcotest.(check bool) "same paths" true
    (g1.F.Global_route.paths = g2.F.Global_route.paths)

let test_global_route_validation () =
  let nl =
    Netlist.make [ { Netlist.net_id = 0; source = (0, 0); sinks = [ (3, 3) ] } ]
  in
  (* wrong endpoint: a segment near neither cell *)
  let bogus = [| [ { Arch.dir = Arch.Vertical; sx = 2; sy = 2 } ] |] in
  (match F.Global_route.make arch4 nl bogus with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus path accepted");
  (* disconnected path *)
  let disconnected =
    [|
      [
        { Arch.dir = Arch.Vertical; sx = 0; sy = 0 };
        { Arch.dir = Arch.Vertical; sx = 3; sy = 3 };
      ];
    |]
  in
  (match F.Global_route.make arch4 nl disconnected with
  | Error msg ->
      Alcotest.(check bool) "mentions disconnection" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "disconnected path accepted");
  (* wrong array length *)
  match F.Global_route.make arch4 nl [||] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "length mismatch accepted"

let test_wirelength_positive () =
  let gr = F.Global_router.route arch4 small_netlist in
  Alcotest.(check bool) "positive wirelength" true
    (F.Global_route.total_wirelength gr >= 4)

(* --- congestion --- *)

let test_congestion_basics () =
  let gr = F.Global_router.route arch4 small_netlist in
  let c = F.Congestion.of_route gr in
  let m = F.Congestion.max_congestion c in
  Alcotest.(check bool) "max >= 1" true (m >= 1);
  Alcotest.(check bool) "busiest nonempty" true (F.Congestion.busiest c <> []);
  List.iter
    (fun (seg, u) ->
      Alcotest.(check int) "busiest usage = max" m (F.Congestion.segment_usage c seg);
      Alcotest.(check int) "pair consistent" m u)
    (F.Congestion.busiest c);
  let hist_total = List.fold_left (fun acc (_, n) -> acc + n) 0 (F.Congestion.histogram c) in
  Alcotest.(check bool) "histogram covers used segments" true (hist_total >= 1)

let test_congestion_same_net_counts_once () =
  (* two subnets of one net through the same area: usage counts parents *)
  let nl =
    Netlist.make
      [ { Netlist.net_id = 0; source = (1, 1); sinks = [ (1, 3); (1, 2) ] } ]
  in
  let gr = F.Global_router.route arch4 nl in
  let c = F.Congestion.of_route gr in
  Alcotest.(check int) "single net never congests" 1 (F.Congestion.max_congestion c)

(* --- conflict graph --- *)

let test_conflict_graph_no_same_net_edges () =
  let gr = F.Global_router.route arch4 small_netlist in
  let g = F.Conflict_graph.build gr in
  let parent i = gr.F.Global_route.netlist.Netlist.subnets.(i).Netlist.parent in
  G.Graph.iter_edges
    (fun u v ->
      Alcotest.(check bool) "different parents" true (parent u <> parent v))
    g;
  Alcotest.(check int) "one vertex per subnet"
    (Netlist.num_subnets small_netlist)
    (G.Graph.num_vertices g)

let test_conflict_graph_edges_share_segment () =
  let gr = F.Global_router.route arch4 small_netlist in
  let g = F.Conflict_graph.build gr in
  G.Graph.iter_edges
    (fun u v ->
      let su = F.Global_route.segments_used gr u in
      let sv = F.Global_route.segments_used gr v in
      Alcotest.(check bool) "share a segment" true
        (List.exists (fun s -> List.mem s sv) su))
    g

let test_conflict_graph_clique_at_congestion () =
  (* the subnets on the busiest segment, one per distinct net, must form a
     clique in the conflict graph — the structural reason max congestion
     lower-bounds the channel width *)
  let spec = List.hd F.Benchmarks.specs in
  let inst = F.Benchmarks.build spec in
  let gr = inst.F.Benchmarks.route in
  let c = F.Congestion.of_route gr in
  let seg, usage =
    match F.Congestion.busiest c with
    | hd :: _ -> hd
    | [] -> Alcotest.fail "no busy segment"
  in
  let sid = Arch.segment_id inst.F.Benchmarks.arch seg in
  let parent i = gr.F.Global_route.netlist.Netlist.subnets.(i).Netlist.parent in
  let on_seg =
    List.filter
      (fun i -> List.mem sid (F.Global_route.segments_used gr i))
      (List.init (Netlist.num_subnets gr.F.Global_route.netlist) Fun.id)
  in
  (* one representative subnet per parent net *)
  let reps =
    List.sort_uniq compare (List.map parent on_seg)
    |> List.map (fun p -> List.find (fun i -> parent i = p) on_seg)
  in
  Alcotest.(check int) "one rep per congesting net" usage (List.length reps);
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          if u <> v then
            Alcotest.(check bool) "clique edge" true
              (G.Graph.mem_edge inst.F.Benchmarks.graph u v))
        reps)
    reps

(* --- detailed routing --- *)

let test_detailed_route_verify () =
  let gr = F.Global_router.route arch4 small_netlist in
  let g = F.Conflict_graph.build gr in
  let k = G.Greedy.upper_bound g in
  let coloring = G.Greedy.dsatur g in
  (match F.Detailed_route.of_coloring gr ~width:k coloring with
  | Ok d ->
      Array.iteri
        (fun id _ ->
          let t = F.Detailed_route.track d id in
          Alcotest.(check bool) "track in range" true (t >= 0 && t < k))
        gr.F.Global_route.paths;
      Alcotest.(check bool) "occupancy nonempty" true
        (F.Detailed_route.channel_occupancy d <> [])
  | Error v ->
      Alcotest.fail
        (Format.asprintf "proper colouring rejected: %a" F.Detailed_route.pp_violation v));
  (* a uniform track assignment must be rejected when there are conflicts *)
  let all_zero = Array.make (Netlist.num_subnets small_netlist) 0 in
  if G.Graph.num_edges g > 0 then
    match F.Detailed_route.verify gr ~width:k all_zero with
    | Error (F.Detailed_route.Segment_conflict _) -> ()
    | Error (F.Detailed_route.Track_out_of_range _) -> Alcotest.fail "wrong violation"
    | Ok () -> Alcotest.fail "conflicting assignment accepted"

let test_detailed_route_track_range () =
  let gr = F.Global_router.route arch4 small_netlist in
  let n = Netlist.num_subnets small_netlist in
  let bad = Array.make n 5 in
  match F.Detailed_route.verify gr ~width:3 bad with
  | Error (F.Detailed_route.Track_out_of_range _) -> ()
  | Error (F.Detailed_route.Segment_conflict _) | Ok () ->
      Alcotest.fail "out-of-range track accepted"

(* --- serialisation --- *)

let test_netlist_serialisation_roundtrip () =
  let arch, nl = (arch4, small_netlist) in
  let text = F.Serial.netlist_to_string arch nl in
  let arch', nl' = F.Serial.netlist_of_string text in
  Alcotest.(check int) "arch size" (Arch.size arch) (Arch.size arch');
  Alcotest.(check int) "nets" (Netlist.num_nets nl) (Netlist.num_nets nl');
  Alcotest.(check int) "subnets" (Netlist.num_subnets nl) (Netlist.num_subnets nl');
  Array.iteri
    (fun i (s : Netlist.subnet) ->
      let s' = nl'.Netlist.subnets.(i) in
      Alcotest.(check bool) "same subnet" true
        (s.Netlist.from_cell = s'.Netlist.from_cell
        && s.Netlist.to_cell = s'.Netlist.to_cell
        && s.Netlist.parent = s'.Netlist.parent))
    nl.Netlist.subnets

let test_routes_serialisation_roundtrip () =
  let gr = F.Global_router.route arch4 small_netlist in
  let text = F.Serial.routes_to_string gr in
  let gr' = F.Serial.routes_of_string ~netlist:small_netlist text in
  Alcotest.(check bool) "same paths" true
    (gr.F.Global_route.paths = gr'.F.Global_route.paths)

let expect_serial_error f =
  match f () with
  | exception F.Serial.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed input accepted"

let test_serialisation_errors () =
  expect_serial_error (fun () -> F.Serial.netlist_of_string "");
  expect_serial_error (fun () -> F.Serial.netlist_of_string "fpga 0\n");
  expect_serial_error (fun () -> F.Serial.netlist_of_string "fpga 4\nnet x (0,0) -> (1,1)");
  expect_serial_error (fun () -> F.Serial.netlist_of_string "fpga 4\nnet 0 (0,0) ->");
  expect_serial_error (fun () -> F.Serial.netlist_of_string "fpga 2\nnet 0 (0,0) -> (5,5)");
  expect_serial_error (fun () ->
      F.Serial.routes_of_string ~netlist:small_netlist "fpga 4\nsubnet 0 : Q(1,1)");
  expect_serial_error (fun () ->
      (* missing subnets *)
      F.Serial.routes_of_string ~netlist:small_netlist "fpga 4\nsubnet 0 : V(0,0)")

let test_serialisation_files () =
  let gr = F.Global_router.route arch4 small_netlist in
  let nets_file = Filename.temp_file "fpgasat" ".nets" in
  let routes_file = Filename.temp_file "fpgasat" ".routes" in
  F.Serial.write_netlist nets_file arch4 small_netlist;
  F.Serial.write_routes routes_file gr;
  let _, nl' = F.Serial.read_netlist nets_file in
  let gr' = F.Serial.read_routes ~netlist:nl' routes_file in
  Sys.remove nets_file;
  Sys.remove routes_file;
  Alcotest.(check int) "roundtrip wirelength"
    (F.Global_route.total_wirelength gr)
    (F.Global_route.total_wirelength gr')

(* --- rendering --- *)

let test_render_congestion_map () =
  let gr = F.Global_router.route arch4 small_netlist in
  let s = F.Render.congestion_map gr in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  (* n rows of cells + n+1 channel rows + 1 axis row *)
  Alcotest.(check int) "line count" (4 + 5 + 1) (List.length lines);
  Alcotest.(check bool) "mentions a cell" true
    (List.exists (fun l ->
         let rec has i = i + 3 <= String.length l && (String.sub l i 3 = "[ ]" || has (i+1)) in
         has 0) lines)

let test_render_subnet_path () =
  let gr = F.Global_router.route arch4 small_netlist in
  let s = F.Render.subnet_path gr 0 in
  let rec contains i needle =
    i + String.length needle <= String.length s
    && (String.sub s i (String.length needle) = needle || contains (i + 1) needle)
  in
  Alcotest.(check bool) "marks the path" true (contains 0 "#");
  Alcotest.(check bool) "header mentions subnet" true (contains 0 "subnet 0")

let prop_histogram_covers_used_segments =
  QCheck2.Test.make ~count:50 ~name:"congestion histogram counts used segments"
    QCheck2.Gen.(
      let* seed = int_range 0 5_000 in
      let* n = int_range 2 6 in
      let* nets = int_range 1 10 in
      return (seed, n, nets))
    (fun (seed, n, nets) ->
      let arch = Arch.create n in
      let rng = F.Rng.create seed in
      let nl = Netlist.random ~rng ~arch ~num_nets:nets ~max_fanout:3 ~locality:2 in
      let gr = F.Global_router.route arch nl in
      let c = F.Congestion.of_route gr in
      let hist_total =
        List.fold_left (fun acc (_, count) -> acc + count) 0 (F.Congestion.histogram c)
      in
      let used =
        List.length
          (List.filter
             (fun seg -> F.Congestion.segment_usage c seg > 0)
             (Arch.all_segments arch))
      in
      hist_total = used)

let prop_render_never_crashes =
  QCheck2.Test.make ~count:30 ~name:"rendering is total"
    QCheck2.Gen.(
      let* seed = int_range 0 5_000 in
      let* n = int_range 2 6 in
      return (seed, n))
    (fun (seed, n) ->
      let arch = Arch.create n in
      let rng = F.Rng.create seed in
      let nl = Netlist.random ~rng ~arch ~num_nets:5 ~max_fanout:2 ~locality:2 in
      let gr = F.Global_router.route arch nl in
      String.length (F.Render.congestion_map gr) > 0
      && List.for_all
           (fun id -> String.length (F.Render.subnet_path gr id) > 0)
           (List.init (Netlist.num_subnets nl) Fun.id))

let prop_serial_roundtrip_random =
  QCheck2.Test.make ~count:50 ~name:"serialisation roundtrips random designs"
    QCheck2.Gen.(
      let* seed = int_range 0 5_000 in
      let* n = int_range 2 6 in
      let* nets = int_range 1 8 in
      return (seed, n, nets))
    (fun (seed, n, nets) ->
      let arch = Arch.create n in
      let rng = F.Rng.create seed in
      let nl = Netlist.random ~rng ~arch ~num_nets:nets ~max_fanout:3 ~locality:2 in
      let gr = F.Global_router.route arch nl in
      let _, nl' = F.Serial.netlist_of_string (F.Serial.netlist_to_string arch nl) in
      let gr' = F.Serial.routes_of_string ~netlist:nl' (F.Serial.routes_to_string gr) in
      gr.F.Global_route.paths = gr'.F.Global_route.paths)

(* --- benchmarks --- *)

let test_benchmark_suite_shape () =
  Alcotest.(check int) "eight benchmarks" 8 (List.length F.Benchmarks.specs);
  Alcotest.(check (list string)) "paper order"
    [ "alu2"; "too_large"; "alu4"; "C880"; "apex7"; "C1355"; "vda"; "k2" ]
    F.Benchmarks.names;
  Alcotest.(check bool) "find case-insensitive" true
    (F.Benchmarks.find "ALU2" <> None);
  Alcotest.(check bool) "find missing" true (F.Benchmarks.find "nope" = None)

let test_benchmark_build_deterministic () =
  let spec = List.hd F.Benchmarks.specs in
  let a = F.Benchmarks.build spec and b = F.Benchmarks.build spec in
  Alcotest.(check int) "same edges"
    (G.Graph.num_edges a.F.Benchmarks.graph)
    (G.Graph.num_edges b.F.Benchmarks.graph);
  Alcotest.(check (list (pair int int))) "identical conflict graph"
    (G.Graph.edges a.F.Benchmarks.graph)
    (G.Graph.edges b.F.Benchmarks.graph)

let test_benchmark_fingerprints () =
  (* the calibrated suite is part of the reproduction: pin each instance's
     conflict-graph shape so parameter drift is caught immediately
     (expected values recorded from the calibration run; see DESIGN.md) *)
  let expected =
    [
      ("alu2", 138, 552, 6);
      ("too_large", 150, 609, 6);
      ("alu4", 365, 2296, 8);
      ("C880", 383, 2556, 9);
      ("apex7", 269, 1953, 8);
      ("C1355", 301, 1785, 8);
      ("vda", 496, 3457, 9);
      ("k2", 443, 3106, 9);
    ]
  in
  List.iter
    (fun (name, vertices, edges, congestion) ->
      let inst = F.Benchmarks.build (Option.get (F.Benchmarks.find name)) in
      Alcotest.(check int) (name ^ " vertices") vertices
        (G.Graph.num_vertices inst.F.Benchmarks.graph);
      Alcotest.(check int) (name ^ " edges") edges
        (G.Graph.num_edges inst.F.Benchmarks.graph);
      Alcotest.(check int) (name ^ " congestion") congestion
        inst.F.Benchmarks.max_congestion)
    expected

let prop_random_routes_valid =
  QCheck2.Test.make ~count:25 ~name:"random netlists route validly"
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* n = int_range 2 6 in
      let* nets = int_range 1 12 in
      return (seed, n, nets))
    (fun (seed, n, nets) ->
      let arch = Arch.create n in
      let rng = F.Rng.create seed in
      let nl =
        Netlist.random ~rng ~arch ~num_nets:nets ~max_fanout:3 ~locality:2
      in
      (* Global_route.make inside the router validates; also check the
         conflict graph is consistent *)
      let gr = F.Global_router.route arch nl in
      let g = F.Conflict_graph.build gr in
      G.Graph.num_vertices g = Netlist.num_subnets nl)

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "fpga"
    [
      ( "arch",
        [
          Alcotest.test_case "segment count" `Quick test_arch_segment_count;
          Alcotest.test_case "id roundtrip" `Quick test_arch_id_roundtrip;
          Alcotest.test_case "ids distinct" `Quick test_arch_ids_distinct;
          Alcotest.test_case "bounds" `Quick test_arch_bounds;
          Alcotest.test_case "cell segments" `Quick test_arch_cell_segments;
          Alcotest.test_case "adjacency symmetric" `Quick test_arch_adjacency_symmetric;
          Alcotest.test_case "interior adjacency count" `Quick
            test_arch_adjacency_interior_count;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "decomposition" `Quick test_netlist_decomposition;
          Alcotest.test_case "rejects bad nets" `Quick test_netlist_rejects_bad;
          Alcotest.test_case "random well-formed" `Quick test_netlist_random_well_formed;
          Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "routing",
        [
          Alcotest.test_case "valid routes" `Quick test_router_produces_valid_routes;
          Alcotest.test_case "deterministic" `Quick test_router_deterministic;
          Alcotest.test_case "validation" `Quick test_global_route_validation;
          Alcotest.test_case "wirelength" `Quick test_wirelength_positive;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "basics" `Quick test_congestion_basics;
          Alcotest.test_case "same net counts once" `Quick
            test_congestion_same_net_counts_once;
        ] );
      ( "conflict-graph",
        [
          Alcotest.test_case "no same-net edges" `Quick
            test_conflict_graph_no_same_net_edges;
          Alcotest.test_case "edges share a segment" `Quick
            test_conflict_graph_edges_share_segment;
          Alcotest.test_case "clique at congestion" `Quick
            test_conflict_graph_clique_at_congestion;
        ] );
      ( "detailed-route",
        [
          Alcotest.test_case "verify" `Quick test_detailed_route_verify;
          Alcotest.test_case "track range" `Quick test_detailed_route_track_range;
        ] );
      ( "properties",
        qtests
          [
            prop_histogram_covers_used_segments; prop_render_never_crashes;
            prop_serial_roundtrip_random;
          ] );
      ( "serial",
        [
          Alcotest.test_case "netlist roundtrip" `Quick
            test_netlist_serialisation_roundtrip;
          Alcotest.test_case "routes roundtrip" `Quick
            test_routes_serialisation_roundtrip;
          Alcotest.test_case "errors" `Quick test_serialisation_errors;
          Alcotest.test_case "file io" `Quick test_serialisation_files;
        ] );
      ( "render",
        [
          Alcotest.test_case "congestion map" `Quick test_render_congestion_map;
          Alcotest.test_case "subnet path" `Quick test_render_subnet_path;
        ] );
      ( "benchmarks",
        Alcotest.test_case "suite shape" `Quick test_benchmark_suite_shape
        :: Alcotest.test_case "deterministic" `Quick test_benchmark_build_deterministic
        :: Alcotest.test_case "fingerprints" `Quick test_benchmark_fingerprints
        :: qtests [ prop_random_routes_valid ] );
    ]
