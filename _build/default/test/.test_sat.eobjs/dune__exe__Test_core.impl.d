test/test_core.ml: Alcotest Array Fpgasat_core Fpgasat_encodings Fpgasat_fpga Fpgasat_graph Fpgasat_sat List Option Printf String
