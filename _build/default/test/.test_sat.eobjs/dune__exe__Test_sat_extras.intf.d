test/test_sat_extras.mli:
