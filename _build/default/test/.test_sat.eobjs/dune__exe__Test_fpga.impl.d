test/test_fpga.ml: Alcotest Array Filename Format Fpgasat_fpga Fpgasat_graph Fun List Option QCheck2 QCheck_alcotest String Sys
