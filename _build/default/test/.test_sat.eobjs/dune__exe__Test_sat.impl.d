test/test_sat.ml: Alcotest Array Filename Fpgasat_sat List Printf QCheck2 QCheck_alcotest Sys
