test/test_encodings.ml: Alcotest Array Fpgasat_encodings Fpgasat_graph Fpgasat_sat Fun List Printf QCheck2 QCheck_alcotest String
