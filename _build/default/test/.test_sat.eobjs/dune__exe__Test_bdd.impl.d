test/test_bdd.ml: Alcotest Array Fpgasat_bdd Fpgasat_fpga Fpgasat_graph Fun List QCheck2 QCheck_alcotest
