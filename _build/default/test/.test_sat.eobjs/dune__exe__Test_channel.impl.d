test/test_channel.ml: Alcotest Array Format Fpgasat_channel Fpgasat_encodings Fpgasat_fpga List QCheck2 QCheck_alcotest Result
