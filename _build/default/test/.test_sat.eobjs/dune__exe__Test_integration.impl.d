test/test_integration.ml: Alcotest Filename Format Fpgasat_core Fpgasat_encodings Fpgasat_fpga Fpgasat_graph Fpgasat_sat List Option Sys
