test/test_graph.ml: Alcotest Array Filename Format Fpgasat_graph Fun List Printf QCheck2 QCheck_alcotest String Sys
