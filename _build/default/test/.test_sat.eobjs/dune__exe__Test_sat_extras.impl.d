test/test_sat_extras.ml: Alcotest Array Format Fpgasat_sat List QCheck2 QCheck_alcotest Result
