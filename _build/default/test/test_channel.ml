(* Tests for segmented channel routing: the channel model (segments,
   feasibility, conflicts, verification) and the SAT flow, cross-checked
   against a brute-force assignment search. *)

module Ch = Fpgasat_channel.Segmented_channel
module Cs = Fpgasat_channel.Channel_sat
module E = Fpgasat_encodings
module F = Fpgasat_fpga

let conn = Ch.connection

(* --- channel model --- *)

let test_segments () =
  let ch = Ch.make ~length:10 ~cuts:[| [ 3; 7 ]; [] |] in
  Alcotest.(check (list (pair int int)))
    "cut track" [ (0, 2); (3, 6); (7, 9) ] (Ch.segments ch 0);
  Alcotest.(check (list (pair int int))) "uncut track" [ (0, 9) ] (Ch.segments ch 1)

let test_uniform () =
  let ch = Ch.uniform ~length:9 ~tracks:2 ~segment_length:3 in
  Alcotest.(check (list (pair int int)))
    "uniform segments" [ (0, 2); (3, 5); (6, 8) ] (Ch.segments ch 0);
  Alcotest.(check int) "tracks" 2 (Ch.num_tracks ch)

let test_bad_cuts_rejected () =
  List.iter
    (fun cuts ->
      match Ch.make ~length:10 ~cuts:[| cuts |] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad cuts accepted")
    [ [ 0 ]; [ 10 ]; [ 5; 5 ]; [ 7; 3 ]; [ -1 ] ]

let test_segment_covering () =
  let ch = Ch.make ~length:10 ~cuts:[| [ 5 ] |] in
  Alcotest.(check (option int)) "left segment" (Some 0)
    (Ch.segment_covering ch ~track:0 ~left:1 ~right:4);
  Alcotest.(check (option int)) "right segment" (Some 1)
    (Ch.segment_covering ch ~track:0 ~left:5 ~right:9);
  Alcotest.(check (option int)) "crossing the cut" None
    (Ch.segment_covering ch ~track:0 ~left:3 ~right:6)

let test_feasible_tracks () =
  let ch = Ch.make ~length:10 ~cuts:[| [ 5 ]; [] |] in
  Alcotest.(check (list int)) "crossing connection" [ 1 ]
    (Ch.feasible_tracks ch (conn 0 3 6));
  Alcotest.(check (list int)) "short connection" [ 0; 1 ]
    (Ch.feasible_tracks ch (conn 1 0 2))

let test_conflicts () =
  let ch = Ch.make ~length:10 ~cuts:[| [ 5 ] |] in
  (* same left segment, even with disjoint spans: one conductor *)
  Alcotest.(check bool) "same segment conflicts" true
    (Ch.conflict_on_track ch (conn 0 0 1) (conn 1 3 4) ~track:0);
  Alcotest.(check bool) "different segments ok" false
    (Ch.conflict_on_track ch (conn 0 0 1) (conn 1 6 8) ~track:0)

let test_verify () =
  let ch = Ch.make ~length:10 ~cuts:[| [ 5 ]; [] |] in
  let conns = [ conn 0 0 2; conn 1 3 4; conn 2 6 9 ] in
  (match Ch.verify ch conns [| 0; 1; 0 |] with
  | Ok () -> ()
  | Error v -> Alcotest.fail (Format.asprintf "%a" Ch.pp_violation v));
  (match Ch.verify ch conns [| 0; 0; 0 |] with
  | Error (Ch.Shared_segment (0, 1)) -> ()
  | _ -> Alcotest.fail "shared conductor not caught");
  (match Ch.verify ch [ conn 0 3 6 ] [| 0 |] with
  | Error (Ch.Infeasible_track 0) -> ()
  | _ -> Alcotest.fail "crossing span not caught");
  match Ch.verify ch [ conn 0 0 1 ] [| 5 |] with
  | Error (Ch.Track_out_of_range 0) -> ()
  | _ -> Alcotest.fail "bad track not caught"

(* --- SAT routing --- *)

let brute_route ch conns =
  let k = Ch.num_tracks ch in
  let conns_arr = Array.of_list conns in
  let n = Array.length conns_arr in
  let assignment = Array.make n 0 in
  let rec go i =
    if i = n then Result.is_ok (Ch.verify ch conns assignment)
    else
      let rec try_track t =
        t < k
        && ((assignment.(i) <- t;
             let prefix_ok =
               (* partial check: conflicts only among assigned prefix *)
               let rec clash j =
                 j < i
                 && ((assignment.(j) = t
                     && Ch.conflict_on_track ch conns_arr.(i) conns_arr.(j)
                          ~track:t)
                    || clash (j + 1))
               in
               Ch.feasible_tracks ch conns_arr.(i) |> List.mem t && not (clash 0)
             in
             prefix_ok && go (i + 1))
           || try_track (t + 1))
      in
      try_track 0
  in
  n = 0 || go 0

let test_route_simple () =
  (* track 0: segments (0-4)(5-9); track 1: one conductor. The spanning
     connection 2-7 must take track 1, the short ones the two segments of
     track 0. *)
  let ch = Ch.make ~length:10 ~cuts:[| [ 5 ]; [] |] in
  let conns = [ conn 0 0 2; conn 1 6 9; conn 2 2 7 ] in
  match Cs.route ch conns with
  | Cs.Routed assignment ->
      Alcotest.(check bool) "verified" true
        (Result.is_ok (Ch.verify ch conns assignment))
  | Cs.Unroutable -> Alcotest.fail "this channel is routable"
  | Cs.Timeout -> Alcotest.fail "no budget set"

let test_route_unroutable () =
  (* two connections crossing the only cut on the only cut track, and one
     uncut track: three spans over column 4..5 but capacity 1 *)
  let ch = Ch.make ~length:10 ~cuts:[| [ 5 ] |] in
  match Cs.route ch [ conn 0 3 6; conn 1 4 7 ] with
  | Cs.Unroutable -> ()
  | Cs.Routed _ -> Alcotest.fail "impossible routing found"
  | Cs.Timeout -> Alcotest.fail "no budget set"

let test_route_empty () =
  let ch = Ch.make ~length:4 ~cuts:[| [] |] in
  match Cs.route ch [] with
  | Cs.Routed [||] -> ()
  | _ -> Alcotest.fail "empty routing"

let gen_instance =
  QCheck2.Gen.(
    let* length = int_range 4 12 in
    let* tracks = int_range 1 4 in
    let* seed = int_range 0 100_000 in
    let* nconns = int_range 1 8 in
    let* spans =
      list_repeat nconns
        (let* a = int_range 0 (length - 1) in
         let* b = int_range 0 (length - 1) in
         return (a, b))
    in
    return (length, tracks, seed, spans))

let prop_sat_agrees_with_brute_force =
  QCheck2.Test.make ~count:200 ~name:"channel SAT routing agrees with brute force"
    gen_instance (fun (length, tracks, seed, spans) ->
      let rng = F.Rng.create seed in
      let ch = Ch.random ~rng ~length ~tracks ~max_cuts:3 in
      let conns = List.mapi (fun i (a, b) -> conn i a b) spans in
      let expected = brute_route ch conns in
      match Cs.route ch conns with
      | Cs.Routed assignment ->
          expected && Result.is_ok (Ch.verify ch conns assignment)
      | Cs.Unroutable -> not expected
      | Cs.Timeout -> false)

let prop_encodings_agree_on_channels =
  QCheck2.Test.make ~count:100 ~name:"all encodings agree on channel instances"
    gen_instance (fun (length, tracks, seed, spans) ->
      let rng = F.Rng.create seed in
      let ch = Ch.random ~rng ~length ~tracks ~max_cuts:3 in
      let conns = List.mapi (fun i (a, b) -> conn i a b) spans in
      let verdict encoding =
        match Cs.route ~encoding ch conns with
        | Cs.Routed _ -> true
        | Cs.Unroutable -> false
        | Cs.Timeout -> failwith "timeout"
      in
      let verdicts = List.map verdict E.Registry.table2 in
      match verdicts with
      | [] -> true
      | v :: rest -> List.for_all (fun v' -> v = v') rest)

let qtests = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "channel"
    [
      ( "model",
        [
          Alcotest.test_case "segments" `Quick test_segments;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "bad cuts rejected" `Quick test_bad_cuts_rejected;
          Alcotest.test_case "segment covering" `Quick test_segment_covering;
          Alcotest.test_case "feasible tracks" `Quick test_feasible_tracks;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "verify" `Quick test_verify;
        ] );
      ( "sat",
        Alcotest.test_case "routes a simple channel" `Quick test_route_simple
        :: Alcotest.test_case "detects unroutability" `Quick test_route_unroutable
        :: Alcotest.test_case "empty" `Quick test_route_empty
        :: qtests
             [ prop_sat_agrees_with_brute_force; prop_encodings_agree_on_channels ]
      );
    ]
