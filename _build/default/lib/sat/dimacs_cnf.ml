exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

(* Tokenise into ints, tracking line numbers for error messages; the header
   determines how many variables to allocate, and each 0 closes a clause. *)
let parse_lines lines =
  let cnf = Cnf.create () in
  let header = ref None in
  let current = ref [] in
  let nclauses = ref 0 in
  let handle_token lineno tok =
    match !header with
    | None -> fail lineno (Printf.sprintf "unexpected token %S before header" tok)
    | Some (nv, _) -> (
        match int_of_string_opt tok with
        | None -> fail lineno (Printf.sprintf "not an integer: %S" tok)
        | Some 0 ->
            Cnf.add_clause cnf (List.rev !current);
            incr nclauses;
            current := []
        | Some d ->
            if abs d > nv then
              fail lineno
                (Printf.sprintf "literal %d out of range (header says %d vars)" d nv);
            current := Lit.of_dimacs d :: !current)
  in
  let handle_line lineno line =
    let line = String.trim line in
    if line = "" then ()
    else if line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      if !header <> None then fail lineno "duplicate header";
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "p"; "cnf"; nv; nc ] -> (
          match (int_of_string_opt nv, int_of_string_opt nc) with
          | Some nv, Some nc when nv >= 0 && nc >= 0 ->
              header := Some (nv, nc);
              Cnf.ensure_vars cnf nv
          | _ -> fail lineno "malformed p cnf header")
      | _ -> fail lineno "malformed p cnf header"
    end
    else
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
      |> List.iter (handle_token lineno)
  in
  List.iteri (fun i line -> handle_line (i + 1) line) lines;
  (match !header with
  | None -> raise (Parse_error "missing p cnf header")
  | Some _ -> ());
  if !current <> [] then raise (Parse_error "unterminated clause at end of input");
  cnf

let parse_string s = parse_lines (String.split_on_char '\n' s)

let parse_file path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  parse_lines lines

let output oc ?(comments = []) cnf =
  List.iter (fun c -> Printf.fprintf oc "c %s\n" c) comments;
  Printf.fprintf oc "p cnf %d %d\n" (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  Cnf.iter_clauses
    (fun lits ->
      Array.iter (fun l -> Printf.fprintf oc "%d " (Lit.to_dimacs l)) lits;
      output_string oc "0\n")
    cnf

let to_string ?comments cnf =
  let buf = Buffer.create 1024 in
  let comments = Option.value comments ~default:[] in
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "c %s\n" c)) comments;
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.num_vars cnf) (Cnf.num_clauses cnf));
  Cnf.iter_clauses
    (fun lits ->
      Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Lit.to_dimacs l))) lits;
      Buffer.add_string buf "0\n")
    cnf;
  Buffer.contents buf

let write_file path ?comments cnf =
  let oc = open_out path in
  (match comments with
  | Some c -> output oc ~comments:c cnf
  | None -> output oc cnf);
  close_out oc
