type params = { max_tries : int; max_flips : int; noise : float; seed : int }

let default_params =
  { max_tries = 20; max_flips = 200_000; noise = 0.5; seed = 1992 }

type result = Sat of bool array | Unknown

(* xorshift64, as in Solver, so results are machine-independent *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed =
    { state = Int64.of_int (if seed = 0 then 424242 else seed) }

  let next t =
    let x = t.state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    t.state <- x;
    x

  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. float_of_int (1 lsl 53)

  let int t bound =
    let v = int_of_float (float t *. float_of_int bound) in
    if v >= bound then bound - 1 else v
end

type state = {
  nvars : int;
  clauses : Lit.t array array;
  occ : int list array; (* literal -> clause indices containing it *)
  model : bool array;
  sat_count : int array; (* satisfied literals per clause *)
  unsat : int Vec.t; (* indices of unsatisfied clauses *)
  unsat_pos : int array; (* clause -> position in [unsat], or -1 *)
  rng : Rng.t;
}

let lit_true st l = st.model.(Lit.var l) = Lit.sign l

let unsat_add st c =
  if st.unsat_pos.(c) < 0 then begin
    st.unsat_pos.(c) <- Vec.size st.unsat;
    Vec.push st.unsat c
  end

let unsat_remove st c =
  let pos = st.unsat_pos.(c) in
  if pos >= 0 then begin
    let last = Vec.last st.unsat in
    Vec.set st.unsat pos last;
    st.unsat_pos.(last) <- pos;
    ignore (Vec.pop st.unsat);
    st.unsat_pos.(c) <- -1
  end

let recompute st =
  Vec.clear st.unsat;
  Array.fill st.unsat_pos 0 (Array.length st.unsat_pos) (-1);
  Array.iteri
    (fun c lits ->
      let n = Array.fold_left (fun acc l -> if lit_true st l then acc + 1 else acc) 0 lits in
      st.sat_count.(c) <- n;
      if n = 0 then unsat_add st c)
    st.clauses

let flip st v =
  let was = st.model.(v) in
  let true_lit = Lit.make v was in
  let false_lit = Lit.negate true_lit in
  st.model.(v) <- not was;
  (* clauses that contained the formerly true literal lose one *)
  List.iter
    (fun c ->
      st.sat_count.(c) <- st.sat_count.(c) - 1;
      if st.sat_count.(c) = 0 then unsat_add st c)
    st.occ.(true_lit);
  (* clauses that contain the newly true literal gain one *)
  List.iter
    (fun c ->
      st.sat_count.(c) <- st.sat_count.(c) + 1;
      if st.sat_count.(c) = 1 then unsat_remove st c)
    st.occ.(false_lit)

let break_count st v =
  (* clauses that would become unsatisfied: those where the currently true
     literal of v is the only satisfied literal *)
  let true_lit = Lit.make v st.model.(v) in
  List.fold_left
    (fun acc c -> if st.sat_count.(c) = 1 then acc + 1 else acc)
    0 st.occ.(true_lit)

let solve ?(params = default_params) cnf =
  let nvars = Cnf.num_vars cnf in
  let clauses = Array.of_list (Cnf.clauses cnf) in
  if Array.exists (fun c -> Array.length c = 0) clauses then (Unknown, 0)
  else begin
    let nclauses = Array.length clauses in
    let occ = Array.make (max (2 * nvars) 1) [] in
    Array.iteri
      (fun c lits -> Array.iter (fun l -> occ.(l) <- c :: occ.(l)) lits)
      clauses;
    let st =
      {
        nvars;
        clauses;
        occ;
        model = Array.make (max nvars 1) false;
        sat_count = Array.make (max nclauses 1) 0;
        unsat = Vec.create ~dummy:(-1) ();
        unsat_pos = Array.make (max nclauses 1) (-1);
        rng = Rng.create params.seed;
      }
    in
    let flips = ref 0 in
    let rec tries t =
      if t >= params.max_tries then Unknown
      else begin
        for v = 0 to nvars - 1 do
          st.model.(v) <- Rng.int st.rng 2 = 1
        done;
        recompute st;
        let rec walk f =
          if Vec.is_empty st.unsat then Sat (Array.copy st.model)
          else if f >= params.max_flips then Unknown
          else begin
            incr flips;
            let c = Vec.get st.unsat (Rng.int st.rng (Vec.size st.unsat)) in
            let lits = st.clauses.(c) in
            let v =
              if Rng.float st.rng < params.noise then
                Lit.var lits.(Rng.int st.rng (Array.length lits))
              else begin
                (* greedy: the variable with the fewest broken clauses *)
                let best = ref (Lit.var lits.(0)) in
                let best_break = ref max_int in
                Array.iter
                  (fun l ->
                    let b = break_count st (Lit.var l) in
                    if b < !best_break then begin
                      best_break := b;
                      best := Lit.var l
                    end)
                  lits;
                !best
              end
            in
            flip st v;
            walk (f + 1)
          end
        in
        match walk 0 with
        | Sat m -> Sat m
        | Unknown -> tries (t + 1)
      end
    in
    let result = if nclauses = 0 then Sat (Array.make nvars false) else tries 0 in
    (result, !flips)
  end
