(* Knuth's loop-free formulation: find the subsequence [2^k - 1] containing
   index [i]; elements are powers of two within it. *)
let get i =
  if i < 0 then invalid_arg "Luby.get";
  let rec outer k sz =
    if sz < i + 1 then outer (k + 1) ((2 * sz) + 1) else inner k sz i
  and inner k sz i =
    if sz - 1 <> i then
      let sz = (sz - 1) / 2 in
      let k = k - 1 in
      inner k sz (i mod sz)
    else 1 lsl (k - 1)
  in
  outer 1 1
