type step = Add of Lit.t list | Delete of Lit.t list
type t = { steps : step Vec.t }

let create () = { steps = Vec.create ~dummy:(Add []) () }
let add t lits = Vec.push t.steps (Add lits)
let delete t lits = Vec.push t.steps (Delete lits)
let steps t = Vec.to_list t.steps
let num_steps t = Vec.size t.steps

let ends_with_empty t =
  let rec last_add i =
    if i < 0 then None
    else
      match Vec.get t.steps i with
      | Add lits -> Some lits
      | Delete _ -> last_add (i - 1)
  in
  match last_add (Vec.size t.steps - 1) with
  | Some [] -> true
  | Some _ | None -> false

let output oc t =
  let put_lits lits =
    List.iter (fun l -> Printf.fprintf oc "%d " (Lit.to_dimacs l)) lits;
    output_string oc "0\n"
  in
  Vec.iter
    (function
      | Add lits -> put_lits lits
      | Delete lits ->
          output_string oc "d ";
          put_lits lits)
    t.steps
