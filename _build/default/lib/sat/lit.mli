(** Propositional literals.

    Variables are numbered from [0]. A literal packs a variable and a sign
    into a single non-negative integer ([2 * var] for the positive literal,
    [2 * var + 1] for the negative one), the classic MiniSat layout, so that
    literals can index arrays directly. *)

type t = int
(** A literal. Use the constructors below; the representation is exposed
    only so that literals can be stored in unboxed [int array]s. *)

type var = int
(** A variable index, [>= 0]. *)

val make : var -> bool -> t
(** [make v sign] is the literal on variable [v]; positive when [sign] is
    [true]. *)

val pos : var -> t
(** [pos v] is the positive literal of [v]. *)

val neg_of : var -> t
(** [neg_of v] is the negative literal of [v]. *)

val var : t -> var
(** Variable of a literal. *)

val sign : t -> bool
(** [sign l] is [true] iff [l] is positive. *)

val negate : t -> t
(** Complementary literal. *)

val to_dimacs : t -> int
(** DIMACS integer for a literal: [var + 1], negated when the literal is
    negative. *)

val of_dimacs : int -> t
(** Inverse of {!to_dimacs}. Raises [Invalid_argument] on [0]. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints the DIMACS form. *)
