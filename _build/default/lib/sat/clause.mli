(** Clauses as stored by the CDCL solver.

    A clause owns a mutable literal array (literals are reordered by the
    watched-literal scheme) plus the learnt-clause bookkeeping (activity for
    database reduction, LBD as a quality measure). *)

type t = {
  lits : Lit.t array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable deleted : bool;
}

val make : ?learnt:bool -> Lit.t array -> t
(** [make lits] builds a clause. The array is owned by the clause. *)

val size : t -> int
val get : t -> int -> Lit.t
val swap : t -> int -> int -> unit
val to_list : t -> Lit.t list
val pp : Format.formatter -> t -> unit
(** Space-separated DIMACS literals, without the trailing 0. *)
