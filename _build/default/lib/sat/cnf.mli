(** CNF formulas under construction.

    This is the builder the encoders write into: a fresh-variable allocator
    plus an append-only clause store. Clauses are lists of {!Lit.t}. The
    builder performs light normalisation: duplicate literals are removed and
    tautological clauses (containing [l] and [not l]) are dropped. *)

type t

val create : unit -> t

val fresh_var : t -> Lit.var
(** Allocates the next unused variable. *)

val fresh_vars : t -> int -> Lit.var array
(** [fresh_vars t n] allocates [n] consecutive fresh variables. *)

val num_vars : t -> int
val num_clauses : t -> int

val add_clause : t -> Lit.t list -> unit
(** Adds a clause. Duplicate literals are removed; tautologies are ignored.
    Adding the empty clause is allowed and makes the formula trivially
    unsatisfiable. Raises [Invalid_argument] if a literal mentions a variable
    that was never allocated. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars t n] makes sure variables [0 .. n-1] exist. *)

val clauses : t -> Lit.t array list
(** Clauses in insertion order. The arrays are fresh copies. *)

val iter_clauses : (Lit.t array -> unit) -> t -> unit

val copy : t -> t

val pp_stats : Format.formatter -> t -> unit
(** One-line "v=… c=… lits=…" summary. *)
