type t = {
  heap : int Vec.t; (* heap.(i) = variable at heap position i *)
  mutable pos : int array; (* pos.(v) = position of v, or -1 *)
  mutable scores : float array;
}

let create ~scores =
  {
    heap = Vec.create ~dummy:(-1) ();
    pos = Array.make (max (Array.length scores) 1) (-1);
    scores;
  }

let grow t scores =
  t.scores <- scores;
  let n = Array.length scores in
  if n > Array.length t.pos then begin
    let pos = Array.make n (-1) in
    Array.blit t.pos 0 pos 0 (Array.length t.pos);
    t.pos <- pos
  end

let in_heap t v = v < Array.length t.pos && t.pos.(v) >= 0
let is_empty t = Vec.is_empty t.heap
let size t = Vec.size t.heap
let lt t a b = t.scores.(a) > t.scores.(b) (* max-heap *)

let swap t i j =
  let a = Vec.get t.heap i and b = Vec.get t.heap j in
  Vec.set t.heap i b;
  Vec.set t.heap j a;
  t.pos.(a) <- j;
  t.pos.(b) <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t (Vec.get t.heap i) (Vec.get t.heap parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.size t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = if l < n && lt t (Vec.get t.heap l) (Vec.get t.heap i) then l else i in
  let best = if r < n && lt t (Vec.get t.heap r) (Vec.get t.heap best) then r else best in
  if best <> i then begin
    swap t i best;
    sift_down t best
  end

let insert t v =
  if not (in_heap t v) then begin
    Vec.push t.heap v;
    t.pos.(v) <- Vec.size t.heap - 1;
    sift_up t (Vec.size t.heap - 1)
  end

let remove_max t =
  if is_empty t then raise Not_found;
  let top = Vec.get t.heap 0 in
  let last = Vec.pop t.heap in
  t.pos.(top) <- -1;
  if not (Vec.is_empty t.heap) then begin
    Vec.set t.heap 0 last;
    t.pos.(last) <- 0;
    sift_down t 0
  end;
  top

let rescore t v =
  if in_heap t v then begin
    sift_up t t.pos.(v);
    sift_down t t.pos.(v)
  end
