type t = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_clauses : int;
  mutable learnt_literals : int;
  mutable deleted_clauses : int;
  mutable max_decision_level : int;
}

let create () =
  {
    decisions = 0;
    propagations = 0;
    conflicts = 0;
    restarts = 0;
    learnt_clauses = 0;
    learnt_literals = 0;
    deleted_clauses = 0;
    max_decision_level = 0;
  }

let pp fmt s =
  Format.fprintf fmt
    "decisions=%d propagations=%d conflicts=%d restarts=%d learnt=%d \
     deleted=%d max_level=%d"
    s.decisions s.propagations s.conflicts s.restarts s.learnt_clauses
    s.deleted_clauses s.max_decision_level
