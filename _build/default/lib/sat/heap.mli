(** Indexed binary max-heap over variables, ordered by a mutable score array.

    The CDCL solver stores VSIDS activities in a float array and uses this
    heap to pick the most active unassigned variable. [decrease]/[increase]
    re-sift an element after its score changed. *)

type t

val create : scores:float array -> t
(** An empty heap whose ordering is given by [scores] (shared, mutable;
    grows with {!grow}). *)

val grow : t -> float array -> unit
(** Replace the score array (after variable count grew). *)

val in_heap : t -> int -> bool
val insert : t -> int -> unit
(** No-op if already present. *)

val remove_max : t -> int
(** Raises [Not_found] when empty. *)

val is_empty : t -> bool
val rescore : t -> int -> unit
(** [rescore h v] restores heap order after [v]'s score changed (either
    direction). No-op if [v] is not in the heap. *)

val size : t -> int
