(** Search statistics reported by the solvers. *)

type t = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_clauses : int;
  mutable learnt_literals : int;
  mutable deleted_clauses : int;
  mutable max_decision_level : int;
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
