type t = {
  mutable nvars : int;
  mutable nlits : int;
  clauses : Lit.t array Vec.t;
}

let create () =
  { nvars = 0; nlits = 0; clauses = Vec.create ~dummy:[||] () }

let fresh_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  v

let fresh_vars t n = Array.init n (fun _ -> fresh_var t)
let num_vars t = t.nvars
let num_clauses t = Vec.size t.clauses
let ensure_vars t n = if n > t.nvars then t.nvars <- n

(* Sort, dedupe, and detect tautologies; complementary literals are adjacent
   after sorting because they share the variable part of the encoding. *)
let normalise lits =
  let sorted = List.sort_uniq Lit.compare lits in
  let rec tauto = function
    | a :: (b :: _ as rest) ->
        (a lxor b) = 1 || tauto rest
    | [ _ ] | [] -> false
  in
  if tauto sorted then None else Some sorted

let add_clause t lits =
  List.iter
    (fun l ->
      if Lit.var l < 0 || Lit.var l >= t.nvars then
        invalid_arg "Cnf.add_clause: unallocated variable")
    lits;
  match normalise lits with
  | None -> ()
  | Some lits ->
      let arr = Array.of_list lits in
      t.nlits <- t.nlits + Array.length arr;
      Vec.push t.clauses arr

let clauses t = List.map Array.copy (Vec.to_list t.clauses)
let iter_clauses f t = Vec.iter f t.clauses

let copy t =
  let c = create () in
  c.nvars <- t.nvars;
  c.nlits <- t.nlits;
  iter_clauses (fun arr -> Vec.push c.clauses (Array.copy arr)) t;
  c

let pp_stats fmt t =
  Format.fprintf fmt "v=%d c=%d lits=%d" t.nvars (num_clauses t) t.nlits
