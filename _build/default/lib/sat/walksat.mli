(** WalkSAT local search.

    The muldirect encoding the paper inherits was introduced for exactly
    this kind of solver (Selman et al., GSAT/WalkSAT), and local search on
    SAT-encoded colouring problems is a recurring theme in the literature
    the paper builds on. This is the classic WalkSAT/SKC variant: pick a
    random unsatisfied clause; with probability [noise] flip a random
    variable of it, otherwise flip the variable with the lowest break
    count. Incomplete — it can find models, never refute. Deterministic for
    a fixed seed. *)

type params = {
  max_tries : int;  (** Restarts from fresh random assignments. *)
  max_flips : int;  (** Flips per try. *)
  noise : float;  (** Random-walk probability in [0,1]. *)
  seed : int;
}

val default_params : params

type result = Sat of bool array | Unknown

val solve : ?params:params -> Cnf.t -> result * int
(** Returns the verdict and the total number of flips spent. A formula
    containing the empty clause yields [Unknown] (WalkSAT cannot refute). *)
