lib/sat/walksat.ml: Array Cnf Int64 List Lit Vec
