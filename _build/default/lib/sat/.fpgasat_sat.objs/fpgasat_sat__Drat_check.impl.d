lib/sat/drat_check.ml: Array Cnf Format List Lit Proof
