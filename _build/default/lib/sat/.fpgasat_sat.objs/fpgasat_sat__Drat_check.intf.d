lib/sat/drat_check.mli: Cnf Format Lit Proof
