lib/sat/simplify.mli: Cnf Format Lit Solver Stats
