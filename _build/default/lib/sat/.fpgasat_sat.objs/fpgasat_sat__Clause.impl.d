lib/sat/clause.ml: Array Format Lit
