lib/sat/vec.mli:
