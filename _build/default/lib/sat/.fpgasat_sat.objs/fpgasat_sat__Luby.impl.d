lib/sat/luby.ml:
