lib/sat/heap.mli:
