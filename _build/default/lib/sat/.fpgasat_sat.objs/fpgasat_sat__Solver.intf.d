lib/sat/solver.mli: Cnf Lit Proof Stats
