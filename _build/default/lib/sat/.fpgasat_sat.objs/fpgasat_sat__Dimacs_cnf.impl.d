lib/sat/dimacs_cnf.ml: Array Buffer Cnf List Lit Option Printf String
