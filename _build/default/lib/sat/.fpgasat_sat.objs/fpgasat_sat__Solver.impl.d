lib/sat/solver.ml: Array Clause Cnf Heap Int Int64 List Lit Luby Proof Set Stats Sys Vec
