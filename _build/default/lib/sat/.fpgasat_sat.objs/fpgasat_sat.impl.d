lib/sat/fpgasat_sat.ml: Clause Cnf Dimacs_cnf Dpll Drat_check Heap Lit Luby Proof Simplify Solver Stats Vec Walksat
