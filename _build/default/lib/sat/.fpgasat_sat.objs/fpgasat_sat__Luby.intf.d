lib/sat/luby.mli:
