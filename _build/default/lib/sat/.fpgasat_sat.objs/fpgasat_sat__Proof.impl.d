lib/sat/proof.ml: List Lit Printf Vec
