lib/sat/simplify.ml: Array Cnf Format Hashtbl List Lit Option Solver Stats
