lib/sat/dimacs_cnf.mli: Cnf
