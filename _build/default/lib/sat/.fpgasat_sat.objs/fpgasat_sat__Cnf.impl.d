lib/sat/cnf.ml: Array Format List Lit Vec
