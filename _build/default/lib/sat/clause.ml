type t = {
  lits : Lit.t array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable deleted : bool;
}

let make ?(learnt = false) lits =
  { lits; learnt; activity = 0.; lbd = 0; deleted = false }

let size c = Array.length c.lits
let get c i = c.lits.(i)

let swap c i j =
  let t = c.lits.(i) in
  c.lits.(i) <- c.lits.(j);
  c.lits.(j) <- t

let to_list c = Array.to_list c.lits

let pp fmt c =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ' ')
    Lit.pp fmt (to_list c)
