(** The Luby restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...

    Used by the CDCL solver's [minisat_like] preset to schedule restarts. *)

val get : int -> int
(** [get i] is the [i]-th element of the Luby sequence, [i >= 0]. *)
