(** Forward checker for the solver's refutation traces.

    Verifies that every clause added in a {!Proof.t} is RUP (reverse unit
    propagation: asserting the clause's negation on the formula accumulated
    so far propagates to a conflict), that deletions reference clauses
    present at that point, and that the trace derives the empty clause.
    CDCL learnt clauses are always RUP, so a trace produced by {!Solver} on
    an unsatisfiable formula must pass; an independent pass here guards
    against solver bugs without trusting the solver's own bookkeeping. *)

type error = {
  step_index : int;  (** Index into the proof's steps. *)
  reason : string;
}

val check : Cnf.t -> Proof.t -> (unit, error) result
(** [check cnf proof] verifies the trace against the original formula.
    Succeeds only if some addition step is the empty clause and every
    addition up to and including it is RUP. *)

val is_rup : Cnf.t -> Lit.t list -> bool
(** [is_rup cnf clause] — is the clause derivable from [cnf] alone by
    reverse unit propagation? (Convenience for tests.) *)

val pp_error : Format.formatter -> error -> unit
