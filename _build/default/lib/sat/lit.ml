type t = int
type var = int

let make v sign = if sign then 2 * v else (2 * v) + 1
let pos v = 2 * v
let neg_of v = (2 * v) + 1
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1

let to_dimacs l =
  let d = var l + 1 in
  if sign l then d else -d

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: 0"
  else if d > 0 then pos (d - 1)
  else neg_of (-d - 1)

let compare = Int.compare
let pp fmt l = Format.pp_print_int fmt (to_dimacs l)
