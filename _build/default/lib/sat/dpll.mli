(** A plain DPLL solver (unit propagation + chronological backtracking).

    Deliberately simple and independent of {!Solver}'s data structures so the
    two can cross-check each other in tests, and so the benchmark harness can
    show why clause learning matters. Only suitable for small formulas. *)

type result = Sat of bool array | Unsat | Unknown

val solve : ?max_decisions:int -> Cnf.t -> result
(** [solve cnf] decides satisfiability. [max_decisions] bounds the search
    (default: unbounded); when exceeded the answer is [Unknown]. *)
