(** CSP instances of the graph-colouring form (paper, Sect. 1).

    All variables share one domain [0 .. k-1] (the colours, i.e. routing
    tracks) and every constraint is a disequality between adjacent vertices
    of the constraint graph — exactly the CSP class FPGA detailed routing
    reduces to. *)

type t = private {
  graph : Fpgasat_graph.Graph.t;
  k : int;  (** Domain size: number of colours / tracks per channel. *)
}

val make : Fpgasat_graph.Graph.t -> k:int -> t
(** Raises [Invalid_argument] if [k < 1]. *)

val num_variables : t -> int
val trivially_unsat : t -> bool
(** [true] when a greedy clique already exceeds [k] — no SAT call needed. *)

val solution_ok : t -> Fpgasat_graph.Coloring.t -> bool
(** Is the colouring a proper [k]-colouring, i.e. a genuine CSP solution? *)

val pp : Format.formatter -> t -> unit
