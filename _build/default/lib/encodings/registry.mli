(** The encoding sets the paper evaluates.

    All names are resolvable with {!Encoding.of_name}; these lists drive the
    benchmark harness and the CLI. *)

val previously_used : Encoding.t list
(** The two encodings earlier SAT-based FPGA routers used: log and
    muldirect. *)

val direct : Encoding.t
(** Plain direct — mentioned in Sect. 6 as worse than muldirect. *)

val new_encodings : Encoding.t list
(** The 12 new encodings, in the paper's order (Sect. 6). *)

val all : Encoding.t list
(** Previously used + direct + the 12 new ones (15 total). *)

val multi_level_extensions : Encoding.t list
(** Beyond the paper's evaluation: three-level hierarchies, exercising the
    fully general composition of Sect. 4 (Kwon & Klieber's
    direct-i+direct family and ITE variants). *)

val table2 : Encoding.t list
(** The seven encodings whose columns appear in Table 2. *)

val find : string -> (Encoding.t, string) result
(** {!Encoding.of_name} plus a check that the result is one of {!all}. *)
