(** The five simple encodings (paper, Sects. 2-3) as layouts.

    - {e direct} (de Kleer): one Boolean per value, at-least-one +
      pairwise at-most-one clauses;
    - {e muldirect} (Selman et al.): direct without at-most-one, so a model
      may select several values;
    - {e log} (Iwama & Miyazaki): ⌈log₂ k⌉ Booleans, values are binary codes
      (LSB in slot 0), unused codes excluded by clauses;
    - {e ITE-linear}: the chain tree of Fig. 1(a);
    - {e ITE-log}: the balanced tree of Fig. 1(b).

    Each is produced as a {!Layout.t} over local slots; hierarchical
    composition and Boolean-variable allocation happen elsewhere. *)

type kind = Direct | Muldirect | Log | Ite_linear | Ite_log

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

val layout : kind -> int -> Layout.t
(** [layout kind k] encodes a domain of [k >= 1] values. *)

val slots_used : kind -> int -> int
(** Number of Boolean variables [layout kind k] uses. *)

val values_reachable : kind -> int -> int
(** [values_reachable kind n] is how many values (or subdomains) the kind
    can distinguish with a budget of [n] slots when used as the top level of
    a hierarchical encoding: [n] for direct/muldirect, [2^n] for log and
    ITE-log, [n + 1] for ITE-linear. *)
