type slot_lit = int * bool

type t = {
  num_values : int;
  num_slots : int;
  patterns : slot_lit list array;
  side : slot_lit list list;
  exclusive : bool;
}

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    if Array.length t.patterns = t.num_values then Ok ()
    else Error "pattern count differs from num_values"
  in
  let check_pattern v p =
    let slots = List.map fst p in
    if List.exists (fun s -> s < 0 || s >= t.num_slots) slots then
      Error (Printf.sprintf "value %d: slot out of range" v)
    else if List.length (List.sort_uniq compare slots) <> List.length slots then
      Error (Printf.sprintf "value %d: repeated slot in pattern" v)
    else Ok ()
  in
  let* () =
    Array.to_seqi t.patterns
    |> Seq.fold_left
         (fun acc (v, p) -> Result.bind acc (fun () -> check_pattern v p))
         (Ok ())
  in
  let sorted = Array.map (fun p -> List.sort compare p) t.patterns in
  let distinct =
    Array.length sorted
    = List.length (List.sort_uniq compare (Array.to_list sorted))
  in
  if distinct then Ok () else Error "two values share a pattern"

let pattern_sat t v slot_value =
  List.for_all (fun (s, pol) -> slot_value s = pol) t.patterns.(v)

let selected_values t slot_value =
  List.filter
    (fun v -> pattern_sat t v slot_value)
    (List.init t.num_values Fun.id)

let pp_pattern fmt p =
  match p with
  | [] -> Format.pp_print_string fmt "(true)"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
        (fun fmt (s, pol) ->
          Format.fprintf fmt "%si%d" (if pol then "" else "-") s)
        fmt p
