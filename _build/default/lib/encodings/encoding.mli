(** The encodings compared in the paper, as first-class values.

    An encoding is either one of the five simple encodings or a two-level
    hierarchical composition [top-<n>+bottom] where [n] is the Boolean
    variable budget of the top level (so [ITE-linear-2+muldirect] partitions
    each domain with a 2-variable ITE chain into three subdomains, then
    selects inside subdomains with a shared muldirect encoding). *)

type t =
  | Simple of Simple_encoding.kind
  | Hier of {
      top : Simple_encoding.kind;
      top_vars : int;
      bottom : Simple_encoding.kind;
      shared : bool;
          (** Share bottom variables across subdomains (the paper's choice,
              [true] everywhere in the evaluation); [false] is the ablation
              variant with per-subdomain bottom variables. *)
    }

  | Multi of {
      levels : (Simple_encoding.kind * int) list;
          (** Top-down [(kind, variable budget)] levels; at least two for
              this constructor (one level is {!Hier}). *)
      bottom : Simple_encoding.kind;
    }
      (** Extension beyond the paper's evaluation: the fully general
          multi-level hierarchy of Sect. 4 (cf. Kwon & Klieber's
          direct-i+direct chains). *)

val hier :
  ?shared:bool -> top:Simple_encoding.kind -> top_vars:int ->
  bottom:Simple_encoding.kind -> unit -> t

val layout : t -> int -> Layout.t
(** [layout e k] is the layout of [e] over a domain of [k] values. *)

val name : t -> string
(** Paper-style name, e.g. ["ITE-linear-2+muldirect"]. *)

val of_name : string -> (t, string) result
(** Parses names as printed by {!name} (case-insensitive). *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
