(** Symmetry-breaking heuristics (paper, Sect. 5).

    For a [k]-colouring problem one may pick any [k-1] vertices and constrain
    the [i]-th of them (0-based) to colours [<= i] — any proper colouring can
    be permuted into this form, so satisfiability is preserved while the
    colour-permutation symmetry group is cut down.

    - {e b1} (Van Gelder): the sequence starts with the maximum-degree
      vertex, followed by up to [k-2] of its neighbours in descending degree
      order, ties broken by the sum of the neighbours' degrees.
    - {e s1} (this paper): the [k-1] highest-degree vertices overall, in
      descending degree order with the same tie-breaking. *)

type heuristic = B1 | S1

val all : heuristic list
val name : heuristic -> string
val of_name : string -> heuristic option

val sequence : heuristic -> Fpgasat_graph.Graph.t -> k:int -> int list
(** The restricted vertex sequence (length [<= k-1], distinct vertices). *)

val forbidden : heuristic -> Fpgasat_graph.Graph.t -> k:int -> (int * int) list
(** [(vertex, colour)] pairs to forbid: the vertex at position [i] of the
    sequence loses colours [i+1 .. k-1]. *)

val pp : Format.formatter -> heuristic -> unit
val pp_option : Format.formatter -> heuristic option -> unit
(** Prints ["-"] for [None], matching Table 2's column headers. *)
