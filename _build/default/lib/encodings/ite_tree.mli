(** ITE trees (paper, Sect. 3).

    An ITE tree selects one domain value per assignment to its indexing
    Boolean variables: [Node (s, t, e)] selects in [t] when slot [s] is true
    and in [e] otherwise. Every slot appears at most once on any root-to-leaf
    path, so the tree is a multi-input multiplexer needing no at-least-one /
    at-most-one clauses — the structural property the paper's new encodings
    exploit. Slots are local indices, mapped to concrete Boolean variables at
    instantiation time. *)

type t = Leaf of int | Node of int * t * t

val linear : int -> t
(** [linear k] is the chain of Fig. 1(a): slot [j] selects value [j],
    value [k-1] is the all-false leaf. Uses [k-1] slots. Requires [k >= 1]. *)

val balanced : int -> t
(** [balanced k] is the tree of Fig. 1(b): one slot per level (the ITE-log
    variant of the log encoding), leaf depths are ⌈log₂ k⌉ or ⌈log₂ k⌉ − 1,
    value order is left to right with the true branch first. *)

val num_slots : t -> int
(** [1 + max slot], [0] for a bare leaf. *)

val num_leaves : t -> int

val paths : t -> (int * Layout.slot_lit list) list
(** [(value, pattern)] for every leaf, left to right; the pattern is the
    root-to-leaf path. *)

val well_formed : t -> bool
(** No slot repeats on any root-to-leaf path. *)

val leaves_in_order : t -> int list

val render : ?value_name:(int -> string) -> t -> string
(** Multi-line ASCII rendering used by the Figure 1 bench section. *)
