(** Closed-form size predictions for encoded CSPs.

    For every encoding this module predicts, without building the CNF, how
    many Boolean variables, side clauses and conflict clauses (with their
    literal counts) the translation of a colouring CSP will produce. The
    predictions are validated against the actual encoder in the test suite,
    which pins down the encoder's behaviour, and they power the encoding
    explorer's size tables without paying for the construction. *)

type t = {
  vars_per_csp_var : int;
  side_clauses_per_csp_var : int;
  side_literals_per_csp_var : int;
  conflict_clauses_per_edge : int;  (** Always the domain size [k]. *)
  conflict_literals_per_edge : int;
      (** Sum over values of twice the pattern length. *)
}

val of_layout : Layout.t -> t
val predict : Encoding.t -> k:int -> t

val total_vars : t -> num_vertices:int -> int
val total_clauses : t -> num_vertices:int -> num_edges:int -> int
val total_literals : t -> num_vertices:int -> num_edges:int -> int
(** Totals for a CSP with the given conflict-graph shape (excluding
    symmetry-breaking clauses). *)

val pp : Format.formatter -> t -> unit
