module G = Fpgasat_graph

type t = { graph : G.Graph.t; k : int }

let make graph ~k =
  if k < 1 then invalid_arg "Csp.make: k < 1";
  { graph; k }

let num_variables t = G.Graph.num_vertices t.graph
let trivially_unsat t = G.Clique.lower_bound t.graph > t.k
let solution_ok t coloring = G.Coloring.is_proper t.graph ~k:t.k coloring

let pp fmt t =
  Format.fprintf fmt "csp(%a, k=%d)" G.Graph.pp t.graph t.k
