(** Hierarchical composition of simple encodings (paper, Sect. 4).

    A two-level hierarchical encoding first partitions the domain into
    subdomains using a top-level simple encoding with a fixed Boolean-variable
    budget, then selects within each subdomain with a bottom-level simple
    encoding whose variables are {e shared} by all subdomains of the level.
    The partition is balanced (sizes differ by at most one, larger subdomains
    first), matching the worked example of Fig. 1(d): 13 values under
    ITE-log-2 split into subdomains of sizes 4, 3, 3, 3.

    Smaller-than-maximum subdomains are handled per the paper: ITE-tree
    bottoms use a smaller tree over the same slots, clause-based bottoms get
    conditional excluded-illegal-value clauses guarded by the subdomain's
    top-level pattern. *)

val partition : int -> int -> int list
(** [partition k m] splits [k] values into [min m k] balanced subdomain
    sizes, larger first. Raises [Invalid_argument] unless [k >= 1] and
    [m >= 1]. *)

val compose_levels :
  levels:(Simple_encoding.kind * int) list ->
  bottom:Simple_encoding.kind ->
  int ->
  Layout.t
(** [compose_levels ~levels ~bottom k] is the fully general hierarchy of
    Sect. 4: each [(kind, vars)] level partitions the subdomains of the
    previous level, the [bottom] encoding selects values inside the finest
    subdomains, and every level shares one slot set across its subdomains.
    Subdomains smaller than their level's maximum are handled uniformly by
    conditional excluded-illegal-value clauses (sound for tree encodings
    too, since a tree always selects exactly one offset). The paper's
    two-level encodings are [levels = [(top, n)]]; Kwon & Klieber's
    direct-i+direct chains are [levels] of [Direct] entries. *)

val compose_mixed :
  top:Simple_encoding.kind ->
  top_vars:int ->
  bottoms:Simple_encoding.kind list ->
  int ->
  Layout.t
(** Sect. 4 also allows {e different} simple encodings for different
    subdomains of one level ("it is not required that all the subdomains at
    a particular level ... be further divided ... by using the same simple
    encoding"). [compose_mixed] assigns [bottoms] to the subdomains in
    order, cycling if there are fewer kinds than subdomains; every
    subdomain still draws from one shared bottom slot pool (sized to the
    largest demand). Not part of the paper's evaluated set; exercised by
    tests and available for exploration. *)

val compose :
  ?shared:bool ->
  top:Simple_encoding.kind ->
  top_vars:int ->
  bottom:Simple_encoding.kind ->
  int ->
  Layout.t
(** [compose ~top ~top_vars ~bottom k] is the layout of the hierarchical
    encoding over a domain of [k] values. Top slots come first, the shared
    bottom slots after them.

    [shared] (default [true]) controls whether all subdomains reuse one
    bottom slot set, as the paper prescribes. With [~shared:false] every
    subdomain gets its own block of bottom slots sized to that subdomain —
    more variables, no conditional exclusions. This exists as an ablation
    of the paper's sharing decision (see DESIGN.md). *)
