lib/encodings/hierarchy.mli: Layout Simple_encoding
