lib/encodings/layout.ml: Array Format Fun List Printf Result Seq
