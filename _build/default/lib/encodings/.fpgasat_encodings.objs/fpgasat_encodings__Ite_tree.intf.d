lib/encodings/ite_tree.mli: Layout
