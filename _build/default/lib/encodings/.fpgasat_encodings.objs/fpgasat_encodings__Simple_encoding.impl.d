lib/encodings/simple_encoding.ml: Array Fun Ite_tree Layout List String
