lib/encodings/encoding.ml: Filename Format Hierarchy List Option Printf Simple_encoding Stdlib String
