lib/encodings/csp_encode.ml: Array Csp Encoding Fpgasat_graph Fpgasat_sat Layout List Symmetry
