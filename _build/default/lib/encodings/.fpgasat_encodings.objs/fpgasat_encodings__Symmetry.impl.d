lib/encodings/symmetry.ml: Format Fpgasat_graph Fun List String
