lib/encodings/csp_encode.mli: Csp Encoding Fpgasat_graph Fpgasat_sat Layout Symmetry
