lib/encodings/encoding_stats.mli: Encoding Format Layout
