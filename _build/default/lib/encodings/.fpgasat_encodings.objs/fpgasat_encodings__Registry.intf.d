lib/encodings/registry.mli: Encoding
