lib/encodings/layout.mli: Format
