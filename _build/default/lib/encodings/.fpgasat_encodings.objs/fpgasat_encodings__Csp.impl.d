lib/encodings/csp.ml: Format Fpgasat_graph
