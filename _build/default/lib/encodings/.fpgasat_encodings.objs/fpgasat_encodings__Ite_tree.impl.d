lib/encodings/ite_tree.ml: Buffer List Printf
