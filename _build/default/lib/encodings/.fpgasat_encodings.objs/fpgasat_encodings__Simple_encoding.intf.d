lib/encodings/simple_encoding.mli: Layout
