lib/encodings/symmetry.mli: Format Fpgasat_graph
