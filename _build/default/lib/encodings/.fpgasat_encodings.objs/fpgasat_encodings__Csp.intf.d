lib/encodings/csp.mli: Format Fpgasat_graph
