lib/encodings/registry.ml: Encoding List
