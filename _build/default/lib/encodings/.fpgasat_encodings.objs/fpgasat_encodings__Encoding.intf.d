lib/encodings/encoding.mli: Format Layout Simple_encoding
