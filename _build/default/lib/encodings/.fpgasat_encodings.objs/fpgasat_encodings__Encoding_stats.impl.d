lib/encodings/encoding_stats.ml: Array Encoding Format Layout List
