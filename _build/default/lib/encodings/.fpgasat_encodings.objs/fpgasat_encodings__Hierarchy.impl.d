lib/encodings/hierarchy.ml: Array Layout List Simple_encoding
