lib/encodings/fpgasat_encodings.ml: Csp Csp_encode Encoding Encoding_stats Hierarchy Ite_tree Layout Registry Simple_encoding Symmetry
