(** Translation of a colouring CSP to CNF under a chosen encoding.

    Every CSP variable (graph vertex) gets its own block of Boolean
    variables shaped by the encoding's {!Layout.t}; conflict clauses forbid
    adjacent vertices from selecting the same value (the negated conjunction
    of the two indexing patterns, Sect. 4's worked example); optional
    symmetry-breaking clauses forbid specific (vertex, colour) pairs. *)

type t = private {
  encoding : Encoding.t;
  csp : Csp.t;
  layout : Layout.t;  (** Shared by all CSP variables (same domain size). *)
  cnf : Fpgasat_sat.Cnf.t;
  symmetry : Symmetry.heuristic option;
}

val encode : ?symmetry:Symmetry.heuristic -> Encoding.t -> Csp.t -> t
(** Builds the full CNF: per-variable side clauses, conflict clauses for
    every edge and every common value, and symmetry clauses when requested. *)

val boolean_var : t -> int -> int -> Fpgasat_sat.Lit.var
(** [boolean_var t v s] is the Boolean variable behind slot [s] of CSP
    variable [v]. *)

val pattern_lits : t -> int -> int -> Fpgasat_sat.Lit.t list
(** [pattern_lits t v value] is value [value]'s indexing pattern for CSP
    variable [v], as concrete literals. *)

exception No_selected_value of int
(** Raised by {!decode} when a model selects no value for some CSP variable
    — impossible for models of the emitted CNF, indicating a corrupted
    model. *)

val decode : t -> bool array -> Fpgasat_graph.Coloring.t
(** Extracts a colouring from a SAT model. For non-exclusive (multivalued)
    encodings any one selected value is taken, as the paper prescribes. *)

val selected_values_of : t -> bool array -> int -> int list
(** All domain values the model selects for a CSP variable (useful for
    inspecting multivalued solutions). *)
