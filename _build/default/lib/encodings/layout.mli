(** Encoding layouts.

    A layout is the shape of a SAT encoding of one CSP variable before any
    concrete Boolean variables are allocated: for each domain value an
    {e indexing Boolean pattern} (a conjunction over local variable
    {e slots}), plus side clauses (at-least-one, at-most-one,
    excluded-illegal-values, and the conditional exclusions of hierarchical
    encodings). Separating the shape from the allocation is what lets
    hierarchical encodings share one slot set across all subdomains of a
    level (paper, Sect. 4) and lets every CSP variable of the same domain
    size reuse the same layout. *)

type slot_lit = int * bool
(** A literal over a local slot: slot index and polarity. *)

type t = {
  num_values : int;
  num_slots : int;
  patterns : slot_lit list array;
      (** [patterns.(v)] is the indexing pattern selecting domain value [v]. *)
  side : slot_lit list list;
      (** Clauses enforcing that the patterns behave (empty for ITE-tree
          encodings, whose structure makes them exclusive and complete). *)
  exclusive : bool;
      (** At most one pattern can hold in any assignment. *)
}

val validate : t -> (unit, string) result
(** Structural sanity: pattern count matches [num_values], slots in range,
    no slot repeated within a pattern, patterns pairwise distinct. *)

val pattern_sat : t -> int -> (int -> bool) -> bool
(** [pattern_sat layout v slot_value] — is value [v]'s pattern satisfied
    under the given slot assignment? *)

val selected_values : t -> (int -> bool) -> int list
(** All values whose pattern holds under an assignment (for the multivalued
    encodings this can be several; for exclusive ones at most one). *)

val pp_pattern : Format.formatter -> slot_lit list -> unit
(** Prints e.g. "i0 & -i1 & i2" (empty pattern prints "(true)"). *)
