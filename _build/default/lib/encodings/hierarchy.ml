let partition k m =
  if k < 1 || m < 1 then invalid_arg "Hierarchy.partition";
  let m = min m k in
  let base = k / m and rem = k mod m in
  List.init m (fun j -> if j < rem then base + 1 else base)

let is_tree_kind = function
  | Simple_encoding.Ite_linear | Simple_encoding.Ite_log -> true
  | Simple_encoding.Direct | Simple_encoding.Muldirect | Simple_encoding.Log ->
      false

let negate_pattern p = List.map (fun (s, pol) -> (s, not pol)) p

let compose_shared ~top ~bottom k sizes =
  let m = List.length sizes in
  let top_layout = Simple_encoding.layout top m in
  let s_max = match sizes with s :: _ -> s | [] -> assert false in
  let bot_max = Simple_encoding.layout bottom s_max in
  let shift = top_layout.Layout.num_slots in
  let shift_lits = List.map (fun (s, pol) -> (s + shift, pol)) in
  (* patterns: concatenate the subdomain's top pattern with the bottom
     pattern of the offset; smaller subdomains use a smaller tree (for tree
     bottoms) or the shared max layout plus conditional exclusions. *)
  let patterns = Array.make k [] in
  let conditional_exclusions = ref [] in
  let value = ref 0 in
  List.iteri
    (fun j s_j ->
      let top_pattern = top_layout.Layout.patterns.(j) in
      let bot_j =
        if s_j = s_max then bot_max
        else if is_tree_kind bottom then Simple_encoding.layout bottom s_j
        else begin
          (* forbid the offsets this subdomain does not have *)
          for off = s_j to s_max - 1 do
            conditional_exclusions :=
              (negate_pattern top_pattern
              @ shift_lits (negate_pattern bot_max.Layout.patterns.(off)))
              :: !conditional_exclusions
          done;
          bot_max
        end
      in
      for off = 0 to s_j - 1 do
        patterns.(!value) <-
          top_pattern @ shift_lits bot_j.Layout.patterns.(off);
        incr value
      done)
    sizes;
  assert (!value = k);
  {
    Layout.num_values = k;
    num_slots = shift + bot_max.Layout.num_slots;
    patterns;
    side =
      top_layout.Layout.side
      @ List.map shift_lits bot_max.Layout.side
      @ List.rev !conditional_exclusions;
    exclusive = top_layout.Layout.exclusive && bot_max.Layout.exclusive;
  }

(* Ablation variant: every subdomain gets a private bottom slot block sized
   exactly to it; bottom side clauses become conditional on the subdomain's
   top pattern (an unconditional at-least-one over a private block would
   wrongly constrain unselected subdomains). *)
let compose_unshared ~top ~bottom k sizes =
  let m = List.length sizes in
  let top_layout = Simple_encoding.layout top m in
  let patterns = Array.make k [] in
  let side = ref (List.rev top_layout.Layout.side) in
  let next_slot = ref top_layout.Layout.num_slots in
  let exclusive = ref top_layout.Layout.exclusive in
  let value = ref 0 in
  List.iteri
    (fun j s_j ->
      let top_pattern = top_layout.Layout.patterns.(j) in
      let bot = Simple_encoding.layout bottom s_j in
      let base = !next_slot in
      next_slot := base + bot.Layout.num_slots;
      let shift_lits = List.map (fun (s, pol) -> (s + base, pol)) in
      List.iter
        (fun clause ->
          side := (negate_pattern top_pattern @ shift_lits clause) :: !side)
        bot.Layout.side;
      if not bot.Layout.exclusive then exclusive := false;
      for off = 0 to s_j - 1 do
        patterns.(!value) <- top_pattern @ shift_lits bot.Layout.patterns.(off);
        incr value
      done)
    sizes;
  assert (!value = k);
  {
    Layout.num_values = k;
    num_slots = !next_slot;
    patterns;
    side = List.rev !side;
    exclusive = !exclusive;
  }

(* Fully general multi-level composition. Unlike [compose_shared], smaller
   subdomains always use the full-size bottom layout plus conditional
   exclusions — uniform across clause-based and tree encodings, at the cost
   of a few extra clauses compared to the "smaller trees" of the two-level
   paper construction. *)
let rec compose_levels ~levels ~bottom k =
  if k < 1 then invalid_arg "Hierarchy.compose_levels: empty domain";
  match levels with
  | [] -> Simple_encoding.layout bottom k
  | (kind, vars) :: rest ->
      if vars < 1 then invalid_arg "Hierarchy.compose_levels: vars < 1";
      let capacity = Simple_encoding.values_reachable kind vars in
      let sizes = partition k capacity in
      let m = List.length sizes in
      let top_layout = Simple_encoding.layout kind m in
      let s_max = match sizes with s :: _ -> s | [] -> assert false in
      let bot = compose_levels ~levels:rest ~bottom s_max in
      let shift = top_layout.Layout.num_slots in
      let shift_lits = List.map (fun (s, pol) -> (s + shift, pol)) in
      let patterns = Array.make k [] in
      let exclusions = ref [] in
      let value = ref 0 in
      List.iteri
        (fun j s_j ->
          let top_pattern = top_layout.Layout.patterns.(j) in
          for off = s_j to s_max - 1 do
            exclusions :=
              (negate_pattern top_pattern
              @ shift_lits (negate_pattern bot.Layout.patterns.(off)))
              :: !exclusions
          done;
          for off = 0 to s_j - 1 do
            patterns.(!value) <- top_pattern @ shift_lits bot.Layout.patterns.(off);
            incr value
          done)
        sizes;
      assert (!value = k);
      {
        Layout.num_values = k;
        num_slots = shift + bot.Layout.num_slots;
        patterns;
        side =
          top_layout.Layout.side
          @ List.map shift_lits bot.Layout.side
          @ List.rev !exclusions;
        exclusive = top_layout.Layout.exclusive && bot.Layout.exclusive;
      }

let compose_mixed ~top ~top_vars ~bottoms k =
  if top_vars < 1 then invalid_arg "Hierarchy.compose_mixed: top_vars < 1";
  if k < 1 then invalid_arg "Hierarchy.compose_mixed: empty domain";
  if bottoms = [] then invalid_arg "Hierarchy.compose_mixed: no bottom kinds";
  let capacity = Simple_encoding.values_reachable top top_vars in
  let sizes = partition k capacity in
  let m = List.length sizes in
  let top_layout = Simple_encoding.layout top m in
  let kinds = Array.of_list bottoms in
  let kind_of j = kinds.(j mod Array.length kinds) in
  (* per-subdomain bottom layouts over one shared slot pool *)
  let bottom_layouts =
    List.mapi (fun j s_j -> Simple_encoding.layout (kind_of j) s_j) sizes
  in
  let pool =
    List.fold_left (fun acc b -> max acc b.Layout.num_slots) 0 bottom_layouts
  in
  let shift = top_layout.Layout.num_slots in
  let shift_lits = List.map (fun (s, pol) -> (s + shift, pol)) in
  let patterns = Array.make k [] in
  let side = ref (List.rev top_layout.Layout.side) in
  let value = ref 0 in
  List.iteri
    (fun j bot ->
      let top_pattern = top_layout.Layout.patterns.(j) in
      (* bottom side clauses hold only when this subdomain is selected *)
      List.iter
        (fun clause ->
          side := (negate_pattern top_pattern @ shift_lits clause) :: !side)
        bot.Layout.side;
      for off = 0 to bot.Layout.num_values - 1 do
        patterns.(!value) <- top_pattern @ shift_lits bot.Layout.patterns.(off);
        incr value
      done)
    bottom_layouts;
  assert (!value = k);
  let exclusive =
    top_layout.Layout.exclusive
    && List.for_all (fun b -> b.Layout.exclusive) bottom_layouts
  in
  {
    Layout.num_values = k;
    num_slots = shift + pool;
    patterns;
    side = List.rev !side;
    exclusive;
  }

let compose ?(shared = true) ~top ~top_vars ~bottom k =
  if top_vars < 1 then invalid_arg "Hierarchy.compose: top_vars < 1";
  if k < 1 then invalid_arg "Hierarchy.compose: empty domain";
  let capacity = Simple_encoding.values_reachable top top_vars in
  let sizes = partition k capacity in
  if shared then compose_shared ~top ~bottom k sizes
  else compose_unshared ~top ~bottom k sizes
