type kind = Direct | Muldirect | Log | Ite_linear | Ite_log

let all_kinds = [ Direct; Muldirect; Log; Ite_linear; Ite_log ]

let kind_name = function
  | Direct -> "direct"
  | Muldirect -> "muldirect"
  | Log -> "log"
  | Ite_linear -> "ite-linear"
  | Ite_log -> "ite-log"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "direct" -> Some Direct
  | "muldirect" -> Some Muldirect
  | "log" -> Some Log
  | "ite-linear" | "itelinear" -> Some Ite_linear
  | "ite-log" | "itelog" -> Some Ite_log
  | _ -> None

let bits_needed k =
  let rec go b = if 1 lsl b >= k then b else go (b + 1) in
  go 0

let direct_layout ~at_most_one k =
  let patterns = Array.init k (fun v -> [ (v, true) ]) in
  let at_least_one = List.init k (fun v -> (v, true)) in
  let amo =
    if not at_most_one then []
    else
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j -> if j > i then Some [ (i, false); (j, false) ] else None)
            (List.init k Fun.id))
        (List.init k Fun.id)
  in
  {
    Layout.num_values = k;
    num_slots = k;
    patterns;
    side = at_least_one :: amo;
    exclusive = at_most_one;
  }

let log_layout k =
  let b = bits_needed k in
  let code v = List.init b (fun t -> (t, (v lsr t) land 1 = 1)) in
  let patterns = Array.init k code in
  let excluded =
    (* forbid the binary codes in [k, 2^b) *)
    List.init ((1 lsl b) - k) (fun i ->
        List.map (fun (s, pol) -> (s, not pol)) (code (k + i)))
  in
  {
    Layout.num_values = k;
    num_slots = b;
    patterns;
    side = excluded;
    exclusive = true;
  }

let tree_layout tree =
  let k = Ite_tree.num_leaves tree in
  let patterns = Array.make k [] in
  List.iter (fun (v, p) -> patterns.(v) <- p) (Ite_tree.paths tree);
  {
    Layout.num_values = k;
    num_slots = Ite_tree.num_slots tree;
    patterns;
    side = [];
    exclusive = true;
  }

let layout kind k =
  if k < 1 then invalid_arg "Simple_encoding.layout: empty domain";
  match kind with
  | Direct -> direct_layout ~at_most_one:true k
  | Muldirect -> direct_layout ~at_most_one:false k
  | Log -> log_layout k
  | Ite_linear -> tree_layout (Ite_tree.linear k)
  | Ite_log -> tree_layout (Ite_tree.balanced k)

let slots_used kind k = (layout kind k).Layout.num_slots

let values_reachable kind n =
  match kind with
  | Direct | Muldirect -> n
  | Log | Ite_log -> 1 lsl n
  | Ite_linear -> n + 1
