module G = Fpgasat_graph

type heuristic = B1 | S1

let all = [ B1; S1 ]
let name = function B1 -> "b1" | S1 -> "s1"

let of_name s =
  match String.lowercase_ascii s with
  | "b1" -> Some B1
  | "s1" -> Some S1
  | _ -> None

(* Descending degree, ties by descending sum of neighbours' degrees, then by
   index for determinism. *)
let degree_order g vertices =
  let score v = (G.Graph.degree g v, G.Graph.neighbor_degree_sum g v, -v) in
  List.sort (fun a b -> compare (score b) (score a)) vertices

let sequence heuristic g ~k =
  let n = G.Graph.num_vertices g in
  if n = 0 || k <= 1 then []
  else
    match heuristic with
    | S1 ->
        let all = List.init n Fun.id in
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        take (k - 1) (degree_order g all)
    | B1 ->
        let first = G.Graph.max_degree_vertex g in
        let neighbours = degree_order g (G.Graph.neighbors g first) in
        let rec take n = function
          | [] -> []
          | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
        in
        first :: take (k - 2) neighbours

let forbidden heuristic g ~k =
  let seq = sequence heuristic g ~k in
  List.concat
    (List.mapi
       (fun i v -> List.init (k - 1 - i) (fun j -> (v, i + 1 + j)))
       seq)

let pp fmt h = Format.pp_print_string fmt (name h)

let pp_option fmt = function
  | None -> Format.pp_print_string fmt "-"
  | Some h -> pp fmt h
