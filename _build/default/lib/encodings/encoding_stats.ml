type t = {
  vars_per_csp_var : int;
  side_clauses_per_csp_var : int;
  side_literals_per_csp_var : int;
  conflict_clauses_per_edge : int;
  conflict_literals_per_edge : int;
}

let of_layout (layout : Layout.t) =
  let side_literals =
    List.fold_left (fun acc clause -> acc + List.length clause) 0 layout.Layout.side
  in
  let conflict_literals =
    Array.fold_left
      (fun acc pattern -> acc + (2 * List.length pattern))
      0 layout.Layout.patterns
  in
  {
    vars_per_csp_var = layout.Layout.num_slots;
    side_clauses_per_csp_var = List.length layout.Layout.side;
    side_literals_per_csp_var = side_literals;
    conflict_clauses_per_edge = layout.Layout.num_values;
    conflict_literals_per_edge = conflict_literals;
  }

let predict encoding ~k = of_layout (Encoding.layout encoding k)
let total_vars t ~num_vertices = num_vertices * t.vars_per_csp_var

let total_clauses t ~num_vertices ~num_edges =
  (num_vertices * t.side_clauses_per_csp_var)
  + (num_edges * t.conflict_clauses_per_edge)

let total_literals t ~num_vertices ~num_edges =
  (num_vertices * t.side_literals_per_csp_var)
  + (num_edges * t.conflict_literals_per_edge)

let pp fmt t =
  Format.fprintf fmt
    "vars/v=%d side-clauses/v=%d side-lits/v=%d conflict-clauses/e=%d \
     conflict-lits/e=%d"
    t.vars_per_csp_var t.side_clauses_per_csp_var t.side_literals_per_csp_var
    t.conflict_clauses_per_edge t.conflict_literals_per_edge
