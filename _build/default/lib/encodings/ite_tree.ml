type t = Leaf of int | Node of int * t * t

let linear k =
  if k < 1 then invalid_arg "Ite_tree.linear";
  (* slot j guards value j; the final else-leaf is value k-1 *)
  let rec build j = if j = k - 1 then Leaf j else Node (j, Leaf j, build (j + 1)) in
  build 0

let balanced k =
  if k < 1 then invalid_arg "Ite_tree.balanced";
  (* ceil/floor split with one slot per depth keeps leaf depths within
     {⌈log₂ k⌉ − 1, ⌈log₂ k⌉} and reuses each slot across a whole level. *)
  let rec build first count depth =
    if count = 1 then Leaf first
    else
      let left = (count + 1) / 2 in
      Node (depth, build first left (depth + 1), build (first + left) (count - left) (depth + 1))
  in
  build 0 k 0

let rec num_leaves = function
  | Leaf _ -> 1
  | Node (_, t, e) -> num_leaves t + num_leaves e

let num_slots tree =
  let rec max_slot = function
    | Leaf _ -> -1
    | Node (s, t, e) -> max s (max (max_slot t) (max_slot e))
  in
  max_slot tree + 1

let paths tree =
  let rec go path = function
    | Leaf v -> [ (v, List.rev path) ]
    | Node (s, t, e) -> go ((s, true) :: path) t @ go ((s, false) :: path) e
  in
  go [] tree

let well_formed tree =
  let rec go seen = function
    | Leaf _ -> true
    | Node (s, t, e) ->
        (not (List.mem s seen)) && go (s :: seen) t && go (s :: seen) e
  in
  go [] tree

let leaves_in_order tree = List.map fst (paths tree)

let render ?(value_name = fun v -> Printf.sprintf "v%d" v) tree =
  let buf = Buffer.create 256 in
  let rec go prefix connector = function
    | Leaf v -> Buffer.add_string buf (Printf.sprintf "%s%s%s\n" prefix connector (value_name v))
    | Node (s, t, e) ->
        Buffer.add_string buf (Printf.sprintf "%s%sITE(i%d)\n" prefix connector s);
        let child_prefix =
          prefix ^ if connector = "" then "" else if connector = "`-0- " then "     " else "|    "
        in
        go child_prefix "|-1- " t;
        go child_prefix "`-0- " e
  in
  go "" "" tree;
  Buffer.contents buf
