(** BDD-based graph colouring — the pre-SAT baseline.

    Builds one monolithic BDD over the direct-encoding variables
    (exactly-one colour per vertex, disequalities per edge), as the
    BDD-era routability checkers did. Decides colourability, extracts a
    colouring, and — something SAT cannot do — counts all proper
    colourings. The node limit is part of the interface: hitting it on
    realistic conflict graphs is the scalability cliff that motivated the
    move to SAT (paper, Sect. 1). *)

type answer =
  | Colorable of Fpgasat_graph.Coloring.t
  | Uncolorable
  | Node_limit  (** The BDD exceeded [max_nodes] while being built. *)

val k_colorable : ?max_nodes:int -> Fpgasat_graph.Graph.t -> k:int -> answer
(** Default [max_nodes]: 2,000,000. *)

val count_colorings :
  ?max_nodes:int -> Fpgasat_graph.Graph.t -> k:int -> float option
(** Number of proper [k]-colourings, [None] on node-limit. Exact up to
    float precision. *)

val build_stats :
  ?max_nodes:int -> Fpgasat_graph.Graph.t -> k:int -> (int * int) option
(** [(final BDD size, total allocated nodes)] for the constraint BDD —
    the measurements behind the BDD-vs-SAT bench. [None] on node-limit. *)
