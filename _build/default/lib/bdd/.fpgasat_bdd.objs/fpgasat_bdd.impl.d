lib/bdd/fpgasat_bdd.ml: Bdd Coloring_bdd
