lib/bdd/coloring_bdd.mli: Fpgasat_graph
