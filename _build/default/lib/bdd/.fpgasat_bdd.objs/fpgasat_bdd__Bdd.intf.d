lib/bdd/bdd.mli:
