lib/bdd/coloring_bdd.ml: Array Bdd Fpgasat_graph Fun List
