(** BDD substrate: the pre-SAT technology for FPGA routability checks
    (Wood & Rutenbar, cited as [44] in the paper). {!Bdd} is a small ROBDD
    package; {!Coloring_bdd} decides and counts graph colourings with it —
    the baseline whose scalability cliff motivated SAT-based routing. *)

module Bdd = Bdd
module Coloring_bdd = Coloring_bdd
