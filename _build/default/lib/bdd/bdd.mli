(** Reduced ordered binary decision diagrams.

    A small ROBDD package with hash-consed nodes and memoised operations —
    the technology Wood & Rutenbar used for FPGA routability before SAT
    solvers took over (paper, Sect. 1). Kept deliberately simple; the
    [max_nodes] limit exists because exceeding memory is the expected
    behaviour on all but small routing instances, and the comparison bench
    measures exactly where that cliff is.

    Variables are integers [0 .. n-1]; the variable order is the integer
    order. All nodes live in a {!manager}. *)

type manager
type t
(** A BDD rooted in some manager node. Only combine BDDs from the same
    manager. *)

exception Node_limit_exceeded

val manager : ?max_nodes:int -> unit -> manager
(** [max_nodes] (default 2,000,000) bounds the unique table;
    {!Node_limit_exceeded} is raised beyond it. *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** The function "variable [i] is true". *)

val nvar : manager -> int -> t
val bdd_not : manager -> t -> t
val bdd_and : manager -> t -> t -> t
val bdd_or : manager -> t -> t -> t
val bdd_xor : manager -> t -> t -> t
val ite : manager -> t -> t -> t -> t
val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool

val size : manager -> t -> int
(** Nodes reachable from this root. *)

val live_nodes : manager -> int
(** Total nodes allocated in the manager. *)

val any_sat : manager -> t -> (int * bool) list
(** A satisfying partial assignment (variables not mentioned are
    don't-care). Raises [Not_found] on the zero BDD. *)

val sat_count : manager -> nvars:int -> t -> float
(** Number of satisfying assignments over [nvars] variables. *)

val eval : manager -> t -> (int -> bool) -> bool
