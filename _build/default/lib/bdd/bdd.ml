exception Node_limit_exceeded

(* Nodes are integers: 0 = false, 1 = true, otherwise an index into the
   node arrays. Reduction invariant: low <> high, and every (var, low,
   high) triple is unique. *)
type manager = {
  max_nodes : int;
  mutable vars : int array; (* node -> branching variable *)
  mutable lows : int array;
  mutable highs : int array;
  mutable next : int;
  unique : (int * int * int, int) Hashtbl.t;
  apply_cache : (int * int * int, int) Hashtbl.t; (* (op, a, b) -> node *)
}

type t = int

let manager ?(max_nodes = 2_000_000) () =
  let initial = 1024 in
  {
    max_nodes;
    vars = Array.make initial max_int;
    lows = Array.make initial 0;
    highs = Array.make initial 0;
    next = 2;
    unique = Hashtbl.create 4096;
    apply_cache = Hashtbl.create 4096;
  }

let zero _ = 0
let one _ = 1
let is_zero t = t = 0
let is_one t = t = 1
let equal (a : t) (b : t) = a = b
let var_of m node = if node < 2 then max_int else m.vars.(node)

let mk m v low high =
  if low = high then low
  else
    match Hashtbl.find_opt m.unique (v, low, high) with
    | Some node -> node
    | None ->
        if m.next >= m.max_nodes then raise Node_limit_exceeded;
        if m.next >= Array.length m.vars then begin
          let cap = 2 * Array.length m.vars in
          let grow a =
            let b = Array.make cap 0 in
            Array.blit a 0 b 0 (Array.length a);
            b
          in
          m.vars <- grow m.vars;
          m.lows <- grow m.lows;
          m.highs <- grow m.highs
        end;
        let node = m.next in
        m.next <- node + 1;
        m.vars.(node) <- v;
        m.lows.(node) <- low;
        m.highs.(node) <- high;
        Hashtbl.add m.unique (v, low, high) node;
        node

let var m i = mk m i 0 1
let nvar m i = mk m i 1 0

(* binary apply with memoisation; op codes: 0 and, 1 or, 2 xor *)
let rec apply m op a b =
  let terminal =
    match (op, a, b) with
    | 0, 0, _ | 0, _, 0 -> Some 0
    | 0, 1, x | 0, x, 1 -> Some x
    | 1, 1, _ | 1, _, 1 -> Some 1
    | 1, 0, x | 1, x, 0 -> Some x
    | 2, 0, x | 2, x, 0 -> Some x
    | 2, 1, x | 2, x, 1 -> if x < 2 then Some (1 - x) else None
    | _ -> if a = b then Some (match op with 0 | 1 -> a | _ -> 0) else None
  in
  match terminal with
  | Some node -> node
  | None -> (
      let key = (op, min a b, max a b) in
      match Hashtbl.find_opt m.apply_cache key with
      | Some node -> node
      | None ->
          let va = var_of m a and vb = var_of m b in
          let v = min va vb in
          let a0, a1 = if va = v then (m.lows.(a), m.highs.(a)) else (a, a) in
          let b0, b1 = if vb = v then (m.lows.(b), m.highs.(b)) else (b, b) in
          let low = apply m op a0 b0 in
          let high = apply m op a1 b1 in
          let node = mk m v low high in
          Hashtbl.add m.apply_cache key node;
          node)

let bdd_and m a b = apply m 0 a b
let bdd_or m a b = apply m 1 a b
let bdd_xor m a b = apply m 2 a b
let bdd_not m a = bdd_xor m a 1
let ite m i t e = bdd_or m (bdd_and m i t) (bdd_and m (bdd_not m i) e)

let size m root =
  let seen = Hashtbl.create 64 in
  let rec go node =
    if node >= 2 && not (Hashtbl.mem seen node) then begin
      Hashtbl.add seen node ();
      go m.lows.(node);
      go m.highs.(node)
    end
  in
  go root;
  Hashtbl.length seen + min 2 (if root < 2 then 1 else 2)

let live_nodes m = m.next

let any_sat m root =
  if root = 0 then raise Not_found;
  let rec go node acc =
    if node = 1 then List.rev acc
    else begin
      assert (node <> 0);
      let v = m.vars.(node) in
      if m.lows.(node) <> 0 then go m.lows.(node) ((v, false) :: acc)
      else go m.highs.(node) ((v, true) :: acc)
    end
  in
  go root []

let sat_count m ~nvars root =
  let memo = Hashtbl.create 64 in
  (* count over the remaining variable range [v, nvars) *)
  let rec go node v =
    if node = 0 then 0.
    else if node = 1 then 2. ** float_of_int (nvars - v)
    else
      let nv = m.vars.(node) in
      let skip = 2. ** float_of_int (nv - v) in
      let inner =
        match Hashtbl.find_opt memo node with
        | Some c -> c
        | None ->
            let c = go m.lows.(node) (nv + 1) +. go m.highs.(node) (nv + 1) in
            Hashtbl.add memo node c;
            c
      in
      skip *. inner
  in
  go root 0

let eval m root assignment =
  let rec go node =
    if node < 2 then node = 1
    else if assignment m.vars.(node) then go m.highs.(node)
    else go m.lows.(node)
  in
  go root
