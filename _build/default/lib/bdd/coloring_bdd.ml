module G = Fpgasat_graph

type answer =
  | Colorable of G.Coloring.t
  | Uncolorable
  | Node_limit

(* direct encoding: variable v*k + c means "vertex v has colour c";
   vertex-major order keeps related variables adjacent, which is the
   standard (and still insufficient, which is the point) mitigation *)
let build m graph ~k =
  let xvar v c = Bdd.var m ((v * k) + c) in
  let n = G.Graph.num_vertices graph in
  let exactly_one v =
    let at_least =
      List.fold_left (fun acc c -> Bdd.bdd_or m acc (xvar v c)) (Bdd.zero m)
        (List.init k Fun.id)
    in
    let at_most = ref (Bdd.one m) in
    for c1 = 0 to k - 1 do
      for c2 = c1 + 1 to k - 1 do
        let not_both =
          Bdd.bdd_not m (Bdd.bdd_and m (xvar v c1) (xvar v c2))
        in
        at_most := Bdd.bdd_and m !at_most not_both
      done
    done;
    Bdd.bdd_and m at_least !at_most
  in
  let acc = ref (Bdd.one m) in
  for v = 0 to n - 1 do
    acc := Bdd.bdd_and m !acc (exactly_one v)
  done;
  G.Graph.iter_edges
    (fun u v ->
      for c = 0 to k - 1 do
        let conflict = Bdd.bdd_not m (Bdd.bdd_and m (xvar u c) (xvar v c)) in
        acc := Bdd.bdd_and m !acc conflict
      done)
    graph;
  !acc

let with_manager ?max_nodes graph ~k f =
  if k < 1 then invalid_arg "Coloring_bdd: k < 1";
  let m = Bdd.manager ?max_nodes () in
  match
    let bdd = build m graph ~k in
    f m bdd
  with
  | result -> Some result
  | exception Bdd.Node_limit_exceeded -> None

let k_colorable ?max_nodes graph ~k =
  let n = G.Graph.num_vertices graph in
  let extract m bdd =
    if Bdd.is_zero bdd then Uncolorable
    else begin
      (* peel one colour per vertex by conjoining its variable *)
      let current = ref bdd in
      let coloring = Array.make n (-1) in
      for v = 0 to n - 1 do
        let rec pick c =
          if c >= k then failwith "Coloring_bdd: no colour selectable"
          else
            let restricted = Bdd.bdd_and m !current (Bdd.var m ((v * k) + c)) in
            if Bdd.is_zero restricted then pick (c + 1)
            else begin
              current := restricted;
              coloring.(v) <- c
            end
        in
        pick 0
      done;
      Colorable coloring
    end
  in
  match with_manager ?max_nodes graph ~k extract with
  | Some answer -> answer
  | None -> Node_limit

let count_colorings ?max_nodes graph ~k =
  let n = G.Graph.num_vertices graph in
  with_manager ?max_nodes graph ~k (fun m bdd ->
      Bdd.sat_count m ~nvars:(n * k) bdd)

let build_stats ?max_nodes graph ~k =
  with_manager ?max_nodes graph ~k (fun m bdd ->
      (Bdd.size m bdd, Bdd.live_nodes m))
