(** Greedy colouring heuristics.

    These provide fast upper bounds on the chromatic number. The flow uses
    them to bracket the binary search for the minimal channel width, and the
    benchmark harness uses DSATUR as the non-SAT baseline detailed router
    (one-net-at-a-time, cannot prove unroutability — the contrast the paper
    draws in its introduction). *)

val sequential : ?order:int list -> Graph.t -> Coloring.t
(** First-fit colouring in the given vertex order (default [0 .. n-1]). *)

val dsatur : Graph.t -> Coloring.t
(** Brélaz's DSATUR: always colour the vertex with the highest saturation
    (number of distinct colours among neighbours), ties by degree. *)

val upper_bound : Graph.t -> int
(** Colours used by DSATUR — an upper bound on the chromatic number. *)
