(** DIMACS graph ("col") format — the paper's intermediate representation.

    The paper's tool flow first emits the FPGA conflict graph in this format
    ([p edge <n> <m>] header, [e <u> <v>] edge lines, 1-based vertices) so
    that any graph-colouring-to-SAT tool can pick it up. *)

exception Parse_error of string

val parse_string : string -> Graph.t
val parse_file : string -> Graph.t
val to_string : ?comments:string list -> Graph.t -> string
val write_file : string -> ?comments:string list -> Graph.t -> unit
