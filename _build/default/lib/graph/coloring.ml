type t = int array

let num_colors c = Array.fold_left (fun acc x -> max acc (x + 1)) 0 c

type violation =
  | Out_of_range of int
  | Monochromatic_edge of int * int

exception Found of violation

let check g ~k coloring =
  if Array.length coloring <> Graph.num_vertices g then
    invalid_arg "Coloring.check: length mismatch";
  try
    Array.iteri
      (fun v c -> if c < 0 || c >= k then raise (Found (Out_of_range v)))
      coloring;
    Graph.iter_edges
      (fun u v ->
        if coloring.(u) = coloring.(v) then raise (Found (Monochromatic_edge (u, v))))
      g;
    Ok ()
  with Found viol -> Error viol

let is_proper g ~k coloring = Result.is_ok (check g ~k coloring)

let pp_violation fmt = function
  | Out_of_range v -> Format.fprintf fmt "vertex %d has an out-of-range colour" v
  | Monochromatic_edge (u, v) ->
      Format.fprintf fmt "edge (%d, %d) is monochromatic" u v
