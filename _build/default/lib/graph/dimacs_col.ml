exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

let parse_lines lines =
  let graph = ref None in
  let handle_line lineno line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then ()
    else
      let fields =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      match fields with
      | "p" :: rest -> (
          if !graph <> None then fail lineno "duplicate header";
          match rest with
          | [ "edge"; n; _m ] | [ "edges"; n; _m ] -> (
              match int_of_string_opt n with
              | Some n when n >= 0 -> graph := Some (Graph.create n)
              | Some _ | None -> fail lineno "bad vertex count")
          | _ -> fail lineno "malformed p edge header")
      | [ "e"; u; v ] -> (
          match !graph with
          | None -> fail lineno "edge before header"
          | Some g -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v ->
                  if u < 1 || v < 1 || u > Graph.num_vertices g || v > Graph.num_vertices g
                  then fail lineno "vertex out of range"
                  else if u = v then fail lineno "self-loop"
                  else Graph.add_edge g (u - 1) (v - 1)
              | _ -> fail lineno "bad edge line"))
      | _ -> fail lineno ("unrecognised line: " ^ line)
  in
  List.iteri (fun i line -> handle_line (i + 1) line) lines;
  match !graph with
  | None -> raise (Parse_error "missing p edge header")
  | Some g -> g

let parse_string s = parse_lines (String.split_on_char '\n' s)

let parse_file path =
  let ic = open_in path in
  let rec read acc =
    match input_line ic with
    | line -> read (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  parse_lines lines

let to_string ?(comments = []) g =
  let buf = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "c %s\n" c)) comments;
  Buffer.add_string buf
    (Printf.sprintf "p edge %d %d\n" (Graph.num_vertices g) (Graph.num_edges g));
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "e %d %d\n" (u + 1) (v + 1)))
    g;
  Buffer.contents buf

let write_file path ?comments g =
  let oc = open_out path in
  output_string oc (to_string ?comments g);
  close_out oc
