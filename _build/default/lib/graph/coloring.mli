(** Vertex colourings and their verification.

    A colouring assigns each vertex a colour in [0 .. k-1]. In the FPGA
    interpretation a colour is a routing track, so verification here is the
    final word on whether a decoded SAT model is a legal detailed routing. *)

type t = int array
(** [t.(v)] is the colour of vertex [v]. *)

val num_colors : t -> int
(** [1 + max colour], [0] for the empty colouring. *)

type violation =
  | Out_of_range of int  (** Vertex whose colour is outside [0, k). *)
  | Monochromatic_edge of int * int  (** Adjacent vertices sharing a colour. *)

val check : Graph.t -> k:int -> t -> (unit, violation) result
(** First violation found, if any. Raises [Invalid_argument] if the
    colouring's length differs from the vertex count. *)

val is_proper : Graph.t -> k:int -> t -> bool
val pp_violation : Format.formatter -> violation -> unit
