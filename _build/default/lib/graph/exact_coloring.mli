(** Exact graph colouring by branch and bound.

    The classical alternative the paper alludes to: "CSPs are usually solved
    by specialized search algorithms" (Sect. 1). This is a DSATUR-ordered
    branch-and-bound colourer with clique-based lower bounding — a direct
    CSP search over the same conflict graphs the SAT encodings tackle,
    usable both as a correctness oracle and as a baseline in the ablation
    benches. Search effort is bounded by a node budget so callers can use
    it on graphs where exhaustive search is hopeless. *)

type answer =
  | Colorable of Coloring.t  (** A proper [k]-colouring. *)
  | Uncolorable  (** Proof by exhaustion that none exists. *)
  | Exhausted  (** Node budget ran out. *)

val k_colorable : ?max_nodes:int -> Graph.t -> k:int -> answer
(** [k_colorable g ~k] decides [k]-colourability. [max_nodes] bounds the
    number of search-tree nodes (default 10 million). *)

type chromatic = Exact of int | Bounds of int * int

val chromatic_number : ?max_nodes:int -> Graph.t -> chromatic
(** The chromatic number, or the best [(lower, upper)] bounds the budget
    allowed ([max_nodes] applies per [k]-query). *)
