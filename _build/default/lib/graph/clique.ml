let greedy g =
  let n = Graph.num_vertices g in
  if n = 0 then []
  else begin
    let by_degree_desc =
      List.sort
        (fun a b -> compare (Graph.degree g b, a) (Graph.degree g a, b))
        (List.init n Fun.id)
    in
    let in_clique = Array.make n false in
    let clique = ref [] in
    let compatible v =
      List.for_all (fun u -> Graph.mem_edge g u v) !clique
    in
    List.iter
      (fun v ->
        if (not in_clique.(v)) && compatible v then begin
          in_clique.(v) <- true;
          clique := v :: !clique
        end)
      by_degree_desc;
    List.rev !clique
  end

let lower_bound g = List.length (greedy g)
