let palette =
  [|
    "lightblue"; "salmon"; "palegreen"; "gold"; "plum"; "khaki"; "lightcyan";
    "orange"; "pink"; "gray80";
  |]

let to_dot ?(name = "g") ?coloring g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [style=filled];\n";
  for v = 0 to Graph.num_vertices g - 1 do
    match coloring with
    | Some c when v < Array.length c && c.(v) >= 0 ->
        Buffer.add_string buf
          (Printf.sprintf "  %d [label=\"%d/%d\", fillcolor=%s];\n" v v c.(v)
             palette.(c.(v) mod Array.length palette))
    | Some _ | None ->
        Buffer.add_string buf (Printf.sprintf "  %d [fillcolor=white];\n" v)
  done;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path ?name ?coloring g =
  let oc = open_out path in
  output_string oc (to_dot ?name ?coloring g);
  close_out oc
