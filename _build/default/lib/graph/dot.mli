(** Graphviz export, for inspecting conflict graphs and colourings. *)

val to_dot : ?name:string -> ?coloring:Coloring.t -> Graph.t -> string
(** DOT source for the graph; when a colouring is given, vertices are filled
    from a rotating palette and labelled ["v/c"]. *)

val write_file : string -> ?name:string -> ?coloring:Coloring.t -> Graph.t -> unit
