lib/graph/exact_coloring.mli: Coloring Graph
