lib/graph/dimacs_col.mli: Graph
