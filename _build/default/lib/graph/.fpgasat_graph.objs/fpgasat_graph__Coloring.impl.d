lib/graph/coloring.ml: Array Format Graph Result
