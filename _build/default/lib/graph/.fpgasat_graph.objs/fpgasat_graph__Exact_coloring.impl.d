lib/graph/exact_coloring.ml: Array Clique Coloring Fun Graph Greedy List
