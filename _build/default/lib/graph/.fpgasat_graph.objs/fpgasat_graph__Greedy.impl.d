lib/graph/greedy.ml: Array Coloring Fun Graph List
