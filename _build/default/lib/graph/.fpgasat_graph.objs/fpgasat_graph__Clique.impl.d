lib/graph/clique.ml: Array Fun Graph List
