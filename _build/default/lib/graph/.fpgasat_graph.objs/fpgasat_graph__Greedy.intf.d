lib/graph/greedy.mli: Coloring Graph
