lib/graph/dimacs_col.ml: Buffer Graph List Printf String
