lib/graph/fpgasat_graph.ml: Clique Coloring Dimacs_col Dot Exact_coloring Graph Greedy
