lib/graph/coloring.mli: Format Graph
