lib/graph/dot.mli: Coloring Graph
