(** Graph-colouring substrate.

    FPGA detailed routing reduces to graph colouring (Wu & Marek-Sadowska,
    cited as [45] in the paper); this library holds the graph representation,
    the DIMACS ".col" interchange format the paper's tool flow emits,
    colouring verification, and the classic greedy bounds used to bracket
    SAT queries. *)

module Graph = Graph
module Coloring = Coloring
module Greedy = Greedy
module Clique = Clique
module Dimacs_col = Dimacs_col
module Dot = Dot
module Exact_coloring = Exact_coloring
