(** Undirected simple graphs over vertices [0 .. n-1].

    This is the CSP-graph representation from the paper: vertices are 2-pin
    nets, edges are exclusivity constraints ("must be routed on different
    tracks"), and colours are tracks. Self-loops are rejected (a vertex
    cannot conflict with itself) and parallel edges are deduplicated, which
    realises the paper's rule that a pair of nets sharing several connection
    blocks yields a single constraint. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. Raises
    [Invalid_argument] if [n < 0]. *)

val num_vertices : t -> int
val num_edges : t -> int

val add_edge : t -> int -> int -> unit
(** Adds an undirected edge. Duplicate additions are ignored; self-loops
    raise [Invalid_argument]. *)

val mem_edge : t -> int -> int -> bool
val neighbors : t -> int -> int list
(** In insertion order. *)

val degree : t -> int -> int

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each edge visited once, with the smaller endpoint first. *)

val edges : t -> (int * int) list
val of_edges : int -> (int * int) list -> t
val max_degree_vertex : t -> int
(** Ties broken by the smaller index. Raises [Invalid_argument] on the empty
    graph. *)

val neighbor_degree_sum : t -> int -> int
(** Sum of the degrees of a vertex's neighbours — the tie-breaker used by
    the paper's symmetry-breaking heuristics. *)

val density : t -> float
(** [2m / (n (n - 1))]; [0.] for graphs with fewer than two vertices. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
