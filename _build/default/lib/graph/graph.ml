type t = {
  n : int;
  adj : int list array; (* reversed insertion order per vertex *)
  deg : int array;
  edge_set : (int, unit) Hashtbl.t; (* key = min * n + max *)
  mutable m : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create";
  {
    n;
    adj = Array.make (max n 1) [];
    deg = Array.make (max n 1) 0;
    edge_set = Hashtbl.create 64;
    m = 0;
  }

let num_vertices g = g.n
let num_edges g = g.m

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let key g u v = if u < v then (u * g.n) + v else (v * g.n) + u

let mem_edge g u v =
  check_vertex g u;
  check_vertex g v;
  Hashtbl.mem g.edge_set (key g u v)

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let k = key g u v in
  if not (Hashtbl.mem g.edge_set k) then begin
    Hashtbl.add g.edge_set k ();
    g.adj.(u) <- v :: g.adj.(u);
    g.adj.(v) <- u :: g.adj.(v);
    g.deg.(u) <- g.deg.(u) + 1;
    g.deg.(v) <- g.deg.(v) + 1;
    g.m <- g.m + 1
  end

let neighbors g v =
  check_vertex g v;
  List.rev g.adj.(v)

let degree g v =
  check_vertex g v;
  g.deg.(v)

let iter_edges f g =
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges (fun u v -> acc := (u, v) :: !acc) g;
  List.rev !acc

let of_edges n edge_list =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) edge_list;
  g

let max_degree_vertex g =
  if g.n = 0 then invalid_arg "Graph.max_degree_vertex: empty graph";
  let best = ref 0 in
  for v = 1 to g.n - 1 do
    if g.deg.(v) > g.deg.(!best) then best := v
  done;
  !best

let neighbor_degree_sum g v =
  check_vertex g v;
  List.fold_left (fun acc w -> acc + g.deg.(w)) 0 g.adj.(v)

let density g =
  if g.n < 2 then 0.
  else 2. *. float_of_int g.m /. (float_of_int g.n *. float_of_int (g.n - 1))

let copy g =
  {
    n = g.n;
    adj = Array.copy g.adj;
    deg = Array.copy g.deg;
    edge_set = Hashtbl.copy g.edge_set;
    m = g.m;
  }

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d, density=%.3f)" g.n g.m (density g)
