type answer =
  | Colorable of Coloring.t
  | Uncolorable
  | Exhausted

exception Found of int array
exception Out_of_nodes

(* DSATUR-style branch and bound: always branch on the uncoloured vertex
   with the highest saturation (ties: degree), try existing colours first
   and at most one fresh colour — standard symmetry avoidance that keeps
   the search from re-deriving colour permutations. *)
let k_colorable ?(max_nodes = 10_000_000) g ~k =
  if k < 0 then invalid_arg "Exact_coloring.k_colorable";
  let n = Graph.num_vertices g in
  if n = 0 then Colorable [||]
  else begin
    let colors = Array.make n (-1) in
    let nodes = ref 0 in
    let adjacent_colors v =
      List.sort_uniq compare
        (List.filter_map
           (fun w -> if colors.(w) >= 0 then Some colors.(w) else None)
           (Graph.neighbors g v))
    in
    let pick () =
      let best = ref (-1) in
      let best_key = ref (-1, -1) in
      for v = 0 to n - 1 do
        if colors.(v) < 0 then begin
          let key = (List.length (adjacent_colors v), Graph.degree g v) in
          if key > !best_key then begin
            best_key := key;
            best := v
          end
        end
      done;
      !best
    in
    let rec branch colored used =
      incr nodes;
      if !nodes > max_nodes then raise Out_of_nodes;
      if colored = n then raise (Found (Array.copy colors))
      else begin
        let v = pick () in
        let forbidden = adjacent_colors v in
        (* existing colours, then one fresh colour if allowed *)
        let candidates =
          List.filter (fun c -> not (List.mem c forbidden)) (List.init used Fun.id)
          @ (if used < k then [ used ] else [])
        in
        List.iter
          (fun c ->
            colors.(v) <- c;
            branch (colored + 1) (max used (c + 1));
            colors.(v) <- -1)
          candidates
      end
    in
    match branch 0 0 with
    | () -> Uncolorable
    | exception Found coloring -> Colorable coloring
    | exception Out_of_nodes -> Exhausted
  end

type chromatic = Exact of int | Bounds of int * int

let chromatic_number ?max_nodes g =
  let lower = max 1 (Clique.lower_bound g) in
  let upper = max lower (Greedy.upper_bound g) in
  if Graph.num_vertices g = 0 then Exact 0
  else
    (* walk down from the DSATUR bound (which always succeeds); the first
       refusal pins the chromatic number exactly *)
    let rec go k best_upper =
      if k < lower then Exact lower
      else
        match k_colorable ?max_nodes g ~k with
        | Colorable _ -> go (k - 1) k
        | Uncolorable -> Exact best_upper
        | Exhausted -> Bounds (lower, best_upper)
    in
    go upper (upper + 1)
