let smallest_free used =
  let rec go c = if List.mem c used then go (c + 1) else c in
  go 0

let sequential ?order g =
  let n = Graph.num_vertices g in
  let order = match order with Some o -> o | None -> List.init n Fun.id in
  let coloring = Array.make n (-1) in
  let color v =
    let used =
      List.filter_map
        (fun w -> if coloring.(w) >= 0 then Some coloring.(w) else None)
        (Graph.neighbors g v)
    in
    coloring.(v) <- smallest_free used
  in
  List.iter color order;
  coloring

let dsatur g =
  let n = Graph.num_vertices g in
  let coloring = Array.make n (-1) in
  let adjacent_colors = Array.make n [] in
  let saturation v = List.length (List.sort_uniq compare adjacent_colors.(v)) in
  let pick () =
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if coloring.(v) < 0 then
        if !best < 0 then best := v
        else
          let sv = saturation v and sb = saturation !best in
          if sv > sb || (sv = sb && Graph.degree g v > Graph.degree g !best) then
            best := v
    done;
    !best
  in
  let rec loop () =
    let v = pick () in
    if v >= 0 then begin
      let c = smallest_free (List.sort_uniq compare adjacent_colors.(v)) in
      coloring.(v) <- c;
      List.iter
        (fun w -> adjacent_colors.(w) <- c :: adjacent_colors.(w))
        (Graph.neighbors g v);
      loop ()
    end
  in
  loop ();
  coloring

let upper_bound g = Coloring.num_colors (dsatur g)
