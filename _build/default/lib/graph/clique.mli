(** Greedy clique lower bound.

    A clique of size [c] forces at least [c] colours, i.e. at least [c]
    tracks in the FPGA reading. The flow uses this to skip SAT calls for
    trivially unroutable widths, and the benchmark generator uses it to
    check that the hard UNSAT instances are not refuted by a clique alone. *)

val greedy : Graph.t -> int list
(** A maximal (not maximum) clique, grown greedily from the highest-degree
    vertex, preferring high-degree candidates. Empty for the empty graph. *)

val lower_bound : Graph.t -> int
(** Size of {!greedy}'s clique. *)
