lib/fpga/render.mli: Global_route
