lib/fpga/serial.mli: Arch Global_route Netlist
