lib/fpga/conflict_graph.mli: Fpgasat_encodings Fpgasat_graph Global_route
