lib/fpga/congestion.ml: Arch Array Format Global_route Hashtbl List Netlist Option
