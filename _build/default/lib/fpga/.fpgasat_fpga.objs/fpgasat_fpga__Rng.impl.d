lib/fpga/rng.ml: Array Int64
