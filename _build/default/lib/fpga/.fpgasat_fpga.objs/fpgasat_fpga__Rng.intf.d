lib/fpga/rng.mli:
