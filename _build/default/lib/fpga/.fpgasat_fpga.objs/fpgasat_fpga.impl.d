lib/fpga/fpgasat_fpga.ml: Arch Benchmarks Conflict_graph Congestion Detailed_route Global_route Global_router Netlist Render Rng Serial
