lib/fpga/conflict_graph.ml: Arch Array Fpgasat_encodings Fpgasat_graph Global_route Hashtbl List Netlist Option
