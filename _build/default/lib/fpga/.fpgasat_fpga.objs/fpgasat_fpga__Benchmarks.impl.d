lib/fpga/benchmarks.ml: Arch Conflict_graph Congestion Format Fpgasat_graph Global_route Global_router List Netlist Rng String
