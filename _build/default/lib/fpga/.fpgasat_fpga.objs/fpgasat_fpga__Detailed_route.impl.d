lib/fpga/detailed_route.ml: Arch Array Format Global_route Hashtbl List Netlist Option
