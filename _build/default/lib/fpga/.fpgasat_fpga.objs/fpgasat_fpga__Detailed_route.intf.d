lib/fpga/detailed_route.mli: Arch Format Fpgasat_graph Global_route
