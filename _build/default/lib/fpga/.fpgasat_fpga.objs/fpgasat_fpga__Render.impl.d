lib/fpga/render.ml: Arch Array Buffer Char Congestion Global_route List Netlist Printf
