lib/fpga/global_route.ml: Arch Array Format List Netlist Printf
