lib/fpga/arch.mli: Format
