lib/fpga/serial.ml: Arch Array Buffer Global_route List Netlist Printf Scanf String
