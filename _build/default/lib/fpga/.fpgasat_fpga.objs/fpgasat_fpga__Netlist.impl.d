lib/fpga/netlist.ml: Arch Array Format List Rng
