lib/fpga/netlist.mli: Arch Format Rng
