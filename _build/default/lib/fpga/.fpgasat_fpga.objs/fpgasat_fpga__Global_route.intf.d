lib/fpga/global_route.mli: Arch Format Netlist
