lib/fpga/arch.ml: Format List
