lib/fpga/global_router.ml: Arch Array Global_route Hashtbl List Netlist Option
