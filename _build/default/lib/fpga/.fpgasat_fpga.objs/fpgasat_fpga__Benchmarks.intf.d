lib/fpga/benchmarks.mli: Arch Format Fpgasat_graph Global_route Global_router Netlist
