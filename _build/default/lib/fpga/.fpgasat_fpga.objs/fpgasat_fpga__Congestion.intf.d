lib/fpga/congestion.mli: Arch Format Global_route
