lib/fpga/global_router.mli: Arch Global_route Netlist
