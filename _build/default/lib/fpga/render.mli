(** ASCII rendering of the FPGA array.

    A quick visual check of what the global router produced: logic blocks
    as [[ ]], each channel segment annotated with its congestion (number of
    distinct nets through it), [.] for idle segments. Row 0 is drawn at the
    bottom, matching the coordinate system. *)

val congestion_map : Global_route.t -> string
(** The whole array with per-segment usage digits (values above 9 print as
    [*]). *)

val subnet_path : Global_route.t -> int -> string
(** The array with one subnet's path marked [#], its endpoints [S]/[T]. *)
