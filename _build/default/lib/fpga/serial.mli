(** Text serialisation of netlists and global routings.

    Lets users bring their own designs and routes to the flow (the role
    SEGA's benchmark files played for the paper) and makes benchmark
    instances reproducible artefacts. Formats are line-oriented:

    Netlist ([.nets]):
    {v
    fpga 8
    net 0 (1,2) -> (3,4) (5,6)
    net 1 (0,0) -> (7,7)
    v}

    Global routing ([.routes], subnet order follows the netlist's star
    decomposition):
    {v
    fpga 8
    subnet 0 : V(1,2) H(1,3) V(2,2)
    v} *)

exception Parse_error of string

val netlist_to_string : Arch.t -> Netlist.t -> string
val netlist_of_string : string -> Arch.t * Netlist.t
val write_netlist : string -> Arch.t -> Netlist.t -> unit
val read_netlist : string -> Arch.t * Netlist.t

val routes_to_string : Global_route.t -> string
val routes_of_string : netlist:Netlist.t -> string -> Global_route.t
(** Validates the paths against the declared architecture and netlist. *)

val write_routes : string -> Global_route.t -> unit
val read_routes : netlist:Netlist.t -> string -> Global_route.t
