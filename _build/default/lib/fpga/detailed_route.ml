type t = { route : Global_route.t; width : int; tracks : int array }

type violation =
  | Track_out_of_range of int
  | Segment_conflict of { segment : Arch.segment; subnet_a : int; subnet_b : int }

exception Bad of violation

let verify (gr : Global_route.t) ~width tracks =
  let arch = gr.Global_route.arch in
  let netlist = gr.Global_route.netlist in
  let parent id = netlist.Netlist.subnets.(id).Netlist.parent in
  try
    Array.iteri
      (fun id trk -> if trk < 0 || trk >= width then raise (Bad (Track_out_of_range id)))
      tracks;
    (* (segment, track) -> first subnet seen there; a second subnet from a
       different net is a short *)
    let seen = Hashtbl.create 256 in
    Array.iteri
      (fun id path ->
        List.iter
          (fun seg ->
            let key = (Arch.segment_id arch seg, tracks.(id)) in
            match Hashtbl.find_opt seen key with
            | Some other when parent other <> parent id ->
                raise (Bad (Segment_conflict { segment = seg; subnet_a = other; subnet_b = id }))
            | Some _ -> ()
            | None -> Hashtbl.add seen key id)
          path)
      gr.Global_route.paths;
    Ok ()
  with Bad v -> Error v

let of_coloring gr ~width coloring =
  match verify gr ~width coloring with
  | Ok () -> Ok { route = gr; width; tracks = Array.copy coloring }
  | Error _ as err -> err

let track t id = t.tracks.(id)

let pp_violation fmt = function
  | Track_out_of_range id -> Format.fprintf fmt "subnet %d: track out of range" id
  | Segment_conflict { segment; subnet_a; subnet_b } ->
      Format.fprintf fmt "subnets %d and %d collide on segment %a" subnet_a
        subnet_b Arch.pp_segment segment

let channel_occupancy t =
  let arch = t.route.Global_route.arch in
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun id path ->
      List.iter
        (fun seg ->
          let sid = Arch.segment_id arch seg in
          Hashtbl.replace tbl sid
            ((t.tracks.(id), id) :: Option.value (Hashtbl.find_opt tbl sid) ~default:[]))
        path)
    t.route.Global_route.paths;
  Hashtbl.fold
    (fun sid entries acc -> (Arch.segment_of_id arch sid, List.sort compare entries) :: acc)
    tbl []
  |> List.sort compare
