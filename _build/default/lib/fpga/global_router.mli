(** A congestion-negotiating maze global router (stands in for SEGA's
    global routings, see DESIGN.md).

    Each 2-pin subnet is routed by Dijkstra over the channel-segment graph;
    segment costs grow with present overuse and accumulated history, and the
    whole netlist is ripped up and rerouted for a few iterations — a small
    PathFinder. Deterministic: ties break on segment ids. *)

type params = {
  iterations : int;  (** Rip-up-and-reroute rounds. *)
  present_factor : float;  (** Cost weight of current sharing. *)
  history_factor : float;  (** Cost weight of accumulated congestion. *)
  capacity : int;  (** Soft per-segment net capacity being negotiated for. *)
}

val default_params : params

val route : ?params:params -> Arch.t -> Netlist.t -> Global_route.t
(** Routes every subnet. Always succeeds (costs are soft); congestion of the
    result is whatever the negotiation achieved — query it with
    {!Congestion}. *)
