type params = {
  iterations : int;
  present_factor : float;
  history_factor : float;
  capacity : int;
}

let default_params =
  { iterations = 8; present_factor = 0.7; history_factor = 0.35; capacity = 4 }

(* Minimal binary heap of (cost, segment id) for Dijkstra; ids break ties so
   routing is deterministic. *)
module Pq = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0., 0); size = 0 }
  let lt (c1, i1) (c2, i2) = c1 < c2 || (c1 = c2 && i1 < i2)

  let push q x =
    if q.size = Array.length q.data then begin
      let data = Array.make (2 * q.size) (0., 0) in
      Array.blit q.data 0 data 0 q.size;
      q.data <- data
    end;
    q.data.(q.size) <- x;
    q.size <- q.size + 1;
    let i = ref (q.size - 1) in
    while !i > 0 && lt q.data.(!i) q.data.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let t = q.data.(!i) in
      q.data.(!i) <- q.data.(p);
      q.data.(p) <- t;
      i := p
    done

  let pop q =
    if q.size = 0 then None
    else begin
      let top = q.data.(0) in
      q.size <- q.size - 1;
      q.data.(0) <- q.data.(q.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < q.size && lt q.data.(l) q.data.(!best) then best := l;
        if r < q.size && lt q.data.(r) q.data.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let t = q.data.(!i) in
          q.data.(!i) <- q.data.(!best);
          q.data.(!best) <- t;
          i := !best
        end
      done;
      Some top
    end
end

let route ?(params = default_params) arch netlist =
  let nsegs = Arch.num_segments arch in
  let nsub = Netlist.num_subnets netlist in
  (* occupancy.(seg) = set of parent nets currently using seg (as counts per
     parent, so subnets of one net share freely) *)
  let occupancy = Array.init nsegs (fun _ -> Hashtbl.create 4) in
  let history = Array.make nsegs 0. in
  let paths = Array.make nsub [] in
  let adjacency =
    Array.init nsegs (fun id ->
        Arch.adjacent_segments arch (Arch.segment_of_id arch id)
        |> List.map (Arch.segment_id arch))
  in
  let occupancy_count seg ~excluding =
    Hashtbl.fold
      (fun parent count acc ->
        if parent = excluding || count = 0 then acc else acc + 1)
      occupancy.(seg) 0
  in
  let occ_add seg parent =
    let c = Option.value (Hashtbl.find_opt occupancy.(seg) parent) ~default:0 in
    Hashtbl.replace occupancy.(seg) parent (c + 1)
  in
  let occ_remove seg parent =
    match Hashtbl.find_opt occupancy.(seg) parent with
    | Some c when c > 0 -> Hashtbl.replace occupancy.(seg) parent (c - 1)
    | Some _ | None -> ()
  in
  let seg_cost seg ~parent =
    let others = occupancy_count seg ~excluding:parent in
    let over = max 0 (others + 1 - params.capacity) in
    1.
    +. (params.present_factor *. float_of_int over)
    +. (params.history_factor *. history.(seg))
  in
  let dijkstra (subnet : Netlist.subnet) =
    let dist = Array.make nsegs infinity in
    let prev = Array.make nsegs (-1) in
    let settled = Array.make nsegs false in
    let q = Pq.create () in
    let sources =
      Arch.cell_segments arch subnet.Netlist.from_cell
      |> List.map (Arch.segment_id arch)
    in
    let goals =
      Arch.cell_segments arch subnet.Netlist.to_cell
      |> List.map (Arch.segment_id arch)
    in
    List.iter
      (fun s ->
        let c = seg_cost s ~parent:subnet.Netlist.parent in
        if c < dist.(s) then begin
          dist.(s) <- c;
          Pq.push q (c, s)
        end)
      sources;
    let rec run () =
      match Pq.pop q with
      | None -> None
      | Some (d, s) ->
          if settled.(s) then run ()
          else begin
            settled.(s) <- true;
            if List.mem s goals then Some s
            else begin
              List.iter
                (fun s' ->
                  if not settled.(s') then begin
                    let c = d +. seg_cost s' ~parent:subnet.Netlist.parent in
                    if c < dist.(s') then begin
                      dist.(s') <- c;
                      prev.(s') <- s;
                      Pq.push q (c, s')
                    end
                  end)
                adjacency.(s);
              run ()
            end
          end
    in
    match run () with
    | None -> assert false (* the segment graph is connected *)
    | Some goal ->
        let rec walk s acc = if s = -1 then acc else walk prev.(s) (s :: acc) in
        walk goal []
  in
  let route_subnet (subnet : Netlist.subnet) =
    let id = subnet.Netlist.subnet_id in
    List.iter (fun s -> occ_remove s subnet.Netlist.parent) paths.(id);
    let seg_ids = dijkstra subnet in
    paths.(id) <- seg_ids;
    List.iter (fun s -> occ_add s subnet.Netlist.parent) seg_ids
  in
  for _iter = 1 to params.iterations do
    Array.iter route_subnet netlist.Netlist.subnets;
    (* accumulate history on currently overused segments *)
    for s = 0 to nsegs - 1 do
      let users = occupancy_count s ~excluding:(-1) in
      if users > params.capacity then
        history.(s) <- history.(s) +. float_of_int (users - params.capacity)
    done
  done;
  let segment_paths =
    Array.map (List.map (Arch.segment_of_id arch)) paths
  in
  Global_route.make_exn arch netlist segment_paths
