(* The array is drawn on a character grid: cell (x, y) occupies a 4-wide,
   2-tall tile; vertical channel segments sit between tiles, horizontal ones
   between rows. Row y = 0 is printed last (bottom). *)

let glyph n =
  if n = 0 then '.'
  else if n <= 9 then Char.chr (Char.code '0' + n)
  else '*'

let draw arch mark =
  let n = Arch.size arch in
  let buf = Buffer.create 1024 in
  (* top to bottom: horizontal channel y = n, then row n-1, etc. *)
  let horizontal_channel y =
    Buffer.add_string buf "  ";
    for x = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "+-%c-" (mark { Arch.dir = Arch.Horizontal; sx = x; sy = y }))
    done;
    Buffer.add_string buf "+\n"
  in
  let cell_row y =
    Buffer.add_string buf (Printf.sprintf "%2d" y);
    for x = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%c[ ]" (mark { Arch.dir = Arch.Vertical; sx = x; sy = y }))
    done;
    Buffer.add_string buf
      (Printf.sprintf "%c\n" (mark { Arch.dir = Arch.Vertical; sx = n; sy = y }))
  in
  for y = n downto 0 do
    horizontal_channel y;
    if y > 0 then cell_row (y - 1)
  done;
  Buffer.add_string buf "  ";
  for x = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d " (x mod 10))
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let congestion_map gr =
  let congestion = Congestion.of_route gr in
  let mark seg = glyph (Congestion.segment_usage congestion seg) in
  draw gr.Global_route.arch mark

let subnet_path gr id =
  let arch = gr.Global_route.arch in
  let path = gr.Global_route.paths.(id) in
  let subnet = gr.Global_route.netlist.Netlist.subnets.(id) in
  let on_path seg = List.mem seg path in
  let mark seg = if on_path seg then '#' else '.' in
  let base = draw arch mark in
  let sx, sy = subnet.Netlist.from_cell and tx, ty = subnet.Netlist.to_cell in
  Printf.sprintf "subnet %d: net %d, (%d,%d) -> (%d,%d), %d segments\n%s" id
    subnet.Netlist.parent sx sy tx ty (List.length path) base
