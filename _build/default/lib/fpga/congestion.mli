(** Channel congestion accounting.

    The congestion of a segment is the number of {e distinct multi-pin
    nets} whose subnets pass through it (same-net subnets may share a
    track, so they count once). The maximum over all segments is a lower
    bound on the channel width needed for a detailed routing: those nets
    pairwise conflict, forming a clique in the conflict graph. *)

type t

val of_route : Global_route.t -> t
val segment_usage : t -> Arch.segment -> int
val max_congestion : t -> int
val histogram : t -> (int * int) list
(** [(usage, segment count)] pairs, ascending, zero-usage omitted. *)

val busiest : t -> (Arch.segment * int) list
(** Segments at maximal usage. *)

val pp : Format.formatter -> t -> unit
