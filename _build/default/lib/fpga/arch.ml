type t = { n : int }
type direction = Horizontal | Vertical
type segment = { dir : direction; sx : int; sy : int }
type cell = int * int

let create n =
  if n < 1 then invalid_arg "Arch.create";
  { n }

let size t = t.n

(* vertical: (n+1) channels × n rows; horizontal: (n+1) channels × n cols *)
let num_segments t = 2 * (t.n + 1) * t.n

let in_bounds t s =
  match s.dir with
  | Vertical -> s.sx >= 0 && s.sx <= t.n && s.sy >= 0 && s.sy < t.n
  | Horizontal -> s.sy >= 0 && s.sy <= t.n && s.sx >= 0 && s.sx < t.n

let cell_in_bounds t (x, y) = x >= 0 && x < t.n && y >= 0 && y < t.n

let segment_id t s =
  if not (in_bounds t s) then invalid_arg "Arch.segment_id: out of bounds";
  match s.dir with
  | Vertical -> (s.sx * t.n) + s.sy
  | Horizontal -> ((t.n + 1) * t.n) + (s.sy * t.n) + s.sx

let segment_of_id t id =
  if id < 0 || id >= num_segments t then invalid_arg "Arch.segment_of_id";
  let vcount = (t.n + 1) * t.n in
  if id < vcount then { dir = Vertical; sx = id / t.n; sy = id mod t.n }
  else
    let id = id - vcount in
    { dir = Horizontal; sx = id mod t.n; sy = id / t.n }

(* Switch blocks sit at grid points (px, py) ∈ [0,n]²; a segment's two ends
   are grid points. *)
let endpoints s =
  match s.dir with
  | Vertical -> ((s.sx, s.sy), (s.sx, s.sy + 1))
  | Horizontal -> ((s.sx, s.sy), (s.sx + 1, s.sy))

let point_segments t (px, py) =
  let candidates =
    [
      { dir = Vertical; sx = px; sy = py - 1 };
      { dir = Vertical; sx = px; sy = py };
      { dir = Horizontal; sx = px - 1; sy = py };
      { dir = Horizontal; sx = px; sy = py };
    ]
  in
  List.filter (in_bounds t) candidates

let adjacent_segments t s =
  let a, b = endpoints s in
  let around = point_segments t a @ point_segments t b in
  List.filter (fun s' -> s' <> s) around

let segments_touch t s1 s2 =
  s1 <> s2 && List.mem s2 (adjacent_segments t s1)

let cell_segments t (x, y) =
  if not (cell_in_bounds t (x, y)) then invalid_arg "Arch.cell_segments";
  [
    { dir = Vertical; sx = x; sy = y };
    { dir = Vertical; sx = x + 1; sy = y };
    { dir = Horizontal; sx = x; sy = y };
    { dir = Horizontal; sx = x; sy = y + 1 };
  ]

let all_segments t = List.init (num_segments t) (segment_of_id t)
let manhattan (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2)

let pp_segment fmt s =
  Format.fprintf fmt "%c(%d,%d)"
    (match s.dir with Vertical -> 'V' | Horizontal -> 'H')
    s.sx s.sy
