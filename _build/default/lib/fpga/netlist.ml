type net = { net_id : int; source : Arch.cell; sinks : Arch.cell list }

type subnet = {
  subnet_id : int;
  parent : int;
  from_cell : Arch.cell;
  to_cell : Arch.cell;
}

type t = { nets : net array; subnets : subnet array }

let make nets =
  let ids = List.map (fun n -> n.net_id) nets in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Netlist.make: duplicate net ids";
  List.iter
    (fun n ->
      if n.sinks = [] then invalid_arg "Netlist.make: net without sinks";
      if List.mem n.source n.sinks then
        invalid_arg "Netlist.make: source listed as sink")
    nets;
  let subnets =
    List.concat_map
      (fun n -> List.map (fun sink -> (n.net_id, n.source, sink)) n.sinks)
      nets
  in
  let subnets =
    List.mapi
      (fun i (parent, from_cell, to_cell) ->
        { subnet_id = i; parent; from_cell; to_cell })
      subnets
  in
  { nets = Array.of_list nets; subnets = Array.of_list subnets }

let num_nets t = Array.length t.nets
let num_subnets t = Array.length t.subnets

let subnets_of_net t id =
  Array.to_list t.subnets |> List.filter (fun s -> s.parent = id)

let random ~rng ~arch ~num_nets ~max_fanout ~locality =
  let n = Arch.size arch in
  let random_cell () = (Rng.int rng n, Rng.int rng n) in
  let clamp v = max 0 (min (n - 1) v) in
  let sink_near (sx, sy) =
    let dx = Rng.int rng ((2 * locality) + 1) - locality in
    let dy = Rng.int rng ((2 * locality) + 1) - locality in
    (clamp (sx + dx), clamp (sy + dy))
  in
  let gen_net id =
    let source = random_cell () in
    let fanout = 1 + Rng.int rng max_fanout in
    let rec gather acc tries =
      if List.length acc >= fanout || tries > 20 * fanout then acc
      else
        let s = sink_near source in
        if s = source || List.mem s acc then gather acc (tries + 1)
        else gather (s :: acc) (tries + 1)
    in
    let sinks =
      match gather [] 0 with
      | [] ->
          (* locality 0 on a 1×1 grid cannot happen (n>=2 in practice);
             fall back to any distinct cell *)
          let rec any () =
            let c = random_cell () in
            if c = source then any () else c
          in
          [ any () ]
      | sinks -> sinks
    in
    { net_id = id; source; sinks }
  in
  make (List.init num_nets gen_net)

let pp fmt t =
  Format.fprintf fmt "netlist(nets=%d, subnets=%d)" (num_nets t) (num_subnets t)
