(** Deterministic pseudo-random numbers (xorshift64-star).

    The benchmark generator must produce bit-identical instances across
    machines and OCaml versions, so it uses this instead of [Random]. *)

type t

val create : int -> t
(** Seeded generator; the seed is mixed, so small seeds are fine. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
