(** Global routings: the channel-segment path of every 2-pin subnet.

    This is the input to detailed routing — the paper takes these from
    SEGA-1.1; here they come from {!Global_router}. A path is valid when its
    consecutive segments share a switch block, its first segment is adjacent
    to the subnet's source cell and its last to the sink cell. *)

type t = private {
  arch : Arch.t;
  netlist : Netlist.t;
  paths : Arch.segment list array;  (** Indexed by [subnet_id]. *)
}

val make : Arch.t -> Netlist.t -> Arch.segment list array -> (t, string) result
(** Validates every path (see above) and that the array length matches the
    subnet count. *)

val make_exn : Arch.t -> Netlist.t -> Arch.segment list array -> t
val path : t -> int -> Arch.segment list
val total_wirelength : t -> int
(** Sum of path lengths over all subnets. *)

val segments_used : t -> int -> int list
(** Segment ids of a subnet's path. *)

val pp : Format.formatter -> t -> unit
