(** Detailed routings: a track assignment for every 2-pin subnet.

    Produced from a colouring of the conflict graph; verified directly
    against the FPGA model (not against the graph), so the whole
    reduce-encode-solve-decode pipeline is checked end to end. *)

type t = private {
  route : Global_route.t;
  width : int;  (** Tracks per channel, [W]. *)
  tracks : int array;  (** [tracks.(subnet_id)] in [0, width). *)
}

type violation =
  | Track_out_of_range of int  (** Subnet with an illegal track. *)
  | Segment_conflict of { segment : Arch.segment; subnet_a : int; subnet_b : int }
      (** Two subnets of different nets on one (segment, track). *)

val of_coloring :
  Global_route.t -> width:int -> Fpgasat_graph.Coloring.t -> (t, violation) result
(** Checks the assignment against the architecture before accepting it. *)

val verify : Global_route.t -> width:int -> int array -> (unit, violation) result
(** The underlying checker, usable on any raw track assignment. *)

val track : t -> int -> int
val pp_violation : Format.formatter -> violation -> unit

val channel_occupancy : t -> (Arch.segment * (int * int) list) list
(** For each used segment, the [(track, subnet)] pairs on it — a
    human-readable cross-section of the detailed routing. *)
