type t = { mutable state : int64 }

let create seed =
  let s = Int64.of_int seed in
  let s = Int64.mul (Int64.add s 0x9E3779B97F4A7C15L) 0x2545F4914F6CDD1DL in
  { state = (if Int64.equal s 0L then 0x853C49E6748FEA9BL else s) }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_right_logical x 12) in
  let x = Int64.logxor x (Int64.shift_left x 25) in
  let x = Int64.logxor x (Int64.shift_right_logical x 27) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int bits /. float_of_int (1 lsl 53)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let f = float t in
  let v = int_of_float (f *. float_of_int bound) in
  if v >= bound then bound - 1 else v

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
