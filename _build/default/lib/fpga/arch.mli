(** Island-style FPGA array model.

    An [n × n] grid of logic blocks. Routing channels run between the rows
    and columns (and around the perimeter): vertical channel [x ∈ 0..n]
    left of column [x], horizontal channel [y ∈ 0..n] below row [y]. Each
    channel is divided into unit-length {e segments} by the switch blocks at
    the channel crossings. Every segment carries [W] parallel tracks.

    Switch blocks are of the {e subset} kind (as in the SEGA model the
    paper builds on): a connection through a switch block stays on the same
    track index, which is what makes detailed routing equivalent to
    colouring — a routed 2-pin net occupies one track along its whole path.

    Logic blocks reach the four adjacent channel segments through
    {e connection blocks}, which are full (any pin can reach any track). *)

type t
(** The array geometry (track count is a separate parameter, [W]). *)

type direction = Horizontal | Vertical

type segment = { dir : direction; sx : int; sy : int }
(** A vertical segment [{dir = Vertical; sx = x; sy = y}] runs along
    channel [x ∈ 0..n] spanning row [y ∈ 0..n-1]; a horizontal one along
    channel [y ∈ 0..n] spanning column [x ∈ 0..n-1]. *)

type cell = int * int
(** Logic block coordinates, [0 .. n-1] each. *)

val create : int -> t
(** [create n] is an [n × n] array; requires [n >= 1]. *)

val size : t -> int
val num_segments : t -> int
val segment_id : t -> segment -> int
(** Dense id in [0, num_segments). Raises [Invalid_argument] for a segment
    outside the array. *)

val segment_of_id : t -> int -> segment
val in_bounds : t -> segment -> bool
val cell_in_bounds : t -> cell -> bool

val cell_segments : t -> cell -> segment list
(** The four segments a logic block's connection blocks reach: left, right,
    bottom, top. *)

val adjacent_segments : t -> segment -> segment list
(** Segments reachable through the switch blocks at either end (not
    including the segment itself). *)

val segments_touch : t -> segment -> segment -> bool
(** Share a switch block. *)

val all_segments : t -> segment list
val manhattan : cell -> cell -> int
val pp_segment : Format.formatter -> segment -> unit
