type t = { arch : Arch.t; usage : int array }

let of_route (gr : Global_route.t) =
  let arch = gr.Global_route.arch in
  let nsegs = Arch.num_segments arch in
  let parents_per_seg = Array.init nsegs (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun id path ->
      let parent = gr.Global_route.netlist.Netlist.subnets.(id).Netlist.parent in
      List.iter
        (fun seg -> Hashtbl.replace parents_per_seg.(Arch.segment_id arch seg) parent ())
        path)
    gr.Global_route.paths;
  { arch; usage = Array.map Hashtbl.length parents_per_seg }

let segment_usage t seg = t.usage.(Arch.segment_id t.arch seg)
let max_congestion t = Array.fold_left max 0 t.usage

let histogram t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun u ->
      if u > 0 then
        Hashtbl.replace tbl u (1 + Option.value (Hashtbl.find_opt tbl u) ~default:0))
    t.usage;
  Hashtbl.fold (fun u c acc -> (u, c) :: acc) tbl [] |> List.sort compare

let busiest t =
  let m = max_congestion t in
  let acc = ref [] in
  Array.iteri
    (fun id u -> if u = m && m > 0 then acc := (Arch.segment_of_id t.arch id, u) :: !acc)
    t.usage;
  List.rev !acc

let pp fmt t =
  Format.fprintf fmt "congestion(max=%d, histogram=%a)" (max_congestion t)
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (u, c) -> Format.fprintf fmt "%d:%d" u c))
    (histogram t)
