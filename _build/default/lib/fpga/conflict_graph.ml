module G = Fpgasat_graph

let build (gr : Global_route.t) =
  let arch = gr.Global_route.arch in
  let netlist = gr.Global_route.netlist in
  let nsub = Netlist.num_subnets netlist in
  let graph = G.Graph.create nsub in
  (* bucket subnets by segment, then link different-parent pairs *)
  let by_segment = Hashtbl.create 256 in
  Array.iteri
    (fun id path ->
      List.iter
        (fun seg ->
          let sid = Arch.segment_id arch seg in
          Hashtbl.replace by_segment sid
            (id :: Option.value (Hashtbl.find_opt by_segment sid) ~default:[]))
        path)
    gr.Global_route.paths;
  let parent id = netlist.Netlist.subnets.(id).Netlist.parent in
  Hashtbl.iter
    (fun _seg subnet_ids ->
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b -> if parent a <> parent b then G.Graph.add_edge graph a b)
              rest;
            pairs rest
      in
      pairs subnet_ids)
    by_segment;
  graph

let csp gr ~w = Fpgasat_encodings.Csp.make (build gr) ~k:w
