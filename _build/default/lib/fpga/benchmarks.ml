type spec = {
  name : string;
  grid : int;
  nets : int;
  max_fanout : int;
  locality : int;
  seed : int;
  router : Global_router.params;
}

type instance = {
  spec : spec;
  arch : Arch.t;
  netlist : Netlist.t;
  route : Global_route.t;
  graph : Fpgasat_graph.Graph.t;
  max_congestion : int;
}

let router ?(capacity = 4) () = { Global_router.default_params with capacity }

(* Sizes are scaled so that the worst strategy of Table 2 (muldirect, no
   symmetry breaking) refutes the hardest instances in tens of seconds to
   minutes rather than the paper's days, while keeping the relative hardness
   ordering: alu2/too_large near-instant, alu4/C880/apex7 a few seconds,
   C1355/k2 tens of seconds, vda the worst by far. The parameters were
   calibrated empirically against this repository's CDCL solver. *)
let specs =
  [
    { name = "alu2"; grid = 7; nets = 55; max_fanout = 4; locality = 2; seed = 102; router = router ~capacity:6 () };
    { name = "too_large"; grid = 7; nets = 62; max_fanout = 4; locality = 2; seed = 107; router = router ~capacity:6 () };
    { name = "alu4"; grid = 9; nets = 120; max_fanout = 5; locality = 2; seed = 310; router = router ~capacity:8 () };
    { name = "C880"; grid = 9; nets = 125; max_fanout = 5; locality = 2; seed = 211; router = router ~capacity:9 () };
    { name = "apex7"; grid = 9; nets = 115; max_fanout = 4; locality = 3; seed = 207; router = router ~capacity:8 () };
    { name = "C1355"; grid = 8; nets = 100; max_fanout = 5; locality = 2; seed = 211; router = router ~capacity:8 () };
    { name = "vda"; grid = 11; nets = 170; max_fanout = 5; locality = 2; seed = 42; router = router ~capacity:9 () };
    { name = "k2"; grid = 10; nets = 150; max_fanout = 5; locality = 2; seed = 310; router = router ~capacity:9 () };
  ]

let names = List.map (fun s -> s.name) specs

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.name = lower) specs

let build spec =
  let arch = Arch.create spec.grid in
  let rng = Rng.create spec.seed in
  let netlist =
    Netlist.random ~rng ~arch ~num_nets:spec.nets ~max_fanout:spec.max_fanout
      ~locality:spec.locality
  in
  let route = Global_router.route ~params:spec.router arch netlist in
  let graph = Conflict_graph.build route in
  let congestion = Congestion.of_route route in
  {
    spec;
    arch;
    netlist;
    route;
    graph;
    max_congestion = Congestion.max_congestion congestion;
  }

let pp_instance fmt i =
  Format.fprintf fmt "%s: grid=%dx%d nets=%d subnets=%d conflict=%a maxcong=%d"
    i.spec.name i.spec.grid i.spec.grid (Netlist.num_nets i.netlist)
    (Netlist.num_subnets i.netlist) Fpgasat_graph.Graph.pp i.graph
    i.max_congestion
