(** The reduction from detailed routing to graph colouring (paper, Sect. 2).

    Vertices are 2-pin subnets; an edge joins two subnets of {e different}
    multi-pin nets whose global paths share at least one channel segment.
    Because subset switch blocks preserve the track along a path, sharing
    several segments still yields a single disequality — the graph is simple
    by construction. A detailed routing with [W] tracks exists iff this
    graph is [W]-colourable. *)

val build : Global_route.t -> Fpgasat_graph.Graph.t
(** Vertex [i] is subnet [i] of the routing's netlist. *)

val csp : Global_route.t -> w:int -> Fpgasat_encodings.Csp.t
(** The colouring CSP asking for a detailed routing with [w] tracks. *)
