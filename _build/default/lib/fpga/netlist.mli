(** Netlists: multi-pin nets over placed logic blocks, and their
    decomposition into 2-pin subnets (paper, Sect. 2: "each multi-pin net is
    decomposed into a collection of 2-pin nets").

    Subnets of the same parent net never conflict with each other; subnets
    of different nets passing through a common channel segment must use
    different tracks. *)

type net = { net_id : int; source : Arch.cell; sinks : Arch.cell list }

type subnet = {
  subnet_id : int;  (** Dense id: index into route/colour arrays. *)
  parent : int;  (** [net_id] of the owning multi-pin net. *)
  from_cell : Arch.cell;
  to_cell : Arch.cell;
}

type t = private { nets : net array; subnets : subnet array }

val make : net list -> t
(** Star decomposition: one subnet per (source, sink) pair. Raises
    [Invalid_argument] on a net whose source appears among its sinks, an
    empty sink list, or duplicate net ids. *)

val num_nets : t -> int
val num_subnets : t -> int
val subnets_of_net : t -> int -> subnet list

val random :
  rng:Rng.t ->
  arch:Arch.t ->
  num_nets:int ->
  max_fanout:int ->
  locality:int ->
  t
(** Synthetic netlist: sources placed uniformly; each net gets
    [1 .. max_fanout] distinct sinks within Chebyshev distance [locality]
    of the source (locality models Rent-style short wires). *)

val pp : Format.formatter -> t -> unit
