type t = {
  arch : Arch.t;
  netlist : Netlist.t;
  paths : Arch.segment list array;
}

let validate_path arch (subnet : Netlist.subnet) path =
  let touches_cell cell seg = List.mem seg (Arch.cell_segments arch cell) in
  match path with
  | [] -> Error (Printf.sprintf "subnet %d: empty path" subnet.Netlist.subnet_id)
  | first :: _ ->
      let last = List.nth path (List.length path - 1) in
      if List.exists (fun s -> not (Arch.in_bounds arch s)) path then
        Error (Printf.sprintf "subnet %d: segment out of bounds" subnet.Netlist.subnet_id)
      else if not (touches_cell subnet.Netlist.from_cell first) then
        Error
          (Printf.sprintf "subnet %d: path does not start at the source"
             subnet.Netlist.subnet_id)
      else if not (touches_cell subnet.Netlist.to_cell last) then
        Error
          (Printf.sprintf "subnet %d: path does not end at the sink"
             subnet.Netlist.subnet_id)
      else
        let rec connected = function
          | a :: (b :: _ as rest) ->
              if Arch.segments_touch arch a b then connected rest
              else
                Error
                  (Printf.sprintf "subnet %d: disconnected path"
                     subnet.Netlist.subnet_id)
          | [ _ ] | [] -> Ok ()
        in
        connected path

let make arch netlist paths =
  if Array.length paths <> Netlist.num_subnets netlist then
    Error "path count differs from subnet count"
  else
    let rec check i =
      if i >= Array.length paths then Ok { arch; netlist; paths }
      else
        match validate_path arch netlist.Netlist.subnets.(i) paths.(i) with
        | Ok () -> check (i + 1)
        | Error _ as err -> err
    in
    check 0

let make_exn arch netlist paths =
  match make arch netlist paths with
  | Ok t -> t
  | Error msg -> invalid_arg ("Global_route.make: " ^ msg)

let path t id = t.paths.(id)

let total_wirelength t =
  Array.fold_left (fun acc p -> acc + List.length p) 0 t.paths

let segments_used t id = List.map (Arch.segment_id t.arch) t.paths.(id)

let pp fmt t =
  Format.fprintf fmt "global_route(subnets=%d, wirelength=%d)"
    (Array.length t.paths) (total_wirelength t)
