(** The benchmark suite: synthetic stand-ins for the eight MCNC circuits of
    Table 2.

    The MCNC netlists and SEGA-1.1 global routings are not redistributable,
    so each benchmark is a seeded synthetic instance (placement, netlist,
    and a negotiated global routing) whose conflict graph reproduces what
    the experiment needs: benchmarks later in the list yield larger, more
    congested instances whose unroutability proofs are harder — preserving
    the paper's relative ordering (alu2 and too_large easy; vda and k2
    hardest). See DESIGN.md, "Substitutions". *)

type spec = {
  name : string;  (** MCNC name this instance stands in for. *)
  grid : int;  (** FPGA array size [n × n]. *)
  nets : int;
  max_fanout : int;
  locality : int;
  seed : int;
  router : Global_router.params;
}

type instance = {
  spec : spec;
  arch : Arch.t;
  netlist : Netlist.t;
  route : Global_route.t;
  graph : Fpgasat_graph.Graph.t;  (** Conflict graph of the routing. *)
  max_congestion : int;  (** Clique lower bound on the channel width. *)
}

val specs : spec list
(** The eight benchmarks in Table 2's order: alu2, too_large, alu4, C880,
    apex7, C1355, vda, k2. *)

val names : string list
val find : string -> spec option
(** Case-insensitive lookup. *)

val build : spec -> instance
(** Deterministic: same spec, same instance. *)

val pp_instance : Format.formatter -> instance -> unit
