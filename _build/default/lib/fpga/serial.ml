exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let netlist_to_string arch netlist =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "fpga %d\n" (Arch.size arch));
  Array.iter
    (fun (net : Netlist.net) ->
      let sx, sy = net.Netlist.source in
      Buffer.add_string buf (Printf.sprintf "net %d (%d,%d) ->" net.Netlist.net_id sx sy);
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf " (%d,%d)" x y))
        net.Netlist.sinks;
      Buffer.add_char buf '\n')
    netlist.Netlist.nets;
  Buffer.contents buf

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_cell lineno s =
  try Scanf.sscanf s "(%d,%d)" (fun x y -> (x, y))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    fail "line %d: malformed cell %S" lineno s

let parse_header lines =
  match lines with
  | [] -> fail "empty input"
  | (lineno, first) :: rest -> (
      match tokens first with
      | [ "fpga"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> (Arch.create n, rest)
          | Some _ | None -> fail "line %d: bad fpga size" lineno)
      | _ -> fail "line %d: expected 'fpga <n>' header" lineno)

let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let netlist_of_string s =
  let arch, rest = parse_header (numbered_lines s) in
  let parse_net (lineno, line) =
    match tokens line with
    | "net" :: id :: source :: "->" :: sinks when sinks <> [] -> (
        match int_of_string_opt id with
        | None -> fail "line %d: bad net id" lineno
        | Some net_id ->
            let check cell =
              if not (Arch.cell_in_bounds arch cell) then
                fail "line %d: cell out of bounds" lineno
              else cell
            in
            {
              Netlist.net_id;
              source = check (parse_cell lineno source);
              sinks = List.map (fun s -> check (parse_cell lineno s)) sinks;
            })
    | _ -> fail "line %d: expected 'net <id> (x,y) -> (x,y) ...'" lineno
  in
  (arch, Netlist.make (List.map parse_net rest))

let write_netlist path arch netlist =
  let oc = open_out path in
  output_string oc (netlist_to_string arch netlist);
  close_out oc

let read_netlist path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  netlist_of_string s

let segment_to_string (seg : Arch.segment) =
  Printf.sprintf "%c(%d,%d)"
    (match seg.Arch.dir with Arch.Vertical -> 'V' | Arch.Horizontal -> 'H')
    seg.Arch.sx seg.Arch.sy

let parse_segment lineno s =
  let dir =
    match s.[0] with
    | 'V' -> Arch.Vertical
    | 'H' -> Arch.Horizontal
    | _ -> fail "line %d: segment must start with V or H: %S" lineno s
    | exception Invalid_argument _ -> fail "line %d: empty segment" lineno
  in
  try
    Scanf.sscanf (String.sub s 1 (String.length s - 1)) "(%d,%d)" (fun x y ->
        { Arch.dir; sx = x; sy = y })
  with Scanf.Scan_failure _ | Failure _ | End_of_file | Invalid_argument _ ->
    fail "line %d: malformed segment %S" lineno s

let routes_to_string (gr : Global_route.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "fpga %d\n" (Arch.size gr.Global_route.arch));
  Array.iteri
    (fun id path ->
      Buffer.add_string buf (Printf.sprintf "subnet %d :" id);
      List.iter
        (fun seg -> Buffer.add_string buf (" " ^ segment_to_string seg))
        path;
      Buffer.add_char buf '\n')
    gr.Global_route.paths;
  Buffer.contents buf

let routes_of_string ~netlist s =
  let arch, rest = parse_header (numbered_lines s) in
  let n = Netlist.num_subnets netlist in
  let paths = Array.make n [] in
  let seen = Array.make n false in
  List.iter
    (fun (lineno, line) ->
      match tokens line with
      | "subnet" :: id :: ":" :: segs -> (
          match int_of_string_opt id with
          | Some id when id >= 0 && id < n ->
              if seen.(id) then fail "line %d: duplicate subnet %d" lineno id;
              seen.(id) <- true;
              paths.(id) <- List.map (parse_segment lineno) segs
          | Some _ | None -> fail "line %d: bad subnet id" lineno)
      | _ -> fail "line %d: expected 'subnet <id> : <segments>'" lineno)
    rest;
  Array.iteri
    (fun id present -> if not present then fail "subnet %d has no route" id)
    seen;
  match Global_route.make arch netlist paths with
  | Ok gr -> gr
  | Error msg -> fail "invalid routing: %s" msg

let write_routes path gr =
  let oc = open_out path in
  output_string oc (routes_to_string gr);
  close_out oc

let read_routes ~netlist path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  routes_of_string ~netlist s
