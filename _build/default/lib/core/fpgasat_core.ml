(** End-to-end API of the reproduction.

    {!Strategy} combines an encoding with a symmetry heuristic and a solver
    preset; {!Flow} runs global routing → colouring → CNF → SAT → verified
    detailed routing (or unroutability proof); {!Binary_search} finds the
    minimal channel width with an optimality proof; {!Portfolio} runs
    parallel strategy portfolios; {!Report} formats paper-style tables. *)

module Strategy = Strategy
module Flow = Flow
module Binary_search = Binary_search
module Incremental_width = Incremental_width
module Portfolio = Portfolio
module Report = Report
