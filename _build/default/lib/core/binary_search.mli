(** Minimal channel width search.

    The paper's optimality argument: a detailed routing found at width [W]
    is optimal when width [W-1] is proven unroutable. This module brackets
    the minimal width between the congestion/clique lower bound and the
    DSATUR upper bound, then binary-searches with SAT calls. *)

type search_result = {
  w_min : int;  (** Minimal width with a detailed routing. *)
  routing : Fpgasat_fpga.Detailed_route.t;  (** A routing at [w_min]. *)
  unsat_below : Flow.run option;
      (** The UNSAT run at [w_min - 1] proving optimality; [None] when
          [w_min] equals the structural lower bound (proof not needed). *)
  runs : Flow.run list;  (** Every SAT query made, in order. *)
}

val minimal_width :
  ?strategy:Strategy.t ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Fpgasat_fpga.Global_route.t ->
  (search_result, string) result
(** [Error] only when the budget ran out before the answer was bracketed. *)
