(** Minimal channel width by incremental SAT.

    Instead of one fresh CNF per width (as {!Binary_search} does), the
    colouring problem is encoded {e once} at the DSATUR upper bound with one
    fresh {e selector} variable per colour and clauses
    [not s_c \/ not pattern_v(c)]: assuming [s_c] switches colour [c] off for
    every vertex. One persistent solver then answers a width-[w] query under
    assumptions [{s_c | c >= w}], keeping its learnt clauses between
    queries. Works with every encoding, because switching a colour off is a
    clause over its indexing pattern, not a single literal.

    This is an engineering extension beyond the paper (which re-translated
    per configuration); the bench compares the two searches. *)

type search_result = {
  w_min : int;
  coloring : Fpgasat_graph.Coloring.t;  (** A proper [w_min]-colouring. *)
  queries : int;  (** SAT queries answered by the shared solver. *)
  stats : Fpgasat_sat.Stats.t;  (** Cumulative solver statistics. *)
}

val minimal_colors :
  ?strategy:Strategy.t ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Fpgasat_graph.Graph.t ->
  (search_result, string) result
(** Minimal number of colours of a conflict graph (= minimal channel width
    of the routing it came from). The budget applies per query. *)
