(** Formatting of paper-style result tables. *)

val format_seconds : float -> string
(** Two decimals with thousands separators, e.g. ["1,018.10"] — the style
    of Table 2. *)

val format_speedup : float -> string
(** E.g. ["1,139x"]; one decimal below 10. *)

val render_table : header:string list -> string list list -> string
(** Monospace table with column-width alignment; the first column is
    left-aligned, the rest right-aligned. Rows shorter than the header are
    padded with empty cells. *)

val section : string -> string
(** A titled horizontal rule. *)
