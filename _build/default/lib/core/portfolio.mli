(** Portfolios of parallel strategies (paper, Sect. 6).

    A portfolio runs several strategies on the same instance and takes the
    first answer, cancelling the rest. Two modes:

    - {!run_parallel} really runs one OCaml 5 domain per member with
      first-answer-wins cancellation;
    - {!run_simulated} runs members sequentially and accounts the portfolio
      time as the minimum member time — the deterministic accounting used
      for the paper-style speedup tables (a portfolio on enough cores costs
      the time of its fastest member). *)

type member_result = {
  strategy : Strategy.t;
  run : Flow.run;
  wall_seconds : float;
}

type t = {
  winner : member_result option;
      (** Fastest decisive member ([None] if every member timed out). *)
  members : member_result list;
      (** All members. In parallel mode, cancelled members report
          [Flow.Timeout]. *)
}

val run_simulated :
  ?budget:Fpgasat_sat.Solver.budget ->
  Strategy.t list ->
  Fpgasat_fpga.Global_route.t ->
  width:int ->
  t
(** Winner: minimal total CPU time among decisive members. *)

val run_parallel :
  ?budget:Fpgasat_sat.Solver.budget ->
  Strategy.t list ->
  Fpgasat_fpga.Global_route.t ->
  width:int ->
  t
(** One domain per member. Raises [Invalid_argument] on an empty list. *)
