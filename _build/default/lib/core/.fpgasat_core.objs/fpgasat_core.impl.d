lib/core/fpgasat_core.ml: Binary_search Flow Incremental_width Portfolio Report Strategy
