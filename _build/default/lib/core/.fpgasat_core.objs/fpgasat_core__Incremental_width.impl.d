lib/core/incremental_width.ml: Array Fpgasat_encodings Fpgasat_graph Fpgasat_sat List Strategy
