lib/core/binary_search.mli: Flow Fpgasat_fpga Fpgasat_sat Strategy
