lib/core/strategy.ml: Fpgasat_encodings Fpgasat_sat Fun Option Printf Result String
