lib/core/portfolio.mli: Flow Fpgasat_fpga Fpgasat_sat Strategy
