lib/core/flow.mli: Fpgasat_fpga Fpgasat_graph Fpgasat_sat Strategy
