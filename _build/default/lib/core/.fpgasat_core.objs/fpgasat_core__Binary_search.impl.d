lib/core/binary_search.ml: Flow Fpgasat_fpga Fpgasat_graph List
