lib/core/portfolio.ml: Atomic Domain Flow Fpgasat_sat List Strategy Unix
