lib/core/strategy.mli: Fpgasat_encodings Fpgasat_sat
