lib/core/flow.ml: Format Fpgasat_encodings Fpgasat_fpga Fpgasat_graph Fpgasat_sat Strategy Sys
