lib/core/incremental_width.mli: Fpgasat_graph Fpgasat_sat Strategy
