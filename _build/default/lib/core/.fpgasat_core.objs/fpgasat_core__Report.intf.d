lib/core/report.mli:
