module Sat = Fpgasat_sat

type member_result = {
  strategy : Strategy.t;
  run : Flow.run;
  wall_seconds : float;
}

type t = { winner : member_result option; members : member_result list }

let decisive (r : Flow.run) =
  match r.Flow.outcome with
  | Flow.Routable _ | Flow.Unroutable -> true
  | Flow.Timeout -> false

let pick_winner members =
  List.filter (fun m -> decisive m.run) members
  |> List.sort (fun a b ->
         compare (Flow.total a.run.Flow.timings) (Flow.total b.run.Flow.timings))
  |> function
  | [] -> None
  | best :: _ -> Some best

let run_one ?budget strategy route ~width =
  let t0 = Unix.gettimeofday () in
  let run = Flow.check_width ~strategy ?budget route ~width in
  { strategy; run; wall_seconds = Unix.gettimeofday () -. t0 }

let run_simulated ?budget strategies route ~width =
  if strategies = [] then invalid_arg "Portfolio.run_simulated: empty";
  let members = List.map (fun s -> run_one ?budget s route ~width) strategies in
  { winner = pick_winner members; members }

let run_parallel ?(budget = Sat.Solver.no_budget) strategies route ~width =
  if strategies = [] then invalid_arg "Portfolio.run_parallel: empty";
  let stop = Atomic.make false in
  let budget = Sat.Solver.interruptible (fun () -> Atomic.get stop) budget in
  let worker strategy =
    let result = run_one ~budget strategy route ~width in
    if decisive result.run then Atomic.set stop true;
    result
  in
  let domains = List.map (fun s -> Domain.spawn (fun () -> worker s)) strategies in
  let members = List.map Domain.join domains in
  (* winner: the decisive member with the smallest wall time — in parallel
     mode wall time is what first-answer-wins observes *)
  let winner =
    List.filter (fun m -> decisive m.run) members
    |> List.sort (fun a b -> compare a.wall_seconds b.wall_seconds)
    |> function
    | [] -> None
    | best :: _ -> Some best
  in
  { winner; members }
