(** SAT-based segmented channel routing.

    Applies the paper's CSP encodings to the segmented-channel problem: one
    CSP variable per connection with the track set as its domain, unary
    clauses forbidding tracks whose segmentation cannot carry the span, and
    per-track conflict clauses for pairs that would share a conductor. This
    demonstrates that the encoding framework covers CSPs whose conflicts
    are value-dependent, not just graph colouring. *)

type outcome =
  | Routed of int array  (** Track per connection, verified. *)
  | Unroutable
  | Timeout

val route :
  ?encoding:Fpgasat_encodings.Encoding.t ->
  ?config:Fpgasat_sat.Solver.config ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Segmented_channel.t ->
  Segmented_channel.connection list ->
  outcome
(** Default encoding: ITE-linear-2+muldirect (the paper's winner). An empty
    connection list is trivially [Routed [||]]. Raises [Invalid_argument]
    if the channel has no tracks and connections exist. *)

val cnf_of :
  ?encoding:Fpgasat_encodings.Encoding.t ->
  Segmented_channel.t ->
  Segmented_channel.connection list ->
  Fpgasat_sat.Cnf.t
(** Just the formula, for inspection and benches. *)
