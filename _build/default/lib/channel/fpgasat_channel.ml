(** Segmented channel routing (the paper's ref. [17] domain): a second
    routing problem whose translation to SAT reuses the encoding framework,
    showing it is not specific to graph colouring. {!Segmented_channel} is
    the architecture model, {!Channel_sat} the SAT flow. *)

module Segmented_channel = Segmented_channel
module Channel_sat = Channel_sat
