type t = { length : int; cuts : int list array }
type connection = { conn_id : int; left : int; right : int }

let make ~length ~cuts =
  if length < 1 then invalid_arg "Segmented_channel.make: length < 1";
  Array.iter
    (fun track_cuts ->
      let rec check prev = function
        | [] -> ()
        | c :: rest ->
            if c <= prev || c >= length then
              invalid_arg "Segmented_channel.make: bad cut position"
            else check c rest
      in
      check 0 track_cuts)
    cuts;
  { length; cuts }

let uniform ~length ~tracks ~segment_length =
  if segment_length < 1 then invalid_arg "Segmented_channel.uniform";
  let track_cuts =
    List.filter (fun p -> p > 0 && p < length)
      (List.init (length / segment_length) (fun i -> (i + 1) * segment_length))
  in
  make ~length ~cuts:(Array.make (max tracks 1) track_cuts |> Array.map (fun c -> c))

let random ~rng ~length ~tracks ~max_cuts =
  let one_track () =
    if length <= 1 then []
    else begin
      let n = Fpgasat_fpga.Rng.int rng (max_cuts + 1) in
      let cuts = ref [] in
      for _ = 1 to n do
        let p = 1 + Fpgasat_fpga.Rng.int rng (length - 1) in
        if not (List.mem p !cuts) then cuts := p :: !cuts
      done;
      List.sort compare !cuts
    end
  in
  make ~length ~cuts:(Array.init (max tracks 1) (fun _ -> one_track ()))

let num_tracks t = Array.length t.cuts

let segments t track =
  let cuts = t.cuts.(track) in
  let rec go first = function
    | [] -> [ (first, t.length - 1) ]
    | c :: rest -> (first, c - 1) :: go c rest
  in
  go 0 cuts

let segment_covering t ~track ~left ~right =
  let rec find i = function
    | [] -> None
    | (first, last) :: rest ->
        if left >= first && right <= last then Some i else find (i + 1) rest
  in
  find 0 (segments t track)

let feasible_tracks t (c : connection) =
  List.filter
    (fun track -> segment_covering t ~track ~left:c.left ~right:c.right <> None)
    (List.init (num_tracks t) Fun.id)

let conflict_on_track t c1 c2 ~track =
  match
    ( segment_covering t ~track ~left:c1.left ~right:c1.right,
      segment_covering t ~track ~left:c2.left ~right:c2.right )
  with
  | Some s1, Some s2 -> s1 = s2
  | _ -> false

type violation =
  | Infeasible_track of int
  | Track_out_of_range of int
  | Shared_segment of int * int

exception Bad of violation

let verify t connections assignment =
  let connections = Array.of_list connections in
  if Array.length connections <> Array.length assignment then
    invalid_arg "Segmented_channel.verify: length mismatch";
  try
    let used = Hashtbl.create 16 in
    Array.iteri
      (fun i (c : connection) ->
        let track = assignment.(i) in
        if track < 0 || track >= num_tracks t then raise (Bad (Track_out_of_range i));
        match segment_covering t ~track ~left:c.left ~right:c.right with
        | None -> raise (Bad (Infeasible_track i))
        | Some seg -> (
            let key = (track, seg) in
            match Hashtbl.find_opt used key with
            | Some j -> raise (Bad (Shared_segment (j, i)))
            | None -> Hashtbl.add used key i))
      connections;
    Ok ()
  with Bad v -> Error v

let connection conn_id a b =
  if a < 0 || b < 0 then invalid_arg "Segmented_channel.connection";
  { conn_id; left = min a b; right = max a b }

let pp_violation fmt = function
  | Infeasible_track i ->
      Format.fprintf fmt "connection %d: span crosses a segment boundary" i
  | Track_out_of_range i -> Format.fprintf fmt "connection %d: bad track" i
  | Shared_segment (i, j) ->
      Format.fprintf fmt "connections %d and %d share a segment" i j
