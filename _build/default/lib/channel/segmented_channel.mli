(** Segmented channel routing (the domain of the paper's ref. [17],
    Hung et al., "Segmented Channel Routability via Satisfiability").

    A one-dimensional routing channel with [length] columns and a set of
    horizontal tracks. Each track is cut into {e segments} at fixed
    positions (Actel-style antifuse FPGAs). A 2-pin connection spanning
    columns [[left, right]] must be assigned a track on which a {e single}
    segment covers its whole span (1-segment routing), and a segment is a
    single conductor: two distinct connections must never share one.

    Unlike detailed routing in island FPGAs this is {e not} plain graph
    colouring — which connections conflict depends on the track — but it is
    still a CSP with per-value conflicts, so the paper's encodings apply
    unchanged through {!Channel_sat}. *)

type t = private {
  length : int;  (** Columns [0 .. length-1]. *)
  cuts : int list array;  (** [cuts.(t)]: ascending cut positions within [(0, length)]; a cut at [p] separates column [p-1] from [p]. *)
}

type connection = { conn_id : int; left : int; right : int }

val make : length:int -> cuts:int list array -> t
(** Raises [Invalid_argument] on out-of-range or unsorted cuts, or
    [length < 1]. *)

val uniform : length:int -> tracks:int -> segment_length:int -> t
(** Every track cut into segments of the given length (the last may be
    shorter). *)

val random : rng:Fpgasat_fpga.Rng.t -> length:int -> tracks:int -> max_cuts:int -> t
(** Each track gets [0 .. max_cuts] distinct random cut positions. *)

val num_tracks : t -> int
val segments : t -> int -> (int * int) list
(** [(first, last)] column ranges of a track's segments, left to right. *)

val segment_covering : t -> track:int -> left:int -> right:int -> int option
(** Index (within the track) of the unique segment containing the span, if
    the span does not cross a cut. *)

val feasible_tracks : t -> connection -> int list
val conflict_on_track : t -> connection -> connection -> track:int -> bool
(** Would the two connections use the same segment of this track? (Both
    must be feasible there.) *)

type violation =
  | Infeasible_track of int  (** Connection whose span crosses a cut. *)
  | Track_out_of_range of int
  | Shared_segment of int * int  (** Two connections on one conductor. *)

val verify : t -> connection list -> int array -> (unit, violation) result
(** Checks a track assignment (indexed by position in the connection
    list). *)

val connection : int -> int -> int -> connection
(** [connection id left right]; normalises [left <= right]; raises
    [Invalid_argument] on negative columns. *)

val pp_violation : Format.formatter -> violation -> unit
