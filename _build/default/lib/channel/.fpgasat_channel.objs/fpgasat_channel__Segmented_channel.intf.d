lib/channel/segmented_channel.mli: Format Fpgasat_fpga
