lib/channel/channel_sat.mli: Fpgasat_encodings Fpgasat_sat Segmented_channel
