lib/channel/segmented_channel.ml: Array Format Fpgasat_fpga Fun Hashtbl List
