lib/channel/fpgasat_channel.ml: Channel_sat Segmented_channel
