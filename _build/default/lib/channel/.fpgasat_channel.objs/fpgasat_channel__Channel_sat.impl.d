lib/channel/channel_sat.ml: Array Format Fpgasat_encodings Fpgasat_sat List Segmented_channel
