module C = Fpgasat_core

type t =
  | Timeout
  | Memout
  | Crash of { exn_class : string; message : string; backtrace : string option }

let of_outcome = function
  | C.Flow.Routable _ | C.Flow.Unroutable -> None
  | C.Flow.Timeout -> Some Timeout
  | C.Flow.Memout -> Some Memout

let of_error (e : Pool.error) =
  Crash
    {
      exn_class = e.Pool.exn_class;
      message = e.Pool.message;
      backtrace = e.Pool.backtrace;
    }

let of_exn ?backtrace e =
  Crash
    {
      exn_class = Printexc.exn_slot_name e;
      message = Printexc.to_string e;
      backtrace;
    }

let name = function
  | Timeout -> "timeout"
  | Memout -> "memout"
  | Crash { exn_class; _ } -> "crash:" ^ exn_class

let message = function
  | Timeout -> "wall-clock or conflict budget exhausted"
  | Memout -> "memory budget exhausted"
  | Crash { message; _ } -> message

let backtrace = function
  | Timeout | Memout -> None
  | Crash { backtrace; _ } -> backtrace

(* Retries help when the failure might not recur under a bigger budget or a
   different solver; a crash is deterministic for a deterministic solver but
   the fallback presets may still dodge it, so everything is retryable — the
   distinction the supervisor acts on is decisive vs. not. *)
let transient = function Timeout | Memout -> true | Crash _ -> false

(* A crash whose exception class is the pool's deliberate domain-kill
   channel: the request did not merely fail, it took a worker domain with
   it. The serving layer's poison-quarantine decisions key on this. *)
let is_worker_death = function
  | Crash { exn_class; _ } ->
      String.equal exn_class Pool.Persistent.worker_killed_class
  | Timeout | Memout -> false

let error_is_worker_death (e : Pool.error) =
  String.equal e.Pool.exn_class Pool.Persistent.worker_killed_class

let pp ppf f =
  match f with
  | Timeout | Memout -> Format.pp_print_string ppf (name f)
  | Crash { exn_class; message; _ } ->
      Format.fprintf ppf "crash:%s (%s)" exn_class message
