(** The domain-pool experiment engine.

    A sweep is a work queue of jobs — [benchmark × strategy × width] cells,
    or arbitrary thunks returning a {!Fpgasat_core.Flow.run} — executed by
    a fixed {!Pool} of worker domains. The engine provides:

    - {b per-job budgets}: every job receives a budget whose interrupt hook
      cancels it cooperatively ({!Fpgasat_sat.Solver.budget}) once its
      wall-clock deadline passes (wall clock, not [Sys.time], because
      process CPU time accumulates across all running domains);
    - {b crash isolation}: a job that raises becomes a
      [Run_record.Crashed] record, never killing the sweep;
    - {b streamed JSONL}: each completed cell is appended to the results
      file as one {!Run_record} line and flushed before the next progress
      report, so a killed sweep loses at most the in-flight cells;
    - {b resume}: with [resume = true] the engine first parses the results
      file and skips every cell whose key is already recorded (a torn final
      line — the signature of a killed run — is ignored and its cell
      re-run);
    - {b progress}: an optional callback observes [completed/total] as
      cells land.

    Text tables over sweep results are pure views: see {!render_table}. *)

type job = {
  benchmark : string;
  strategy : string;  (** {!Fpgasat_core.Strategy.name} form — the cell key. *)
  width : int;
  run :
    budget:Fpgasat_sat.Solver.budget -> certify:bool -> Fpgasat_core.Flow.run;
      (** The work. The engine passes the per-job budget (deadline +
          interrupt + poll interval already threaded in) and whether the
          answer must carry a checked certificate ({!config.certify}). *)
}

val cell :
  benchmark:string ->
  Fpgasat_core.Strategy.t ->
  Fpgasat_fpga.Global_route.t ->
  width:int ->
  job
(** The standard cell: [Flow.check_width] of the strategy on the route. *)

type progress = {
  completed : int;  (** Cells finished so far, including skipped ones. *)
  total : int;
  skipped : int;  (** Cells satisfied from the resume file. *)
}

type config = {
  jobs : int;  (** Worker domains; clamped to at least 1. *)
  budget_seconds : float option;
      (** Per-job wall-clock deadline; [None] = unbounded. *)
  poll_every : int;
      (** Interrupt poll interval threaded into each job's budget
          (conflicts; see {!Fpgasat_sat.Solver.budget}). *)
  out : string option;  (** JSONL results file, appended to. *)
  resume : bool;  (** Skip cells already recorded in [out]. *)
  certify : bool;
      (** Certify every decisive cell: UNSAT answers must carry a proof
          accepted by {!Fpgasat_sat.Drat_check}, SAT answers a model that
          passes {!Fpgasat_sat.Solver.check_model} and
          {!Fpgasat_fpga.Detailed_route.verify}. Results gain the
          [certified] record field. *)
  on_progress : (progress -> unit) option;
}

val default_config : config
(** [jobs = Pool.default_jobs ()], no budget, default poll interval, no
    output file, no resume, no certification, no progress callback. *)

val run : config -> job list -> Run_record.t list
(** Executes the queue and returns one record per job, in job order.
    Duplicate keys in the job list are executed once each but resume only
    distinguishes keys, so keep keys unique. Raises [Sys_error] if the
    results file cannot be opened or written. *)

val load : string -> Run_record.t list * int
(** Parses a JSONL results file: the valid records in file order, plus the
    number of lines that failed to parse (empty lines are not counted). *)

val render_table : Run_record.t list -> string
(** The benchmarks × strategies matrix as a monospace table — a pure view
    over records. Rows are ["bench (W=w)"] in first-appearance order,
    columns strategies in first-appearance order; cells show total CPU
    seconds, [T/O] for timeouts and [crash] for crashed cells, [-] for
    absent combinations. *)

val summary : Run_record.t list -> string
(** One line: cell counts by outcome; when any record carries a [certified]
    flag, also ["c/a certified"] over the cells that attempted it. *)
