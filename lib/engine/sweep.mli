(** The domain-pool experiment engine, with a fault-tolerant supervisor.

    A sweep is a work queue of jobs — [benchmark × strategy × width] cells,
    or arbitrary thunks returning a {!Fpgasat_core.Flow.run} — executed by
    a fixed {!Pool} of worker domains. The engine provides:

    - {b per-job budgets}: every attempt receives a budget whose interrupt
      hook cancels it cooperatively ({!Fpgasat_sat.Solver.budget}) once its
      wall-clock deadline passes (wall clock, not [Sys.time], because
      process CPU time accumulates across all running domains), and an
      optional [max_memory_mb] ceiling that ends runaway cells as [Memout]
      instead of letting one clause database OOM the whole process;
    - {b crash isolation}: a job that raises becomes a
      [Run_record.Crashed] record — with the exception class and, opt-in,
      its backtrace — never killing the sweep;
    - {b retry with escalation}: with [retry.max_attempts > 1] a
      non-decisive cell is retried with geometrically escalated budgets
      and, optionally, the fallback preset ladder siege → minisat → DPLL;
      a cell that fails every attempt is {e quarantined}: recorded with
      [quarantined = true], skipped by future [--resume]s, counted in
      {!summary} — instead of crash-looping;
    - {b streamed JSONL}: each completed cell is appended to the results
      file as one {!Run_record} line and flushed before the next progress
      report, so a killed sweep loses at most the in-flight cells;
    - {b resume}: with [resume = true] the engine first parses the results
      file and skips cells already answered (a torn final line — the
      signature of a killed run — is ignored and its cell re-run). A
      retrying sweep re-runs recorded timeout/memout/crash cells that are
      not quarantined, since escalated budgets may now answer them; a
      single-attempt sweep skips everything recorded, as before;
    - {b single writer}: an advisory lock file ([<out>.lock], holding the
      owner pid) makes a second sweep on the same results path fail fast
      with [Sys_error] instead of interleaving corrupt lines; locks whose
      pid is dead are reclaimed silently, so kill + resume stays hands-off;
    - {b progress}: an optional callback observes [completed/total] as
      cells land.

    Text tables over sweep results are pure views: see {!render_table}. *)

type fallback = Primary | Fallback_minisat | Fallback_dpll
(** Which rung of the retry ladder an attempt runs on. [Primary] is the
    job's own strategy; [Fallback_minisat] swaps the solver preset for
    {!Fpgasat_sat.Solver.minisat_like}; [Fallback_dpll] runs the plain DPLL
    backend ({!Fpgasat_core.Flow.submit} of a request with
    [backend = `Dpll]). *)

val fallback_name : fallback -> string
(** ["primary"], ["minisat"], ["dpll"]. *)

type job = {
  benchmark : string;
  strategy : string;  (** {!Fpgasat_core.Strategy.name} form — the cell key. *)
  width : int;
  run :
    budget:Fpgasat_sat.Solver.budget ->
    certify:bool ->
    telemetry:bool ->
    fallback:fallback ->
    Fpgasat_core.Flow.run;
      (** The work. The engine passes the per-attempt budget (deadline +
          memory ceiling + poll interval — and, when the sweep carries a
          {!config.trace}, the event hook — already threaded in), whether
          the answer must carry a checked certificate ({!config.certify}),
          whether to derive telemetry ({!config.telemetry}), and the ladder
          rung. Jobs that cannot honour a fallback may ignore it. *)
}

val cell :
  benchmark:string ->
  Fpgasat_core.Strategy.t ->
  Fpgasat_fpga.Global_route.t ->
  width:int ->
  job
(** The standard cell: [Flow.submit] of the strategy's request on the route.
    Honours the full fallback ladder. The record always carries the cell's
    own strategy name regardless of which rung answered, so resume keys
    stay stable. *)

type progress = {
  completed : int;  (** Cells finished so far, including skipped ones. *)
  total : int;
  skipped : int;  (** Cells satisfied from the resume file. *)
}

type retry = {
  max_attempts : int;  (** Attempts per cell; 1 = the historical behaviour. *)
  escalation : float;
      (** Geometric budget growth: attempt [n] runs with [budget_seconds]
          and [max_memory_mb] scaled by [escalation^(n-1)]. *)
  fallback_presets : bool;
      (** Walk the ladder siege → minisat → DPLL on attempts 2 and ≥3
          instead of only re-running the primary strategy. *)
}

val no_retry : retry
(** [max_attempts = 1] — single attempt, escalation 2.0 (unused), no
    fallback presets. *)

type config = {
  jobs : int;  (** Worker domains; clamped to at least 1. *)
  budget_seconds : float option;
      (** Per-attempt wall-clock deadline; [None] = unbounded. *)
  max_memory_mb : int option;
      (** Per-attempt process-heap ceiling
          ({!Fpgasat_sat.Solver.budget.max_memory_mb}); [None] =
          unbounded. *)
  poll_every : int;
      (** Interrupt poll interval threaded into each job's budget
          (conflicts; see {!Fpgasat_sat.Solver.budget}). *)
  out : string option;  (** JSONL results file, appended to (and locked). *)
  resume : bool;  (** Skip cells already recorded in [out]. *)
  certify : bool;
      (** Certify every decisive cell: UNSAT answers must carry a proof
          accepted by {!Fpgasat_sat.Drat_check}, SAT answers a model that
          passes {!Fpgasat_sat.Solver.check_model} and
          {!Fpgasat_fpga.Detailed_route.verify}. Results gain the
          [certified] record field. *)
  telemetry : bool;
      (** Derive per-solve telemetry ({!Fpgasat_obs.Telemetry}) on every
          cell; records gain the optional [telemetry] key. *)
  trace : Fpgasat_obs.Trace.t option;
      (** When set, every attempt's budget carries the trace's event hook
          ({!Fpgasat_obs.Trace.sink}) and the supervisor records [Retry] /
          [Quarantine] marks into it. One ring shared by all workers. *)
  retry : retry;
  capture_backtrace : bool;
      (** Record crash backtraces into {!Run_record.t.backtrace} (costs a
          little per caught exception; off by default). *)
  on_progress : (progress -> unit) option;
}

val default_config : config
(** [jobs = Pool.default_jobs ()], no budget, no memory ceiling, default
    poll interval, no output file, no resume, no certification, no
    telemetry, no trace, {!no_retry}, no backtraces, no progress
    callback. *)

val run : config -> job list -> Run_record.t list
(** Executes the queue and returns one record per job, in job order — one
    record per cell regardless of how many attempts it took
    ([wall_seconds] totals them; [attempts]/[failure]/[quarantined] are set
    per the supervisor rules above). Duplicate keys in the job list are
    executed once each but resume only distinguishes keys, so keep keys
    unique. Raises [Sys_error] if the results file cannot be opened,
    locked, or written. *)

val load : string -> Run_record.t list * int
(** Parses a JSONL results file: the valid records in file order, plus the
    number of lines that failed to parse (empty lines are not counted). *)

val render_table : Run_record.t list -> string
(** The benchmarks × strategies matrix as a monospace table — a pure view
    over records. Rows are ["bench (W=w)"] in first-appearance order,
    columns strategies in first-appearance order; cells show total CPU
    seconds, [T/O] for timeouts, [M/O] for memouts and [crash] for crashed
    cells, [-] for absent combinations. *)

val summary : Run_record.t list -> string
(** One line: cell counts by outcome; memout and quarantined counts appear
    when non-zero, and when any record carries a [certified] flag, also
    ["c/a certified"] over the cells that attempted it. *)
