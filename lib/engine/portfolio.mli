(** Portfolios of strategies (paper, Sect. 6), on the engine's domain pool.

    A portfolio runs several strategies on the same width query and takes
    the first answer, cancelling the rest. One entry point, two modes:

    - [`Parallel] (default): members run on the bounded {!Pool} (no more
      one unbounded domain per member). The first member to reach a
      decisive answer wins — recorded with an atomic compare-and-set at the
      moment the answer lands, so two members finishing close together
      cannot swap places in the accounting — and flips a stop flag that
      cancels the others through their budget's interrupt hook.
    - [`Simulated]: members run sequentially (deterministically) and the
      winner is the decisive member with the smallest total CPU time — the
      paper-style accounting where a portfolio on enough cores costs the
      time of its fastest member.

    Cancellation latency is bounded by the interrupt poll granularity; see
    {!Fpgasat_sat.Solver.budget} and the [poll_every] parameter. *)

type member_result = {
  strategy : Fpgasat_core.Strategy.t;
  run : Fpgasat_core.Flow.run;
  wall_seconds : float;
}

type t = {
  winner : member_result option;
      (** First decisive member ([None] if every member timed out). *)
  members : member_result list;
      (** All members, in input order. In parallel mode, cancelled members
          report [Flow.Timeout]. *)
}

type mode = [ `Parallel | `Simulated ]

val pick_winner :
  by:(member_result -> float) -> member_result list -> member_result option
(** The decisive member minimising the measure — the single winner-picking
    path both modes share. *)

val run :
  ?mode:mode ->
  ?jobs:int ->
  ?poll_every:int ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Fpgasat_core.Strategy.t list ->
  Fpgasat_fpga.Global_route.t ->
  width:int ->
  t
(** Runs the portfolio. [jobs] bounds the worker domains in [`Parallel]
    mode (default {!Pool.default_jobs}; [`Simulated] always uses one);
    [poll_every] is the cancellation poll interval in conflicts (default
    {!Fpgasat_sat.Solver.default_poll_interval}). Raises
    [Invalid_argument] on an empty member list and [Failure] if a member
    raises. *)
