(** Advisory single-writer pid locks for append-only result files.

    The sweep supervisor introduced the scheme for its [--out] JSONL file;
    the solve server's cache journal shares it. A lock is a sibling file
    ([<path>.lock]) holding the owner's pid, created with [O_EXCL] as the
    atomic acquire. A lock whose recorded pid is no longer alive is a
    leftover from a kill and is silently reclaimed, so unattended
    kill-and-restart loops keep working; a lock held by a {e live} process
    fails fast with [Sys_error] — two writers interleaving appends would
    tear each other's lines.

    Because acquisition is file creation (not an fcntl region lock), it
    also excludes a second writer {e within the same process}, which
    fcntl-style locks cannot. *)

val lock_path : string -> string
(** [lock_path p] is [p ^ ".lock"] — where the lock for [p] lives. *)

val acquire : string -> unit
(** Take the lock protecting [path]. Raises [Sys_error] when a live
    process holds it; reclaims stale locks (up to a bounded number of
    races) silently. *)

val release : string -> unit
(** Remove the lock file; never raises (a vanished lock is fine). *)

val with_lock : string -> (unit -> 'a) -> 'a
(** [acquire], run, [release] (also on exception). *)
