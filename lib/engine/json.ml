(** Re-export of {!Fpgasat_obs.Json}, where the codec now lives (the
    observability layer needs JSON below the engine in the dependency
    order). [Fpgasat_engine.Json.t] remains the same type as
    [Fpgasat_obs.Json.t], so existing consumers keep compiling. *)

include Fpgasat_obs.Json
