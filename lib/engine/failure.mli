(** Classification of non-decisive experiment cells.

    Every cell a sweep cannot answer falls into exactly one of three
    buckets: the budget ran out ({!Timeout}), the memory ceiling was crossed
    ({!Memout}), or the cell's code raised ({!Crash}). The supervisor's
    retry and quarantine decisions, the run-record ["failure"] key, and the
    chaos harness's assertions all speak this vocabulary. *)

type t =
  | Timeout  (** Wall-clock, conflict, or interrupt budget exhausted. *)
  | Memout  (** [max_memory_mb] ceiling crossed; stopped cooperatively. *)
  | Crash of {
      exn_class : string;
          (** [Printexc.exn_slot_name] — the exception constructor name,
              stable across payloads ("Failure", "Invalid_argument", …). *)
      message : string;  (** [Printexc.to_string] rendering. *)
      backtrace : string option;  (** Present when recording was opted in. *)
    }

val of_outcome : Fpgasat_core.Flow.outcome -> t option
(** [None] on decisive outcomes (routable/unroutable); the classification
    otherwise. *)

val of_error : Pool.error -> t
(** A pool-isolated thunk crash, as reported by {!Pool.map}. *)

val of_exn : ?backtrace:string -> exn -> t
(** Classify a caught exception directly. *)

val name : t -> string
(** The stable record tag: ["timeout"], ["memout"], or
    ["crash:<exn-class>"]. Parseable back to the bucket by prefix. *)

val message : t -> string
(** Human-oriented one-liner (the exception text for crashes). *)

val backtrace : t -> string option

val transient : t -> bool
(** Heuristic: [true] for timeout/memout, which a bigger escalated budget
    may cure; [false] for crashes, which only a different solver might. The
    supervisor retries both but only escalates budgets for transient ones'
    sake. *)

val is_worker_death : t -> bool
(** [true] exactly when the crash's exception class is
    {!Pool.Persistent.worker_killed_class} — the request killed its worker
    domain rather than merely raising. The server quarantines request
    identities that do this repeatedly. *)

val error_is_worker_death : Pool.error -> bool
(** The same test on a raw {!Pool.error}, for callers holding a ticket
    result rather than a classified failure. *)

val pp : Format.formatter -> t -> unit
