module F = Fpgasat_fpga
module Gen = F.Generator
module Fit = Fpgasat_obs.Fit

type axis = { dim : string; values : int list }

type grid = {
  base : Gen.params;
  axes : axis list;
  family : Gen.family;
}

let dimensions = [ "grid"; "nets"; "width" ]

let set_dim (p : Gen.params) dim v =
  match dim with
  | "grid" -> { p with Gen.grid = v }
  | "nets" -> { p with Gen.nets = v }
  | "width" -> { p with Gen.width = v }
  | d -> invalid_arg (Printf.sprintf "Dims: unknown dimension %S" d)

let get_dim (p : Gen.params) = function
  | "grid" -> p.Gen.grid
  | "nets" -> p.Gen.nets
  | "width" -> p.Gen.width
  | d -> invalid_arg (Printf.sprintf "Dims: unknown dimension %S" d)

let smoke =
  {
    base = Gen.default_params;
    axes =
      [
        { dim = "grid"; values = [ 6; 8 ] };
        { dim = "nets"; values = [ 96; 160 ] };
        { dim = "width"; values = [ 4; 6 ] };
      ];
    family = Gen.Unroutable;
  }

let full =
  {
    base = Gen.default_params;
    axes =
      [
        { dim = "grid"; values = [ 5; 7; 9; 11 ] };
        { dim = "nets"; values = [ 32; 48; 64; 96 ] };
        { dim = "width"; values = [ 4; 5; 6 ] };
      ];
    family = Gen.Unroutable;
  }

let cells g =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun a ->
      if not (List.mem a.dim dimensions) then
        invalid_arg (Printf.sprintf "Dims.cells: unknown dimension %S" a.dim);
      if Hashtbl.mem seen a.dim then
        invalid_arg (Printf.sprintf "Dims.cells: duplicate dimension %S" a.dim);
      Hashtbl.add seen a.dim ();
      if a.values = [] then
        invalid_arg (Printf.sprintf "Dims.cells: dimension %S has no values" a.dim))
    g.axes;
  List.fold_left
    (fun acc a ->
      List.concat_map
        (fun p -> List.map (fun v -> set_dim p a.dim v) a.values)
        acc)
    [ g.base ] g.axes

let jobs g ~strategies =
  List.concat_map
    (fun p ->
      let inst = Gen.build p g.family in
      let benchmark = Gen.name p g.family in
      List.map
        (fun s ->
          Sweep.cell ~benchmark s inst.Gen.route ~width:inst.Gen.solve_width)
        strategies)
    (cells g)

(* ---------- analysis ---------- *)

(* The group key: every coordinate except the fitted dimension, plus the
   family — points sharing it differ only along the dimension, so they
   share an intercept in the pooled fit. *)
let group_of (p : Gen.params) family ~except =
  let coords =
    List.filter_map
      (fun (tag, dim, v) ->
        if dim = except then None else Some (Printf.sprintf "%c%d" tag v))
      [ ('g', "grid", p.Gen.grid); ('n', "nets", p.Gen.nets);
        ('w', "width", p.Gen.width) ]
  in
  String.concat ":"
    (coords
    @ [
        Printf.sprintf "f%d" p.Gen.max_fanout;
        Printf.sprintf "l%d" p.Gen.locality;
        Printf.sprintf "s%d" p.Gen.seed;
        Gen.family_name family;
      ])

let dedup xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

let crossover_range_min = 1.
let crossover_range_max = 1e6

let analyze records =
  let parsed =
    List.filter_map
      (fun (r : Run_record.t) ->
        match Gen.of_name r.Run_record.benchmark with
        | Some (p, fam) -> Some (r, p, fam)
        | None -> None)
      records
  in
  let strategies =
    dedup (List.map (fun (r, _, _) -> r.Run_record.strategy) parsed)
  in
  let fits =
    List.concat_map
      (fun strategy ->
        let mine =
          List.filter
            (fun (r, _, _) -> r.Run_record.strategy = strategy)
            parsed
        in
        let decisive, censored_cells =
          List.partition (fun (r, _, _) -> Run_record.decisive r) mine
        in
        let censored = List.length censored_cells in
        List.filter_map
          (fun dim ->
            let points =
              List.map
                (fun (r, p, fam) ->
                  {
                    Fit.x = float_of_int (get_dim p dim);
                    y = Run_record.total_seconds r;
                    group = group_of p fam ~except:dim;
                  })
                decisive
            in
            match Fit.power_law ~strategy ~dimension:dim ~censored points with
            | Ok f -> Some f
            | Error _ -> None)
          dimensions)
      strategies
  in
  let crossovers =
    List.concat_map
      (fun dim ->
        let here =
          List.filter (fun (f : Fit.fit) -> f.Fit.dimension = dim) fits
        in
        let rec pairs = function
          | [] -> []
          | f :: rest -> List.map (fun f' -> (f, f')) rest @ pairs rest
        in
        List.filter_map
          (fun ((f1 : Fit.fit), (f2 : Fit.fit)) ->
            match Fit.crossover_of_fits f1 f2 with
            | Some at
              when at >= crossover_range_min && at <= crossover_range_max ->
                let slow, fast =
                  if f1.Fit.exponent >= f2.Fit.exponent then (f1, f2)
                  else (f2, f1)
                in
                Some
                  {
                    Fit.dimension = dim;
                    slow = slow.Fit.strategy;
                    fast = fast.Fit.strategy;
                    at;
                  }
            | _ -> None)
          (pairs here))
      dimensions
  in
  let seed =
    match parsed with [] -> 0 | (_, p, _) :: _ -> p.Gen.seed
  in
  let family =
    let has f = List.exists (fun (_, _, fam) -> fam = f) parsed in
    match (has Gen.Routable, has Gen.Unroutable) with
    | true, true -> "mixed"
    | true, false -> "sat"
    | false, true -> "unsat"
    | false, false -> "mixed"
  in
  { Fit.seed; family; fits; crossovers }
