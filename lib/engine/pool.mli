(** A bounded pool of OCaml 5 domains over a fixed job array.

    This is the parallel substrate of the experiment engine and of
    {!Portfolio}: instead of spawning one unbounded domain per task, a fixed
    number of worker domains pull job indices from a shared counter until
    the queue drains. Results keep the input order, and a job that raises is
    isolated: its slot becomes [Error msg] and the other jobs are
    unaffected. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size that saturates the
    machine without oversubscribing it. *)

val map :
  ?jobs:int ->
  ?on_done:(int -> unit) ->
  (unit -> 'a) array ->
  ('a, string) result array
(** [map ~jobs thunks] runs every thunk and returns their results in input
    order. At most [min jobs (Array.length thunks)] worker domains run at
    once (default {!default_jobs}; values below 1 are clamped to 1). With
    [jobs = 1] everything runs sequentially in the calling domain — no
    domain is spawned, so single-job runs execute in a deterministic order.

    [on_done], if given, is called after each job completes with the number
    of jobs completed so far (1-based, monotonic); calls are serialised
    under an internal mutex but may come from worker domains. It must not
    raise: an exception from [on_done] kills its worker and the jobs that
    worker would have run are left as [Error].

    A thunk that raises yields [Error (Printexc.to_string exn)] in its
    slot; the sweep continues. *)
