(** A bounded pool of OCaml 5 domains over a fixed job array.

    This is the parallel substrate of the experiment engine and of
    {!Portfolio}: instead of spawning one unbounded domain per task, a fixed
    number of worker domains pull job indices from a shared counter until
    the queue drains. Results keep the input order, and a job that raises is
    isolated: its slot becomes [Error _] and the other jobs are
    unaffected. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size that saturates the
    machine without oversubscribing it. *)

type error = {
  exn_class : string;
      (** [Printexc.exn_slot_name] of the raised exception — a stable
          constructor name ("Failure", "Stack_overflow", …) the failure
          taxonomy can classify on, independent of the printed payload. *)
  message : string;  (** [Printexc.to_string] of the exception. *)
  backtrace : string option;
      (** Present only when [map] ran with [~record_backtrace:true] and the
          runtime produced a non-empty trace. *)
}

val error_of_exn : ?backtrace:string -> exn -> error
(** Builds an {!error} from a caught exception; exposed for callers that
    catch around the pool (e.g. the sweep's own per-cell wrapper). *)

val map :
  ?jobs:int ->
  ?record_backtrace:bool ->
  ?on_done:(int -> unit) ->
  (unit -> 'a) array ->
  ('a, error) result array
(** [map ~jobs thunks] runs every thunk and returns their results in input
    order. At most [min jobs (Array.length thunks)] worker domains run at
    once (default {!default_jobs}; values below 1 are clamped to 1). With
    [jobs = 1] everything runs sequentially in the calling domain — no
    domain is spawned, so single-job runs execute in a deterministic order.

    [record_backtrace] (default false) turns on backtrace recording inside
    each worker domain so a crashing thunk's {!error} carries its trace;
    recording costs a little time per raised-and-caught exception, hence
    opt-in.

    [on_done], if given, is called after each job completes with the number
    of jobs completed so far (1-based, monotonic); calls are serialised
    under an internal mutex but may come from worker domains. It must not
    raise: an exception from [on_done] kills its worker and the jobs that
    worker would have run are left as [Error].

    A thunk that raises yields [Error e] in its slot, with the exception
    class, message and optional backtrace; the sweep continues. *)
