(** A bounded pool of OCaml 5 domains over a fixed job array.

    This is the parallel substrate of the experiment engine and of
    {!Portfolio}: instead of spawning one unbounded domain per task, a fixed
    number of worker domains pull job indices from a shared counter until
    the queue drains. Results keep the input order, and a job that raises is
    isolated: its slot becomes [Error _] and the other jobs are
    unaffected. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size that saturates the
    machine without oversubscribing it. *)

type error = {
  exn_class : string;
      (** [Printexc.exn_slot_name] of the raised exception — a stable
          constructor name ("Failure", "Stack_overflow", …) the failure
          taxonomy can classify on, independent of the printed payload. *)
  message : string;  (** [Printexc.to_string] of the exception. *)
  backtrace : string option;
      (** Present only when [map] ran with [~record_backtrace:true] and the
          runtime produced a non-empty trace. *)
}

val error_of_exn : ?backtrace:string -> exn -> error
(** Builds an {!error} from a caught exception; exposed for callers that
    catch around the pool (e.g. the sweep's own per-cell wrapper). *)

val map :
  ?jobs:int ->
  ?record_backtrace:bool ->
  ?on_done:(int -> unit) ->
  (unit -> 'a) array ->
  ('a, error) result array
(** [map ~jobs thunks] runs every thunk and returns their results in input
    order. At most [min jobs (Array.length thunks)] worker domains run at
    once (default {!default_jobs}; values below 1 are clamped to 1). With
    [jobs = 1] everything runs sequentially in the calling domain — no
    domain is spawned, so single-job runs execute in a deterministic order.

    [record_backtrace] (default false) turns on backtrace recording inside
    each worker domain so a crashing thunk's {!error} carries its trace;
    recording costs a little time per raised-and-caught exception, hence
    opt-in.

    [on_done], if given, is called after each job completes with the number
    of jobs completed so far (1-based, monotonic); calls are serialised
    under an internal mutex but may come from worker domains. It must not
    raise: an exception from [on_done] kills its worker and the jobs that
    worker would have run are left as [Error].

    A thunk that raises yields [Error e] in its slot, with the exception
    class, message and optional backtrace; the sweep continues. *)

(** A long-lived bounded pool with admission control.

    Where {!map} spins workers up for one job array and joins them, a
    [Persistent.t] keeps a fixed set of worker domains alive across many
    independent submissions — the substrate of the solve server, where
    requests arrive over time and each must be accepted, rejected
    (backlog full) or refused (shutting down) {e immediately}, never
    blocked on a queue. *)
module Persistent : sig
  type t

  exception Worker_killed
  (** The deliberate domain-kill channel. A thunk that raises this does
      not merely fail its ticket: the exception escapes the worker's catch
      and takes the whole worker domain down — the deterministic stand-in
      for a request whose execution destroys its worker (runaway native
      code, a fatal runtime error). The pool fills the ticket with
      [Error] {e before} the domain dies (no waiter hangs) and then
      respawns a replacement under the restart budget. *)

  val worker_killed_class : string
  (** [Printexc.exn_slot_name Worker_killed] — the [exn_class] an
      {!error} carries when its worker died; what
      {!Failure.is_worker_death} matches on. *)

  type 'a ticket
  (** A handle on one accepted submission's eventual result. *)

  type 'a submission =
    | Accepted of 'a ticket
    | Rejected  (** Backlog at capacity — the admission-control answer. *)
    | Stopped  (** {!shutdown} has begun; no new work is admitted. *)

  val create :
    ?workers:int ->
    ?queue_capacity:int ->
    ?restart_budget:int ->
    ?restart_backoff:float ->
    unit ->
    t
  (** Spawns [workers] domains (default {!default_jobs}, clamped to ≥ 1)
      that idle until work arrives. [queue_capacity] (default 64, clamped
      to ≥ 1) bounds the number of {e queued} (not yet running)
      submissions; beyond it {!submit} answers {!Rejected}.

      [restart_budget] (default 8, clamped to ≥ 0) bounds how many worker
      deaths the pool will repair over its lifetime: each dead domain is
      replaced by a fresh one until the budget is spent, after which the
      pool shrinks permanently (a pool that respawns forever would turn a
      poisoned request stream into a fork bomb). [restart_backoff]
      (default 0.05 s) is the first replacement's start-up delay; it
      doubles per respawn, capped at 1 s. *)

  val submit : t -> (unit -> 'a) -> 'a submission
  (** Never blocks: either the thunk is queued and a ticket returned, or
      the caller learns instantly that the pool is full or stopping. A
      thunk that raises resolves its ticket to [Error] (exception class +
      message); the worker survives — except {!Worker_killed}, which
      fills the ticket and then kills the worker domain (see above). *)

  val wait : 'a ticket -> ('a, error) result
  (** Blocks the calling thread until the submission has run. *)

  val peek : 'a ticket -> ('a, error) result option
  (** Non-blocking: [None] while still queued or running. *)

  val run : t -> (unit -> 'a) -> ('a, error) result option
  (** [submit] + [wait]; [None] when the pool refused the work. *)

  val backlog : t -> int * int
  (** [(queued, running)] at this instant — the admission-control gauge. *)

  val workers : t -> int
  (** Live worker domains — the configured size while healthy, smaller
      only when deaths have exhausted the restart budget, 0 after
      {!shutdown} returns. A respawn counts immediately (the replacement
      is booting through its backoff delay). *)

  val deaths : t -> int
  (** Worker domains killed so far ({!Worker_killed} escapes). *)

  val respawns : t -> int
  (** Replacement domains spawned so far (≤ {!restart_budget}). *)

  val restart_budget : t -> int
  (** The configured death-repair ceiling. *)

  val shutdown : t -> unit
  (** Graceful drain: stops admission, lets the workers finish every
      already-accepted submission, then joins every worker domain — when
      it returns no spawned domain is left running and every accepted
      ticket is filled. Idempotent; concurrent callers may return while
      the first caller is still joining. *)
end
