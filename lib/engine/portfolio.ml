module Sat = Fpgasat_sat
module C = Fpgasat_core

type member_result = {
  strategy : C.Strategy.t;
  run : C.Flow.run;
  wall_seconds : float;
}

type t = { winner : member_result option; members : member_result list }
type mode = [ `Parallel | `Simulated ]

let decisive m = C.Flow.decisive m.run.C.Flow.outcome

let pick_winner ~by members =
  List.filter decisive members
  |> List.sort (fun a b -> compare (by a) (by b))
  |> function
  | [] -> None
  | best :: _ -> Some best

let run_one budget strategy route ~width =
  let t0 = Unix.gettimeofday () in
  let request =
    C.Flow.(default_request |> with_strategy strategy |> with_budget budget)
  in
  let run = C.Flow.submit request route ~width in
  { strategy; run; wall_seconds = Unix.gettimeofday () -. t0 }

let members_of_results strategies results =
  List.map2
    (fun strategy result ->
      match result with
      | Ok m -> m
      | Error e ->
          failwith
            (Printf.sprintf "Portfolio.run: member %s raised: %s"
               (C.Strategy.name strategy) e.Pool.message))
    strategies
    (Array.to_list results)

let run ?(mode = `Parallel) ?jobs ?poll_every
    ?(budget = Sat.Solver.no_budget) strategies route ~width =
  if strategies = [] then invalid_arg "Portfolio.run: empty";
  let budget =
    match poll_every with
    | None -> budget
    | Some n -> Sat.Solver.with_poll_interval n budget
  in
  match mode with
  | `Simulated ->
      let thunks =
        Array.of_list
          (List.map (fun s () -> run_one budget s route ~width) strategies)
      in
      let members = members_of_results strategies (Pool.map ~jobs:1 thunks) in
      (* deterministic accounting: cheapest decisive member by CPU time *)
      {
        winner =
          pick_winner ~by:(fun m -> C.Flow.total m.run.C.Flow.timings) members;
        members;
      }
  | `Parallel ->
      let stop = Atomic.make false in
      let first = Atomic.make (-1) in
      let budget =
        Sat.Solver.interruptible (fun () -> Atomic.get stop) budget
      in
      let worker i strategy () =
        let result = run_one budget strategy route ~width in
        if decisive result then begin
          ignore (Atomic.compare_and_set first (-1) i);
          Atomic.set stop true
        end;
        result
      in
      let thunks =
        Array.of_list (List.mapi (fun i s -> worker i s) strategies)
      in
      let members = members_of_results strategies (Pool.map ?jobs thunks) in
      (* first-answer-wins: the member whose decisive answer landed first in
         real time (CAS order), not whichever happens to report the smaller
         wall time after the fact *)
      let winner =
        match Atomic.get first with
        | -1 -> pick_winner ~by:(fun m -> m.wall_seconds) members
        | i -> Some (List.nth members i)
      in
      { winner; members }
