module Sat = Fpgasat_sat
module Obs = Fpgasat_obs
module C = Fpgasat_core

type fallback = Primary | Fallback_minisat | Fallback_dpll

let fallback_name = function
  | Primary -> "primary"
  | Fallback_minisat -> "minisat"
  | Fallback_dpll -> "dpll"

type job = {
  benchmark : string;
  strategy : string;
  width : int;
  run :
    budget:Sat.Solver.budget ->
    certify:bool ->
    telemetry:bool ->
    fallback:fallback ->
    C.Flow.run;
}

let cell ~benchmark strategy route ~width =
  {
    benchmark;
    strategy = C.Strategy.name strategy;
    width;
    run =
      (fun ~budget ~certify ~telemetry ~fallback ->
        let request =
          C.Flow.(
            default_request |> with_strategy strategy |> with_budget budget
            |> with_certify certify |> with_telemetry telemetry)
        in
        let request =
          match fallback with
          | Primary -> request
          | Fallback_minisat ->
              C.Flow.with_strategy
                {
                  strategy with
                  C.Strategy.solver = Sat.Solver.minisat_like;
                  solver_name = "minisat";
                }
                request
          | Fallback_dpll -> C.Flow.with_backend `Dpll request
        in
        C.Flow.submit request route ~width);
  }

type progress = { completed : int; total : int; skipped : int }

type retry = {
  max_attempts : int;
  escalation : float;
  fallback_presets : bool;
}

let no_retry = { max_attempts = 1; escalation = 2.0; fallback_presets = false }

type config = {
  jobs : int;
  budget_seconds : float option;
  max_memory_mb : int option;
  poll_every : int;
  out : string option;
  resume : bool;
  certify : bool;
  telemetry : bool;
  trace : Obs.Trace.t option;
  retry : retry;
  capture_backtrace : bool;
  on_progress : (progress -> unit) option;
}

let default_config =
  {
    jobs = Pool.default_jobs ();
    budget_seconds = None;
    max_memory_mb = None;
    poll_every = Sat.Solver.default_poll_interval;
    out = None;
    resume = false;
    certify = false;
    telemetry = false;
    trace = None;
    retry = no_retry;
    capture_backtrace = false;
    on_progress = None;
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let records = ref [] in
      let bad = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Run_record.of_line line with
             | Ok r -> records := r :: !records
             | Error _ -> incr bad
         done
       with End_of_file -> ());
      (List.rev !records, !bad))

let job_key (j : job) =
  Run_record.make_key ~benchmark:j.benchmark ~strategy:j.strategy ~width:j.width

(* ---------- advisory lock ---------- *)

(* The pid-lock scheme lives in {!Lockfile} (shared with the solve server's
   cache journal); the sweep locks its --out path for the whole run. *)
let with_out_lock config f =
  match config.out with
  | None -> f ()
  | Some path -> Lockfile.with_lock path f

(* ---------- per-cell supervision ---------- *)

(* The per-attempt budget: the configured wall-clock deadline as an
   interrupt hook (Sys.time is process CPU time, which accumulates across
   all worker domains and would shrink every job's budget under
   parallelism), the memory ceiling, and the configured poll interval.
   Retries escalate both limits geometrically. *)
let job_budget ?(attempt = 1) config =
  let scale = config.retry.escalation ** float_of_int (attempt - 1) in
  let budget =
    Sat.Solver.with_poll_interval config.poll_every Sat.Solver.no_budget
  in
  (* an attached trace observes every attempt's solver events; the ring is
     domain-safe, so all workers share it *)
  let budget =
    match config.trace with
    | None -> budget
    | Some tr -> Sat.Solver.with_event_hook (Obs.Trace.sink tr) budget
  in
  let budget =
    match config.max_memory_mb with
    | None -> budget
    | Some mb ->
        Sat.Solver.with_memory_limit
          (int_of_float (ceil (float_of_int mb *. scale)))
          budget
  in
  match config.budget_seconds with
  | None -> budget
  | Some seconds ->
      let deadline = Unix.gettimeofday () +. (seconds *. scale) in
      Sat.Solver.interruptible (fun () -> Unix.gettimeofday () > deadline) budget

let fallback_for config ~attempt =
  if (not config.retry.fallback_presets) || attempt <= 1 then Primary
  else if attempt = 2 then Fallback_minisat
  else Fallback_dpll

(* Runs one cell to its final record: up to [max_attempts] attempts with
   escalating budgets (and optionally the preset ladder
   siege → minisat → dpll), classifying every non-decisive ending through
   {!Failure}. [wall_seconds] on the record is the total across attempts —
   what the cell actually cost the sweep. *)
let supervise config job =
  let t0 = Unix.gettimeofday () in
  let max_attempts = max 1 config.retry.max_attempts in
  let attempts_field n = if max_attempts > 1 then Some n else None in
  let rec go attempt =
    let budget = job_budget ~attempt config in
    let fallback = fallback_for config ~attempt in
    let result =
      match
        job.run ~budget ~certify:config.certify ~telemetry:config.telemetry
          ~fallback
      with
      | run -> Ok run
      | exception e ->
          let backtrace =
            if config.capture_backtrace then
              match Printexc.get_backtrace () with "" -> None | bt -> Some bt
            else None
          in
          Error (Failure.of_exn ?backtrace e)
    in
    let classified =
      match result with
      | Ok run -> Failure.of_outcome run.C.Flow.outcome
      | Error f -> Some f
    in
    match classified with
    | None ->
        let run = Result.get_ok result in
        Run_record.of_run ~strategy:job.strategy
          ?attempts:(attempts_field attempt) ~benchmark:job.benchmark
          ~wall_seconds:(Unix.gettimeofday () -. t0)
          run
    | Some _ when attempt < max_attempts ->
        Obs.Trace.record_opt config.trace Obs.Trace.Retry (attempt + 1) 0;
        go (attempt + 1)
    | Some f -> (
        (* final attempt still failed: quarantine iff retries were actually
           allowed — a single-attempt sweep keeps the historical semantics
           where every failed cell is retried by the next --resume *)
        let quarantined = max_attempts > 1 in
        if quarantined then
          Obs.Trace.record_opt config.trace Obs.Trace.Quarantine attempt 0;
        let wall_seconds = Unix.gettimeofday () -. t0 in
        match result with
        | Ok run ->
            Run_record.of_run ~strategy:job.strategy
              ?attempts:(attempts_field attempt) ~failure:(Failure.name f)
              ~quarantined ~benchmark:job.benchmark ~wall_seconds run
        | Error _ ->
            Run_record.crashed
              ?attempts:(attempts_field attempt) ~failure:(Failure.name f)
              ?backtrace:(Failure.backtrace f) ~quarantined
              ~benchmark:job.benchmark ~strategy:job.strategy ~width:job.width
              ~wall_seconds (Failure.message f))
  in
  go 1

(* Which already-recorded cells does --resume trust? Decisive and
   quarantined ones always; a plain failure (timeout/memout/crash) is
   re-run when this sweep is allowed to retry, since that is exactly the
   case the bigger budgets might now answer. Single-attempt sweeps keep the
   historical skip-everything-recorded behaviour. *)
let resume_skips config (r : Run_record.t) =
  config.retry.max_attempts <= 1
  || Run_record.decisive r
  || r.Run_record.quarantined

let run config jobs =
  with_out_lock config @@ fun () ->
  let total = List.length jobs in
  let known =
    match config.out with
    | Some path when config.resume && Sys.file_exists path ->
        let records, _torn = load path in
        let tbl = Hashtbl.create (List.length records) in
        List.iter
          (fun r ->
            if resume_skips config r then
              Hashtbl.replace tbl (Run_record.key r) r)
          records;
        tbl
    | _ -> Hashtbl.create 0
  in
  let skipped = ref 0 in
  let cached, pending =
    List.partition_map
      (fun job ->
        match Hashtbl.find_opt known (job_key job) with
        | Some r ->
            incr skipped;
            Left (job_key job, r)
        | None -> Right job)
      jobs
  in
  let skipped = !skipped in
  let oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.out
  in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out_noerr oc)
    (fun () ->
      let lock = Mutex.create () in
      let completed = ref skipped in
      let report () =
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () ->
            incr completed;
            match config.on_progress with
            | Some f -> ( try f { completed = !completed; total; skipped } with _ -> ())
            | None -> ())
      in
      let write record =
        match oc with
        | None -> ()
        | Some oc ->
            Mutex.lock lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock lock)
              (fun () ->
                output_string oc (Run_record.to_line record);
                output_char oc '\n';
                flush oc)
      in
      (match config.on_progress with
      | Some f when skipped > 0 -> (
          try f { completed = skipped; total; skipped } with _ -> ())
      | _ -> ());
      let thunks =
        Array.of_list
          (List.map
             (fun job () ->
               let record = supervise config job in
               write record;
               report ();
               record)
             pending)
      in
      let results =
        Pool.map ~jobs:config.jobs
          ~record_backtrace:config.capture_backtrace thunks
      in
      (* [supervise] catches everything the cell raises, so a worker can
         only yield Error if the results file write raised — surface that
         instead of fabricating a record. *)
      Array.iter
        (function Ok _ -> () | Error e -> raise (Sys_error e.Pool.message))
        results;
      let pending = Array.of_list pending in
      let fresh = Hashtbl.create (Array.length results) in
      Array.iteri
        (fun i r ->
          match r with
          | Ok record -> Hashtbl.replace fresh (job_key pending.(i)) record
          | Error _ -> ())
        results;
      let cached_tbl = Hashtbl.create (List.length cached) in
      List.iter (fun (k, r) -> Hashtbl.replace cached_tbl k r) cached;
      List.map
        (fun job ->
          let k = job_key job in
          match Hashtbl.find_opt cached_tbl k with
          | Some r -> r
          | None -> Hashtbl.find fresh k)
        jobs)

(* ---------- views ---------- *)

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let cell_text (r : Run_record.t) =
  match r.Run_record.outcome with
  | Run_record.Timeout -> "T/O"
  | Run_record.Memout -> "M/O"
  | Run_record.Crashed _ -> "crash"
  | Run_record.Routable | Run_record.Unroutable ->
      C.Report.format_seconds (Run_record.total_seconds r)

let render_table records =
  let row_of (r : Run_record.t) =
    Printf.sprintf "%s (W=%d)" r.Run_record.benchmark r.Run_record.width
  in
  let rows = dedup (List.map row_of records) in
  let cols = dedup (List.map (fun r -> r.Run_record.strategy) records) in
  let tbl = Hashtbl.create (List.length records) in
  List.iter
    (fun r -> Hashtbl.replace tbl (row_of r, r.Run_record.strategy) r)
    records;
  C.Report.matrix ~corner:"Benchmark" ~rows ~cols
    ~cell:(fun ~row ~col ->
      match Hashtbl.find_opt tbl (row, col) with
      | Some r -> cell_text r
      | None -> "-")
    ()

let summary records =
  let count p = List.length (List.filter p records) in
  let base =
    Printf.sprintf
      "%d cells: %d routable, %d unroutable, %d timeout, %d crashed"
      (List.length records)
      (count (fun r -> r.Run_record.outcome = Run_record.Routable))
      (count (fun r -> r.Run_record.outcome = Run_record.Unroutable))
      (count (fun r -> r.Run_record.outcome = Run_record.Timeout))
      (count (fun r ->
           match r.Run_record.outcome with
           | Run_record.Crashed _ -> true
           | _ -> false))
  in
  let memouts = count (fun r -> r.Run_record.outcome = Run_record.Memout) in
  let base =
    if memouts = 0 then base
    else Printf.sprintf "%s, %d memout" base memouts
  in
  let quarantined = count (fun r -> r.Run_record.quarantined) in
  let base =
    if quarantined = 0 then base
    else Printf.sprintf "%s, %d quarantined" base quarantined
  in
  let attempted = count (fun r -> r.Run_record.certified <> None) in
  if attempted = 0 then base
  else
    Printf.sprintf "%s, %d/%d certified" base
      (count (fun r -> r.Run_record.certified = Some true))
      attempted
