module Sat = Fpgasat_sat
module C = Fpgasat_core

type job = {
  benchmark : string;
  strategy : string;
  width : int;
  run : budget:Sat.Solver.budget -> certify:bool -> C.Flow.run;
}

let cell ~benchmark strategy route ~width =
  {
    benchmark;
    strategy = C.Strategy.name strategy;
    width;
    run =
      (fun ~budget ~certify ->
        C.Flow.check_width ~strategy ~budget ~certify route ~width);
  }

type progress = { completed : int; total : int; skipped : int }

type config = {
  jobs : int;
  budget_seconds : float option;
  poll_every : int;
  out : string option;
  resume : bool;
  certify : bool;
  on_progress : (progress -> unit) option;
}

let default_config =
  {
    jobs = Pool.default_jobs ();
    budget_seconds = None;
    poll_every = Sat.Solver.default_poll_interval;
    out = None;
    resume = false;
    certify = false;
    on_progress = None;
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let records = ref [] in
      let bad = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Run_record.of_line line with
             | Ok r -> records := r :: !records
             | Error _ -> incr bad
         done
       with End_of_file -> ());
      (List.rev !records, !bad))

let job_key (j : job) =
  Run_record.make_key ~benchmark:j.benchmark ~strategy:j.strategy ~width:j.width

(* The per-job budget: the configured wall-clock deadline as an interrupt
   hook (Sys.time is process CPU time, which accumulates across all worker
   domains and would shrink every job's budget under parallelism), with the
   configured poll interval threaded through. *)
let job_budget config =
  let budget =
    Sat.Solver.with_poll_interval config.poll_every Sat.Solver.no_budget
  in
  match config.budget_seconds with
  | None -> budget
  | Some seconds ->
      let deadline = Unix.gettimeofday () +. seconds in
      Sat.Solver.interruptible (fun () -> Unix.gettimeofday () > deadline) budget

let run config jobs =
  let total = List.length jobs in
  let known =
    match config.out with
    | Some path when config.resume && Sys.file_exists path ->
        let records, _torn = load path in
        let tbl = Hashtbl.create (List.length records) in
        List.iter (fun r -> Hashtbl.replace tbl (Run_record.key r) r) records;
        tbl
    | _ -> Hashtbl.create 0
  in
  let skipped = ref 0 in
  let cached, pending =
    List.partition_map
      (fun job ->
        match Hashtbl.find_opt known (job_key job) with
        | Some r ->
            incr skipped;
            Left (job_key job, r)
        | None -> Right job)
      jobs
  in
  let skipped = !skipped in
  let oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.out
  in
  Fun.protect
    ~finally:(fun () -> Option.iter close_out_noerr oc)
    (fun () ->
      let lock = Mutex.create () in
      let completed = ref skipped in
      let report () =
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () ->
            incr completed;
            match config.on_progress with
            | Some f -> ( try f { completed = !completed; total; skipped } with _ -> ())
            | None -> ())
      in
      let write record =
        match oc with
        | None -> ()
        | Some oc ->
            Mutex.lock lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock lock)
              (fun () ->
                output_string oc (Run_record.to_line record);
                output_char oc '\n';
                flush oc)
      in
      (match config.on_progress with
      | Some f when skipped > 0 -> (
          try f { completed = skipped; total; skipped } with _ -> ())
      | _ -> ());
      let thunks =
        Array.of_list
          (List.map
             (fun job () ->
               let t0 = Unix.gettimeofday () in
               let record =
                 match job.run ~budget:(job_budget config) ~certify:config.certify with
                 | run ->
                     Run_record.of_run ~benchmark:job.benchmark
                       ~wall_seconds:(Unix.gettimeofday () -. t0)
                       run
                 | exception e ->
                     Run_record.crashed ~benchmark:job.benchmark
                       ~strategy:job.strategy ~width:job.width
                       ~wall_seconds:(Unix.gettimeofday () -. t0)
                       (Printexc.to_string e)
               in
               write record;
               report ();
               record)
             pending)
      in
      let results = Pool.map ~jobs:config.jobs thunks in
      (* A worker can only yield Error if the results file write raised —
         surface that instead of fabricating a record. *)
      Array.iter
        (function Ok _ -> () | Error m -> raise (Sys_error m))
        results;
      let pending = Array.of_list pending in
      let fresh = Hashtbl.create (Array.length results) in
      Array.iteri
        (fun i r ->
          match r with
          | Ok record -> Hashtbl.replace fresh (job_key pending.(i)) record
          | Error _ -> ())
        results;
      let cached_tbl = Hashtbl.create (List.length cached) in
      List.iter (fun (k, r) -> Hashtbl.replace cached_tbl k r) cached;
      List.map
        (fun job ->
          let k = job_key job in
          match Hashtbl.find_opt cached_tbl k with
          | Some r -> r
          | None -> Hashtbl.find fresh k)
        jobs)

(* ---------- views ---------- *)

let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let cell_text (r : Run_record.t) =
  match r.Run_record.outcome with
  | Run_record.Timeout -> "T/O"
  | Run_record.Crashed _ -> "crash"
  | Run_record.Routable | Run_record.Unroutable ->
      C.Report.format_seconds (Run_record.total_seconds r)

let render_table records =
  let row_of (r : Run_record.t) =
    Printf.sprintf "%s (W=%d)" r.Run_record.benchmark r.Run_record.width
  in
  let rows = dedup (List.map row_of records) in
  let cols = dedup (List.map (fun r -> r.Run_record.strategy) records) in
  let tbl = Hashtbl.create (List.length records) in
  List.iter
    (fun r -> Hashtbl.replace tbl (row_of r, r.Run_record.strategy) r)
    records;
  C.Report.matrix ~corner:"Benchmark" ~rows ~cols
    ~cell:(fun ~row ~col ->
      match Hashtbl.find_opt tbl (row, col) with
      | Some r -> cell_text r
      | None -> "-")
    ()

let summary records =
  let count p = List.length (List.filter p records) in
  let base =
    Printf.sprintf
      "%d cells: %d routable, %d unroutable, %d timeout, %d crashed"
      (List.length records)
      (count (fun r -> r.Run_record.outcome = Run_record.Routable))
      (count (fun r -> r.Run_record.outcome = Run_record.Unroutable))
      (count (fun r -> r.Run_record.outcome = Run_record.Timeout))
      (count (fun r ->
           match r.Run_record.outcome with
           | Run_record.Crashed _ -> true
           | _ -> false))
  in
  let attempted = count (fun r -> r.Run_record.certified <> None) in
  if attempted = 0 then base
  else
    Printf.sprintf "%s, %d/%d certified" base
      (count (fun r -> r.Run_record.certified = Some true))
      attempted
