module Sat = Fpgasat_sat
module Obs = Fpgasat_obs
module C = Fpgasat_core

type outcome =
  | Routable
  | Unroutable
  | Timeout
  | Memout
  | Crashed of string

type t = {
  benchmark : string;
  strategy : string;
  width : int;
  outcome : outcome;
  timings : C.Flow.timings;
  wall_seconds : float;
  cnf_vars : int;
  cnf_clauses : int;
  stats : Sat.Stats.t;
  certified : bool option;
  telemetry : Obs.Telemetry.t option;
  attempts : int option;
  failure : string option;
  backtrace : string option;
  quarantined : bool;
}

let schema_version = "fpgasat.run/1"

let make_key ~benchmark ~strategy ~width =
  Printf.sprintf "%s|%s|%d" benchmark strategy width

let key r = make_key ~benchmark:r.benchmark ~strategy:r.strategy ~width:r.width

let outcome_name = function
  | Routable -> "routable"
  | Unroutable -> "unroutable"
  | Timeout -> "timeout"
  | Memout -> "memout"
  | Crashed _ -> "crashed"

let decisive r =
  match r.outcome with
  | Routable | Unroutable -> true
  | Timeout | Memout | Crashed _ -> false

let total_seconds r = C.Flow.total r.timings

(* [?strategy] overrides the name taken from the run: when a retry ladder
   answers a cell with a fallback preset, the record must still carry the
   cell's own strategy so its resume key stays stable. *)
let of_run ?strategy ?attempts ?failure ?(quarantined = false) ~benchmark
    ~wall_seconds (run : C.Flow.run) =
  {
    benchmark;
    strategy =
      (match strategy with
      | Some s -> s
      | None -> C.Strategy.name run.C.Flow.strategy);
    width = run.C.Flow.width;
    outcome =
      (match run.C.Flow.outcome with
      | C.Flow.Routable _ -> Routable
      | C.Flow.Unroutable -> Unroutable
      | C.Flow.Timeout -> Timeout
      | C.Flow.Memout -> Memout);
    timings = run.C.Flow.timings;
    wall_seconds;
    cnf_vars = run.C.Flow.cnf_vars;
    cnf_clauses = run.C.Flow.cnf_clauses;
    stats = run.C.Flow.solver_stats;
    certified = run.C.Flow.certified;
    telemetry = run.C.Flow.telemetry;
    attempts;
    failure;
    quarantined;
    backtrace = None;
  }

let crashed ?attempts ?failure ?backtrace ?(quarantined = false) ~benchmark
    ~strategy ~width ~wall_seconds msg =
  {
    benchmark;
    strategy;
    width;
    outcome = Crashed msg;
    timings = { C.Flow.to_graph = 0.; to_cnf = 0.; solving = 0. };
    wall_seconds;
    cnf_vars = 0;
    cnf_clauses = 0;
    stats = Sat.Stats.create ();
    certified = None;
    telemetry = None;
    attempts;
    failure;
    backtrace;
    quarantined;
  }

(* ---------- JSON ---------- *)

let to_json r =
  let crash =
    match r.outcome with Crashed m -> [ ("crash", Json.String m) ] | _ -> []
  in
  (* the key is absent (not null) when certification was not requested, so
     records from older sweeps and uncertified runs stay byte-identical *)
  let certified =
    match r.certified with
    | Some b -> [ ("certified", Json.Bool b) ]
    | None -> []
  in
  (* like "certified", the supervisor keys are absent unless set, so records
     from single-attempt sweeps stay byte-identical to older ones *)
  let attempts =
    match r.attempts with
    | Some n -> [ ("attempts", Json.Int n) ]
    | None -> []
  in
  let failure =
    match r.failure with
    | Some f -> [ ("failure", Json.String f) ]
    | None -> []
  in
  let backtrace =
    match r.backtrace with
    | Some b -> [ ("backtrace", Json.String b) ]
    | None -> []
  in
  let quarantined =
    if r.quarantined then [ ("quarantined", Json.Bool true) ] else []
  in
  (* optional like the others: absent unless the sweep asked for telemetry,
     so pre-telemetry consumers and byte-diff-based tooling see identical
     lines *)
  let telemetry =
    match r.telemetry with
    | Some t -> [ ("telemetry", Obs.Telemetry.to_json t) ]
    | None -> []
  in
  Json.Obj
    ([
       ("schema", Json.String schema_version);
       ("benchmark", Json.String r.benchmark);
       ("strategy", Json.String r.strategy);
       ("width", Json.Int r.width);
       ("outcome", Json.String (outcome_name r.outcome));
     ]
    @ crash @ certified @ attempts @ failure @ backtrace @ quarantined
    @ telemetry
    @ [
        ( "timings",
          Json.Obj
            [
              ("to_graph", Json.Float r.timings.C.Flow.to_graph);
              ("to_cnf", Json.Float r.timings.C.Flow.to_cnf);
              ("solving", Json.Float r.timings.C.Flow.solving);
            ] );
        ("wall_seconds", Json.Float r.wall_seconds);
        ( "cnf",
          Json.Obj
            [ ("vars", Json.Int r.cnf_vars); ("clauses", Json.Int r.cnf_clauses) ]
        );
        ( "solver",
          Json.Obj
            [
              ("decisions", Json.Int r.stats.Sat.Stats.decisions);
              ("propagations", Json.Int r.stats.Sat.Stats.propagations);
              ("conflicts", Json.Int r.stats.Sat.Stats.conflicts);
              ("restarts", Json.Int r.stats.Sat.Stats.restarts);
              ("learnt_clauses", Json.Int r.stats.Sat.Stats.learnt_clauses);
              ("learnt_literals", Json.Int r.stats.Sat.Stats.learnt_literals);
              ("deleted_clauses", Json.Int r.stats.Sat.Stats.deleted_clauses);
              ( "max_decision_level",
                Json.Int r.stats.Sat.Stats.max_decision_level );
            ] );
      ])

let of_json json =
  let ( let* ) = Result.bind in
  let get obj key =
    match Json.find obj key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing key %S" key)
  in
  let str obj key =
    let* v = get obj key in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "key %S is not a string" key)
  in
  let int obj key =
    let* v = get obj key in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "key %S is not an integer" key)
  in
  let num obj key =
    let* v = get obj key in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "key %S is not a number" key)
  in
  let* schema = str json "schema" in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema %S (want %S)" schema schema_version)
  else
    let* benchmark = str json "benchmark" in
    let* strategy = str json "strategy" in
    let* width = int json "width" in
    let* outcome_tag = str json "outcome" in
    let* outcome =
      match outcome_tag with
      | "routable" -> Ok Routable
      | "unroutable" -> Ok Unroutable
      | "timeout" -> Ok Timeout
      | "memout" -> Ok Memout
      | "crashed" ->
          let* msg = str json "crash" in
          Ok (Crashed msg)
      | other -> Error (Printf.sprintf "unknown outcome %S" other)
    in
    let* certified =
      match Json.find json "certified" with
      | None -> Ok None
      | Some (Json.Bool b) -> Ok (Some b)
      | Some _ -> Error "key \"certified\" is not a boolean"
    in
    let* attempts =
      match Json.find json "attempts" with
      | None -> Ok None
      | Some (Json.Int n) -> Ok (Some n)
      | Some _ -> Error "key \"attempts\" is not an integer"
    in
    let* failure =
      match Json.find json "failure" with
      | None -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error "key \"failure\" is not a string"
    in
    let* backtrace =
      match Json.find json "backtrace" with
      | None -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error "key \"backtrace\" is not a string"
    in
    let* quarantined =
      match Json.find json "quarantined" with
      | None -> Ok false
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error "key \"quarantined\" is not a boolean"
    in
    let* telemetry =
      match Json.find json "telemetry" with
      | None -> Ok None
      | Some t -> Result.map Option.some (Obs.Telemetry.of_json t)
    in
    let* timings = get json "timings" in
    let* to_graph = num timings "to_graph" in
    let* to_cnf = num timings "to_cnf" in
    let* solving = num timings "solving" in
    let* wall_seconds = num json "wall_seconds" in
    let* cnf = get json "cnf" in
    let* cnf_vars = int cnf "vars" in
    let* cnf_clauses = int cnf "clauses" in
    let* solver = get json "solver" in
    let* decisions = int solver "decisions" in
    let* propagations = int solver "propagations" in
    let* conflicts = int solver "conflicts" in
    let* restarts = int solver "restarts" in
    let* learnt_clauses = int solver "learnt_clauses" in
    let* learnt_literals = int solver "learnt_literals" in
    let* deleted_clauses = int solver "deleted_clauses" in
    let* max_decision_level = int solver "max_decision_level" in
    let stats = Sat.Stats.create () in
    stats.Sat.Stats.decisions <- decisions;
    stats.Sat.Stats.propagations <- propagations;
    stats.Sat.Stats.conflicts <- conflicts;
    stats.Sat.Stats.restarts <- restarts;
    stats.Sat.Stats.learnt_clauses <- learnt_clauses;
    stats.Sat.Stats.learnt_literals <- learnt_literals;
    stats.Sat.Stats.deleted_clauses <- deleted_clauses;
    stats.Sat.Stats.max_decision_level <- max_decision_level;
    Ok
      {
        benchmark;
        strategy;
        width;
        outcome;
        timings = { C.Flow.to_graph; to_cnf; solving };
        wall_seconds;
        cnf_vars;
        cnf_clauses;
        stats;
        certified;
        telemetry;
        attempts;
        failure;
        backtrace;
        quarantined;
      }

let to_line r = Json.to_string (to_json r)

let of_line line =
  match Json.of_string (String.trim line) with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok json -> of_json json

let equal a b =
  let feq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  let stats_eq (x : Sat.Stats.t) (y : Sat.Stats.t) =
    x.Sat.Stats.decisions = y.Sat.Stats.decisions
    && x.Sat.Stats.propagations = y.Sat.Stats.propagations
    && x.Sat.Stats.conflicts = y.Sat.Stats.conflicts
    && x.Sat.Stats.restarts = y.Sat.Stats.restarts
    && x.Sat.Stats.learnt_clauses = y.Sat.Stats.learnt_clauses
    && x.Sat.Stats.learnt_literals = y.Sat.Stats.learnt_literals
    && x.Sat.Stats.deleted_clauses = y.Sat.Stats.deleted_clauses
    && x.Sat.Stats.max_decision_level = y.Sat.Stats.max_decision_level
  in
  String.equal a.benchmark b.benchmark
  && String.equal a.strategy b.strategy
  && a.width = b.width
  && (match (a.outcome, b.outcome) with
     | Routable, Routable
     | Unroutable, Unroutable
     | Timeout, Timeout
     | Memout, Memout ->
         true
     | Crashed x, Crashed y -> String.equal x y
     | (Routable | Unroutable | Timeout | Memout | Crashed _), _ -> false)
  && feq a.timings.C.Flow.to_graph b.timings.C.Flow.to_graph
  && feq a.timings.C.Flow.to_cnf b.timings.C.Flow.to_cnf
  && feq a.timings.C.Flow.solving b.timings.C.Flow.solving
  && feq a.wall_seconds b.wall_seconds
  && a.cnf_vars = b.cnf_vars
  && a.cnf_clauses = b.cnf_clauses
  && stats_eq a.stats b.stats
  && Option.equal Bool.equal a.certified b.certified
  && Option.equal Obs.Telemetry.equal a.telemetry b.telemetry
  && Option.equal Int.equal a.attempts b.attempts
  && Option.equal String.equal a.failure b.failure
  && Option.equal String.equal a.backtrace b.backtrace
  && Bool.equal a.quarantined b.quarantined
