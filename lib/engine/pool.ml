let default_jobs () = Domain.recommended_domain_count ()

type error = {
  exn_class : string;
  message : string;
  backtrace : string option;
}

let error_of_exn ?backtrace e =
  {
    exn_class = Printexc.exn_slot_name e;
    message = Printexc.to_string e;
    backtrace;
  }

let not_run = { exn_class = "Pool.Not_run"; message = "not run"; backtrace = None }

let map ?jobs ?(record_backtrace = false) ?on_done thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let workers = min jobs n in
    let results = Array.make n (Error not_run) in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let lock = Mutex.create () in
    let report () =
      match on_done with
      | None -> ()
      | Some f ->
          let c = 1 + Atomic.fetch_and_add completed 1 in
          Mutex.lock lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f c)
    in
    (* [record_backtrace] flips a per-domain runtime flag, so each worker
       sets it for itself; restoring is unnecessary (workers are fresh
       domains) except in the jobs=1 in-caller path, which restores it. *)
    let worker () =
      if record_backtrace then Printexc.record_backtrace true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (thunks.(i) ())
            with e ->
              let backtrace =
                if record_backtrace then
                  (* capture before any further allocation disturbs it *)
                  match Printexc.get_backtrace () with
                  | "" -> None
                  | bt -> Some bt
                else None
              in
              Error (error_of_exn ?backtrace e)
          in
          results.(i) <- r;
          report ();
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then begin
      let saved = Printexc.backtrace_status () in
      Fun.protect
        ~finally:(fun () -> Printexc.record_backtrace saved)
        worker
    end
    else begin
      let domains = List.init workers (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains
    end;
    results
  end
