let default_jobs () = Domain.recommended_domain_count ()

type error = {
  exn_class : string;
  message : string;
  backtrace : string option;
}

let error_of_exn ?backtrace e =
  {
    exn_class = Printexc.exn_slot_name e;
    message = Printexc.to_string e;
    backtrace;
  }

let not_run = { exn_class = "Pool.Not_run"; message = "not run"; backtrace = None }

let map ?jobs ?(record_backtrace = false) ?on_done thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let workers = min jobs n in
    let results = Array.make n (Error not_run) in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let lock = Mutex.create () in
    let report () =
      match on_done with
      | None -> ()
      | Some f ->
          let c = 1 + Atomic.fetch_and_add completed 1 in
          Mutex.lock lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f c)
    in
    (* [record_backtrace] flips a per-domain runtime flag, so each worker
       sets it for itself; restoring is unnecessary (workers are fresh
       domains) except in the jobs=1 in-caller path, which restores it. *)
    let worker () =
      if record_backtrace then Printexc.record_backtrace true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (thunks.(i) ())
            with e ->
              let backtrace =
                if record_backtrace then
                  (* capture before any further allocation disturbs it *)
                  match Printexc.get_backtrace () with
                  | "" -> None
                  | bt -> Some bt
                else None
              in
              Error (error_of_exn ?backtrace e)
          in
          results.(i) <- r;
          report ();
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then begin
      let saved = Printexc.backtrace_status () in
      Fun.protect
        ~finally:(fun () -> Printexc.record_backtrace saved)
        worker
    end
    else begin
      let domains = List.init workers (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains
    end;
    results
  end

module Persistent = struct
  exception Worker_killed

  let worker_killed_class = Printexc.exn_slot_name Worker_killed

  type 'a ticket = {
    t_mutex : Mutex.t;
    t_cond : Condition.t;
    mutable t_result : ('a, error) result option;
  }

  let fill ticket r =
    Mutex.lock ticket.t_mutex;
    ticket.t_result <- Some r;
    Condition.broadcast ticket.t_cond;
    Mutex.unlock ticket.t_mutex

  let wait ticket =
    Mutex.lock ticket.t_mutex;
    while ticket.t_result = None do
      Condition.wait ticket.t_cond ticket.t_mutex
    done;
    let r = Option.get ticket.t_result in
    Mutex.unlock ticket.t_mutex;
    r

  let peek ticket =
    Mutex.lock ticket.t_mutex;
    let r = ticket.t_result in
    Mutex.unlock ticket.t_mutex;
    r

  type t = {
    mutex : Mutex.t;
    not_empty : Condition.t;
    queue : (unit -> unit) Queue.t;
    capacity : int;
    restart_budget : int;
    restart_backoff : float;
    mutable stopping : bool;
    mutable in_flight : int;
    mutable live : int;
    mutable deaths : int;
    mutable respawns_done : int;
    mutable domains : unit Domain.t list;
  }

  type 'a submission = Accepted of 'a ticket | Rejected | Stopped

  (* The normal pull loop. [job ()] only raises when the job deliberately
     kills its worker domain (the {!Worker_killed} channel: the submit
     wrapper has already filled the ticket before re-raising); the raise
     propagates to {!worker}'s death handler below. *)
  let worker_loop pool =
    let rec loop () =
      Mutex.lock pool.mutex;
      while Queue.is_empty pool.queue && not pool.stopping do
        Condition.wait pool.not_empty pool.mutex
      done;
      (* drain semantics: stopping only ends the loop once the backlog is
         empty, so every accepted ticket is eventually filled *)
      if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
      else begin
        let job = Queue.pop pool.queue in
        pool.in_flight <- pool.in_flight + 1;
        Mutex.unlock pool.mutex;
        (match job () with
        | () -> ()
        | exception e ->
            Mutex.lock pool.mutex;
            pool.in_flight <- pool.in_flight - 1;
            Mutex.unlock pool.mutex;
            raise e);
        Mutex.lock pool.mutex;
        pool.in_flight <- pool.in_flight - 1;
        Mutex.unlock pool.mutex;
        loop ()
      end
    in
    loop ()

  (* Top of every worker domain: run the pull loop; on a worker-killing
     job, record the death and respawn a replacement under the bounded
     restart budget, with exponential backoff (base doubles per respawn,
     capped at 1 s) so a stream of poisoned requests cannot turn the pool
     into a domain-spawning hot loop. The dying domain itself spawns its
     replacement — no supervisor thread to crash — and always returns
     normally so {!shutdown}'s [Domain.join] never re-raises. *)
  let rec worker pool () =
    match worker_loop pool with
    | () -> ()
    | exception _ ->
        Mutex.lock pool.mutex;
        pool.deaths <- pool.deaths + 1;
        let respawn =
          (not pool.stopping) && pool.respawns_done < pool.restart_budget
        in
        if respawn then begin
          pool.respawns_done <- pool.respawns_done + 1;
          let delay =
            Float.min 1.0
              (pool.restart_backoff
              *. (2. ** float_of_int (pool.respawns_done - 1)))
          in
          let d =
            Domain.spawn (fun () ->
                if delay > 0. then Unix.sleepf delay;
                worker pool ())
          in
          pool.domains <- d :: pool.domains
        end
        else pool.live <- pool.live - 1;
        Mutex.unlock pool.mutex

  let create ?workers ?(queue_capacity = 64) ?(restart_budget = 8)
      ?(restart_backoff = 0.05) () =
    let workers =
      match workers with Some w -> max 1 w | None -> default_jobs ()
    in
    let pool =
      {
        mutex = Mutex.create ();
        not_empty = Condition.create ();
        queue = Queue.create ();
        capacity = max 1 queue_capacity;
        restart_budget = max 0 restart_budget;
        restart_backoff = Float.max 0. restart_backoff;
        stopping = false;
        in_flight = 0;
        live = workers;
        deaths = 0;
        respawns_done = 0;
        domains = [];
      }
    in
    pool.domains <- List.init workers (fun _ -> Domain.spawn (worker pool));
    pool

  let workers pool =
    Mutex.lock pool.mutex;
    let n = pool.live in
    Mutex.unlock pool.mutex;
    n

  let deaths pool =
    Mutex.lock pool.mutex;
    let n = pool.deaths in
    Mutex.unlock pool.mutex;
    n

  let respawns pool =
    Mutex.lock pool.mutex;
    let n = pool.respawns_done in
    Mutex.unlock pool.mutex;
    n

  let restart_budget pool = pool.restart_budget

  let submit pool thunk =
    Mutex.lock pool.mutex;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      Stopped
    end
    else if Queue.length pool.queue >= pool.capacity then begin
      Mutex.unlock pool.mutex;
      Rejected
    end
    else begin
      let ticket =
        { t_mutex = Mutex.create (); t_cond = Condition.create (); t_result = None }
      in
      Queue.push
        (fun () ->
          (* the ticket is filled on every path — including the
             worker-killing one, where the waiter must not hang on a dead
             domain — before the kill escapes to the worker loop *)
          match thunk () with
          | v -> fill ticket (Ok v)
          | exception Worker_killed ->
              fill ticket (Error (error_of_exn Worker_killed));
              raise Worker_killed
          | exception e -> fill ticket (Error (error_of_exn e)))
        pool.queue;
      Condition.signal pool.not_empty;
      Mutex.unlock pool.mutex;
      Accepted ticket
    end

  let run pool thunk =
    match submit pool thunk with
    | Accepted ticket -> Some (wait ticket)
    | Rejected | Stopped -> None

  let backlog pool =
    Mutex.lock pool.mutex;
    let queued = Queue.length pool.queue and running = pool.in_flight in
    Mutex.unlock pool.mutex;
    (queued, running)

  let shutdown pool =
    Mutex.lock pool.mutex;
    let first = not pool.stopping in
    pool.stopping <- true;
    Condition.broadcast pool.not_empty;
    (* once [stopping] is set no death handler appends a replacement, so
       this snapshot is the complete set of domains ever spawned (dead ones
       join instantly) *)
    let domains = pool.domains in
    Mutex.unlock pool.mutex;
    if first then begin
      List.iter Domain.join domains;
      Mutex.lock pool.mutex;
      pool.domains <- [];
      pool.live <- 0;
      Mutex.unlock pool.mutex
    end
end
