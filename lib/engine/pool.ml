let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs ?on_done thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let jobs =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    let workers = min jobs n in
    let results = Array.make n (Error "not run") in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let lock = Mutex.create () in
    let report () =
      match on_done with
      | None -> ()
      | Some f ->
          let c = 1 + Atomic.fetch_and_add completed 1 in
          Mutex.lock lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f c)
    in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            try Ok (thunks.(i) ())
            with e -> Error (Printexc.to_string e)
          in
          results.(i) <- r;
          report ();
          loop ()
        end
      in
      loop ()
    in
    if workers = 1 then worker ()
    else begin
      let domains = List.init workers (fun _ -> Domain.spawn worker) in
      List.iter Domain.join domains
    end;
    results
  end
