(** Deterministic fault injection for the sweep supervisor.

    The supervisor's promises — every fault becomes exactly one classified
    record, a sweep never aborts, resume heals a kill — are only worth
    anything if they are tested. This module wraps a job queue so selected
    cells misbehave in controlled, replayable ways, all behind the ordinary
    {!Sweep.job} interface: the supervisor under test cannot tell a chaos
    run from a real one.

    A {!plan} is a pure function of [(seed, cells)]: the same seed always
    assigns the same fault kinds to the same cell indices, so CI can assert
    exact classified counts and a failure reproduces anywhere. *)

type fault =
  | Raise_at_conflict of int
      (** Crash the cell after the solver's [n]-th budget poll (the hook
          trips, the wrapper re-raises {!Injected} once the solver unwinds)
          — a deterministic mid-solve crash. Cells that finish before [n]
          conflicts never trip it. *)
  | Spurious_interrupt
      (** The interrupt hook reports [true] immediately: the cell ends
          [Timeout] without its budget being exhausted. *)
  | Hook_raise
      (** The interrupt hook raises. The solver must treat this as
          interrupt-fired (ending [Timeout]) — the satellite contract on
          {!Fpgasat_sat.Solver.budget} — not as a crash. *)
  | Alloc_burst of int
      (** Holds the given number of megabytes of live ballast across the
          attempt, so a sweep with [max_memory_mb] set sees the cell
          [Memout] cooperatively. *)
  | Torn_tail
      (** Truncates the results file by a few bytes before the cell runs —
          the torn final JSONL line a [kill -9] leaves. Meaningful under
          [jobs = 1]; resume must drop exactly the torn record. *)
  | Corrupt_drat
      (** Forces certification on and drops the final empty-clause step
          from an UNSAT proof; the checker must refuse it
          ([certified = Some false]) rather than trust the answer. *)

exception Injected of string
(** What {!Raise_at_conflict} and {!Hook_raise} raise; its crash
    classification is ["crash:Fpgasat_engine__Chaos.Injected"]. *)

val fault_name : fault -> string
(** Stable kind tag: ["raise_at_conflict"], ["spurious_interrupt"],
    ["hook_raise"], ["alloc_burst"], ["torn_tail"], ["corrupt_drat"]. *)

val all_kinds : fault array
(** One representative of each kind, with default parameters. *)

type plan = { seed : int; faults : fault option array }
(** [faults.(i)] is the fault injected into the [i]-th job of the queue
    ([None] = healthy cell). *)

val make : seed:int -> cells:int -> plan
(** Deterministic plan: each of the six kinds is assigned to one
    seed-chosen cell first (full taxonomy coverage even in small plans),
    then every remaining cell is faulted with probability ~1/2 with a
    seed-chosen kind. *)

val fault : plan -> int -> fault option
(** [fault plan i] — [None] when [i] is outside the plan. *)

val described : plan -> (int * string option) list
(** [(index, fault-kind-name)] per cell, for logging and assertions. *)

val inject : ?out:string -> plan -> Sweep.job list -> Sweep.job list
(** Wraps the [i]-th job with [faults.(i)]. [out] must be the sweep's
    results path when the plan may contain {!Torn_tail} (the fault
    truncates that file). Jobs beyond the plan's length are untouched. *)

(** Fault kinds for the {e serving} layer (PR 7's solve server), plus the
    supervisor-invariant checker its chaos harness asserts with. The
    server faults are driven differently from the sweep faults: rather
    than wrapping a job queue, the harness sends them as [fault] fields on
    protocol requests (gated behind [serve --test-ops]) or inflicts them
    from outside (a [kill -9], a client that dribbles bytes). *)
module Server : sig
  type fault =
    | Worker_kill
        (** The request raises
            {!Pool.Persistent.Worker_killed} on its worker: the domain
            dies mid-request. The pool must fill the ticket, respawn
            within its restart budget, and repeated kills on one request
            identity must quarantine it. *)
    | Torn_journal
        (** Chop bytes off the cache journal's tail — the torn line a
            kill mid-append leaves. Replay must skip exactly the
            fragment. *)
    | Slow_client
        (** A client that writes its request a few bytes at a time (and
            reads slowly): per-connection threads must keep other clients
            unaffected and the write timeout must eventually reclaim the
            connection. Inflicted client-side by the harness. *)
    | Kill_server
        (** [SIGKILL] mid-request: no drain, no unlink. On restart the
            server must reclaim the stale socket, replay the journal, and
            serve every previously-decisive answer byte-identically. *)

  val fault_name : fault -> string
  (** ["worker_kill"], ["torn_journal"], ["slow_client"],
      ["kill_server"] — the wire form carried by a request's [fault]
      field. *)

  val of_name : string -> fault option

  val all : fault array

  val plan : seed:int -> n:int -> fault array
  (** Deterministic fault sequence: each kind once, then seed-chosen —
      the same replayability contract as {!make}. *)

  val tear_journal : ?bytes:int -> string -> unit
  (** Truncate the file's tail by [bytes] (default 5) — the
      {!Torn_journal} implementation; a no-op on a missing or
      shorter-than-[bytes] file. *)

  val check_invariants :
    expected_workers:int ->
    stats:Json.t ->
    pairs:(string * string) list ->
    (unit, string) result
  (** Assert the crash-only contract after a fault: [stats] (the server's
      stats payload) must show [pool.workers = expected_workers], and
      every [(before, after)] pair of serialized run payloads must be
      byte-identical. Returns the first violation. *)
end
