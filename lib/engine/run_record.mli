(** The stable machine-readable schema for one experiment cell.

    One record = one [Flow.submit] run (or a crash while attempting
    it) on one [benchmark × strategy × width] cell. Records serialise to a
    single JSON line and parse back loss-free, which makes files of them
    (JSONL) the durable form of every sweep: text tables are pure views
    over parsed records, and a sweep restarted with [--resume] skips the
    cells whose records are already on disk.

    Schema (version [fpgasat.run/1]; unknown extra keys are ignored on
    parse so the schema can grow backward-compatibly):

    {v
    {"schema":"fpgasat.run/1","benchmark":"alu2",
     "strategy":"ITE-linear-2+muldirect/s1@siege","width":4,
     "outcome":"routable|unroutable|timeout|memout|crashed","crash":"msg?",
     "certified":true?,"attempts":n?,"failure":"tag?","backtrace":"bt?",
     "quarantined":true?,
     "telemetry":{"propagations_per_sec":f,"conflicts_per_sec":f,
                  "lbd_hist":[n,...],"words_allocated":n,
                  "peak_heap_words":n,"solve_seconds":f}?,
     "timings":{"to_graph":s,"to_cnf":s,"solving":s},"wall_seconds":s,
     "cnf":{"vars":n,"clauses":n},
     "solver":{"decisions":n,"propagations":n,"conflicts":n,"restarts":n,
               "learnt_clauses":n,"learnt_literals":n,"deleted_clauses":n,
               "max_decision_level":n}}
    v}

    The ["crash"] key is present exactly when [outcome] is ["crashed"], and
    ["certified"] exactly when the run was certified (sweeps with
    [--certify]). The supervisor keys are likewise optional: ["attempts"]
    appears when the sweep ran with retries enabled, ["failure"] carries the
    {!Failure.name} classification of a non-decisive cell, ["backtrace"] the
    opt-in crash backtrace, and ["quarantined"] is present (as [true]) only
    on cells the supervisor gave up on. All are omitted otherwise, so
    records from older sweeps parse unchanged and single-attempt sweeps emit
    byte-identical lines. *)

type outcome =
  | Routable
  | Unroutable
  | Timeout
  | Memout
      (** The solver crossed its [max_memory_mb] ceiling and stopped
          cooperatively. *)
  | Crashed of string
      (** The cell's thunk raised; the payload is the exception text. A
          crashed cell never aborts the sweep it belongs to. *)

type t = {
  benchmark : string;
  strategy : string;  (** {!Fpgasat_core.Strategy.name} form. *)
  width : int;
  outcome : outcome;
  timings : Fpgasat_core.Flow.timings;
  wall_seconds : float;
  cnf_vars : int;
  cnf_clauses : int;
  stats : Fpgasat_sat.Stats.t;
  certified : bool option;
      (** Mirrors {!Fpgasat_core.Flow.run.certified}: [Some true] iff the
          answer carried an independently checked certificate. *)
  telemetry : Fpgasat_obs.Telemetry.t option;
      (** Mirrors {!Fpgasat_core.Flow.run.telemetry}: derived per-solve
          rates, present only on sweeps run with telemetry enabled. Like
          the other optional keys it is absent (not null) otherwise, so
          pre-telemetry records parse unchanged and sweeps without it emit
          byte-identical lines. *)
  attempts : int option;
      (** How many attempts the supervisor spent on this cell; [None] on
          single-attempt sweeps (the historical behaviour). *)
  failure : string option;
      (** {!Failure.name} classification (["timeout"], ["memout"],
          ["crash:<exn-class>"]) of the final attempt when it was not
          decisive; [None] on decisive cells. *)
  backtrace : string option;
      (** Raw backtrace of a crash, captured only when the sweep opted in
          ([Sweep.config.capture_backtrace]). *)
  quarantined : bool;
      (** The cell failed every allowed attempt; resume skips it instead of
          crash-looping. *)
}

val schema_version : string
(** ["fpgasat.run/1"]. *)

val make_key : benchmark:string -> strategy:string -> width:int -> string
val key : t -> string
(** The cell identity ["benchmark|strategy|width"] — what resume
    deduplicates on. *)

val of_run :
  ?strategy:string ->
  ?attempts:int ->
  ?failure:string ->
  ?quarantined:bool ->
  benchmark:string ->
  wall_seconds:float ->
  Fpgasat_core.Flow.run ->
  t
(** [strategy] overrides the name taken from the run — required for key
    stability when a fallback preset answered the cell (the record must keep
    the cell's own strategy or resume would re-run it). [quarantined]
    defaults to [false]. *)

val crashed :
  ?attempts:int ->
  ?failure:string ->
  ?backtrace:string ->
  ?quarantined:bool ->
  benchmark:string ->
  strategy:string ->
  width:int ->
  wall_seconds:float ->
  string ->
  t

val outcome_name : outcome -> string
val decisive : t -> bool
(** Routable or Unroutable. *)

val total_seconds : t -> float
(** Paper-style total CPU time: graph + CNF + solving. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val to_line : t -> string
(** One JSON line, without the trailing newline. *)

val of_line : string -> (t, string) result
val equal : t -> t -> bool
(** Structural; floats compared bit-exactly (round-trip property). *)
