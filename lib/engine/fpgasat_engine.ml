(** The experiment engine: machine-scale execution of benchmark sweeps.

    {!Pool} is a bounded pool of OCaml 5 domains; {!Sweep} runs work queues
    of [benchmark × strategy × width] cells over it with per-job budgets,
    crash isolation, retry/quarantine supervision, streamed JSONL results
    and resume; {!Run_record} is the stable one-line-JSON schema those
    results use; {!Failure} is the taxonomy the supervisor classifies
    non-decisive cells with; {!Dims} sweeps grids of generated instances
    over the size axes and fits per-strategy scaling exponents from the
    records ({!Fpgasat_obs.Fit}); {!Chaos} injects deterministic faults into job
    queues to test the supervisor itself; {!Portfolio} races strategies on
    the same pool with first-answer-wins cancellation; {!Lockfile} is the
    advisory single-writer pid lock shared by the sweep's [--out] file and
    the solve server's cache journal; {!Json} re-exports the
    dependency-free JSON substrate, which now lives in
    [Fpgasat_obs.Json]. *)

module Json = Json
module Lockfile = Lockfile
module Pool = Pool
module Run_record = Run_record
module Failure = Failure
module Sweep = Sweep
module Dims = Dims
module Chaos = Chaos
module Portfolio = Portfolio
