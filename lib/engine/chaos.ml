module Sat = Fpgasat_sat
module C = Fpgasat_core

type fault =
  | Raise_at_conflict of int
  | Spurious_interrupt
  | Hook_raise
  | Alloc_burst of int
  | Torn_tail
  | Corrupt_drat

exception Injected of string

let fault_name = function
  | Raise_at_conflict _ -> "raise_at_conflict"
  | Spurious_interrupt -> "spurious_interrupt"
  | Hook_raise -> "hook_raise"
  | Alloc_burst _ -> "alloc_burst"
  | Torn_tail -> "torn_tail"
  | Corrupt_drat -> "corrupt_drat"

let all_kinds =
  [|
    Raise_at_conflict 3;
    Spurious_interrupt;
    Hook_raise;
    Alloc_burst 300;
    Torn_tail;
    Corrupt_drat;
  |]

type plan = { seed : int; faults : fault option array }

(* splitmix64 — a seeded, allocation-free generator so a plan is a pure
   function of (seed, cells): the same chaos run is replayable bit-for-bit
   on any machine, which is what lets CI assert exact classified counts. *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_below state n =
  Int64.to_int (Int64.rem (Int64.logand (splitmix state) Int64.max_int) (Int64.of_int n))

let make ~seed ~cells =
  if cells < 0 then invalid_arg "Chaos.make: cells < 0";
  let state = ref (Int64.of_int seed) in
  let faults = Array.make cells None in
  (* every kind appears once before randomness takes over, so even a small
     plan exercises the full taxonomy *)
  let kinds = Array.length all_kinds in
  let slots = Array.init cells (fun i -> i) in
  for i = cells - 1 downto 1 do
    let j = rand_below state (i + 1) in
    let t = slots.(i) in
    slots.(i) <- slots.(j);
    slots.(j) <- t
  done;
  Array.iteri
    (fun rank slot ->
      if rank < kinds && rank < cells then
        faults.(slot) <- Some all_kinds.(rank)
      else if rand_below state 2 = 0 then
        faults.(slot) <- Some all_kinds.(rand_below state kinds))
    slots;
  { seed; faults }

let fault plan i =
  if i < 0 || i >= Array.length plan.faults then None else plan.faults.(i)

let described plan =
  Array.to_list plan.faults
  |> List.mapi (fun i f -> (i, Option.map fault_name f))

(* ---------- budget interposition ---------- *)

let with_interrupt hook (budget : Sat.Solver.budget) =
  let chained =
    match budget.Sat.Solver.interrupt with
    | None -> hook
    | Some prev -> fun () -> hook () || prev ()
  in
  Sat.Solver.with_poll_interval 1
    (Sat.Solver.interruptible chained budget)

(* ---------- fault implementations ---------- *)

(* A crash "at conflict n": the hook trips after n polls and the wrapper
   re-raises once the solver has unwound — from the supervisor's point of
   view the cell's code raised mid-solve, which is exactly the crash path
   under test. Raising from inside the hook would not do: the solver
   deliberately treats that as interrupt-fired (see Solver.budget). *)
let raise_at_conflict n job_run ~budget ~certify ~telemetry ~fallback =
  let polls = ref 0 in
  let fired = ref false in
  let hook () =
    incr polls;
    if !polls >= n then begin
      fired := true;
      true
    end
    else false
  in
  let run = job_run ~budget:(with_interrupt hook budget) ~certify ~telemetry ~fallback in
  if !fired then
    raise (Injected (Printf.sprintf "chaos: raised at conflict %d" n));
  run

let spurious_interrupt job_run ~budget ~certify ~telemetry ~fallback =
  job_run ~budget:(with_interrupt (fun () -> true) budget) ~certify ~telemetry ~fallback

let hook_raise job_run ~budget ~certify ~telemetry ~fallback =
  let hook () = raise (Injected "chaos: interrupt hook raised") in
  job_run ~budget:(with_interrupt hook budget) ~certify ~telemetry ~fallback

(* Holds [mb] megabytes of live ballast across the attempt so the solver's
   heap probe sees a swollen process — the deterministic stand-in for an
   exploding clause database. *)
let alloc_burst mb job_run ~budget ~certify ~telemetry ~fallback =
  let words = mb * (1024 * 1024 / (Sys.word_size / 8)) in
  let ballast = Array.make words 0 in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.opaque_identity ballast.(0)))
    (fun () -> job_run ~budget ~certify ~telemetry ~fallback)

(* Chops a few bytes off the results file before the cell runs — the torn
   final line a kill leaves behind. Only meaningful under jobs = 1, where
   the file's tail is a complete record of an earlier cell; resume must
   ignore the torn line and re-run only that cell. *)
let torn_tail out job_run ~budget ~certify ~telemetry ~fallback =
  (match out with
  | Some path when Sys.file_exists path ->
      let len = (Unix.stat path).Unix.st_size in
      if len > 5 then
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> Unix.ftruncate fd (len - 5))
  | _ -> ());
  job_run ~budget ~certify ~telemetry ~fallback

(* Drops the final (empty-clause) addition from an UNSAT proof, the way a
   torn proof file would: certification must notice and report
   [certified = Some false] rather than trusting the answer. *)
let corrupt_proof p =
  let corrupted = Sat.Proof.create () in
  let steps = Sat.Proof.steps p in
  let n = List.length steps in
  List.iteri
    (fun i step ->
      match step with
      | Sat.Proof.Add lits when i = n - 1 && lits = [] -> ()
      | Sat.Proof.Add lits -> Sat.Proof.add corrupted lits
      | Sat.Proof.Delete lits -> Sat.Proof.delete corrupted lits)
    steps;
  corrupted

let corrupt_drat job_run ~budget ~certify:_ ~telemetry ~fallback =
  let run = job_run ~budget ~certify:true ~telemetry ~fallback in
  match (run.C.Flow.outcome, run.C.Flow.proof) with
  | C.Flow.Unroutable, Some p when Sat.Proof.ends_with_empty p ->
      let corrupted = corrupt_proof p in
      {
        run with
        C.Flow.proof = Some corrupted;
        certified = Some (Sat.Proof.ends_with_empty corrupted);
      }
  | _ -> run

(* ---------- injection ---------- *)

let wrap ?out fault (job : Sweep.job) =
  let run = job.Sweep.run in
  let run =
    match fault with
    | Raise_at_conflict n -> raise_at_conflict n run
    | Spurious_interrupt -> spurious_interrupt run
    | Hook_raise -> hook_raise run
    | Alloc_burst mb -> alloc_burst mb run
    | Torn_tail -> torn_tail out run
    | Corrupt_drat -> corrupt_drat run
  in
  { job with Sweep.run }

let inject ?out plan jobs =
  List.mapi
    (fun i job ->
      match fault plan i with None -> job | Some f -> wrap ?out f job)
    jobs

(* ---------- server faults ---------- *)

module Server = struct
  type fault = Worker_kill | Torn_journal | Slow_client | Kill_server

  let fault_name = function
    | Worker_kill -> "worker_kill"
    | Torn_journal -> "torn_journal"
    | Slow_client -> "slow_client"
    | Kill_server -> "kill_server"

  let of_name = function
    | "worker_kill" -> Some Worker_kill
    | "torn_journal" -> Some Torn_journal
    | "slow_client" -> Some Slow_client
    | "kill_server" -> Some Kill_server
    | _ -> None

  let all = [| Worker_kill; Torn_journal; Slow_client; Kill_server |]

  (* Same discipline as the sweep plans: a pure function of (seed, n), so
     a CI chaos run replays bit-for-bit. Every kind appears before
     randomness takes over. *)
  let plan ~seed ~n =
    if n < 0 then invalid_arg "Chaos.Server.plan: n < 0";
    let state = ref (Int64.of_int seed) in
    Array.init n (fun i ->
        if i < Array.length all then all.(i)
        else all.(rand_below state (Array.length all)))

  (* Truncate [bytes] off the journal's tail — the torn final line a kill
     mid-append leaves behind. The next attach must skip the fragment, not
     crash on it. *)
  let tear_journal ?(bytes = 5) path =
    match (Unix.stat path).Unix.st_size with
    | exception Unix.Unix_error _ -> ()
    | len ->
        if len > bytes then begin
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () -> Unix.ftruncate fd (len - bytes))
        end

  (* The supervisor invariants a restarted (or worker-killed) server must
     uphold: the worker pool back at its configured size, and every
     answer that was decisive before the fault replayed byte-identically
     after it. [pairs] are (before, after) serialized run payloads. *)
  let check_invariants ~expected_workers ~stats ~pairs =
    let pool_workers =
      match Json.find stats "pool" with
      | Some pool -> (
          match Json.find pool "workers" with
          | Some (Json.Int n) -> Some n
          | _ -> None)
      | None -> None
    in
    match pool_workers with
    | None -> Error "server stats carry no pool.workers gauge"
    | Some n when n <> expected_workers ->
        Error
          (Printf.sprintf "pool not restored: %d workers live, %d configured"
             n expected_workers)
    | Some _ -> (
        let rec check i = function
          | [] -> Ok ()
          | (before, after) :: rest ->
              if String.equal before after then check (i + 1) rest
              else
                Error
                  (Printf.sprintf
                     "cached answer %d not replayed byte-identically:\n\
                      before: %s\n\
                      after:  %s"
                     i before after)
        in
        check 0 pairs)
end
