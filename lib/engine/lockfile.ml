(* One lock file per protected path, holding the owner's pid. O_EXCL makes
   creation the atomic acquire; liveness of the recorded pid distinguishes a
   concurrent writer (fail fast — interleaved appends would tear each
   other's JSON lines) from a stale file left by a kill (silently reclaimed,
   so kill + restart keeps working unattended). This intentionally also
   locks out a second writer in the same process, which fcntl-style locks
   cannot do. *)

let lock_path out = out ^ ".lock"

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true

let acquire path =
  let lock = lock_path path in
  let rec attempt tries =
    match
      Unix.openfile lock [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644
    with
    | fd ->
        let pid = string_of_int (Unix.getpid ()) in
        ignore (Unix.write_substring fd pid 0 (String.length pid));
        Unix.close fd
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
        let holder =
          try
            int_of_string_opt
              (String.trim
                 (In_channel.with_open_text lock In_channel.input_all))
          with Sys_error _ -> None
        in
        let stale =
          match holder with None -> true | Some p -> not (pid_alive p)
        in
        if stale && tries > 0 then begin
          (try Sys.remove lock with Sys_error _ -> ());
          attempt (tries - 1)
        end
        else
          raise
            (Sys_error
               (Printf.sprintf
                  "%s: file is locked by %s; two writers appending to the \
                   same path would corrupt it"
                  lock
                  (match holder with
                  | Some p -> Printf.sprintf "running process %d" p
                  | None -> "another writer")))
  in
  attempt 3

let release path =
  try Sys.remove (lock_path path) with Sys_error _ -> ()

let with_lock path f =
  acquire path;
  Fun.protect ~finally:(fun () -> release path) f
