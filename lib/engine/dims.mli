(** Dimensional benchmarking: grids of generated instances over the three
    size axes, driven through {!Sweep}, analysed into fitted scaling laws.

    {!Fpgasat_fpga.Generator} supplies the axes (array size × net count ×
    channel width) and {!Fpgasat_obs.Fit} the statistics; this module is
    the glue the ROADMAP's "dimensional benchmarking" item asks for:

    - a {!grid} is a base parameter point plus per-dimension value lists;
      its cells are the cartesian product, each a deterministic generated
      instance whose name encodes its coordinates (so sweep records are
      self-describing and [--resume] Just Works);
    - {!jobs} turns a grid × strategy list into ordinary {!Sweep.job}s, so
      dimensional sweeps reuse the engine's budgets, retry, quarantine,
      streamed JSONL and resume unchanged;
    - {!analyze} is a {b pure} function from run records back to fitted
      per-strategy power laws: it parses the generator coordinates out of
      each record's benchmark name, ignores foreign records (fixed
      benchmarks sharing the file), excludes non-decisive cells as
      censored, and fits one exponent per strategy × dimension with
      {!Fpgasat_obs.Fit.power_law}. Same records in, bit-identical
      {!Fpgasat_obs.Fit.scaling} out — on any machine. *)

type axis = {
  dim : string;  (** ["grid"], ["nets"] or ["width"]. *)
  values : int list;  (** Ascending; at least one. *)
}

type grid = {
  base : Fpgasat_fpga.Generator.params;
      (** Coordinates not named by an axis stay at these values. *)
  axes : axis list;
  family : Fpgasat_fpga.Generator.family;
}

val dimensions : string list
(** [["grid"; "nets"; "width"]] — the valid {!axis.dim} names. *)

val smoke : grid
(** The CI-sized 2×2×2 unroutable grid: 8 instances small enough that the
    full sweep plus fit finishes in seconds, yet every dimension still has
    two points per group so every exponent is identifiable. *)

val full : grid
(** The nightly grid: 4×4×3 unroutable, 48 instances reaching sizes where
    per-strategy exponents separate. Meant to run with [--resume] so the
    curve accumulates across nightly jobs. *)

val cells : grid -> Fpgasat_fpga.Generator.params list
(** The cartesian product, axes varying in list order (last axis fastest).
    Raises [Invalid_argument] on an unknown {!axis.dim}, a duplicate
    dimension, or an empty value list. *)

val jobs :
  grid -> strategies:Fpgasat_core.Strategy.t list -> Sweep.job list
(** One job per cell × strategy (strategies innermost). Each cell's
    instance is built once ({!Fpgasat_fpga.Generator.build}) and shared by
    its strategies; the job's benchmark is {!Fpgasat_fpga.Generator.name}
    and its width the instance's [solve_width], so the record key is a
    pure function of the grid. *)

val analyze : Run_record.t list -> Fpgasat_obs.Fit.scaling
(** Pure. Keeps only records whose benchmark parses via
    {!Fpgasat_fpga.Generator.of_name}; decisive ones contribute points
    (x = the record's coordinate on the dimension, y =
    {!Run_record.total_seconds}, group = every other coordinate plus the
    family), non-decisive ones are counted as censored and excluded.
    Dimensions along which the records never vary produce no fit (the
    exponent is unidentifiable) — the gate then reports them as missing
    rather than this function guessing. Crossovers are computed per
    dimension for every strategy pair and kept only in the plausible range
    [\[1, 1e6\]]. The document's [seed] is the first parsed record's seed
    and [family] is ["sat"], ["unsat"] or ["mixed"] as observed. *)
