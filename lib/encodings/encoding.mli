(** The encodings compared in the paper, as first-class values.

    An encoding pairs a {e shape} — how a domain value maps to a pattern of
    slot literals — with an {e emission mode} — how the encoder turns those
    patterns into clauses. The shape is either one of the five simple
    encodings or a hierarchical composition [top-<n>+bottom] where [n] is
    the Boolean variable budget of the top level (so
    [ITE-linear-2+muldirect] partitions each domain with a 2-variable ITE
    chain into three subdomains, then selects inside subdomains with a
    shared muldirect encoding).

    The emission mode is orthogonal: {!Flat} expands every indexing pattern
    verbatim into each conflict clause (the paper's emission), while
    {!Definitional} routes patterns through the {!Emit} context —
    Plaisted–Greenbaum definitional variables with structural hashing — so
    each (vertex, value) pattern is defined once and conflict clauses
    shrink to binary. Definitional variants are named with a [+defs]
    suffix, e.g. ["ITE-linear-2+muldirect+defs"]. *)

type emission = Flat | Definitional

type shape =
  | Simple of Simple_encoding.kind
  | Hier of {
      top : Simple_encoding.kind;
      top_vars : int;
      bottom : Simple_encoding.kind;
      shared : bool;
          (** Share bottom variables across subdomains (the paper's choice,
              [true] everywhere in the evaluation); [false] is the ablation
              variant with per-subdomain bottom variables. *)
    }
  | Multi of {
      levels : (Simple_encoding.kind * int) list;
          (** Top-down [(kind, variable budget)] levels; at least two for
              this constructor (one level is {!Hier}). *)
      bottom : Simple_encoding.kind;
    }
      (** Extension beyond the paper's evaluation: the fully general
          multi-level hierarchy of Sect. 4 (cf. Kwon & Klieber's
          direct-i+direct chains). *)

type t = { shape : shape; emission : emission }

val simple : ?emission:emission -> Simple_encoding.kind -> t

val hier :
  ?shared:bool -> ?emission:emission -> top:Simple_encoding.kind ->
  top_vars:int -> bottom:Simple_encoding.kind -> unit -> t

val multi :
  ?emission:emission -> levels:(Simple_encoding.kind * int) list ->
  bottom:Simple_encoding.kind -> unit -> t

val shape : t -> shape
val emission : t -> emission

val with_emission : emission -> t -> t
val flat : t -> t
(** The same shape emitted flat (the paper's form). *)

val defs : t -> t
(** The same shape emitted definitionally ([+defs]). *)

val is_definitional : t -> bool

val layout : t -> int -> Layout.t
(** [layout e k] is the layout of [e] over a domain of [k] values. The
    layout depends only on the shape; the emission mode decides what
    {!Csp_encode} does with it. *)

val name : t -> string
(** Paper-style name, e.g. ["ITE-linear-2+muldirect"]; definitional
    variants carry a ["+defs"] suffix. *)

val of_name : string -> (t, string) result
(** Parses names as printed by {!name} (case-insensitive). *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
