module Sat = Fpgasat_sat
module G = Fpgasat_graph

type t = {
  encoding : Encoding.t;
  csp : Csp.t;
  layout : Layout.t;
  cnf : Sat.Cnf.t;
  symmetry : Symmetry.heuristic option;
}

let boolean_var t v s = (v * t.layout.Layout.num_slots) + s

let lits_of_pattern t v pattern =
  List.map
    (fun (s, pol) -> Sat.Lit.make (boolean_var t v s) pol)
    pattern

let pattern_lits t v value = lits_of_pattern t v t.layout.Layout.patterns.(value)

(* Emission goes through the Cnf clause builder: literals are pushed into
   the arena's scratch buffer directly, so no intermediate lists (or the
   [@] concatenations the conflict clauses used to pay for) are built. *)
let push_pattern t v pattern =
  List.iter
    (fun (s, pol) -> Sat.Cnf.push_lit t.cnf (Sat.Lit.make (boolean_var t v s) pol))
    pattern

let push_negated t v pattern =
  List.iter
    (fun (s, pol) ->
      Sat.Cnf.push_lit t.cnf (Sat.Lit.make (boolean_var t v s) (not pol)))
    pattern

let encode ?symmetry encoding csp =
  let layout = Encoding.layout encoding csp.Csp.k in
  let n = Csp.num_variables csp in
  let cnf = Sat.Cnf.create () in
  Sat.Cnf.ensure_vars cnf (n * layout.Layout.num_slots);
  let t = { encoding; csp; layout; cnf; symmetry } in
  (* per-variable side clauses *)
  for v = 0 to n - 1 do
    List.iter
      (fun clause ->
        Sat.Cnf.start_clause cnf;
        push_pattern t v clause;
        Sat.Cnf.commit_clause cnf)
      layout.Layout.side
  done;
  (* conflict clauses: one per edge per common domain value *)
  G.Graph.iter_edges
    (fun u v ->
      for value = 0 to csp.Csp.k - 1 do
        let p = layout.Layout.patterns.(value) in
        Sat.Cnf.start_clause cnf;
        push_negated t u p;
        push_negated t v p;
        Sat.Cnf.commit_clause cnf
      done)
    t.csp.Csp.graph;
  (* symmetry-breaking clauses *)
  (match symmetry with
  | None -> ()
  | Some h ->
      List.iter
        (fun (v, colour) ->
          Sat.Cnf.start_clause cnf;
          push_negated t v layout.Layout.patterns.(colour);
          Sat.Cnf.commit_clause cnf)
        (Symmetry.forbidden h csp.Csp.graph ~k:csp.Csp.k));
  t

exception No_selected_value of int

let selected_values_of t model v =
  let slot_value s =
    let var = boolean_var t v s in
    var < Array.length model && model.(var)
  in
  Layout.selected_values t.layout slot_value

let decode t model =
  let n = Csp.num_variables t.csp in
  Array.init n (fun v ->
      match selected_values_of t model v with
      | value :: _ -> value
      | [] -> raise (No_selected_value v))
