module Sat = Fpgasat_sat
module G = Fpgasat_graph

type t = {
  encoding : Encoding.t;
  csp : Csp.t;
  layout : Layout.t;
  cnf : Sat.Cnf.t;
  symmetry : Symmetry.heuristic option;
  emit : Emit.t option;
}

let boolean_var t v s = (v * t.layout.Layout.num_slots) + s

let lits_of_pattern t v pattern =
  List.map
    (fun (s, pol) -> Sat.Lit.make (boolean_var t v s) pol)
    pattern

let pattern_lits t v value = lits_of_pattern t v t.layout.Layout.patterns.(value)

(* Emission goes through the Cnf clause builder: literals are pushed into
   the arena's scratch buffer directly, so no intermediate lists (or the
   [@] concatenations the conflict clauses used to pay for) are built. *)
let push_pattern t v pattern =
  List.iter
    (fun (s, pol) -> Sat.Cnf.push_lit t.cnf (Sat.Lit.make (boolean_var t v s) pol))
    pattern

let push_negated t v pattern =
  List.iter
    (fun (s, pol) ->
      Sat.Cnf.push_lit t.cnf (Sat.Lit.make (boolean_var t v s) (not pol)))
    pattern

(* Definitional emission: the literal standing for "variable [v] selects
   [value]" — the pattern's definition for len >= 2 (eagerly created, so
   always cached), the single pattern literal for len = 1, none for the
   empty pattern (a k=1 layout, whose conflict is the empty clause). *)
let selection_lit t ctx v value =
  match t.layout.Layout.patterns.(value) with
  | [] -> None
  | [ (s, pol) ] -> Some (Sat.Lit.make (boolean_var t v s) pol)
  | pattern -> Some (Emit.conj ctx Emit.Neg (lits_of_pattern t v pattern))

let encode ?symmetry encoding csp =
  let layout = Encoding.layout encoding csp.Csp.k in
  let n = Csp.num_variables csp in
  let cnf = Sat.Cnf.create () in
  Sat.Cnf.ensure_vars cnf (n * layout.Layout.num_slots);
  let emit =
    match Encoding.emission encoding with
    | Encoding.Flat -> None
    | Encoding.Definitional -> Some (Emit.create cnf)
  in
  let t = { encoding; csp; layout; cnf; symmetry; emit } in
  (* per-variable side clauses (always flat: they range over slot
     literals, not indexing patterns) *)
  for v = 0 to n - 1 do
    List.iter
      (fun clause ->
        Sat.Cnf.start_clause cnf;
        push_pattern t v clause;
        Sat.Cnf.commit_clause cnf)
      layout.Layout.side
  done;
  (* definitional mode: define every (variable, value) pattern up front —
     one negative-polarity definition each, shared by all the conflict,
     symmetry and selector clauses that mention it — so CNF size is
     independent of how often a pattern recurs (and exactly predictable
     by Encoding_stats) *)
  (match emit with
  | None -> ()
  | Some ctx ->
      for v = 0 to n - 1 do
        for value = 0 to csp.Csp.k - 1 do
          match layout.Layout.patterns.(value) with
          | [] | [ _ ] -> ()
          | pattern -> ignore (Emit.conj ctx Emit.Neg (lits_of_pattern t v pattern))
        done
      done);
  (* conflict clauses: one per edge per common domain value *)
  G.Graph.iter_edges
    (fun u v ->
      for value = 0 to csp.Csp.k - 1 do
        match emit with
        | None ->
            let p = layout.Layout.patterns.(value) in
            Sat.Cnf.start_clause cnf;
            push_negated t u p;
            push_negated t v p;
            Sat.Cnf.commit_clause cnf
        | Some ctx -> (
            match (selection_lit t ctx u value, selection_lit t ctx v value) with
            | Some du, Some dv ->
                Sat.Cnf.start_clause cnf;
                Sat.Cnf.push_lit cnf (Sat.Lit.negate du);
                Sat.Cnf.push_lit cnf (Sat.Lit.negate dv);
                Sat.Cnf.commit_clause cnf
            | _ ->
                (* empty pattern: the value is always selected, so the
                   conflict is the empty clause — same as flat emission *)
                Sat.Cnf.start_clause cnf;
                Sat.Cnf.commit_clause cnf)
      done)
    t.csp.Csp.graph;
  (* symmetry-breaking clauses *)
  (match symmetry with
  | None -> ()
  | Some h ->
      List.iter
        (fun (v, colour) ->
          match emit with
          | None ->
              Sat.Cnf.start_clause cnf;
              push_negated t v layout.Layout.patterns.(colour);
              Sat.Cnf.commit_clause cnf
          | Some ctx ->
              Sat.Cnf.start_clause cnf;
              (match selection_lit t ctx v colour with
              | Some d -> Sat.Cnf.push_lit cnf (Sat.Lit.negate d)
              | None -> ());
              Sat.Cnf.commit_clause cnf)
        (Symmetry.forbidden h csp.Csp.graph ~k:csp.Csp.k));
  t

let definition t v value =
  match t.emit with
  | None -> None
  | Some ctx -> (
      match t.layout.Layout.patterns.(value) with
      | [] | [ _ ] -> None
      | pattern -> Emit.find ctx Emit.Neg (lits_of_pattern t v pattern))

exception No_selected_value of int

let selected_values_of t model v =
  let slot_value s =
    let var = boolean_var t v s in
    var < Array.length model && model.(var)
  in
  Layout.selected_values t.layout slot_value

let decode t model =
  let n = Csp.num_variables t.csp in
  Array.init n (fun v ->
      match selected_values_of t model v with
      | value :: _ -> value
      | [] -> raise (No_selected_value v))
