let e name =
  match Encoding.of_name name with
  | Ok enc -> enc
  | Error msg -> invalid_arg ("Registry: " ^ msg)

let previously_used = [ e "log"; e "muldirect" ]
let direct = e "direct"

let new_encodings =
  [
    e "ITE-linear";
    e "ITE-log";
    e "ITE-log-1+ITE-linear";
    e "ITE-log-2+ITE-linear";
    e "ITE-log-2+direct";
    e "ITE-log-2+muldirect";
    e "ITE-linear-2+direct";
    e "ITE-linear-2+muldirect";
    e "direct-3+direct";
    e "direct-3+muldirect";
    e "muldirect-3+direct";
    e "muldirect-3+muldirect";
  ]

let all = previously_used @ [ direct ] @ new_encodings

let multi_level_extensions =
  [
    e "direct-2+direct-2+direct";
    e "muldirect-2+muldirect-2+muldirect";
    e "ITE-log-1+ITE-log-1+ITE-linear";
    e "ITE-linear-1+ITE-linear-1+muldirect";
  ]

let table2 =
  [
    e "muldirect";
    e "ITE-linear";
    e "ITE-log";
    e "ITE-linear-2+direct";
    e "ITE-linear-2+muldirect";
    e "muldirect-3+muldirect";
    e "direct-3+muldirect";
  ]

let defs_variants = List.map Encoding.defs
let all_emissions = all @ defs_variants all

let in_registry enc =
  let shape = Encoding.flat enc in
  List.exists
    (fun known -> Encoding.compare known shape = 0)
    (all @ multi_level_extensions)

(* Anything parseable is accepted — users may explore beyond the paper's
   registry (mixed hierarchies, unshared ablations, +defs emission).
   {!in_registry} is the membership test for callers that care. *)
let find name = Encoding.of_name name
