let e name =
  match Encoding.of_name name with
  | Ok enc -> enc
  | Error msg -> invalid_arg ("Registry: " ^ msg)

let previously_used = [ e "log"; e "muldirect" ]
let direct = e "direct"

let new_encodings =
  [
    e "ITE-linear";
    e "ITE-log";
    e "ITE-log-1+ITE-linear";
    e "ITE-log-2+ITE-linear";
    e "ITE-log-2+direct";
    e "ITE-log-2+muldirect";
    e "ITE-linear-2+direct";
    e "ITE-linear-2+muldirect";
    e "direct-3+direct";
    e "direct-3+muldirect";
    e "muldirect-3+direct";
    e "muldirect-3+muldirect";
  ]

let all = previously_used @ [ direct ] @ new_encodings

let multi_level_extensions =
  [
    e "direct-2+direct-2+direct";
    e "muldirect-2+muldirect-2+muldirect";
    e "ITE-log-1+ITE-log-1+ITE-linear";
    e "ITE-linear-1+ITE-linear-1+muldirect";
  ]

let table2 =
  [
    e "muldirect";
    e "ITE-linear";
    e "ITE-log";
    e "ITE-linear-2+direct";
    e "ITE-linear-2+muldirect";
    e "muldirect-3+muldirect";
    e "direct-3+muldirect";
  ]

let defs_variants = List.map Encoding.defs
let all_emissions = all @ defs_variants all

let in_registry enc =
  let shape = Encoding.flat enc in
  List.exists
    (fun known -> Encoding.compare known shape = 0)
    (all @ multi_level_extensions)

(* Membership modulo the !unshared sharing ablation as well as emission:
   the ablation of a registry shape is still a registry shape for strategy
   resolution (the bench sweeps it). *)
let reshared enc =
  match Encoding.shape enc with
  | Encoding.Hier { top; top_vars; bottom; shared = false } ->
      Encoding.hier ~shared:true ~top ~top_vars ~bottom ()
  | Encoding.Simple _ | Encoding.Hier _ | Encoding.Multi _ -> enc

(* Total, validated resolution for the strategy layer (CLI -s, sweeps, the
   solve server). The permissive any-parseable-name passthrough this
   replaces let adversarial strings through to the encoder — e.g.
   "direct-999999+direct" parses fine and then allocates a layout sized by
   the attacker — so a network-facing caller could be crashed by a
   well-formed name. Raw exploration beyond the registry remains available
   through [Encoding.of_name] (the CLI's -e converters use it). *)
let of_name name =
  match Encoding.of_name name with
  | exception e ->
      Error
        (Printf.sprintf "encoding %S failed to parse: %s" name
           (Printexc.to_string e))
  | Error _ as err -> err
  | Ok enc ->
      if in_registry (reshared enc) then Ok enc
      else
        Error
          (Printf.sprintf
             "encoding %S is not in the registry (strategies are limited to \
              the paper's encodings and the tracked multi-level extensions; \
              see `fpgasat list`, or use the -e flags for raw encoding \
              exploration)"
             name)
