(** The encoding sets the paper evaluates.

    All names are resolvable with {!Encoding.of_name}; these lists drive the
    benchmark harness and the CLI. *)

val previously_used : Encoding.t list
(** The two encodings earlier SAT-based FPGA routers used: log and
    muldirect. *)

val direct : Encoding.t
(** Plain direct — mentioned in Sect. 6 as worse than muldirect. *)

val new_encodings : Encoding.t list
(** The 12 new encodings, in the paper's order (Sect. 6). *)

val all : Encoding.t list
(** Previously used + direct + the 12 new ones (15 total). *)

val multi_level_extensions : Encoding.t list
(** Beyond the paper's evaluation: three-level hierarchies, exercising the
    fully general composition of Sect. 4 (Kwon & Klieber's
    direct-i+direct family and ITE variants). *)

val table2 : Encoding.t list
(** The seven encodings whose columns appear in Table 2. *)

val defs_variants : Encoding.t list -> Encoding.t list
(** The same shapes under definitional ([+defs]) emission. *)

val all_emissions : Encoding.t list
(** Every registry encoding in both emission modes: {!all} (flat, the
    paper's emission) followed by its [+defs] variants (30 total). *)

val in_registry : Encoding.t -> bool
(** Whether the encoding's shape is one the repository tracks — {!all} or
    {!multi_level_extensions} — in either emission mode. *)

val of_name : string -> (Encoding.t, string) result
(** Total, validated name resolution for the strategy layer: the name must
    parse {e and} its shape — modulo emission mode and the [!unshared]
    sharing ablation — must be in the registry ({!all} or
    {!multi_level_extensions}). Anything else, including well-formed names
    with unbounded variable budgets ("direct-999999+direct"), is an
    [Error] with an explanatory message, never an exception — so a
    network-facing caller (the solve server) can reject a malformed
    strategy string with a protocol error instead of crashing or encoding
    an adversarial shape. This replaces the permissive [find] passthrough;
    raw exploration beyond the registry goes through {!Encoding.of_name}
    (the CLI's [-e] flags). *)
