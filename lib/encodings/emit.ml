module Sat = Fpgasat_sat

type polarity = Pos | Neg | Both

type entry = {
  var : Sat.Lit.var;
  mutable pos_done : bool;
  mutable neg_done : bool;
}

type t = {
  cnf : Sat.Cnf.t;
  table : (int list, entry) Hashtbl.t;
  mutable true_lit : Sat.Lit.t option;
  mutable num_defs : int;
  mutable def_clauses : int;
  mutable def_literals : int;
}

type stats = { defs : int; clauses : int; literals : int }

let create cnf =
  {
    cnf;
    table = Hashtbl.create 64;
    true_lit = None;
    num_defs = 0;
    def_clauses = 0;
    def_literals = 0;
  }

let stats t =
  { defs = t.num_defs; clauses = t.def_clauses; literals = t.def_literals }

let wants_pos = function Pos | Both -> true | Neg -> false
let wants_neg = function Neg | Both -> true | Pos -> false

(* Canonical cache key: sorted, deduplicated literals. The caller is
   expected not to pass complementary literals (a contradictory
   conjunction); that is rejected rather than encoded as constant false. *)
let key lits =
  let sorted = List.sort_uniq Sat.Lit.compare lits in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Sat.Lit.var a = Sat.Lit.var b then
          invalid_arg "Emit.conj: complementary literals"
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

let record_clause t len =
  t.def_clauses <- t.def_clauses + 1;
  t.def_literals <- t.def_literals + len

(* d -> conj: one binary clause (~d | l) per conjunct. *)
let emit_pos t d lits =
  List.iter
    (fun l ->
      Sat.Cnf.start_clause t.cnf;
      Sat.Cnf.push_lit t.cnf (Sat.Lit.neg_of d);
      Sat.Cnf.push_lit t.cnf l;
      Sat.Cnf.commit_clause t.cnf;
      record_clause t 2)
    lits

(* conj -> d: one clause (~l1 | ... | ~ln | d). *)
let emit_neg t d lits =
  Sat.Cnf.start_clause t.cnf;
  List.iter (fun l -> Sat.Cnf.push_lit t.cnf (Sat.Lit.negate l)) lits;
  Sat.Cnf.push_lit t.cnf (Sat.Lit.pos d);
  Sat.Cnf.commit_clause t.cnf;
  record_clause t (List.length lits + 1)

let constant_true t =
  match t.true_lit with
  | Some l -> l
  | None ->
      let v = Sat.Cnf.fresh_var t.cnf in
      Sat.Cnf.start_clause t.cnf;
      Sat.Cnf.push_lit t.cnf (Sat.Lit.pos v);
      Sat.Cnf.commit_clause t.cnf;
      t.num_defs <- t.num_defs + 1;
      record_clause t 1;
      let l = Sat.Lit.pos v in
      t.true_lit <- Some l;
      l

let conj t polarity lits =
  match key lits with
  | [] -> constant_true t
  | [ l ] -> l
  | lits -> (
      let upgrade e =
        if wants_pos polarity && not e.pos_done then begin
          emit_pos t e.var lits;
          e.pos_done <- true
        end;
        if wants_neg polarity && not e.neg_done then begin
          emit_neg t e.var lits;
          e.neg_done <- true
        end;
        Sat.Lit.pos e.var
      in
      match Hashtbl.find_opt t.table lits with
      | Some e -> upgrade e
      | None ->
          let e =
            { var = Sat.Cnf.fresh_var t.cnf; pos_done = false; neg_done = false }
          in
          Hashtbl.add t.table lits e;
          t.num_defs <- t.num_defs + 1;
          upgrade e)

let find t polarity lits =
  match key lits with
  | [] -> t.true_lit
  | [ l ] -> Some l
  | lits -> (
      match Hashtbl.find_opt t.table lits with
      | None -> None
      | Some e ->
          let covered =
            ((not (wants_pos polarity)) || e.pos_done)
            && ((not (wants_neg polarity)) || e.neg_done)
          in
          if covered then Some (Sat.Lit.pos e.var) else None)
