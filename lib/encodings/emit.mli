(** Polarity-aware definitional emission with structural hashing.

    An encode-time context that turns conjunctions of literals into fresh
    {e definition} variables, after ToySolver's Tseitin encoder: each
    distinct conjunction (hash-consed on its sorted literal set) gets one
    auxiliary variable shared by every later request, and the defining
    clauses follow Plaisted–Greenbaum polarity, so only the implication
    directions a use site actually needs are emitted.

    For a definition [d] of the conjunction [l1 & ... & ln]:

    - a {e positive} occurrence of the conjunction (the literal [d] appears
      positively where the conjunction stood) needs [d -> l1 & ... & ln]:
      [n] binary clauses [(~d | li)];
    - a {e negative} occurrence (the clause contains [~d]) needs
      [l1 & ... & ln -> d]: one clause [(~l1 | ... | ~ln | d)].

    Requesting a cached definition under a wider polarity emits only the
    missing direction — definitions upgrade monotonically and are never
    duplicated. All clauses go straight into the context's {!Fpgasat_sat.Cnf.t}
    through the allocation-free clause builder.

    {!Csp_encode} drives this for [+defs] encodings: every (vertex, value)
    indexing pattern becomes a negative-polarity definition, so edge
    conflict clauses collapse to binary [(~d_u | ~d_v)] and symmetry /
    width-selector clauses reuse the same definitions. *)

type polarity = Pos | Neg | Both
(** Which occurrence polarities the requested definition must cover.
    [Pos] emits [d -> conj], [Neg] emits [conj -> d], [Both] emits both. *)

type t
(** An emission context bound to one CNF under construction. *)

val create : Fpgasat_sat.Cnf.t -> t

val conj : t -> polarity -> Fpgasat_sat.Lit.t list -> Fpgasat_sat.Lit.t
(** [conj t polarity lits] is a literal equisatisfiably standing for the
    conjunction of [lits] at the given occurrence polarity.

    The empty conjunction yields a cached constant-true literal (defined by
    one unit clause); a singleton is returned as-is (no auxiliary
    variable); anything longer is hash-consed. Raises [Invalid_argument]
    if [lits] contains complementary literals. *)

val find : t -> polarity -> Fpgasat_sat.Lit.t list -> Fpgasat_sat.Lit.t option
(** [find t polarity lits] is the cached definition literal for [lits], if
    one exists {e and} its emitted clauses already cover [polarity] — a
    pure lookup, never emits. Singletons are returned as-is. *)

type stats = { defs : int; clauses : int; literals : int }
(** Auxiliary variables allocated, defining clauses emitted, and total
    literals across those clauses. *)

val stats : t -> stats
