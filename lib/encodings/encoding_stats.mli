(** Closed-form size predictions for encoded CSPs.

    For every encoding (in either emission mode) this module predicts,
    without building the CNF, how many Boolean variables — slot and
    definitional auxiliary — side clauses, definition clauses and conflict
    clauses (with their literal counts) the translation of a colouring CSP
    will produce. The predictions match the encoder {e exactly} (validated
    against {!Csp_encode.encode} in the test suite, which pins down the
    encoder's behaviour) and power the encoding explorer's size tables
    without paying for the construction. *)

type t = {
  vars_per_csp_var : int;  (** Slot variables: the layout's [num_slots]. *)
  aux_vars_per_csp_var : int;
      (** Definitional auxiliary variables: one per indexing pattern of
          length at least 2; [0] under flat emission. *)
  side_clauses_per_csp_var : int;
  side_literals_per_csp_var : int;
  def_clauses_per_csp_var : int;
      (** Negative-polarity definition clauses, one per auxiliary
          variable; [0] under flat emission. *)
  def_literals_per_csp_var : int;
      (** Sum over defined patterns of (length + 1). *)
  conflict_clauses_per_edge : int;  (** Always the domain size [k]. *)
  conflict_literals_per_edge : int;
      (** Flat: sum over values of twice the pattern length. Definitional:
          2 per value (empty patterns contribute 0 — their conflict is the
          empty clause in both modes). *)
}

val of_layout : ?emission:Encoding.emission -> Layout.t -> t
(** Default emission: {!Encoding.Flat}. *)

val predict : Encoding.t -> k:int -> t

val total_vars : t -> num_vertices:int -> int
val total_clauses : t -> num_vertices:int -> num_edges:int -> int
val total_literals : t -> num_vertices:int -> num_edges:int -> int
(** Totals for a CSP with the given conflict-graph shape (excluding
    symmetry-breaking clauses). *)

val pp : Format.formatter -> t -> unit
