(** Translation of a colouring CSP to CNF under a chosen encoding.

    Every CSP variable (graph vertex) gets its own block of Boolean
    variables shaped by the encoding's {!Layout.t}; conflict clauses forbid
    adjacent vertices from selecting the same value (the negated conjunction
    of the two indexing patterns, Sect. 4's worked example); optional
    symmetry-breaking clauses forbid specific (vertex, colour) pairs. *)

type t = private {
  encoding : Encoding.t;
  csp : Csp.t;
  layout : Layout.t;  (** Shared by all CSP variables (same domain size). *)
  cnf : Fpgasat_sat.Cnf.t;
  symmetry : Symmetry.heuristic option;
  emit : Emit.t option;
      (** The definitional emission context, present iff the encoding's
          mode is {!Encoding.Definitional}. *)
}

val encode : ?symmetry:Symmetry.heuristic -> Encoding.t -> Csp.t -> t
(** Builds the full CNF: per-variable side clauses, conflict clauses for
    every edge and every common value, and symmetry clauses when requested.

    Under {!Encoding.Flat} emission, conflict and symmetry clauses expand
    both indexing patterns verbatim (the paper's emission). Under
    {!Encoding.Definitional}, every (vertex, value) pattern of two or more
    literals is first bound to a negative-polarity {!Emit} definition —
    shared by all its uses — so conflict clauses become binary
    [(~d_u | ~d_v)] and symmetry clauses unit. Both emissions are
    equisatisfiable and decode identically: models restricted to the slot
    variables coincide. *)

val definition : t -> int -> int -> Fpgasat_sat.Lit.t option
(** [definition t v value] is the definitional literal standing for
    "variable [v] selects [value]" when one exists — definitional emission
    and a pattern of length at least 2. Downstream emitters (e.g. the
    incremental-width selector clauses) use it to stay binary instead of
    re-expanding the pattern. *)

val boolean_var : t -> int -> int -> Fpgasat_sat.Lit.var
(** [boolean_var t v s] is the Boolean variable behind slot [s] of CSP
    variable [v]. *)

val pattern_lits : t -> int -> int -> Fpgasat_sat.Lit.t list
(** [pattern_lits t v value] is value [value]'s indexing pattern for CSP
    variable [v], as concrete literals. *)

exception No_selected_value of int
(** Raised by {!decode} when a model selects no value for some CSP variable
    — impossible for models of the emitted CNF, indicating a corrupted
    model. *)

val decode : t -> bool array -> Fpgasat_graph.Coloring.t
(** Extracts a colouring from a SAT model. For non-exclusive (multivalued)
    encodings any one selected value is taken, as the paper prescribes. *)

val selected_values_of : t -> bool array -> int -> int list
(** All domain values the model selects for a CSP variable (useful for
    inspecting multivalued solutions). *)
