(** The paper's primary contribution: SAT encodings for colouring CSPs.

    {!Encoding} names the 15 encodings (2 previously used, direct, and the
    12 new ones), each compiled to a {!Layout} of indexing Boolean patterns;
    {!Hierarchy} is the general composition framework of Sect. 4;
    {!Symmetry} implements the b1/s1 heuristics of Sect. 5; {!Emit} is the
    polarity-aware definitional emission context behind the [+defs]
    encoding variants; and {!Csp_encode} turns a {!Csp} instance into CNF
    and decodes models back into colourings. *)

module Layout = Layout
module Emit = Emit
module Ite_tree = Ite_tree
module Simple_encoding = Simple_encoding
module Hierarchy = Hierarchy
module Encoding = Encoding
module Encoding_stats = Encoding_stats
module Registry = Registry
module Csp = Csp
module Symmetry = Symmetry
module Csp_encode = Csp_encode
