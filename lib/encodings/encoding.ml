type emission = Flat | Definitional

type shape =
  | Simple of Simple_encoding.kind
  | Hier of {
      top : Simple_encoding.kind;
      top_vars : int;
      bottom : Simple_encoding.kind;
      shared : bool;
    }
  | Multi of {
      levels : (Simple_encoding.kind * int) list;
      bottom : Simple_encoding.kind;
    }

type t = { shape : shape; emission : emission }

let simple ?(emission = Flat) kind = { shape = Simple kind; emission }

let hier ?(shared = true) ?(emission = Flat) ~top ~top_vars ~bottom () =
  { shape = Hier { top; top_vars; bottom; shared }; emission }

let multi ?(emission = Flat) ~levels ~bottom () =
  { shape = Multi { levels; bottom }; emission }

let shape t = t.shape
let emission t = t.emission
let with_emission emission t = { t with emission }
let flat t = { t with emission = Flat }
let defs t = { t with emission = Definitional }
let is_definitional t = t.emission = Definitional

let layout t k =
  match t.shape with
  | Simple kind -> Simple_encoding.layout kind k
  | Hier { top; top_vars; bottom; shared } ->
      Hierarchy.compose ~shared ~top ~top_vars ~bottom k
  | Multi { levels; bottom } -> Hierarchy.compose_levels ~levels ~bottom k

(* The paper capitalises ITE; reproduce that in display names. *)
let display_kind = function
  | Simple_encoding.Ite_linear -> "ITE-linear"
  | Simple_encoding.Ite_log -> "ITE-log"
  | k -> Simple_encoding.kind_name k

let shape_name = function
  | Simple kind -> display_kind kind
  | Hier { top; top_vars; bottom; shared } ->
      Printf.sprintf "%s-%d+%s%s" (display_kind top) top_vars
        (display_kind bottom)
        (if shared then "" else "!unshared")
  | Multi { levels; bottom } ->
      String.concat "+"
        (List.map
           (fun (kind, vars) -> Printf.sprintf "%s-%d" (display_kind kind) vars)
           levels)
      ^ "+" ^ display_kind bottom

let emission_suffix = "+defs"

let name t =
  shape_name t.shape
  ^ match t.emission with Flat -> "" | Definitional -> emission_suffix

let of_name s =
  let s = String.lowercase_ascii (String.trim s) in
  let s, emission =
    match Filename.check_suffix s emission_suffix with
    | true -> (Filename.chop_suffix s emission_suffix, Definitional)
    | false -> (s, Flat)
  in
  let parse_top part =
    (* "<kind>-<n>" where <kind> may itself contain dashes *)
    match String.rindex_opt part '-' with
    | None -> None
    | Some i -> (
        let kind_str = String.sub part 0 i in
        let n_str = String.sub part (i + 1) (String.length part - i - 1) in
        match (Simple_encoding.kind_of_name kind_str, int_of_string_opt n_str) with
        | Some kind, Some n when n >= 1 -> Some (kind, n)
        | _ -> None)
  in
  let s, shared =
    match Filename.check_suffix s "!unshared" with
    | true -> (Filename.chop_suffix s "!unshared", false)
    | false -> (s, true)
  in
  let mk shape = Ok { shape; emission } in
  match String.split_on_char '+' s with
  | [ simple ] -> (
      match Simple_encoding.kind_of_name simple with
      | Some kind -> mk (Simple kind)
      | None -> Error (Printf.sprintf "unknown encoding %S" s))
  | [ top_part; bottom_part ] -> (
      match (parse_top top_part, Simple_encoding.kind_of_name bottom_part) with
      | Some (top, top_vars), Some bottom ->
          mk (Hier { top; top_vars; bottom; shared })
      | _ -> Error (Printf.sprintf "unknown hierarchical encoding %S" s))
  | parts -> (
      (* three or more levels: every part but the last is "<kind>-<n>" *)
      let rec split_last acc = function
        | [] -> assert false
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split_last (x :: acc) rest
      in
      let level_parts, bottom_part = split_last [] parts in
      let levels = List.map parse_top level_parts in
      match (Simple_encoding.kind_of_name bottom_part, shared) with
      | Some bottom, true when List.for_all Option.is_some levels ->
          mk (Multi { levels = List.map Option.get levels; bottom })
      | _ -> Error (Printf.sprintf "unknown multi-level encoding %S" s))

let compare a b = Stdlib.compare a b
let pp fmt t = Format.pp_print_string fmt (name t)
