type t = {
  vars_per_csp_var : int;
  aux_vars_per_csp_var : int;
  side_clauses_per_csp_var : int;
  side_literals_per_csp_var : int;
  def_clauses_per_csp_var : int;
  def_literals_per_csp_var : int;
  conflict_clauses_per_edge : int;
  conflict_literals_per_edge : int;
}

let of_layout ?(emission = Encoding.Flat) (layout : Layout.t) =
  let side_literals =
    List.fold_left (fun acc clause -> acc + List.length clause) 0 layout.Layout.side
  in
  let pattern_len p = List.length p in
  let defined =
    (* patterns of >= 2 literals get one auxiliary variable each; empty and
       singleton patterns are inlined by the encoder *)
    Array.fold_left
      (fun acc p -> if pattern_len p >= 2 then acc + 1 else acc)
      0 layout.Layout.patterns
  in
  let aux, def_clauses, def_literals, conflict_literals =
    match emission with
    | Encoding.Flat ->
        let conflict_literals =
          Array.fold_left
            (fun acc pattern -> acc + (2 * pattern_len pattern))
            0 layout.Layout.patterns
        in
        (0, 0, 0, conflict_literals)
    | Encoding.Definitional ->
        (* one negative-polarity definition clause (~l1|...|~ln|d) per
           defined pattern; each conflict clause is binary except for the
           empty pattern's, which stays empty *)
        let def_literals =
          Array.fold_left
            (fun acc p ->
              let len = pattern_len p in
              if len >= 2 then acc + len + 1 else acc)
            0 layout.Layout.patterns
        in
        let conflict_literals =
          Array.fold_left
            (fun acc p -> if pattern_len p = 0 then acc else acc + 2)
            0 layout.Layout.patterns
        in
        (defined, defined, def_literals, conflict_literals)
  in
  {
    vars_per_csp_var = layout.Layout.num_slots;
    aux_vars_per_csp_var = aux;
    side_clauses_per_csp_var = List.length layout.Layout.side;
    side_literals_per_csp_var = side_literals;
    def_clauses_per_csp_var = def_clauses;
    def_literals_per_csp_var = def_literals;
    conflict_clauses_per_edge = layout.Layout.num_values;
    conflict_literals_per_edge = conflict_literals;
  }

let predict encoding ~k =
  of_layout ~emission:(Encoding.emission encoding) (Encoding.layout encoding k)

let total_vars t ~num_vertices =
  num_vertices * (t.vars_per_csp_var + t.aux_vars_per_csp_var)

let total_clauses t ~num_vertices ~num_edges =
  (num_vertices * (t.side_clauses_per_csp_var + t.def_clauses_per_csp_var))
  + (num_edges * t.conflict_clauses_per_edge)

let total_literals t ~num_vertices ~num_edges =
  (num_vertices * (t.side_literals_per_csp_var + t.def_literals_per_csp_var))
  + (num_edges * t.conflict_literals_per_edge)

let pp fmt t =
  Format.fprintf fmt
    "vars/v=%d aux/v=%d side-clauses/v=%d side-lits/v=%d def-clauses/v=%d \
     def-lits/v=%d conflict-clauses/e=%d conflict-lits/e=%d"
    t.vars_per_csp_var t.aux_vars_per_csp_var t.side_clauses_per_csp_var
    t.side_literals_per_csp_var t.def_clauses_per_csp_var
    t.def_literals_per_csp_var t.conflict_clauses_per_edge
    t.conflict_literals_per_edge
