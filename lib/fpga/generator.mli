(** Seeded, parameterized instance families for dimensional benchmarking.

    The bundled {!Benchmarks} are eight fixed points; this module is the
    size {e axes}: a VLSAT-style generator (cf. Bouvier & Garavel's
    parameterized benchmark suites) that emits arbitrarily large instances
    from three orthogonal dimensions — FPGA array size, net count, and
    channel width (the router's negotiated per-segment capacity) — in two
    families:

    - {b Unroutable}: the width question is asked one track {e below} the
      conflict graph's greedy clique lower bound, so the instance is
      unroutable by construction (a [c]-clique of mutually conflicting
      subnets cannot share [c - 1] tracks) yet the SAT solver must still
      {e prove} it — these are the pigeonhole-flavoured refutations whose
      cost grows steeply along every axis;
    - {b Routable}: the width question is asked at the DSATUR upper bound,
      so a routing exists by construction (the greedy colouring witnesses
      it) and the solver's job is to find one.

    Everything is deterministic from the parameter record: the same
    [params] yield bit-identical netlists, routings and conflict graphs on
    every machine ({!Rng} is the fixed xorshift64-star generator), so cell
    names double as resume keys in sweep records and the committed scaling
    baselines stay reproducible. *)

type params = {
  grid : int;  (** FPGA array size [n × n]; the "grid" dimension. *)
  nets : int;  (** Multi-pin nets; the "nets" dimension. *)
  width : int;
      (** Channel-width axis: the global router's negotiated per-segment
          capacity. More tracks negotiated over the same fabric means
          larger conflict cliques, which is what scales the width
          dimension of the UNSAT families. *)
  max_fanout : int;  (** Sinks per net, uniform in [1 .. max_fanout]. *)
  locality : int;  (** Chebyshev radius of sink placement (Rent-style). *)
  seed : int;  (** Every derived instance is a pure function of this. *)
}

type family = Routable | Unroutable

type instance = {
  params : params;
  family : family;
  arch : Arch.t;
  netlist : Netlist.t;
  route : Global_route.t;
  graph : Fpgasat_graph.Graph.t;  (** Conflict graph of the routing. *)
  clique_bound : int;
      (** Greedy clique lower bound on the channel width — colouring below
          it is impossible. *)
  dsatur_bound : int;
      (** DSATUR upper bound — colouring at it always exists. *)
  solve_width : int;
      (** The width whose routability question defines the cell:
          [clique_bound - 1] (clamped to 1) for {!Unroutable},
          [dsatur_bound] for {!Routable}. *)
}

val default_params : params
(** [grid = 7], [nets = 48], [width = 5], [max_fanout = 3],
    [locality = 2], [seed = 2008] — the base coordinate the dimensional
    grids vary around. *)

val family_name : family -> string
(** ["sat"] / ["unsat"]. *)

val family_of_name : string -> family option

val name : params -> family -> string
(** The cell identity, e.g. ["gen:g7:n48:w5:f3:l2:s2008:unsat"] — used as
    the [benchmark] field of sweep records. Total and injective:
    {!of_name} inverts it. *)

val of_name : string -> (params * family) option
(** Parses {!name}'s format back; [None] for anything else (in particular
    the fixed {!Benchmarks} names), which is how the scaling analysis
    ignores foreign records sharing a results file. *)

val build : params -> family -> instance
(** Deterministic: same parameters, same instance. Raises
    [Invalid_argument] on non-positive [grid], [nets], [width] or
    [max_fanout]. *)

val provably_unroutable : instance -> bool
(** [clique_bound > solve_width] — true for every {!Unroutable} instance
    whose conflict graph has at least one edge. Degenerate parameter
    points (so few nets that nothing conflicts) fall back to a routable
    width-1 question; the sweep records their actual outcome either way. *)

val pp_instance : Format.formatter -> instance -> unit
