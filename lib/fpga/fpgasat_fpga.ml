(** FPGA substrate: the island-style array model, netlists, the global
    router standing in for SEGA, congestion accounting, the reduction to
    the colouring conflict graph, detailed-routing extraction/verification,
    and the synthetic MCNC-like benchmark suite. *)

module Arch = Arch
module Netlist = Netlist
module Rng = Rng
module Global_route = Global_route
module Global_router = Global_router
module Congestion = Congestion
module Conflict_graph = Conflict_graph
module Detailed_route = Detailed_route
module Benchmarks = Benchmarks
module Generator = Generator
module Serial = Serial
module Render = Render
