module G = Fpgasat_graph

type params = {
  grid : int;
  nets : int;
  width : int;
  max_fanout : int;
  locality : int;
  seed : int;
}

type family = Routable | Unroutable

type instance = {
  params : params;
  family : family;
  arch : Arch.t;
  netlist : Netlist.t;
  route : Global_route.t;
  graph : G.Graph.t;
  clique_bound : int;
  dsatur_bound : int;
  solve_width : int;
}

let default_params =
  { grid = 7; nets = 48; width = 5; max_fanout = 3; locality = 2; seed = 2008 }

let family_name = function Routable -> "sat" | Unroutable -> "unsat"

let family_of_name = function
  | "sat" -> Some Routable
  | "unsat" -> Some Unroutable
  | _ -> None

let name p family =
  Printf.sprintf "gen:g%d:n%d:w%d:f%d:l%d:s%d:%s" p.grid p.nets p.width
    p.max_fanout p.locality p.seed (family_name family)

(* Inverse of [name]: "gen" then six tagged non-negative ints in a fixed
   order, then the family tag. Anything else — including the fixed
   benchmark names — is None, never an exception. *)
let of_name s =
  let tagged tag field =
    let n = String.length field in
    if n < 2 || field.[0] <> tag then None
    else
      match int_of_string_opt (String.sub field 1 (n - 1)) with
      | Some v when v >= 0 -> Some v
      | _ -> None
  in
  match String.split_on_char ':' s with
  | [ "gen"; g; n; w; f; l; sd; fam ] -> (
      match
        ( tagged 'g' g,
          tagged 'n' n,
          tagged 'w' w,
          tagged 'f' f,
          tagged 'l' l,
          tagged 's' sd,
          family_of_name fam )
      with
      | Some grid, Some nets, Some width, Some max_fanout, Some locality,
        Some seed, Some family ->
          Some ({ grid; nets; width; max_fanout; locality; seed }, family)
      | _ -> None)
  | _ -> None

let build p family =
  if p.grid < 1 then invalid_arg "Generator.build: grid < 1";
  if p.nets < 1 then invalid_arg "Generator.build: nets < 1";
  if p.width < 1 then invalid_arg "Generator.build: width < 1";
  if p.max_fanout < 1 then invalid_arg "Generator.build: max_fanout < 1";
  let arch = Arch.create p.grid in
  (* Mix the coordinates into the seed so every grid point draws its own
     stream: a pure function of [params], so determinism is preserved,
     but cells along the nets axis are not prefixes of one another. *)
  let rng = Rng.create (p.seed lxor (p.grid * 0x9e37) lxor (p.nets * 0x79b9)) in
  let netlist =
    Netlist.random ~rng ~arch ~num_nets:p.nets ~max_fanout:p.max_fanout
      ~locality:(max 1 p.locality)
  in
  let router = { Global_router.default_params with capacity = p.width } in
  let route = Global_router.route ~params:router arch netlist in
  let graph = Conflict_graph.build route in
  let clique_bound = G.Clique.lower_bound graph in
  let dsatur_bound = max 1 (G.Greedy.upper_bound graph) in
  let solve_width =
    match family with
    | Unroutable -> max 1 (clique_bound - 1)
    | Routable -> dsatur_bound
  in
  {
    params = p;
    family;
    arch;
    netlist;
    route;
    graph;
    clique_bound;
    dsatur_bound;
    solve_width;
  }

let provably_unroutable i = i.clique_bound > i.solve_width

let pp_instance fmt i =
  Format.fprintf fmt
    "%s: grid=%dx%d nets=%d subnets=%d conflict=%a clique>=%d dsatur<=%d W=%d"
    (name i.params i.family) i.params.grid i.params.grid
    (Netlist.num_nets i.netlist)
    (Netlist.num_subnets i.netlist)
    G.Graph.pp i.graph i.clique_bound i.dsatur_bound i.solve_width
