module Sat = Fpgasat_sat
module E = Fpgasat_encodings

type outcome =
  | Routed of int array
  | Unroutable
  | Timeout

let default_encoding () =
  match E.Encoding.of_name "ITE-linear-2+muldirect" with
  | Ok e -> e
  | Error m -> invalid_arg m

(* Builds the CNF plus the per-connection pattern table needed to decode. *)
let build encoding channel connections =
  let k = Segmented_channel.num_tracks channel in
  if k < 1 && connections <> [] then
    invalid_arg "Channel_sat: channel without tracks";
  let layout = E.Encoding.layout encoding (max k 1) in
  let nslots = layout.E.Layout.num_slots in
  let cnf = Sat.Cnf.create () in
  let conns = Array.of_list connections in
  let n = Array.length conns in
  Sat.Cnf.ensure_vars cnf (n * nslots);
  (* clause emission pushes literals straight into the arena builder;
     no per-clause lists or [@] concatenations *)
  let push i pattern =
    List.iter
      (fun (s, pol) -> Sat.Cnf.push_lit cnf (Sat.Lit.make ((i * nslots) + s) pol))
      pattern
  in
  let push_negated i pattern =
    List.iter
      (fun (s, pol) ->
        Sat.Cnf.push_lit cnf (Sat.Lit.make ((i * nslots) + s) (not pol)))
      pattern
  in
  (* per-connection side clauses *)
  for i = 0 to n - 1 do
    List.iter
      (fun clause ->
        Sat.Cnf.start_clause cnf;
        push i clause;
        Sat.Cnf.commit_clause cnf)
      layout.E.Layout.side
  done;
  (* forbid infeasible tracks *)
  Array.iteri
    (fun i c ->
      let feasible = Segmented_channel.feasible_tracks channel c in
      for track = 0 to k - 1 do
        if not (List.mem track feasible) then begin
          Sat.Cnf.start_clause cnf;
          push_negated i layout.E.Layout.patterns.(track);
          Sat.Cnf.commit_clause cnf
        end
      done)
    conns;
  (* per-track conflicts for pairs sharing a segment there *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for track = 0 to k - 1 do
        if Segmented_channel.conflict_on_track channel conns.(i) conns.(j) ~track
        then begin
          Sat.Cnf.start_clause cnf;
          push_negated i layout.E.Layout.patterns.(track);
          push_negated j layout.E.Layout.patterns.(track);
          Sat.Cnf.commit_clause cnf
        end
      done
    done
  done;
  (cnf, layout, conns, nslots)

let cnf_of ?encoding channel connections =
  let encoding =
    match encoding with Some e -> e | None -> default_encoding ()
  in
  let cnf, _, _, _ = build encoding channel connections in
  cnf

let route ?encoding ?config ?budget channel connections =
  if connections = [] then Routed [||]
  else begin
    let encoding =
      match encoding with Some e -> e | None -> default_encoding ()
    in
    let cnf, layout, conns, nslots = build encoding channel connections in
    match Sat.Solver.solve ?config ?budget cnf with
    | Sat.Solver.Unsat, _ -> Unroutable
    | (Sat.Solver.Unknown | Sat.Solver.Memout), _ -> Timeout
    | Sat.Solver.Sat model, _ ->
        let track_of i =
          let slot_value s =
            let var = (i * nslots) + s in
            var < Array.length model && model.(var)
          in
          match E.Layout.selected_values layout slot_value with
          | track :: _ -> track
          | [] -> failwith "Channel_sat: model selects no track"
        in
        let assignment = Array.init (Array.length conns) track_of in
        (match Segmented_channel.verify channel (Array.to_list conns) assignment with
        | Ok () -> ()
        | Error v ->
            failwith
              (Format.asprintf "Channel_sat: decoded routing invalid: %a"
                 Segmented_channel.pp_violation v));
        Routed assignment
  end
