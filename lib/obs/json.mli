(** A minimal JSON implementation (no external dependencies).

    Covers exactly what the run records need: the seven JSON value forms,
    a compact single-line printer, and a strict recursive-descent parser.
    Numbers without a fraction or exponent parse as {!Int}; everything else
    numeric parses as {!Float}. The printer emits floats with enough digits
    to round-trip bit-exactly through {!of_string} (non-finite floats are
    emitted as [null], as JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line (no newlines even inside strings — they are
    escaped), suitable for JSONL. *)

val of_string : string -> (t, string) result
(** Parses one JSON value; trailing non-whitespace is an error. *)

val find : t -> string -> t option
(** First binding of the key in an {!Obj}; [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality; [Float] compared bit-exactly (NaN equals NaN). *)
