let schema_version = "fpgasat.bench/1"
let default_tolerance = 1.25

(* Wall times below a microsecond are clock noise; clamping both sides of
   a ratio there keeps a 0-vs-0 cell at ratio 1 instead of 0/0. *)
let epsilon_seconds = 1e-6

type t = { sections : (string * (string * float) list) list }

let make sections = { sections }
let sections t = t.sections

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ( "sections",
        Json.Obj
          (List.map
             (fun (name, cells) ->
               ( name,
                 Json.Obj
                   (List.map (fun (k, v) -> (k, Json.Float v)) cells) ))
             t.sections) );
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let* schema =
    match Json.find json "schema" with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error "key \"schema\" is not a string"
    | None -> Error "missing key \"schema\""
  in
  if schema <> schema_version then
    Error
      (Printf.sprintf "unsupported schema %S (want %S)" schema schema_version)
  else
    let* sections =
      match Json.find json "sections" with
      | Some (Json.Obj kvs) -> Ok kvs
      | Some _ -> Error "key \"sections\" is not an object"
      | None -> Error "missing key \"sections\""
    in
    List.fold_left
      (fun acc (name, cells) ->
        let* acc = acc in
        let* cells =
          match cells with
          | Json.Obj kvs ->
              List.fold_left
                (fun acc (k, v) ->
                  let* acc = acc in
                  match v with
                  | Json.Float f -> Ok ((k, f) :: acc)
                  | Json.Int i -> Ok ((k, float_of_int i) :: acc)
                  | _ ->
                      Error
                        (Printf.sprintf "cell %S/%S is not a number" name k))
                (Ok []) kvs
              |> Result.map List.rev
          | _ -> Error (Printf.sprintf "section %S is not an object" name)
        in
        Ok ((name, cells) :: acc))
      (Ok []) sections
    |> Result.map (fun secs -> { sections = List.rev secs })

let of_string s =
  match Json.of_string s with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok json -> of_json json

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> of_string contents

let to_file path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

(* ---------- comparison ---------- *)

type section_report = {
  section : string;
  geomean : float option;
  cells : int;
  missing : string list;
  ok : bool;
}

type report = {
  sections : section_report list;
  tolerance : float;
  ok : bool;
}

let compare ?(tolerance = default_tolerance) ~(baseline : t) ~(current : t) ()
    =
  if tolerance <= 0. then invalid_arg "Baseline.compare: tolerance <= 0";
  let compare_section (name, base_cells) =
    match List.assoc_opt name current.sections with
    | None ->
        (* a vanished section means the bench no longer measures what the
           baseline pinned — that is a gate failure, not a free pass *)
        {
          section = name;
          geomean = None;
          cells = 0;
          missing = List.map fst base_cells;
          ok = false;
        }
    | Some cur_cells ->
        let missing, ratios =
          List.partition_map
            (fun (key, base_v) ->
              match List.assoc_opt key cur_cells with
              | None -> Left key
              | Some cur_v ->
                  let base_v = Float.max base_v epsilon_seconds in
                  let cur_v = Float.max cur_v epsilon_seconds in
                  Right (cur_v /. base_v))
            base_cells
        in
        let geomean =
          match ratios with
          | [] -> None
          | _ ->
              let sum = List.fold_left (fun a r -> a +. log r) 0. ratios in
              Some (exp (sum /. float_of_int (List.length ratios)))
        in
        let ok =
          missing = []
          && match geomean with None -> true | Some g -> g <= tolerance
        in
        { section = name; geomean; cells = List.length ratios; missing; ok }
  in
  let sections = List.map compare_section baseline.sections in
  {
    sections;
    tolerance;
    ok = List.for_all (fun (s : section_report) -> s.ok) sections;
  }

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "perf gate: tolerance %.2fx (geometric mean per section)\n"
       r.tolerance);
  List.iter
    (fun s ->
      let ratio =
        match s.geomean with
        | Some g -> Printf.sprintf "%.3fx over %d cells" g s.cells
        | None -> "no comparable cells"
      in
      let missing =
        match s.missing with
        | [] -> ""
        | ms ->
            Printf.sprintf "; missing: %s"
              (String.concat ", "
                 (if List.length ms > 4 then
                    List.filteri (fun i _ -> i < 4) ms @ [ "..." ]
                  else ms))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-4s %-10s %s%s\n"
           (if s.ok then "ok" else "FAIL")
           s.section ratio missing))
    r.sections;
  Buffer.add_string buf (if r.ok then "PASS" else "FAIL: performance regression");
  Buffer.contents buf
