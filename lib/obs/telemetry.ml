module Sat = Fpgasat_sat

type t = {
  propagations_per_sec : float;
  conflicts_per_sec : float;
  lbd_hist : int array;
  words_allocated : int;
  peak_heap_words : int;
  solve_seconds : float;
}

let lbd_buckets = Sat.Stats.lbd_buckets

let rate count seconds =
  if seconds > 0. then float_of_int count /. seconds else 0.

let of_stats ~solving ~words_allocated (stats : Sat.Stats.t) =
  {
    propagations_per_sec = rate stats.Sat.Stats.propagations solving;
    conflicts_per_sec = rate stats.Sat.Stats.conflicts solving;
    lbd_hist = Array.copy stats.Sat.Stats.lbd_hist;
    words_allocated;
    peak_heap_words = stats.Sat.Stats.peak_heap_words;
    solve_seconds = solving;
  }

(* The histogram is emitted trimmed of trailing zero buckets (most runs
   never learn LBD-15 clauses) and re-padded on parse, keeping the lines
   short without losing information. *)
let to_json t =
  let last =
    let rec go i = if i >= 0 && t.lbd_hist.(i) = 0 then go (i - 1) else i in
    go (Array.length t.lbd_hist - 1)
  in
  let hist = List.init (last + 1) (fun i -> Json.Int t.lbd_hist.(i)) in
  Json.Obj
    [
      ("propagations_per_sec", Json.Float t.propagations_per_sec);
      ("conflicts_per_sec", Json.Float t.conflicts_per_sec);
      ("lbd_hist", Json.List hist);
      ("words_allocated", Json.Int t.words_allocated);
      ("peak_heap_words", Json.Int t.peak_heap_words);
      ("solve_seconds", Json.Float t.solve_seconds);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let get key =
    match Json.find json key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "telemetry: missing key %S" key)
  in
  let num key =
    let* v = get key in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "telemetry: key %S is not a number" key)
  in
  let int key =
    let* v = get key in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "telemetry: key %S is not an integer" key)
  in
  let* propagations_per_sec = num "propagations_per_sec" in
  let* conflicts_per_sec = num "conflicts_per_sec" in
  let* hist = get "lbd_hist" in
  let* buckets =
    match hist with
    | Json.List xs ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match x with
            | Json.Int i -> Ok (i :: acc)
            | _ -> Error "telemetry: lbd_hist entry is not an integer")
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "telemetry: key \"lbd_hist\" is not a list"
  in
  if List.length buckets > lbd_buckets then
    Error
      (Printf.sprintf "telemetry: lbd_hist has %d buckets (max %d)"
         (List.length buckets) lbd_buckets)
  else
    let lbd_hist = Array.make lbd_buckets 0 in
    List.iteri (fun i v -> lbd_hist.(i) <- v) buckets;
    let* words_allocated = int "words_allocated" in
    let* peak_heap_words = int "peak_heap_words" in
    let* solve_seconds = num "solve_seconds" in
    Ok
      {
        propagations_per_sec;
        conflicts_per_sec;
        lbd_hist;
        words_allocated;
        peak_heap_words;
        solve_seconds;
      }

let equal a b =
  let feq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  feq a.propagations_per_sec b.propagations_per_sec
  && feq a.conflicts_per_sec b.conflicts_per_sec
  && Array.length a.lbd_hist = Array.length b.lbd_hist
  && Array.for_all2 ( = ) a.lbd_hist b.lbd_hist
  && a.words_allocated = b.words_allocated
  && a.peak_heap_words = b.peak_heap_words
  && feq a.solve_seconds b.solve_seconds

let pp fmt t =
  Format.fprintf fmt
    "props/s=%.0f conflicts/s=%.0f words_alloc=%d peak_heap_words=%d"
    t.propagations_per_sec t.conflicts_per_sec t.words_allocated
    t.peak_heap_words
