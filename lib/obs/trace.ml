module Sat = Fpgasat_sat

type kind =
  | Solve_begin
  | Solve_end
  | Restart
  | Reduce_db
  | Simplify_round
  | Memout_poll
  | Retry
  | Quarantine
  | Inprocess

let kind_name = function
  | Solve_begin -> "solve_begin"
  | Solve_end -> "solve_end"
  | Restart -> "restart"
  | Reduce_db -> "reduce_db"
  | Simplify_round -> "simplify_round"
  | Memout_poll -> "memout_poll"
  | Retry -> "retry"
  | Quarantine -> "quarantine"
  | Inprocess -> "inprocess"

let kind_to_int = function
  | Solve_begin -> 0
  | Solve_end -> 1
  | Restart -> 2
  | Reduce_db -> 3
  | Simplify_round -> 4
  | Memout_poll -> 5
  | Retry -> 6
  | Quarantine -> 7
  | Inprocess -> 8

let kind_of_int = function
  | 0 -> Solve_begin
  | 1 -> Solve_end
  | 2 -> Restart
  | 3 -> Reduce_db
  | 4 -> Simplify_round
  | 5 -> Memout_poll
  | 6 -> Retry
  | 7 -> Quarantine
  | 8 -> Inprocess
  | n -> invalid_arg (Printf.sprintf "Trace.kind_of_int: %d" n)

(* Parallel arrays, not an event-record array: floats stay unboxed in the
   flat [ts] array and the int fields are immediates, so a [record] is four
   stores plus one fetch-and-add — no allocation on the hot path. The write
   index only ever grows; slot [i land (capacity-1)] holds the [i]-th event,
   so once the ring wraps the retained window is the most recent
   [capacity] events. *)
type t = {
  ts : float array;
  kinds : int array;
  a : int array;
  b : int array;
  capacity : int;
  next : int Atomic.t;
  epoch : float;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  (* power of two so the slot index is a mask, not a division *)
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let capacity = !cap in
  {
    ts = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    a = Array.make capacity 0;
    b = Array.make capacity 0;
    capacity;
    next = Atomic.make 0;
    epoch = Unix.gettimeofday ();
  }

let capacity t = t.capacity
let total t = Atomic.get t.next
let length t = min (total t) t.capacity
let epoch t = t.epoch

(* The slot claim is atomic; the four stores are not. A torn slot needs two
   domains [capacity] events apart inside the same few stores — acceptable
   for a diagnostic buffer, and the claim keeps indices unique. *)
let record t kind a b =
  let i = Atomic.fetch_and_add t.next 1 land (t.capacity - 1) in
  t.ts.(i) <- Unix.gettimeofday ();
  t.kinds.(i) <- kind_to_int kind;
  t.a.(i) <- a;
  t.b.(i) <- b

(* Positional (not optional-labelled) arguments: an optional argument would
   box its [Some] at every call and defeat the disabled-mode
   zero-allocation guarantee that test_obs pins down. *)
let record_opt t kind a b =
  match t with None -> () | Some t -> record t kind a b

type event = { ts : float; kind : kind; a : int; b : int }

let events t =
  let n = total t in
  let kept = min n t.capacity in
  let first = n - kept in
  List.init kept (fun j ->
      let i = (first + j) land (t.capacity - 1) in
      { ts = t.ts.(i); kind = kind_of_int t.kinds.(i); a = t.a.(i); b = t.b.(i) })

let sink t =
  let open Sat.Event in
  fun e ->
    match e with
    | Restart n -> record t Restart n 0
    | Reduce_db (before, deleted) -> record t Reduce_db before deleted
    | Memout_poll words -> record t Memout_poll words 0
    | Simplify_round n -> record t Simplify_round n 0
    | Inprocess (strengthened, removed) -> record t Inprocess strengthened removed

let sink_opt = function None -> None | Some t -> Some (sink t)

(* ---------- serialisation ---------- *)

let schema_version = "fpgasat.trace/1"

let to_json t =
  let dropped = total t - length t in
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("epoch", Json.Float t.epoch);
      ("capacity", Json.Int t.capacity);
      ("dropped", Json.Int dropped);
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("ts", Json.Float e.ts);
                   ("kind", Json.String (kind_name e.kind));
                   ("a", Json.Int e.a);
                   ("b", Json.Int e.b);
                 ])
             (events t)) );
    ]

(* Chrome trace_event JSON (chrome://tracing, Perfetto, speedscope):
   instants ("ph":"i") for point events, with the paired
   Solve_begin/Solve_end rendered as one complete span ("ph":"X"). The
   [ts] unit is microseconds from the trace epoch. *)
let micros t ts = (ts -. t.epoch) *. 1e6

let chrome_args e =
  match e.kind with
  | Restart -> [ ("count", Json.Int e.a) ]
  | Reduce_db -> [ ("learnts", Json.Int e.a); ("deleted", Json.Int e.b) ]
  | Simplify_round -> [ ("round", Json.Int e.a) ]
  | Memout_poll -> [ ("heap_words", Json.Int e.a) ]
  | Retry -> [ ("attempt", Json.Int e.a) ]
  | Quarantine -> [ ("attempts", Json.Int e.a) ]
  | Inprocess -> [ ("strengthened", Json.Int e.a); ("literals", Json.Int e.b) ]
  | Solve_begin | Solve_end -> [ ("width", Json.Int e.a) ]

let to_chrome ?(pid = 1) ?(tid = 1) t =
  let base name ph ts extra =
    Json.Obj
      ([
         ("name", Json.String name);
         ("ph", Json.String ph);
         ("ts", Json.Float ts);
         ("pid", Json.Int pid);
         ("tid", Json.Int tid);
       ]
      @ extra)
  in
  let rec emit pending_begin acc = function
    | [] -> List.rev acc
    | e :: rest -> (
        match e.kind with
        | Solve_begin -> emit (Some e) acc rest
        | Solve_end ->
            let span =
              match pending_begin with
              | Some b ->
                  base "solve" "X" (micros t b.ts)
                    [
                      ("dur", Json.Float (micros t e.ts -. micros t b.ts));
                      ("args", Json.Obj (chrome_args b));
                    ]
              | None ->
                  base "solve_end" "i" (micros t e.ts)
                    [ ("s", Json.String "t"); ("args", Json.Obj (chrome_args e)) ]
            in
            emit None (span :: acc) rest
        | _ ->
            let ev =
              base (kind_name e.kind) "i" (micros t e.ts)
                [ ("s", Json.String "t"); ("args", Json.Obj (chrome_args e)) ]
            in
            emit pending_begin (ev :: acc) rest)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (emit None [] (events t)));
      ("displayTimeUnit", Json.String "ms");
    ]
