(** A low-overhead in-memory ring buffer of timestamped solver events.

    One trace collects the lifecycle events of any number of solver runs:
    restarts, learnt-database reductions, preprocessor rounds, memory polls
    ({!Fpgasat_sat.Event.t} via {!sink}), plus engine-level retry and
    quarantine marks and solve begin/end spans recorded directly. Recording
    is four array stores and an atomic fetch-and-add — no allocation — so a
    trace can stay attached to production sweeps; multiple domains may
    record into one trace concurrently. The buffer keeps the most recent
    [capacity] events (power of two, default 4096); older ones are
    overwritten and only counted.

    When tracing is {e disabled} the cost is zero: {!record_opt} on [None]
    is a single match, and a solver with [on_event = None] never allocates
    an event (test_obs pins both down as allocation-free).

    Dumps: {!to_json} is the stable [fpgasat.trace/1] schema; {!to_chrome}
    is the Chrome [trace_event] format loadable in [chrome://tracing],
    Perfetto or speedscope. *)

type kind =
  | Solve_begin  (** [a] = width. Paired with the next {!Solve_end}. *)
  | Solve_end  (** [a] = width, [b] = 1 if the outcome was decisive. *)
  | Restart  (** [a] = cumulative restart count. *)
  | Reduce_db  (** [a] = learnt clauses before, [b] = deleted. *)
  | Simplify_round  (** [a] = 1-based round. *)
  | Memout_poll  (** [a] = major-heap words at the poll. *)
  | Retry  (** [a] = attempt number about to start (≥ 2). *)
  | Quarantine  (** [a] = attempts spent before giving up. *)
  | Inprocess
      (** [a] = clauses strengthened or deleted, [b] = literals removed by
          one bounded inprocessing pass. *)

val kind_name : kind -> string

type t

val default_capacity : int
(** 4096 events. *)

val create : ?capacity:int -> unit -> t
(** A fresh trace; [capacity] (default {!default_capacity}) is rounded up
    to a power of two. The creation instant becomes the {!epoch} that
    {!to_chrome} timestamps are relative to. *)

val record : t -> kind -> int -> int -> unit
(** [record t kind a b] appends one event stamped with the current wall
    clock. Safe from any domain; allocation-free. *)

val record_opt : t option -> kind -> int -> int -> unit
(** {!record} when a trace is attached, nothing otherwise. Arguments are
    positional so the disabled call allocates nothing (optional-labelled
    ints would box). *)

val sink : t -> Fpgasat_sat.Event.t -> unit
(** The adapter for {!Fpgasat_sat.Solver.budget.on_event}: maps solver
    events onto {!record}. *)

val sink_opt : t option -> (Fpgasat_sat.Event.t -> unit) option
(** [sink] lifted to the optional hook field. *)

val capacity : t -> int
val total : t -> int
(** Events ever recorded, including overwritten ones. *)

val length : t -> int
(** Events currently retained: [min (total t) (capacity t)]. *)

val epoch : t -> float
(** Creation time (Unix seconds). *)

type event = { ts : float; kind : kind; a : int; b : int }

val events : t -> event list
(** The retained window in recording order (oldest first). Not
    synchronised with concurrent recorders: a snapshot taken while solvers
    are still running may contain a torn in-flight slot. *)

val schema_version : string
(** ["fpgasat.trace/1"]. *)

val to_json : t -> Json.t
(** [{"schema":"fpgasat.trace/1","epoch":s,"capacity":n,"dropped":n,
    "events":[{"ts":s,"kind":...,"a":n,"b":n},...]}] — [dropped] counts
    overwritten events. *)

val to_chrome : ?pid:int -> ?tid:int -> t -> Json.t
(** Chrome [trace_event] JSON: point events as instants ([ph:"i"]),
    {!Solve_begin}/{!Solve_end} pairs as complete spans ([ph:"X"]);
    timestamps in microseconds from {!epoch}. *)
