type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest decimal form that parses back to the same float, forced to
   contain '.' or 'e' so the parser reads it back as a Float *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  let has_mark =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
  in
  if has_mark then s else s ^ ".0"

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_fail of string

let fail pos msg = raise (Parse_fail (Printf.sprintf "at offset %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail !pos (Printf.sprintf "expected %C, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | Some _ | None -> false
    do
      advance ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                if cp >= 0xd800 && cp <= 0xdbff then begin
                  (* high surrogate: combine with the following low one *)
                  if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xdc00 || lo > 0xdfff then
                      fail !pos "invalid low surrogate";
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  end
                  else fail !pos "lone high surrogate"
                end
                else cp
              in
              add_utf8 buf cp
          | Some c -> fail !pos (Printf.sprintf "bad escape \\%C" c)
          | None -> fail !pos "truncated escape");
          loop ()
      | Some c when Char.code c < 0x20 -> fail !pos "raw control char in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let continue () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> true
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          true
      | Some _ | None -> false
    in
    while continue () do
      advance ()
    done;
    if !pos = start then fail start "expected a value";
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail start (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail start (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let binding () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ binding () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := binding () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
    | None -> fail !pos "expected a value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail m -> Error m

(* ---------- accessors ---------- *)

let find v key =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b ->
      Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | String a, String b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
      List.equal (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false
