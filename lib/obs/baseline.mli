(** Benchmark baselines and the perf-regression gate.

    A baseline is a named set of sections, each a flat [cell → seconds]
    map — the durable JSON form of one bench run ([fpgasat.bench/1]).
    {!compare} judges a current run against a committed baseline by the
    geometric mean of per-cell time ratios within each section; a section
    regresses when its mean ratio exceeds the tolerance. This is what
    [bench --baseline BENCH_seed.json --gate 1.25] (and the CI perf-gate
    job) runs on.

    Robustness rules, pinned by test_obs:
    - a baseline section absent from the current run {b fails} the gate
      (the bench silently dropping a measurement must not pass);
    - a baseline cell absent from its current section likewise fails and
      is listed in [missing];
    - sections/cells only in the current run are ignored (adding benches
      never fails the gate);
    - times are clamped to 1 µs before forming ratios, so zero-time cells
      compare as equal instead of dividing by zero. *)

type t

val schema_version : string
(** ["fpgasat.bench/1"]. *)

val default_tolerance : float
(** 1.25 — a section may be up to 25 % slower (geometric mean) before the
    gate fails. *)

val make : (string * (string * float) list) list -> t
(** [make [section, [cell, seconds; ...]; ...]]. *)

val sections : t -> (string * (string * float) list) list

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result
val of_file : string -> (t, string) result
(** [Error] on unreadable files as well as on parse failures. *)

val to_file : string -> t -> unit

type section_report = {
  section : string;
  geomean : float option;
      (** Geometric mean of current/baseline ratios over the cells present
          in both; [None] when no cell is comparable. *)
  cells : int;  (** Cells compared. *)
  missing : string list;  (** Baseline cells absent from the current run. *)
  ok : bool;
}

type report = {
  sections : section_report list;  (** One per {e baseline} section. *)
  tolerance : float;
  ok : bool;  (** All sections ok. *)
}

val compare : ?tolerance:float -> baseline:t -> current:t -> unit -> report
(** Raises [Invalid_argument] on a non-positive tolerance. *)

val render : report -> string
(** Human-readable multi-line verdict ending in [PASS] or [FAIL: ...]. *)
