(** Power-law fitting over dimensional sweep records, the
    [fpgasat.scaling/1] schema, and the exponent-based regression gate.

    A dimensional sweep measures each strategy on a grid of instance sizes;
    this module turns those measurements into per-strategy, per-dimension
    scaling laws [t ≈ C · x^e] by least squares on [log t] against
    [log x] — and gates CI on the fitted exponent [e], so a perf
    regression is caught in the {e growth rate}, not just one cell.

    Fitting is {b pooled with per-group intercepts}: when the dimension
    [x] varies while other dimensions also take several values, every
    combination of the other dimensions forms a {e group} with its own
    intercept (its own constant [C]) but all groups share one slope. On a
    full cartesian grid this uses every cell for every dimension's fit
    instead of only the cells on one axis line, which is what makes tiny
    2×2×2 CI sweeps statistically usable.

    All functions are pure: the same points produce bit-identical fits on
    every machine, so a fit over a committed JSONL record set is fully
    deterministic. *)

type point = {
  x : float;  (** The dimension value (e.g. net count). *)
  y : float;  (** Seconds; clamped to 1 µs before the log. *)
  group : string;
      (** The values of every {e other} dimension, serialised — points
          with equal [group] share an intercept. *)
}

type fit = {
  strategy : string;
  dimension : string;
  exponent : float;  (** The fitted power [e] of [t ≈ C · x^e]. *)
  intercepts : (string * float) list;
      (** Per-group [ln C], in first-appearance order of the groups. *)
  r2 : float;
      (** Coefficient of determination of the pooled log-log fit; [1.]
          when the within-group variance is zero. *)
  points : int;  (** Points the fit used. *)
  censored : int;
      (** Cells excluded before fitting (timeout / memout / crashed) —
          carried for honesty in reports; censored cells never enter the
          fit. *)
}

val min_seconds : float
(** 1e-6 — times are clamped here before taking logs, so zero- and
    µs-level cells fit as equal instead of producing [-inf]. *)

val power_law :
  strategy:string ->
  dimension:string ->
  ?censored:int ->
  point list ->
  (fit, string) result
(** Pooled log-log least squares. [Error] when fewer than two points
    exist or no group contains two distinct [x] values (a slope is then
    undefined). *)

val eval : fit -> group:string -> float -> float
(** [eval fit ~group x] is the fitted seconds at [x] for that group's
    intercept (the mean intercept when the group is unknown). *)

val residuals : fit -> point list -> float list
(** Log-space residuals [ln y - (ln C_g + e ln x)], in point order. *)

val crossover_of_fits : fit -> fit -> float option
(** The [x] where two strategies' fitted curves (mean intercepts) cross:
    [exp ((i2 - i1) / (e1 - e2))]. [None] for (near-)parallel exponents
    or a non-finite solution. *)

(** {1 The scaling document} *)

type crossover = {
  dimension : string;
  slow : string;  (** Strategy with the larger exponent… *)
  fast : string;  (** …overtakes this one past [at]. *)
  at : float;
}

type scaling = {
  seed : int;  (** Generator seed the records came from. *)
  family : string;  (** ["sat"], ["unsat"] or ["mixed"]. *)
  fits : fit list;
  crossovers : crossover list;
}

val schema_version : string
(** ["fpgasat.scaling/1"]. *)

val to_json : scaling -> Json.t
val of_json : Json.t -> (scaling, string) result
val of_string : string -> (scaling, string) result

val of_file : string -> (scaling, string) result
(** [Error] on unreadable files as well as on parse failures. *)

val to_file : string -> scaling -> unit

val equal : scaling -> scaling -> bool
(** Structural; floats compared bit-exactly (round-trip property). *)

val render : scaling -> string
(** The fitted-exponent table plus crossover lines — "encoding X is
    O(n^1.4), Y is O(n^2.1), crossover at n≈37". *)

(** {1 The exponent gate} *)

type gate_cell = {
  g_strategy : string;
  g_dimension : string;
  baseline_exponent : float;
  current_exponent : float option;  (** [None]: missing from the run. *)
  cell_ok : bool;
}

type gate_report = {
  cells : gate_cell list;  (** One per {e baseline} fit. *)
  tolerance : float;
  gate_ok : bool;
}

val default_tolerance : float
(** 1.0 — a fitted exponent may drift up to one power above the committed
    baseline before the gate fails. Exponents fitted from two points per
    axis on centisecond cells carry roughly half a power of timing noise;
    the regressions this gate exists for (an accidental extra factor of
    the instance size in a hot path) move them by two powers or more. *)

val gate :
  ?tolerance:float -> baseline:scaling -> current:scaling -> unit -> gate_report
(** For every baseline fit: the matching (strategy, dimension) must exist
    in the current run (a vanished curve fails the gate) and its exponent
    must not exceed the baseline exponent by more than [tolerance].
    Shrinking exponents and extra current fits are fine. Raises
    [Invalid_argument] on a non-positive tolerance. *)

val render_gate : gate_report -> string
(** Human-readable verdict ending in [PASS] or [FAIL: ...]. *)
