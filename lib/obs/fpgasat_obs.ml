(** Observability: tracing, telemetry, and the performance baseline gate.

    {!Json} is the dependency-free JSON substrate the whole stack shares
    (re-exported by [Fpgasat_engine] for compatibility); {!Trace} is a
    fixed-size allocation-free ring buffer of timestamped solver events
    with JSON and Chrome [trace_event] dumps; {!Telemetry} derives per-solve
    rates (propagations/s, conflicts/s, LBD histogram, allocation, peak
    heap) that ride the run-record schema; {!Baseline} compares two bench
    JSON files and powers the CI perf-regression gate; {!Fit} fits
    power-law scaling exponents over dimensional sweeps and powers the
    exponent-regression gate. *)

module Json = Json
module Trace = Trace
module Telemetry = Telemetry
module Baseline = Baseline
module Fit = Fit
