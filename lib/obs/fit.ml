let schema_version = "fpgasat.scaling/1"
let default_tolerance = 1.0
let min_seconds = 1e-6

type point = { x : float; y : float; group : string }

type fit = {
  strategy : string;
  dimension : string;
  exponent : float;
  intercepts : (string * float) list;
  r2 : float;
  points : int;
  censored : int;
}

(* ---------- least squares ---------- *)

(* Pooled OLS: one slope shared by all groups, one intercept per group.
   Centering each point on its group's means eliminates the intercepts
   from the slope estimate, so the slope is the classic Sxy/Sxx over the
   within-group deviations. *)
let power_law ~strategy ~dimension ?(censored = 0) pts =
  if List.length pts < 2 then
    Error
      (Printf.sprintf "fit %s/%s: need at least 2 points, have %d" strategy
         dimension (List.length pts))
  else
    let logs =
      List.map
        (fun p -> (p.group, log p.x, log (Float.max p.y min_seconds)))
        pts
    in
    let groups =
      List.fold_left
        (fun acc (g, _, _) -> if List.mem g acc then acc else g :: acc)
        [] logs
      |> List.rev
    in
    let means =
      List.map
        (fun g ->
          let mine = List.filter (fun (g', _, _) -> g' = g) logs in
          let n = float_of_int (List.length mine) in
          let sx = List.fold_left (fun a (_, lx, _) -> a +. lx) 0. mine in
          let sy = List.fold_left (fun a (_, _, ly) -> a +. ly) 0. mine in
          (g, sx /. n, sy /. n))
        groups
    in
    let mean_of g =
      let _, mx, my = List.find (fun (g', _, _) -> g' = g) means in
      (mx, my)
    in
    let sxx, sxy, syy =
      List.fold_left
        (fun (sxx, sxy, syy) (g, lx, ly) ->
          let mx, my = mean_of g in
          let dx = lx -. mx and dy = ly -. my in
          (sxx +. (dx *. dx), sxy +. (dx *. dy), syy +. (dy *. dy)))
        (0., 0., 0.) logs
    in
    if sxx <= 0. then
      Error
        (Printf.sprintf
           "fit %s/%s: no group varies along %s (slope undefined)" strategy
           dimension dimension)
    else
      let exponent = sxy /. sxx in
      let intercepts =
        List.map (fun (g, mx, my) -> (g, my -. (exponent *. mx))) means
      in
      let ss_res =
        List.fold_left
          (fun acc (g, lx, ly) ->
            let i = List.assoc g intercepts in
            let r = ly -. (i +. (exponent *. lx)) in
            acc +. (r *. r))
          0. logs
      in
      let r2 = if syy <= 0. then 1. else 1. -. (ss_res /. syy) in
      Ok
        {
          strategy;
          dimension;
          exponent;
          intercepts;
          r2;
          points = List.length pts;
          censored;
        }

let mean_intercept f =
  match f.intercepts with
  | [] -> 0.
  | is ->
      List.fold_left (fun a (_, i) -> a +. i) 0. is
      /. float_of_int (List.length is)

let eval f ~group x =
  let i =
    match List.assoc_opt group f.intercepts with
    | Some i -> i
    | None -> mean_intercept f
  in
  exp (i +. (f.exponent *. log x))

let residuals f pts =
  List.map
    (fun p ->
      let i =
        match List.assoc_opt p.group f.intercepts with
        | Some i -> i
        | None -> mean_intercept f
      in
      log (Float.max p.y min_seconds) -. (i +. (f.exponent *. log p.x)))
    pts

let crossover_of_fits f1 f2 =
  let de = f1.exponent -. f2.exponent in
  if Float.abs de < 1e-9 then None
  else
    let x = exp ((mean_intercept f2 -. mean_intercept f1) /. de) in
    if Float.is_finite x && x > 0. then Some x else None

(* ---------- the scaling document ---------- *)

type crossover = { dimension : string; slow : string; fast : string; at : float }

type scaling = {
  seed : int;
  family : string;
  fits : fit list;
  crossovers : crossover list;
}

let fit_to_json f =
  Json.Obj
    [
      ("strategy", Json.String f.strategy);
      ("dimension", Json.String f.dimension);
      ("exponent", Json.Float f.exponent);
      ( "intercepts",
        Json.Obj (List.map (fun (g, i) -> (g, Json.Float i)) f.intercepts) );
      ("r2", Json.Float f.r2);
      ("points", Json.Int f.points);
      ("censored", Json.Int f.censored);
    ]

let crossover_to_json c =
  Json.Obj
    [
      ("dimension", Json.String c.dimension);
      ("slow", Json.String c.slow);
      ("fast", Json.String c.fast);
      ("at", Json.Float c.at);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("seed", Json.Int t.seed);
      ("family", Json.String t.family);
      ("fits", Json.List (List.map fit_to_json t.fits));
      ("crossovers", Json.List (List.map crossover_to_json t.crossovers));
    ]

let ( let* ) = Result.bind

let field_string json key =
  match Json.find json key with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "key %S is not a string" key)
  | None -> Error (Printf.sprintf "missing key %S" key)

let field_int json key =
  match Json.find json key with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "key %S is not an integer" key)
  | None -> Error (Printf.sprintf "missing key %S" key)

let field_float json key =
  match Json.find json key with
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ -> Error (Printf.sprintf "key %S is not a number" key)
  | None -> Error (Printf.sprintf "missing key %S" key)

let field_list json key =
  match Json.find json key with
  | Some (Json.List l) -> Ok l
  | Some _ -> Error (Printf.sprintf "key %S is not a list" key)
  | None -> Error (Printf.sprintf "missing key %S" key)

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let fit_of_json json =
  let* strategy = field_string json "strategy" in
  let* dimension = field_string json "dimension" in
  let* exponent = field_float json "exponent" in
  let* intercepts =
    match Json.find json "intercepts" with
    | Some (Json.Obj kvs) ->
        map_result
          (fun (g, v) ->
            match v with
            | Json.Float f -> Ok (g, f)
            | Json.Int i -> Ok (g, float_of_int i)
            | _ -> Error (Printf.sprintf "intercept %S is not a number" g))
          kvs
    | Some _ -> Error "key \"intercepts\" is not an object"
    | None -> Error "missing key \"intercepts\""
  in
  let* r2 = field_float json "r2" in
  let* points = field_int json "points" in
  let* censored = field_int json "censored" in
  Ok { strategy; dimension; exponent; intercepts; r2; points; censored }

let crossover_of_json json =
  let* dimension = field_string json "dimension" in
  let* slow = field_string json "slow" in
  let* fast = field_string json "fast" in
  let* at = field_float json "at" in
  Ok { dimension; slow; fast; at }

let of_json json =
  let* schema = field_string json "schema" in
  if schema <> schema_version then
    Error
      (Printf.sprintf "unsupported schema %S (want %S)" schema schema_version)
  else
    let* seed = field_int json "seed" in
    let* family = field_string json "family" in
    let* fits = field_list json "fits" in
    let* fits = map_result fit_of_json fits in
    let* crossovers = field_list json "crossovers" in
    let* crossovers = map_result crossover_of_json crossovers in
    Ok { seed; family; fits; crossovers }

let of_string s =
  match Json.of_string s with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok json -> of_json json

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> of_string contents

let to_file path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

let equal a b = Json.equal (to_json a) (to_json b)

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "scaling fits (seed %d, %s family): t ~ C * x^e\n" t.seed
       t.family);
  Buffer.add_string buf
    (Printf.sprintf "  %-36s %-6s %9s %7s %4s %5s\n" "strategy" "dim"
       "exponent" "r2" "pts" "cens");
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %-36s %-6s %9.3f %7.3f %4d %5d\n" f.strategy
           f.dimension f.exponent f.r2 f.points f.censored))
    t.fits;
  (* The headline reading: per dimension, each strategy's big-O and where
     the curves cross. *)
  let dims =
    List.fold_left
      (fun acc (f : fit) ->
        if List.mem f.dimension acc then acc else f.dimension :: acc)
      [] t.fits
    |> List.rev
  in
  List.iter
    (fun dim ->
      let here =
        List.filter (fun (f : fit) -> f.dimension = dim) t.fits
      in
      let os =
        List.map
          (fun (f : fit) ->
            Printf.sprintf "%s is O(%s^%.1f)" f.strategy dim f.exponent)
          here
      in
      if os <> [] then
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" dim (String.concat ", " os));
      List.iter
        (fun c ->
          if c.dimension = dim then
            Buffer.add_string buf
              (Printf.sprintf "  crossover: %s overtakes %s beyond %s ~ %.0f\n"
                 c.slow c.fast dim c.at))
        t.crossovers)
    dims;
  Buffer.contents buf

(* ---------- the exponent gate ---------- *)

type gate_cell = {
  g_strategy : string;
  g_dimension : string;
  baseline_exponent : float;
  current_exponent : float option;
  cell_ok : bool;
}

type gate_report = {
  cells : gate_cell list;
  tolerance : float;
  gate_ok : bool;
}

let gate ?(tolerance = default_tolerance) ~baseline ~current () =
  if tolerance <= 0. then invalid_arg "Fit.gate: tolerance <= 0";
  let cells =
    List.map
      (fun (b : fit) ->
        let cur =
          List.find_opt
            (fun (c : fit) ->
              c.strategy = b.strategy && c.dimension = b.dimension)
            current.fits
        in
        match cur with
        | None ->
            (* a vanished curve means the sweep no longer measures what the
               baseline pinned — a gate failure, not a free pass *)
            {
              g_strategy = b.strategy;
              g_dimension = b.dimension;
              baseline_exponent = b.exponent;
              current_exponent = None;
              cell_ok = false;
            }
        | Some c ->
            {
              g_strategy = b.strategy;
              g_dimension = b.dimension;
              baseline_exponent = b.exponent;
              current_exponent = Some c.exponent;
              cell_ok = c.exponent <= b.exponent +. tolerance;
            })
      baseline.fits
  in
  { cells; tolerance; gate_ok = List.for_all (fun c -> c.cell_ok) cells }

let render_gate r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "scaling gate: fitted exponent may exceed baseline by at most %.2f\n"
       r.tolerance);
  List.iter
    (fun c ->
      let cur =
        match c.current_exponent with
        | Some e -> Printf.sprintf "%.3f" e
        | None -> "missing"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-4s %-36s %-6s baseline %.3f, current %s\n"
           (if c.cell_ok then "ok" else "FAIL")
           c.g_strategy c.g_dimension c.baseline_exponent cur))
    r.cells;
  Buffer.add_string buf
    (if r.gate_ok then "PASS" else "FAIL: scaling exponent regression");
  Buffer.contents buf
