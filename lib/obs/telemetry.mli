(** Derived per-solve performance metrics.

    A {!t} condenses one solver episode ({!Fpgasat_sat.Stats.t} plus the
    measured solve time and allocation) into the rates the performance
    trajectory tracks: propagation and conflict throughput, the
    learnt-clause LBD histogram, words allocated by encode+solve, and the
    peak heap observed. It rides on the [fpgasat.run/1] record schema as
    the backward-compatible optional ["telemetry"] key. *)

type t = {
  propagations_per_sec : float;  (** 0 when the solve took no time. *)
  conflicts_per_sec : float;
  lbd_hist : int array;
      (** Copy of {!Fpgasat_sat.Stats.t.lbd_hist}; length {!lbd_buckets}. *)
  words_allocated : int;
      (** Heap words allocated while encoding and solving
          ([Gc.allocated_bytes] delta), this domain only. *)
  peak_heap_words : int;
      (** {!Fpgasat_sat.Stats.t.peak_heap_words} of the episode. *)
  solve_seconds : float;  (** The wall-clock denominator of the rates. *)
}

val lbd_buckets : int
(** = {!Fpgasat_sat.Stats.lbd_buckets}. *)

val of_stats :
  solving:float -> words_allocated:int -> Fpgasat_sat.Stats.t -> t
(** Derive the metrics from raw solver statistics; the histogram is
    copied, not aliased. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Round-trips {!to_json} exactly. The histogram is serialised with
    trailing zero buckets trimmed and re-padded on parse. *)

val equal : t -> t -> bool
(** Structural; floats compared bit-exactly. *)

val pp : Format.formatter -> t -> unit
