(** The solve server's wire protocol: line-delimited JSON over a Unix
    socket.

    One request per line, one response per line, both single-line compact
    JSON ({!Fpgasat_obs.Json}). The solve payload of a successful [route]
    response {e is} an [fpgasat.run/1] record object — the same schema the
    sweep engine writes to JSONL files ({!Fpgasat_engine.Run_record}) — so
    a client can pipe served runs straight into the existing tables and
    resume tooling.

    Request ([fpgasat.req/1]):
    {v
    {"schema":"fpgasat.req/1","id":"r1","op":"route","benchmark":"alu2",
     "width":4,"strategy":"ITE-linear-2+muldirect/s1@siege",
     "max_conflicts":n?,"max_seconds":f?,"max_memory_mb":n?,
     "deadline_ms":n?,"certify":true?,"telemetry":true?,"fault":"kind"?}
    v}

    Response ([fpgasat.resp/1]):
    {v
    {"schema":"fpgasat.resp/1","id":"r1",
     "status":"ok|error|overloaded|shutting_down|deadline_exceeded",
     "served_by":"cache|warm|cold"?,"run":{fpgasat.run/1}?,
     "min_width":n?,"payload":{}?,"error":"msg"?}
    v} *)

val request_schema : string
(** ["fpgasat.req/1"]. *)

val response_schema : string
(** ["fpgasat.resp/1"]. *)

type op =
  | Route  (** Width query on a benchmark; needs [benchmark] and [width]. *)
  | Min_width  (** Minimal width of a benchmark; needs [benchmark]. *)
  | Ping
  | Stats  (** Server counters as the response [payload]. *)
  | Shutdown  (** Ask the server to drain and exit. *)
  | Sleep of float
      (** Occupy one worker for the given seconds — a deterministic load
          generator for overload and drain tests. Rejected unless the
          server was started with [test_ops]. *)

val op_name : op -> string

type request = {
  id : string option;  (** Echoed back verbatim in the response. *)
  op : op;
  benchmark : string;  (** [""] for ops that take none. *)
  width : int;  (** [0] for ops that take none. *)
  strategy : string option;
      (** {!Fpgasat_core.Strategy.of_name} form; server default when
          absent. Malformed or out-of-registry names are a protocol
          [error], never a crash ({!Fpgasat_encodings.Registry.of_name}). *)
  max_conflicts : int option;
  max_seconds : float option;
  max_memory_mb : int option;
      (** Per-request budget; the server caps each field with its own
          configured ceilings. *)
  deadline_ms : int option;
      (** Total time the client is willing to wait, measured from the
          moment the server receives the line. The server subtracts queue
          wait before solving and maps the remainder onto the solver's
          wall-clock budget; a request whose deadline passed while queued
          is shed with a [deadline_exceeded] response instead of running.
          Not part of the cache key (it only shrinks the budget; a
          decisive answer is decisive whatever deadline it beat). *)
  certify : bool;
      (** Independently check the answer. Certified requests bypass the
          warm session (a per-query UNSAT under selector assumptions is
          not a standalone DRAT refutation) and take the cold
          {!Fpgasat_core.Flow.submit} path. *)
  telemetry : bool;
  fault : string option;
      (** Chaos injection ({!Fpgasat_engine.Chaos.Server.fault_name}
          kinds); only honoured when the server runs with [test_ops],
          a protocol [error] otherwise. *)
}

val request :
  ?id:string ->
  ?strategy:string ->
  ?max_conflicts:int ->
  ?max_seconds:float ->
  ?max_memory_mb:int ->
  ?deadline_ms:int ->
  ?certify:bool ->
  ?telemetry:bool ->
  ?fault:string ->
  ?benchmark:string ->
  ?width:int ->
  op ->
  request

val idempotent : op -> bool
(** The ops a client may retry blind ([route], [min_width], [ping],
    [stats]): re-running them cannot change server state beyond counters.
    [shutdown] and [sleep] are not. {!Client.call_with_retry} refuses to
    retry non-idempotent requests. *)

val budget_of_request : request -> Fpgasat_sat.Solver.budget
val budget_signature : request -> string
(** Stable textual identity of the request budget — part of the
    answer-cache key, because a timeout under one budget says nothing
    about another. *)

val request_to_json : request -> Fpgasat_obs.Json.t
val request_of_json : Fpgasat_obs.Json.t -> (request, string) result
val parse_request : string -> (request, string) result
(** One line → request. *)

type served_by =
  | Cache  (** Answered from the LRU answer cache; no solver ran. *)
  | Warm  (** Answered by a warm session's incremental ladder. *)
  | Cold  (** Full {!Fpgasat_core.Flow.submit} pipeline. *)

val served_by_name : served_by -> string

type status =
  | Done
  | Failed  (** Protocol or execution error; see [message]. *)
  | Overloaded  (** Admission control rejected the request: backlog full. *)
  | Shutting_down  (** Drain has begun; no new work is admitted. *)
  | Deadline_exceeded
      (** The request's [deadline_ms] passed before a solver could start
          (shed from the queue) or the deadline-capped budget ran out
          mid-solve. No answer is implied — retry with a larger deadline
          if the answer still matters. *)

val status_name : status -> string

type response = {
  resp_id : string option;
  status : status;
  served_by : served_by option;
  run : Fpgasat_obs.Json.t option;  (** An [fpgasat.run/1] record object. *)
  min_width : int option;
  payload : Fpgasat_obs.Json.t option;
  message : string option;
}

val response :
  ?id:string ->
  ?served_by:served_by ->
  ?run:Fpgasat_obs.Json.t ->
  ?min_width:int ->
  ?payload:Fpgasat_obs.Json.t ->
  ?message:string ->
  status ->
  response

val response_to_json : response -> Fpgasat_obs.Json.t
val response_of_json : Fpgasat_obs.Json.t -> (response, string) result
val parse_response : string -> (response, string) result
