module Sat = Fpgasat_sat
module G = Fpgasat_graph
module F = Fpgasat_fpga
module C = Fpgasat_core
module Obs = Fpgasat_obs

type t = {
  benchmark : string;
  strategy : C.Strategy.t;
  route : F.Global_route.t;
  ladder : C.Incremental_width.ladder;
  greedy : G.Coloring.t;
  lower : int;
  upper : int;
  cnf_vars : int;
  cnf_clauses : int;
  cnf_hash : int64;
  prepare_seconds : float;
  mutex : Mutex.t;
  mutable served : int;
}

let create ~benchmark strategy (inst : F.Benchmarks.instance) =
  let t0 = Unix.gettimeofday () in
  let ladder = C.Incremental_width.prepare ~strategy inst.F.Benchmarks.graph in
  let lower, upper = C.Incremental_width.bounds ladder in
  let cnf_vars, cnf_clauses = C.Incremental_width.cnf_size ladder in
  {
    benchmark;
    strategy;
    route = inst.F.Benchmarks.route;
    ladder;
    greedy = G.Greedy.dsatur inst.F.Benchmarks.graph;
    lower;
    upper;
    cnf_vars;
    cnf_clauses;
    cnf_hash = C.Incremental_width.cnf_hash ladder;
    prepare_seconds = Unix.gettimeofday () -. t0;
    mutex = Mutex.create ();
    served = 0;
  }

let benchmark t = t.benchmark
let strategy t = t.strategy
let route t = t.route
let bounds t = (t.lower, t.upper)
let served t = t.served
let prepare_seconds t = t.prepare_seconds

let cache_key t ~width ~budget_signature ~certify =
  Printf.sprintf "%Lx|%s|%d|%s|%b" t.cnf_hash
    (C.Strategy.name t.strategy)
    width budget_signature certify

(* Cumulative solver statistics, copied so a later query cannot mutate the
   snapshot under us. *)
let snapshot (s : Sat.Stats.t) = { s with Sat.Stats.lbd_hist = Array.copy s.lbd_hist }

(* Per-query attribution: counters are deltas, watermark fields keep the
   cumulative value (they are maxima, not sums). *)
let diff (before : Sat.Stats.t) (after : Sat.Stats.t) =
  let d = Sat.Stats.create () in
  d.Sat.Stats.decisions <- after.decisions - before.decisions;
  d.Sat.Stats.propagations <- after.propagations - before.propagations;
  d.Sat.Stats.conflicts <- after.conflicts - before.conflicts;
  d.Sat.Stats.restarts <- after.restarts - before.restarts;
  d.Sat.Stats.learnt_clauses <- after.learnt_clauses - before.learnt_clauses;
  d.Sat.Stats.learnt_literals <- after.learnt_literals - before.learnt_literals;
  d.Sat.Stats.deleted_clauses <- after.deleted_clauses - before.deleted_clauses;
  d.Sat.Stats.inprocess_rounds <- after.inprocess_rounds - before.inprocess_rounds;
  d.Sat.Stats.inprocess_strengthened <-
    after.inprocess_strengthened - before.inprocess_strengthened;
  d.Sat.Stats.inprocess_literals <-
    after.inprocess_literals - before.inprocess_literals;
  d.Sat.Stats.max_decision_level <- after.max_decision_level;
  Array.iteri
    (fun i b -> d.Sat.Stats.lbd_hist.(i) <- after.lbd_hist.(i) - b)
    before.Sat.Stats.lbd_hist;
  d.Sat.Stats.peak_heap_words <- after.peak_heap_words;
  d

let make_run t ~width ~solving ~stats ~telemetry_words outcome ~telemetry =
  let telemetry =
    if telemetry then
      Some (Obs.Telemetry.of_stats ~solving ~words_allocated:telemetry_words stats)
    else None
  in
  {
    C.Flow.outcome;
    (* graph and CNF translation are amortised over the session: this
       query paid neither *)
    timings = { C.Flow.to_graph = 0.; to_cnf = 0.; solving };
    width;
    strategy = t.strategy;
    cnf_vars = t.cnf_vars;
    cnf_clauses = t.cnf_clauses;
    solver_stats = stats;
    proof = None;
    certified = None;
    telemetry;
  }

let route_warm ?(budget = Sat.Solver.no_budget) ?(telemetry = false) t ~width =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.served <- t.served + 1;
      if width >= t.upper then
        (* the DSATUR colouring already fits: answer without touching the
           solver *)
        match F.Detailed_route.of_coloring t.route ~width t.greedy with
        | Ok detailed ->
            make_run t ~width ~solving:0. ~stats:(Sat.Stats.create ())
              ~telemetry_words:0 (C.Flow.Routable detailed) ~telemetry
        | Error violation ->
            raise
              (C.Flow.Decode_mismatch
                 (Format.asprintf "greedy colouring rejected: %a"
                    F.Detailed_route.pp_violation violation))
      else begin
        let before = snapshot (C.Incremental_width.stats t.ladder) in
        let alloc0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        let answer = C.Incremental_width.query ~budget t.ladder ~width in
        let solving = Unix.gettimeofday () -. t0 in
        let words =
          int_of_float
            ((Gc.allocated_bytes () -. alloc0)
            /. float_of_int (Sys.word_size / 8))
        in
        let stats = diff before (snapshot (C.Incremental_width.stats t.ladder)) in
        let outcome =
          match answer with
          | `Colorable coloring -> (
              match F.Detailed_route.of_coloring t.route ~width coloring with
              | Ok detailed -> C.Flow.Routable detailed
              | Error violation ->
                  raise
                    (C.Flow.Decode_mismatch
                       (Format.asprintf "detailed routing rejected: %a"
                          F.Detailed_route.pp_violation violation)))
          | `Uncolorable -> C.Flow.Unroutable
          | `Timeout -> C.Flow.Timeout
          | `Memout -> C.Flow.Memout
        in
        make_run t ~width ~solving ~stats ~telemetry_words:words outcome
          ~telemetry
      end)

let min_width ?(budget = Sat.Solver.no_budget) t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.served <- t.served + 1;
      let rec walk w best =
        if w < t.lower then Ok (w + 1)
        else
          match C.Incremental_width.query ~budget t.ladder ~width:w with
          | `Uncolorable -> (
              match best with
              | Some _ -> Ok (w + 1)
              | None -> Error "upper bound came out uncolourable")
          | `Timeout -> Error "budget exhausted during width search"
          | `Memout -> Error "memory budget exhausted during width search"
          | `Colorable coloring ->
              let used = G.Coloring.num_colors coloring in
              walk (min (w - 1) (used - 1)) (Some coloring)
      in
      walk t.upper None)
