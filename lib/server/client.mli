(** A minimal blocking client for the solve server's socket protocol,
    with the two robustness affordances a crash-only server asks of its
    clients: bounded waits (socket timeouts) and jittered retry of
    idempotent requests. *)

type t

val connect : ?timeout:float -> string -> (t, string) result
(** Connect to the server's Unix socket path. [timeout] (seconds) sets
    [SO_RCVTIMEO]/[SO_SNDTIMEO] on the socket, turning a hung or killed
    server into a bounded error on the next call instead of a client
    blocked forever. No timeout by default. *)

val close : t -> unit

val call_line : t -> string -> (string, string) result
(** Send one raw line, read one reply line — for callers that build their
    own JSON. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** Send a typed request, parse the typed response. The connection stays
    open; repeated calls reuse it (and the server's warm state). *)

val one_shot :
  ?timeout:float ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** Connect, {!call} once, close. *)

val call_with_retry :
  ?retries:int ->
  ?backoff:float ->
  ?seed:int ->
  ?timeout:float ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** {!one_shot} with up to [retries] (default 3) re-attempts on transport
    errors (connection refused or reset, EOF, socket timeout) and on
    [overloaded] responses — the two failures where asking again is the
    right move (a restarting or momentarily saturated server).

    Only {!Protocol.idempotent} ops are ever re-sent; for the rest the
    first result is returned as-is, because a lost response does not
    license repeating a state change. Waits between attempts grow
    exponentially from [backoff] (default 0.05 s, capped at 1 s) with
    seeded half-interval jitter: attempt [i] sleeps uniformly in
    [[d/2, d]] for [d = backoff·2{^i}], so colliding clients spread out
    while tests replay exactly ([seed], default 0). Definitive responses
    — [ok], [error], [deadline_exceeded], [shutting_down] — are returned
    immediately, never retried. *)
