(** A minimal blocking client for the solve server's socket protocol. *)

type t

val connect : string -> (t, string) result
(** Connect to the server's Unix socket path. *)

val close : t -> unit

val call_line : t -> string -> (string, string) result
(** Send one raw line, read one reply line — for callers that build their
    own JSON. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** Send a typed request, parse the typed response. The connection stays
    open; repeated calls reuse it (and the server's warm state). *)

val one_shot : socket:string -> Protocol.request -> (Protocol.response, string) result
(** Connect, {!call} once, close. *)
