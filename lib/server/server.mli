(** The routing-as-a-service daemon.

    A Unix-domain-socket server speaking {!Protocol} (line-delimited
    JSON). Three layers between socket and solver:

    - {b Warm sessions} ({!Session}): one incremental ladder per
      benchmark × strategy, encoded on first use and reused by every
      later width query.
    - {b Answer cache} ({!Answer_cache}): decisive answers keyed by
      CNF structural hash × strategy × width × budget × certify are
      replayed without running a solver. With [cache_file] set the cache
      keeps a write-ahead journal, so the answers survive a [kill -9]
      and a restarted server replays them byte-identically.
    - {b Admission control} ({!Fpgasat_engine.Pool.Persistent}): a fixed
      worker-domain pool with a bounded queue. A request past capacity
      gets an [overloaded] response immediately; once drain begins, a
      [shutting_down] response.

    Crash-only design: the server assumes it will die rudely and makes
    restart the recovery path. A worker domain that dies mid-request is
    respawned within the pool's restart budget (the waiting client gets an
    [error], never a hang); a request whose content kills workers
    repeatedly is quarantined by CNF structural hash instead of draining
    the budget; a stale socket from a killed predecessor is probed and
    reclaimed at startup (a {e live} server's socket is never stolen);
    requests carry optional deadlines and are shed with
    [deadline_exceeded] when queue wait has already consumed them.

    Concurrency model: one lightweight thread per connection parses and
    frames; CPU-bound solving runs on the persistent domain pool. SIGTERM
    (or the protocol [shutdown] op) triggers a graceful drain — in-flight
    requests finish, every connection thread and worker domain is joined,
    the journal is closed, the socket file is removed. *)

type config = {
  socket_path : string;
  workers : int;  (** Solver worker domains (default 2). *)
  queue_capacity : int;
      (** Max queued (not yet running) requests before [overloaded]
          (default 16). *)
  cache_capacity : int;  (** Answer-cache entries (default 256). *)
  max_sessions : int;
      (** Warm sessions kept; least-recently-used beyond this is dropped
          (default 16). *)
  max_seconds : float option;
      (** Server-side ceiling on any request's time budget. *)
  max_memory_mb : int option;
      (** Server-side ceiling on any request's memory budget. *)
  cache_file : string option;
      (** Journal the answer cache to this JSONL file
          ({!Answer_cache.attach_journal}): replayed on startup, appended
          under a pid lock while serving. [None] (default) keeps the
          cache in memory only. *)
  test_ops : bool;
      (** Enable the [sleep] op and the request [fault] field —
          deterministic load and chaos injection for tests; keep off in
          production. *)
}

val default_config : socket_path:string -> config

type t

val start : config -> t
(** Attaches the cache journal (when configured), binds the socket,
    spawns the worker pool and the accept thread, returns immediately.

    A pre-existing socket file is probed with a connect: one refused is
    the residue of a killed predecessor and is reclaimed; one accepted
    belongs to a live server and [start] raises [Failure] instead of
    stealing its clients (as it does for a path that exists but is not a
    socket, or a cache file locked by a live process). *)

val stop : t -> unit
(** Graceful drain: stops accepting, lets in-flight requests finish,
    joins every connection thread and worker domain, closes the journal,
    closes and unlinks the socket. Idempotent; blocks until fully
    drained. *)

val request_stop : t -> unit
(** Async-signal-safe part of {!stop}: flags the stop and wakes the
    accept loop, without blocking. {!stop} (or {!run}'s main loop) does
    the joining. *)

val stop_requested : t -> bool

val run : config -> unit
(** {!start}, install SIGTERM/SIGINT handlers that {!request_stop}, block
    until a stop is requested (signal or protocol [shutdown] op), then
    drain via {!stop}. The daemon entry point behind [fpgasat serve]. *)

val stats_json : t -> Fpgasat_obs.Json.t
(** The same counters the protocol [stats] op returns. Alongside the
    request/cache/session gauges: [pool.deaths] and [pool.respawns] (the
    supervision history), [cache.replayed] and [cache.torn] (what the
    journal replay recovered and skipped), [deadline_exceeded] and
    [quarantined] shed counts, and [poisoned_hashes] (problems currently
    quarantined). *)

val replayed : t -> int
(** Journal entries replayed into the cache at startup (0 without
    [cache_file]). *)

val trace : t -> Fpgasat_obs.Trace.t
(** Per-request solve spans ([Solve_begin]/[Solve_end]) recorded by the
    serving layer. *)

val socket_path : t -> string
