(** The routing-as-a-service daemon.

    A Unix-domain-socket server speaking {!Protocol} (line-delimited
    JSON). Three layers between socket and solver:

    - {b Warm sessions} ({!Session}): one incremental ladder per
      benchmark × strategy, encoded on first use and reused by every
      later width query.
    - {b Answer cache} ({!Answer_cache}): decisive answers keyed by
      CNF structural hash × strategy × width × budget × certify are
      replayed without running a solver.
    - {b Admission control} ({!Fpgasat_engine.Pool.Persistent}): a fixed
      worker-domain pool with a bounded queue. A request past capacity
      gets an [overloaded] response immediately; once drain begins, a
      [shutting_down] response.

    Concurrency model: one lightweight thread per connection parses and
    frames; CPU-bound solving runs on the persistent domain pool. SIGTERM
    (or the protocol [shutdown] op) triggers a graceful drain — in-flight
    requests finish, every connection thread and worker domain is joined,
    the socket file is removed. *)

type config = {
  socket_path : string;
  workers : int;  (** Solver worker domains (default 2). *)
  queue_capacity : int;
      (** Max queued (not yet running) requests before [overloaded]
          (default 16). *)
  cache_capacity : int;  (** Answer-cache entries (default 256). *)
  max_sessions : int;
      (** Warm sessions kept; least-recently-used beyond this is dropped
          (default 16). *)
  max_seconds : float option;
      (** Server-side ceiling on any request's time budget. *)
  max_memory_mb : int option;
      (** Server-side ceiling on any request's memory budget. *)
  test_ops : bool;
      (** Enable the [sleep] op — deterministic load for overload/drain
          tests; keep off in production. *)
}

val default_config : socket_path:string -> config

type t

val start : config -> t
(** Binds the socket (unlinking a stale file), spawns the worker pool and
    the accept thread, returns immediately. *)

val stop : t -> unit
(** Graceful drain: stops accepting, lets in-flight requests finish,
    joins every connection thread and worker domain, closes and unlinks
    the socket. Idempotent; blocks until fully drained. *)

val request_stop : t -> unit
(** Async-signal-safe part of {!stop}: flags the stop and wakes the
    accept loop, without blocking. {!stop} (or {!run}'s main loop) does
    the joining. *)

val stop_requested : t -> bool

val run : config -> unit
(** {!start}, install SIGTERM/SIGINT handlers that {!request_stop}, block
    until a stop is requested (signal or protocol [shutdown] op), then
    drain via {!stop}. The daemon entry point behind [fpgasat serve]. *)

val stats_json : t -> Fpgasat_obs.Json.t
(** The same counters the protocol [stats] op returns. *)

val trace : t -> Fpgasat_obs.Trace.t
(** Per-request solve spans ([Solve_begin]/[Solve_end]) recorded by the
    serving layer. *)

val socket_path : t -> string
