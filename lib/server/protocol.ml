module J = Fpgasat_obs.Json
module Sat = Fpgasat_sat

let request_schema = "fpgasat.req/1"
let response_schema = "fpgasat.resp/1"

type op = Route | Min_width | Ping | Stats | Shutdown | Sleep of float

let op_name = function
  | Route -> "route"
  | Min_width -> "min_width"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Sleep _ -> "sleep"

type request = {
  id : string option;
  op : op;
  benchmark : string;
  width : int;
  strategy : string option;
  max_conflicts : int option;
  max_seconds : float option;
  max_memory_mb : int option;
  deadline_ms : int option;
  certify : bool;
  telemetry : bool;
  fault : string option;
}

let request ?id ?strategy ?max_conflicts ?max_seconds ?max_memory_mb
    ?deadline_ms ?(certify = false) ?(telemetry = false) ?fault
    ?(benchmark = "") ?(width = 0) op =
  {
    id;
    op;
    benchmark;
    width;
    strategy;
    max_conflicts;
    max_seconds;
    max_memory_mb;
    deadline_ms;
    certify;
    telemetry;
    fault;
  }

(* The ops a client may retry blind: re-running them cannot change server
   state beyond counters, so a response lost to a connection reset is safe
   to re-ask for. [shutdown] is a state change and [sleep] occupies a
   worker per call — retrying those amplifies the very overload the retry
   is reacting to. *)
let idempotent = function
  | Route | Min_width | Ping | Stats -> true
  | Shutdown | Sleep _ -> false

let budget_of_request r =
  {
    Sat.Solver.no_budget with
    Sat.Solver.max_conflicts = r.max_conflicts;
    max_seconds = r.max_seconds;
    max_memory_mb = r.max_memory_mb;
  }

(* A stable textual identity of the budget, part of the answer-cache key:
   two requests with different budgets must not share a cached answer (a
   timeout under a small budget says nothing about a larger one). The
   deadline is deliberately absent: it only ever shrinks the effective
   budget, and a decisive answer is decisive whatever deadline it beat —
   fragmenting the cache per deadline would throw hits away. *)
let budget_signature r =
  let num f = function None -> "-" | Some v -> f v in
  Printf.sprintf "c%s,s%s,m%s"
    (num string_of_int r.max_conflicts)
    (num (Printf.sprintf "%h") r.max_seconds)
    (num string_of_int r.max_memory_mb)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let request_to_json r =
  J.Obj
    ([ ("schema", J.String request_schema) ]
    @ opt_field "id" (fun s -> J.String s) r.id
    @ [ ("op", J.String (op_name r.op)) ]
    @ (match r.op with
      | Sleep s -> [ ("seconds", J.Float s) ]
      | _ -> [])
    @ (if r.benchmark = "" then []
       else [ ("benchmark", J.String r.benchmark) ])
    @ (if r.width = 0 then [] else [ ("width", J.Int r.width) ])
    @ opt_field "strategy" (fun s -> J.String s) r.strategy
    @ opt_field "max_conflicts" (fun n -> J.Int n) r.max_conflicts
    @ opt_field "max_seconds" (fun f -> J.Float f) r.max_seconds
    @ opt_field "max_memory_mb" (fun n -> J.Int n) r.max_memory_mb
    @ opt_field "deadline_ms" (fun n -> J.Int n) r.deadline_ms
    @ (if r.certify then [ ("certify", J.Bool true) ] else [])
    @ (if r.telemetry then [ ("telemetry", J.Bool true) ] else [])
    @ opt_field "fault" (fun s -> J.String s) r.fault)

let find_string j key =
  match J.find j key with Some (J.String s) -> Some s | _ -> None

let find_int j key =
  match J.find j key with Some (J.Int n) -> Some n | _ -> None

let find_float j key =
  match J.find j key with
  | Some (J.Float f) -> Some f
  | Some (J.Int n) -> Some (float_of_int n)
  | _ -> None

let find_bool j key =
  match J.find j key with Some (J.Bool b) -> Some b | _ -> None

let request_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match find_string j "schema" with
    | Some s when s = request_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unsupported request schema %S" s)
    | None -> Error "missing \"schema\""
  in
  let* op =
    match find_string j "op" with
    | Some "route" -> Ok Route
    | Some "min_width" -> Ok Min_width
    | Some "ping" -> Ok Ping
    | Some "stats" -> Ok Stats
    | Some "shutdown" -> Ok Shutdown
    | Some "sleep" ->
        Ok (Sleep (Option.value (find_float j "seconds") ~default:0.))
    | Some other -> Error (Printf.sprintf "unknown op %S" other)
    | None -> Error "missing \"op\""
  in
  let benchmark = Option.value (find_string j "benchmark") ~default:"" in
  let width = Option.value (find_int j "width") ~default:0 in
  let* () =
    match op with
    | Route when benchmark = "" -> Error "op \"route\" needs a \"benchmark\""
    | Route when width < 1 -> Error "op \"route\" needs \"width\" >= 1"
    | Min_width when benchmark = "" ->
        Error "op \"min_width\" needs a \"benchmark\""
    | _ -> Ok ()
  in
  Ok
    {
      id = find_string j "id";
      op;
      benchmark;
      width;
      strategy = find_string j "strategy";
      max_conflicts = find_int j "max_conflicts";
      max_seconds = find_float j "max_seconds";
      max_memory_mb = find_int j "max_memory_mb";
      deadline_ms = find_int j "deadline_ms";
      certify = Option.value (find_bool j "certify") ~default:false;
      telemetry = Option.value (find_bool j "telemetry") ~default:false;
      fault = find_string j "fault";
    }

let parse_request line =
  match J.of_string line with
  | Error m -> Error ("malformed JSON: " ^ m)
  | Ok j -> request_of_json j

type served_by = Cache | Warm | Cold

let served_by_name = function Cache -> "cache" | Warm -> "warm" | Cold -> "cold"

type status = Done | Failed | Overloaded | Shutting_down | Deadline_exceeded

let status_name = function
  | Done -> "ok"
  | Failed -> "error"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Deadline_exceeded -> "deadline_exceeded"

type response = {
  resp_id : string option;
  status : status;
  served_by : served_by option;
  run : J.t option;  (** An [fpgasat.run/1] record object. *)
  min_width : int option;
  payload : J.t option;  (** Op-specific extra (stats, pong). *)
  message : string option;  (** Present exactly when [status] is Failed. *)
}

let response ?id ?served_by ?run ?min_width ?payload ?message status =
  {
    resp_id = id;
    status;
    served_by;
    run;
    min_width;
    payload;
    message;
  }

let response_to_json r =
  J.Obj
    ([ ("schema", J.String response_schema) ]
    @ opt_field "id" (fun s -> J.String s) r.resp_id
    @ [ ("status", J.String (status_name r.status)) ]
    @ opt_field "served_by" (fun s -> J.String (served_by_name s)) r.served_by
    @ opt_field "run" Fun.id r.run
    @ opt_field "min_width" (fun n -> J.Int n) r.min_width
    @ opt_field "payload" Fun.id r.payload
    @ opt_field "error" (fun s -> J.String s) r.message)

let response_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match find_string j "schema" with
    | Some s when s = response_schema -> Ok ()
    | Some s -> Error (Printf.sprintf "unsupported response schema %S" s)
    | None -> Error "missing \"schema\""
  in
  let* status =
    match find_string j "status" with
    | Some "ok" -> Ok Done
    | Some "error" -> Ok Failed
    | Some "overloaded" -> Ok Overloaded
    | Some "shutting_down" -> Ok Shutting_down
    | Some "deadline_exceeded" -> Ok Deadline_exceeded
    | Some other -> Error (Printf.sprintf "unknown status %S" other)
    | None -> Error "missing \"status\""
  in
  let* served_by =
    match find_string j "served_by" with
    | Some "cache" -> Ok (Some Cache)
    | Some "warm" -> Ok (Some Warm)
    | Some "cold" -> Ok (Some Cold)
    | Some other -> Error (Printf.sprintf "unknown served_by %S" other)
    | None -> Ok None
  in
  Ok
    {
      resp_id = find_string j "id";
      status;
      served_by;
      run = J.find j "run";
      min_width = find_int j "min_width";
      payload = J.find j "payload";
      message = find_string j "error";
    }

let parse_response line =
  match J.of_string line with
  | Error m -> Error ("malformed JSON: " ^ m)
  | Ok j -> response_of_json j
