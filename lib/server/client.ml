module J = Fpgasat_obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?timeout path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* SO_RCVTIMEO/SO_SNDTIMEO turn a hung server into a bounded Sys_error
     on the channel instead of a client that blocks forever; connect on a
     Unix socket either succeeds or fails immediately, so the two
     timeouts cover the whole call. *)
  (match timeout with
  | None -> ()
  | Some seconds ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds
       with Unix.Unix_error _ -> ()));
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path
           (Unix.error_message err))

let close t = try Unix.close t.fd with _ -> ()

let call_line t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | reply -> Ok reply
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error m -> Error m
  | exception Sys_blocked_io ->
      (* how a tripped SO_RCVTIMEO/SO_SNDTIMEO surfaces through a
         channel: the wait is over, the server never answered *)
      Error "timed out waiting for the server"
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for the server"

let call t request =
  match call_line t (J.to_string (P.request_to_json request)) with
  | Error _ as err -> err
  | Ok line -> P.parse_response line

let one_shot ?timeout ~socket request =
  match connect ?timeout socket with
  | Error _ as err -> err
  | Ok conn ->
      Fun.protect ~finally:(fun () -> close conn) (fun () -> call conn request)

(* ---------- retry ---------- *)

(* splitmix64, seeded: retry jitter is deterministic under test yet spreads
   real concurrent clients apart (each picks its own seed). *)
let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform state =
  Int64.to_float (Int64.shift_right_logical (splitmix state) 11)
  /. 9007199254740992. (* 2^53 *)

let retryable_response (r : P.response) =
  match r.P.status with
  | P.Overloaded -> true
  | P.Done | P.Failed | P.Shutting_down | P.Deadline_exceeded -> false

let call_with_retry ?(retries = 3) ?(backoff = 0.05) ?(seed = 0) ?timeout
    ~socket request =
  (* only idempotent ops may be re-sent blind: a lost response to
     [shutdown] or [sleep] does not license doing it again *)
  let may_retry = P.idempotent request.P.op in
  let state = ref (Int64.of_int seed) in
  let rec attempt i =
    let result = one_shot ?timeout ~socket request in
    let should_retry =
      may_retry && i < retries
      &&
      match result with
      | Error _ -> true (* connect refused, reset, EOF, socket timeout *)
      | Ok r -> retryable_response r
    in
    if not should_retry then result
    else begin
      (* exponential with full-half jitter: delay_i ∈ [d/2, d] where
         d = backoff·2^i, capped at 1s — desynchronises clients hammering
         an overloaded server without unbounded sleeps *)
      let d = Float.min 1.0 (backoff *. (2. ** float_of_int i)) in
      Unix.sleepf ((d /. 2.) *. (1. +. uniform state));
      attempt (i + 1)
    end
  in
  attempt 0
