module J = Fpgasat_obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path
           (Unix.error_message err))

let close t = try Unix.close t.fd with _ -> ()

let call_line t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | reply -> Ok reply
  | exception End_of_file -> Error "server closed the connection"
  | exception Sys_error m -> Error m

let call t request =
  match call_line t (J.to_string (P.request_to_json request)) with
  | Error _ as err -> err
  | Ok line -> P.parse_response line

let one_shot ~socket request =
  match connect socket with
  | Error _ as err -> err
  | Ok conn ->
      Fun.protect ~finally:(fun () -> close conn) (fun () -> call conn request)
