module J = Fpgasat_obs.Json
module Eng = Fpgasat_engine

type 'a journal = {
  path : string;
  to_json : 'a -> J.t;
  mutable oc : out_channel option;
}

type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable journal : 'a journal option;
  mutable replayed : int;
  mutable torn : int;
}

let create ?(capacity = 256) () =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    journal = None;
    replayed = 0;
    torn = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* O(capacity) scan at eviction: the cache is small (hundreds) and only
   full inserts pay it, so a linked-list LRU would be complexity without a
   measurable return. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (key, e.last_use))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

(* ---------- journal line codec ---------- *)

(* A journal line is the value's own JSON object with one extra
   [cache_key] field appended — for the server's run-record values the
   file stays parseable as plain fpgasat.run/1 JSONL. Non-object values
   (and objects that already carry a [cache_key]) are wrapped instead. *)
let line_of_entry to_json key v =
  match to_json v with
  | J.Obj fields when not (List.mem_assoc "cache_key" fields) ->
      J.Obj (fields @ [ ("cache_key", J.String key) ])
  | other -> J.Obj [ ("cache_key", J.String key); ("value", other) ]

let entry_of_line j =
  match j with
  | J.Obj [ ("cache_key", J.String key); ("value", v) ] -> Some (key, v)
  | J.Obj fields -> (
      match List.assoc_opt "cache_key" fields with
      | Some (J.String key) ->
          Some
            (key, J.Obj (List.filter (fun (k, _) -> k <> "cache_key") fields))
      | _ -> None)
  | _ -> None

(* insert without touching the journal (replay, and shared by [add]) *)
let add_locked t key value =
  t.tick <- t.tick + 1;
  (match Hashtbl.find_opt t.tbl key with
  | Some _ -> Hashtbl.remove t.tbl key
  | None -> if Hashtbl.length t.tbl >= t.capacity then evict_lru t);
  Hashtbl.replace t.tbl key { value; last_use = t.tick }

let append_journal t key value =
  match t.journal with
  | None | Some { oc = None; _ } -> ()
  | Some ({ oc = Some oc; _ } as jr) -> (
      match
        output_string oc (J.to_string (line_of_entry jr.to_json key value));
        output_char oc '\n';
        (* WAL discipline: the line reaches the OS before the response that
           promises the answer leaves the server *)
        flush oc
      with
      | () -> ()
      | exception Sys_error _ ->
          (* a dead disk must degrade the cache to in-memory-only, not take
             requests down with it *)
          (try close_out_noerr oc with _ -> ());
          jr.oc <- None)

let add t key value =
  locked t (fun () ->
      add_locked t key value;
      append_journal t key value)

(* ---------- journal attach / replay ---------- *)

(* Oldest-first, so re-journaling preserves relative recency on the next
   replay. *)
let entries_by_age t =
  Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a.last_use b.last_use)

(* Replay is deliberately lax: a torn final line (the mark of a SIGKILL
   mid-append) and any other unparseable or key-less line are skipped and
   counted, never fatal — recovery must not be able to fail. After replay
   the journal is compacted: the surviving entries (at most [capacity];
   later lines superseded earlier ones through ordinary LRU adds) are
   rewritten to a temp file that atomically replaces the journal, so dead
   entries and the torn tail are gone and the file is bounded again. *)
let attach_journal t ~path ~to_json ~of_json =
  locked t (fun () ->
      if t.journal <> None then Error "cache already has a journal attached"
      else
        match Eng.Lockfile.acquire path with
        | exception Sys_error m -> Error m
        | () -> (
            t.replayed <- 0;
            t.torn <- 0;
            (if Sys.file_exists path then
               let ic = open_in path in
               Fun.protect
                 ~finally:(fun () -> close_in_noerr ic)
                 (fun () ->
                   try
                     while true do
                       let line = input_line ic in
                       if String.trim line <> "" then
                         match J.of_string line with
                         | Error _ -> t.torn <- t.torn + 1
                         | Ok j -> (
                             match entry_of_line j with
                             | None -> t.torn <- t.torn + 1
                             | Some (key, vj) -> (
                                 match of_json vj with
                                 | None -> t.torn <- t.torn + 1
                                 | Some v ->
                                     add_locked t key v;
                                     t.replayed <- t.replayed + 1))
                     done
                   with End_of_file -> ()));
            let tmp = path ^ ".compact" in
            match
              let oc =
                open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp
              in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () ->
                  List.iter
                    (fun (key, e) ->
                      output_string oc
                        (J.to_string (line_of_entry to_json key e.value));
                      output_char oc '\n')
                    (entries_by_age t));
              Sys.rename tmp path
            with
            | exception Sys_error m ->
                Eng.Lockfile.release path;
                Error m
            | () -> (
                match
                  open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644
                    path
                with
                | exception Sys_error m ->
                    Eng.Lockfile.release path;
                    Error m
                | oc ->
                    t.journal <- Some { path; to_json; oc = Some oc };
                    Ok t.replayed)))

let detach_journal t =
  locked t (fun () ->
      match t.journal with
      | None -> ()
      | Some jr ->
          (match jr.oc with
          | Some oc -> close_out_noerr oc
          | None -> ());
          Eng.Lockfile.release jr.path;
          t.journal <- None)

let journal_path t =
  locked t (fun () -> Option.map (fun jr -> jr.path) t.journal)

let replayed t = locked t (fun () -> t.replayed)
let torn t = locked t (fun () -> t.torn)
let length t = locked t (fun () -> Hashtbl.length t.tbl)
let capacity t = t.capacity

let stats t =
  locked t (fun () ->
      (t.hits, t.misses, t.evictions))
