type 'a entry = { value : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* O(capacity) scan at eviction: the cache is small (hundreds) and only
   full inserts pay it, so a linked-list LRU would be complexity without a
   measurable return. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (key, e.last_use))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key value =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      (match Hashtbl.find_opt t.tbl key with
      | Some _ -> Hashtbl.remove t.tbl key
      | None -> if Hashtbl.length t.tbl >= t.capacity then evict_lru t);
      Hashtbl.replace t.tbl key { value; last_use = t.tick })

let length t = locked t (fun () -> Hashtbl.length t.tbl)
let capacity t = t.capacity

let stats t =
  locked t (fun () ->
      (t.hits, t.misses, t.evictions))
