(** A small thread-safe LRU cache for served answers.

    Keys are the server's request identity strings —
    [cnf-structural-hash × strategy × width × budget-signature × certify]
    — so a byte-identical question is answered without running a solver,
    and any change to the problem content, the strategy, or the budget
    misses. Only decisive outcomes are worth storing (the server's rule;
    the cache itself is policy-free). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 256; clamped to ≥ 1. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on hit; counts hit/miss. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes) the binding, evicting the least-recently-used
    entry when the cache is full. *)

val length : 'a t -> int
val capacity : 'a t -> int

val stats : 'a t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)
