(** A small thread-safe LRU cache for served answers, with an optional
    write-ahead journal that makes it survive a [kill -9].

    Keys are the server's request identity strings —
    [cnf-structural-hash × strategy × width × budget-signature × certify]
    — so a byte-identical question is answered without running a solver,
    and any change to the problem content, the strategy, or the budget
    misses. Only decisive outcomes are worth storing (the server's rule;
    the cache itself is policy-free).

    {b Journal.} With {!attach_journal}, every {!add} is appended to a
    JSONL file (and flushed) before the call returns — write-ahead
    discipline, so an answer the server has promised is never lost to a
    crash. For the server's run-record values each line is the value's own
    [fpgasat.run/1] object plus one extra [cache_key] field, which keeps
    the journal readable by the ordinary record tooling. On attach the
    file is replayed oldest-first (later lines supersede earlier ones;
    LRU capacity truncates the excess), a torn final line — the mark of a
    kill mid-append — is skipped and counted rather than fatal, and the
    journal is compacted in place (atomic rename) so dead entries and the
    torn tail disappear. The file is guarded by a {!Fpgasat_engine.Lockfile}
    pid lock: a second live server on the same journal fails fast, a stale
    lock from a kill is reclaimed silently. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 256; clamped to ≥ 1. *)

val find : 'a t -> string -> 'a option
(** Refreshes the entry's recency on hit; counts hit/miss. Recency is not
    journaled — after a restart the replay order stands in for it. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes) the binding, evicting the least-recently-used
    entry when the cache is full. With a journal attached, the entry is
    appended and flushed before [add] returns; a journal write error
    degrades the cache to in-memory-only instead of raising. *)

val attach_journal :
  'a t ->
  path:string ->
  to_json:('a -> Fpgasat_obs.Json.t) ->
  of_json:(Fpgasat_obs.Json.t -> 'a option) ->
  (int, string) result
(** Take the pid lock on [path], replay any existing entries into the
    cache (tolerating a torn tail), compact the file, and start journaling
    subsequent {!add}s to it. Returns the number of replayed entries, or
    [Error] when a live process holds the lock (or the file is not
    writable). [of_json] returning [None] skips (and counts) the line. *)

val detach_journal : 'a t -> unit
(** Close the journal and release the lock; idempotent. The cache keeps
    serving from memory. *)

val journal_path : 'a t -> string option

val replayed : 'a t -> int
(** Entries applied by the last {!attach_journal} replay. *)

val torn : 'a t -> int
(** Lines the last replay skipped: torn tail, unparseable JSON, missing
    [cache_key], or [of_json] rejection. *)

val length : 'a t -> int
val capacity : 'a t -> int

val stats : 'a t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)
