module J = Fpgasat_obs.Json
module Obs = Fpgasat_obs
module Sat = Fpgasat_sat
module F = Fpgasat_fpga
module C = Fpgasat_core
module Eng = Fpgasat_engine
module P = Protocol

type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  max_sessions : int;
  max_seconds : float option;
  max_memory_mb : int option;
  cache_file : string option;
  test_ops : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_capacity = 16;
    cache_capacity = 256;
    max_sessions = 16;
    max_seconds = None;
    max_memory_mb = None;
    cache_file = None;
    test_ops = false;
  }

(* A request whose worker dies this many times is quarantined: later
   attempts get an error without touching the pool, so one poisoned input
   cannot eat the whole restart budget. *)
let quarantine_threshold = 2

type counters = {
  requests : int Atomic.t;
  cache_hits : int Atomic.t;
  warm : int Atomic.t;
  cold : int Atomic.t;
  overloaded : int Atomic.t;
  errors : int Atomic.t;
  deadline_exceeded : int Atomic.t;
  quarantined : int Atomic.t;
}

type session_slot = { session : Session.t; mutable last_use : int }

type t = {
  config : config;
  listener : Unix.file_descr;
  pool : Eng.Pool.Persistent.t;
  cache : J.t Answer_cache.t;
  sessions : (string, session_slot) Hashtbl.t;
  sessions_mutex : Mutex.t;
  mutable session_tick : int;
  (* structural-hash -> worker deaths attributed to requests on that CNF *)
  poison : (string, int) Hashtbl.t;
  poison_mutex : Mutex.t;
  trace : Obs.Trace.t;
  counters : counters;
  stop_requested : bool Atomic.t;
  drained : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conns_mutex : Mutex.t;
  mutable conns : (Thread.t * Unix.file_descr) list;
}

(* ---------- session management ---------- *)

let session_key benchmark strategy =
  benchmark ^ "|" ^ C.Strategy.name strategy

let evict_lru_session server =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best <= slot.last_use -> acc
        | _ -> Some (key, slot.last_use))
      server.sessions None
  in
  match victim with
  | Some (key, _) -> Hashtbl.remove server.sessions key
  | None -> ()

(* Creation happens under the map mutex: the encode cost is paid once per
   (benchmark × strategy) even when identical first requests race, at the
   price of serialising distinct first-time encodes. *)
let get_session server ~benchmark strategy =
  match F.Benchmarks.find benchmark with
  | None -> Error (Printf.sprintf "unknown benchmark %S" benchmark)
  | Some spec ->
      Mutex.lock server.sessions_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock server.sessions_mutex)
        (fun () ->
          let key = session_key benchmark strategy in
          server.session_tick <- server.session_tick + 1;
          match Hashtbl.find_opt server.sessions key with
          | Some slot ->
              slot.last_use <- server.session_tick;
              Ok slot.session
          | None ->
              let session =
                Session.create ~benchmark strategy (F.Benchmarks.build spec)
              in
              if Hashtbl.length server.sessions >= server.config.max_sessions
              then evict_lru_session server;
              Hashtbl.replace server.sessions key
                { session; last_use = server.session_tick };
              Ok session)

(* ---------- quarantine ---------- *)

(* The structural-hash prefix of a session cache key — the identity the
   poison table is keyed on. One CNF crashing workers under one width must
   also quarantine it at other widths: the crash is in the content, not
   the query. *)
let structural_hash_of_key key =
  match String.index_opt key '|' with
  | Some i -> String.sub key 0 i
  | None -> key

let poison_count server hash =
  Mutex.lock server.poison_mutex;
  let n = Option.value (Hashtbl.find_opt server.poison hash) ~default:0 in
  Mutex.unlock server.poison_mutex;
  n

let record_poison server hash =
  Mutex.lock server.poison_mutex;
  let n = 1 + Option.value (Hashtbl.find_opt server.poison hash) ~default:0 in
  Hashtbl.replace server.poison hash n;
  Mutex.unlock server.poison_mutex

let quarantined_count server =
  Mutex.lock server.poison_mutex;
  let n =
    Hashtbl.fold
      (fun _ deaths acc ->
        if deaths >= quarantine_threshold then acc + 1 else acc)
      server.poison 0
  in
  Mutex.unlock server.poison_mutex;
  n

(* ---------- deadlines ---------- *)

(* [deadline_ms] is total client patience measured from [arrival] (the
   moment the conn thread read the line). By the time a worker picks the
   request up, queue wait has eaten part of it; the remainder caps the
   solver's wall-clock budget. *)
let deadline_remaining (req : P.request) ~arrival =
  match req.P.deadline_ms with
  | None -> None
  | Some ms ->
      Some (float_of_int ms /. 1000. -. (Unix.gettimeofday () -. arrival))

let shed_expired server (req : P.request) ~arrival =
  match deadline_remaining req ~arrival with
  | Some r when r <= 0. ->
      Atomic.incr server.counters.deadline_exceeded;
      Some
        (P.response ?id:req.P.id
           ~message:"deadline passed while the request was queued"
           P.Deadline_exceeded)
  | _ -> None

let cap_budget config budget =
  let cap current limit ~smaller =
    match (current, limit) with
    | _, None -> current
    | None, Some l -> Some l
    | Some c, Some l -> Some (if smaller c l then c else l)
  in
  {
    budget with
    Sat.Solver.max_seconds =
      cap budget.Sat.Solver.max_seconds config.max_seconds ~smaller:( < );
    max_memory_mb =
      cap budget.Sat.Solver.max_memory_mb config.max_memory_mb ~smaller:( < );
  }

let effective_budget server (req : P.request) ~arrival =
  let budget = cap_budget server.config (P.budget_of_request req) in
  match deadline_remaining req ~arrival with
  | None -> budget
  | Some remaining ->
      let remaining = Float.max remaining 0.001 in
      {
        budget with
        Sat.Solver.max_seconds =
          (match budget.Sat.Solver.max_seconds with
          | None -> Some remaining
          | Some s -> Some (Float.min s remaining));
      }

let strategy_of_request (req : P.request) =
  match req.P.strategy with
  | None -> Ok C.Strategy.best_single
  | Some name -> C.Strategy.of_name name

let record_json ~benchmark ~wall_seconds run =
  Eng.Run_record.to_json
    (Eng.Run_record.of_run ~benchmark ~wall_seconds run)

(* ---------- request execution (runs on a pool worker) ---------- *)

(* [suspect] is the per-request channel from worker to conn thread: the
   worker writes the request's structural hash before anything can crash,
   so when the ticket comes back as a worker death the conn thread knows
   which content to blame. The ticket's own mutex orders the write before
   the read. *)
let run_route server (req : P.request) strategy ~arrival ~suspect ~kill_worker
    =
  let t0 = Unix.gettimeofday () in
  match get_session server ~benchmark:req.P.benchmark strategy with
  | Error m -> P.response ?id:req.P.id ~message:m P.Failed
  | Ok session -> (
      let key =
        Session.cache_key session ~width:req.P.width
          ~budget_signature:(P.budget_signature req) ~certify:req.P.certify
      in
      let hash = structural_hash_of_key key in
      suspect := Some hash;
      if poison_count server hash >= quarantine_threshold then begin
        Atomic.incr server.counters.quarantined;
        P.response ?id:req.P.id
          ~message:
            (Printf.sprintf
               "quarantined: requests on this problem killed %d workers"
               (poison_count server hash))
          P.Failed
      end
      else begin
        if kill_worker then raise Eng.Pool.Persistent.Worker_killed;
        match shed_expired server req ~arrival with
        | Some shed -> shed
        | None -> (
            match Answer_cache.find server.cache key with
            | Some run ->
                Atomic.incr server.counters.cache_hits;
                P.response ?id:req.P.id ~served_by:P.Cache ~run P.Done
            | None ->
                let budget = effective_budget server req ~arrival in
                Obs.Trace.record server.trace Obs.Trace.Solve_begin
                  req.P.width 0;
                let run, served_by =
                  if req.P.certify then begin
                    (* a warm UNSAT is relative to selector assumptions —
                       not a standalone refutation — so certified answers
                       take the full cold pipeline *)
                    Atomic.incr server.counters.cold;
                    let request =
                      C.Flow.(
                        default_request |> with_strategy strategy
                        |> with_budget budget |> with_certify true
                        |> with_telemetry req.P.telemetry)
                    in
                    ( C.Flow.submit request (Session.route session)
                        ~width:req.P.width,
                      P.Cold )
                  end
                  else begin
                    Atomic.incr server.counters.warm;
                    ( Session.route_warm ~budget ~telemetry:req.P.telemetry
                        session ~width:req.P.width,
                      P.Warm )
                  end
                in
                Obs.Trace.record server.trace Obs.Trace.Solve_end req.P.width
                  (if C.Flow.decisive run.C.Flow.outcome then 1 else 0);
                let wall_seconds = Unix.gettimeofday () -. t0 in
                let json =
                  record_json ~benchmark:req.P.benchmark ~wall_seconds run
                in
                (* only decisive answers are cacheable: a timeout says
                   nothing about a retry *)
                if C.Flow.decisive run.C.Flow.outcome then
                  Answer_cache.add server.cache key json;
                P.response ?id:req.P.id ~served_by ~run:json P.Done)
      end)

let run_min_width server (req : P.request) strategy ~arrival ~suspect
    ~kill_worker =
  match get_session server ~benchmark:req.P.benchmark strategy with
  | Error m -> P.response ?id:req.P.id ~message:m P.Failed
  | Ok session -> (
      let key =
        Session.cache_key session ~width:0
          ~budget_signature:(P.budget_signature req) ~certify:false
      in
      let hash = structural_hash_of_key key in
      suspect := Some hash;
      if poison_count server hash >= quarantine_threshold then begin
        Atomic.incr server.counters.quarantined;
        P.response ?id:req.P.id
          ~message:
            (Printf.sprintf
               "quarantined: requests on this problem killed %d workers"
               (poison_count server hash))
          P.Failed
      end
      else begin
        if kill_worker then raise Eng.Pool.Persistent.Worker_killed;
        match shed_expired server req ~arrival with
        | Some shed -> shed
        | None -> (
            let budget = effective_budget server req ~arrival in
            Atomic.incr server.counters.warm;
            match Session.min_width ~budget session with
            | Ok w ->
                P.response ?id:req.P.id ~served_by:P.Warm ~min_width:w P.Done
            | Error m -> P.response ?id:req.P.id ~message:m P.Failed)
      end)

(* ---------- server stats ---------- *)

let stats_json server =
  let queued, running = Eng.Pool.Persistent.backlog server.pool in
  let hits, misses, evictions = Answer_cache.stats server.cache in
  Mutex.lock server.sessions_mutex;
  let sessions = Hashtbl.length server.sessions in
  Mutex.unlock server.sessions_mutex;
  J.Obj
    [
      ("requests", J.Int (Atomic.get server.counters.requests));
      ("cache_hits", J.Int (Atomic.get server.counters.cache_hits));
      ("warm", J.Int (Atomic.get server.counters.warm));
      ("cold", J.Int (Atomic.get server.counters.cold));
      ("overloaded", J.Int (Atomic.get server.counters.overloaded));
      ("errors", J.Int (Atomic.get server.counters.errors));
      ( "deadline_exceeded",
        J.Int (Atomic.get server.counters.deadline_exceeded) );
      ("quarantined", J.Int (Atomic.get server.counters.quarantined));
      ("poisoned_hashes", J.Int (quarantined_count server));
      ("sessions", J.Int sessions);
      ("cache_entries", J.Int (Answer_cache.length server.cache));
      ("cache", J.Obj
         [
           ("hits", J.Int hits);
           ("misses", J.Int misses);
           ("evictions", J.Int evictions);
           ("replayed", J.Int (Answer_cache.replayed server.cache));
           ("torn", J.Int (Answer_cache.torn server.cache));
           ( "journal",
             J.Bool (Answer_cache.journal_path server.cache <> None) );
         ]);
      ("pool", J.Obj
         [
           ("workers", J.Int (Eng.Pool.Persistent.workers server.pool));
           ("queued", J.Int queued);
           ("running", J.Int running);
           ("deaths", J.Int (Eng.Pool.Persistent.deaths server.pool));
           ("respawns", J.Int (Eng.Pool.Persistent.respawns server.pool));
           ( "restart_budget",
             J.Int (Eng.Pool.Persistent.restart_budget server.pool) );
         ]);
      ("trace_events", J.Int (Obs.Trace.total server.trace));
    ]

(* ---------- stop machinery ---------- *)

(* Wake the accept loop with a throwaway self-connection so it re-checks
   the stop flag without waiting for a real client. *)
let wake server =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX server.config.socket_path)
       with _ -> ());
      (try Unix.close fd with _ -> ())

let request_stop server =
  if not (Atomic.exchange server.stop_requested true) then wake server

let stop_requested server = Atomic.get server.stop_requested

(* ---------- per-request dispatch (connection thread) ---------- *)

let submit_pooled server thunk ~id ~suspect =
  match Eng.Pool.Persistent.submit server.pool thunk with
  | Eng.Pool.Persistent.Rejected ->
      Atomic.incr server.counters.overloaded;
      P.response ?id ~message:"request queue is full" P.Overloaded
  | Eng.Pool.Persistent.Stopped ->
      P.response ?id ~message:"server is draining" P.Shutting_down
  | Eng.Pool.Persistent.Accepted ticket -> (
      match Eng.Pool.Persistent.wait ticket with
      | Ok response -> response
      | Error e when Eng.Failure.error_is_worker_death e ->
          Atomic.incr server.counters.errors;
          (match !suspect with
          | Some hash -> record_poison server hash
          | None -> ());
          P.response ?id
            ~message:
              "worker died executing this request; it has been recorded \
               against the problem's quarantine budget"
            P.Failed
      | Error e ->
          Atomic.incr server.counters.errors;
          P.response ?id
            ~message:(Printf.sprintf "%s: %s" e.Eng.Pool.exn_class e.message)
            P.Failed)

(* The [fault] field, honoured only under --test-ops. Conn-thread faults
   (journal tear, self-SIGKILL) happen here; [Worker_kill] is threaded into
   the solve thunk so the death happens on a worker domain mid-request. *)
let resolve_fault server (req : P.request) =
  match req.P.fault with
  | None -> Ok false
  | Some _ when not server.config.test_ops ->
      Error "fault injection requires --test-ops"
  | Some name -> (
      match Eng.Chaos.Server.of_name name with
      | None -> Error (Printf.sprintf "unknown fault %S" name)
      | Some Eng.Chaos.Server.Worker_kill -> Ok true
      | Some Eng.Chaos.Server.Torn_journal ->
          (* the journal fd is O_APPEND, so journaling continues cleanly
             at the truncated end — exactly the state a kill mid-append
             leaves behind *)
          (match Answer_cache.journal_path server.cache with
          | Some path -> Eng.Chaos.Server.tear_journal path
          | None -> ());
          Ok false
      | Some Eng.Chaos.Server.Kill_server ->
          (* the real thing, not an exit: no drain, no unlink, no flush
             beyond what the journal already forced *)
          Unix.kill (Unix.getpid ()) Sys.sigkill;
          Ok false
      | Some Eng.Chaos.Server.Slow_client ->
          (* inflicted from the client side; nothing to do in-server *)
          Ok false)

let handle_request server line =
  Atomic.incr server.counters.requests;
  let arrival = Unix.gettimeofday () in
  let response =
    match P.parse_request line with
    | Error m ->
        Atomic.incr server.counters.errors;
        P.response ~message:m P.Failed
    | Ok req -> (
        let id = req.P.id in
        match resolve_fault server req with
        | Error m ->
            Atomic.incr server.counters.errors;
            P.response ?id ~message:m P.Failed
        | Ok kill_worker -> (
            match req.P.op with
            | P.Ping ->
                P.response ?id
                  ~payload:(J.Obj [ ("pong", J.Bool true) ])
                  P.Done
            | P.Stats -> P.response ?id ~payload:(stats_json server) P.Done
            | P.Shutdown ->
                request_stop server;
                P.response ?id P.Done
            | P.Sleep seconds when server.config.test_ops ->
                let suspect = ref None in
                submit_pooled server ~id ~suspect (fun () ->
                    if kill_worker then
                      raise Eng.Pool.Persistent.Worker_killed;
                    Unix.sleepf (Float.max 0. seconds);
                    P.response ?id P.Done)
            | P.Sleep _ ->
                Atomic.incr server.counters.errors;
                P.response ?id ~message:"op \"sleep\" requires --test-ops"
                  P.Failed
            | P.Route | P.Min_width -> (
                match strategy_of_request req with
                | Error m ->
                    Atomic.incr server.counters.errors;
                    P.response ?id ~message:("bad strategy: " ^ m) P.Failed
                | Ok strategy ->
                    let suspect = ref None in
                    submit_pooled server ~id ~suspect (fun () ->
                        match req.P.op with
                        | P.Route ->
                            run_route server req strategy ~arrival ~suspect
                              ~kill_worker
                        | _ ->
                            run_min_width server req strategy ~arrival
                              ~suspect ~kill_worker))))
  in
  J.to_string (P.response_to_json response)

(* ---------- connection handling ---------- *)

let unregister_conn server fd =
  Mutex.lock server.conns_mutex;
  server.conns <- List.filter (fun (_, f) -> f != fd) server.conns;
  Mutex.unlock server.conns_mutex

let handle_conn server fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        let reply = handle_request server line in
        (match
           output_string oc reply;
           output_char oc '\n';
           flush oc
         with
        | () -> ()
        | exception Sys_error _ -> ());
        if not (stop_requested server) then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      unregister_conn server fd;
      try Unix.close fd with _ -> ())
    loop

let accept_loop server () =
  let rec loop () =
    if not (stop_requested server) then
      match Unix.accept server.listener with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) when stop_requested server -> ()
      | fd, _ ->
          if stop_requested server then (
            (try Unix.close fd with _ -> ()))
          else begin
            let th = Thread.create (handle_conn server) fd in
            Mutex.lock server.conns_mutex;
            server.conns <- (th, fd) :: server.conns;
            Mutex.unlock server.conns_mutex;
            loop ()
          end
  in
  loop ()

(* ---------- lifecycle ---------- *)

(* A leftover socket file can mean two very different things: a live
   server (binding over it would silently steal its clients) or the
   residue of a SIGKILL'd predecessor (refusing to bind would make every
   crash need manual cleanup). A connect probe tells them apart: a live
   listener accepts, a dead one's socket answers ECONNREFUSED. Only the
   dead case is unlinked; anything else — a live server, a foreign
   non-socket file — is an error, never a removal. *)
let reclaim_socket path =
  match (Unix.stat path).Unix.st_kind with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | Unix.S_SOCK -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let probe =
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
        | exception Unix.Unix_error (e, _, _) -> `Error e
      in
      (try Unix.close fd with _ -> ());
      match probe with
      | `Live ->
          failwith
            (Printf.sprintf "a server is already listening on %s" path)
      | `Stale ->
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | `Gone -> ()
      | `Error e ->
          failwith
            (Printf.sprintf "cannot probe socket %s: %s" path
               (Unix.error_message e)))
  | _ ->
      failwith
        (Printf.sprintf "%s exists and is not a socket; refusing to remove it"
           path)

let start config =
  (* Journal first: an un-attachable cache file (locked by a live server,
     unwritable path) must fail before we own the socket. *)
  let cache = Answer_cache.create ~capacity:config.cache_capacity () in
  (match config.cache_file with
  | None -> ()
  | Some path -> (
      match
        Answer_cache.attach_journal cache ~path ~to_json:Fun.id
          ~of_json:Option.some
      with
      | Ok _replayed -> ()
      | Error m -> failwith (Printf.sprintf "cache journal %s: %s" path m)));
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match reclaim_socket config.socket_path with
  | () -> ()
  | exception e ->
      (try Unix.close listener with _ -> ());
      Answer_cache.detach_journal cache;
      raise e);
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener 64;
  let server =
    {
      config;
      listener;
      pool =
        Eng.Pool.Persistent.create ~workers:config.workers
          ~queue_capacity:config.queue_capacity ();
      cache;
      sessions = Hashtbl.create 16;
      sessions_mutex = Mutex.create ();
      session_tick = 0;
      poison = Hashtbl.create 8;
      poison_mutex = Mutex.create ();
      trace = Obs.Trace.create ();
      counters =
        {
          requests = Atomic.make 0;
          cache_hits = Atomic.make 0;
          warm = Atomic.make 0;
          cold = Atomic.make 0;
          overloaded = Atomic.make 0;
          errors = Atomic.make 0;
          deadline_exceeded = Atomic.make 0;
          quarantined = Atomic.make 0;
        };
      stop_requested = Atomic.make false;
      drained = Atomic.make false;
      accept_thread = None;
      conns_mutex = Mutex.create ();
      conns = [];
    }
  in
  server.accept_thread <- Some (Thread.create (accept_loop server) ());
  server

let replayed server = Answer_cache.replayed server.cache

let stop server =
  request_stop server;
  if not (Atomic.exchange server.drained true) then begin
    (* 1. no new connections *)
    (match server.accept_thread with
    | Some th ->
        Thread.join th;
        server.accept_thread <- None
    | None -> ());
    (try Unix.close server.listener with _ -> ());
    (* 2. unblock idle connection threads (EOF on their next read); ones
       mid-request finish writing their response first *)
    Mutex.lock server.conns_mutex;
    let conns = server.conns in
    Mutex.unlock server.conns_mutex;
    List.iter
      (fun (_, fd) ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      conns;
    List.iter (fun (th, _) -> Thread.join th) conns;
    (* 3. drain the worker pool: every accepted job finishes, every worker
       domain is joined — no orphans *)
    Eng.Pool.Persistent.shutdown server.pool;
    (* 4. only now is the journal quiescent *)
    Answer_cache.detach_journal server.cache;
    (try Unix.unlink server.config.socket_path with Unix.Unix_error _ -> ())
  end

let trace server = server.trace
let socket_path server = server.config.socket_path

let run config =
  let server = start config in
  let handler _ = request_stop server in
  let previous_term = Sys.signal Sys.sigterm (Sys.Signal_handle handler) in
  let previous_int = Sys.signal Sys.sigint (Sys.Signal_handle handler) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm previous_term;
      Sys.set_signal Sys.sigint previous_int)
    (fun () ->
      while not (stop_requested server) do
        Thread.delay 0.05
      done;
      stop server)
