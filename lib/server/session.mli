(** A warm solver session: one benchmark × strategy, encoded once.

    A session wraps a {!Fpgasat_core.Incremental_width.ladder} built from
    the benchmark's conflict graph: the first request pays the encode
    (plus selector construction and solver creation); every later width
    query is an assumption-only call on the persistent solver, reusing its
    learnt clauses. Sessions are the reason repeated queries through the
    server beat cold [fpgasat route] invocations.

    A session serialises its own solver access with an internal mutex, so
    any number of server workers may hold the same session; queries on one
    session run one at a time (queries on different sessions run in
    parallel). *)

type t

val create :
  benchmark:string ->
  Fpgasat_core.Strategy.t ->
  Fpgasat_fpga.Benchmarks.instance ->
  t
(** The cold part: builds the ladder (encode at the DSATUR upper bound)
    and the greedy colouring used to answer [width ≥ upper] instantly. *)

val benchmark : t -> string
val strategy : t -> Fpgasat_core.Strategy.t
val route : t -> Fpgasat_fpga.Global_route.t
(** For the cold (certify) path, which bypasses the ladder. *)

val bounds : t -> int * int
(** Clique lower bound and DSATUR upper bound. *)

val served : t -> int
(** Requests this session has answered. *)

val prepare_seconds : t -> float
(** Wall cost of {!create} — the amortised cold cost warm queries skip. *)

val cache_key :
  t -> width:int -> budget_signature:string -> certify:bool -> string
(** The answer-cache identity of a width query on this session:
    [cnf-structural-hash|strategy|width|budget|certify]. Content-derived —
    two sessions over identical CNF under the same strategy share
    entries. *)

val route_warm :
  ?budget:Fpgasat_sat.Solver.budget ->
  ?telemetry:bool ->
  t ->
  width:int ->
  Fpgasat_core.Flow.run
(** Answers a width query on the warm ladder and synthesises a
    {!Fpgasat_core.Flow.run} whose solver statistics are this query's
    {e delta} (cumulative counters snapshotted around the call);
    [timings.to_graph] and [timings.to_cnf] are 0 — the session already
    paid them. Widths at or above the DSATUR upper bound are answered from
    the stored greedy colouring without touching the solver. Raises
    {!Fpgasat_core.Flow.Decode_mismatch} on a decode failure (isolated by
    the server's worker pool). *)

val min_width :
  ?budget:Fpgasat_sat.Solver.budget -> t -> (int, string) result
(** Minimal width by walking the warm ladder downward (the
    {!Fpgasat_core.Incremental_width.minimal_colors} schedule, without
    re-encoding). The budget applies per query. *)
