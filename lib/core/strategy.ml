module E = Fpgasat_encodings
module Sat = Fpgasat_sat

type t = {
  encoding : E.Encoding.t;
  symmetry : E.Symmetry.heuristic option;
  solver : Sat.Solver.config;
  solver_name : string;
}

let solver_of = function
  | `Siege_like -> (Sat.Solver.siege_like, "siege")
  | `Minisat_like -> (Sat.Solver.minisat_like, "minisat")

let make ?symmetry ?(solver = `Siege_like) encoding =
  let solver, solver_name = solver_of solver in
  { encoding; symmetry; solver; solver_name }

let with_defs t = { t with encoding = E.Encoding.defs t.encoding }

let name t =
  Printf.sprintf "%s/%s@%s"
    (E.Encoding.name t.encoding)
    (match t.symmetry with None -> "none" | Some h -> E.Symmetry.name h)
    t.solver_name

let of_name s =
  let ( let* ) = Result.bind in
  let body, solver =
    match String.index_opt s '@' with
    | None -> (s, Ok `Siege_like)
    | Some i -> (
        let solver_str = String.sub s (i + 1) (String.length s - i - 1) in
        ( String.sub s 0 i,
          match String.lowercase_ascii solver_str with
          | "siege" | "siege_v4" -> Ok `Siege_like
          | "minisat" -> Ok `Minisat_like
          | other -> Error (Printf.sprintf "unknown solver %S" other) ))
  in
  let* solver = solver in
  let enc_str, symmetry =
    match String.index_opt body '/' with
    | None -> (body, Ok None)
    | Some i -> (
        let sym_str = String.sub body (i + 1) (String.length body - i - 1) in
        ( String.sub body 0 i,
          match String.lowercase_ascii sym_str with
          | "none" | "-" -> Ok None
          | other -> (
              match E.Symmetry.of_name other with
              | Some h -> Ok (Some h)
              | None -> Error (Printf.sprintf "unknown symmetry heuristic %S" other)) ))
  in
  let* symmetry = symmetry in
  let* encoding = E.Registry.of_name enc_str in
  Ok (make ?symmetry:(Option.map Fun.id symmetry) ~solver encoding)

let enc name =
  match E.Encoding.of_name name with
  | Ok e -> e
  | Error msg -> invalid_arg msg

let best_single = make ~symmetry:E.Symmetry.S1 (enc "ITE-linear-2+muldirect")

let paper_portfolio_2 =
  [ best_single; make ~symmetry:E.Symmetry.S1 (enc "muldirect-3+muldirect") ]

let paper_portfolio_3 =
  paper_portfolio_2 @ [ make ~symmetry:E.Symmetry.S1 (enc "ITE-linear-2+direct") ]
