(** End-to-end API of the reproduction.

    {!Strategy} combines an encoding with a symmetry heuristic and a solver
    preset; {!Flow} runs global routing → colouring → CNF → SAT → verified
    detailed routing (or unroutability proof); {!Binary_search} finds the
    minimal channel width with an optimality proof; {!Report} formats
    paper-style tables. Strategy portfolios and multi-cell experiment
    sweeps live one layer up, in [Fpgasat_engine] (they schedule runs of
    this flow over a bounded domain pool). *)

module Strategy = Strategy
module Flow = Flow
module Binary_search = Binary_search
module Incremental_width = Incremental_width
module Report = Report
