let with_thousands s =
  (* insert commas into the integer part of a numeral string *)
  let int_part, rest =
    match String.index_opt s '.' with
    | Some i -> (String.sub s 0 i, String.sub s i (String.length s - i))
    | None -> (s, "")
  in
  let n = String.length int_part in
  let buf = Buffer.create (n + 4) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    int_part;
  Buffer.contents buf ^ rest

let format_seconds t = with_thousands (Printf.sprintf "%.2f" t)

let format_speedup x =
  if x < 10. then Printf.sprintf "%.2fx" x
  else with_thousands (Printf.sprintf "%.0f" x) ^ "x"

let render_table ~header rows =
  let ncols = List.length header in
  let pad_row row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let render_cell i cell =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let render_row row = String.concat "  " (List.mapi render_cell row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n"
    ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let matrix ?(corner = "") ~rows ~cols ~cell () =
  render_table ~header:(corner :: cols)
    (List.map (fun row -> row :: List.map (fun col -> cell ~row ~col) cols) rows)

let section title =
  let bar = String.make (max 8 (String.length title + 4)) '=' in
  Printf.sprintf "\n%s\n= %s\n%s\n" bar title bar
