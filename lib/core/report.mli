(** Formatting of paper-style result tables. *)

val format_seconds : float -> string
(** Two decimals with thousands separators, e.g. ["1,018.10"] — the style
    of Table 2. *)

val format_speedup : float -> string
(** E.g. ["1,139x"]; one decimal below 10. *)

val render_table : header:string list -> string list list -> string
(** Monospace table with column-width alignment; the first column is
    left-aligned, the rest right-aligned. Rows shorter than the header are
    padded with empty cells. *)

val matrix :
  ?corner:string ->
  rows:string list ->
  cols:string list ->
  cell:(row:string -> col:string -> string) ->
  unit ->
  string
(** [matrix ~rows ~cols ~cell ()] renders the full rows × cols table with
    {!render_table}, computing each body cell with [cell]. [corner] is the
    header of the row-label column (default empty). The benchmark matrices
    (benchmarks × strategies) are views produced by this function over
    collected run records. *)

val section : string -> string
(** A titled horizontal rule. *)
