(** Solution strategies: an encoding, an optional symmetry-breaking
    heuristic, and a solver preset.

    This is the unit the paper's portfolios are built from ("each a
    combination of a SAT encoding and a symmetry-breaking heuristic"). *)

type t = {
  encoding : Fpgasat_encodings.Encoding.t;
  symmetry : Fpgasat_encodings.Symmetry.heuristic option;
  solver : Fpgasat_sat.Solver.config;
  solver_name : string;
}

val make :
  ?symmetry:Fpgasat_encodings.Symmetry.heuristic ->
  ?solver:[ `Siege_like | `Minisat_like ] ->
  Fpgasat_encodings.Encoding.t ->
  t
(** Default solver: [`Siege_like] — the paper found siege_v4 at least 2×
    faster on the (hard) unsatisfiable instances. *)

val with_defs : t -> t
(** The same strategy with the encoding switched to definitional ([+defs])
    emission. *)

val name : t -> string
(** E.g. ["ITE-linear-2+muldirect/s1@siege"]; definitional-emission
    strategies read ["ITE-linear-2+muldirect+defs/s1@siege"]. *)

val of_name : string -> (t, string) result
(** Parses ["<encoding>[/<sym>][@<solver>]"] where [<encoding>] may carry
    the [+defs] emission suffix, [<sym>] is [b1], [s1] or [none] and
    [<solver>] is [siege] or [minisat]. *)

val best_single : t
(** The paper's winner: ITE-linear-2+muldirect with s1. *)

val paper_portfolio_2 : t list
(** The paper's 2-member portfolio: ITE-linear-2+muldirect/s1 and
    muldirect-3+muldirect/s1. *)

val paper_portfolio_3 : t list
(** The above plus ITE-linear-2+direct/s1. *)
