(** Minimal channel width by incremental SAT.

    Instead of one fresh CNF per width (as {!Binary_search} does), the
    colouring problem is encoded {e once} at the DSATUR upper bound with one
    fresh {e selector} variable per colour and clauses
    [not s_c \/ not pattern_v(c)]: assuming [s_c] switches colour [c] off for
    every vertex. One persistent solver then answers a width-[w] query under
    assumptions [{s_c | c >= w}], keeping its learnt clauses between
    queries. Works with every encoding, because switching a colour off is a
    clause over its indexing pattern, not a single literal.

    This is an engineering extension beyond the paper (which re-translated
    per configuration); the bench compares the two searches. *)

(** {1 The width ladder}

    The encode-once-query-many substrate, exposed on its own so callers
    with their own query schedule can share it: {!minimal_colors} walks it
    downward, and the solve server keeps one ladder {e warm} per
    (benchmark × strategy) session, answering repeated width queries
    without re-encoding. *)

type ladder
(** An encoded colouring problem with its persistent solver and colour
    selectors. Not thread-safe: callers serialise access (the server holds
    one mutex per session). *)

val prepare : ?strategy:Strategy.t -> Fpgasat_graph.Graph.t -> ladder
(** Encodes the graph once at the DSATUR upper bound (cold cost); every
    subsequent {!query} is an assumption-only call on the shared solver. *)

val query :
  ?budget:Fpgasat_sat.Solver.budget ->
  ladder ->
  width:int ->
  [ `Colorable of Fpgasat_graph.Coloring.t | `Uncolorable | `Timeout | `Memout ]
(** Is the graph colourable with [width] colours? The budget applies to
    this query alone; learnt clauses persist across queries. Widths above
    the ladder's upper bound are answered at the upper bound (equivalent:
    a colouring within fewer colours fits a fortiori). Raises
    [Invalid_argument] when [width < 1] and {!Flow.Decode_mismatch} if a
    model fails to decode into a proper colouring. *)

val bounds : ladder -> int * int
(** [(lower, upper)]: the clique lower bound and DSATUR upper bound the
    ladder was built with. *)

val queries : ladder -> int
(** Queries answered so far. *)

val stats : ladder -> Fpgasat_sat.Stats.t
(** The shared solver's cumulative statistics — snapshot around a {!query}
    to attribute per-query work. *)

val strategy : ladder -> Strategy.t

val cnf_hash : ladder -> int64
(** {!Fpgasat_sat.Cnf.structural_hash} of the encoded problem CNF (before
    selector augmentation) — the content part of the server's answer-cache
    key. *)

val cnf_size : ladder -> int * int
(** [(vars, clauses)] of the encoded problem CNF, for run records. *)

(** {1 Minimal-width search} *)

type search_result = {
  w_min : int;
  coloring : Fpgasat_graph.Coloring.t;  (** A proper [w_min]-colouring. *)
  queries : int;  (** SAT queries answered by the shared solver. *)
  stats : Fpgasat_sat.Stats.t;  (** Cumulative solver statistics. *)
}

val minimal_colors :
  ?strategy:Strategy.t ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Fpgasat_graph.Graph.t ->
  (search_result, string) result
(** Minimal number of colours of a conflict graph (= minimal channel width
    of the routing it came from), walking a {!ladder} downward. The budget
    applies per query. *)
