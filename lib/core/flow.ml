module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga

type timings = { to_graph : float; to_cnf : float; solving : float }

let total t = t.to_graph +. t.to_cnf +. t.solving

type outcome =
  | Routable of F.Detailed_route.t
  | Unroutable
  | Timeout

type run = {
  outcome : outcome;
  timings : timings;
  width : int;
  strategy : Strategy.t;
  cnf_vars : int;
  cnf_clauses : int;
  solver_stats : Sat.Stats.t;
  proof : Sat.Proof.t option;
}

let outcome_name = function
  | Routable _ -> "routable"
  | Unroutable -> "unroutable"
  | Timeout -> "timeout"

let decisive = function
  | Routable _ | Unroutable -> true
  | Timeout -> false

exception Decode_mismatch of string

let timed f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let solve_csp strategy budget proof csp =
  let encoded, to_cnf =
    timed (fun () ->
        E.Csp_encode.encode ?symmetry:strategy.Strategy.symmetry
          strategy.Strategy.encoding csp)
  in
  let (result, stats), solving =
    timed (fun () ->
        Sat.Solver.solve ~config:strategy.Strategy.solver ~budget ?proof
          encoded.E.Csp_encode.cnf)
  in
  let answer =
    match result with
    | Sat.Solver.Sat model ->
        let coloring = E.Csp_encode.decode encoded model in
        if not (E.Csp.solution_ok csp coloring) then
          raise (Decode_mismatch "decoded colouring is not proper")
        else `Colorable coloring
    | Sat.Solver.Unsat -> `Uncolorable
    | Sat.Solver.Unknown -> `Timeout
  in
  (answer, encoded, stats, to_cnf, solving)

let color_graph ?(strategy = Strategy.best_single)
    ?(budget = Sat.Solver.no_budget) graph ~k =
  let csp, to_graph = timed (fun () -> E.Csp.make graph ~k) in
  let answer, _encoded, _stats, to_cnf, solving =
    solve_csp strategy budget None csp
  in
  (answer, { to_graph; to_cnf; solving })

let check_width ?(strategy = Strategy.best_single)
    ?(budget = Sat.Solver.no_budget) ?(want_proof = false) route ~width =
  if width < 1 then invalid_arg "Flow.check_width: width < 1";
  let (graph, csp), to_graph =
    timed (fun () ->
        let graph = F.Conflict_graph.build route in
        (graph, E.Csp.make graph ~k:width))
  in
  ignore graph;
  let proof = if want_proof then Some (Sat.Proof.create ()) else None in
  let answer, encoded, stats, to_cnf, solving =
    solve_csp strategy budget proof csp
  in
  let outcome =
    match answer with
    | `Colorable coloring -> (
        match F.Detailed_route.of_coloring route ~width coloring with
        | Ok detailed -> Routable detailed
        | Error violation ->
            raise
              (Decode_mismatch
                 (Format.asprintf "detailed routing rejected: %a"
                    F.Detailed_route.pp_violation violation)))
    | `Uncolorable -> Unroutable
    | `Timeout -> Timeout
  in
  {
    outcome;
    timings = { to_graph; to_cnf; solving };
    width;
    strategy;
    cnf_vars = Sat.Cnf.num_vars encoded.E.Csp_encode.cnf;
    cnf_clauses = Sat.Cnf.num_clauses encoded.E.Csp_encode.cnf;
    solver_stats = stats;
    proof;
  }
