module Sat = Fpgasat_sat
module Obs = Fpgasat_obs
module G = Fpgasat_graph
module E = Fpgasat_encodings
module F = Fpgasat_fpga

type timings = { to_graph : float; to_cnf : float; solving : float }

let total t = t.to_graph +. t.to_cnf +. t.solving

type outcome =
  | Routable of F.Detailed_route.t
  | Unroutable
  | Timeout
  | Memout

type run = {
  outcome : outcome;
  timings : timings;
  width : int;
  strategy : Strategy.t;
  cnf_vars : int;
  cnf_clauses : int;
  solver_stats : Sat.Stats.t;
  proof : Sat.Proof.t option;
  certified : bool option;
  telemetry : Obs.Telemetry.t option;
}

let outcome_name = function
  | Routable _ -> "routable"
  | Unroutable -> "unroutable"
  | Timeout -> "timeout"
  | Memout -> "memout"

let decisive = function
  | Routable _ | Unroutable -> true
  | Timeout | Memout -> false

exception Decode_mismatch of string

(* Wall clock, not [Sys.time]: the timing buckets feed run records that are
   compared across sweeps, and process CPU time is inflated ~jobs× by
   concurrent domains. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let solve_csp strategy budget proof csp =
  let encoded, to_cnf =
    timed (fun () ->
        E.Csp_encode.encode ?symmetry:strategy.Strategy.symmetry
          strategy.Strategy.encoding csp)
  in
  let (result, stats), solving =
    timed (fun () ->
        Sat.Solver.solve ~config:strategy.Strategy.solver ~budget ?proof
          encoded.E.Csp_encode.cnf)
  in
  let answer =
    match result with
    | Sat.Solver.Sat model ->
        let coloring = E.Csp_encode.decode encoded model in
        if not (E.Csp.solution_ok csp coloring) then
          raise (Decode_mismatch "decoded colouring is not proper")
        else `Colorable (coloring, model)
    | Sat.Solver.Unsat -> `Uncolorable
    | Sat.Solver.Unknown -> `Timeout
    | Sat.Solver.Memout -> `Memout
  in
  (answer, encoded, stats, to_cnf, solving)

(* The DPLL backend is the retry ladder's last rung: no learnt-clause
   database, so a cell that memouts under CDCL may still finish here. The
   only budget DPLL understands is a decision bound, so [max_conflicts]
   stands in for it; no proof is recorded. *)
let solve_csp_dpll strategy budget csp =
  let encoded, to_cnf =
    timed (fun () ->
        E.Csp_encode.encode ?symmetry:strategy.Strategy.symmetry
          strategy.Strategy.encoding csp)
  in
  let max_decisions =
    Option.value budget.Sat.Solver.max_conflicts ~default:2_000_000
  in
  let result, solving =
    timed (fun () -> Sat.Dpll.solve ~max_decisions encoded.E.Csp_encode.cnf)
  in
  let answer =
    match result with
    | Sat.Dpll.Sat model ->
        let coloring = E.Csp_encode.decode encoded model in
        if not (E.Csp.solution_ok csp coloring) then
          raise (Decode_mismatch "decoded colouring is not proper")
        else `Colorable (coloring, model)
    | Sat.Dpll.Unsat -> `Uncolorable
    | Sat.Dpll.Unknown -> `Timeout
  in
  (answer, encoded, Sat.Stats.create (), to_cnf, solving)

let color_graph ?(strategy = Strategy.best_single)
    ?(budget = Sat.Solver.no_budget) graph ~k =
  let csp, to_graph = timed (fun () -> E.Csp.make graph ~k) in
  let answer, _encoded, _stats, to_cnf, solving =
    solve_csp strategy budget None csp
  in
  let answer =
    match answer with
    | `Colorable (coloring, _model) -> `Colorable coloring
    | (`Uncolorable | `Timeout | `Memout) as a -> a
  in
  (answer, { to_graph; to_cnf; solving })

type request = {
  strategy : Strategy.t;
  budget : Sat.Solver.budget;
  want_proof : bool;
  certify : bool;
  telemetry : bool;
  trace : Obs.Trace.t option;
  backend : [ `Cdcl | `Dpll ];
}

let default_request =
  {
    strategy = Strategy.best_single;
    budget = Sat.Solver.no_budget;
    want_proof = false;
    certify = false;
    telemetry = false;
    trace = None;
    backend = `Cdcl;
  }

let with_strategy strategy r = { r with strategy }
let with_budget budget r = { r with budget }
let with_proof want_proof r = { r with want_proof }
let with_certify certify r = { r with certify }
let with_telemetry telemetry r = { r with telemetry }
let with_trace trace r = { r with trace = Some trace }
let with_backend backend r = { r with backend }

let submit
    { strategy; budget; want_proof; certify; telemetry; trace; backend } route
    ~width =
  if width < 1 then invalid_arg "Flow.submit: width < 1";
  (* an attached trace takes over the budget's event hook: the run's
     lifecycle is exactly what the profile is for *)
  let budget =
    match trace with
    | None -> budget
    | Some tr -> Sat.Solver.with_event_hook (Obs.Trace.sink tr) budget
  in
  let (graph, csp), to_graph =
    timed (fun () ->
        let graph = F.Conflict_graph.build route in
        (graph, E.Csp.make graph ~k:width))
  in
  ignore graph;
  let proof =
    match backend with
    | `Dpll -> None
    | `Cdcl ->
        if want_proof || certify then Some (Sat.Proof.create ()) else None
  in
  Obs.Trace.record_opt trace Obs.Trace.Solve_begin width 0;
  let alloc0 = if telemetry then Gc.allocated_bytes () else 0. in
  let answer, encoded, stats, to_cnf, solving =
    match backend with
    | `Cdcl -> solve_csp strategy budget proof csp
    | `Dpll -> solve_csp_dpll strategy budget csp
  in
  let telemetry =
    if telemetry then
      let words_allocated =
        int_of_float
          ((Gc.allocated_bytes () -. alloc0)
          /. float_of_int (Sys.word_size / 8))
      in
      Some (Obs.Telemetry.of_stats ~solving ~words_allocated stats)
    else None
  in
  let cnf = encoded.E.Csp_encode.cnf in
  let outcome, certified =
    match answer with
    | `Colorable (coloring, model) -> (
        match F.Detailed_route.of_coloring route ~width coloring with
        | Ok detailed ->
            let certified =
              if certify then
                Some
                  (Sat.Solver.check_model cnf model
                  && Result.is_ok (F.Detailed_route.verify route ~width coloring))
              else None
            in
            (Routable detailed, certified)
        | Error violation ->
            raise
              (Decode_mismatch
                 (Format.asprintf "detailed routing rejected: %a"
                    F.Detailed_route.pp_violation violation)))
    | `Uncolorable ->
        let certified =
          if certify then
            match proof with
            | Some p -> Some (Result.is_ok (Sat.Drat_check.check cnf p))
            | None -> Some false
          else None
        in
        (Unroutable, certified)
    | `Timeout -> (Timeout, None)
    | `Memout -> (Memout, None)
  in
  Obs.Trace.record_opt trace Obs.Trace.Solve_end width
    (if decisive outcome then 1 else 0);
  {
    outcome;
    timings = { to_graph; to_cnf; solving };
    width;
    strategy;
    cnf_vars = Sat.Cnf.num_vars cnf;
    cnf_clauses = Sat.Cnf.num_clauses cnf;
    solver_stats = stats;
    proof;
    certified;
    telemetry;
  }
