(** The end-to-end tool flow of the paper (Sect. 1):

    global routing → colouring conflict graph (DIMACS-compatible) → CNF
    under a chosen encoding (+ optional symmetry clauses) → SAT solver →
    either a verified detailed routing or a proof of unroutability.

    Timings are reported in the paper's three buckets: translation to graph
    colouring, translation to CNF, and SAT solving; "total CPU time" is
    their sum (Table 2's metric). *)

type timings = {
  to_graph : float;  (** Seconds to build the conflict graph. *)
  to_cnf : float;  (** Seconds to encode it as CNF. *)
  solving : float;  (** Seconds inside the SAT solver. *)
}

val total : timings -> float

type outcome =
  | Routable of Fpgasat_fpga.Detailed_route.t
      (** Decoded from the model and verified against the architecture. *)
  | Unroutable
      (** The CNF is unsatisfiable: no detailed routing with this width
          exists for this global routing. *)
  | Timeout  (** Budget exhausted: no answer. *)
  | Memout
      (** The solver's [max_memory_mb] ceiling was crossed and the search
          stopped cooperatively: no answer, but the process survived. *)

val outcome_name : outcome -> string
(** ["routable"], ["unroutable"], ["timeout"] or ["memout"] — the stable
    tags used by the machine-readable run records (see
    [Fpgasat_engine.Run_record]). *)

val decisive : outcome -> bool
(** True on {!Routable} and {!Unroutable}: the question was answered. *)

type run = {
  outcome : outcome;
  timings : timings;
  width : int;
  strategy : Strategy.t;
  cnf_vars : int;
  cnf_clauses : int;
  solver_stats : Fpgasat_sat.Stats.t;
  proof : Fpgasat_sat.Proof.t option;
  certified : bool option;
      (** [None] when certification was not requested or the outcome is
          {!Timeout}; [Some true] when the answer carried a checked
          certificate — an UNSAT proof accepted by {!Fpgasat_sat.Drat_check}
          or a model accepted by {!Fpgasat_sat.Solver.check_model} plus
          {!Fpgasat_fpga.Detailed_route.verify}. *)
  telemetry : Fpgasat_obs.Telemetry.t option;
      (** Derived performance metrics of this run; [None] unless the run
          was asked for them ([~telemetry:true]). *)
}

exception Decode_mismatch of string
(** A SAT model failed to decode into a proper colouring or a legal detailed
    routing — would indicate an encoding bug; never expected. *)

(** {1 Requests}

    Everything a width query can be asked to do, as one value. This is the
    unit of work the solve server receives over the wire, the sweep engine
    schedules, and the CLI builds from its flags — instead of a growing
    list of optional arguments on every entry point. Build one with
    {!default_request} and the [with_*] combinators:

    {[
      Flow.(
        default_request |> with_strategy s |> with_certify true
        |> with_budget (Sat.Solver.time_budget 5.))
    ]} *)

type request = {
  strategy : Strategy.t;  (** Default {!Strategy.best_single}. *)
  budget : Fpgasat_sat.Solver.budget;  (** Applies to the SAT search. *)
  want_proof : bool;
      (** Record a DRAT trace on UNSAT ([certify] implies it). *)
  certify : bool;
      (** Independently check the answer — UNSAT proofs through
          {!Fpgasat_sat.Drat_check}, models through
          {!Fpgasat_sat.Solver.check_model} plus
          {!Fpgasat_fpga.Detailed_route.verify}; see {!field-run.certified}. *)
  telemetry : bool;
      (** Derive {!field-run.telemetry} (throughput rates, LBD histogram,
          allocation); the only cost is two [Gc.allocated_bytes] reads. *)
  trace : Fpgasat_obs.Trace.t option;
      (** Record the run's lifecycle — a solve span plus solver events via
          {!Fpgasat_obs.Trace.sink}, which replaces any [on_event] hook
          already on the budget. *)
  backend : [ `Cdcl | `Dpll ];
      (** [`Dpll] runs the plain DPLL solver instead of CDCL — the last
          rung of the sweep supervisor's fallback ladder. DPLL honours only
          [budget.max_conflicts] (as a decision bound, default 2M) and
          records no proof, so a certified UNSAT answer is impossible
          ([certified = Some false] when requested); SAT answers still
          certify via model checking. *)
}

val default_request : request
(** {!Strategy.best_single}, no budget, no proof, no certification, no
    telemetry, no trace, [`Cdcl]. *)

val with_strategy : Strategy.t -> request -> request
val with_budget : Fpgasat_sat.Solver.budget -> request -> request
val with_proof : bool -> request -> request
val with_certify : bool -> request -> request
val with_telemetry : bool -> request -> request
val with_trace : Fpgasat_obs.Trace.t -> request -> request
val with_backend : [ `Cdcl | `Dpll ] -> request -> request

val submit : request -> Fpgasat_fpga.Global_route.t -> width:int -> run
(** Decides detailed routability of a global routing with [width] tracks,
    as specified by the request. Raises [Invalid_argument] when
    [width < 1]. *)

val color_graph :
  ?strategy:Strategy.t ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Fpgasat_graph.Graph.t ->
  k:int ->
  [ `Colorable of Fpgasat_graph.Coloring.t | `Uncolorable | `Timeout | `Memout ]
  * timings
(** The same engine on a bare colouring problem (used by benches operating
    directly on conflict graphs, and by the binary search). *)
