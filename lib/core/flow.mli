(** The end-to-end tool flow of the paper (Sect. 1):

    global routing → colouring conflict graph (DIMACS-compatible) → CNF
    under a chosen encoding (+ optional symmetry clauses) → SAT solver →
    either a verified detailed routing or a proof of unroutability.

    Timings are reported in the paper's three buckets: translation to graph
    colouring, translation to CNF, and SAT solving; "total CPU time" is
    their sum (Table 2's metric). *)

type timings = {
  to_graph : float;  (** Seconds to build the conflict graph. *)
  to_cnf : float;  (** Seconds to encode it as CNF. *)
  solving : float;  (** Seconds inside the SAT solver. *)
}

val total : timings -> float

type outcome =
  | Routable of Fpgasat_fpga.Detailed_route.t
      (** Decoded from the model and verified against the architecture. *)
  | Unroutable
      (** The CNF is unsatisfiable: no detailed routing with this width
          exists for this global routing. *)
  | Timeout  (** Budget exhausted: no answer. *)
  | Memout
      (** The solver's [max_memory_mb] ceiling was crossed and the search
          stopped cooperatively: no answer, but the process survived. *)

val outcome_name : outcome -> string
(** ["routable"], ["unroutable"], ["timeout"] or ["memout"] — the stable
    tags used by the machine-readable run records (see
    [Fpgasat_engine.Run_record]). *)

val decisive : outcome -> bool
(** True on {!Routable} and {!Unroutable}: the question was answered. *)

type run = {
  outcome : outcome;
  timings : timings;
  width : int;
  strategy : Strategy.t;
  cnf_vars : int;
  cnf_clauses : int;
  solver_stats : Fpgasat_sat.Stats.t;
  proof : Fpgasat_sat.Proof.t option;
  certified : bool option;
      (** [None] when certification was not requested or the outcome is
          {!Timeout}; [Some true] when the answer carried a checked
          certificate — an UNSAT proof accepted by {!Fpgasat_sat.Drat_check}
          or a model accepted by {!Fpgasat_sat.Solver.check_model} plus
          {!Fpgasat_fpga.Detailed_route.verify}. *)
  telemetry : Fpgasat_obs.Telemetry.t option;
      (** Derived performance metrics of this run; [None] unless the run
          was asked for them ([~telemetry:true]). *)
}

exception Decode_mismatch of string
(** A SAT model failed to decode into a proper colouring or a legal detailed
    routing — would indicate an encoding bug; never expected. *)

val check_width :
  ?strategy:Strategy.t ->
  ?budget:Fpgasat_sat.Solver.budget ->
  ?want_proof:bool ->
  ?certify:bool ->
  ?telemetry:bool ->
  ?trace:Fpgasat_obs.Trace.t ->
  ?backend:[ `Cdcl | `Dpll ] ->
  Fpgasat_fpga.Global_route.t ->
  width:int ->
  run
(** Decides detailed routability of a global routing with [width] tracks.
    Default strategy: {!Strategy.best_single}. With [~certify:true] (default
    false) a proof is recorded regardless of [want_proof] and the answer is
    independently checked — see {!field-run.certified}.

    With [~telemetry:true] (default false) the run additionally carries
    {!field-run.telemetry} (throughput rates, LBD histogram, allocation);
    the only cost is two [Gc.allocated_bytes] reads. An attached [trace]
    records the run's lifecycle — a solve span plus solver events via
    {!Fpgasat_obs.Trace.sink}, which replaces any [on_event] hook already
    on the budget.

    [backend] (default [`Cdcl]) selects the solver. [`Dpll] runs the plain
    DPLL solver instead — the last rung of the sweep supervisor's fallback
    ladder for cells that crash or memout under CDCL. DPLL honours only
    [budget.max_conflicts] (as a decision bound, default 2M) and records no
    proof, so a certified UNSAT answer is impossible ([certified = Some
    false] when requested); SAT answers still certify via model checking. *)

val color_graph :
  ?strategy:Strategy.t ->
  ?budget:Fpgasat_sat.Solver.budget ->
  Fpgasat_graph.Graph.t ->
  k:int ->
  [ `Colorable of Fpgasat_graph.Coloring.t | `Uncolorable | `Timeout | `Memout ]
  * timings
(** The same engine on a bare colouring problem (used by benches operating
    directly on conflict graphs, and by the binary search). *)
