module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings

type search_result = {
  w_min : int;
  coloring : G.Coloring.t;
  queries : int;
  stats : Sat.Stats.t;
}

let minimal_colors ?(strategy = Strategy.best_single)
    ?(budget = Sat.Solver.no_budget) graph =
  let lower = max 1 (G.Clique.lower_bound graph) in
  let upper = max lower (G.Greedy.upper_bound graph) in
  let csp = E.Csp.make graph ~k:upper in
  let encoded =
    E.Csp_encode.encode ?symmetry:strategy.Strategy.symmetry
      strategy.Strategy.encoding csp
  in
  (* the selector-augmented formula starts as a flat arena copy of the
     encoded CNF (a blit, not a clause-by-clause rebuild) *)
  let cnf = Sat.Cnf.copy encoded.E.Csp_encode.cnf in
  (* one selector per colour: assuming it switches the colour off. Under
     definitional emission the encoder's (vertex, colour) definitions are
     already in the copied arena, so the selector clauses stay binary
     (~sel_c | ~d_v,c) instead of re-expanding the indexing pattern. *)
  let selectors = Array.init upper (fun _ -> Sat.Cnf.fresh_var cnf) in
  for v = 0 to G.Graph.num_vertices graph - 1 do
    for c = 0 to upper - 1 do
      Sat.Cnf.start_clause cnf;
      Sat.Cnf.push_lit cnf (Sat.Lit.neg_of selectors.(c));
      (match E.Csp_encode.definition encoded v c with
      | Some d -> Sat.Cnf.push_lit cnf (Sat.Lit.negate d)
      | None ->
          List.iter
            (fun l -> Sat.Cnf.push_lit cnf (Sat.Lit.negate l))
            (E.Csp_encode.pattern_lits encoded v c));
      Sat.Cnf.commit_clause cnf
    done
  done;
  let solver = Sat.Solver.create ~config:strategy.Strategy.solver cnf in
  let queries = ref 0 in
  let query w =
    incr queries;
    let assumptions =
      List.init (upper - w) (fun i -> Sat.Lit.pos selectors.(w + i))
    in
    Sat.Solver.solve_with ~budget ~assumptions solver
  in
  (* walk downward; a model using fewer colours lets us skip widths *)
  let rec walk w best =
    if w < lower then
      match best with
      | Some coloring -> Ok (w + 1, coloring)
      | None -> Error "internal error: no colouring recorded"
    else
      match query w with
      | Sat.Solver.Q_unsat -> (
          match best with
          | Some coloring -> Ok (w + 1, coloring)
          | None -> Error "DSATUR width came out uncolourable")
      | Sat.Solver.Q_unknown -> Error "budget exhausted during width search"
      | Sat.Solver.Q_memout -> Error "memory budget exhausted during width search"
      | Sat.Solver.Q_sat model ->
          let coloring = E.Csp_encode.decode encoded model in
          if not (E.Csp.solution_ok csp coloring) then
            Error "decoded colouring failed verification"
          else
            let used = G.Coloring.num_colors coloring in
            walk (min (w - 1) (used - 1)) (Some coloring)
  in
  match walk upper None with
  | Error _ as err -> err
  | Ok (w_min, coloring) ->
      Ok
        {
          w_min;
          coloring;
          queries = !queries;
          stats = Sat.Solver.solver_stats solver;
        }
