module Sat = Fpgasat_sat
module G = Fpgasat_graph
module E = Fpgasat_encodings

type ladder = {
  strategy : Strategy.t;
  csp : E.Csp.t;
  encoded : E.Csp_encode.t;
  solver : Sat.Solver.solver;
  selectors : Sat.Lit.var array;
  lower : int;
  upper : int;
  cnf_hash : int64;
  mutable queries : int;
}

let prepare ?(strategy = Strategy.best_single) graph =
  let lower = max 1 (G.Clique.lower_bound graph) in
  let upper = max lower (G.Greedy.upper_bound graph) in
  let csp = E.Csp.make graph ~k:upper in
  let encoded =
    E.Csp_encode.encode ?symmetry:strategy.Strategy.symmetry
      strategy.Strategy.encoding csp
  in
  (* the selector-augmented formula starts as a flat arena copy of the
     encoded CNF (a blit, not a clause-by-clause rebuild) *)
  let cnf = Sat.Cnf.copy encoded.E.Csp_encode.cnf in
  (* one selector per colour: assuming it switches the colour off. Under
     definitional emission the encoder's (vertex, colour) definitions are
     already in the copied arena, so the selector clauses stay binary
     (~sel_c | ~d_v,c) instead of re-expanding the indexing pattern. *)
  let selectors = Array.init upper (fun _ -> Sat.Cnf.fresh_var cnf) in
  for v = 0 to G.Graph.num_vertices graph - 1 do
    for c = 0 to upper - 1 do
      Sat.Cnf.start_clause cnf;
      Sat.Cnf.push_lit cnf (Sat.Lit.neg_of selectors.(c));
      (match E.Csp_encode.definition encoded v c with
      | Some d -> Sat.Cnf.push_lit cnf (Sat.Lit.negate d)
      | None ->
          List.iter
            (fun l -> Sat.Cnf.push_lit cnf (Sat.Lit.negate l))
            (E.Csp_encode.pattern_lits encoded v c));
      Sat.Cnf.commit_clause cnf
    done
  done;
  let solver = Sat.Solver.create ~config:strategy.Strategy.solver cnf in
  {
    strategy;
    csp;
    encoded;
    solver;
    selectors;
    lower;
    upper;
    cnf_hash = Sat.Cnf.structural_hash encoded.E.Csp_encode.cnf;
    queries = 0;
  }

let bounds ladder = (ladder.lower, ladder.upper)
let queries ladder = ladder.queries
let stats ladder = Sat.Solver.solver_stats ladder.solver
let strategy ladder = ladder.strategy
let cnf_hash ladder = ladder.cnf_hash

let cnf_size ladder =
  let cnf = ladder.encoded.E.Csp_encode.cnf in
  (Sat.Cnf.num_vars cnf, Sat.Cnf.num_clauses cnf)

let query ?(budget = Sat.Solver.no_budget) ladder ~width =
  if width < 1 then invalid_arg "Incremental_width.query: width < 1";
  (* the formula is sized at the DSATUR upper bound; any larger width is
     equivalent (a colouring within [upper] colours fits it a fortiori) *)
  let w = min width ladder.upper in
  ladder.queries <- ladder.queries + 1;
  let assumptions =
    List.init (ladder.upper - w) (fun i ->
        Sat.Lit.pos ladder.selectors.(w + i))
  in
  match Sat.Solver.solve_with ~budget ~assumptions ladder.solver with
  | Sat.Solver.Q_unsat -> `Uncolorable
  | Sat.Solver.Q_unknown -> `Timeout
  | Sat.Solver.Q_memout -> `Memout
  | Sat.Solver.Q_sat model ->
      let coloring = E.Csp_encode.decode ladder.encoded model in
      if not (E.Csp.solution_ok ladder.csp coloring) then
        raise
          (Flow.Decode_mismatch
             "incremental query: decoded colouring is not proper")
      else `Colorable coloring

type search_result = {
  w_min : int;
  coloring : G.Coloring.t;
  queries : int;
  stats : Sat.Stats.t;
}

let minimal_colors ?strategy ?(budget = Sat.Solver.no_budget) graph =
  match prepare ?strategy graph with
  | exception Invalid_argument m -> Error m
  | ladder -> (
      (* walk downward; a model using fewer colours lets us skip widths *)
      let rec walk w best =
        if w < ladder.lower then
          match best with
          | Some coloring -> Ok (w + 1, coloring)
          | None -> Error "internal error: no colouring recorded"
        else
          match query ~budget ladder ~width:w with
          | exception Flow.Decode_mismatch _ ->
              Error "decoded colouring failed verification"
          | `Uncolorable -> (
              match best with
              | Some coloring -> Ok (w + 1, coloring)
              | None -> Error "DSATUR width came out uncolourable")
          | `Timeout -> Error "budget exhausted during width search"
          | `Memout -> Error "memory budget exhausted during width search"
          | `Colorable coloring ->
              let used = G.Coloring.num_colors coloring in
              walk (min (w - 1) (used - 1)) (Some coloring)
      in
      match walk ladder.upper None with
      | Error _ as err -> err
      | Ok (w_min, coloring) ->
          Ok { w_min; coloring; queries = ladder.queries; stats = stats ladder })
