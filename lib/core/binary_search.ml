module G = Fpgasat_graph
module F = Fpgasat_fpga

type search_result = {
  w_min : int;
  routing : F.Detailed_route.t;
  unsat_below : Flow.run option;
  runs : Flow.run list;
}

let minimal_width ?strategy ?budget route =
  let graph = F.Conflict_graph.build route in
  let lower = max 1 (G.Clique.lower_bound graph) in
  let upper = max lower (G.Greedy.upper_bound graph) in
  let request =
    let r = Flow.default_request in
    let r =
      match strategy with None -> r | Some s -> Flow.with_strategy s r
    in
    match budget with None -> r | Some b -> Flow.with_budget b r
  in
  let runs = ref [] in
  let check width =
    let run = Flow.submit request route ~width in
    runs := run :: !runs;
    run
  in
  (* invariant: lo is unknown-or-routable bound's floor, [hi] is known
     routable (routing kept); widths below [lo] are known unroutable *)
  let rec search lo hi best_routing best_unsat =
    if lo >= hi then Ok (hi, best_routing, best_unsat)
    else
      let mid = (lo + hi) / 2 in
      let run = check mid in
      match run.Flow.outcome with
      | Flow.Routable detailed -> search lo mid (Some detailed) best_unsat
      | Flow.Unroutable -> search (mid + 1) hi best_routing (Some run)
      | Flow.Timeout -> Error "budget exhausted during width search"
      | Flow.Memout -> Error "memory budget exhausted during width search"
  in
  (* make sure the DSATUR bound is actually routable (it must be; checking
     also produces the routing object) *)
  let top = check upper in
  match top.Flow.outcome with
  | Flow.Timeout -> Error "budget exhausted at the upper bound"
  | Flow.Memout -> Error "memory budget exhausted at the upper bound"
  | Flow.Unroutable ->
      Error "internal error: DSATUR width reported unroutable"
  | Flow.Routable top_routing -> (
      match search lower upper (Some top_routing) None with
      | Error _ as err -> err
      | Ok (w_min, Some routing, unsat_below) ->
          (* when the search never refuted w_min - 1 (w_min = clique bound),
             the optimality proof is structural, not a SAT run *)
          Ok { w_min; routing; unsat_below; runs = List.rev !runs }
      | Ok (_, None, _) -> Error "internal error: no routing recorded")
