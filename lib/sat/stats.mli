(** Search statistics reported by the solvers. *)

val lbd_buckets : int
(** Number of buckets in {!t.lbd_hist} (16). *)

type t = {
  mutable decisions : int;
  mutable propagations : int;
  mutable conflicts : int;
  mutable restarts : int;
  mutable learnt_clauses : int;
  mutable learnt_literals : int;
  mutable deleted_clauses : int;
  mutable max_decision_level : int;
      (** Deepest decision level opened, counting both free decisions and
          assumption levels (one per assumption, including levels an
          already-implied assumption opens empty). *)
  mutable inprocess_rounds : int;
      (** Bounded inprocessing passes run between restarts. *)
  mutable inprocess_strengthened : int;
      (** Clauses strengthened or deleted by inprocessing (self-subsumption
          and vivification). *)
  mutable inprocess_literals : int;
      (** Literals removed from clauses by inprocessing. *)
  lbd_hist : int array;
      (** Histogram of learnt-clause LBD (literal block distance): bucket
          [i] counts clauses with LBD [i] for [i < lbd_buckets - 1], and the
          last bucket everything at or above it. Length {!lbd_buckets}. *)
  mutable peak_heap_words : int;
      (** Largest major-heap size (in words, from [Gc.quick_stat]) observed
          at a memory poll or at the end of a search episode; 0 when never
          sampled. The heap is process-wide, so under a multi-domain sweep
          this is an upper bound attribution, not a per-solver figure. *)
}

val create : unit -> t

val bump_lbd : t -> int -> unit
(** Count one learnt clause of the given LBD into {!t.lbd_hist} (clamped
    into the last bucket). *)

val note_heap_words : t -> int -> unit
(** Raise {!t.peak_heap_words} to the given sample if larger. *)

val pp : Format.formatter -> t -> unit
