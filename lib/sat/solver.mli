(** A CDCL SAT solver.

    MiniSat-class architecture: two watched literals per clause, EVSIDS
    variable activities with a heap-ordered decision queue, first-UIP conflict
    analysis with basic clause minimisation, phase saving, scheduled restarts
    and activity-driven learnt-clause database reduction.

    The propagation core is cache-conscious: all clauses live in one flat
    int arena ({!Clause}) referenced by integer crefs, watch lists are packed
    [(blocker, cref)] int pairs so a visit whose blocker literal is already
    satisfied never touches clause memory, and database reduction compacts
    the arena (relocating live clauses and rebuilding watches) instead of
    leaving lazily-deleted garbage pinned by watch lists. Between restarts
    the solver runs bounded inprocessing — self-subsumption and clause
    vivification under an explicit work budget (see {!config}) — emitting
    DRAT add/delete steps so certified runs stay checkable.

    Two tuning presets mirror the two solvers used in the paper (siege_v4 and
    MiniSat): {!siege_like} restarts aggressively with a faster activity
    decay, {!minisat_like} uses Luby restarts with the classic decay. Both are
    deterministic for a fixed configuration seed. *)

type restart_scheme =
  | Luby_restarts of int  (** Luby sequence scaled by the given base. *)
  | Geometric of int * float  (** First interval and multiplier. *)

type config = {
  var_decay : float;  (** VSIDS decay, in (0,1). *)
  clause_decay : float;  (** Learnt-clause activity decay, in (0,1). *)
  restart : restart_scheme;
  random_var_freq : float;  (** Probability of a random decision variable. *)
  phase_saving : bool;
  seed : int;  (** Seed for the internal deterministic RNG. *)
  inprocess_every : int;
      (** Run a bounded inprocessing pass (self-subsumption + vivification)
          every this many restarts; [0] disables inprocessing. *)
  inprocess_budget : int;
      (** Work budget per inprocessing pass, in units of roughly one
          propagation (subsumption checks are charged by literals
          scanned). *)
}

val minisat_like : config
val siege_like : config
val default : config
(** Same as {!minisat_like}. *)

val restart_limit_of_config : config -> int -> int
(** Conflict limit for the [k]-th restart episode under this configuration.
    [Geometric] limits are computed in float and clamped to [max_int] once
    they leave integer range. Exposed for tests. *)

type budget = {
  max_conflicts : int option;
  max_seconds : float option;
  max_memory_mb : int option;
      (** Process-heap ceiling in megabytes, measured from
          [Gc.quick_stat ()] heap words at the same [poll_every] granularity
          as the other limits. Crossing it aborts the search cooperatively
          with {!Memout} instead of letting the runtime OOM. OCaml 5 domains
          share one major heap, so this bounds the whole process image —
          which is exactly what an unattended multi-domain sweep needs: one
          exploding clause database cannot take down sibling workers. *)
  interrupt : (unit -> bool) option;
      (** Polled periodically; returning [true] aborts the search with
          [Unknown]. Used by portfolios and the experiment engine to cancel
          losing or over-deadline runs. An exception raised by the hook is
          treated as the interrupt having fired (the search still ends as
          [Unknown]); it never escapes as a crash. *)
  poll_every : int;
      (** Poll granularity: [max_seconds], [interrupt] and [max_memory_mb]
          are checked when the episode's conflict count is a multiple of
          [poll_every] (default {!default_poll_interval} = 256), and
          additionally every [poll_every * 64] propagations — so a
          conflict-free decision dive on a huge satisfiable instance still
          honours its wall-clock, interrupt and memory budgets. Cancellation
          latency is bounded by whichever poll fires first; lower
          [poll_every] for tighter cancellation, at the cost of calling the
          hooks more often. [max_conflicts] is exact and unaffected. *)
  on_event : (Event.t -> unit) option;
      (** Observability hook: called synchronously from the search loop on
          restarts, learnt-database reductions, inprocessing passes and
          memory polls (see
          {!Event.t}). With the default [None] the solver allocates no event
          values and each emission site is a single branch, so tracing is
          free when disabled. The hook runs on the solving domain; it must
          be fast and must not raise (an exception from it escapes the
          search). [Fpgasat_obs.Trace.sink] is the standard consumer. *)
}

val default_poll_interval : int
(** 256 conflicts. *)

val no_budget : budget
val conflict_budget : int -> budget
val time_budget : float -> budget
val interruptible : (unit -> bool) -> budget -> budget
(** Adds an interrupt hook to an existing budget. *)

val with_poll_interval : int -> budget -> budget
(** Overrides {!field-budget.poll_every}; values below 1 are clamped to 1
    (poll at every conflict). *)

val memory_budget : int -> budget
(** [memory_budget mb] is {!no_budget} with a [max_memory_mb] ceiling. *)

val with_memory_limit : int -> budget -> budget
(** Adds a [max_memory_mb] ceiling to an existing budget. *)

val with_event_hook : (Event.t -> unit) -> budget -> budget
(** Installs an {!field-budget.on_event} observability hook on an existing
    budget. *)

type result =
  | Sat of bool array
      (** A satisfying assignment, indexed by variable; total over all
          allocated variables. *)
  | Unsat
  | Unknown  (** Conflict, time, or interrupt budget exhausted. *)
  | Memout  (** [max_memory_mb] ceiling crossed; the search stopped
                cooperatively. *)

val solve :
  ?config:config -> ?budget:budget -> ?proof:Proof.t -> Cnf.t -> result * Stats.t
(** Solves the formula. When [proof] is supplied and the answer is [Unsat],
    the recorded trace ends with the empty clause (see {!Proof}). The input
    formula is not modified. *)

(** {1 Incremental interface}

    A persistent solver keeps its learnt clauses and activities across
    queries, and each query may fix {e assumption} literals — the MiniSat
    idiom. The minimal-width search uses this to encode a colouring problem
    once and disable colours through selector assumptions, reusing conflict
    clauses across widths. *)

type solver

val create : ?config:config -> ?proof:Proof.t -> Cnf.t -> solver

type query_result =
  | Q_sat of bool array
  | Q_unsat  (** Unsatisfiable together with the given assumptions. *)
  | Q_unknown
  | Q_memout  (** As {!Memout}, per query. *)

val solve_with :
  ?budget:budget -> ?assumptions:Lit.t list -> solver -> query_result
(** [Q_unsat] means the formula plus the assumptions is unsatisfiable; the
    formula alone may still be satisfiable with other assumptions. The
    budget applies per call. *)

val solver_stats : solver -> Stats.t
(** Cumulative over all queries. *)

val check_model : Cnf.t -> bool array -> bool
(** [check_model cnf m] verifies that [m] satisfies every clause of [cnf];
    independent of the solver, used as a safety net by callers and tests. *)
